module mlink

go 1.21
