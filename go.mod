module mlink

go 1.24
