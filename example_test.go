package mlink_test

import (
	"context"
	"fmt"
	"log"

	"mlink"
)

// ExampleSystem_DetectPresence walks the single-link quickstart: build the
// paper's classroom link, calibrate a static profile from empty-room
// packets, then score a monitoring window with a person standing on the
// line-of-sight path.
func ExampleSystem_DetectPresence() {
	sys, err := mlink.NewClassroomSystem(mlink.SchemeSubcarrier, 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Calibrate(100); err != nil {
		log.Fatal(err)
	}

	occupied, err := sys.DetectPresence(25, &mlink.Person{X: 3, Y: 4})
	if err != nil {
		log.Fatal(err)
	}
	empty, err := sys.DetectPresence(25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("person on the link:", occupied.Present)
	fmt.Println("empty room:", empty.Present)
	// Output:
	// person on the link: true
	// empty room: false
}

// ExampleEngine monitors a two-link site: both links calibrate in parallel,
// a person stands on the second link, and the per-link verdicts fuse into
// one site-level decision.
func ExampleEngine() {
	eng := mlink.NewEngine(mlink.EngineConfig{
		Workers:    4,
		WindowSize: 25,
		Fusion:     mlink.KOfN{K: 1},
	})

	quiet, err := mlink.NewLinkCaseSystem(3, mlink.SchemeSubcarrier, 5)
	if err != nil {
		log.Fatal(err)
	}
	busy, err := mlink.NewLinkCaseSystem(2, mlink.SchemeSubcarrier, 7)
	if err != nil {
		log.Fatal(err)
	}
	mid := busy.Scenario.LinkMidpoint()

	if err := eng.AddLink("quiet", quiet); err != nil {
		log.Fatal(err)
	}
	if err := eng.AddLink("busy", busy, &mlink.Person{X: mid.X, Y: mid.Y}); err != nil {
		log.Fatal(err)
	}
	if err := eng.Calibrate(150); err != nil {
		log.Fatal(err)
	}
	if err := eng.Run(context.Background(), 2); err != nil {
		log.Fatal(err)
	}

	verdict, err := eng.Verdict()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site occupied: %v (%d of %d links positive)\n",
		verdict.Present, verdict.Positive, verdict.Total)
	// Output:
	// site occupied: true (1 of 2 links positive)
}
