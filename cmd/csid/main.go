// Command csid is the emulated receiver-NIC daemon: it simulates one of the
// paper's link scenarios and streams the resulting CSI frames over TCP in
// the csinet wire format, playing the role the Intel 5300 + CSI Tool play
// in the paper's testbed.
//
// Usage:
//
//	csid -addr 127.0.0.1:5500 -case 2 -seed 1 -rate 50 \
//	     -presence-at 200 -presence-x 3 -presence-y 4
//
// With -presence-at N, a person appears at packet N (and leaves at
// 2N), so a downstream detector has something to find.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/csinet"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:5500", "listen address")
		caseID     = flag.Int("case", 2, "link case 1..5 (Fig. 6)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		rate       = flag.Float64("rate", 50, "packets per second (0 = unpaced)")
		background = flag.Int("background", 3, "background people")
		presenceAt = flag.Int("presence-at", 300, "packet index where a person appears (0 = never)")
		presenceX  = flag.Float64("presence-x", 0, "presence x (0 = link midpoint)")
		presenceY  = flag.Float64("presence-y", 0, "presence y (0 = link midpoint)")
	)
	flag.Parse()

	s, err := scenario.LinkCase(*caseID, *seed)
	if err != nil {
		return err
	}
	target := s.LinkMidpoint()
	if *presenceX != 0 || *presenceY != 0 {
		target = geom.Point{X: *presenceX, Y: *presenceY}
	}

	indices := make([]int16, s.Grid.Len())
	for i, idx := range s.Grid.Indices {
		indices[i] = int16(idx)
	}
	hello := csinet.Hello{
		CenterFreqHz:   s.Grid.Center,
		NumAntennas:    3,
		NumSubcarriers: uint8(s.Grid.Len()),
		Indices:        indices,
	}

	var streamID int64
	factory := func() csinet.Source {
		streamID++
		id := streamID
		x, err := s.NewExtractor(id)
		if err != nil {
			log.Printf("stream %d: %v", id, err)
			return csinet.SourceFunc(func() (*csi.Frame, error) { return nil, err })
		}
		rng := rand.New(rand.NewSource(*seed*77 + id))
		bg, err := scenario.NewBackground(*background, scenario.DefaultAnchors(s), rng)
		if err != nil {
			return csinet.SourceFunc(func() (*csi.Frame, error) { return nil, err })
		}
		n := 0
		return csinet.SourceFunc(func() (*csi.Frame, error) {
			bodies := bg.Step()
			if *presenceAt > 0 && n >= *presenceAt && n < 2**presenceAt {
				bodies = append(bodies, body.Default(target))
			}
			n++
			return x.Capture(bodies), nil
		})
	}

	srv, err := csinet.NewServer(*addr, hello, factory)
	if err != nil {
		return err
	}
	if *rate > 0 {
		srv.Interval = time.Duration(float64(time.Second) / *rate)
	}
	fmt.Printf("csid: serving %s (link %.1f m) on %s at %.0f pkt/s\n",
		s.Name, s.LinkLength(), srv.Addr(), *rate)
	if *presenceAt > 0 {
		fmt.Printf("csid: a person appears at %v from packet %d to %d\n", target, *presenceAt, 2**presenceAt)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	err = srv.Serve(ctx)
	if ctx.Err() != nil {
		fmt.Println("csid: shut down")
		return nil
	}
	return err
}
