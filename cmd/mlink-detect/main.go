// Command mlink-detect is the detector side of the distributed deployment:
// it connects to a csid stream, calibrates a static profile from the first
// frames, then prints a presence verdict per monitoring window.
//
// Usage:
//
//	mlink-detect -addr 127.0.0.1:5500 -scheme path -calibration 200 -window 25
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"time"

	"mlink/internal/channel"
	"mlink/internal/core"
	"mlink/internal/csinet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func schemeOf(name string) (core.Scheme, error) {
	switch name {
	case "baseline":
		return core.SchemeBaseline, nil
	case "subcarrier":
		return core.SchemeSubcarrier, nil
	case "path":
		return core.SchemeSubcarrierPath, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (baseline|subcarrier|path)", name)
	}
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:5500", "csid address")
		schemeName = flag.String("scheme", "path", "detection scheme: baseline|subcarrier|path")
		calN       = flag.Int("calibration", 200, "calibration packets")
		window     = flag.Int("window", 25, "monitoring window packets")
		maxWindows = flag.Int("max-windows", 0, "stop after this many windows (0 = run forever)")
	)
	flag.Parse()

	scheme, err := schemeOf(*schemeName)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	client, err := csinet.Dial(ctx, *addr)
	cancel()
	if err != nil {
		return err
	}
	defer client.Close()

	hello := client.Hello()
	grid, err := channel.NewIntel5300Grid(hello.CenterFreqHz)
	if err != nil {
		return err
	}
	// Array geometry: λ/2 ULA as announced by the stream.
	lambda := 299792458.0 / hello.CenterFreqHz
	offsets := make([]float64, hello.NumAntennas)
	for m := range offsets {
		offsets[m] = (float64(m) - float64(len(offsets)-1)/2) * lambda / 2
	}
	cfg := core.DefaultConfig(grid, scheme, offsets)

	fmt.Printf("mlink-detect: calibrating %s from %d packets...\n", scheme, *calN)
	cal, err := client.RecvN(*calN)
	if err != nil {
		return fmt.Errorf("calibration recv: %w", err)
	}
	profile, err := core.Calibrate(cfg, cal)
	if err != nil {
		return err
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		return err
	}
	holdout, err := client.RecvN(*calN / 2)
	if err != nil {
		return fmt.Errorf("holdout recv: %w", err)
	}
	null, err := det.SelfScores(holdout, *window, *window)
	if err != nil {
		return err
	}
	threshold, err := det.CalibrateThreshold(null, 0.95, 1.3)
	if err != nil {
		return err
	}
	fmt.Printf("mlink-detect: threshold %.4f, monitoring (window %d packets)\n", threshold, *window)

	for w := 0; *maxWindows == 0 || w < *maxWindows; w++ {
		frames, err := client.RecvN(*window)
		if err != nil {
			if errors.Is(err, io.EOF) {
				fmt.Println("mlink-detect: stream ended")
				return nil
			}
			return err
		}
		dec, err := det.Detect(frames)
		if err != nil {
			return err
		}
		status := "clear  "
		if dec.Present {
			status = "PRESENT"
		}
		fmt.Printf("window %4d  [%s]  score %.4f  (threshold %.4f)\n", w, status, dec.Score, dec.Threshold)
	}
	return nil
}
