// Command benchcheck compares a `go test -bench` run against the reference
// numbers in BENCH_baseline.json and fails (exit 1) on regressions of the
// cached hot paths. It is the CI guard that keeps the PR 2 performance work
// from rotting as the system grows (PR 3's adaptation layer, and whatever
// comes next, must not reintroduce per-frame allocations).
//
// Checks, chosen to be meaningful on a one-iteration (-benchtime=1x) smoke
// run on an arbitrary CI host:
//
//   - Presence: every baseline benchmark must appear in the run. A missing
//     benchmark means the perf harness itself rotted.
//   - Allocations: allocs/op is deterministic regardless of host or
//     iteration count. Baselines at 0 allocs/op (the cached capture and
//     synthesis paths, CaptureInto above all) must stay at exactly 0; other
//     baselines must not grow past 2×.
//   - Cached-path speed: wall-clock ns/op is not portable across hosts, so
//     speed is checked as the cached-vs-naive speedup measured within the
//     same run: it must stay at least half the baseline speedup (a >2×
//     slowdown of the cached path halves the ratio). Pairs whose baseline
//     cached time is under 1 µs are skipped — a single-iteration timing of
//     a nanosecond-scale table copy is timer noise, not signal.
//   - Recorded speedups: a baseline entry may carry prev_ns_per_op (the
//     same benchmark's ns/op from an earlier baseline, measured on the same
//     host) and min_speedup. benchcheck then asserts ns_per_op ≤
//     prev_ns_per_op/min_speedup — a static check on the committed baseline
//     itself, so regenerating the file with numbers that give back a
//     claimed optimization (PR 4's ≥3× engine scoring win, above all)
//     fails CI until the regression is fixed or the claim is consciously
//     retired. Host-portable because both numbers come from the same host.
//
// With -scale, benchcheck instead checks only the multi-core scaling
// entries — the ones carrying scale_vs/min_scale and/or max_ns_per_op —
// against a run from CI's multi-core runner (the gating shard-scaling
// job). For each such entry it asserts presence, the allocation rules
// above, ns_per_op ≤ max_ns_per_op when set (the single-worker latency
// floor: scaling must not be bought by slowing workers=1 down), and
// ns_per_op(scale_vs) / ns_per_op ≥ min_scale — both sides measured within
// the same run on the same host, so the ratio is host-portable even though
// the raw numbers are not. This is what gates the work-stealing
// scheduler's ≥2× workers=1→4 claim.
//
// A single -benchtime=1x iteration cannot tell a one-time lazy-init
// allocation from a per-op one (both show as allocs/op over N=1), so CI
// feeds benchcheck two runs: the full 1x smoke (presence) plus a
// -benchtime=100x pass of just the baseline benchmarks, whose amortized
// numbers drive the allocation and speed checks. When several input files
// are given, later files override earlier results per benchmark.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -benchmem ./... > bench.out
//	go test -run '^$' -bench 'EnvironmentResponse|ExtractorCapture|EngineScoringWorkers' \
//	    -benchtime=100x -benchmem . > bench-precise.out
//	go run ./cmd/benchcheck -baseline BENCH_baseline.json bench.out bench-precise.out
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type baselineEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// PrevNsPerOp and MinSpeedup, when both set, assert that this baseline
	// preserves a recorded optimization: ns_per_op must be at least
	// MinSpeedup× faster than PrevNsPerOp (both measured on the baseline
	// host).
	PrevNsPerOp float64 `json:"prev_ns_per_op,omitempty"`
	MinSpeedup  float64 `json:"min_speedup,omitempty"`
	// ScaleVs and MinScale, when both set, mark a multi-core scaling gate
	// checked only under -scale: this benchmark's measured ns/op must be at
	// least MinScale× below ScaleVs's within the same run. MaxNsPerOp,
	// when set, additionally bounds this benchmark's measured ns/op under
	// -scale — the single-worker latency floor of the scaling gate.
	ScaleVs    string  `json:"scale_vs,omitempty"`
	MinScale   float64 `json:"min_scale,omitempty"`
	MaxNsPerOp float64 `json:"max_ns_per_op,omitempty"`
}

type baseline struct {
	Comment    string          `json:"comment"`
	Host       string          `json:"host"`
	Benchmarks []baselineEntry `json:"benchmarks"`
}

type result struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(lines *bufio.Scanner) (map[string]result, error) {
	out := make(map[string]result)
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -GOMAXPROCS suffix: BenchmarkFoo/bar-8 → BenchmarkFoo/bar.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := result{}
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		if r.nsPerOp > 0 {
			out[name] = r
		}
	}
	return out, lines.Err()
}

// cachedNaivePair maps a cached benchmark to its naive reference within the
// same group: .../cached/xyz ↔ .../naive/xyz.
func cachedNaivePair(name string) (string, bool) {
	if !strings.Contains(name, "/cached/") {
		return "", false
	}
	return strings.Replace(name, "/cached/", "/naive/", 1), true
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
	scaleMode := flag.Bool("scale", false,
		"check only the multi-core scaling entries (scale_vs/min_scale/max_ns_per_op) against a multi-core run")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	byName := make(map[string]baselineEntry, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}

	got := make(map[string]result)
	merge := func(in *bufio.Scanner) error {
		in.Buffer(make([]byte, 1024*1024), 1024*1024)
		parsed, err := parseBench(in)
		if err != nil {
			return err
		}
		for k, v := range parsed {
			got[k] = v
		}
		return nil
	}
	if flag.NArg() == 0 {
		if err := merge(bufio.NewScanner(os.Stdin)); err != nil {
			return fmt.Errorf("parse bench output: %w", err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = merge(bufio.NewScanner(f))
		f.Close()
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark results in input (pipe `go test -bench` output in)")
	}

	var failures []string
	checkAllocs := func(b baselineEntry, r result) {
		if !r.hasAllocs {
			return
		}
		switch {
		case b.AllocsPerOp == 0 && r.allocsPerOp != 0:
			failures = append(failures, fmt.Sprintf(
				"%s: %v allocs/op, baseline is allocation-free (0)", b.Name, r.allocsPerOp))
		case b.AllocsPerOp > 0 && r.allocsPerOp > 2*b.AllocsPerOp:
			failures = append(failures, fmt.Sprintf(
				"%s: %v allocs/op, > 2× baseline %v", b.Name, r.allocsPerOp, b.AllocsPerOp))
		}
	}

	if *scaleMode {
		checked := 0
		for _, b := range base.Benchmarks {
			if b.ScaleVs == "" && b.MaxNsPerOp == 0 {
				continue
			}
			checked++
			r, ok := got[b.Name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from scaling run (perf harness rot?)", b.Name))
				continue
			}
			checkAllocs(b, r)
			if b.MaxNsPerOp > 0 && r.nsPerOp > b.MaxNsPerOp {
				failures = append(failures, fmt.Sprintf(
					"%s: %v ns/op, above the %v ns/op latency bound (scaling must not slow the single-worker path)",
					b.Name, r.nsPerOp, b.MaxNsPerOp))
			}
			if b.ScaleVs != "" && b.MinScale > 0 {
				ref, okRef := got[b.ScaleVs]
				if !okRef || ref.nsPerOp <= 0 || r.nsPerOp <= 0 {
					failures = append(failures, fmt.Sprintf(
						"%s: scaling reference %s missing from run", b.Name, b.ScaleVs))
				} else if ratio := ref.nsPerOp / r.nsPerOp; ratio < b.MinScale {
					failures = append(failures, fmt.Sprintf(
						"%s: only %.2f× faster than %s (%v vs %v ns/op), < required %v×",
						b.Name, ratio, b.ScaleVs, r.nsPerOp, ref.nsPerOp, b.MinScale))
				}
			}
		}
		if checked == 0 {
			return fmt.Errorf("no scaling entries (scale_vs/max_ns_per_op) in %s", *baselinePath)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "FAIL:", f)
			}
			return fmt.Errorf("%d scaling regression(s) against %s", len(failures), *baselinePath)
		}
		fmt.Printf("benchcheck: %d scaling entries OK against %s\n", checked, *baselinePath)
		return nil
	}

	for _, b := range base.Benchmarks {
		if b.PrevNsPerOp > 0 && b.MinSpeedup > 0 {
			if b.NsPerOp <= 0 || b.PrevNsPerOp/b.NsPerOp < b.MinSpeedup {
				failures = append(failures, fmt.Sprintf(
					"%s: baseline %v ns/op is only %.2f× its recorded predecessor %v ns/op, < required %v×",
					b.Name, b.NsPerOp, b.PrevNsPerOp/b.NsPerOp, b.PrevNsPerOp, b.MinSpeedup))
			}
		}
		r, ok := got[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from run (perf harness rot?)", b.Name))
			continue
		}
		checkAllocs(b, r)
		naiveName, isCached := cachedNaivePair(b.Name)
		if !isCached || b.NsPerOp < 1000 {
			continue
		}
		naiveBase, okBase := byName[naiveName]
		naiveRun, okRun := got[naiveName]
		if !okBase || !okRun || naiveBase.NsPerOp <= 0 || r.nsPerOp <= 0 {
			continue
		}
		baseSpeedup := naiveBase.NsPerOp / b.NsPerOp
		runSpeedup := naiveRun.nsPerOp / r.nsPerOp
		if runSpeedup < baseSpeedup/2 {
			failures = append(failures, fmt.Sprintf(
				"%s: cached speedup %.1f× vs naive, < half the baseline %.1f× (>2× cached-path slowdown)",
				b.Name, runSpeedup, baseSpeedup))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Printf("benchcheck: %d baseline benchmarks OK against %s\n", len(base.Benchmarks), *baselinePath)
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}
