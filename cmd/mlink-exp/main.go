// Command mlink-exp regenerates the paper's figures as text tables. Each
// experiment maps to a figure of the paper (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	mlink-exp -run all
//	mlink-exp -run fig7,fig9 -seed 3 -scale full
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mlink/internal/experiments"
	"mlink/internal/scenario"
)

type runner func(seed int64, full bool) (string, error)

var runners = map[string]runner{
	"fig2a": func(seed int64, full bool) (string, error) {
		c, err := characterization(seed, full)
		if err != nil {
			return "", err
		}
		r, err := experiments.Fig2a(c, 25)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig2b": func(seed int64, full bool) (string, error) {
		packets := 400
		if full {
			packets = 1000
		}
		r, err := experiments.Fig2b(packets, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig3a": func(seed int64, full bool) (string, error) {
		c, err := characterization(seed, full)
		if err != nil {
			return "", err
		}
		r, err := experiments.Fig3a(c, 25)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig3bc": func(seed int64, full bool) (string, error) {
		c, err := characterization(seed, full)
		if err != nil {
			return "", err
		}
		r, err := experiments.Fig3bc(c, []int{5, 10, 15, 20, 25})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig4": func(seed int64, full bool) (string, error) {
		packets := 600
		if full {
			packets = 5000
		}
		r, err := experiments.Fig4(packets, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig5b": func(seed int64, full bool) (string, error) {
		r, err := experiments.Fig5b(100, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig5c": func(seed int64, full bool) (string, error) {
		packets := 30
		if full {
			packets = 100
		}
		r, err := experiments.Fig5c(16, packets, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig7": func(seed int64, full bool) (string, error) {
		c, err := campaign(seed, full)
		if err != nil {
			return "", err
		}
		r, err := experiments.Fig7(c)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig8": func(seed int64, full bool) (string, error) {
		c, err := campaign(seed, full)
		if err != nil {
			return "", err
		}
		roc, err := experiments.Fig7(c)
		if err != nil {
			return "", err
		}
		r, err := experiments.Fig8(c, roc, []int{1, 2, 3, 4, 5})
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig9": func(seed int64, full bool) (string, error) {
		windows := 2
		if full {
			windows = 4
		}
		r, err := experiments.Fig9(25, windows, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig10": func(seed int64, full bool) (string, error) {
		trials := 40
		if full {
			trials = 150
		}
		r, err := experiments.Fig10(trials, 25, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig11": func(seed int64, full bool) (string, error) {
		windows := 2
		if full {
			windows = 4
		}
		r, err := experiments.Fig11(9, 1.5, 25, windows, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig12": func(seed int64, full bool) (string, error) {
		counts := []int{1, 2, 5, 10, 25, 50}
		r, err := experiments.Fig12(counts, seed)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	// drift is not a paper figure: it is the adaptation experiment this
	// repo adds on top (frozen vs adaptive detector on the drift presets).
	"drift": func(seed int64, full bool) (string, error) {
		var b strings.Builder
		presets := []scenario.DriftPreset{
			scenario.NoDrift(),
			scenario.GainWalk(12),
			scenario.CFOWalk(60, 0.05),
			scenario.FurnitureMove(600),
		}
		for _, p := range presets {
			cfg := experiments.DriftExperimentConfig{Preset: p, Seed: seed}
			if !full {
				cfg.MonitorMultiple = 6
			}
			r, err := experiments.RunDriftAdaptation(cfg)
			if err != nil {
				return "", err
			}
			b.WriteString(r.Render())
			b.WriteString("\n")
		}
		return b.String(), nil
	},
	// fleet is the cross-link disambiguation experiment: frozen vs
	// per-link-adaptive vs fleet-coordinated sites on one correlated
	// ambient-drift stream, with a single-link person tail.
	"fleet": func(seed int64, full bool) (string, error) {
		cfg := experiments.FleetDriftConfig{Seed: seed}
		if !full {
			cfg.MonitorMultiple = 6
		}
		r, err := experiments.RunFleetDrift(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
}

// order fixes the rendering sequence for -run all.
var order = []string{
	"fig2a", "fig2b", "fig3a", "fig3bc", "fig4", "fig5b", "fig5c",
	"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "drift", "fleet",
}

var (
	charCache     *experiments.CharacterizationResult
	campaignCache *experiments.Campaign
)

func characterization(seed int64, full bool) (*experiments.CharacterizationResult, error) {
	if charCache != nil {
		return charCache, nil
	}
	locations, packets := 150, 10
	if full {
		locations, packets = 500, 15
	}
	c, err := experiments.RunCharacterization(locations, packets, seed)
	if err != nil {
		return nil, err
	}
	charCache = c
	return c, nil
}

func campaign(seed int64, full bool) (*experiments.Campaign, error) {
	if campaignCache != nil {
		return campaignCache, nil
	}
	cfg := experiments.DefaultCampaignConfig()
	cfg.Seed = seed
	if !full {
		cfg.Sessions = 1
		cfg.WindowsPerLocation = 2
	}
	c, err := experiments.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	campaignCache = c
	return c, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		which = flag.String("run", "all", "comma-separated experiments, or 'all'")
		seed  = flag.Int64("seed", 1, "base seed")
		scale = flag.String("scale", "quick", "workload scale: quick|full")
	)
	flag.Parse()
	full := *scale == "full"

	var names []string
	if *which == "all" {
		names = order
	} else {
		names = strings.Split(*which, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", name, strings.Join(order, ", "))
		}
		out, err := fn(*seed, full)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(out)
	}
	return nil
}
