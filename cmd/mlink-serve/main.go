// Command mlink-serve is the multi-link monitoring daemon: it builds a
// fleet of N evaluation links (cycling the paper's five Fig. 6 link cases),
// calibrates each link's static profile in parallel, then monitors all
// links concurrently and prints rolling site-level verdicts fused across
// the fleet.
//
// Usage:
//
//	mlink-serve -links 5 -scheme subcarrier -workers 4 -windows 8 -occupied 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"mlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func schemeOf(name string) (mlink.Scheme, error) {
	switch name {
	case "baseline":
		return mlink.SchemeBaseline, nil
	case "subcarrier":
		return mlink.SchemeSubcarrier, nil
	case "path":
		return mlink.SchemeSubcarrierPath, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (baseline|subcarrier|path)", name)
	}
}

func fusionOf(name string, k int) (mlink.FusionPolicy, error) {
	switch name {
	case "kofn":
		return mlink.KOfN{K: k}, nil
	case "max":
		return mlink.MaxScore{}, nil
	default:
		return nil, fmt.Errorf("unknown fusion %q (kofn|max)", name)
	}
}

func run() error {
	var (
		nLinks     = flag.Int("links", 5, "number of monitored links (cycles the 5 Fig. 6 cases)")
		schemeName = flag.String("scheme", "subcarrier", "detection scheme: baseline|subcarrier|path")
		workers    = flag.Int("workers", 0, "scoring/calibration pool size (0 = GOMAXPROCS)")
		calN       = flag.Int("cal", 150, "calibration packets per link")
		window     = flag.Int("window", 25, "monitoring window packets")
		windows    = flag.Int("windows", 8, "windows per link (0 = run until interrupted)")
		occupied   = flag.Int("occupied", 0, "1-based index of a link with a person at its midpoint (0 = all empty)")
		fusionName = flag.String("fusion", "kofn", "site fusion policy: kofn|max")
		k          = flag.Int("k", 1, "K for k-of-n fusion (0 = majority)")
		seed       = flag.Int64("seed", 1, "base simulation seed")
	)
	flag.Parse()

	scheme, err := schemeOf(*schemeName)
	if err != nil {
		return err
	}
	fusion, err := fusionOf(*fusionName, *k)
	if err != nil {
		return err
	}
	if *nLinks < 1 {
		return fmt.Errorf("need at least one link, got %d", *nLinks)
	}

	var (
		printMu sync.Mutex
		decided int
		eng     *mlink.Engine
	)
	eng = mlink.NewEngine(mlink.EngineConfig{
		Workers:    *workers,
		WindowSize: *window,
		Fusion:     fusion,
		OnDecision: func(linkID string, d mlink.Decision) {
			printMu.Lock()
			defer printMu.Unlock()
			mark := " "
			if d.Present {
				mark = "*"
			}
			fmt.Printf("%s link %-6s score %7.4f  thr %7.4f\n", mark, linkID, d.Score, d.Threshold)
			decided++
			if decided%*nLinks == 0 {
				if v, err := eng.Verdict(); err == nil {
					fmt.Printf("  site [%s] present=%v score=%.3f (%d/%d links positive)\n",
						v.Policy, v.Present, v.Score, v.Positive, v.Total)
				}
			}
		},
	})

	for i := 1; i <= *nLinks; i++ {
		caseN := (i-1)%5 + 1
		sys, err := mlink.NewLinkCaseSystem(caseN, scheme, *seed+int64(i))
		if err != nil {
			return err
		}
		id := fmt.Sprintf("case%d-%d", caseN, i)
		var people []*mlink.Person
		if i == *occupied {
			mid := sys.Scenario.LinkMidpoint()
			people = append(people, &mlink.Person{X: mid.X, Y: mid.Y})
		}
		if err := eng.AddLink(id, sys, people...); err != nil {
			return err
		}
	}

	fmt.Printf("calibrating %d links (%d packets each, scheme %s)...\n", *nLinks, *calN, scheme)
	start := time.Now()
	if err := eng.Calibrate(*calN); err != nil {
		return err
	}
	fmt.Printf("calibrated in %v\n", time.Since(start).Round(time.Millisecond))
	for _, lm := range eng.Metrics().PerLink {
		fmt.Printf("  link %-8s mean mu %6.3f  threshold %7.4f\n", lm.ID, lm.MeanMu, lm.Threshold)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := eng.Run(ctx, *windows); err != nil {
		return err
	}

	m := eng.Metrics()
	fmt.Printf("\nscored %d windows (%d frames) at %.1f windows/s across %d links\n",
		m.WindowsScored, m.FramesSeen, m.ScoresPerSec, m.Links)
	v, err := eng.Verdict()
	if err != nil {
		return err
	}
	fmt.Printf("final site verdict [%s]: present=%v score=%.3f (%d/%d links positive)\n",
		v.Policy, v.Present, v.Score, v.Positive, v.Total)
	return nil
}
