// Command mlink-serve is the multi-link monitoring daemon: it builds a
// fleet of N evaluation links (cycling the paper's five Fig. 6 link cases),
// calibrates each link's static profile in parallel, then monitors all
// links concurrently and prints rolling site-level verdicts fused across
// the fleet.
//
// Online adaptation and environment drift are first-class: -adapt enables
// per-link profile refresh / threshold re-derivation / drift quarantine,
// and -drift injects a drift preset (gain walk, CFO walk, furniture move,
// correlated ambient event) into every link so the adaptation can be
// watched working. -fleet layers the cross-link coordinator on top
// (ambient-drift disambiguation, automatic quarantine clearing, staggered
// online recalibration), and -profiles makes the adapted baselines durable
// across daemon restarts.
//
// -supervise puts every link's source behind a supervisor (bounded ingest
// ring, Live/Stale/Down/Recovering lifecycle, jittered-backoff reconnects):
// a stalled or dead source degrades only its own link's coverage while the
// rest of the fleet keeps scoring, and the daemon keeps serving the
// remaining links when one source errors out. -chaos injects a deterministic
// fault schedule into one link (-chaos-link) to watch the degradation and
// recovery live.
//
// Usage:
//
//	mlink-serve -links 5 -scheme subcarrier -workers 4 -windows 8 -occupied 3
//	mlink-serve -links 3 -adapt -drift gain -drift-rate 12 -windows 40 -fusion weighted
//	mlink-serve -links 5 -fleet -drift ambient -drift-rate 2 -drift-step 900 -windows 60
//	mlink-serve -links 5 -fleet -profiles /var/lib/mlink/profiles -windows 0
//	mlink-serve -links 5 -supervise -chaos flap -chaos-link 2 -windows 40
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof exposes the default mux's profile endpoints
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"mlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func schemeOf(name string) (mlink.Scheme, error) {
	switch name {
	case "baseline":
		return mlink.SchemeBaseline, nil
	case "subcarrier":
		return mlink.SchemeSubcarrier, nil
	case "path":
		return mlink.SchemeSubcarrierPath, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (baseline|subcarrier|path)", name)
	}
}

func fusionOf(name string, k int) (mlink.FusionPolicy, error) {
	switch name {
	case "kofn":
		return mlink.KOfN{K: k}, nil
	case "weighted":
		return mlink.WeightedKOfN{K: k}, nil
	case "max":
		return mlink.MaxScore{}, nil
	default:
		return nil, fmt.Errorf("unknown fusion %q (kofn|weighted|max)", name)
	}
}

func chaosOf(name string) (mlink.ChaosConfig, bool, error) {
	switch name {
	case "", "none":
		return mlink.ChaosConfig{}, false, nil
	case "stall":
		return mlink.ChaosConfig{StallEvery: 200, StallFor: 2 * time.Second}, true, nil
	case "drip":
		return mlink.ChaosConfig{DripEvery: 1, DripDelay: 20 * time.Millisecond}, true, nil
	case "eof":
		return mlink.ChaosConfig{EOFEvery: 300}, true, nil
	case "flap":
		return mlink.ChaosConfig{FailEvery: 250, FailConnects: 3}, true, nil
	case "drop":
		return mlink.ChaosConfig{DropEvery: 100, DropBurst: 40}, true, nil
	case "torn":
		return mlink.ChaosConfig{TornEvery: 300}, true, nil
	default:
		return mlink.ChaosConfig{}, false, fmt.Errorf("unknown chaos %q (none|stall|drip|eof|flap|drop|torn)", name)
	}
}

func driftOf(name string, gainRate float64, stepAt int) (mlink.DriftPreset, bool, error) {
	switch name {
	case "", "none":
		return mlink.DriftPreset{}, false, nil
	case "gain":
		return mlink.GainWalkDrift(gainRate), true, nil
	case "cfo":
		return mlink.CFOWalkDrift(60, 0.05), true, nil
	case "furniture":
		return mlink.FurnitureMoveDrift(stepAt), true, nil
	case "ambient":
		// The correlated site-wide event: every link gets the same walk
		// plus a 6 dB AGC re-lock step — the scenario -fleet disambiguates
		// from a person.
		return mlink.AmbientSiteDrift(gainRate, 6, stepAt), true, nil
	default:
		return mlink.DriftPreset{}, false, fmt.Errorf("unknown drift %q (none|gain|cfo|furniture|ambient)", name)
	}
}

func run() error {
	var (
		nLinks     = flag.Int("links", 5, "number of monitored links (cycles the 5 Fig. 6 cases)")
		schemeName = flag.String("scheme", "subcarrier", "detection scheme: baseline|subcarrier|path")
		workers    = flag.Int("workers", 0, "scoring/calibration pool size (0 = GOMAXPROCS)")
		calN       = flag.Int("cal", 150, "calibration packets per link")
		window     = flag.Int("window", 25, "monitoring window packets")
		windows    = flag.Int("windows", 8, "windows per link (0 = run until interrupted)")
		occupied   = flag.Int("occupied", 0, "1-based index of a link with a person at its midpoint (0 = all empty)")
		fusionName = flag.String("fusion", "kofn", "site fusion policy: kofn|weighted|max")
		k          = flag.Int("k", 1, "K for k-of-n fusion (0 = majority)")
		seed       = flag.Int64("seed", 1, "base simulation seed")
		adaptOn    = flag.Bool("adapt", false, "enable per-link online adaptation (profile refresh, threshold re-derivation, drift quarantine)")
		fleetOn    = flag.Bool("fleet", false, "enable cross-link fleet coordination (ambient-drift disambiguation, auto quarantine clearing, staggered online recalibration); implies -adapt")
		profiles   = flag.String("profiles", "", "profile snapshot directory: restore adapted link baselines at startup and persist them at shutdown")
		journalDir = flag.String("journal", "", "crash-safe journal directory: restore baselines at startup (recovering from torn tails) and checkpoint continuously while running; supersedes -profiles")
		journalSyn = flag.Duration("journal-sync", time.Second, "journal fsync cadence — the crash loss window (with -journal)")
		driftName  = flag.String("drift", "none", "environment drift preset applied to every link: none|gain|cfo|furniture|ambient")
		driftRate  = flag.Float64("drift-rate", 12, "gain-walk slope in dB/min (for -drift gain|ambient)")
		driftStep  = flag.Int("drift-step", 600, "furniture-move / ambient-step packet (for -drift furniture|ambient)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live CPU/heap profiles")
		superOn    = flag.Bool("supervise", false, "supervise every link's source: bounded ingest ring, Live/Stale/Down/Recovering lifecycle, backoff reconnects, staleness-aware fusion")
		staleAfter = flag.Duration("stale-after", 500*time.Millisecond, "frame silence before a supervised link reads Stale (with -supervise)")
		downAfter  = flag.Duration("down-after", 2*time.Second, "frame silence before a supervised link reads Down (with -supervise)")
		backoff    = flag.Duration("backoff", 50*time.Millisecond, "initial reconnect backoff for a Down supervised link (with -supervise)")
		backoffMax = flag.Duration("backoff-max", 5*time.Second, "reconnect backoff ceiling (with -supervise)")
		chaosName  = flag.String("chaos", "none", "fault schedule injected into one link: none|stall|drip|eof|flap|drop|torn (with -supervise)")
		chaosLink  = flag.Int("chaos-link", 1, "1-based index of the link that misbehaves (with -chaos)")
		httpAddr   = flag.String("http", "", "serve the HTTP API on this address (e.g. :8080): GET /v1/verdict, /v1/links, /metrics, /v1/stream (SSE)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	scheme, err := schemeOf(*schemeName)
	if err != nil {
		return err
	}
	fusion, err := fusionOf(*fusionName, *k)
	if err != nil {
		return err
	}
	drift, driftEnabled, err := driftOf(*driftName, *driftRate, *driftStep)
	if err != nil {
		return err
	}
	chaos, chaosEnabled, err := chaosOf(*chaosName)
	if err != nil {
		return err
	}
	if *nLinks < 1 {
		return fmt.Errorf("need at least one link, got %d", *nLinks)
	}
	if chaosEnabled && (*chaosLink < 1 || *chaosLink > *nLinks) {
		return fmt.Errorf("-chaos-link %d out of range (1..%d)", *chaosLink, *nLinks)
	}

	var (
		printMu    sync.Mutex
		decided    int
		verdict    mlink.SiteVerdict // reused across report ticks (VerdictInto)
		eng        *mlink.Engine
		fleetState mlink.FleetState
		// lastLifecycle records each supervised link's latest transition
		// target for the final report — metrics stop reporting lifecycle
		// once the run (and with it the supervisors) has ended.
		lastLifecycle = map[string]mlink.LinkLifecycle{}
	)
	eng = mlink.NewEngine(mlink.EngineConfig{
		Workers:    *workers,
		WindowSize: *window,
		Fusion:     fusion,
		OnDecision: func(linkID string, d mlink.Decision) {
			printMu.Lock()
			defer printMu.Unlock()
			mark := " "
			if d.Present {
				mark = "*"
			}
			fmt.Printf("%s link %-6s score %7.4f  thr %7.4f\n", mark, linkID, d.Score, d.Threshold)
			decided++
			if decided%*nLinks == 0 {
				if err := eng.VerdictInto(&verdict); err == nil {
					switch {
					case verdict.Inconclusive:
						fmt.Printf("  site [%s] INCONCLUSIVE: no link can vote (%d down, %d recovering, %d recalibrating of %d)\n",
							verdict.Policy, verdict.Coverage.Down, verdict.Coverage.Recovering,
							verdict.Coverage.Recalibrating, verdict.Coverage.Links)
					case verdict.Coverage.Degraded():
						fmt.Printf("  site [%s] present=%v score=%.3f (%d/%d links positive; DEGRADED %d/%d fused)\n",
							verdict.Policy, verdict.Present, verdict.Score, verdict.Positive, verdict.Total,
							verdict.Coverage.Fused, verdict.Coverage.Links)
					default:
						fmt.Printf("  site [%s] present=%v score=%.3f (%d/%d links positive)\n",
							verdict.Policy, verdict.Present, verdict.Score, verdict.Positive, verdict.Total)
					}
				}
				if rep, ok := eng.FleetReport(); ok && rep.State != 0 && rep.State != fleetState {
					fleetState = rep.State
					fmt.Printf("  fleet state -> %s (drifting %d, jumped %d, quarantined %d; relocks %d, recals %d)\n",
						rep.State, rep.Drifting, rep.Jumped, rep.Quarantined, rep.Relocks, rep.RecalsDispatched)
				}
			}
		},
	})

	if *adaptOn || *fleetOn {
		if err := eng.EnableAdaptation(); err != nil {
			return err
		}
	}
	if *fleetOn {
		if err := eng.EnableFleet(); err != nil {
			return err
		}
	}
	if *superOn || chaosEnabled {
		err := eng.EnableSupervision(mlink.SupervisionPolicy{
			StaleAfter: *staleAfter,
			DownAfter:  *downAfter,
			BackoffMin: *backoff,
			BackoffMax: *backoffMax,
			OnTransition: func(link string, from, to mlink.LinkLifecycle, cause error) {
				printMu.Lock()
				defer printMu.Unlock()
				lastLifecycle[link] = to
				if cause != nil {
					fmt.Printf("  ! link %-8s %s -> %s (%v)\n", link, from, to, cause)
					return
				}
				fmt.Printf("  ! link %-8s %s -> %s\n", link, from, to)
			},
		})
		if err != nil {
			return err
		}
	}

	var chaosSrc *mlink.ChaosSource
	for i := 1; i <= *nLinks; i++ {
		caseN := (i-1)%5 + 1
		sys, err := mlink.NewLinkCaseSystem(caseN, scheme, *seed+int64(i))
		if err != nil {
			return err
		}
		id := fmt.Sprintf("case%d-%d", caseN, i)
		var people []*mlink.Person
		if i == *occupied {
			mid := sys.Scenario.LinkMidpoint()
			people = append(people, &mlink.Person{X: mid.X, Y: mid.Y})
		}
		switch {
		case chaosEnabled && i == *chaosLink:
			// The misbehaving link: chaos wraps the plain source (drift and
			// chaos on the same link would confound the demo).
			chaosSrc, err = eng.AddChaosLink(id, sys, chaos, people...)
		case driftEnabled:
			err = eng.AddDriftLink(id, sys, drift, people...)
		default:
			err = eng.AddLink(id, sys, people...)
		}
		if err != nil {
			return err
		}
	}

	start := time.Now()
	restored := 0
	switch {
	case *journalDir != "":
		ids, err := eng.EnableJournal(*journalDir, mlink.JournalConfig{SyncEvery: *journalSyn})
		if err != nil {
			return err
		}
		restored = len(ids)
		fmt.Printf("journal %s: recovered %d/%d link baselines (fsync every %v)\n", *journalDir, restored, *nLinks, *journalSyn)
	case *profiles != "":
		ids, err := eng.LoadProfiles(*profiles)
		if err != nil {
			return err
		}
		restored = len(ids)
		fmt.Printf("restored %d/%d link baselines from %s\n", restored, *nLinks, *profiles)
	}
	if restored < *nLinks {
		fmt.Printf("calibrating %d links (%d packets each, scheme %s)...\n", *nLinks-restored, *calN, scheme)
		if err := eng.CalibrateMissing(*calN); err != nil {
			return err
		}
	}
	fmt.Printf("fleet ready in %v\n", time.Since(start).Round(time.Millisecond))
	var m mlink.EngineMetrics // reused across polls (MetricsInto)
	eng.MetricsInto(&m)
	for _, lm := range m.PerLink {
		fmt.Printf("  link %-8s mean mu %6.3f  threshold %7.4f\n", lm.ID, lm.MeanMu, lm.Threshold)
	}

	if chaosSrc != nil {
		// Calibration is done on clean captures; the faults start with
		// monitoring.
		chaosSrc.Arm(true)
		fmt.Printf("chaos %q armed on link %d\n", *chaosName, *chaosLink)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -http mounts the serving plane next to the scoring loop: verdict and
	// metrics snapshots plus encode-once SSE verdict streaming. It drains
	// with the run — SIGTERM closes subscribers, finishes in-flight
	// requests, then the daemon syncs its journal and prints the final
	// report as usual.
	var serveDone chan error
	serveStop := func() {}
	if *httpAddr != "" {
		srvCtx, srvCancel := context.WithCancel(ctx)
		serveStop = srvCancel
		serveDone = make(chan error, 1)
		go func() { serveDone <- mlink.Serve(srvCtx, eng, *httpAddr, mlink.ServeOptions{Logf: log.Printf}) }()
		fmt.Printf("http API on %s (/v1/verdict /v1/links /metrics /v1/stream)\n", *httpAddr)
	}

	runErr := eng.Run(ctx, *windows)

	if serveDone != nil {
		eng.CloseStream() // every SSE subscriber sees a clean end-of-stream
		serveStop()
		if err := <-serveDone; err != nil {
			log.Printf("http API: %v", err)
		}
		fmt.Println("http API drained")
	}
	if runErr != nil {
		return runErr
	}

	eng.MetricsInto(&m)
	fmt.Printf("\nscored %d windows (%d frames) at %.1f windows/s across %d links\n",
		m.WindowsScored, m.FramesSeen, m.ScoresPerSec, m.Links)
	// Scheduler picture: how evenly the work-stealing shards shared the
	// fleet, and what each link's window actually costs (the EWMA the
	// stealing decisions route around).
	fmt.Printf("scheduler: %d shards, %d steals", len(m.Shards), m.Steals)
	for i, sm := range m.Shards {
		fmt.Printf("  [s%d %d windows, %.0f%% busy]", i, sm.WindowsScored, 100*sm.Utilization)
	}
	fmt.Println()
	for _, lm := range m.PerLink {
		fmt.Printf("  link %-10s cost %8.1f µs/window (EWMA)\n", lm.ID, lm.NsPerWindowEWMA/1e3)
	}
	if *adaptOn || *fleetOn {
		for _, lm := range m.PerLink {
			h := lm.Health
			fmt.Printf("  link %-10s health %-11s  z %6.1f  shift %5.2f dB  refreshes %3d  relocks %d  thr %7.4f  recal-needed %v\n",
				lm.ID, h.State, h.DriftZ, h.ProfileShiftDB, h.Refreshes, h.Relocks, lm.Threshold, h.NeedsRecalibration)
		}
	}
	if *superOn || chaosEnabled {
		printMu.Lock()
		for _, lm := range m.PerLink {
			// A supervised link that never transitioned ran live end to end.
			lc, ok := lastLifecycle[lm.ID]
			if !ok {
				lc = mlink.LinkLive
			}
			fmt.Printf("  link %-10s lifecycle %-12s  drops %4d  reconnects %d\n",
				lm.ID, lc, lm.SourceDrops, lm.Reconnects)
		}
		printMu.Unlock()
	}
	if chaosSrc != nil {
		st := chaosSrc.Stats()
		fmt.Printf("chaos ground truth: delivered %d, dropped %d, stalls %d, drips %d, eofs %d, fails %d, torn %d, reconnects %d (%d redials refused)\n",
			st.Delivered, st.Dropped, st.Stalls, st.Drips, st.EOFs, st.Fails, st.Torn, st.Reconnects, st.FailedConnects)
	}
	if rep, ok := eng.FleetReport(); ok {
		fmt.Printf("fleet classification: %s (links %d, drifting %d, jumped %d, quarantined %d, walking %d; relocks %d, recals dispatched %d, quarantines cleared %d)\n",
			rep.State, rep.Links, rep.Drifting, rep.Jumped, rep.Quarantined, rep.Walking,
			rep.Relocks, rep.RecalsDispatched, rep.QuarantinesCleared)
	}
	v, err := eng.Verdict()
	if err != nil {
		return err
	}
	fmt.Printf("final site verdict [%s]: present=%v score=%.3f (%d/%d links positive)\n",
		v.Policy, v.Present, v.Score, v.Positive, v.Total)
	switch {
	case *journalDir != "":
		if err := eng.CloseJournal(); err != nil {
			return err
		}
		fmt.Printf("journal %s: compacted and closed\n", *journalDir)
	case *profiles != "":
		ids, err := eng.SaveProfiles(*profiles)
		if err != nil {
			return err
		}
		fmt.Printf("persisted %d link baselines to %s\n", len(ids), *profiles)
	}
	return nil
}
