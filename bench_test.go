package mlink

// Benchmark harness: one benchmark per figure of the paper (see DESIGN.md's
// per-experiment index) plus ablations of the design choices DESIGN.md
// calls out. Each benchmark runs its experiment driver and reports the
// headline quantity of the corresponding figure via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every reported result. Full
// tables are printed by cmd/mlink-exp.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/engine"
	"mlink/internal/eval"
	"mlink/internal/experiments"
	"mlink/internal/fleet"
	"mlink/internal/geom"
	"mlink/internal/music"
	"mlink/internal/propagation"
	"mlink/internal/sanitize"
	"mlink/internal/scenario"
	"mlink/internal/serve"
	"mlink/internal/supervise"
)

// Shared heavyweight fixtures, built once per bench binary.
var (
	charOnce sync.Once
	charRes  *experiments.CharacterizationResult
	charErr  error

	campOnce sync.Once
	campRes  *experiments.Campaign
	campErr  error
)

func characterization(b *testing.B) *experiments.CharacterizationResult {
	b.Helper()
	charOnce.Do(func() {
		charRes, charErr = experiments.RunCharacterization(200, 10, 1)
	})
	if charErr != nil {
		b.Fatal(charErr)
	}
	return charRes
}

func campaign(b *testing.B) *experiments.Campaign {
	b.Helper()
	campOnce.Do(func() {
		cfg := experiments.DefaultCampaignConfig()
		campRes, campErr = experiments.RunCampaign(cfg)
	})
	if campErr != nil {
		b.Fatal(campErr)
	}
	return campRes
}

func BenchmarkFig2aRSSChangeCDF(b *testing.B) {
	c := characterization(b)
	var frac float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2a(c, 25)
		if err != nil {
			b.Fatal(err)
		}
		frac = r.FracNegative
	}
	b.ReportMetric(frac, "fracRSSdrop")
}

func BenchmarkFig2bCrossingTrace(b *testing.B) {
	var divergent float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2b(400, 1)
		if err != nil {
			b.Fatal(err)
		}
		divergent = float64(r.DivergentPackets)
	}
	b.ReportMetric(divergent, "divergentPkts")
}

func BenchmarkFig3aMultipathFactorCDF(b *testing.B) {
	c := characterization(b)
	var med float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3a(c, 25)
		if err != nil {
			b.Fatal(err)
		}
		med = r.P50
	}
	b.ReportMetric(med, "medianMu")
}

func BenchmarkFig3bLogFit(b *testing.B) {
	c := characterization(b)
	var slope float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3bc(c, []int{5})
		if err != nil {
			b.Fatal(err)
		}
		slope = r.Fits[0].A
	}
	b.ReportMetric(slope, "fitSlopeA")
}

func BenchmarkFig3cLogFitAcrossSubcarriers(b *testing.B) {
	c := characterization(b)
	var mono float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3bc(c, []int{5, 10, 15, 20, 25})
		if err != nil {
			b.Fatal(err)
		}
		mono = r.MonotoneFraction
	}
	b.ReportMetric(mono, "monotoneFrac")
}

func BenchmarkFig4TemporalStability(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(600, 1)
		if err != nil {
			b.Fatal(err)
		}
		spread = r.Locations[0].MaxSpread
	}
	b.ReportMetric(spread, "maxMuSpread")
}

func BenchmarkFig5bMUSICPseudospectrum(b *testing.B) {
	var peaks float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5b(100, 1)
		if err != nil {
			b.Fatal(err)
		}
		peaks = float64(len(r.Peaks))
	}
	b.ReportMetric(peaks, "peaks")
}

func BenchmarkFig5cRSSByAngle(b *testing.B) {
	var peakDeg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5c(16, 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		peakDeg = r.PeakAngleDeg
	}
	b.ReportMetric(peakDeg, "peakAngleDeg")
}

func BenchmarkFig7ROC(b *testing.B) {
	c := campaign(b)
	var basTPR, subTPR, pathTPR, pathFPR float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(c)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.PerScheme {
			switch s.Scheme {
			case core.SchemeBaseline:
				basTPR = s.Balanced.TPR
			case core.SchemeSubcarrier:
				subTPR = s.Balanced.TPR
			case core.SchemeSubcarrierPath:
				pathTPR = s.Balanced.TPR
				pathFPR = s.Balanced.FPR
			}
		}
	}
	b.ReportMetric(100*basTPR, "baselineTP%")
	b.ReportMetric(100*subTPR, "subcarrierTP%")
	b.ReportMetric(100*pathTPR, "pathTP%")
	b.ReportMetric(100*pathFPR, "pathFP%")
}

func BenchmarkFig8PerCase(b *testing.B) {
	c := campaign(b)
	var case3 float64
	for i := 0; i < b.N; i++ {
		roc, err := experiments.Fig7(c)
		if err != nil {
			b.Fatal(err)
		}
		r, err := experiments.Fig8(c, roc, []int{1, 2, 3, 4, 5})
		if err != nil {
			b.Fatal(err)
		}
		case3 = r.PerScheme[core.SchemeSubcarrierPath][2]
	}
	b.ReportMetric(100*case3, "case3PathTP%")
}

func BenchmarkFig9DetectionRange(b *testing.B) {
	var basRange, pathRange float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(25, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		basRange = r.RangeAt90[core.SchemeBaseline]
		pathRange = r.RangeAt90[core.SchemeSubcarrierPath]
	}
	b.ReportMetric(basRange, "baselineRange_m")
	b.ReportMetric(pathRange, "pathRange_m")
}

func BenchmarkFig10AngleErrors(b *testing.B) {
	var medSingle, medAvg float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(40, 25, 1)
		if err != nil {
			b.Fatal(err)
		}
		medSingle = r.MedianSingle
		medAvg = r.MedianAvg
	}
	b.ReportMetric(medSingle, "medErrSingle_deg")
	b.ReportMetric(medAvg, "medErrAvg_deg")
}

func BenchmarkFig11PerAngle(b *testing.B) {
	var gainLarge float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(7, 1.5, 25, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Path-weighting gain over baseline at the largest angle bin.
		last := len(r.AnglesDeg) - 1
		gainLarge = r.PerScheme[core.SchemeSubcarrierPath][last] - r.PerScheme[core.SchemeBaseline][last]
	}
	b.ReportMetric(100*gainLarge, "largeAngleGain_pp")
}

func BenchmarkFig12PacketQuantity(b *testing.B) {
	var at25 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12([]int{1, 5, 25}, 1)
		if err != nil {
			b.Fatal(err)
		}
		at25 = r.PerScheme[core.SchemeSubcarrierPath][2]
	}
	b.ReportMetric(100*at25, "pathTPat25pkts%")
}

// --- Synthesis pipeline (cached vs naive) ------------------------------

// BenchmarkEnvironmentResponse compares the naive per-ray channel synthesis
// against the phasor-cached ResponseInto path, for an empty room and with a
// person on the link. Both paths stay runnable so the speedup is always
// measurable; the cache-consistency tests bound their divergence below 1e-9.
func BenchmarkEnvironmentResponse(b *testing.B) {
	s, err := scenario.Classroom(5)
	if err != nil {
		b.Fatal(err)
	}
	freqs := s.Grid.Frequencies()
	if err := s.Env.PrepareGrid(freqs); err != nil {
		b.Fatal(err)
	}
	bodies := []body.Body{body.Default(s.LinkMidpoint())}
	cases := []struct {
		name   string
		bodies []body.Body
	}{
		{"empty", nil},
		{"occupied", bodies},
	}
	for _, tc := range cases {
		b.Run("naive/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Env.Response(freqs, tc.bodies)
			}
		})
		b.Run("cached/"+tc.name, func(b *testing.B) {
			dst := make([][]complex128, len(s.Env.RX.Elements))
			for i := range dst {
				dst[i] = make([]complex128, len(freqs))
			}
			sc := &propagation.ResponseScratch{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Env.ResponseInto(dst, tc.bodies, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtractorCapture compares one full packet capture — synthesis
// plus impairments — on the naive path (fresh allocations, per-ray
// evaluation) against the cached path (CaptureInto on a pooled frame).
func BenchmarkExtractorCapture(b *testing.B) {
	s, err := scenario.Classroom(5)
	if err != nil {
		b.Fatal(err)
	}
	x, err := s.NewExtractor(3)
	if err != nil {
		b.Fatal(err)
	}
	bodies := []body.Body{body.Default(s.LinkMidpoint())}
	cases := []struct {
		name   string
		bodies []body.Body
	}{
		{"empty", nil},
		{"occupied", bodies},
	}
	for _, tc := range cases {
		b.Run("naive/"+tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				x.CaptureNaive(tc.bodies)
			}
		})
		b.Run("cached/"+tc.name, func(b *testing.B) {
			f := csi.NewFrame(len(x.Env.RX.Elements), x.Grid.Len())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := x.CaptureInto(f, tc.bodies); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Engine (multi-link monitoring) ------------------------------------

// Pre-recorded empty-room frames shared by the engine benchmarks, so they
// measure scoring throughput rather than simulation cost.
var (
	engineFramesOnce sync.Once
	engineFrames     []*csi.Frame
	engineScenario   *scenario.Scenario
	engineFramesErr  error
)

func engineFixture(b *testing.B) (*scenario.Scenario, []*csi.Frame) {
	b.Helper()
	engineFramesOnce.Do(func() {
		s, err := scenario.LinkCase(2, 7)
		if err != nil {
			engineFramesErr = err
			return
		}
		x, err := s.NewExtractor(1)
		if err != nil {
			engineFramesErr = err
			return
		}
		engineScenario = s
		engineFrames = x.CaptureN(200, nil)
	})
	if engineFramesErr != nil {
		b.Fatal(engineFramesErr)
	}
	return engineScenario, engineFrames
}

// benchmarkEngineScoring drives an 8-link fleet through the engine's
// scoring pool with the given worker count. One benchmark op is one
// monitoring window per link. Frames are replayed from memory; detector
// profiles are calibrated once outside the timer.
func benchmarkEngineScoring(b *testing.B, workers int) {
	const links = 8
	s, frames := engineFixture(b)
	e := engine.New(engine.Config{Workers: workers, WindowSize: 25, Fusion: engine.KOfN{K: 1}})
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	// Warm-up: one window per link primes the persistent shard scratches and
	// window slabs, so the timer sees only the steady state.
	if err := e.Run(ctx, 1); err != nil {
		b.Fatal(err)
	}
	warm := e.Metrics().WindowsScored
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(ctx, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	scored := float64(e.Metrics().WindowsScored - warm)
	b.ReportMetric(scored/b.Elapsed().Seconds(), "scores/s")
}

// BenchmarkEngineScoringWorkers reports fleet scoring throughput as the
// pool grows — the scores/s metric should scale near-linearly with workers
// up to the machine's core count (on a single-core host the curve is flat).
func BenchmarkEngineScoringWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchmarkEngineScoring(b, w)
		})
	}
}

// BenchmarkEngineSteadyState measures one full steady-state tick of the
// sharded pipeline per benchmark op: every link of an 8-link fleet pulls and
// scores one window, and every fleet-wide round of decisions triggers a
// fused site verdict plus a metrics poll through the reuse-friendly
// VerdictInto/MetricsInto/LinksInto paths — the complete monitoring loop a
// daemon like mlink-serve runs forever. A warm-up Run primes the per-link
// slabs, shard scratches and report buffers outside the timer; after it the
// loop must report 0 allocs/op (cmd/benchcheck enforces this in CI; the
// constant per-Run setup — spawning shards, one context — amortizes to zero
// over the ≥100 timed ops CI's precise pass uses).
func BenchmarkEngineSteadyState(b *testing.B) {
	const links = 8
	s, frames := engineFixture(b)
	var (
		reportMu sync.Mutex
		decided  int
		verdict  engine.SiteVerdict
		metrics  engine.Metrics
		ids      []string
		verdicts uint64
		e        *engine.Engine
	)
	e = engine.New(engine.Config{
		Workers:    4,
		WindowSize: 25,
		Fusion:     engine.KOfN{K: 1},
		OnDecision: func(string, core.Decision) {
			// The daemon's report loop: after each fleet-wide round, fuse a
			// site verdict and poll the metrics block, all through the
			// allocation-free Into variants.
			reportMu.Lock()
			defer reportMu.Unlock()
			decided++
			if decided%links != 0 {
				return
			}
			if err := e.VerdictInto(&verdict); err != nil {
				b.Error(err)
			}
			e.MetricsInto(&metrics)
			ids = e.LinksInto(ids)
			verdicts++
		},
	})
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	// Warm-up: primes slabs, scratches and the report loop's buffers.
	if err := e.Run(ctx, 2); err != nil {
		b.Fatal(err)
	}
	warm := e.Metrics().WindowsScored
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(ctx, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	scored := float64(e.Metrics().WindowsScored - warm)
	b.ReportMetric(scored/b.Elapsed().Seconds(), "scores/s")
	if verdicts == 0 {
		b.Fatal("report loop never fused a verdict")
	}
}

// BenchmarkEngineSteadyStateSupervised is the steady-state loop with link
// supervision enabled: every source sits behind its per-link supervisor —
// a producer goroutine feeding a bounded SPSC ring the shard drains
// non-blockingly, plus a watcher ticking the staleness ladder — and the
// score path must STILL report 0 allocs/op (cmd/benchcheck enforces this
// in CI). The replay sources never stall or error here, so the measurement
// isolates the supervision overhead every healthy link pays forever: the
// ring handoff, the lifecycle/heartbeat bookkeeping, and the health
// weighting in fusion. The per-Run setup (supervisor goroutines, tickers)
// amortizes to zero over the ≥100 timed ops CI's precise pass uses.
func BenchmarkEngineSteadyStateSupervised(b *testing.B) {
	const links = 8
	s, frames := engineFixture(b)
	var (
		reportMu sync.Mutex
		decided  int
		verdict  engine.SiteVerdict
		metrics  engine.Metrics
		ids      []string
		verdicts uint64
		e        *engine.Engine
	)
	e = engine.New(engine.Config{
		Workers:    4,
		WindowSize: 25,
		Fusion:     engine.KOfN{K: 1},
		OnDecision: func(string, core.Decision) {
			reportMu.Lock()
			defer reportMu.Unlock()
			decided++
			if decided%links != 0 {
				return
			}
			if err := e.VerdictInto(&verdict); err != nil {
				b.Error(err)
			}
			e.MetricsInto(&metrics)
			ids = e.LinksInto(ids)
			verdicts++
		},
	})
	// Default policy: generous staleness thresholds keep the watcher ticker
	// cold relative to the scoring cadence, as a production deployment would.
	suppol := supervise.Policy{}
	if err := e.SetSupervision(&suppol); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	// Warm-up: primes slabs, scratches, report buffers, and the rings.
	if err := e.Run(ctx, 2); err != nil {
		b.Fatal(err)
	}
	warm := e.Metrics().WindowsScored
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(ctx, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	scored := float64(e.Metrics().WindowsScored - warm)
	b.ReportMetric(scored/b.Elapsed().Seconds(), "scores/s")
	if verdicts == 0 {
		b.Fatal("report loop never fused a verdict")
	}
}

// BenchmarkEngineSteadyStateJournal is the steady-state loop with crash-safe
// persistence attached: every link is adaptive and emits a journal delta for
// every scored window, the background syncer drains and fsyncs on a 5 ms
// cadence, and the score path must STILL report 0 allocs/op (cmd/benchcheck
// enforces this in CI). The adaptation policy disables profile refreshes
// (refresh rebuilds a profile, which allocates by design) so the measurement
// isolates the journal path: delta serialization into the shard's reused
// record buffer, the SPSC buffer handoff, and the syncer's absorb-and-write
// loop. Compaction is disabled — it rewrites whole files and belongs to
// shutdown/maintenance, not the steady state.
func BenchmarkEngineSteadyStateJournal(b *testing.B) {
	const links = 8
	s, frames := engineFixture(b)
	pol := adapt.Policy{SilentFraction: 1e-9, TrackBand: -1}
	e := engine.New(engine.Config{
		Workers:    4,
		WindowSize: 25,
		Adaptation: &pol,
	})
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	j, err := fleet.OpenJournal(b.TempDir(), fleet.JournalConfig{
		SyncEvery:    5 * time.Millisecond,
		CompactBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	if err := e.SetJournal(j); err != nil {
		b.Fatal(err)
	}
	// Warm-up: primes slabs and scratches, emits the one-off full records,
	// and — because a delta embeds the drift monitor's rolling rings — runs
	// long enough to fill those rings (default 20 windows) plus the null
	// buffer (32), so the delta record and every reused buffer behind it
	// reach their steady size before the timer starts.
	if err := e.Run(ctx, 56); err != nil {
		b.Fatal(err)
	}
	warm := e.Metrics().WindowsScored
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(ctx, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := j.Err(); err != nil {
		b.Fatal(err)
	}
	scored := float64(e.Metrics().WindowsScored - warm)
	b.ReportMetric(scored/b.Elapsed().Seconds(), "scores/s")
}

// BenchmarkEngineSteadyStateSkewed measures the scheduler's answer to a
// lopsided fleet: one link runs the MUSIC-weighted SchemeSubcarrierPath
// detector on a fine 0.05° angular grid (3601 steering rows against the
// default 181 — a survey-grade localization link) — several times more DSP
// per window than its 15 SchemeSubcarrier peers — so under static affinity
// the shard seeded with the heavy link drags its queue-mates and, once they
// retire, idles three of four workers behind it. The stealing/static sub-benchmark pair
// isolates the work-stealing win: on a multi-core host stealing finishes
// the same fleet quota measurably sooner because the cheap links drain
// through whichever shards have capacity while one shard grinds the heavy
// link. (On a single-core host the pair ties — there is no idle worker to
// steal onto — so CI's multi-core runner is where the gap is asserted.)
// One benchmark op is one window per link, as in the other engine benches.
func BenchmarkEngineSteadyStateSkewed(b *testing.B) {
	const links = 16
	run := func(b *testing.B, workers int, static bool) {
		s, frames := engineFixture(b)
		e := engine.New(engine.Config{
			Workers:        workers,
			WindowSize:     25,
			StaticAffinity: static,
			Fusion:         engine.KOfN{K: 1},
		})
		for i := 0; i < links; i++ {
			scheme := core.SchemeSubcarrier
			if i == 0 {
				scheme = core.SchemeSubcarrierPath
			}
			cfg := core.DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
			if i == 0 {
				cfg.SpectrumStepDeg = 0.05
			}
			if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
				b.Fatal(err)
			}
		}
		ctx := context.Background()
		if err := e.Calibrate(ctx, 60); err != nil {
			b.Fatal(err)
		}
		if err := e.Run(ctx, 1); err != nil { // warm slabs and scratches
			b.Fatal(err)
		}
		warm := e.Metrics()
		b.ReportAllocs()
		b.ResetTimer()
		if err := e.Run(ctx, b.N); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		m := e.Metrics()
		b.ReportMetric(float64(m.WindowsScored-warm.WindowsScored)/b.Elapsed().Seconds(), "scores/s")
		b.ReportMetric(float64(m.Steals-warm.Steals), "steals")
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("stealing/workers=%d", w), func(b *testing.B) { run(b, w, false) })
		b.Run(fmt.Sprintf("static/workers=%d", w), func(b *testing.B) { run(b, w, true) })
	}
}

// BenchmarkBroadcastFanout measures the serving plane's encode-once verdict
// fan-out: one benchmark op is one fused round published through the hub —
// VerdictInto from the engine's seqlock snapshots, one JSON/SSE
// serialization into a recycled frame, and a refcounted slice handed to
// every subscriber's latest-wins ring. The subscriber axis {1, 100, 10000}
// is the whole point: cost per round must not grow with watcher count
// beyond the O(subs) ring pushes (no per-subscriber encoding, no
// per-subscriber buffers), and the steady state must report 0 allocs/op —
// cmd/benchcheck enforces the alloc bound at every fan-out width. Idle
// subscribers model the worst case: nobody drains, every ring rotates
// through drop-oldest, and the frames recirculate through the freelist.
func BenchmarkBroadcastFanout(b *testing.B) {
	const links = 8
	s, frames := engineFixture(b)
	e := engine.New(engine.Config{Workers: 4, WindowSize: 25, Fusion: engine.KOfN{K: 1}})
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	// One window per link so every link has a decision and VerdictInto
	// fuses a full-coverage verdict each publish.
	if err := e.Run(ctx, 1); err != nil {
		b.Fatal(err)
	}
	for _, subs := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			// MaxLag -1: idle watchers coalesce forever instead of being
			// shed, so the fan-out width stays fixed through the run.
			hub := serve.NewHub(e, serve.HubOptions{MaxLag: -1})
			defer hub.Close()
			for i := 0; i < subs; i++ {
				if _, err := hub.Subscribe(); err != nil {
					b.Fatal(err)
				}
			}
			// Warm-up: fill the rings and the frame freelist so the timer
			// sees only recycled buffers.
			for i := 0; i < 8; i++ {
				if err := hub.PublishRound(); err != nil {
					b.Fatal(err)
				}
			}
			start := hub.Encodes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := hub.PublishRound(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := hub.Encodes() - start; got != uint64(b.N) {
				b.Fatalf("encoded %d rounds for %d publishes — fan-out must encode exactly once per round", got, b.N)
			}
		})
	}
}

// BenchmarkEngineSteadyStateSubscribed is BenchmarkEngineSteadyState with
// the serving plane attached and maximally popular: 10 000 idle SSE
// subscribers hang off the hub while the fleet scores, and the report loop
// nudges the hub once per fused round exactly as the facade's OnDecision
// wiring does. The hub's encoder goroutine coalesces those nudges and
// publishes off the scoring path, so the scoring-side cost is one atomic
// add per decision plus a non-blocking channel send per round — benchcheck
// pins this via scale_vs against the unsubscribed baseline: thousands of
// watchers must not cost the scoring path a measurable slowdown.
func BenchmarkEngineSteadyStateSubscribed(b *testing.B) {
	const links = 8
	s, frames := engineFixture(b)
	var (
		reportMu sync.Mutex
		decided  int
		verdict  engine.SiteVerdict
		metrics  engine.Metrics
		ids      []string
		verdicts uint64
		e        *engine.Engine
		hub      *serve.Hub
	)
	e = engine.New(engine.Config{
		Workers:    4,
		WindowSize: 25,
		Fusion:     engine.KOfN{K: 1},
		OnDecision: func(string, core.Decision) {
			reportMu.Lock()
			defer reportMu.Unlock()
			decided++
			if decided%links != 0 {
				return
			}
			if err := e.VerdictInto(&verdict); err != nil {
				b.Error(err)
			}
			e.MetricsInto(&metrics)
			ids = e.LinksInto(ids)
			verdicts++
			hub.Notify()
		},
	})
	for i := 0; i < links; i++ {
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, engine.NewReplaySource(frames, true)); err != nil {
			b.Fatal(err)
		}
	}
	hub = serve.NewHub(e, serve.HubOptions{MaxLag: -1})
	defer hub.Close()
	hub.Start()
	for i := 0; i < 10000; i++ {
		if _, err := hub.Subscribe(); err != nil {
			b.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		b.Fatal(err)
	}
	// Warm-up: primes slabs, scratches, report buffers, rings and frames.
	if err := e.Run(ctx, 2); err != nil {
		b.Fatal(err)
	}
	warm := e.Metrics().WindowsScored
	b.ReportAllocs()
	b.ResetTimer()
	if err := e.Run(ctx, b.N); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	scored := float64(e.Metrics().WindowsScored - warm)
	b.ReportMetric(scored/b.Elapsed().Seconds(), "scores/s")
	if verdicts == 0 {
		b.Fatal("report loop never fused a verdict")
	}
	if hub.Rounds() == 0 {
		b.Fatal("hub never saw a round notification")
	}
}

// BenchmarkDetectorScorePath measures one full path-weighted window score —
// sanitize, subcarrier weights, monitor covariance + Bartlett angular
// spectrum, calibration spectrum from the profile's spectral partials,
// path-weighted distance — i.e. the per-window cost of the heavy link in the
// skewed fleet (SchemeSubcarrierPath, §IV-C). The profile is calibrated with
// the engine's 60-frame horizon so the calibration-side covariance cost is
// the one the daemon pays. Steady state must be 0 allocs/op, and benchcheck
// pins the PR 9 precomputation win (cached steering table + per-profile
// spectral partials) via prev_ns_per_op/min_speedup.
func BenchmarkDetectorScorePath(b *testing.B) {
	s, frames := engineFixture(b)
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrierPath, s.Env.RX.Offsets())
	profile, err := core.Calibrate(cfg, frames[:60])
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		b.Fatal(err)
	}
	window := frames[100:125]
	sc := core.NewScratch()
	if _, err := det.ScoreScratch(window, sc); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.ScoreScratch(window, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorScoreScratch compares the allocating Score path against
// ScoreScratch with a reused per-worker scratch — the engine's hot path.
func BenchmarkDetectorScoreScratch(b *testing.B) {
	s, frames := engineFixture(b)
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
	profile, err := core.Calibrate(cfg, frames[:100])
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		b.Fatal(err)
	}
	window := frames[100:125]
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := det.Score(window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scratch", func(b *testing.B) {
		sc := core.NewScratch()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := det.ScoreScratch(window, sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablations (DESIGN.md §5) ------------------------------------------

// ablationROC calibrates a detector variant on link case 2 and returns the
// balanced-point TPR over a small positive/negative sample set.
func ablationROC(b *testing.B, mutate func(*core.Config)) float64 {
	b.Helper()
	s, err := scenario.LinkCase(2, 3)
	if err != nil {
		b.Fatal(err)
	}
	x, err := s.NewExtractor(9)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrierPath, s.Env.RX.Offsets())
	mutate(&cfg)
	profile, err := core.Calibrate(cfg, x.CaptureN(150, nil))
	if err != nil {
		b.Fatal(err)
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var samples []eval.Sample
	for _, loc := range s.Grid3x3() {
		target := body.Default(loc)
		target.Position = geom.Point{X: loc.X + rng.NormFloat64()*0.01, Y: loc.Y + rng.NormFloat64()*0.01}
		pos, err := det.Score(x.CaptureN(25, []body.Body{target}))
		if err != nil {
			b.Fatal(err)
		}
		neg, err := det.Score(x.CaptureN(25, nil))
		if err != nil {
			b.Fatal(err)
		}
		samples = append(samples, eval.Sample{Score: pos, Positive: true}, eval.Sample{Score: neg})
	}
	points, err := eval.ROC(samples)
	if err != nil {
		b.Fatal(err)
	}
	bp, err := eval.BalancedPoint(points)
	if err != nil {
		b.Fatal(err)
	}
	return bp.TPR
}

// BenchmarkAblationStabilityRatio compares Eq. 15 (mean μ × stability
// ratio) against the plain per-packet Eq. 12 weighting.
func BenchmarkAblationStabilityRatio(b *testing.B) {
	var eq15, eq12 float64
	for i := 0; i < b.N; i++ {
		eq15 = ablationROC(b, func(c *core.Config) {})
		eq12 = ablationROC(b, func(c *core.Config) { c.UsePerPacketWeights = true })
	}
	b.ReportMetric(100*eq15, "eq15TP%")
	b.ReportMetric(100*eq12, "eq12TP%")
}

// BenchmarkAblationAngularClamp compares the paper's ±60° path-weight clamp
// against an unclamped ±90° window.
func BenchmarkAblationAngularClamp(b *testing.B) {
	var clamped, unclamped float64
	for i := 0; i < b.N; i++ {
		clamped = ablationROC(b, func(c *core.Config) {})
		unclamped = ablationROC(b, func(c *core.Config) {
			c.PathWeight.MinDeg = -89.9
			c.PathWeight.MaxDeg = 89.9
		})
	}
	b.ReportMetric(100*clamped, "clamped60TP%")
	b.ReportMetric(100*unclamped, "unclampedTP%")
}

// BenchmarkAblationSanitize compares detection with and without phase
// sanitization.
func BenchmarkAblationSanitize(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = ablationROC(b, func(c *core.Config) {})
		off = ablationROC(b, func(c *core.Config) { c.Sanitize = false })
	}
	b.ReportMetric(100*on, "sanitizedTP%")
	b.ReportMetric(100*off, "rawTP%")
}

// BenchmarkAblationLOSApprox grades the Eq. 10 dominant-tap LOS-power
// approximation against the simulator's oracle LOS power.
func BenchmarkAblationLOSApprox(b *testing.B) {
	s, err := scenario.Classroom(5)
	if err != nil {
		b.Fatal(err)
	}
	x, err := s.NewExtractor(7)
	if err != nil {
		b.Fatal(err)
	}
	freqs := s.Grid.Frequencies()
	var meanAbsErr float64
	for i := 0; i < b.N; i++ {
		var acc, count float64
		for p := 0; p < 20; p++ {
			f := x.Capture(nil)
			mu, err := core.MultipathFactors(f.CSI[1], s.Grid)
			if err != nil {
				b.Fatal(err)
			}
			for k := range mu {
				los, total := s.Env.OracleLOS(freqs[k], 1, nil)
				if total <= 0 {
					continue
				}
				oracle := los / total
				d := mu[k] - oracle
				if d < 0 {
					d = -d
				}
				acc += d
				count++
			}
		}
		meanAbsErr = acc / count
	}
	b.ReportMetric(meanAbsErr, "muAbsErrVsOracle")
}

// BenchmarkAblationAntennaCount measures MUSIC accuracy as the array grows
// (3 antennas as in the paper vs 8 — the paper's future-work lever).
func BenchmarkAblationAntennaCount(b *testing.B) {
	var err3, err8 float64
	for i := 0; i < b.N; i++ {
		err3 = angleErrWithAntennas(b, 3)
		err8 = angleErrWithAntennas(b, 8)
	}
	b.ReportMetric(err3, "medErr3ant_deg")
	b.ReportMetric(err8, "medErr8ant_deg")
}

func mustRoom(b *testing.B) *propagation.Room {
	b.Helper()
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		b.Fatal(err)
	}
	room.Walls[1].Mat = propagation.Concrete
	return room
}

func defaultParams() propagation.LinkParams { return propagation.DefaultLinkParams() }

func defaultImp() csi.Impairments { return csi.DefaultImpairments() }

func angleErrWithAntennas(b *testing.B, n int) float64 {
	b.Helper()
	s, err := scenario.Build(scenario.Spec{
		Name:       "ablation-array",
		Room:       mustRoom(b),
		TX:         geom.Point{X: 1.5, Y: 6.8},
		RXCenter:   geom.Point{X: 4.5, Y: 6.8},
		NumAnts:    n,
		Params:     defaultParams(),
		MaxBounces: 2,
		Imp:        defaultImp(),
		Seed:       77,
	})
	if err != nil {
		b.Fatal(err)
	}
	est, err := music.NewEstimator(s.Env.RX.Offsets(), 299792458.0/s.Grid.Center)
	if err != nil {
		b.Fatal(err)
	}
	var errs []float64
	for trial := 0; trial < 15; trial++ {
		x, err := s.NewExtractor(int64(500 + trial))
		if err != nil {
			b.Fatal(err)
		}
		frames := x.CaptureN(10, nil)
		clean, err := sanitize.Frames(frames, s.Grid.Indices)
		if err != nil {
			b.Fatal(err)
		}
		cov, err := music.Covariance(clean, nil)
		if err != nil {
			b.Fatal(err)
		}
		spec, err := est.Pseudospectrum(cov, 2)
		if err != nil {
			b.Fatal(err)
		}
		dom, err := spec.DominantAngle()
		if err != nil {
			b.Fatal(err)
		}
		// LOS arrives at broadside in this geometry.
		if dom < 0 {
			dom = -dom
		}
		errs = append(errs, dom)
	}
	// Median.
	for i := 1; i < len(errs); i++ {
		for j := i; j > 0 && errs[j] < errs[j-1]; j-- {
			errs[j], errs[j-1] = errs[j-1], errs[j]
		}
	}
	return errs[len(errs)/2]
}
