package mlink

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"mlink/internal/campus"
	"mlink/internal/serve"
)

// Serving-plane types, re-exported from the internal serve and campus
// packages so facade users can stream verdicts and aggregate sites without
// reaching into internal packages.
type (
	// VerdictSubscription is one watcher's handle on the engine's verdict
	// stream: Next blocks for the newest frame, TryNext polls, Close
	// unsubscribes. A subscriber that stops draining coalesces to the
	// latest round and is eventually shed; the engine never blocks on it.
	VerdictSubscription = serve.Subscription
	// VerdictFrame is one fused round encoded once for every subscriber:
	// Bytes is the complete SSE frame, JSON the bare verdict document.
	// Release it after use so the hub can recycle the buffer.
	VerdictFrame = serve.Frame
	// StreamOptions tunes the per-subscriber ring depth and shed threshold.
	StreamOptions = serve.HubOptions
	// Campus mounts many engines — one site each — under a single view:
	// per-site verdict routing, a cross-site rollup, batch profile
	// persistence and cross-site ambient correlation.
	Campus = campus.Aggregator
	// CampusConfig parameterizes a Campus.
	CampusConfig = campus.Config
	// CampusOverview is the rollup one Campus.Observe pass produces.
	CampusOverview = campus.Overview
)

// Re-exported streaming errors.
var (
	// ErrStreamShed reports a subscription the hub dropped for falling too
	// far behind.
	ErrStreamShed = serve.ErrShed
	// ErrStreamClosed reports a subscription closed by Close or engine
	// shutdown.
	ErrStreamClosed = serve.ErrClosed
)

// NewCampus builds an empty campus aggregator; mount engines with Add.
func NewCampus(cfg CampusConfig) *Campus { return campus.New(cfg) }

// streamHub lazily builds and starts the engine's broadcast hub: one
// encoder goroutine serializes each fused round exactly once and fans the
// shared frame out to every subscriber.
func (e *Engine) streamHub() *serve.Hub {
	e.hubOnce.Do(func() {
		h := serve.NewHub(e, serve.HubOptions{})
		h.Start()
		e.hub.Store(h)
	})
	return e.hub.Load()
}

// Subscribe attaches a verdict-stream watcher: every fused round is encoded
// once and delivered as a shared VerdictFrame. Slow watchers coalesce to the
// newest round; a watcher that stops draining entirely is shed
// (ErrStreamShed). The first Subscribe starts the stream hub.
func (e *Engine) Subscribe() (*VerdictSubscription, error) {
	sub, err := e.streamHub().Subscribe()
	if err != nil {
		return nil, fmt.Errorf("mlink subscribe: %w", err)
	}
	return sub, nil
}

// CloseStream shuts the verdict stream down: every subscription is closed
// (Next returns ErrStreamClosed) and frame buffers are released. A no-op if
// no stream was ever started. The engine itself keeps running.
func (e *Engine) CloseStream() {
	if h := e.hub.Load(); h != nil {
		h.Close()
	}
}

// ServeOptions tunes the HTTP serving plane.
type ServeOptions struct {
	// Logf, when non-nil, receives one line per request from the tracing
	// middleware (trace ID, method, path, status, duration).
	Logf func(format string, args ...any)
	// WriteTimeout bounds each SSE frame write; a subscriber that cannot
	// accept a frame within it is disconnected (0 = 10s).
	WriteTimeout time.Duration
}

// Handler returns the engine's HTTP API: GET /v1/verdict (fused site
// verdict, inconclusive served as a first-class document), GET /v1/links
// (per-link metrics), GET /metrics (Prometheus text) and GET /v1/stream
// (SSE verdict subscriptions, encoded once per round for all watchers).
// JSON endpoints are gzip-compressed on request and every response carries
// an X-Trace-Id header.
func (e *Engine) Handler(opts ...ServeOptions) http.Handler {
	var o ServeOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return serve.NewServer(e, serve.Options{
		Hub:          e.streamHub(),
		Logf:         o.Logf,
		WriteTimeout: o.WriteTimeout,
	}).Handler()
}

// Serve runs the engine's HTTP API on addr until ctx is cancelled, then
// drains gracefully: in-flight requests finish, SSE subscribers are closed.
// Run the engine itself in another goroutine; Serve only serves.
func Serve(ctx context.Context, e *Engine, addr string, opts ...ServeOptions) error {
	if err := serve.ListenAndServe(ctx, addr, e.Handler(opts...)); err != nil {
		return fmt.Errorf("mlink serve: %w", err)
	}
	return nil
}
