package mlink

import (
	"sync"
	"testing"
	"time"
)

// TestJournalRestartSemantics is the end-to-end crash story at the public
// API: an adaptive drifting fleet journals while running, the process is
// killed without any shutdown handshake, and a fresh process pointed at the
// same directory resumes the walked baselines — adaptation history intact,
// no spurious presence, and no step-change classification from the restart
// itself (a resumed baseline must look like the same room, not moved
// furniture).
func TestJournalRestartSemantics(t *testing.T) {
	dir := t.TempDir()

	build := func(onDecision func(string, Decision)) *Engine {
		eng := NewEngine(EngineConfig{
			Workers:    2,
			WindowSize: 25,
			Fusion:     WeightedKOfN{K: 1},
			OnDecision: onDecision,
		})
		if err := eng.EnableAdaptation(); err != nil {
			t.Fatal(err)
		}
		for i, seed := range []int64{11, 5} {
			sys, err := NewLinkCaseSystem(i+2, SchemeSubcarrier, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddDriftLink([]string{"walk1", "walk2"}[i], sys, GainWalkDrift(12)); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	// First process: calibrate, journal, run until the baselines have
	// visibly walked, then "die" (no CloseJournal — the crash case).
	engA := build(nil)
	if err := engA.Calibrate(150); err != nil {
		t.Fatal(err)
	}
	restored, err := engA.EnableJournal(dir, JournalConfig{SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("fresh directory restored %v", restored)
	}
	if err := engA.EnableFleet(); err != nil {
		t.Fatal(err)
	}
	if err := engA.Run(t.Context(), 14); err != nil {
		t.Fatal(err)
	}
	healthA := map[string]LinkHealth{}
	for _, lm := range engA.Metrics().PerLink {
		healthA[lm.ID] = lm.Health
		if lm.Health.Refreshes == 0 {
			t.Fatalf("link %s never refreshed — the kill is not mid-drift", lm.ID)
		}
		if lm.Health.NeedsRecalibration {
			t.Fatalf("link %s unhealthy before the kill: %+v", lm.ID, lm.Health)
		}
	}
	// engA is abandoned here with its journal open: a killed process.

	// Second process: same links, same directory. Watch every decision for
	// resume artifacts — a presence verdict the empty room never caused, a
	// quarantine, or a fleet step-change classification.
	var engB *Engine
	var mu sync.Mutex
	var present, stepChange, quarantined int
	probe := func(linkID string, d Decision) {
		mu.Lock()
		defer mu.Unlock()
		if d.Present {
			present++
		}
		for _, lm := range engB.Metrics().PerLink {
			if lm.Health.NeedsRecalibration {
				quarantined++
			}
		}
		if fr, ok := engB.FleetReport(); ok && fr.State == FleetStepChange {
			stepChange++
		}
	}
	engB = build(probe)
	restored, err = engB.EnableJournal(dir, JournalConfig{SyncEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %v, want both links", restored)
	}
	for _, lm := range engB.Metrics().PerLink {
		prev := healthA[lm.ID]
		if lm.Health.Refreshes != prev.Refreshes {
			t.Fatalf("link %s resumed with %d refreshes, the killed process had %d",
				lm.ID, lm.Health.Refreshes, prev.Refreshes)
		}
		if lm.Health.ThresholdUpdates != prev.ThresholdUpdates {
			t.Fatalf("link %s resumed with %d threshold updates, want %d",
				lm.ID, lm.Health.ThresholdUpdates, prev.ThresholdUpdates)
		}
		if lm.Health.State == HealthUnknown {
			t.Fatalf("link %s resumed without health state", lm.ID)
		}
	}
	if err := engB.EnableFleet(); err != nil {
		t.Fatal(err)
	}
	if err := engB.Run(t.Context(), 12); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if present != 0 {
		t.Errorf("%d spurious presence decisions after resume", present)
	}
	if quarantined != 0 {
		t.Errorf("%d post-resume decisions flagged recalibration", quarantined)
	}
	if stepChange != 0 {
		t.Errorf("fleet classified the resume as a step change %d times", stepChange)
	}
	for _, lm := range engB.Metrics().PerLink {
		if lm.Health.Refreshes < healthA[lm.ID].Refreshes {
			t.Errorf("link %s lost refresh history across the restart", lm.ID)
		}
	}
	if err := engB.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}
