package mlink

import (
	"errors"
	"fmt"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrier, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(200); err != nil {
		t.Fatal(err)
	}
	empty, err := sys.DetectPresence(25)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Present {
		t.Fatalf("false positive on empty room: %+v", empty)
	}
	present, err := sys.DetectPresence(25, &Person{X: 3, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !present.Present {
		t.Fatalf("missed LOS presence: %+v", present)
	}
	if present.Score <= empty.Score {
		t.Fatalf("presence score %v not above empty %v", present.Score, empty.Score)
	}
}

func TestDetectBeforeCalibrate(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeBaseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DetectPresence(25); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.ScoreWindow(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("err = %v, want ErrNotCalibrated", err)
	}
}

func TestLinkCaseSystems(t *testing.T) {
	for n := 1; n <= 5; n++ {
		sys, err := NewLinkCaseSystem(n, SchemeBaseline, int64(n))
		if err != nil {
			t.Fatalf("case %d: %v", n, err)
		}
		f := sys.Capture()
		if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
			t.Fatalf("case %d frame %dx%d", n, f.NumAntennas(), f.NumSubcarriers())
		}
	}
	if _, err := NewLinkCaseSystem(9, SchemeBaseline, 1); err == nil {
		t.Fatal("case 9 accepted")
	}
}

func TestAssessLink(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrier, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, perSub, err := sys.AssessLink(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(perSub) != 30 {
		t.Fatalf("perSub = %d", len(perSub))
	}
	if mean <= 0 || mean > 5 {
		t.Fatalf("mean mu = %v", mean)
	}
}

func TestCustomPerson(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeBaseline, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A larger person must perturb the channel at least as much as a tiny
	// one when blocking the LOS.
	small := sys.CaptureWindow(5, &Person{X: 3, Y: 4, Radius: 0.05, RCS: 0.05})
	large := sys.CaptureWindow(5, &Person{X: 3, Y: 4, Radius: 0.35, RCS: 1.5})
	if len(small) != 5 || len(large) != 5 {
		t.Fatal("window sizes wrong")
	}
	// nil people are skipped.
	f := sys.Capture(nil, &Person{X: 3, Y: 4}, nil)
	if f == nil {
		t.Fatal("capture failed")
	}
}

func TestSystemAdaptation(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrier, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableAdaptation(); err != nil {
		t.Fatal(err)
	}
	if h := sys.Health(); h.State != HealthUnknown {
		t.Fatalf("health before calibrate = %+v", h)
	}
	if err := sys.Calibrate(200); err != nil {
		t.Fatal(err)
	}
	var last Decision
	for i := 0; i < 10; i++ {
		if last, err = sys.DetectPresence(25); err != nil {
			t.Fatal(err)
		}
		if last.Present {
			t.Fatalf("false positive on empty room at window %d: %+v", i, last)
		}
	}
	h := sys.Health()
	if h.Refreshes == 0 {
		t.Fatalf("no profile refreshes after 10 empty windows: %+v", h)
	}
	if h.State == HealthQuarantined {
		t.Fatalf("quiet link quarantined: %+v", h)
	}
	// Presence still detected after adaptation has been refreshing.
	present, err := sys.DetectPresence(25, &Person{X: 3, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !present.Present {
		t.Fatalf("missed LOS presence after adaptation: %+v", present)
	}
}

func TestEngineFacadeAdaptiveDriftFleet(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2, WindowSize: 25, Fusion: WeightedKOfN{K: 1}})
	if err := eng.EnableAdaptation(); err != nil {
		t.Fatal(err)
	}
	sysA, err := NewLinkCaseSystem(2, SchemeSubcarrier, 11)
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := NewLinkCaseSystem(3, SchemeSubcarrier, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.AddDriftLink("walking", sysA, GainWalkDrift(12)); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddLink("steady", sysB); err != nil {
		t.Fatal(err)
	}
	if err := eng.Calibrate(150); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(t.Context(), 8); err != nil {
		t.Fatal(err)
	}
	v, err := eng.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v.Total != 2 {
		t.Fatalf("fused %d links", v.Total)
	}
	for _, ld := range v.Links {
		if ld.Weight <= 0 || ld.Weight > 1 {
			t.Fatalf("link %s fusion weight %v out of (0,1]", ld.LinkID, ld.Weight)
		}
	}
	m := eng.Metrics()
	for _, lm := range m.PerLink {
		if !lm.Adaptive {
			t.Fatalf("link %s not adaptive", lm.ID)
		}
	}
}

// TestEngineFacadeRecalibrateClearsQuarantine walks the full recovery
// story: a furniture move mid-run quarantines the adaptive link, and
// Recalibrate (room empty again) rebuilds it into a healthy link whose
// post-move baseline no longer false-alarms.
func TestEngineFacadeRecalibrateClearsQuarantine(t *testing.T) {
	eng := NewEngine(EngineConfig{Workers: 2, WindowSize: 25})
	if err := eng.EnableAdaptation(); err != nil {
		t.Fatal(err)
	}
	// Seed 2 matches the experiments quarantine test: its furniture step
	// shifts scores far past the threshold (on gentler seeds the same move
	// can land under the silent gate and be legitimately absorbed).
	sys, err := NewLinkCaseSystem(2, SchemeSubcarrier, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Calibration consumes 300 packets (150 + 150 holdout); the furniture
	// moves 150 packets into monitoring.
	if err := eng.AddDriftLink("furn", sys, FurnitureMoveDrift(450)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Calibrate(150); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(t.Context(), 30); err != nil {
		t.Fatal(err)
	}
	h := eng.Metrics().PerLink[0].Health
	if !h.NeedsRecalibration {
		t.Fatalf("furniture move did not flag recalibration: %+v", h)
	}
	if err := eng.Recalibrate("furn", 150); err != nil {
		t.Fatal(err)
	}
	h = eng.Metrics().PerLink[0].Health
	if h.NeedsRecalibration {
		t.Fatalf("recalibration did not clear the flag: %+v", h)
	}
	// The rebuilt baseline includes the moved furniture. The fresh
	// adapter still has to bootstrap through this extractor's OU gain
	// excursion (~10 windows of transient alarms on this seed), so give it
	// the full horizon and judge the settled state.
	if err := eng.Run(t.Context(), 30); err != nil {
		t.Fatal(err)
	}
	lm := eng.Metrics().PerLink[0]
	if lm.Health.NeedsRecalibration || lm.Health.State == HealthQuarantined {
		t.Fatalf("recalibrated link did not recover: %+v", lm)
	}
	if lm.Present {
		t.Fatalf("recalibrated link still false-alarming after settling: %+v", lm)
	}
}

func TestScoreWindowExternalFrames(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrierPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(200); err != nil {
		t.Fatal(err)
	}
	window := sys.CaptureWindow(25, &Person{X: 3, Y: 4})
	score, err := sys.ScoreWindow(window)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("score = %v", score)
	}
}

// TestEngineFacadeFleetMode drives the whole fleet layer through the public
// facade: three links sharing one correlated ambient event, coordinated
// recovery (relocks + staggered online recalibration), and profile
// persistence across an engine "restart".
func TestEngineFacadeFleetMode(t *testing.T) {
	build := func() *Engine {
		eng := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
		if err := eng.EnableAdaptation(); err != nil {
			t.Fatal(err)
		}
		// Gain walk + 6 dB AGC step at packet 1100 (window 20 of
		// monitoring, after the 600-packet calibration).
		preset := AmbientSiteDrift(2, 6, 1100)
		for i := 1; i <= 3; i++ {
			sys, err := NewLinkCaseSystem(i+1, SchemeSubcarrier, 20+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddDriftLink(fmt.Sprintf("l%d", i), sys, preset); err != nil {
				t.Fatal(err)
			}
		}
		return eng
	}

	eng := build()
	if err := eng.EnableFleet(); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.FleetReport(); !ok {
		t.Fatal("fleet report unavailable after EnableFleet")
	}
	if err := eng.Calibrate(300); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(t.Context(), 48); err != nil {
		t.Fatal(err)
	}
	rep, ok := eng.FleetReport()
	if !ok {
		t.Fatal("no fleet report after run")
	}
	if rep.Relocks == 0 {
		t.Fatalf("ambient step never relocked: %+v", rep)
	}
	for _, lm := range eng.Metrics().PerLink {
		if lm.Health.NeedsRecalibration {
			t.Fatalf("link %s still quarantined after fleet recovery: %+v", lm.ID, lm.Health)
		}
	}

	// Persistence: save, "restart", load, and the restored fleet monitors
	// on without recalibrating. A drift-free fleet is used here — a
	// restarted *simulated* drift stream rewinds to packet 0, which no
	// persisted baseline should be expected to match; the bit-exact
	// restore-mid-stream check lives in the fleet store tests, which feed
	// both engines identical frames.
	buildStatic := func() *Engine {
		e := NewEngine(EngineConfig{Workers: 1, WindowSize: 25, Fusion: KOfN{K: 1}})
		if err := e.EnableAdaptation(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 2; i++ {
			sys, err := NewLinkCaseSystem(i+1, SchemeSubcarrier, 40+int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.AddLink(fmt.Sprintf("s%d", i), sys); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	engA := buildStatic()
	if err := engA.Calibrate(300); err != nil {
		t.Fatal(err)
	}
	if err := engA.Run(t.Context(), 12); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	saved, err := engA.SaveProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 {
		t.Fatalf("saved %v", saved)
	}
	engB := buildStatic()
	restored, err := engB.LoadProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 2 {
		t.Fatalf("restored %v", restored)
	}
	if err := engB.CalibrateMissing(300); err != nil {
		t.Fatal(err)
	}
	if err := engB.Run(t.Context(), 6); err != nil {
		t.Fatal(err)
	}
	for i, lm := range engB.Metrics().PerLink {
		if lm.WindowsScored == 0 || lm.Health.NeedsRecalibration {
			t.Fatalf("restored link %s unhealthy: %+v", lm.ID, lm)
		}
		// The walked baseline came back, not a fresh calibration: the
		// restored link carries the first engine's full refresh history
		// (a fresh calibration would have started the counter over).
		if lm.Health.Refreshes < engA.Metrics().PerLink[i].Health.Refreshes {
			t.Fatalf("restored link %s lost its adaptation history: %+v", lm.ID, lm.Health)
		}
	}
}
