package mlink

import (
	"errors"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrier, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(200); err != nil {
		t.Fatal(err)
	}
	empty, err := sys.DetectPresence(25)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Present {
		t.Fatalf("false positive on empty room: %+v", empty)
	}
	present, err := sys.DetectPresence(25, &Person{X: 3, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !present.Present {
		t.Fatalf("missed LOS presence: %+v", present)
	}
	if present.Score <= empty.Score {
		t.Fatalf("presence score %v not above empty %v", present.Score, empty.Score)
	}
}

func TestDetectBeforeCalibrate(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeBaseline, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DetectPresence(25); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.ScoreWindow(nil); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("err = %v, want ErrNotCalibrated", err)
	}
}

func TestLinkCaseSystems(t *testing.T) {
	for n := 1; n <= 5; n++ {
		sys, err := NewLinkCaseSystem(n, SchemeBaseline, int64(n))
		if err != nil {
			t.Fatalf("case %d: %v", n, err)
		}
		f := sys.Capture()
		if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
			t.Fatalf("case %d frame %dx%d", n, f.NumAntennas(), f.NumSubcarriers())
		}
	}
	if _, err := NewLinkCaseSystem(9, SchemeBaseline, 1); err == nil {
		t.Fatal("case 9 accepted")
	}
}

func TestAssessLink(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrier, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, perSub, err := sys.AssessLink(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(perSub) != 30 {
		t.Fatalf("perSub = %d", len(perSub))
	}
	if mean <= 0 || mean > 5 {
		t.Fatalf("mean mu = %v", mean)
	}
}

func TestCustomPerson(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeBaseline, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A larger person must perturb the channel at least as much as a tiny
	// one when blocking the LOS.
	small := sys.CaptureWindow(5, &Person{X: 3, Y: 4, Radius: 0.05, RCS: 0.05})
	large := sys.CaptureWindow(5, &Person{X: 3, Y: 4, Radius: 0.35, RCS: 1.5})
	if len(small) != 5 || len(large) != 5 {
		t.Fatal("window sizes wrong")
	}
	// nil people are skipped.
	f := sys.Capture(nil, &Person{X: 3, Y: 4}, nil)
	if f == nil {
		t.Fatal("capture failed")
	}
}

func TestScoreWindowExternalFrames(t *testing.T) {
	sys, err := NewClassroomSystem(SchemeSubcarrierPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Calibrate(200); err != nil {
		t.Fatal(err)
	}
	window := sys.CaptureWindow(25, &Person{X: 3, Y: 4})
	score, err := sys.ScoreWindow(window)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Fatalf("score = %v", score)
	}
}
