// Coverage-survey: maps where in the room a person is detectable — the
// coverage-extension claim of the paper made visible. For a grid of target
// positions it scores baseline vs the full subcarrier+path scheme and
// prints ASCII detection maps ('#' detected, '.' missed, T/R the link).
package main

import (
	"fmt"
	"log"

	"mlink"
	"mlink/internal/core"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	gridW = 16
	gridH = 12
	roomW = 6.0
	roomH = 8.0
)

func surveyMap(scheme core.Scheme) ([][]bool, *scenario.Scenario, error) {
	s, err := scenario.Classroom(11)
	if err != nil {
		return nil, nil, err
	}
	sys, err := mlink.NewSystem(s, scheme)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.Calibrate(300); err != nil {
		return nil, nil, err
	}
	detected := make([][]bool, gridH)
	for gy := 0; gy < gridH; gy++ {
		detected[gy] = make([]bool, gridW)
		for gx := 0; gx < gridW; gx++ {
			p := cell(gx, gy)
			// Keep a margin from the walls.
			if p.X < 0.4 || p.X > roomW-0.4 || p.Y < 0.4 || p.Y > roomH-0.4 {
				continue
			}
			dec, err := sys.DetectPresence(25, &mlink.Person{X: p.X, Y: p.Y})
			if err != nil {
				return nil, nil, err
			}
			detected[gy][gx] = dec.Present
		}
	}
	return detected, s, nil
}

func cell(gx, gy int) geom.Point {
	return geom.Point{
		X: (float64(gx) + 0.5) / gridW * roomW,
		Y: (float64(gy) + 0.5) / gridH * roomH,
	}
}

func render(name string, m [][]bool, s *scenario.Scenario) {
	fmt.Printf("\n%s — detection map (6m x 8m classroom, '#' detected)\n", name)
	count, total := 0, 0
	for gy := gridH - 1; gy >= 0; gy-- {
		for gx := 0; gx < gridW; gx++ {
			p := cell(gx, gy)
			switch {
			case p.Dist(s.TX()) < 0.3:
				fmt.Print("T")
			case p.Dist(s.RXCenter()) < 0.3:
				fmt.Print("R")
			case m[gy][gx]:
				fmt.Print("#")
				count++
				total++
			default:
				fmt.Print(".")
				total++
			}
		}
		fmt.Println()
	}
	fmt.Printf("coverage: %d/%d cells (%.0f%%)\n", count, total, 100*float64(count)/float64(total))
}

func run() error {
	for _, tc := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"baseline", core.SchemeBaseline},
		{"subcarrier+path weighting", core.SchemeSubcarrierPath},
	} {
		m, s, err := surveyMap(tc.scheme)
		if err != nil {
			return err
		}
		render(tc.name, m, s)
	}
	return nil
}
