// Office-monitor: the distributed deployment end to end, in one process. A
// csinet server emulates the receiver NIC of office link case 4 and streams
// CSI over TCP; a collector client calibrates and watches windows while a
// scripted person enters and leaves the room.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/csinet"
	"mlink/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s, err := scenario.LinkCase(4, 7)
	if err != nil {
		return err
	}

	// --- Server side: emulated NIC daemon -----------------------------
	indices := make([]int16, s.Grid.Len())
	for i, idx := range s.Grid.Indices {
		indices[i] = int16(idx)
	}
	hello := csinet.Hello{
		CenterFreqHz:   s.Grid.Center,
		NumAntennas:    3,
		NumSubcarriers: uint8(s.Grid.Len()),
		Indices:        indices,
	}
	// Scripted occupancy: empty during calibration, then a person walks to
	// the middle of the link, lingers, and leaves.
	const (
		calPackets   = 250
		enterAt      = 400
		leaveAt      = 650
		totalPackets = 900
	)
	target := body.Default(s.LinkMidpoint())
	factory := func() csinet.Source {
		x, err := s.NewExtractor(42)
		if err != nil {
			return csinet.SourceFunc(func() (*csi.Frame, error) { return nil, err })
		}
		rng := rand.New(rand.NewSource(99))
		bg, err := scenario.NewBackground(3, scenario.DefaultAnchors(s), rng)
		if err != nil {
			return csinet.SourceFunc(func() (*csi.Frame, error) { return nil, err })
		}
		n := 0
		return csinet.SourceFunc(func() (*csi.Frame, error) {
			bodies := bg.Step()
			if n >= enterAt && n < leaveAt {
				bodies = append(bodies, target)
			}
			n++
			return x.Capture(bodies), nil
		})
	}
	srv, err := csinet.NewServer("127.0.0.1:0", hello, factory)
	if err != nil {
		return err
	}
	defer srv.Close()
	go srv.Serve(context.Background()) //nolint:errcheck — ends on Close

	// --- Client side: collector + detector ----------------------------
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := csinet.Dial(ctx, srv.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	grid, err := channel.NewIntel5300Grid(client.Hello().CenterFreqHz)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(grid, core.SchemeSubcarrierPath, s.Env.RX.Offsets())

	fmt.Printf("monitoring %s over %s\n", s.Name, srv.Addr())
	cal, err := client.RecvN(calPackets)
	if err != nil {
		return err
	}
	profile, err := core.Calibrate(cfg, cal[:150])
	if err != nil {
		return err
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		return err
	}
	null, err := det.SelfScores(cal[150:], 25, 25)
	if err != nil {
		return err
	}
	threshold, err := det.CalibrateThreshold(null, 0.95, 1.8)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated threshold %.4f; person enters at packet %d, leaves at %d\n",
		threshold, enterAt, leaveAt)

	const window = 25
	for start := calPackets; start+window <= totalPackets; start += window {
		frames, err := client.RecvN(window)
		if err != nil {
			return err
		}
		dec, err := det.Detect(frames)
		if err != nil {
			return err
		}
		status := "clear  "
		if dec.Present {
			status = "PRESENT"
		}
		truth := "empty"
		if start >= enterAt && start < leaveAt {
			truth = "occupied"
		}
		fmt.Printf("packets %4d-%4d  [%s]  score %7.4f  (truth: %s)\n",
			start, start+window-1, status, dec.Score, truth)
	}
	return nil
}
