// Office-monitor: a three-link office site run end to end with fleet
// coordination. Every link shares one ambient event — a slow receiver gain
// walk plus a 6 dB AGC re-lock step mid-run — which per-link adaptation
// alone would misread as three separate intrusions and quarantine away. The
// fleet coordinator sees the correlated evidence, classifies it as
// ambient drift, relocks the baselines and schedules staggered online
// recalibrations; when a real person then walks onto one link, the site
// still alarms and the coordinator classifies the perturbation as
// localized — never as a reason to recalibrate. The adapted baselines are
// persisted at the end, the way a daemon restart would resume them.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/engine"
	"mlink/internal/fleet"
	"mlink/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		calPackets = 300
		window     = 25
		seed       = 7
	)
	// One correlated event for the whole site: 2 dB/min thermal walk, and
	// the receiver re-locks its gain +6 dB at packet 1100 (monitoring
	// window 20 after the 600-packet calibration).
	preset := scenario.AmbientDrift(2, 6, 1100)

	var (
		eng     *engine.Engine
		coord   *fleet.Coordinator
		verdict engine.SiteVerdict
		decided int
		last    fleet.State
	)
	pol := adapt.Policy{} // package defaults
	eng = engine.New(engine.Config{
		Workers:         1,
		WindowSize:      window,
		ThresholdMargin: 2.5,
		Fusion:          engine.KOfN{K: 1},
		Adaptation:      &pol,
		OnDecision: func(id string, d core.Decision) {
			decided++
			if decided%3 != 0 {
				return
			}
			if err := eng.VerdictInto(&verdict); err != nil {
				return
			}
			rep := coord.Observe(&verdict)
			mark := "     "
			if verdict.Present {
				mark = "ALARM"
			}
			fmt.Printf("round %3d  %s  site score %.2f (%d/%d links positive)\n",
				decided/3, mark, verdict.Score, verdict.Positive, verdict.Total)
			if rep.State != last {
				last = rep.State
				fmt.Printf("           fleet -> %s (drifting %d, jumped %d, quarantined %d; relocks %d, recals %d)\n",
					rep.State, rep.Drifting, rep.Jumped, rep.Quarantined, rep.Relocks, rep.RecalsDispatched)
			}
		},
	})
	coord = fleet.New(fleet.Config{}, eng)

	streams := make([]*scenario.DriftStream, 0, 3)
	var personBody body.Body
	for i, caseN := range []int{2, 3, 4} {
		s, err := scenario.LinkCase(caseN, seed+int64(i))
		if err != nil {
			return err
		}
		stream, err := s.NewDriftStream(preset, 1)
		if err != nil {
			return err
		}
		id := fmt.Sprintf("office-%d", i+1)
		if err := eng.AddLink(id, core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets()), stream); err != nil {
			return err
		}
		streams = append(streams, stream)
		if i == 1 {
			personBody = body.Default(s.LinkMidpoint())
		}
	}

	ctx := context.Background()
	fmt.Println("calibrating 3 office links (empty room)...")
	if err := eng.Calibrate(ctx, calPackets); err != nil {
		return err
	}

	fmt.Println("\n-- empty office; the site-wide gain event lands at window 20 --")
	if err := eng.Run(ctx, 48); err != nil {
		return err
	}

	fmt.Println("\n-- a person walks onto link office-2 --")
	streams[1].SetBodies([]body.Body{personBody})
	if err := eng.Run(ctx, 6); err != nil {
		return err
	}

	fmt.Println("\n-- the person leaves --")
	streams[1].SetBodies(nil)
	if err := eng.Run(ctx, 6); err != nil {
		return err
	}

	rep := coord.Report()
	fmt.Printf("\nfleet summary: state %s, relocks %d, recals dispatched %d, quarantines cleared %d\n",
		rep.State, rep.Relocks, rep.RecalsDispatched, rep.QuarantinesCleared)
	for _, lm := range eng.Metrics().PerLink {
		h := lm.Health
		fmt.Printf("  %s health %-9s thr %.3f shift %.2f dB refreshes %d recal-needed %v\n",
			lm.ID, h.State, lm.Threshold, h.ProfileShiftDB, h.Refreshes, h.NeedsRecalibration)
	}

	// Persist the adapted baselines exactly as a daemon shutdown would; a
	// restart Loads them back and resumes without recalibrating.
	dir, err := os.MkdirTemp("", "office-profiles-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	saved, err := fleet.Store{Dir: dir}.Save(eng)
	if err != nil {
		return err
	}
	fmt.Printf("persisted %d adapted baselines (restart recipe: fleet.Store.Load, then Engine.CalibrateMissing)\n", len(saved))
	return nil
}
