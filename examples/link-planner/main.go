// Link-planner: the "guidelines for infrastructure assessment and
// deployment" use case from the paper's introduction. For several candidate
// receiver placements in the same room it measures the mean multipath
// factor and the per-subcarrier spread, then ranks the placements by
// predicted detection sensitivity (Δs falls logarithmically with μ, §III-B).
package main

import (
	"fmt"
	"log"
	"sort"

	"mlink"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/propagation"
	"mlink/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type candidate struct {
	name   string
	rx     geom.Point
	meanMu float64
	spread float64
}

func run() error {
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		return err
	}
	room.Walls[1].Mat = propagation.Concrete
	tx := geom.Point{X: 1, Y: 4}

	candidates := []candidate{
		{name: "mid-room, 4 m link", rx: geom.Point{X: 5, Y: 4}},
		{name: "near concrete wall", rx: geom.Point{X: 5.5, Y: 7.2}},
		{name: "short 2.5 m link", rx: geom.Point{X: 3.5, Y: 4}},
		{name: "corner placement", rx: geom.Point{X: 5.4, Y: 0.8}},
	}

	for i := range candidates {
		s, err := scenario.Build(scenario.Spec{
			Name:       candidates[i].name,
			Room:       room,
			TX:         tx,
			RXCenter:   candidates[i].rx,
			NumAnts:    3,
			Params:     propagation.DefaultLinkParams(),
			MaxBounces: 2,
			Imp:        csi.DefaultImpairments(),
			Seed:       int64(20 + i),
		})
		if err != nil {
			return err
		}
		sys, err := mlink.NewSystem(s, mlink.SchemeSubcarrier)
		if err != nil {
			return err
		}
		mean, perSub, err := sys.AssessLink(100)
		if err != nil {
			return err
		}
		lo, hi := perSub[0], perSub[0]
		for _, v := range perSub {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		candidates[i].meanMu = mean
		candidates[i].spread = hi - lo
	}

	// Rank: higher mean μ and wider spread ⇒ more subcarriers in the
	// sensitive (destructive-superposition) regime to pick from.
	sort.Slice(candidates, func(a, b int) bool {
		return candidates[a].meanMu+candidates[a].spread > candidates[b].meanMu+candidates[b].spread
	})

	fmt.Println("receiver placement assessment (TX fixed at (1,4))")
	fmt.Printf("%-22s  %10s  %10s  %s\n", "placement", "mean μ", "μ spread", "assessment")
	for i, c := range candidates {
		verdict := "adequate"
		switch {
		case i == 0:
			verdict = "best: most tunable subcarriers"
		case c.meanMu < 0.9 && c.spread < 0.2:
			verdict = "LOS-dominated: limited weighting gain"
		}
		fmt.Printf("%-22s  %10.3f  %10.3f  %s\n", c.name, c.meanMu, c.spread, verdict)
	}
	return nil
}
