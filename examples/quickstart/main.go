// Quickstart: build the paper's 4 m classroom link, calibrate, and detect a
// person — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"mlink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The full scheme: subcarrier weighting (frequency diversity) plus
	// MUSIC path weighting (spatial diversity).
	sys, err := mlink.NewClassroomSystem(mlink.SchemeSubcarrierPath, 1)
	if err != nil {
		return err
	}

	// Calibration stage (§IV-C): record the empty room.
	fmt.Println("calibrating on the empty room...")
	if err := sys.Calibrate(300); err != nil {
		return err
	}
	fmt.Printf("threshold: %.4f\n", sys.Detector().Threshold())

	// Assess the link while we are at it: the mean multipath factor is the
	// paper's deployment-quality proxy.
	mu, _, err := sys.AssessLink(50)
	if err != nil {
		return err
	}
	fmt.Printf("link mean multipath factor: %.3f (≈1 ⇒ LOS-dominated, >1 ⇒ fade-prone)\n\n", mu)

	// Monitoring stage: 25-packet windows (0.5 s at the paper's 50 pkt/s).
	cases := []struct {
		name   string
		person *mlink.Person
	}{
		{"empty room", nil},
		{"person on the LOS (3,4)", &mlink.Person{X: 3, Y: 4}},
		{"person 1 m off the link (3,5)", &mlink.Person{X: 3, Y: 5}},
		{"empty again", nil},
	}
	for _, tc := range cases {
		dec, err := sys.DetectPresence(25, tc.person)
		if err != nil {
			return err
		}
		verdict := "clear"
		if dec.Present {
			verdict = "PRESENT"
		}
		fmt.Printf("%-32s → %-7s (score %.4f)\n", tc.name, verdict, dec.Score)
	}
	return nil
}
