package adapt

import (
	"math"
	"testing"
)

// TestAtomicHealthRoundTrip pins the single pack/unpack implementation: every
// Health field must survive a Store/Load cycle, so that a field added to
// Health cannot silently vanish from the lock-free publication path.
func TestAtomicHealthRoundTrip(t *testing.T) {
	in := Health{
		State:              StateDrifting,
		DriftZ:             -3.25,
		ScoreZ:             7.5,
		JumpExceeded:       true,
		ProfileShiftDB:     1.75,
		ShiftRateDB:        -0.125,
		Refreshes:          42,
		ThresholdUpdates:   7,
		Relocks:            3,
		Threshold:          2.5,
		NeedsRecalibration: true,
		RefreshSuppressed:  true,
	}
	var a AtomicHealth
	a.Store(in)
	if out := a.Load(); out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

// TestAdapterSuppressedRefresh: with refreshes suppressed, silent windows
// must leave the profile untouched, and the suppression must be visible in
// the published health; lifting it resumes refreshes.
func TestAdapterSuppressedRefresh(t *testing.T) {
	h := newHarness(t, 61)
	a, err := NewAdapter(Policy{}, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	a.SetRefreshSuppressed(true)
	var health Health
	for i := 0; i < 8; i++ {
		health = h.observe(t, a)
	}
	if health.Refreshes != 0 {
		t.Fatalf("suppressed adapter refreshed %d times", health.Refreshes)
	}
	if !health.RefreshSuppressed {
		t.Fatal("suppression not visible in health")
	}
	a.SetRefreshSuppressed(false)
	for i := 0; i < 8; i++ {
		health = h.observe(t, a)
	}
	if health.Refreshes == 0 {
		t.Fatal("no refreshes after suppression lifted")
	}
	if health.RefreshSuppressed {
		t.Fatal("suppression still reported after being lifted")
	}
}

// TestAdapterRelockClearsQuarantine: a step change latches the quarantine;
// a fleet relock must clear it, adopt the current level as the baseline, and
// leave the adapter scoring quietly (the post-relock windows score near
// zero against the adopted profile).
func TestAdapterRelockClearsQuarantine(t *testing.T) {
	h := newHarness(t, 63)
	a, err := NewAdapter(Policy{}, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		h.observe(t, a)
	}
	// A gain step big enough to latch the drift monitor critical: scale
	// every captured window before scoring, as a receiver re-lock would.
	stepWindow := func() Health {
		window := h.x.CaptureN(25, nil)
		for _, f := range window {
			for ant := range f.CSI {
				for k := range f.CSI[ant] {
					f.CSI[ant][k] *= 4 // +12 dB
				}
			}
		}
		dec, err := h.det.DetectScratch(window, h.sc)
		if err != nil {
			t.Fatal(err)
		}
		health, err := a.Observe(window, dec)
		if err != nil {
			t.Fatal(err)
		}
		return health
	}
	var health Health
	for i := 0; i < 8; i++ {
		health = stepWindow()
	}
	if !health.NeedsRecalibration {
		t.Fatalf("12 dB step did not quarantine: %+v", health)
	}
	relocksBefore := health.Relocks

	a.RequestRelock()
	health = stepWindow() // relock adopts this stepped window as the baseline
	if health.NeedsRecalibration {
		t.Fatalf("relock left NeedsRecalibration set: %+v", health)
	}
	if health.Relocks != relocksBefore+1 {
		t.Fatalf("relock count %d, want %d", health.Relocks, relocksBefore+1)
	}
	// Post-relock, stepped windows ARE the baseline: scores must sit far
	// below the (unchanged) threshold again.
	window := h.x.CaptureN(25, nil)
	for _, f := range window {
		for ant := range f.CSI {
			for k := range f.CSI[ant] {
				f.CSI[ant][k] *= 4
			}
		}
	}
	dec, err := h.det.DetectScratch(window, h.sc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Present {
		t.Fatalf("stepped window still alarms after relock: score %v thr %v", dec.Score, dec.Threshold)
	}
}

// TestAdapterPersistRoundTrip: an adapter serialized mid-stream and restored
// must score and adapt identically to the original from that point on.
func TestAdapterPersistRoundTrip(t *testing.T) {
	h := newHarness(t, 65)
	pol := Policy{RederiveEvery: 4}
	a, err := NewAdapter(pol, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.observe(t, a)
	}

	blob, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.det.Kernel().Config()
	b, det2, err := Restore(pol, cfg, blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Health(), a.Health(); got != want {
		t.Fatalf("restored health %+v != original %+v", got, want)
	}
	if got, want := det2.Threshold(), h.det.Threshold(); got != want {
		t.Fatalf("restored threshold %v != %v", got, want)
	}

	// Feed both adapters the same future windows: decisions and health must
	// track exactly (1e-9 is the acceptance bound; in practice the paths
	// are bit-identical).
	for i := 0; i < 12; i++ {
		window := h.x.CaptureN(25, nil)
		decA, err := h.det.DetectScratch(window, h.sc)
		if err != nil {
			t.Fatal(err)
		}
		decB, err := det2.Detect(window)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(decA.Score-decB.Score) > 1e-9 || decA.Present != decB.Present {
			t.Fatalf("window %d diverged: original %+v restored %+v", i, decA, decB)
		}
		ha, err := a.Observe(window, decA)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.Observe(window, decB)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ha.DriftZ-hb.DriftZ) > 1e-9 || ha.Refreshes != hb.Refreshes ||
			ha.ThresholdUpdates != hb.ThresholdUpdates || ha.State != hb.State {
			t.Fatalf("window %d health diverged:\n orig %+v\n rest %+v", i, ha, hb)
		}
	}
	if a.Health().Refreshes == 0 {
		t.Fatal("no refreshes — the round trip proved nothing")
	}

	// Corrupt snapshots must be rejected, not misread.
	if _, _, err := Restore(pol, cfg, blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated snapshot restored")
	}
	if _, _, err := Restore(pol, cfg, append([]byte{0}, blob...)); err == nil {
		t.Fatal("garbage snapshot restored")
	}
}
