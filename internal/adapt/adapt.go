package adapt

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"mlink/internal/core"
	"mlink/internal/csi"
)

// ErrBadPolicy reports an invalid adaptation policy.
var ErrBadPolicy = errors.New("adapt: bad policy")

// State is a link's adaptation health classification.
type State int

const (
	// StateUnknown: not enough monitoring history yet (also the zero value
	// reported for links without adaptation).
	StateUnknown State = iota
	// StateHealthy: score statistics consistent with calibration.
	StateHealthy
	// StateDrifting: the baseline is walking; the profile is being
	// refreshed and the link's fusion vote is discounted.
	StateDrifting
	// StateQuarantined: drift exceeded the critical bound; adaptation
	// cannot recover the baseline and the link needs recalibration. Its
	// fusion vote is heavily discounted until then.
	StateQuarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateUnknown:
		return "unknown"
	case StateHealthy:
		return "healthy"
	case StateDrifting:
		return "drifting"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Lifecycle is a link's source-connectivity state, owned by the supervision
// layer (internal/supervise) and stamped into Health snapshots the engine
// hands out. It is orthogonal to the drift State: State says whether the
// link's *baseline* can be trusted, Lifecycle says whether the link is
// *delivering frames at all*. The zero value means the link runs without
// supervision (the pre-supervision behaviour: every source is assumed live).
type Lifecycle int

const (
	// LifecycleUnsupervised: no supervisor watches this link's source.
	LifecycleUnsupervised Lifecycle = iota
	// LifecycleLive: frames are arriving at the expected cadence.
	LifecycleLive
	// LifecycleStale: no frame for longer than the staleness bound — the
	// link's last decision is aging and its fusion vote is decayed.
	LifecycleStale
	// LifecycleDown: the source stalled past the down bound, failed, or
	// ended; the link is excluded from fusion until it recovers.
	LifecycleDown
	// LifecycleRecovering: the source reconnected but has not yet delivered
	// enough consecutive frames to count as live again (the anti-flap
	// hysteresis hold); still excluded from fusion.
	LifecycleRecovering
)

// String names the lifecycle state.
func (l Lifecycle) String() string {
	switch l {
	case LifecycleUnsupervised:
		return "unsupervised"
	case LifecycleLive:
		return "live"
	case LifecycleStale:
		return "stale"
	case LifecycleDown:
		return "down"
	case LifecycleRecovering:
		return "recovering"
	default:
		return fmt.Sprintf("lifecycle(%d)", int(l))
	}
}

// Health is a link's adaptation status snapshot, surfaced per link in the
// engine's verdicts and metrics. Beyond the classified State it carries the
// structured drift evidence — signed deviations, the step-vs-walk
// discriminator, and the profile-walk trend — that the fleet coordination
// layer fuses across links to tell a person (few links perturbed) from
// ambient drift (many links moving together).
type Health struct {
	// State classifies the link.
	State State
	// DriftZ is the current windowed score-statistics z value (0 until the
	// drift monitor has enough samples). Its sign is the drift direction:
	// positive means the link scores above its adapted baseline.
	DriftZ float64
	// ScoreZ is the latest single window's standardized deviation — the
	// fast, low-lag evidence signal (a step change shows here windows
	// before the rolling DriftZ catches up).
	ScoreZ float64
	// JumpExceeded reports a step-like score jump in the recent history:
	// the arrival discriminator that separates a person or moved cabinet
	// from a creeping gain walk.
	JumpExceeded bool
	// ProfileShiftDB is how far the adapted profile has walked from the
	// calibration original (mean |ΔRSS| in dB).
	ProfileShiftDB float64
	// ShiftRateDB is the smoothed per-window change of ProfileShiftDB — the
	// trend of the walk. Near zero for a settled baseline, sustained
	// positive while adaptation is actively chasing a moving environment.
	ShiftRateDB float64
	// Refreshes counts applied silent-window profile updates.
	Refreshes uint64
	// ThresholdUpdates counts online threshold re-derivations.
	ThresholdUpdates uint64
	// Relocks counts fleet-requested baseline relocks (full profile
	// adoptions that cleared a quarantine).
	Relocks uint64
	// Threshold is the link's current decision threshold.
	Threshold float64
	// NeedsRecalibration is sticky once the link is quarantined; it clears
	// when a fresh calibration replaces the adapter, or when the fleet
	// layer relocks the baseline after attributing the shift to ambient,
	// site-wide drift.
	NeedsRecalibration bool
	// RefreshSuppressed reports that profile refreshes are currently held
	// off by the fleet layer (a localized perturbation — likely a person —
	// must not be absorbed into the baseline).
	RefreshSuppressed bool
	// Lifecycle is the link's source-connectivity state, stamped by the
	// engine from the supervision layer at snapshot time. Transient by
	// design: it is never persisted (a restart re-learns connectivity from
	// scratch) and stays LifecycleUnsupervised when supervision is off.
	Lifecycle Lifecycle
}

// Weight converts health into a fusion vote multiplier in (0, 1]: healthy
// and unknown links vote at full weight, drifting links at less than half
// weight, and any link still flagged NeedsRecalibration — currently
// quarantined, or recovered from an excursion onto a baseline that may not
// be the calibrated one — at a small fraction that cannot outvote a
// healthy link on its own.
//
// The lifecycle axis composes multiplicatively on top of the drift axis: a
// stale link's last decision is aging, so its vote decays to a quarter; a
// down or recovering link has no current evidence at all, so its weight
// collapses below engine.MinFusibleWeight and the fusion layer skips it
// entirely (without reading it as the "unset → full weight" zero).
func (h Health) Weight() float64 {
	switch h.Lifecycle {
	case LifecycleDown, LifecycleRecovering:
		return 1e-9
	}
	w := 1.0
	if h.NeedsRecalibration {
		w = 0.1
	} else if h.State == StateDrifting {
		w = 0.4
	}
	if h.Lifecycle == LifecycleStale {
		w *= 0.25
	}
	return w
}

// Policy parameterizes per-link adaptation. The zero value selects the
// defaults noted per field.
type Policy struct {
	// Alpha is the EWMA weight of one silent window in the profile refresh
	// (0 = core.DefaultProfileAlpha).
	Alpha float64
	// SilentFraction gates profile refresh: a window refreshes the profile
	// only when its score ≤ SilentFraction × threshold, i.e. it is
	// confidently empty, not merely below threshold (default 0.9).
	SilentFraction float64
	// TrackBand enables the sustained-tracking refresh that bootstraps a
	// walked baseline: a window whose score is within TrackBand × σ₀ of the
	// rolling score mean is consistent with the recent past — a gradual
	// baseline walk, not an arrival — and refreshes the profile even above
	// the threshold. A person stepping onto the link is a step change:
	// outside the band at first, then driving the drift monitor critical
	// (which suspends tracking refreshes) before the rolling mean can
	// absorb them. 0 selects 4 (an on-link person registers tens of σ₀, so
	// the band keeps an order-of-magnitude margin); negative disables
	// tracking refreshes.
	TrackBand float64
	// RederiveEvery re-derives the threshold after this many profile
	// refreshes (default 8; ≤0 keeps the default, use a huge value to pin
	// the threshold).
	RederiveEvery int
	// NullWindow is the rolling null-score buffer length the threshold is
	// re-derived from (default 32).
	NullWindow int
	// Quantile and Margin parameterize the online threshold re-derivation,
	// exactly as in core.Detector.CalibrateThreshold (defaults 0.95, 1.3).
	Quantile, Margin float64
	// MinThresholdFactor floors the re-derived threshold at this fraction
	// of the calibration-time threshold, so a quiet stretch cannot
	// collapse the threshold into the noise (default 0.8). The rolling
	// null window spans seconds while receiver gain wanders on a
	// multi-second time constant, so the rolling q95 systematically
	// under-samples the stationary null spread — the floor, anchored to
	// the calibration estimate, is what keeps that bias from ratcheting
	// the threshold down until ordinary gain wander alarms.
	MinThresholdFactor float64
	// Drift parameterizes the windowed score-statistics drift test. The
	// monitor's reference is rebased onto the rolling null distribution at
	// every threshold re-derivation, so its critical bound means "walked
	// away from even the adapted baseline".
	Drift core.DriftConfig
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.SilentFraction <= 0 {
		p.SilentFraction = 0.9
	}
	if p.TrackBand == 0 {
		p.TrackBand = 4
	}
	if p.RederiveEvery <= 0 {
		p.RederiveEvery = 8
	}
	if p.NullWindow <= 0 {
		p.NullWindow = 32
	}
	if p.Quantile <= 0 || p.Quantile > 1 {
		p.Quantile = 0.95
	}
	if p.Margin <= 0 {
		p.Margin = 1.3
	}
	if p.MinThresholdFactor <= 0 {
		p.MinThresholdFactor = 0.8
	}
	return p
}

func (p Policy) validate() error {
	if p.SilentFraction > 1 {
		return fmt.Errorf("silent fraction %v > 1 would refresh on detections: %w", p.SilentFraction, ErrBadPolicy)
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("alpha %v out of [0,1]: %w", p.Alpha, ErrBadPolicy)
	}
	return nil
}

// Adapter runs the adaptation policy for one link: it owns the link's
// mutable profile state and drift monitor, and pushes refreshed profiles
// and thresholds into the link's detector.
//
// Observe is single-writer: a link's observations are inherently ordered (the
// drift monitor's jump discriminator and the EWMA refresh sequence are
// order-sensitive), so exactly one goroutine — the engine shard that owns the
// link, or the single-link System — may call it, and it takes no lock.
// Health may be read from any goroutine at any time: snapshots are published
// through an atomic seqlock, so readers never block the observer.
type Adapter struct {
	pol Policy

	det           *core.Detector
	lp            *core.LinkProfile
	mon           *core.DriftMonitor
	ws            core.WindowStats
	sc            *core.Scratch
	nulls         []float64 // rolling null scores, newest appended
	baseThr       float64   // calibration-time threshold (floor reference)
	health        Health    // observer-owned working copy
	sinceRederive int
	lastShiftDB   float64 // previous ProfileShiftDB, for the trend estimate

	// stScratch is reused by the persistence appenders so journal emission
	// off the Observe path serializes the drift-monitor state without
	// allocating per record.
	stScratch core.DriftMonitorState

	// Fleet-layer control requests. Both are set from arbitrary goroutines
	// (the coordinator) and consumed inside Observe by the single owner, so
	// the observer's state stays single-writer.
	suppress atomic.Bool // hold off profile refreshes (localized perturbation)
	relock   atomic.Bool // one-shot: adopt the current window as the baseline

	pub healthPub
}

// SetRefreshSuppressed asks the observer to hold off (or resume) profile
// refreshes. The fleet layer raises it while it attributes a link's drift to
// a localized perturbation — likely a person — that must not be EWMA-absorbed
// into the baseline. Safe from any goroutine; takes effect at the next
// Observe.
func (a *Adapter) SetRefreshSuppressed(on bool) { a.suppress.Store(on) }

// RequestRelock asks the observer to adopt the next window wholesale as the
// new baseline: the profile is replaced with that window's statistics, the
// drift monitor's rolling state is reset, and the quarantine (including the
// sticky NeedsRecalibration flag) is cleared. The fleet layer requests it
// when correlated evidence across the site shows the shift was ambient —
// receiver-chain or environment-wide — so the level the link sits at now is
// the empty room, not an intruder. Safe from any goroutine; applied once, at
// the next Observe.
func (a *Adapter) RequestRelock() { a.relock.Store(true) }

// AtomicHealth stores a Health snapshot field-by-field in atomics. Store
// and Load are individually race-free but not mutually consistent on their
// own — wrap them in a sequence lock (as healthPub here and the engine's
// per-link state do) when a torn multi-field snapshot would matter. Having
// exactly one pack/unpack implementation keeps every publisher in lockstep
// when Health grows a field.
type AtomicHealth struct {
	state      atomic.Int32
	driftZ     atomic.Uint64
	scoreZ     atomic.Uint64
	jump       atomic.Bool
	shiftDB    atomic.Uint64
	shiftRate  atomic.Uint64
	refreshes  atomic.Uint64
	thrUpdates atomic.Uint64
	relocks    atomic.Uint64
	threshold  atomic.Uint64
	needsRecal atomic.Bool
	suppressed atomic.Bool
	lifecycle  atomic.Int32
}

// Store writes every field of h atomically.
func (a *AtomicHealth) Store(h Health) {
	a.state.Store(int32(h.State))
	a.driftZ.Store(math.Float64bits(h.DriftZ))
	a.scoreZ.Store(math.Float64bits(h.ScoreZ))
	a.jump.Store(h.JumpExceeded)
	a.shiftDB.Store(math.Float64bits(h.ProfileShiftDB))
	a.shiftRate.Store(math.Float64bits(h.ShiftRateDB))
	a.refreshes.Store(h.Refreshes)
	a.thrUpdates.Store(h.ThresholdUpdates)
	a.relocks.Store(h.Relocks)
	a.threshold.Store(math.Float64bits(h.Threshold))
	a.needsRecal.Store(h.NeedsRecalibration)
	a.suppressed.Store(h.RefreshSuppressed)
	a.lifecycle.Store(int32(h.Lifecycle))
}

// Load reads every field atomically.
func (a *AtomicHealth) Load() Health {
	return Health{
		State:              State(a.state.Load()),
		DriftZ:             math.Float64frombits(a.driftZ.Load()),
		ScoreZ:             math.Float64frombits(a.scoreZ.Load()),
		JumpExceeded:       a.jump.Load(),
		ProfileShiftDB:     math.Float64frombits(a.shiftDB.Load()),
		ShiftRateDB:        math.Float64frombits(a.shiftRate.Load()),
		Refreshes:          a.refreshes.Load(),
		ThresholdUpdates:   a.thrUpdates.Load(),
		Relocks:            a.relocks.Load(),
		Threshold:          math.Float64frombits(a.threshold.Load()),
		NeedsRecalibration: a.needsRecal.Load(),
		RefreshSuppressed:  a.suppressed.Load(),
		Lifecycle:          Lifecycle(a.lifecycle.Load()),
	}
}

// healthPub atomically publishes Health snapshots: the writer bumps seq to
// odd, stores every field atomically, bumps seq back to even; readers retry
// until they observe one even sequence across a whole field read. All
// accesses are atomic, so publication is race-free without any lock, and the
// single writer never blocks however many readers poll.
type healthPub struct {
	seq atomic.Uint64
	h   AtomicHealth
}

func (p *healthPub) publish(h Health) {
	p.seq.Add(1)
	p.h.Store(h)
	p.seq.Add(1)
}

func (p *healthPub) load() Health {
	for {
		s := p.seq.Load()
		if s&1 != 0 {
			continue
		}
		h := p.h.Load()
		if p.seq.Load() == s {
			return h
		}
	}
}

// NewAdapter wires adaptation onto a calibrated detector. calNullScores is
// the calibration-stage null sample (the same scores the threshold was
// derived from); it seeds both the rolling null buffer and the drift
// monitor's reference statistics.
func NewAdapter(pol Policy, det *core.Detector, calNullScores []float64) (*Adapter, error) {
	if det == nil {
		return nil, fmt.Errorf("adapter needs a detector: %w", ErrBadPolicy)
	}
	if err := pol.validate(); err != nil {
		return nil, err
	}
	pol = pol.withDefaults()
	if err := core.ValidateNullScores(calNullScores); err != nil {
		return nil, fmt.Errorf("adapter null seed: %w", err)
	}
	lp, err := core.NewLinkProfile(det.Profile(), pol.Alpha)
	if err != nil {
		return nil, fmt.Errorf("adapter: %w", err)
	}
	mon, err := core.NewDriftMonitor(pol.Drift, calNullScores)
	if err != nil {
		return nil, fmt.Errorf("adapter: %w", err)
	}
	nulls := make([]float64, 0, pol.NullWindow)
	tail := calNullScores
	if len(tail) > pol.NullWindow {
		tail = tail[len(tail)-pol.NullWindow:]
	}
	nulls = append(nulls, tail...)
	a := &Adapter{
		pol:     pol,
		det:     det,
		lp:      lp,
		mon:     mon,
		sc:      core.NewScratch(),
		nulls:   nulls,
		baseThr: det.Threshold(),
		health:  Health{State: StateUnknown, Threshold: det.Threshold()},
	}
	a.pub.publish(a.health)
	return a, nil
}

// Policy returns the normalized policy in effect.
func (a *Adapter) Policy() Policy { return a.pol }

// Health returns the latest health snapshot. Safe to call from any
// goroutine, concurrently with Observe; it never blocks the observer.
func (a *Adapter) Health() Health {
	return a.pub.load()
}

// Observe folds one scored monitoring window into the adaptation state:
// updates the drift monitor, refreshes the profile on confidently silent
// windows, and periodically re-derives the threshold from the rolling null
// distribution. The window's frames are only read during the call — the
// caller may recycle them afterwards. It returns the post-update health.
//
// Observe must be called from a single goroutine (the link's owner); see the
// Adapter doc comment.
func (a *Adapter) Observe(window []*csi.Frame, dec core.Decision) (Health, error) {
	defer func() { a.pub.publish(a.health) }()

	if a.relock.Swap(false) {
		// Ambient relock: the fleet layer attributed the link's shift to a
		// site-wide cause, so this window's statistics ARE the empty room.
		// The window's score was computed against the pre-relock profile —
		// feeding it to the monitor would poison the fresh rolling state, so
		// this observation only rebuilds.
		if err := a.relockNow(window); err != nil {
			return a.health, err
		}
		return a.health, nil
	}

	a.mon.Observe(dec.Score)
	stats := a.mon.Snapshot()

	// Two refresh gates:
	//   silent — the window is confidently empty (well below threshold);
	//   tracking — the window is consistent with the recent rolling mean,
	//   i.e. the baseline has walked gradually under the detector and the
	//   elevated score is drift, not an arrival. Tracking is suspended once
	//   the link is quarantined: a parked person must not be absorbed.
	// A step change (furniture, person) is outside both gates at first and
	// drives the drift monitor critical before the rolling mean absorbs it.
	// Tracking is additionally suspended while a step-like jump sits in
	// the recent score history (stats.JumpExceeded): a level reached by a
	// jump is an arrival, not a walk, even before the critical latch has
	// persisted — without this, an intruder whose shift lands between the
	// track band and the critical bound would be EWMA-absorbed within a
	// couple of windows. (An arrival below the jump bound remains
	// statistically indistinguishable from the receiver's own gain
	// excursions; that residual ambiguity is inherent to a single link.)
	suppressed := a.suppress.Load()
	silent := !dec.Present && dec.Threshold > 0 && dec.Score <= a.pol.SilentFraction*dec.Threshold
	tracking := !silent && a.pol.TrackBand > 0 &&
		(stats.State == core.DriftHealthy || stats.State == core.DriftWarning) &&
		!stats.JumpExceeded &&
		math.Abs(dec.Score-stats.RecentMean) <= a.pol.TrackBand*stats.RefStd
	if (silent || tracking) && !suppressed {
		if err := a.refresh(window, dec.Score); err != nil {
			return a.health, err
		}
	}

	a.health.DriftZ = stats.Z
	a.health.ScoreZ = stats.ScoreZ
	a.health.JumpExceeded = stats.JumpExceeded
	a.health.RefreshSuppressed = suppressed
	a.updateShiftTrend()
	a.health.Refreshes = a.lp.Refreshes()
	a.health.Threshold = a.det.Threshold()
	switch stats.State {
	case core.DriftUnknown:
		a.health.State = StateUnknown
	case core.DriftHealthy:
		a.health.State = StateHealthy
	case core.DriftWarning:
		a.health.State = StateDrifting
	case core.DriftCritical:
		// The monitor latches critical while the shift persists; the
		// NeedsRecalibration flag additionally stays sticky after the
		// state recovers — the baseline that came back may not be the one
		// that was calibrated (furniture moved twice), so only a fresh
		// calibration clears the flag.
		a.health.State = StateQuarantined
		a.health.NeedsRecalibration = true
	}
	return a.health, nil
}

// refresh applies one silent-window profile refresh and, at the configured
// cadence, re-derives the threshold from the rolling nulls.
func (a *Adapter) refresh(window []*csi.Frame, score float64) error {
	if err := a.det.MeasureWindow(&a.ws, window, a.sc); err != nil {
		return fmt.Errorf("adapt measure: %w", err)
	}
	next, err := a.lp.Refresh(&a.ws)
	if err != nil {
		return fmt.Errorf("adapt refresh: %w", err)
	}
	if err := a.det.SetProfile(next); err != nil {
		return fmt.Errorf("adapt swap: %w", err)
	}
	if len(a.nulls) == cap(a.nulls) && len(a.nulls) > 0 {
		a.nulls = a.nulls[:copy(a.nulls, a.nulls[1:])]
	}
	a.nulls = append(a.nulls, score)

	a.sinceRederive++
	if a.sinceRederive < a.pol.RederiveEvery {
		return nil
	}
	a.sinceRederive = 0
	t, err := core.DeriveThreshold(a.nulls, a.pol.Quantile, a.pol.Margin)
	if err != nil {
		// A degenerate rolling sample (e.g. a stuck replay) pins the
		// current threshold rather than poisoning it.
		if errors.Is(err, core.ErrBadInput) {
			return nil
		}
		return fmt.Errorf("adapt threshold: %w", err)
	}
	if floor := a.pol.MinThresholdFactor * a.baseThr; t < floor {
		t = floor
	}
	a.det.SetThreshold(t)
	a.health.ThresholdUpdates++
	// Anchor the drift test to the null distribution now in force: from
	// here on, "drift" means walking away from the adapted baseline.
	if err := a.mon.Rebase(a.nulls); err != nil && !errors.Is(err, core.ErrBadInput) {
		return fmt.Errorf("adapt rebase: %w", err)
	}
	return nil
}

// shiftTrendAlpha is the EWMA weight of one window's ShiftDB increment in
// the ShiftRateDB trend estimate — fast enough to register an active walk
// within a few windows, smooth enough that a single refresh blip reads as
// noise.
const shiftTrendAlpha = 0.25

// updateShiftTrend folds the latest ShiftDB into the walk-trend estimate.
func (a *Adapter) updateShiftTrend() {
	shift := a.lp.ShiftDB()
	delta := shift - a.lastShiftDB
	a.lastShiftDB = shift
	a.health.ProfileShiftDB = shift
	a.health.ShiftRateDB = (1-shiftTrendAlpha)*a.health.ShiftRateDB + shiftTrendAlpha*delta
}

// relockNow adopts the window wholesale as the new baseline: full-weight
// profile replacement, fresh drift-monitor window, cleared quarantine, and
// an emptied rolling-null buffer (the old nulls described the old baseline).
// The decision threshold is deliberately retained: post-relock scores sit far
// below it, so silent refreshes resume immediately and the threshold
// re-derives from genuinely fresh nulls at the usual cadence — while a person
// arriving in the meantime still faces a meaningful threshold.
func (a *Adapter) relockNow(window []*csi.Frame) error {
	if err := a.det.MeasureWindow(&a.ws, window, a.sc); err != nil {
		return fmt.Errorf("adapt relock measure: %w", err)
	}
	next, err := a.lp.Adopt(&a.ws)
	if err != nil {
		return fmt.Errorf("adapt relock: %w", err)
	}
	if err := a.det.SetProfile(next); err != nil {
		return fmt.Errorf("adapt relock swap: %w", err)
	}
	a.nulls = a.nulls[:0]
	a.sinceRederive = 0
	a.mon.Reset()
	a.health.State = StateUnknown
	a.health.DriftZ = 0
	a.health.ScoreZ = 0
	a.health.JumpExceeded = false
	a.health.NeedsRecalibration = false
	a.health.Relocks++
	a.health.Refreshes = a.lp.Refreshes()
	a.health.Threshold = a.det.Threshold()
	a.updateShiftTrend()
	return nil
}
