package adapt

import (
	"fmt"

	"mlink/internal/binio"
	"mlink/internal/core"
)

// adapterMagic marks a serialized adapter snapshot ("MLAD"); adapterVersion
// tags the layout so an incompatible build rejects instead of misreading.
const (
	adapterMagic   uint32 = 0x4D4C4144
	adapterVersion uint16 = 1
)

// ErrBadSnapshot reports an adapter snapshot that cannot be decoded. It
// wraps core.ErrBadInput (bad data), deliberately NOT ErrBadPolicy — a
// corrupt file and a misconfigured policy call for different remediations.
var ErrBadSnapshot = fmt.Errorf("adapt: bad adapter snapshot (%w)", core.ErrBadInput)

// AppendBinary serializes the adapter's full resumable state — link profile
// (original and adapted fingerprints), decision threshold and its
// calibration-time floor, the rolling null buffer, the drift monitor's
// rolling window, and the health counters — so a restarted daemon resumes
// from the walked baseline instead of recalibrating from scratch. Call it
// from the observer's goroutine (or while the link is quiescent), like every
// other observer-side method.
func (a *Adapter) AppendBinary(dst []byte) ([]byte, error) {
	dst = binio.AppendU32(dst, adapterMagic)
	dst = binio.AppendU16(dst, adapterVersion)
	lpBlob, err := a.lp.AppendBinary(nil)
	if err != nil {
		return nil, fmt.Errorf("adapter profile: %w", err)
	}
	dst = binio.AppendBytes(dst, lpBlob)
	dst = binio.AppendF64(dst, a.det.Threshold())
	dst = binio.AppendF64(dst, a.baseThr)
	dst = binio.AppendF64s(dst, a.nulls)
	dst = binio.AppendI64(dst, int64(a.sinceRederive))
	dst = binio.AppendF64(dst, a.lastShiftDB)

	mon := a.mon.State()
	dst = binio.AppendF64(dst, mon.RefMean)
	dst = binio.AppendF64(dst, mon.RefStd)
	dst = binio.AppendF64s(dst, mon.Scores)
	dst = binio.AppendF64s(dst, mon.Jumps)
	dst = binio.AppendF64(dst, mon.Prev)
	dst = binio.AppendBool(dst, mon.HavePrev)
	dst = binio.AppendU64(dst, mon.Seen)
	dst = binio.AppendI64(dst, int64(mon.OverCritical))
	dst = binio.AppendBool(dst, mon.Latched)

	h := a.health
	dst = binio.AppendI64(dst, int64(h.State))
	dst = binio.AppendF64(dst, h.DriftZ)
	dst = binio.AppendF64(dst, h.ScoreZ)
	dst = binio.AppendBool(dst, h.JumpExceeded)
	dst = binio.AppendF64(dst, h.ShiftRateDB)
	dst = binio.AppendU64(dst, h.ThresholdUpdates)
	dst = binio.AppendU64(dst, h.Relocks)
	dst = binio.AppendBool(dst, h.NeedsRecalibration)
	return dst, nil
}

// Restore rebuilds an adapter — and the detector it drives — from a snapshot
// produced by AppendBinary. cfg must be the link's scoring configuration
// (the profile's shape and scheme requirements are validated against it) and
// pol the adaptation policy to resume under; the persisted rolling windows
// are re-fitted into the policy's buffer lengths, keeping the newest samples
// when a buffer shrank.
func Restore(pol Policy, cfg core.Config, blob []byte) (*Adapter, *core.Detector, error) {
	if err := pol.validate(); err != nil {
		return nil, nil, err
	}
	pol = pol.withDefaults()
	r := binio.NewReader(blob)
	if m := r.U32(); r.Err() == nil && m != adapterMagic {
		return nil, nil, fmt.Errorf("magic %#x: %w", m, ErrBadSnapshot)
	}
	if v := r.U16(); r.Err() == nil && v != adapterVersion {
		return nil, nil, fmt.Errorf("version %d (want %d): %w", v, adapterVersion, ErrBadSnapshot)
	}
	lpBlob := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("restore: %w", err)
	}
	lp, err := core.UnmarshalLinkProfile(lpBlob)
	if err != nil {
		return nil, nil, fmt.Errorf("restore profile: %w", err)
	}
	threshold := r.F64()
	baseThr := r.F64()
	nulls := r.F64s()
	sinceRederive := int(r.I64())
	lastShiftDB := r.F64()

	mon := core.DriftMonitorState{
		RefMean:      r.F64(),
		RefStd:       r.F64(),
		Scores:       r.F64s(),
		Jumps:        r.F64s(),
		Prev:         r.F64(),
		HavePrev:     r.Bool(),
		Seen:         r.U64(),
		OverCritical: int(r.I64()),
		Latched:      r.Bool(),
	}

	var h Health
	h.State = State(r.I64())
	h.DriftZ = r.F64()
	h.ScoreZ = r.F64()
	h.JumpExceeded = r.Bool()
	h.ShiftRateDB = r.F64()
	h.ThresholdUpdates = r.U64()
	h.Relocks = r.U64()
	h.NeedsRecalibration = r.Bool()
	if err := r.Done(); err != nil {
		return nil, nil, fmt.Errorf("restore: %w", err)
	}

	det, err := core.NewDetector(cfg, lp.Original())
	if err != nil {
		return nil, nil, fmt.Errorf("restore detector: %w", err)
	}
	if err := det.SetProfile(lp.Current()); err != nil {
		return nil, nil, fmt.Errorf("restore detector: %w", err)
	}
	det.SetThreshold(threshold)
	monitor, err := core.RestoreDriftMonitor(pol.Drift, mon)
	if err != nil {
		return nil, nil, fmt.Errorf("restore drift monitor: %w", err)
	}

	if len(nulls) > pol.NullWindow {
		nulls = nulls[len(nulls)-pol.NullWindow:]
	}
	ring := make([]float64, 0, pol.NullWindow)
	ring = append(ring, nulls...)

	h.ProfileShiftDB = lp.ShiftDB()
	h.Refreshes = lp.Refreshes()
	h.Threshold = threshold
	a := &Adapter{
		pol:           pol,
		det:           det,
		lp:            lp,
		mon:           monitor,
		sc:            core.NewScratch(),
		nulls:         ring,
		baseThr:       baseThr,
		health:        h,
		sinceRederive: sinceRederive,
		lastShiftDB:   lastShiftDB,
	}
	a.pub.publish(a.health)
	return a, det, nil
}
