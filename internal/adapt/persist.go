package adapt

import (
	"fmt"

	"mlink/internal/binio"
	"mlink/internal/core"
)

// adapterMagic marks a serialized adapter snapshot ("MLAD"); adapterVersion
// tags the layout so an incompatible build rejects instead of misreading.
// deltaMagic marks a journal delta ("MLDT") — the small absolute record of
// just the adapter's mutable state, emitted per scored window against a
// full snapshot base.
const (
	adapterMagic   uint32 = 0x4D4C4144
	adapterVersion uint16 = 1
	deltaMagic     uint32 = 0x4D4C4454
	deltaVersion   uint16 = 1
)

// ErrBadSnapshot reports an adapter snapshot that cannot be decoded. It
// wraps core.ErrBadInput (bad data), deliberately NOT ErrBadPolicy — a
// corrupt file and a misconfigured policy call for different remediations.
var ErrBadSnapshot = fmt.Errorf("adapt: bad adapter snapshot (%w)", core.ErrBadInput)

// appendDriftState serializes a drift-monitor state. readDriftState is its
// exact inverse; full snapshots and deltas share both, so the two formats
// cannot drift apart when the state grows a field.
func appendDriftState(dst []byte, st *core.DriftMonitorState) []byte {
	dst = binio.AppendF64(dst, st.RefMean)
	dst = binio.AppendF64(dst, st.RefStd)
	dst = binio.AppendF64s(dst, st.Scores)
	dst = binio.AppendF64s(dst, st.Jumps)
	dst = binio.AppendF64(dst, st.Prev)
	dst = binio.AppendBool(dst, st.HavePrev)
	dst = binio.AppendU64(dst, st.Seen)
	dst = binio.AppendI64(dst, int64(st.OverCritical))
	return binio.AppendBool(dst, st.Latched)
}

func readDriftState(r *binio.Reader) core.DriftMonitorState {
	return core.DriftMonitorState{
		RefMean:      r.F64(),
		RefStd:       r.F64(),
		Scores:       r.F64s(),
		Jumps:        r.F64s(),
		Prev:         r.F64(),
		HavePrev:     r.Bool(),
		Seen:         r.U64(),
		OverCritical: int(r.I64()),
		Latched:      r.Bool(),
	}
}

// appendHealth serializes the persisted health fields. ProfileShiftDB,
// Refreshes and Threshold are deliberately absent — they are re-derived
// from the restored profile and detector, so a record can never disagree
// with itself — and RefreshSuppressed is a live fleet-control input, not
// state.
func appendHealth(dst []byte, h Health) []byte {
	dst = binio.AppendI64(dst, int64(h.State))
	dst = binio.AppendF64(dst, h.DriftZ)
	dst = binio.AppendF64(dst, h.ScoreZ)
	dst = binio.AppendBool(dst, h.JumpExceeded)
	dst = binio.AppendF64(dst, h.ShiftRateDB)
	dst = binio.AppendU64(dst, h.ThresholdUpdates)
	dst = binio.AppendU64(dst, h.Relocks)
	return binio.AppendBool(dst, h.NeedsRecalibration)
}

func readHealth(r *binio.Reader) Health {
	var h Health
	h.State = State(r.I64())
	h.DriftZ = r.F64()
	h.ScoreZ = r.F64()
	h.JumpExceeded = r.Bool()
	h.ShiftRateDB = r.F64()
	h.ThresholdUpdates = r.U64()
	h.Relocks = r.U64()
	h.NeedsRecalibration = r.Bool()
	return h
}

// appendTail serializes everything after the profile section — threshold,
// its calibration floor, the rolling nulls, the re-derivation countdown,
// the walk trend, drift-monitor state and health — shared verbatim by full
// snapshots and deltas.
func (a *Adapter) appendTail(dst []byte) []byte {
	dst = binio.AppendF64(dst, a.det.Threshold())
	dst = binio.AppendF64(dst, a.baseThr)
	dst = binio.AppendF64s(dst, a.nulls)
	dst = binio.AppendI64(dst, int64(a.sinceRederive))
	dst = binio.AppendF64(dst, a.lastShiftDB)
	a.mon.StateInto(&a.stScratch)
	dst = appendDriftState(dst, &a.stScratch)
	return appendHealth(dst, a.health)
}

// AppendBinary serializes the adapter's full resumable state — link profile
// (original and adapted fingerprints), decision threshold and its
// calibration-time floor, the rolling null buffer, the drift monitor's
// rolling window, and the health counters — so a restarted daemon resumes
// from the walked baseline instead of recalibrating from scratch. Call it
// from the observer's goroutine (or while the link is quiescent), like every
// other observer-side method. Pure appends into dst (no scratch slices), so
// a journal emitter with a warmed buffer serializes without allocating.
func (a *Adapter) AppendBinary(dst []byte) ([]byte, error) {
	dst = binio.AppendU32(dst, adapterMagic)
	dst = binio.AppendU16(dst, adapterVersion)
	dst, mark := binio.ReserveLen(dst)
	var err error
	if dst, err = a.lp.AppendBinary(dst); err != nil {
		return nil, fmt.Errorf("adapter profile: %w", err)
	}
	dst = binio.PatchLen(dst, mark)
	return a.appendTail(dst), nil
}

// AppendDelta serializes just the adapter's mutable state — the refresh
// counter and adapted fingerprints, threshold, rolling nulls, drift-monitor
// window and health — as an absolute (not incremental) journal delta. A
// restart replays the latest full snapshot and then the latest delta after
// it; the result is bit-identical to the adapter at the delta's emission
// (see ApplyDelta). Unlike AppendBinary it omits the calibration original
// (with its retained frames), so a per-window emission costs kilobytes, not
// the ~100 KB of a full record. Observer-side, allocation-free like the
// rest of the Observe path.
func (a *Adapter) AppendDelta(dst []byte) []byte {
	dst = binio.AppendU32(dst, deltaMagic)
	dst = binio.AppendU16(dst, deltaVersion)
	dst = a.lp.AppendAdaptedBinary(dst)
	return a.appendTail(dst)
}

// ApplyDelta replays one AppendDelta blob onto this adapter, replacing its
// whole mutable state. The adapter must have been restored (or freshly
// built) from the full record the delta was emitted against: the delta
// carries no calibration original, so the profile shapes are validated
// against the one already in place. Everything is parsed and validated
// before anything is committed — a truncated or corrupt delta leaves the
// adapter exactly as it was. After a successful apply the adapter's
// AppendBinary output is bit-identical to the emitting adapter's at the
// moment the delta was written.
func (a *Adapter) ApplyDelta(blob []byte) error {
	r := binio.NewReader(blob)
	if m := r.U32(); r.Err() == nil && m != deltaMagic {
		return fmt.Errorf("delta magic %#x: %w", m, ErrBadSnapshot)
	}
	if v := r.U16(); r.Err() == nil && v != deltaVersion {
		return fmt.Errorf("delta version %d (want %d): %w", v, deltaVersion, ErrBadSnapshot)
	}
	st, err := core.ReadAdaptedState(r)
	if err != nil {
		return fmt.Errorf("delta profile: %w", err)
	}
	threshold := r.F64()
	baseThr := r.F64()
	nulls := r.F64s()
	sinceRederive := int(r.I64())
	lastShiftDB := r.F64()
	mon := readDriftState(r)
	h := readHealth(r)
	if err := r.Done(); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	monitor, err := core.RestoreDriftMonitor(a.pol.Drift, mon)
	if err != nil {
		return fmt.Errorf("delta drift monitor: %w", err)
	}
	if err := a.lp.RestoreAdapted(st); err != nil {
		return fmt.Errorf("delta profile: %w", err)
	}
	if err := a.det.SetProfile(a.lp.Current()); err != nil {
		return fmt.Errorf("delta profile swap: %w", err)
	}
	a.det.SetThreshold(threshold)
	a.baseThr = baseThr
	if len(nulls) > a.pol.NullWindow {
		nulls = nulls[len(nulls)-a.pol.NullWindow:]
	}
	a.nulls = append(a.nulls[:0], nulls...)
	a.sinceRederive = sinceRederive
	a.lastShiftDB = lastShiftDB
	a.mon = monitor
	h.ProfileShiftDB = a.lp.ShiftDB()
	h.Refreshes = a.lp.Refreshes()
	h.Threshold = threshold
	a.health = h
	a.pub.publish(a.health)
	return nil
}

// Restore rebuilds an adapter — and the detector it drives — from a snapshot
// produced by AppendBinary. cfg must be the link's scoring configuration
// (the profile's shape and scheme requirements are validated against it) and
// pol the adaptation policy to resume under; the persisted rolling windows
// are re-fitted into the policy's buffer lengths, keeping the newest samples
// when a buffer shrank.
func Restore(pol Policy, cfg core.Config, blob []byte) (*Adapter, *core.Detector, error) {
	if err := pol.validate(); err != nil {
		return nil, nil, err
	}
	pol = pol.withDefaults()
	r := binio.NewReader(blob)
	if m := r.U32(); r.Err() == nil && m != adapterMagic {
		return nil, nil, fmt.Errorf("magic %#x: %w", m, ErrBadSnapshot)
	}
	if v := r.U16(); r.Err() == nil && v != adapterVersion {
		return nil, nil, fmt.Errorf("version %d (want %d): %w", v, adapterVersion, ErrBadSnapshot)
	}
	lpBlob := r.Bytes()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("restore: %w", err)
	}
	lp, err := core.UnmarshalLinkProfile(lpBlob)
	if err != nil {
		return nil, nil, fmt.Errorf("restore profile: %w", err)
	}
	threshold := r.F64()
	baseThr := r.F64()
	nulls := r.F64s()
	sinceRederive := int(r.I64())
	lastShiftDB := r.F64()
	mon := readDriftState(r)
	h := readHealth(r)
	if err := r.Done(); err != nil {
		return nil, nil, fmt.Errorf("restore: %w", err)
	}

	det, err := core.NewDetector(cfg, lp.Original())
	if err != nil {
		return nil, nil, fmt.Errorf("restore detector: %w", err)
	}
	if err := det.SetProfile(lp.Current()); err != nil {
		return nil, nil, fmt.Errorf("restore detector: %w", err)
	}
	det.SetThreshold(threshold)
	monitor, err := core.RestoreDriftMonitor(pol.Drift, mon)
	if err != nil {
		return nil, nil, fmt.Errorf("restore drift monitor: %w", err)
	}

	if len(nulls) > pol.NullWindow {
		nulls = nulls[len(nulls)-pol.NullWindow:]
	}
	ring := make([]float64, 0, pol.NullWindow)
	ring = append(ring, nulls...)

	h.ProfileShiftDB = lp.ShiftDB()
	h.Refreshes = lp.Refreshes()
	h.Threshold = threshold
	a := &Adapter{
		pol:           pol,
		det:           det,
		lp:            lp,
		mon:           monitor,
		sc:            core.NewScratch(),
		nulls:         ring,
		baseThr:       baseThr,
		health:        h,
		sinceRederive: sinceRederive,
		lastShiftDB:   lastShiftDB,
	}
	a.pub.publish(a.health)
	return a, det, nil
}
