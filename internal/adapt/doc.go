// Package adapt closes the loop the paper's title promises: it turns the
// characterized, calibrate-once detector of internal/core into an adaptive
// one that survives environment non-stationarity (§VI "adaptation";
// RASID-style profile updating, Kosba et al.).
//
// The per-link Adapter observes every scored monitoring window and applies
// three policies:
//
//   - Silent-window profile refresh: windows that score well below the
//     decision threshold are confidently empty; their statistics are folded
//     into the link's core.LinkProfile by EWMA, so slow baseline walks
//     (receiver gain drift, temperature) are tracked instead of accumulating
//     into false positives.
//   - Threshold re-derivation: silent-window scores feed a rolling null
//     distribution, and the decision threshold is re-derived from its
//     quantile at a fixed cadence — the threshold follows the profile.
//   - Drift quarantine: a windowed score-statistics test
//     (core.DriftMonitor) standardizes the rolling score mean against the
//     calibration-time null statistics. Past the warn bound the link is
//     flagged Drifting; past the critical bound adaptation has lost the
//     baseline (step change, dead link) and the link is Quarantined with
//     NeedsRecalibration set, which the engine layer surfaces and can act
//     on via Recalibrate.
//
// Health snapshots drive the engine's quality-weighted fusion — a drifting
// or quarantined link's vote is discounted so it cannot outvote healthy
// links — and carry the structured drift evidence (signed rolling and
// per-score z, the step-vs-walk jump discriminator, the profile-walk trend)
// that the fleet coordination layer correlates across links to tell a
// person (few links perturbed) from ambient drift (many links moving
// together).
//
// The fleet layer drives two controls, both safe from any goroutine and
// consumed by the observer: SetRefreshSuppressed holds refreshes while a
// localized perturbation (likely a person) must not be absorbed, and
// RequestRelock adopts the next window wholesale as the new baseline —
// clearing the quarantine — once correlated evidence shows the shift was
// environmental.
//
// AppendBinary/Restore serialize the adapter's full resumable state
// (walked fingerprints, threshold, rolling windows) as a versioned binary
// snapshot, so a restarted daemon resumes from the adapted baseline instead
// of recalibrating; see fleet.Store.
//
// Observe is single-writer: exactly one goroutine — the link's owning
// engine shard — observes a given adapter, and profile swaps are
// copy-on-write through core.Detector.SetProfile. Health may be read from
// any goroutine; snapshots publish through an atomic seqlock and never
// block the observer.
package adapt
