// Package adapt closes the loop the paper's title promises: it turns the
// characterized, calibrate-once detector of internal/core into an adaptive
// one that survives environment non-stationarity (§VI "adaptation";
// RASID-style profile updating, Kosba et al.).
//
// The per-link Adapter observes every scored monitoring window and applies
// three policies:
//
//   - Silent-window profile refresh: windows that score well below the
//     decision threshold are confidently empty; their statistics are folded
//     into the link's core.LinkProfile by EWMA, so slow baseline walks
//     (receiver gain drift, temperature) are tracked instead of accumulating
//     into false positives.
//   - Threshold re-derivation: silent-window scores feed a rolling null
//     distribution, and the decision threshold is re-derived from its
//     quantile at a fixed cadence — the threshold follows the profile.
//   - Drift quarantine: a windowed score-statistics test
//     (core.DriftMonitor) standardizes the rolling score mean against the
//     calibration-time null statistics. Past the warn bound the link is
//     flagged Drifting; past the critical bound adaptation has lost the
//     baseline (step change, dead link) and the link is Quarantined with
//     NeedsRecalibration set, which the engine layer surfaces and can act
//     on via Recalibrate.
//
// Health snapshots (state, drift z, accumulated profile shift) drive the
// engine's quality-weighted fusion: a drifting or quarantined link's vote is
// discounted so it cannot outvote healthy links.
//
// An Adapter is safe for concurrent Observe calls (the engine's scoring
// workers may finish two windows of one link out of order); updates are
// serialized internally and profile swaps are copy-on-write through
// core.Detector.SetProfile.
package adapt
