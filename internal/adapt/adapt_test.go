package adapt

import (
	"errors"
	"sync"
	"testing"

	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/scenario"
)

// harness builds a calibrated detector over the classroom link.
type harness struct {
	x    *csi.Extractor
	det  *core.Detector
	null []float64
	sc   *core.Scratch
}

func newHarness(t testing.TB, seed int64) *harness {
	t.Helper()
	s, err := scenario.Classroom(seed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
	profile, err := core.Calibrate(cfg, x.CaptureN(150, nil))
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	null, err := det.SelfScores(x.CaptureN(150, nil), 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.CalibrateThreshold(null, 0.95, 1.3); err != nil {
		t.Fatal(err)
	}
	return &harness{x: x, det: det, null: null, sc: core.NewScratch()}
}

func (h *harness) observe(t testing.TB, a *Adapter) Health {
	t.Helper()
	window := h.x.CaptureN(25, nil)
	dec, err := h.det.DetectScratch(window, h.sc)
	if err != nil {
		t.Fatal(err)
	}
	health, err := a.Observe(window, dec)
	if err != nil {
		t.Fatal(err)
	}
	return health
}

func TestAdapterRefreshesOnSilentWindows(t *testing.T) {
	h := newHarness(t, 51)
	a, err := NewAdapter(Policy{}, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	origProfile := h.det.Profile()
	var health Health
	for i := 0; i < 12; i++ {
		health = h.observe(t, a)
	}
	if health.Refreshes == 0 {
		t.Fatal("no profile refreshes over 12 empty windows")
	}
	if h.det.Profile() == origProfile {
		t.Fatal("detector still scoring against the calibration profile")
	}
	if health.State == StateQuarantined {
		t.Fatalf("quiet link quarantined: %+v", health)
	}
	if a.Policy().SilentFraction != 0.9 {
		t.Fatalf("default silent fraction = %v", a.Policy().SilentFraction)
	}
}

func TestAdapterRederivesThreshold(t *testing.T) {
	h := newHarness(t, 53)
	pol := Policy{RederiveEvery: 4}
	a, err := NewAdapter(pol, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	var health Health
	for i := 0; i < 20; i++ {
		health = h.observe(t, a)
	}
	if health.ThresholdUpdates == 0 {
		t.Fatalf("no threshold re-derivations after %d refreshes", health.Refreshes)
	}
	if h.det.Threshold() <= 0 {
		t.Fatalf("threshold collapsed to %v", h.det.Threshold())
	}
	// The floor: the online threshold can never fall below
	// MinThresholdFactor × the calibration threshold.
	if h.det.Threshold() < 0.5*health.Threshold/2 {
		t.Fatalf("threshold %v below floor", h.det.Threshold())
	}
}

func TestAdapterValidation(t *testing.T) {
	h := newHarness(t, 57)
	if _, err := NewAdapter(Policy{}, nil, h.null); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("nil detector err = %v", err)
	}
	if _, err := NewAdapter(Policy{SilentFraction: 1.5}, h.det, h.null); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("silent fraction >1 err = %v", err)
	}
	if _, err := NewAdapter(Policy{Alpha: 2}, h.det, h.null); !errors.Is(err, ErrBadPolicy) {
		t.Fatalf("alpha >1 err = %v", err)
	}
	if _, err := NewAdapter(Policy{}, h.det, []float64{1}); !errors.Is(err, core.ErrBadInput) {
		t.Fatalf("tiny null seed err = %v", err)
	}
}

// TestAdapterConcurrentHealthReaders runs the single-writer Observe loop
// (the contract: exactly one goroutine — the link's owning shard — observes)
// while several goroutines hammer the lock-free Health snapshots; under
// -race this validates the atomic seqlock publication, and the readers
// assert every snapshot is internally consistent (monotonic refresh counts).
func TestAdapterConcurrentHealthReaders(t *testing.T) {
	h := newHarness(t, 59)
	a, err := NewAdapter(Policy{}, h.det, h.null)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-capture windows and decisions serially (the extractor is not
	// concurrent-safe); the observer then feeds them in stream order.
	type job struct {
		window []*csi.Frame
		dec    core.Decision
	}
	jobs := make([]job, 16)
	for i := range jobs {
		w := h.x.CaptureN(25, nil)
		dec, err := h.det.Detect(w)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{window: w, dec: dec}
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastRefreshes uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				hs := a.Health()
				if hs.Refreshes < lastRefreshes {
					t.Errorf("refresh count went backwards: %d after %d", hs.Refreshes, lastRefreshes)
					return
				}
				lastRefreshes = hs.Refreshes
			}
		}()
	}
	for _, j := range jobs {
		if _, err := a.Observe(j.window, j.dec); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	if a.Health().Refreshes == 0 {
		t.Fatal("no refreshes from the observer loop")
	}
}
