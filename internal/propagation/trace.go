package propagation

import (
	"fmt"

	"mlink/internal/geom"
)

// Tracer enumerates specular propagation paths in a room using the image
// method: a k-bounce path is found by mirroring the transmitter across k
// walls in sequence and intersecting the straight line from the final image
// to the receiver with the mirroring walls.
type Tracer struct {
	Room *Room
	// MaxBounces limits the reflection order (0 = LOS only, 2 covers the
	// dominant indoor energy; higher orders add little at 2.4 GHz with
	// sub-unity reflectivities).
	MaxBounces int
}

// endpointTol treats intersections within this distance of a leg endpoint as
// the endpoint itself (a bounce point lies on its own wall and must not
// count as an obstruction of the adjacent legs).
const endpointTol = 1e-9

// segmentClear reports whether the open segment a→b crosses any wall
// strictly between its endpoints.
func (t *Tracer) segmentClear(a, b geom.Point) bool {
	leg := geom.Segment{A: a, B: b}
	for _, w := range t.Room.Walls {
		p, ok := leg.Intersect(w.Seg)
		if !ok {
			continue
		}
		if p.Dist(a) > endpointTol && p.Dist(b) > endpointTol {
			return false
		}
	}
	return true
}

// Trace returns every valid ray from tx to rx up to MaxBounces reflections.
// The LOS ray, when unobstructed by interior walls, is always first.
func (t *Tracer) Trace(tx, rx geom.Point) ([]Ray, error) {
	if tx.Dist(rx) < endpointTol {
		return nil, fmt.Errorf("trace: tx and rx coincide at %v: %w", tx, ErrBadGeometry)
	}
	var rays []Ray
	if t.segmentClear(tx, rx) {
		rays = append(rays, Ray{
			Points: geom.Polyline{tx, rx},
			Gain:   1,
			Kind:   KindLOS,
		})
	}
	if t.MaxBounces >= 1 {
		rays = append(rays, t.oneBounce(tx, rx)...)
	}
	if t.MaxBounces >= 2 {
		rays = append(rays, t.twoBounce(tx, rx)...)
	}
	return rays, nil
}

// oneBounce finds all single-reflection paths.
func (t *Tracer) oneBounce(tx, rx geom.Point) []Ray {
	var rays []Ray
	for _, w := range t.Room.Walls {
		if w.Mat.Reflectivity <= 0 {
			continue
		}
		img := w.Seg.Mirror(tx)
		bounce, ok := geom.Segment{A: img, B: rx}.Intersect(w.Seg)
		if !ok {
			continue
		}
		// Reject degenerate geometry (tx or rx on the wall).
		if bounce.Dist(tx) < endpointTol || bounce.Dist(rx) < endpointTol {
			continue
		}
		if !t.segmentClear(tx, bounce) || !t.segmentClear(bounce, rx) {
			continue
		}
		rays = append(rays, Ray{
			Points:     geom.Polyline{tx, bounce, rx},
			Gain:       w.Mat.Reflectivity,
			PhaseFlips: 1,
			Kind:       KindWallBounce,
		})
	}
	return rays
}

// twoBounce finds all double-reflection paths (ordered wall pairs i≠j).
func (t *Tracer) twoBounce(tx, rx geom.Point) []Ray {
	var rays []Ray
	walls := t.Room.Walls
	for i := range walls {
		if walls[i].Mat.Reflectivity <= 0 {
			continue
		}
		img1 := walls[i].Seg.Mirror(tx)
		for j := range walls {
			if j == i || walls[j].Mat.Reflectivity <= 0 {
				continue
			}
			img2 := walls[j].Seg.Mirror(img1)
			// Last bounce: where image2→rx crosses wall j.
			b2, ok := geom.Segment{A: img2, B: rx}.Intersect(walls[j].Seg)
			if !ok {
				continue
			}
			// First bounce: where image1→b2 crosses wall i.
			b1, ok := geom.Segment{A: img1, B: b2}.Intersect(walls[i].Seg)
			if !ok {
				continue
			}
			if b1.Dist(tx) < endpointTol || b1.Dist(b2) < endpointTol || b2.Dist(rx) < endpointTol {
				continue
			}
			if !t.segmentClear(tx, b1) || !t.segmentClear(b1, b2) || !t.segmentClear(b2, rx) {
				continue
			}
			rays = append(rays, Ray{
				Points:     geom.Polyline{tx, b1, b2, rx},
				Gain:       walls[i].Mat.Reflectivity * walls[j].Mat.Reflectivity,
				PhaseFlips: 2,
				Kind:       KindWallBounce,
			})
		}
	}
	return rays
}
