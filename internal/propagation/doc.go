// Package propagation implements the ray-bouncing indoor propagation model
// the paper's analysis is built on (§II-A, §III-B): an image-method ray
// tracer over a 2-D room, free-space path loss per Eq. 9 with an
// environmental attenuation exponent, per-material specular reflection,
// human-induced shadowing (knife-edge, via internal/body) and human-created
// bistatic echo rays (Eq. 7).
//
// The tracer produces explicit ray sets — exactly the finite sums of
// Eq. 1/2 — which internal/channel samples into per-subcarrier channel
// frequency responses, and whose oracle LOS/total power split grades the
// paper's Eq. 10 dominant-tap approximation (Environment.OracleLOS).
package propagation
