package propagation

import (
	"fmt"
	"math"
	"math/cmplx"

	"mlink/internal/body"
	"mlink/internal/geom"
)

// LinkParams are the large-scale link-budget constants of Eq. 9.
type LinkParams struct {
	// TxPower is Pt in linear units (1.0 ≡ 0 dB reference).
	TxPower float64
	// TxGain and RxGain are the antenna gains Gt, Gr (linear, 1.0 for
	// the omnidirectional antennas the paper uses).
	TxGain, RxGain float64
}

// DefaultLinkParams matches the paper's omnidirectional setup.
func DefaultLinkParams() LinkParams {
	return LinkParams{TxPower: 1, TxGain: 1, RxGain: 1}
}

// Array is a uniform linear antenna array in the room plane.
type Array struct {
	// Center of the array.
	Center geom.Point
	// Broadside is the facing direction in radians; arrival angles are
	// measured relative to it (0 = head-on, ±π/2 = endfire).
	Broadside float64
	// Elements are the antenna positions, ordered along the array axis.
	Elements []geom.Point
	// Spacing is the inter-element distance in metres.
	Spacing float64
}

// NewULA builds an n-element uniform linear array centred at center, facing
// broadside, with the given element spacing (λ/2 for unambiguous MUSIC).
func NewULA(center geom.Point, broadside float64, n int, spacing float64) (Array, error) {
	if n < 1 {
		return Array{}, fmt.Errorf("ula with %d elements: %w", n, ErrBadGeometry)
	}
	if spacing <= 0 {
		return Array{}, fmt.Errorf("ula spacing %v: %w", spacing, ErrBadGeometry)
	}
	axis := geom.Point{X: math.Cos(broadside + math.Pi/2), Y: math.Sin(broadside + math.Pi/2)}
	elems := make([]geom.Point, n)
	for m := 0; m < n; m++ {
		off := (float64(m) - float64(n-1)/2) * spacing
		elems[m] = center.Add(axis.Scale(off))
	}
	return Array{Center: center, Broadside: broadside, Elements: elems, Spacing: spacing}, nil
}

// Offsets returns the element positions projected on the array axis,
// relative to the center (the scalar offsets MUSIC steering vectors need).
func (a Array) Offsets() []float64 {
	axis := geom.Point{X: math.Cos(a.Broadside + math.Pi/2), Y: math.Sin(a.Broadside + math.Pi/2)}
	out := make([]float64, len(a.Elements))
	for i, e := range a.Elements {
		out[i] = e.Sub(a.Center).Dot(axis)
	}
	return out
}

// RelativeAngle converts an absolute arrival direction (the direction from
// the array towards the source of the last ray leg) into the angle relative
// to broadside, wrapped to (-π, π].
func (a Array) RelativeAngle(absolute float64) float64 {
	d := absolute - a.Broadside
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Environment is a complete static link: a room, a single-antenna
// transmitter and a receive array. Static rays (LOS + wall bounces) are
// traced once at construction; per-packet human effects are applied in
// Response.
type Environment struct {
	Room   *Room
	TX     geom.Point
	RX     Array
	Params LinkParams

	staticRays [][]Ray      // per receive element
	rayConsts  [][]rayConst // per-ray frequency-independent constants
	cache      *gridCache   // per-grid phasor tables, built by PrepareGrid
}

// NewEnvironment validates the geometry and eagerly traces the static rays
// for every receive element.
func NewEnvironment(room *Room, tx geom.Point, rx Array, params LinkParams, maxBounces int) (*Environment, error) {
	if room == nil {
		return nil, fmt.Errorf("nil room: %w", ErrBadGeometry)
	}
	if len(rx.Elements) == 0 {
		return nil, fmt.Errorf("empty rx array: %w", ErrBadGeometry)
	}
	tracer := Tracer{Room: room, MaxBounces: maxBounces}
	static := make([][]Ray, len(rx.Elements))
	for i, e := range rx.Elements {
		rays, err := tracer.Trace(tx, e)
		if err != nil {
			return nil, fmt.Errorf("trace element %d: %w", i, err)
		}
		if len(rays) == 0 {
			return nil, fmt.Errorf("element %d unreachable from tx: %w", i, ErrBadGeometry)
		}
		static[i] = rays
	}
	env := &Environment{Room: room, TX: tx, RX: rx, Params: params, staticRays: static}
	env.buildRayConsts()
	return env, nil
}

// StaticRays returns the environment-only rays (LOS + wall bounces) for a
// receive element. The slice is shared; callers must not modify it.
func (e *Environment) StaticRays(rxIdx int) []Ray {
	return e.staticRays[rxIdx]
}

// spreadingAmplitude returns the geometric spreading factor of a ray at
// frequency f per Eq. 9 (amplitude form): √(PtGtGr)·c/((4πd)^{n/2}·f) for
// end-to-end rays, and the bistatic radar form √(PtGtGr)·c/(f·4π·(d1·d2)^{n/2})
// for human echoes.
func (e *Environment) spreadingAmplitude(r Ray, f float64) float64 {
	n := e.Room.PathLossExponent
	pre := math.Sqrt(e.Params.TxPower * e.Params.TxGain * e.Params.RxGain)
	if r.Bistatic {
		segs := r.Points.Segments()
		if len(segs) != 2 {
			return 0
		}
		d1 := segs[0].Length()
		d2 := segs[1].Length()
		if d1 <= 0 || d2 <= 0 {
			return 0
		}
		return pre * SpeedOfLight / (f * 4 * math.Pi * math.Pow(d1*d2, n/2))
	}
	d := r.Length()
	if d <= 0 {
		return 0
	}
	return pre * SpeedOfLight / (math.Pow(4*math.Pi*d, n/2) * f)
}

// rayContribution evaluates one ray's complex contribution to H(f),
// including shadowing from every body except the echo source itself.
func (e *Environment) rayContribution(r Ray, f float64, bodies []body.Body, echoSource int) complex128 {
	amp := e.spreadingAmplitude(r, f) * r.Gain
	if amp == 0 {
		return 0
	}
	lambda := SpeedOfLight / f
	for bi := range bodies {
		if bi == echoSource {
			continue
		}
		amp *= bodies[bi].ShadowGain(r.Points, lambda)
	}
	phase := -2 * math.Pi * f * r.Length() / SpeedOfLight
	if r.PhaseFlips%2 == 1 {
		amp = -amp
	}
	return complex(amp, 0) * cmplx.Exp(complex(0, phase))
}

// echoRay synthesizes the human-created single-bounce ray TX→body→element.
func (e *Environment) echoRay(b body.Body, rxIdx int) Ray {
	return Ray{
		Points:     geom.Polyline{e.TX, b.Position, e.RX.Elements[rxIdx]},
		Gain:       b.EchoAmplitudeScale(),
		PhaseFlips: 1,
		Kind:       KindHumanEcho,
		Bistatic:   true,
	}
}

// ResponseAt computes the complex channel frequency response H(f) at one
// receive element with the given bodies present. Bodies shadow every ray
// they approach and each contributes a bistatic echo ray.
func (e *Environment) ResponseAt(f float64, rxIdx int, bodies []body.Body) complex128 {
	var h complex128
	for _, r := range e.staticRays[rxIdx] {
		h += e.rayContribution(r, f, bodies, -1)
	}
	for bi, b := range bodies {
		if b.RCS <= 0 {
			continue
		}
		h += e.rayContribution(e.echoRay(b, rxIdx), f, bodies, bi)
	}
	return h
}

// Response evaluates H over a frequency grid for every receive element,
// returning [element][freq].
func (e *Environment) Response(freqs []float64, bodies []body.Body) [][]complex128 {
	out := make([][]complex128, len(e.RX.Elements))
	for i := range e.RX.Elements {
		row := make([]complex128, len(freqs))
		for k, f := range freqs {
			row[k] = e.ResponseAt(f, i, bodies)
		}
		out[i] = row
	}
	return out
}

// OracleLOS returns the true LOS-path power and total power at one element
// and frequency — ground truth unavailable on real hardware, used by the
// ablation benches to grade the Eq. 10 dominant-tap approximation.
func (e *Environment) OracleLOS(f float64, rxIdx int, bodies []body.Body) (losPower, totalPower float64) {
	var losC, total complex128
	for _, r := range e.staticRays[rxIdx] {
		c := e.rayContribution(r, f, bodies, -1)
		total += c
		if r.Kind == KindLOS {
			losC += c
		}
	}
	for bi, b := range bodies {
		if b.RCS <= 0 {
			continue
		}
		total += e.rayContribution(e.echoRay(b, rxIdx), f, bodies, bi)
	}
	re, im := real(losC), imag(losC)
	losPower = re*re + im*im
	re, im = real(total), imag(total)
	totalPower = re*re + im*im
	return losPower, totalPower
}

// TrueAoAs returns the arrival angles (relative to the array broadside, in
// radians) and amplitudes at frequency f of the static rays at the array
// center — the ground truth for MUSIC accuracy experiments (Fig. 10).
func (e *Environment) TrueAoAs(f float64) (angles, amps []float64) {
	center := len(e.RX.Elements) / 2
	for _, r := range e.staticRays[center] {
		angles = append(angles, e.RX.RelativeAngle(r.AoA()+math.Pi)) // AoA leg points towards RX; invert to point at source
		amps = append(amps, e.spreadingAmplitude(r, f)*r.Gain)
	}
	return angles, amps
}
