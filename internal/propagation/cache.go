package propagation

import (
	"fmt"
	"math"

	"mlink/internal/body"
	"mlink/internal/geom"
)

// This file implements the cached fast path through channel synthesis.
//
// The naive Response path recomputes math.Pow spreading and cmplx.Exp
// phasors for every (element × subcarrier × ray) on every packet, although
// the static rays — LOS and wall bounces — never move. PrepareGrid
// precomputes, per receive element and subcarrier, each static ray's complex
// contribution amp·e^{jφ} (via math.Sincos) plus the fully-summed empty-room
// response. ResponseInto then serves the no-bodies case as a table copy and
// the with-bodies case by re-evaluating only the body-dependent terms: knife-
// edge shadow gains against the cached per-ray phasors, and the bistatic
// echo rays. The naive Response/ResponseAt path is kept as the reference
// implementation; the cache-consistency tests bound the divergence of the
// two paths below 1e-9.

// rayConst holds the frequency-independent constants of one static ray,
// computed once at NewEnvironment.
type rayConst struct {
	// ampOverF reproduces spreadingAmplitude·Gain with the specular-bounce
	// sign folded in: amp(f) = ampOverF / f.
	ampOverF float64
	// phasePerF is the phase slope: φ(f) = phasePerF · f.
	phasePerF float64
	// segs are the ray's constituent segments (Points.Segments() allocates,
	// so shadow tests reuse this).
	segs []geom.Segment
}

// cachedRay is one static ray's per-subcarrier phasor table.
type cachedRay struct {
	// phasors[k] = amp(f_k)·e^{jφ(f_k)}, sign included.
	phasors []complex128
	segs    []geom.Segment
}

// elemCache holds one receive element's tables.
type elemCache struct {
	rays []cachedRay
	// empty[k] is the fully-summed static response Σ_rays phasors[k] — the
	// whole empty-room case is a copy of this row.
	empty []complex128
}

// gridCache is the per-frequency-grid synthesis cache built by PrepareGrid.
type gridCache struct {
	freqs     []float64
	lambdas   []float64
	maxLambda float64
	elems     []elemCache
}

// ResponseScratch holds the reusable working set of ResponseInto. A scratch
// must not be shared between goroutines; give each capture loop its own.
// The zero value is ready to use.
type ResponseScratch struct {
	pairs []body.ShadowGeometry
}

// buildRayConsts precomputes the frequency-independent ray constants for
// every receive element (called from NewEnvironment).
func (e *Environment) buildRayConsts() {
	pre := math.Sqrt(e.Params.TxPower * e.Params.TxGain * e.Params.RxGain)
	n := e.Room.PathLossExponent
	e.rayConsts = make([][]rayConst, len(e.staticRays))
	for i, rays := range e.staticRays {
		consts := make([]rayConst, len(rays))
		for j, r := range rays {
			d := r.Length()
			rc := rayConst{segs: r.Points.Segments()}
			if d > 0 {
				rc.ampOverF = pre * SpeedOfLight * r.Gain / math.Pow(4*math.Pi*d, n/2)
				if r.PhaseFlips%2 == 1 {
					rc.ampOverF = -rc.ampOverF
				}
				rc.phasePerF = -2 * math.Pi * d / SpeedOfLight
			}
			consts[j] = rc
		}
		e.rayConsts[i] = consts
	}
}

// PrepareGrid builds (or rebuilds) the synthesis cache for a frequency grid.
// It is idempotent for an unchanged grid and must not be called concurrently
// with Response evaluations. Callers that capture packets (csi.Extractor)
// invoke it once at construction.
func (e *Environment) PrepareGrid(freqs []float64) error {
	if len(freqs) == 0 {
		return fmt.Errorf("prepare grid with no frequencies: %w", ErrBadGeometry)
	}
	for _, f := range freqs {
		if f <= 0 {
			return fmt.Errorf("prepare grid with frequency %v: %w", f, ErrBadGeometry)
		}
	}
	if e.cache != nil && sameFreqs(e.cache.freqs, freqs) {
		return nil
	}
	nf := len(freqs)
	c := &gridCache{
		freqs:   append([]float64(nil), freqs...),
		lambdas: make([]float64, nf),
		elems:   make([]elemCache, len(e.staticRays)),
	}
	for k, f := range freqs {
		c.lambdas[k] = SpeedOfLight / f
		if c.lambdas[k] > c.maxLambda {
			c.maxLambda = c.lambdas[k]
		}
	}
	for i, consts := range e.rayConsts {
		ec := elemCache{
			rays:  make([]cachedRay, len(consts)),
			empty: make([]complex128, nf),
		}
		// One contiguous backing array for the element's phasor tables.
		backing := make([]complex128, len(consts)*nf)
		for j, rc := range consts {
			row := backing[j*nf : (j+1)*nf : (j+1)*nf]
			for k, f := range freqs {
				amp := rc.ampOverF / f
				sin, cos := math.Sincos(rc.phasePerF * f)
				row[k] = complex(amp*cos, amp*sin)
				ec.empty[k] += row[k]
			}
			ec.rays[j] = cachedRay{phasors: row, segs: rc.segs}
		}
		c.elems[i] = ec
	}
	e.cache = c
	return nil
}

// Prepared reports whether PrepareGrid has built a cache.
func (e *Environment) Prepared() bool { return e.cache != nil }

// PreparedFor reports whether the cache matches the given frequency grid —
// the guard callers sharing an environment across grids use before
// ResponseInto, since a cache rebuilt for another grid would otherwise
// synthesize at the wrong frequencies.
func (e *Environment) PreparedFor(freqs []float64) bool {
	return e.cache != nil && sameFreqs(e.cache.freqs, freqs)
}

func sameFreqs(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// appendShadowPairs classifies a body against each segment of a ray and
// appends the (body, segment) pairs whose knife-edge gain can differ from 1
// at some cached subcarrier. Geometry (closest point, leg lengths) is
// frequency-independent and resolved once here; only the Fresnel parameter
// is left for the per-subcarrier loop.
func (c *gridCache) appendShadowPairs(pairs []body.ShadowGeometry, b body.Body, segs []geom.Segment) []body.ShadowGeometry {
	for _, seg := range segs {
		if g, ok := b.SegmentGeometry(seg, c.maxLambda); ok {
			pairs = append(pairs, g)
		}
	}
	return pairs
}

// shadowGainAt evaluates the product of knife-edge gains of the active pairs
// at one wavelength (the per-subcarrier half of body.ShadowGain).
func shadowGainAt(pairs []body.ShadowGeometry, lambda float64) float64 {
	gain := 1.0
	for _, p := range pairs {
		gain *= p.GainAt(lambda)
	}
	return gain
}

// ResponseInto evaluates H over the prepared frequency grid for every
// receive element, writing into dst ([element][subcarrier], caller-
// allocated) without allocating. It requires a prior PrepareGrid and is the
// cached counterpart of Response: the no-bodies case is a table copy; with
// bodies present only the body-dependent shadow and echo terms are
// re-evaluated against the cached per-ray phasors. sc may be nil (a scratch
// is then allocated per call).
func (e *Environment) ResponseInto(dst [][]complex128, bodies []body.Body, sc *ResponseScratch) error {
	c := e.cache
	if c == nil {
		return fmt.Errorf("response into without PrepareGrid: %w", ErrBadGeometry)
	}
	if len(dst) != len(c.elems) {
		return fmt.Errorf("dst has %d rows for %d elements: %w", len(dst), len(c.elems), ErrBadGeometry)
	}
	nf := len(c.freqs)
	for i, row := range dst {
		if len(row) != nf {
			return fmt.Errorf("dst row %d has %d entries for %d subcarriers: %w", i, len(row), nf, ErrBadGeometry)
		}
	}
	if len(bodies) == 0 {
		for i := range dst {
			copy(dst[i], c.elems[i].empty)
		}
		return nil
	}
	if sc == nil {
		sc = &ResponseScratch{}
	}
	pre := math.Sqrt(e.Params.TxPower * e.Params.TxGain * e.Params.RxGain)
	n := e.Room.PathLossExponent
	for i := range dst {
		row := dst[i]
		for k := range row {
			row[k] = 0
		}
		// Static rays: cached phasors, shadowed by every body.
		for _, cr := range c.elems[i].rays {
			sc.pairs = sc.pairs[:0]
			for bi := range bodies {
				sc.pairs = c.appendShadowPairs(sc.pairs, bodies[bi], cr.segs)
			}
			if len(sc.pairs) == 0 {
				for k, ph := range cr.phasors {
					row[k] += ph
				}
				continue
			}
			for k, ph := range cr.phasors {
				row[k] += ph * complex(shadowGainAt(sc.pairs, c.lambdas[k]), 0)
			}
		}
		// Echo rays: one bistatic bounce per body, shadowed by the others.
		elem := e.RX.Elements[i]
		for bi := range bodies {
			b := bodies[bi]
			if b.RCS <= 0 {
				continue
			}
			d1 := e.TX.Dist(b.Position)
			d2 := b.Position.Dist(elem)
			if d1 <= 0 || d2 <= 0 {
				continue
			}
			// amp(f) = A/f, with the echo's single phase flip folded in.
			a := -pre * SpeedOfLight * b.EchoAmplitudeScale() / (4 * math.Pi * math.Pow(d1*d2, n/2))
			phasePerF := -2 * math.Pi * (d1 + d2) / SpeedOfLight
			segs := [2]geom.Segment{
				{A: e.TX, B: b.Position},
				{A: b.Position, B: elem},
			}
			sc.pairs = sc.pairs[:0]
			for bj := range bodies {
				if bj == bi {
					continue
				}
				sc.pairs = c.appendShadowPairs(sc.pairs, bodies[bj], segs[:])
			}
			for k, f := range c.freqs {
				amp := a / f * shadowGainAt(sc.pairs, c.lambdas[k])
				sin, cos := math.Sincos(phasePerF * f)
				row[k] += complex(amp*cos, amp*sin)
			}
		}
	}
	return nil
}
