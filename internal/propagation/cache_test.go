package propagation

import (
	"math"
	"math/rand"
	"testing"

	"mlink/internal/body"
	"mlink/internal/geom"
)

// testFreqs returns a 30-subcarrier grid around 2.462 GHz (the paper's
// channel 11) without importing the channel package.
func testFreqs() []float64 {
	out := make([]float64, 30)
	for i := range out {
		out[i] = testFreq + float64(i-15)*312.5e3
	}
	return out
}

func mustPrepared(t *testing.T, e *Environment, freqs []float64) {
	t.Helper()
	if err := e.PrepareGrid(freqs); err != nil {
		t.Fatalf("prepare grid: %v", err)
	}
}

// maxDivergence compares the naive and cached paths over a body set and
// returns the largest per-entry divergence.
func maxDivergence(t *testing.T, e *Environment, freqs []float64, bodies []body.Body, sc *ResponseScratch) float64 {
	t.Helper()
	naive := e.Response(freqs, bodies)
	cached := make([][]complex128, len(naive))
	for i := range cached {
		cached[i] = make([]complex128, len(freqs))
	}
	if err := e.ResponseInto(cached, bodies, sc); err != nil {
		t.Fatalf("response into: %v", err)
	}
	var worst float64
	for i := range naive {
		for k := range naive[i] {
			d := naive[i][k] - cached[i][k]
			re, im := real(d), imag(d)
			if m := re*re + im*im; m > worst {
				worst = m
			}
		}
	}
	return math.Sqrt(worst)
}

// TestResponseIntoMatchesNaive is the cache-consistency property test: the
// cached path must match the naive per-ray evaluation to <1e-9 for empty
// rooms and for 1–3 bodies scattered around the link (the scenario-preset
// half of the property lives in internal/scenario, which owns the presets).
func TestResponseIntoMatchesNaive(t *testing.T) {
	room := mustRoom(t, 6, 8)
	room.Walls[1].Mat = Concrete
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, 0, 3)
	env := mustEnv(t, room, geom.Point{X: 1, Y: 4}, rx, 2)
	freqs := testFreqs()
	mustPrepared(t, env, freqs)
	sc := &ResponseScratch{}

	if d := maxDivergence(t, env, freqs, nil, sc); d > 1e-9 {
		t.Fatalf("empty-room divergence %v > 1e-9", d)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nBodies := 1 + trial%3
		bodies := make([]body.Body, 0, nBodies)
		for b := 0; b < nBodies; b++ {
			p := geom.Point{X: 0.5 + rng.Float64()*5, Y: 0.5 + rng.Float64()*7}
			bb := body.Default(p)
			if b == 2 {
				// Exercise the RCS ≤ 0 echo-skip branch too.
				bb.RCS = 0
			}
			bodies = append(bodies, bb)
		}
		if d := maxDivergence(t, env, freqs, bodies, sc); d > 1e-9 {
			t.Fatalf("trial %d (%d bodies): divergence %v > 1e-9", trial, nBodies, d)
		}
	}
}

// TestResponseIntoBodyOnPath pins the worst case for the shadow fast path: a
// body standing directly on the LOS line, where every subcarrier's knife-
// edge gain differs from 1.
func TestResponseIntoBodyOnPath(t *testing.T) {
	room := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, 0, 3)
	env := mustEnv(t, room, geom.Point{X: 1, Y: 4}, rx, 2)
	freqs := testFreqs()
	mustPrepared(t, env, freqs)
	bodies := []body.Body{body.Default(geom.Point{X: 3, Y: 4})}
	if d := maxDivergence(t, env, freqs, bodies, nil); d > 1e-9 {
		t.Fatalf("on-path divergence %v > 1e-9", d)
	}
}

// TestPrepareGridErrors covers the cache's validation paths.
func TestPrepareGridErrors(t *testing.T) {
	room := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, 0, 2)
	env := mustEnv(t, room, geom.Point{X: 1, Y: 4}, rx, 1)
	if err := env.PrepareGrid(nil); err == nil {
		t.Fatal("empty grid accepted")
	}
	if err := env.PrepareGrid([]float64{2.4e9, -1}); err == nil {
		t.Fatal("negative frequency accepted")
	}
	if env.Prepared() {
		t.Fatal("failed PrepareGrid left a cache behind")
	}

	dst := [][]complex128{make([]complex128, 30), make([]complex128, 30)}
	if err := env.ResponseInto(dst, nil, nil); err == nil {
		t.Fatal("ResponseInto without PrepareGrid accepted")
	}
	freqs := testFreqs()
	mustPrepared(t, env, freqs)
	// Idempotent for the same grid: the cache pointer must not be rebuilt.
	before := env.cache
	mustPrepared(t, env, freqs)
	if env.cache != before {
		t.Fatal("PrepareGrid rebuilt an unchanged grid")
	}
	// Rebuilt for a different grid.
	mustPrepared(t, env, freqs[:10])
	if env.cache == before {
		t.Fatal("PrepareGrid kept a stale cache")
	}
	if err := env.ResponseInto(dst[:1], nil, nil); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	short := [][]complex128{make([]complex128, 5), make([]complex128, 5)}
	if err := env.ResponseInto(short, nil, nil); err == nil {
		t.Fatal("row-length mismatch accepted")
	}
}

// TestResponseIntoAllocs checks the with-bodies cached path stays
// allocation-free once the scratch has warmed up.
func TestResponseIntoAllocs(t *testing.T) {
	room := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, 0, 3)
	env := mustEnv(t, room, geom.Point{X: 1, Y: 4}, rx, 2)
	freqs := testFreqs()
	mustPrepared(t, env, freqs)
	dst := make([][]complex128, 3)
	for i := range dst {
		dst[i] = make([]complex128, len(freqs))
	}
	bodies := []body.Body{body.Default(geom.Point{X: 3, Y: 4}), body.Default(geom.Point{X: 2, Y: 5})}
	sc := &ResponseScratch{}
	if err := env.ResponseInto(dst, bodies, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := env.ResponseInto(dst, bodies, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ResponseInto allocates %v per call, want 0", allocs)
	}
}
