package propagation

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"mlink/internal/body"
	"mlink/internal/geom"
)

const (
	testFreq = 2.462e9
	lambda   = SpeedOfLight / testFreq
)

func mustRoom(t *testing.T, w, h float64) *Room {
	t.Helper()
	r, err := RectRoom(w, h, Drywall)
	if err != nil {
		t.Fatalf("rect room: %v", err)
	}
	return r
}

func mustULA(t *testing.T, center geom.Point, broadside float64, n int) Array {
	t.Helper()
	a, err := NewULA(center, broadside, n, lambda/2)
	if err != nil {
		t.Fatalf("ula: %v", err)
	}
	return a
}

func mustEnv(t *testing.T, room *Room, tx geom.Point, rx Array, bounces int) *Environment {
	t.Helper()
	e, err := NewEnvironment(room, tx, rx, DefaultLinkParams(), bounces)
	if err != nil {
		t.Fatalf("environment: %v", err)
	}
	return e
}

func TestRectRoom(t *testing.T) {
	r := mustRoom(t, 6, 8)
	if len(r.Walls) != 4 {
		t.Fatalf("walls = %d", len(r.Walls))
	}
	var perim float64
	for _, w := range r.Walls {
		perim += w.Seg.Length()
	}
	if math.Abs(perim-28) > 1e-9 {
		t.Fatalf("perimeter = %v", perim)
	}
	if _, err := RectRoom(0, 5, Drywall); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("zero width err = %v", err)
	}
	if _, err := RectRoom(5, -1, Drywall); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("negative height err = %v", err)
	}
}

func TestTraceLOSOnly(t *testing.T) {
	r := mustRoom(t, 6, 8)
	tr := Tracer{Room: r, MaxBounces: 0}
	rays, err := tr.Trace(geom.Point{X: 1, Y: 4}, geom.Point{X: 5, Y: 4})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(rays) != 1 || rays[0].Kind != KindLOS {
		t.Fatalf("rays = %+v", rays)
	}
	if math.Abs(rays[0].Length()-4) > 1e-9 {
		t.Fatalf("los length = %v", rays[0].Length())
	}
	if rays[0].Gain != 1 || rays[0].PhaseFlips != 0 {
		t.Fatalf("los gain/flips = %v/%v", rays[0].Gain, rays[0].PhaseFlips)
	}
}

func TestTraceCoincidentEndpoints(t *testing.T) {
	r := mustRoom(t, 6, 8)
	tr := Tracer{Room: r, MaxBounces: 0}
	if _, err := tr.Trace(geom.Point{X: 1, Y: 1}, geom.Point{X: 1, Y: 1}); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("coincident err = %v", err)
	}
}

func TestTraceOneBounceCount(t *testing.T) {
	// In a rectangle, two interior points see one specular bounce off each
	// of the four walls.
	r := mustRoom(t, 6, 8)
	tr := Tracer{Room: r, MaxBounces: 1}
	rays, err := tr.Trace(geom.Point{X: 1, Y: 4}, geom.Point{X: 5, Y: 4})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var los, bounce int
	for _, ray := range rays {
		switch ray.Kind {
		case KindLOS:
			los++
		case KindWallBounce:
			bounce++
			if len(ray.Points) != 3 {
				t.Fatalf("bounce ray has %d points", len(ray.Points))
			}
			if ray.PhaseFlips != 1 {
				t.Fatalf("bounce flips = %d", ray.PhaseFlips)
			}
		}
	}
	if los != 1 || bounce != 4 {
		t.Fatalf("los=%d bounce=%d, want 1 and 4", los, bounce)
	}
}

func TestTraceBounceGeometry(t *testing.T) {
	// Specular law: the bounce point off the bottom wall of a symmetric
	// link lies at the horizontal midpoint.
	r := mustRoom(t, 6, 8)
	tr := Tracer{Room: r, MaxBounces: 1}
	rays, _ := tr.Trace(geom.Point{X: 1, Y: 4}, geom.Point{X: 5, Y: 4})
	found := false
	for _, ray := range rays {
		if ray.Kind != KindWallBounce {
			continue
		}
		b := ray.Points[1]
		if math.Abs(b.Y) < 1e-9 { // bottom wall y=0
			found = true
			if math.Abs(b.X-3) > 1e-9 {
				t.Fatalf("bottom bounce at x=%v, want 3", b.X)
			}
			// Path length = image distance: sqrt(4² + 8²).
			want := math.Hypot(4, 8)
			if math.Abs(ray.Length()-want) > 1e-9 {
				t.Fatalf("bounce length = %v, want %v", ray.Length(), want)
			}
		}
	}
	if !found {
		t.Fatal("no bottom-wall bounce found")
	}
}

func TestTraceTwoBounce(t *testing.T) {
	r := mustRoom(t, 6, 8)
	tr := Tracer{Room: r, MaxBounces: 2}
	rays, _ := tr.Trace(geom.Point{X: 1, Y: 4}, geom.Point{X: 5, Y: 4})
	var two int
	for _, ray := range rays {
		if len(ray.Points) == 4 {
			two++
			if ray.PhaseFlips != 2 {
				t.Fatalf("two-bounce flips = %d", ray.PhaseFlips)
			}
			if ray.Gain <= 0 || ray.Gain >= 1 {
				t.Fatalf("two-bounce gain = %v", ray.Gain)
			}
			// Both bounce points must lie on walls.
			for _, b := range ray.Points[1:3] {
				onWall := false
				for _, w := range r.Walls {
					if w.Seg.DistToPoint(b) < 1e-6 {
						onWall = true
					}
				}
				if !onWall {
					t.Fatalf("bounce point %v not on any wall", b)
				}
			}
		}
	}
	if two == 0 {
		t.Fatal("no two-bounce rays found")
	}
}

func TestTraceObstacleBlocksLOS(t *testing.T) {
	r := mustRoom(t, 6, 8)
	// A metal partition crossing the link.
	r.AddObstacle(geom.Segment{A: geom.Point{X: 3, Y: 3}, B: geom.Point{X: 3, Y: 5}}, Metal)
	tr := Tracer{Room: r, MaxBounces: 0}
	rays, err := tr.Trace(geom.Point{X: 1, Y: 4}, geom.Point{X: 5, Y: 4})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if len(rays) != 0 {
		t.Fatalf("blocked LOS produced %d rays", len(rays))
	}
}

func TestNewULAGeometry(t *testing.T) {
	a := mustULA(t, geom.Point{X: 2, Y: 3}, 0, 3)
	if len(a.Elements) != 3 {
		t.Fatalf("elements = %d", len(a.Elements))
	}
	// Facing +x, axis is +y: elements differ in y by λ/2.
	if math.Abs(a.Elements[1].Sub(a.Elements[0]).Y-lambda/2) > 1e-12 {
		t.Fatalf("element spacing wrong: %v", a.Elements)
	}
	// Centre element at the array centre for odd n.
	if a.Elements[1].Dist(geom.Point{X: 2, Y: 3}) > 1e-12 {
		t.Fatalf("centre element at %v", a.Elements[1])
	}
	offs := a.Offsets()
	if math.Abs(offs[0]+lambda/2) > 1e-12 || math.Abs(offs[1]) > 1e-12 || math.Abs(offs[2]-lambda/2) > 1e-12 {
		t.Fatalf("offsets = %v", offs)
	}
	if _, err := NewULA(geom.Point{}, 0, 0, lambda/2); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("0-element err = %v", err)
	}
	if _, err := NewULA(geom.Point{}, 0, 3, 0); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("0-spacing err = %v", err)
	}
}

func TestRelativeAngleWrap(t *testing.T) {
	a := Array{Broadside: math.Pi}
	if d := a.RelativeAngle(-math.Pi + 0.1); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("wrap = %v, want 0.1", d)
	}
	if d := a.RelativeAngle(math.Pi - 0.1); math.Abs(d+0.1) > 1e-12 {
		t.Fatalf("wrap = %v, want -0.1", d)
	}
}

func TestEnvironmentValidation(t *testing.T) {
	r := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 3)
	if _, err := NewEnvironment(nil, geom.Point{X: 1, Y: 4}, rx, DefaultLinkParams(), 1); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("nil room err = %v", err)
	}
	if _, err := NewEnvironment(r, geom.Point{X: 1, Y: 4}, Array{}, DefaultLinkParams(), 1); !errors.Is(err, ErrBadGeometry) {
		t.Fatalf("empty array err = %v", err)
	}
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 1)
	if got := len(e.StaticRays(0)); got != 5 {
		t.Fatalf("static rays = %d, want 5 (LOS + 4 bounces)", got)
	}
}

func TestFreeSpaceAmplitudeMatchesFriis(t *testing.T) {
	// With n=2 the LOS amplitude must equal the Friis form c/(4πdf).
	r := mustRoom(t, 20, 20)
	r.PathLossExponent = 2
	for i := range r.Walls {
		r.Walls[i].Mat.Reflectivity = 0 // kill reflections
	}
	rx := mustULA(t, geom.Point{X: 14, Y: 10}, math.Pi, 1)
	e := mustEnv(t, r, geom.Point{X: 10, Y: 10}, rx, 2)
	h := e.ResponseAt(testFreq, 0, nil)
	d := 4.0
	want := SpeedOfLight / (4 * math.Pi * d * testFreq)
	if math.Abs(cmplx.Abs(h)-want) > 1e-12*want {
		t.Fatalf("|H| = %v, want %v", cmplx.Abs(h), want)
	}
	// Phase must be -2πfd/c modulo 2π.
	wantPhase := math.Mod(-2*math.Pi*testFreq*d/SpeedOfLight, 2*math.Pi)
	gotPhase := cmplx.Phase(h)
	diff := math.Mod(gotPhase-wantPhase+3*math.Pi, 2*math.Pi) - math.Pi
	if math.Abs(diff) > 1e-6 {
		t.Fatalf("phase = %v, want %v", gotPhase, wantPhase)
	}
}

func TestResponsePowerDecaysWithDistance(t *testing.T) {
	r := mustRoom(t, 30, 30)
	for i := range r.Walls {
		r.Walls[i].Mat.Reflectivity = 0
	}
	tx := geom.Point{X: 1, Y: 15}
	prev := math.Inf(1)
	for _, d := range []float64{2, 4, 8, 16} {
		rx := mustULA(t, geom.Point{X: 1 + d, Y: 15}, math.Pi, 1)
		e := mustEnv(t, r, tx, rx, 0)
		p := cmplx.Abs(e.ResponseAt(testFreq, 0, nil))
		if p >= prev {
			t.Fatalf("amplitude did not decay at d=%v: %v >= %v", d, p, prev)
		}
		prev = p
	}
}

func TestMultipathRichness(t *testing.T) {
	// With reflective walls, total power differs from LOS-only power and
	// varies across frequency (frequency-selective fading).
	r := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 1)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 2)
	h1 := cmplx.Abs(e.ResponseAt(2.452e9, 0, nil))
	h2 := cmplx.Abs(e.ResponseAt(2.472e9, 0, nil))
	if math.Abs(h1-h2)/math.Max(h1, h2) < 1e-4 {
		t.Fatalf("no frequency selectivity: %v vs %v", h1, h2)
	}
}

func TestHumanShadowingDropsLOSPower(t *testing.T) {
	r := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 3)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 1)
	blocker := body.Default(geom.Point{X: 3, Y: 4})
	los0, _ := e.OracleLOS(testFreq, 1, nil)
	losB, _ := e.OracleLOS(testFreq, 1, []body.Body{blocker})
	if losB >= los0 {
		t.Fatalf("blocking body did not reduce LOS power: %v >= %v", losB, los0)
	}
	if losB > los0*0.7 {
		t.Fatalf("blocking attenuation too weak: %v of %v", losB, los0)
	}
}

func TestHumanEchoAddsPath(t *testing.T) {
	r := mustRoom(t, 6, 8)
	for i := range r.Walls {
		r.Walls[i].Mat.Reflectivity = 0
	}
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 1)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 0)
	// Body well off the LOS: pure echo, no shadowing.
	b := body.Default(geom.Point{X: 3, Y: 6})
	h0 := e.ResponseAt(testFreq, 0, nil)
	hb := e.ResponseAt(testFreq, 0, []body.Body{b})
	if cmplx.Abs(hb-h0) == 0 {
		t.Fatal("echo contributed nothing")
	}
	// The echo must be much weaker than the LOS.
	if cmplx.Abs(hb-h0) > 0.5*cmplx.Abs(h0) {
		t.Fatalf("echo implausibly strong: %v vs LOS %v", cmplx.Abs(hb-h0), cmplx.Abs(h0))
	}
	// Zero-RCS body contributes no echo.
	ghost := body.Body{Position: geom.Point{X: 3, Y: 6}, Radius: 0.2, RCS: 0}
	hg := e.ResponseAt(testFreq, 0, []body.Body{ghost})
	if hg != h0 {
		t.Fatalf("zero-RCS body changed response: %v vs %v", hg, h0)
	}
}

func TestEchoFartherIsWeaker(t *testing.T) {
	r := mustRoom(t, 12, 12)
	for i := range r.Walls {
		r.Walls[i].Mat.Reflectivity = 0
	}
	rx := mustULA(t, geom.Point{X: 9, Y: 6}, math.Pi, 1)
	e := mustEnv(t, r, geom.Point{X: 3, Y: 6}, rx, 0)
	h0 := e.ResponseAt(testFreq, 0, nil)
	near := body.Default(geom.Point{X: 6, Y: 7})
	far := body.Default(geom.Point{X: 6, Y: 11})
	dNear := cmplx.Abs(e.ResponseAt(testFreq, 0, []body.Body{near}) - h0)
	dFar := cmplx.Abs(e.ResponseAt(testFreq, 0, []body.Body{far}) - h0)
	if dFar >= dNear {
		t.Fatalf("far echo stronger than near echo: %v >= %v", dFar, dNear)
	}
}

func TestResponseGridShape(t *testing.T) {
	r := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 3)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 1)
	freqs := []float64{2.45e9, 2.46e9, 2.47e9}
	h := e.Response(freqs, nil)
	if len(h) != 3 {
		t.Fatalf("antennas = %d", len(h))
	}
	for i, row := range h {
		if len(row) != 3 {
			t.Fatalf("row %d len = %d", i, len(row))
		}
		for k, v := range row {
			if v == 0 {
				t.Fatalf("H[%d][%d] = 0", i, k)
			}
		}
	}
}

func TestOracleLOSRatioInRange(t *testing.T) {
	r := mustRoom(t, 6, 8)
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 3)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 2)
	los, total := e.OracleLOS(testFreq, 1, nil)
	if los <= 0 || total <= 0 {
		t.Fatalf("powers = %v %v", los, total)
	}
	mu := los / total
	// With sub-unity wall reflectivity the LOS dominates but multipath is
	// present: μ should be O(1) and not degenerate.
	if mu < 0.2 || mu > 5 {
		t.Fatalf("oracle multipath factor = %v, implausible", mu)
	}
}

func TestTrueAoAsLOSAngle(t *testing.T) {
	r := mustRoom(t, 6, 8)
	// Array at (5,4) facing -x; TX at (1,4): LOS arrives from broadside (0°).
	rx := mustULA(t, geom.Point{X: 5, Y: 4}, math.Pi, 3)
	e := mustEnv(t, r, geom.Point{X: 1, Y: 4}, rx, 1)
	angles, amps := e.TrueAoAs(testFreq)
	if len(angles) == 0 || len(angles) != len(amps) {
		t.Fatalf("angles/amps = %v/%v", angles, amps)
	}
	// Strongest ray is the LOS; its relative angle must be ≈0.
	best := 0
	for i := range amps {
		if amps[i] > amps[best] {
			best = i
		}
	}
	if math.Abs(angles[best]) > 1e-9 {
		t.Fatalf("LOS relative angle = %v, want 0", angles[best])
	}
}

func TestRayKindString(t *testing.T) {
	for k, want := range map[RayKind]string{
		KindLOS:        "los",
		KindWallBounce: "wall-bounce",
		KindHumanEcho:  "human-echo",
		KindBackground: "background",
		RayKind(99):    "raykind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("kind %d = %q, want %q", int(k), got, want)
		}
	}
}

func TestRayAoADegenerate(t *testing.T) {
	if (Ray{}).AoA() != 0 {
		t.Fatal("empty ray AoA != 0")
	}
}
