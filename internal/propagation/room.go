package propagation

import (
	"errors"
	"fmt"

	"mlink/internal/geom"
)

// SpeedOfLight in metres per second.
const SpeedOfLight = 299792458.0

// ErrBadGeometry reports a degenerate room or link geometry.
var ErrBadGeometry = errors.New("propagation: bad geometry")

// Material describes a reflecting surface.
type Material struct {
	// Name for diagnostics ("concrete", "drywall", ...).
	Name string
	// Reflectivity is the magnitude of the amplitude reflection coefficient
	// in [0, 1]. Each specular bounce also flips the phase by π.
	Reflectivity float64
}

// Common wall materials with representative 2.4 GHz reflectivities.
var (
	Concrete  = Material{Name: "concrete", Reflectivity: 0.55}
	Brick     = Material{Name: "brick", Reflectivity: 0.45}
	Drywall   = Material{Name: "drywall", Reflectivity: 0.30}
	Glass     = Material{Name: "glass", Reflectivity: 0.40}
	Metal     = Material{Name: "metal", Reflectivity: 0.85}
	Furniture = Material{Name: "furniture", Reflectivity: 0.25}
)

// Wall is a reflecting segment in the room plane.
type Wall struct {
	Seg geom.Segment
	Mat Material
}

// Room is a set of reflecting walls plus the large-scale propagation
// parameters of the environment.
type Room struct {
	Walls []Wall
	// PathLossExponent is n in Eq. 9; 2 is free space, typical furnished
	// indoor values are 2.5–3.5.
	PathLossExponent float64
}

// RectRoom builds a w×h rectangular room with all four walls of the given
// material and corner at the origin.
func RectRoom(w, h float64, mat Material) (*Room, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("rect room %vx%v: %w", w, h, ErrBadGeometry)
	}
	corners := []geom.Point{{X: 0, Y: 0}, {X: w, Y: 0}, {X: w, Y: h}, {X: 0, Y: h}}
	walls := make([]Wall, 4)
	for i := range corners {
		walls[i] = Wall{
			Seg: geom.Segment{A: corners[i], B: corners[(i+1)%4]},
			Mat: mat,
		}
	}
	return &Room{Walls: walls, PathLossExponent: 2.8}, nil
}

// AddObstacle appends an interior reflecting segment (furniture, partition).
func (r *Room) AddObstacle(seg geom.Segment, mat Material) {
	r.Walls = append(r.Walls, Wall{Seg: seg, Mat: mat})
}

// Clone returns an independent copy of the room, so a scenario variant
// (e.g. a furniture-move drift preset) can add obstacles without mutating
// the room a live environment was traced from.
func (r *Room) Clone() *Room {
	return &Room{
		Walls:            append([]Wall(nil), r.Walls...),
		PathLossExponent: r.PathLossExponent,
	}
}

// RayKind labels how a ray reached the receiver.
type RayKind int

// Ray kinds. Values start at 1 so that the zero value is invalid.
const (
	KindLOS RayKind = iota + 1
	KindWallBounce
	KindHumanEcho
	KindBackground
)

// String names the ray kind.
func (k RayKind) String() string {
	switch k {
	case KindLOS:
		return "los"
	case KindWallBounce:
		return "wall-bounce"
	case KindHumanEcho:
		return "human-echo"
	case KindBackground:
		return "background"
	default:
		return fmt.Sprintf("raykind(%d)", int(k))
	}
}

// Ray is one propagation path from transmitter to a receive antenna.
type Ray struct {
	// Points is the full polyline TX → bounce(s) → RX.
	Points geom.Polyline
	// Gain is the product of reflection-coefficient magnitudes picked up
	// along the path (1 for LOS).
	Gain float64
	// PhaseFlips counts π phase inversions (one per specular bounce).
	PhaseFlips int
	// Kind labels the mechanism.
	Kind RayKind
	// Bistatic marks rays whose spreading follows the radar equation
	// (1/(d1·d2)) rather than total-distance spreading — human echo rays.
	Bistatic bool
}

// Length returns the total geometric length of the ray in metres.
func (r Ray) Length() float64 { return r.Points.Length() }

// AoA returns the arrival direction at the receiver in radians, measured as
// the absolute plane angle of the last leg (pointing from the last bounce —
// or the transmitter — towards the receiver).
func (r Ray) AoA() float64 {
	n := len(r.Points)
	if n < 2 {
		return 0
	}
	leg := r.Points[n-1].Sub(r.Points[n-2])
	return leg.Angle()
}
