package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestRates(t *testing.T) {
	samples := []Sample{
		{Score: 0.9, Positive: true},
		{Score: 0.2, Positive: true},
		{Score: 0.8, Positive: false},
		{Score: 0.1, Positive: false},
	}
	tpr, fpr, err := Rates(samples, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 0.5 || fpr != 0.5 {
		t.Fatalf("tpr=%v fpr=%v", tpr, fpr)
	}
	tpr, fpr, err = Rates(samples, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 0.5 || fpr != 0 {
		t.Fatalf("tpr=%v fpr=%v", tpr, fpr)
	}
}

func TestRatesOneSided(t *testing.T) {
	onlyPos := []Sample{{Score: 1, Positive: true}}
	if _, _, err := Rates(onlyPos, 0.5); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("one-sided err = %v", err)
	}
	onlyNeg := []Sample{{Score: 1, Positive: false}}
	if _, _, err := Rates(onlyNeg, 0.5); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("one-sided err = %v", err)
	}
}

func TestROCPerfectSeparation(t *testing.T) {
	var samples []Sample
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{Score: 10 + float64(i), Positive: true})
		samples = append(samples, Sample{Score: float64(i) * 0.1, Positive: false})
	}
	points, err := ROC(samples)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-1) > 1e-9 {
		t.Fatalf("perfect auc = %v", auc)
	}
	bp, err := BalancedPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	if bp.TPR != 1 || bp.FPR != 0 {
		t.Fatalf("balanced point = %+v", bp)
	}
}

func TestROCRandomScoresAUCHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 4000; i++ {
		samples = append(samples, Sample{Score: rng.Float64(), Positive: i%2 == 0})
	}
	points, err := ROC(samples)
	if err != nil {
		t.Fatal(err)
	}
	auc, err := AUC(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("random auc = %v, want ≈0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var samples []Sample
	for i := 0; i < 500; i++ {
		s := rng.NormFloat64()
		pos := rng.Float64() < 0.5
		if pos {
			s += 1
		}
		samples = append(samples, Sample{Score: s, Positive: pos})
	}
	points, err := ROC(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].FPR < points[i-1].FPR {
			t.Fatalf("fpr not sorted at %d", i)
		}
		if points[i].FPR == points[i-1].FPR && points[i].TPR < points[i-1].TPR {
			t.Fatalf("tpr not sorted within fpr at %d", i)
		}
	}
	// Endpoints: (0-ish, low) to (1, 1).
	last := points[len(points)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("roc does not reach (1,1): %+v", last)
	}
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := ROC([]Sample{{Score: 1, Positive: true}}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("single-class err = %v", err)
	}
	if _, err := AUC(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("auc empty err = %v", err)
	}
	if _, err := BalancedPoint(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("balanced empty err = %v", err)
	}
	if _, err := YoudenPoint(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("youden empty err = %v", err)
	}
}

func TestBalancedPointEqualError(t *testing.T) {
	points := []ROCPoint{
		{Threshold: 0, TPR: 1.0, FPR: 1.0},
		{Threshold: 1, TPR: 0.9, FPR: 0.3},
		{Threshold: 2, TPR: 0.7, FPR: 0.28},
		{Threshold: 3, TPR: 0.5, FPR: 0.0},
	}
	bp, err := BalancedPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	// |0.9-(1-0.3)| = 0.2; |0.7-0.72| = 0.02 → threshold 2 wins.
	if bp.Threshold != 2 {
		t.Fatalf("balanced point = %+v", bp)
	}
}

func TestYoudenPoint(t *testing.T) {
	points := []ROCPoint{
		{Threshold: 1, TPR: 0.9, FPR: 0.5},
		{Threshold: 2, TPR: 0.8, FPR: 0.1},
	}
	yp, err := YoudenPoint(points)
	if err != nil {
		t.Fatal(err)
	}
	if yp.Threshold != 2 {
		t.Fatalf("youden = %+v", yp)
	}
}

func TestDetectionAndFalsePositiveRate(t *testing.T) {
	samples := []Sample{
		{Score: 0.9, Positive: true},
		{Score: 0.4, Positive: true},
		{Score: 0.6, Positive: false},
		{Score: 0.1, Positive: false},
	}
	dr, err := DetectionRate(samples, 0.5)
	if err != nil || dr != 0.5 {
		t.Fatalf("dr=%v err=%v", dr, err)
	}
	fp, err := FalsePositiveRate(samples, 0.5)
	if err != nil || fp != 0.5 {
		t.Fatalf("fp=%v err=%v", fp, err)
	}
	if _, err := DetectionRate([]Sample{{Positive: false}}, 0); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("dr err = %v", err)
	}
	if _, err := FalsePositiveRate([]Sample{{Positive: true}}, 0); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("fp err = %v", err)
	}
}

func TestBetterSeparationHigherAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkSamples := func(sep float64) []Sample {
		var out []Sample
		for i := 0; i < 1000; i++ {
			pos := i%2 == 0
			s := rng.NormFloat64()
			if pos {
				s += sep
			}
			out = append(out, Sample{Score: s, Positive: pos})
		}
		return out
	}
	aucAt := func(sep float64) float64 {
		points, err := ROC(mkSamples(sep))
		if err != nil {
			t.Fatal(err)
		}
		a, err := AUC(points)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if aucAt(2.0) <= aucAt(0.5) {
		t.Fatal("higher separation did not raise AUC")
	}
}
