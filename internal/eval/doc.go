// Package eval provides the detection-performance machinery of §V:
// true-positive/false-positive rates, ROC sweeps, the balanced operating
// point the paper reports, AUC, and error CDF helpers.
package eval
