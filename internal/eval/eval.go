package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned when a metric is requested over an empty or
// one-sided sample set.
var ErrNoSamples = errors.New("eval: not enough samples")

// Sample is one scored trial with its ground truth.
type Sample struct {
	// Score is the detector's distance statistic.
	Score float64
	// Positive is true when a person was actually present.
	Positive bool
}

// Rates computes the true-positive and false-positive rates of the decision
// rule score > threshold.
func Rates(samples []Sample, threshold float64) (tpr, fpr float64, err error) {
	var tp, fn, fp, tn float64
	for _, s := range samples {
		detected := s.Score > threshold
		switch {
		case s.Positive && detected:
			tp++
		case s.Positive && !detected:
			fn++
		case !s.Positive && detected:
			fp++
		default:
			tn++
		}
	}
	if tp+fn == 0 || fp+tn == 0 {
		return 0, 0, fmt.Errorf("need both positive and negative samples: %w", ErrNoSamples)
	}
	return tp / (tp + fn), fp / (fp + tn), nil
}

// ROCPoint is one operating point of the receiver operating characteristic.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC sweeps the threshold over every distinct score (plus sentinels) and
// returns the operating points sorted by increasing FPR.
func ROC(samples []Sample) ([]ROCPoint, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("roc: %w", ErrNoSamples)
	}
	scores := make([]float64, 0, len(samples))
	var havePos, haveNeg bool
	for _, s := range samples {
		scores = append(scores, s.Score)
		if s.Positive {
			havePos = true
		} else {
			haveNeg = true
		}
	}
	if !havePos || !haveNeg {
		return nil, fmt.Errorf("roc needs both classes: %w", ErrNoSamples)
	}
	sort.Float64s(scores)
	// Thresholds: below the min (everything detected), at each distinct
	// score, and nothing detected above the max.
	thresholds := []float64{scores[0] - 1}
	for i, s := range scores {
		if i == 0 || s != scores[i-1] {
			thresholds = append(thresholds, s)
		}
	}
	points := make([]ROCPoint, 0, len(thresholds))
	for _, t := range thresholds {
		tpr, fpr, err := Rates(samples, t)
		if err != nil {
			return nil, err
		}
		points = append(points, ROCPoint{Threshold: t, TPR: tpr, FPR: fpr})
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].FPR != points[j].FPR {
			return points[i].FPR < points[j].FPR
		}
		return points[i].TPR < points[j].TPR
	})
	return points, nil
}

// AUC integrates the ROC curve by the trapezoid rule.
func AUC(points []ROCPoint) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("auc: %w", ErrNoSamples)
	}
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area, nil
}

// BalancedPoint returns the operating point closest to the equal-error
// condition TPR = 1 - FPR — the "balanced detection accuracy" the paper
// quotes (e.g. 92.0% detection at 4.5% false positive). Ties are broken
// towards the higher TPR.
func BalancedPoint(points []ROCPoint) (ROCPoint, error) {
	if len(points) == 0 {
		return ROCPoint{}, fmt.Errorf("balanced point: %w", ErrNoSamples)
	}
	best := points[0]
	bestGap := math.Inf(1)
	for _, p := range points {
		gap := math.Abs(p.TPR - (1 - p.FPR))
		if gap < bestGap || (gap == bestGap && p.TPR > best.TPR) {
			best = p
			bestGap = gap
		}
	}
	return best, nil
}

// YoudenPoint returns the point maximizing TPR - FPR (an alternative
// operating-point rule used by the ablation benches).
func YoudenPoint(points []ROCPoint) (ROCPoint, error) {
	if len(points) == 0 {
		return ROCPoint{}, fmt.Errorf("youden point: %w", ErrNoSamples)
	}
	best := points[0]
	for _, p := range points {
		if p.TPR-p.FPR > best.TPR-best.FPR {
			best = p
		}
	}
	return best, nil
}

// DetectionRate returns the fraction of positive samples whose score
// exceeds the threshold.
func DetectionRate(samples []Sample, threshold float64) (float64, error) {
	var tp, pos float64
	for _, s := range samples {
		if !s.Positive {
			continue
		}
		pos++
		if s.Score > threshold {
			tp++
		}
	}
	if pos == 0 {
		return 0, fmt.Errorf("detection rate: %w", ErrNoSamples)
	}
	return tp / pos, nil
}

// FalsePositiveRate returns the fraction of negative samples whose score
// exceeds the threshold.
func FalsePositiveRate(samples []Sample, threshold float64) (float64, error) {
	var fp, neg float64
	for _, s := range samples {
		if s.Positive {
			continue
		}
		neg++
		if s.Score > threshold {
			fp++
		}
	}
	if neg == 0 {
		return 0, fmt.Errorf("false positive rate: %w", ErrNoSamples)
	}
	return fp / neg, nil
}
