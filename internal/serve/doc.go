// Package serve is the encode-once HTTP serving plane over a monitoring
// engine: JSON verdict and link endpoints, a Prometheus text exposition, and
// server-sent-event verdict streaming to thousands of subscribers.
//
// The design center is the fan-out Hub. Every fusion round is read once from
// the engine's lock-free snapshots (VerdictInto), serialized once into a
// reference-counted, pooled Frame — SSE envelope and JSON document in one
// contiguous buffer — and every subscriber receives a slice of that shared
// buffer through a small per-subscriber latest-wins ring. The scoring path
// pays one wait-free Notify per round regardless of subscriber count; a
// subscriber that stops draining coalesces to the newest round, and after
// MaxLag consecutive losses the hub sheds it, so no client can ever
// back-pressure the engine or its sibling watchers. Steady state allocates
// nothing: frames recycle through a freelist, rings are fixed, and the JSON,
// SSE and Prometheus encoders are pure append into reused buffers
// (BenchmarkBroadcastFanout gates one-encode-per-round and 0 allocs per
// delivery in CI).
//
// Endpoints (all read-only):
//
//	GET /v1/verdict  — fused SiteVerdict as JSON; a dead site is a
//	                   well-formed document with "inconclusive": true and
//	                   live Coverage counts, never an error string
//	GET /v1/links    — per-link monitoring state and fleet counters
//	GET /metrics     — Prometheus text format, fed by MetricsInto
//	GET /v1/stream   — SSE verdict subscription over the Hub
//
// Requests pass a tracing middleware (monotonic X-Trace-Id, one log line per
// request) and, on the JSON endpoints, pooled gzip compression.
package serve
