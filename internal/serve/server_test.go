package serve

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/engine"
)

// stubEngine implements the server's Engine interface over stubSource plus a
// canned metrics block.
type stubEngine struct {
	stubSource
}

func (s *stubEngine) MetricsInto(m *engine.Metrics) {
	perLink := m.PerLink[:0]
	perLink = append(perLink, engine.LinkMetrics{
		ID: "l0", Calibrated: true, MeanMu: 0.5, Threshold: 0.25,
		WindowsScored: 10, LastScore: 0.1, Present: true, Lifecycle: adapt.LifecycleLive,
	})
	shards := m.Shards[:0]
	shards = append(shards, engine.ShardMetrics{WindowsScored: 10, Steals: 1, Utilization: 0.5})
	*m = engine.Metrics{Links: 1, WindowsScored: 10, FramesSeen: 250, ScoresPerSec: 5, Steals: 1, PerLink: perLink, Shards: shards}
}

func newTestServer(t *testing.T, hub *Hub, logf func(string, ...any)) (*httptest.Server, *stubEngine) {
	t.Helper()
	eng := &stubEngine{}
	srv := NewServer(eng, Options{Hub: hub, Logf: logf, WriteTimeout: time.Second})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func TestServerVerdictEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil, nil)
	resp, err := http.Get(ts.URL + "/v1/verdict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("missing X-Trace-Id from tracing middleware")
	}
	var doc struct {
		Present bool    `json:"present"`
		Score   float64 `json:"score"`
		Policy  string  `json:"policy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Present || doc.Policy != "1-of-n" {
		t.Fatalf("verdict = %+v", doc)
	}
}

// TestServerVerdictNoDecisions: before any link scores, the endpoint serves
// a well-formed inconclusive document, not an error string.
func TestServerVerdictNoDecisions(t *testing.T) {
	ts, eng := newTestServer(t, nil, nil)
	eng.mu.Lock()
	eng.err = engine.ErrNoDecisions
	eng.mu.Unlock()
	resp, err := http.Get(ts.URL + "/v1/verdict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 with an inconclusive document", resp.StatusCode)
	}
	var doc struct {
		Inconclusive bool `json:"inconclusive"`
		Present      bool `json:"present"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Inconclusive || doc.Present {
		t.Fatalf("doc = %+v, want inconclusive", doc)
	}
}

func TestServerGzip(t *testing.T) {
	ts, _ := newTestServer(t, nil, nil)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/links", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("content-encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Links []struct {
			ID string `json:"id"`
		} `json:"links"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("gunzipped body is not JSON: %v", err)
	}
	if len(doc.Links) != 1 || doc.Links[0].ID != "l0" {
		t.Fatalf("links doc = %+v", doc)
	}
}

func TestServerPrometheusMetrics(t *testing.T) {
	src := &stubSource{}
	hub := NewHub(src, HubOptions{})
	defer hub.Close()
	ts, _ := newTestServer(t, hub, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE mlink_windows_scored_total counter",
		"mlink_windows_scored_total 10",
		`mlink_link_present{link="l0"} 1`,
		`mlink_shard_utilization{shard="0"} 0.5`,
		"mlink_stream_subscribers 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestServerStream drives the SSE endpoint end to end: subscribe over HTTP,
// publish rounds, and read back well-formed, ordered events.
func TestServerStream(t *testing.T) {
	src := &stubSource{}
	hub := NewHub(src, HubOptions{})
	defer hub.Close()
	ts, _ := newTestServer(t, hub, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	// Wait for the handler's subscription to register before publishing.
	deadline := time.Now().Add(5 * time.Second)
	for hub.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		if err := hub.PublishRound(); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(resp.Body)
	lastID := uint64(0)
	for events := 0; events < 3; events++ {
		var event, id, data string
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
			line = strings.TrimRight(line, "\n")
			if line == "" {
				break
			}
			switch {
			case strings.HasPrefix(line, "event: "):
				event = line[len("event: "):]
			case strings.HasPrefix(line, "id: "):
				id = line[len("id: "):]
			case strings.HasPrefix(line, "data: "):
				data = line[len("data: "):]
			}
		}
		if event != "verdict" {
			t.Fatalf("event = %q", event)
		}
		var doc struct {
			Present bool `json:"present"`
		}
		if err := json.Unmarshal([]byte(data), &doc); err != nil {
			t.Fatalf("event data is not JSON: %v (%q)", err, data)
		}
		var n uint64
		if _, err := json.Number(id).Int64(); err != nil {
			t.Fatalf("id = %q", id)
		} else {
			v, _ := json.Number(id).Int64()
			n = uint64(v)
		}
		if n <= lastID {
			t.Fatalf("event ids not increasing: %d after %d", n, lastID)
		}
		lastID = n
	}
	cancel()
}

func TestServerTraceLog(t *testing.T) {
	var mu struct {
		lines []string
	}
	var logMu = make(chan struct{}, 1)
	logMu <- struct{}{}
	logf := func(format string, args ...any) {
		<-logMu
		mu.lines = append(mu.lines, format)
		logMu <- struct{}{}
	}
	ts, _ := newTestServer(t, nil, logf)
	if _, err := http.Get(ts.URL + "/v1/verdict"); err != nil {
		t.Fatal(err)
	}
	<-logMu
	n := len(mu.lines)
	logMu <- struct{}{}
	if n == 0 {
		t.Fatal("tracing middleware logged nothing")
	}
}
