package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/engine"
)

// stubSource is a deterministic VerdictSource: each VerdictInto stamps an
// incrementing score so frames are distinguishable, reusing the caller's
// Links slice like the real engine does.
type stubSource struct {
	mu    sync.Mutex
	calls uint64
	err   error
}

func (s *stubSource) VerdictInto(v *engine.SiteVerdict) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.calls++
	links := v.Links[:0]
	links = append(links, engine.LinkDecision{
		LinkID:   "l0",
		Decision: core.Decision{Present: true, Score: float64(s.calls), Threshold: 0.5},
		Weight:   1,
		Health:   adapt.Health{State: adapt.StateHealthy},
	})
	*v = engine.SiteVerdict{
		Present:  true,
		Score:    float64(s.calls),
		Positive: 1,
		Total:    1,
		Policy:   "1-of-n",
		Links:    links,
		Coverage: engine.Coverage{Links: 1, Fused: 1},
	}
	return nil
}

func TestHubPublishAndNext(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{})
	defer h.Close()
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PublishRound(); err != nil {
		t.Fatal(err)
	}
	f, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if f.Round() != 1 {
		t.Fatalf("round = %d, want 1", f.Round())
	}
	wire := string(f.Bytes())
	if wantPrefix := "event: verdict\nid: 1\ndata: {"; len(wire) < len(wantPrefix) || wire[:len(wantPrefix)] != wantPrefix {
		t.Fatalf("frame = %q, want prefix %q", wire, wantPrefix)
	}
	if wire[len(wire)-2:] != "\n\n" {
		t.Fatalf("frame does not end with blank line: %q", wire)
	}
	js := string(f.JSON())
	if js[0] != '{' || js[len(js)-1] != '}' {
		t.Fatalf("JSON view = %q, want a bare object", js)
	}
	f.Release()
}

// TestHubEncodeOnce pins the core contract: one serialization per round no
// matter how many subscribers receive it.
func TestHubEncodeOnce(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{MaxLag: -1})
	defer h.Close()
	const subs = 50
	for i := 0; i < subs; i++ {
		if _, err := h.Subscribe(); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 20
	for i := 0; i < rounds; i++ {
		if err := h.PublishRound(); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Encodes(); got != rounds {
		t.Fatalf("encodes = %d, want %d (one per round for %d subscribers)", got, rounds, subs)
	}
	src.mu.Lock()
	calls := src.calls
	src.mu.Unlock()
	if calls != rounds {
		t.Fatalf("verdict reads = %d, want %d", calls, rounds)
	}
}

// TestHubLatestWins checks the per-subscriber ring drops oldest rounds and a
// draining reader always ends on the newest.
func TestHubLatestWins(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{RingDepth: 2, MaxLag: -1})
	defer h.Close()
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := h.PublishRound(); err != nil {
			t.Fatal(err)
		}
	}
	// Ring depth 2 over 7 rounds: rounds 1..5 dropped, 6 and 7 buffered.
	f := sub.TryNext()
	if f == nil || f.Round() != 6 {
		t.Fatalf("first buffered round = %v, want 6", f)
	}
	f.Release()
	f = sub.TryNext()
	if f == nil || f.Round() != 7 {
		t.Fatalf("second buffered round = %v, want 7", f)
	}
	f.Release()
	if f = sub.TryNext(); f != nil {
		t.Fatalf("ring should be empty, got round %d", f.Round())
	}
	if got := sub.Dropped(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
}

// TestHubShedsStalledSubscriber checks a subscriber that never drains is cut
// loose after MaxLag consecutive drops, while a sibling keeps receiving, and
// that a drained read resets the lag (the slow-drip survivor).
func TestHubShedsStalledSubscriber(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{RingDepth: 2, MaxLag: 3})
	defer h.Close()
	stalled, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	drip, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 1,2 fill both rings; rounds 3,4,5 drop one old round each from
	// the stalled ring — the third consecutive drop sheds it. The drip
	// subscriber drains one frame per round, so its lag never reaches 2.
	for i := 0; i < 8; i++ {
		if err := h.PublishRound(); err != nil {
			t.Fatal(err)
		}
		if f := drip.TryNext(); f != nil {
			f.Release()
		}
	}
	if got := h.Shed(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if got := h.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d, want the drip survivor only", got)
	}
	if _, err := stalled.Next(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("stalled Next error = %v, want ErrShed", err)
	}
	if err := drip.Err(); err != nil {
		t.Fatalf("drip subscriber error = %v, want live", err)
	}
}

// TestHubNotifyCoalesces runs the background encoder and checks a burst of
// notifies collapses to at most a few encodes while the final state is
// always delivered.
func TestHubNotifyCoalesces(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{})
	h.Start()
	defer h.Close()
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	const burst = 1000
	for i := 0; i < burst; i++ {
		h.Notify()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The encoder must eventually publish a frame reflecting the burst; with
	// coalescing the number of encodes stays far below the notify count.
	f, err := sub.Next(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	deadline := time.Now().Add(5 * time.Second)
	for h.Rounds() != burst {
		if time.Now().After(deadline) {
			t.Fatalf("rounds = %d, want %d", h.Rounds(), burst)
		}
		time.Sleep(time.Millisecond)
	}
	// Idle-drain: wait for the encoder to catch up with the counter, then
	// compare. The encoder observes the counter at least once after the last
	// Notify, so encodes is bounded by the number of wakeups, not the burst.
	time.Sleep(50 * time.Millisecond)
	if enc := h.Encodes(); enc == 0 || enc > burst/2 {
		t.Fatalf("encodes = %d for %d notifies, want coalescing well below the burst", enc, burst)
	}
}

// TestHubFrameRecycling checks released frames return to the freelist and
// steady-state publishing stops growing memory: after warm-up, the same
// Frame pointers cycle.
func TestHubFrameRecycling(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{RingDepth: 2, MaxLag: -1})
	defer h.Close()
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[*Frame]bool{}
	for i := 0; i < 100; i++ {
		if err := h.PublishRound(); err != nil {
			t.Fatal(err)
		}
		f := sub.TryNext()
		if f == nil {
			t.Fatal("expected a frame")
		}
		seen[f] = true
		f.Release()
	}
	// One frame in flight at a time → the pool should cycle one or two
	// Frame allocations, not one per round.
	if len(seen) > 4 {
		t.Fatalf("publishing cycled %d distinct frames over 100 rounds, want a recycled handful", len(seen))
	}
}

// TestHubSubscribeAfterClose and closed-hub semantics.
func TestHubClose(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{})
	h.Start()
	sub, err := h.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on hub Close")
	}
	if _, err := h.Subscribe(); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("Subscribe on closed hub = %v, want ErrHubClosed", err)
	}
}

// TestHubConcurrentChurn runs publishers, subscribers and closers together
// under the race detector.
func TestHubConcurrentChurn(t *testing.T) {
	src := &stubSource{}
	h := NewHub(src, HubOptions{RingDepth: 2, MaxLag: 8})
	h.Start()
	defer h.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var delivered atomic.Uint64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				sub, err := h.Subscribe()
				if err != nil {
					return
				}
				if idx%2 == 0 {
					// Reader: drain a frame or two, then leave.
					short, cancel2 := context.WithTimeout(ctx, 20*time.Millisecond)
					if f, err := sub.Next(short); err == nil {
						delivered.Add(1)
						f.Release()
					}
					cancel2()
				}
				sub.Close()
			}
		}(i)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Notify()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	if delivered.Load() == 0 {
		t.Fatal("no reader ever received a frame")
	}
}
