package serve

import (
	"compress/gzip"
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/engine"
)

// Engine is the monitoring surface the HTTP plane serves: the facade
// mlink.Engine and the internal engine.Engine both satisfy it.
type Engine interface {
	VerdictInto(*engine.SiteVerdict) error
	MetricsInto(*engine.Metrics)
}

// Options parameterizes a Server. The zero value serves JSON and Prometheus
// endpoints without streaming.
type Options struct {
	// Hub, when non-nil, backs GET /v1/stream with live verdict fan-out and
	// adds the stream counters to /metrics.
	Hub *Hub
	// Logf receives one line per request from the tracing middleware
	// (nil = silent).
	Logf func(format string, args ...any)
	// WriteTimeout is the per-write deadline on SSE frames — the transport
	// backstop behind the hub's latest-wins shedding (default 10s).
	WriteTimeout time.Duration
}

// Server is the read-only HTTP serving plane over a running engine:
//
//	GET /v1/verdict  — the fused site verdict as JSON (gzip-aware)
//	GET /v1/links    — per-link monitoring state as JSON (gzip-aware)
//	GET /metrics     — Prometheus text exposition
//	GET /v1/stream   — SSE verdict subscription (encode-once fan-out)
//
// All state is read through the engine's allocation-free Into snapshots, so
// serving never blocks a scoring shard.
type Server struct {
	eng          Engine
	hub          *Hub
	logf         func(format string, args ...any)
	writeTimeout time.Duration

	traceID atomic.Uint64
	gzPool  sync.Pool
	vPool   sync.Pool // *verdictScratch

	// metricsMu serializes the /metrics and /v1/links snapshots through one
	// reused engine.Metrics block and output buffer.
	metricsMu sync.Mutex
	metrics   engine.Metrics
	promBuf   []byte
	linksBuf  []byte
}

type verdictScratch struct {
	v   engine.SiteVerdict
	buf []byte
}

// NewServer builds the serving plane over eng.
func NewServer(eng Engine, opts Options) *Server {
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = 10 * time.Second
	}
	s := &Server{
		eng:          eng,
		hub:          opts.Hub,
		logf:         opts.Logf,
		writeTimeout: opts.WriteTimeout,
	}
	s.gzPool.New = func() any { return gzip.NewWriter(nil) }
	s.vPool.New = func() any { return new(verdictScratch) }
	return s
}

// Handler returns the routed handler with tracing (and, on the JSON
// endpoints, gzip) middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/verdict", s.gzipped(s.handleVerdict))
	mux.HandleFunc("GET /v1/links", s.gzipped(s.handleLinks))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	return s.traced(mux)
}

func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	sc := s.vPool.Get().(*verdictScratch)
	defer s.vPool.Put(sc)
	err := s.eng.VerdictInto(&sc.v)
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrNoDecisions):
		// No link has scored a window yet: the contract is a well-formed
		// verdict document, never an error string — an empty site reads as
		// inconclusive with its coverage intact (VerdictInto filled it).
		sc.v.Inconclusive = true
		sc.v.Present = false
		sc.v.Links = sc.v.Links[:0]
	default:
		http.Error(w, http.StatusText(http.StatusServiceUnavailable), http.StatusServiceUnavailable)
		return
	}
	sc.buf = AppendVerdict(sc.buf[:0], &sc.v)
	w.Header().Set("Content-Type", "application/json")
	w.Write(sc.buf)
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	s.metricsMu.Lock()
	s.eng.MetricsInto(&s.metrics)
	s.linksBuf = AppendLinks(s.linksBuf[:0], &s.metrics)
	buf := s.linksBuf
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf)
	s.metricsMu.Unlock()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metricsMu.Lock()
	s.eng.MetricsInto(&s.metrics)
	s.promBuf = AppendMetrics(s.promBuf[:0], &s.metrics, s.hub)
	buf := s.promBuf
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf)
	s.metricsMu.Unlock()
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		http.Error(w, "streaming not enabled", http.StatusNotFound)
		return
	}
	sub, err := s.hub.Subscribe()
	if err != nil {
		http.Error(w, http.StatusText(http.StatusServiceUnavailable), http.StatusServiceUnavailable)
		return
	}
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()
	for {
		f, err := sub.Next(r.Context())
		if err != nil {
			// Shed, closed hub, or client gone — either way the stream ends;
			// SSE clients reconnect and resume from the newest round.
			return
		}
		// The write deadline is the transport backstop: a peer that stops
		// reading while the hub still considers the subscription draining
		// gets cut at the socket.
		rc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		_, werr := w.Write(f.Bytes())
		f.Release()
		if werr != nil || rc.Flush() != nil {
			return
		}
	}
}

// traced wraps h with the request-scoped tracing middleware: every request
// gets a monotonic trace ID echoed in X-Trace-Id and, when Logf is set, one
// completion line with status and duration.
func (s *Server) traced(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.traceID.Add(1)
		w.Header().Set("X-Trace-Id", strconv.FormatUint(id, 10))
		if s.logf == nil {
			h.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		s.logf("trace=%d %s %s status=%d dur=%s", id, r.Method, r.URL.Path, sw.code, time.Since(start))
	})
}

// gzipped wraps a JSON handler with response compression when the client
// accepts it. Writers are pooled; streaming and Prometheus endpoints stay
// uncompressed (SSE must flush per frame, and scrapers prefer identity).
func (s *Server) gzipped(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
			h(w, r)
			return
		}
		gz := s.gzPool.Get().(*gzip.Writer)
		gz.Reset(w)
		w.Header().Set("Content-Encoding", "gzip")
		h(&gzipWriter{ResponseWriter: w, gz: gz}, r)
		gz.Close()
		s.gzPool.Put(gz)
	}
}

type gzipWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w *gzipWriter) Write(p []byte) (int, error) { return w.gz.Write(p) }

// statusWriter records the response code for the trace log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush
// and SetWriteDeadline through the middleware.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ListenAndServe serves handler on addr until ctx is cancelled, then drains
// gracefully: in-flight requests (including SSE streams, which end when
// their subscriptions close) get up to the grace period before the listener
// is torn down.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: handler, BaseContext: func(net.Listener) context.Context { return ctx }}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
		<-errc // http.ErrServerClosed
		return nil
	}
}
