package serve

import (
	"encoding/json"
	"math"
	"testing"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/engine"
)

// TestAppendVerdictGolden parses the hand-rolled encoder's output with
// encoding/json and checks every field round-trips, including the
// inconclusive/coverage block and non-finite score handling.
func TestAppendVerdictGolden(t *testing.T) {
	v := engine.SiteVerdict{
		Present:  true,
		Score:    0.625,
		Positive: 2,
		Total:    3,
		Policy:   `weird"policy\name`,
		Coverage: engine.Coverage{Links: 5, Fused: 3, Live: 2, Stale: 1, Down: 1, Recovering: 1, Recalibrating: 1},
		Links: []engine.LinkDecision{
			{
				LinkID:   "north\twing",
				Decision: core.Decision{Present: true, Score: 1.25, Threshold: 0.5},
				Weight:   0.75,
				Health: adapt.Health{
					State: adapt.StateDrifting, DriftZ: -2.5, ScoreZ: 1.5, JumpExceeded: true,
					ProfileShiftDB: 3.5, ShiftRateDB: 0.25, Refreshes: 7, ThresholdUpdates: 3,
					Relocks: 1, Threshold: 0.5, NeedsRecalibration: true, RefreshSuppressed: true,
					Lifecycle: adapt.LifecycleStale,
				},
			},
			{LinkID: "l1", Decision: core.Decision{Score: math.NaN(), Threshold: math.Inf(1)}},
		},
	}
	var doc struct {
		Present      bool    `json:"present"`
		Inconclusive bool    `json:"inconclusive"`
		Score        float64 `json:"score"`
		Positive     int     `json:"positive"`
		Total        int     `json:"total"`
		Policy       string  `json:"policy"`
		Coverage     struct {
			Links, Fused, Live, Stale, Down, Recovering, Recalibrating int
			Degraded                                                   bool
		} `json:"coverage"`
		Links []struct {
			ID        string   `json:"id"`
			Present   bool     `json:"present"`
			Score     *float64 `json:"score"`
			Threshold *float64 `json:"threshold"`
			Weight    float64  `json:"weight"`
			Health    struct {
				State              string  `json:"state"`
				Lifecycle          string  `json:"lifecycle"`
				DriftZ             float64 `json:"drift_z"`
				JumpExceeded       bool    `json:"jump_exceeded"`
				Refreshes          uint64  `json:"refreshes"`
				NeedsRecalibration bool    `json:"needs_recalibration"`
			} `json:"health"`
		} `json:"links"`
	}
	out := AppendVerdict(nil, &v)
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("encoder output is not valid JSON: %v\n%s", err, out)
	}
	if !doc.Present || doc.Inconclusive || doc.Score != 0.625 || doc.Positive != 2 || doc.Total != 3 {
		t.Fatalf("verdict fields mismatched: %+v", doc)
	}
	if doc.Policy != v.Policy {
		t.Fatalf("policy = %q, want %q (escaping)", doc.Policy, v.Policy)
	}
	if doc.Coverage.Links != 5 || doc.Coverage.Fused != 3 || doc.Coverage.Down != 1 || !doc.Coverage.Degraded {
		t.Fatalf("coverage mismatched: %+v", doc.Coverage)
	}
	if len(doc.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(doc.Links))
	}
	l0 := doc.Links[0]
	if l0.ID != "north\twing" || !l0.Present || *l0.Score != 1.25 || l0.Weight != 0.75 {
		t.Fatalf("link 0 mismatched: %+v", l0)
	}
	if l0.Health.State != "drifting" || l0.Health.Lifecycle != "stale" || l0.Health.DriftZ != -2.5 ||
		!l0.Health.JumpExceeded || l0.Health.Refreshes != 7 || !l0.Health.NeedsRecalibration {
		t.Fatalf("link 0 health mismatched: %+v", l0.Health)
	}
	// Non-finite floats serialize as null, never as invalid JSON.
	if doc.Links[1].Score != nil || doc.Links[1].Threshold != nil {
		t.Fatalf("non-finite floats should be null: %+v", doc.Links[1])
	}
}

// TestAppendVerdictInconclusive pins the dead-site document shape.
func TestAppendVerdictInconclusive(t *testing.T) {
	v := engine.SiteVerdict{
		Inconclusive: true,
		Policy:       "1-of-n",
		Coverage:     engine.Coverage{Links: 4, Down: 3, Recovering: 1},
	}
	var doc map[string]any
	if err := json.Unmarshal(AppendVerdict(nil, &v), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["inconclusive"] != true || doc["present"] != false {
		t.Fatalf("inconclusive doc = %v", doc)
	}
	cov := doc["coverage"].(map[string]any)
	if cov["down"] != 3.0 || cov["links"] != 4.0 || cov["degraded"] != true {
		t.Fatalf("coverage = %v", cov)
	}
	if links, ok := doc["links"].([]any); !ok || len(links) != 0 {
		t.Fatalf("links = %v, want empty array (valid JSON, no votes)", doc["links"])
	}
}

// TestAppendLinksGolden round-trips the /v1/links document.
func TestAppendLinksGolden(t *testing.T) {
	m := engine.Metrics{
		Links:         2,
		WindowsScored: 100,
		FramesSeen:    2500,
		ScoresPerSec:  42.5,
		Steals:        3,
		PerLink: []engine.LinkMetrics{
			{
				ID: "a", Calibrated: true, MeanMu: 0.5, Threshold: 0.25, WindowsScored: 60,
				LastScore: 0.1, MeanScore: 0.125, Present: false, NsPerWindowEWMA: 1500,
				Adaptive: true, Recalibrating: false, Lifecycle: adapt.LifecycleLive,
				SourceDrops: 2, Reconnects: 1,
			},
			{ID: "b", LastScore: math.Inf(-1)},
		},
	}
	var doc struct {
		WindowsScored uint64  `json:"windows_scored"`
		FramesSeen    uint64  `json:"frames_seen"`
		ScoresPerSec  float64 `json:"scores_per_sec"`
		Steals        uint64  `json:"steals"`
		Links         []struct {
			ID         string   `json:"id"`
			Calibrated bool     `json:"calibrated"`
			MeanMu     float64  `json:"mean_mu"`
			Windows    uint64   `json:"windows_scored"`
			LastScore  *float64 `json:"last_score"`
			Lifecycle  string   `json:"lifecycle"`
			Drops      uint64   `json:"source_drops"`
		} `json:"links"`
	}
	out := AppendLinks(nil, &m)
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if doc.WindowsScored != 100 || doc.FramesSeen != 2500 || doc.ScoresPerSec != 42.5 || doc.Steals != 3 {
		t.Fatalf("fleet counters mismatched: %+v", doc)
	}
	if len(doc.Links) != 2 || doc.Links[0].ID != "a" || !doc.Links[0].Calibrated ||
		doc.Links[0].MeanMu != 0.5 || doc.Links[0].Windows != 60 ||
		doc.Links[0].Lifecycle != "live" || doc.Links[0].Drops != 2 {
		t.Fatalf("link entries mismatched: %+v", doc.Links)
	}
	if doc.Links[1].LastScore != nil {
		t.Fatalf("-Inf should serialize as null, got %v", *doc.Links[1].LastScore)
	}
}

// TestAppendVerdictAllocFree checks the encoder itself is allocation-free
// once the destination buffer has capacity.
func TestAppendVerdictAllocFree(t *testing.T) {
	v := engine.SiteVerdict{
		Present: true, Score: 0.5, Positive: 1, Total: 2, Policy: "1-of-n",
		Links: []engine.LinkDecision{{LinkID: "l0", Decision: core.Decision{Score: 0.7, Threshold: 0.6}}},
	}
	buf := AppendVerdict(nil, &v)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendVerdict(buf[:0], &v)
	})
	if allocs != 0 {
		t.Fatalf("AppendVerdict allocates %.1f/op into a warm buffer, want 0", allocs)
	}
}
