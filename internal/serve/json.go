package serve

import (
	"math"
	"strconv"

	"mlink/internal/adapt"
	"mlink/internal/engine"
)

// Hand-rolled append-style JSON encoders for the serving plane. The stream
// hub serializes one verdict per fusion round into a reused frame buffer, so
// the encoder must not allocate: every function below appends into the
// caller's buffer and returns the extended slice, exactly like the strconv
// Append family it is built from. encoding/json would allocate per call (and
// reflect per field) — hand-rolling is the price of the zero-allocation
// fan-out contract, and the golden tests pin the output against
// encoding/json-parsed expectations so the two never drift.

// appendJSONString appends s as a JSON string literal, escaping quotes,
// backslashes and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xF])
		}
	}
	return append(b, '"')
}

// appendFloat appends v as a JSON number; NaN and ±Inf — which JSON cannot
// represent — become null rather than an encoding error, so one pathological
// score can never take the whole verdict endpoint down.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendHealth appends a link's adaptation health snapshot.
func appendHealth(b []byte, h *adapt.Health) []byte {
	b = append(b, `{"state":`...)
	b = appendJSONString(b, h.State.String())
	b = append(b, `,"lifecycle":`...)
	b = appendJSONString(b, h.Lifecycle.String())
	b = append(b, `,"drift_z":`...)
	b = appendFloat(b, h.DriftZ)
	b = append(b, `,"score_z":`...)
	b = appendFloat(b, h.ScoreZ)
	b = append(b, `,"jump_exceeded":`...)
	b = strconv.AppendBool(b, h.JumpExceeded)
	b = append(b, `,"profile_shift_db":`...)
	b = appendFloat(b, h.ProfileShiftDB)
	b = append(b, `,"shift_rate_db":`...)
	b = appendFloat(b, h.ShiftRateDB)
	b = append(b, `,"refreshes":`...)
	b = strconv.AppendUint(b, h.Refreshes, 10)
	b = append(b, `,"threshold_updates":`...)
	b = strconv.AppendUint(b, h.ThresholdUpdates, 10)
	b = append(b, `,"relocks":`...)
	b = strconv.AppendUint(b, h.Relocks, 10)
	b = append(b, `,"threshold":`...)
	b = appendFloat(b, h.Threshold)
	b = append(b, `,"needs_recalibration":`...)
	b = strconv.AppendBool(b, h.NeedsRecalibration)
	b = append(b, `,"refresh_suppressed":`...)
	b = strconv.AppendBool(b, h.RefreshSuppressed)
	return append(b, '}')
}

// appendLinkDecision appends one fused link vote.
func appendLinkDecision(b []byte, d *engine.LinkDecision) []byte {
	b = append(b, `{"id":`...)
	b = appendJSONString(b, d.LinkID)
	b = append(b, `,"present":`...)
	b = strconv.AppendBool(b, d.Present)
	b = append(b, `,"score":`...)
	b = appendFloat(b, d.Score)
	b = append(b, `,"threshold":`...)
	b = appendFloat(b, d.Threshold)
	b = append(b, `,"weight":`...)
	b = appendFloat(b, d.Weight)
	b = append(b, `,"health":`...)
	b = appendHealth(b, &d.Health)
	return append(b, '}')
}

// appendCoverage appends the verdict's fleet-availability block.
func appendCoverage(b []byte, c *engine.Coverage) []byte {
	b = append(b, `{"links":`...)
	b = strconv.AppendInt(b, int64(c.Links), 10)
	b = append(b, `,"fused":`...)
	b = strconv.AppendInt(b, int64(c.Fused), 10)
	b = append(b, `,"live":`...)
	b = strconv.AppendInt(b, int64(c.Live), 10)
	b = append(b, `,"stale":`...)
	b = strconv.AppendInt(b, int64(c.Stale), 10)
	b = append(b, `,"down":`...)
	b = strconv.AppendInt(b, int64(c.Down), 10)
	b = append(b, `,"recovering":`...)
	b = strconv.AppendInt(b, int64(c.Recovering), 10)
	b = append(b, `,"recalibrating":`...)
	b = strconv.AppendInt(b, int64(c.Recalibrating), 10)
	b = append(b, `,"degraded":`...)
	b = strconv.AppendBool(b, c.Degraded())
	return append(b, '}')
}

// AppendVerdict appends v as the /v1/verdict JSON document. Inconclusive and
// Coverage are first-class fields: a dead site (every link down, recovering,
// recalibrating or quarantined) serializes as a well-formed verdict with
// "inconclusive": true, never as an error payload.
func AppendVerdict(b []byte, v *engine.SiteVerdict) []byte {
	b = append(b, `{"present":`...)
	b = strconv.AppendBool(b, v.Present)
	b = append(b, `,"inconclusive":`...)
	b = strconv.AppendBool(b, v.Inconclusive)
	b = append(b, `,"score":`...)
	b = appendFloat(b, v.Score)
	b = append(b, `,"positive":`...)
	b = strconv.AppendInt(b, int64(v.Positive), 10)
	b = append(b, `,"total":`...)
	b = strconv.AppendInt(b, int64(v.Total), 10)
	b = append(b, `,"policy":`...)
	b = appendJSONString(b, v.Policy)
	b = append(b, `,"coverage":`...)
	b = appendCoverage(b, &v.Coverage)
	b = append(b, `,"links":[`...)
	for i := range v.Links {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendLinkDecision(b, &v.Links[i])
	}
	return append(b, ']', '}')
}

// AppendLinks appends m as the /v1/links JSON document: per-link monitoring
// state plus the fleet-wide counters.
func AppendLinks(b []byte, m *engine.Metrics) []byte {
	b = append(b, `{"windows_scored":`...)
	b = strconv.AppendUint(b, m.WindowsScored, 10)
	b = append(b, `,"frames_seen":`...)
	b = strconv.AppendUint(b, m.FramesSeen, 10)
	b = append(b, `,"scores_per_sec":`...)
	b = appendFloat(b, m.ScoresPerSec)
	b = append(b, `,"steals":`...)
	b = strconv.AppendUint(b, m.Steals, 10)
	b = append(b, `,"links":[`...)
	for i := range m.PerLink {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendLinkMetrics(b, &m.PerLink[i])
	}
	return append(b, ']', '}')
}

// appendLinkMetrics appends one link's monitoring snapshot.
func appendLinkMetrics(b []byte, lm *engine.LinkMetrics) []byte {
	b = append(b, `{"id":`...)
	b = appendJSONString(b, lm.ID)
	b = append(b, `,"calibrated":`...)
	b = strconv.AppendBool(b, lm.Calibrated)
	b = append(b, `,"mean_mu":`...)
	b = appendFloat(b, lm.MeanMu)
	b = append(b, `,"threshold":`...)
	b = appendFloat(b, lm.Threshold)
	b = append(b, `,"windows_scored":`...)
	b = strconv.AppendUint(b, lm.WindowsScored, 10)
	b = append(b, `,"last_score":`...)
	b = appendFloat(b, lm.LastScore)
	b = append(b, `,"mean_score":`...)
	b = appendFloat(b, lm.MeanScore)
	b = append(b, `,"present":`...)
	b = strconv.AppendBool(b, lm.Present)
	b = append(b, `,"ns_per_window_ewma":`...)
	b = appendFloat(b, lm.NsPerWindowEWMA)
	b = append(b, `,"adaptive":`...)
	b = strconv.AppendBool(b, lm.Adaptive)
	b = append(b, `,"recalibrating":`...)
	b = strconv.AppendBool(b, lm.Recalibrating)
	b = append(b, `,"lifecycle":`...)
	b = appendJSONString(b, lm.Lifecycle.String())
	b = append(b, `,"source_drops":`...)
	b = strconv.AppendUint(b, lm.SourceDrops, 10)
	b = append(b, `,"reconnects":`...)
	b = strconv.AppendUint(b, lm.Reconnects, 10)
	b = append(b, `,"health":`...)
	b = appendHealth(b, &lm.Health)
	return append(b, '}')
}
