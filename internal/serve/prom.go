package serve

import (
	"math"
	"strconv"

	"mlink/internal/engine"
)

// AppendMetrics appends the engine's metrics block (and, when hub is
// non-nil, the stream hub's counters) in the Prometheus text exposition
// format. Like the JSON encoders it is pure append — the /metrics handler
// feeds it a reused engine.Metrics filled by MetricsInto and a reused output
// buffer, so a scrape allocates nothing in steady state.
func AppendMetrics(b []byte, m *engine.Metrics, hub *Hub) []byte {
	b = appendMetric(b, "mlink_links", "gauge", "Registered links in the fleet.", float64(m.Links))
	b = appendMetric(b, "mlink_windows_scored_total", "counter", "Monitoring windows scored across the fleet.", float64(m.WindowsScored))
	b = appendMetric(b, "mlink_frames_seen_total", "counter", "CSI frames ingested across the fleet.", float64(m.FramesSeen))
	b = appendMetric(b, "mlink_scores_per_second", "gauge", "Windows scored per second of active run time.", m.ScoresPerSec)
	b = appendMetric(b, "mlink_steals_total", "counter", "Link migrations between scoring shards.", float64(m.Steals))

	b = appendHeader(b, "mlink_shard_windows_total", "counter", "Windows scored per shard.")
	for i := range m.Shards {
		b = appendShardSample(b, "mlink_shard_windows_total", i, float64(m.Shards[i].WindowsScored))
	}
	b = appendHeader(b, "mlink_shard_utilization", "gauge", "Fraction of run time each shard spent scoring.")
	for i := range m.Shards {
		b = appendShardSample(b, "mlink_shard_utilization", i, m.Shards[i].Utilization)
	}

	b = appendHeader(b, "mlink_link_present", "gauge", "Latest per-link presence verdict (1 = present).")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_present", m.PerLink[i].ID, bool01(m.PerLink[i].Present))
	}
	b = appendHeader(b, "mlink_link_score", "gauge", "Latest per-link window score.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_score", m.PerLink[i].ID, m.PerLink[i].LastScore)
	}
	b = appendHeader(b, "mlink_link_threshold", "gauge", "Current per-link decision threshold.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_threshold", m.PerLink[i].ID, m.PerLink[i].Threshold)
	}
	b = appendHeader(b, "mlink_link_windows_total", "counter", "Windows scored per link.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_windows_total", m.PerLink[i].ID, float64(m.PerLink[i].WindowsScored))
	}
	b = appendHeader(b, "mlink_link_ns_per_window", "gauge", "Smoothed per-link scoring cost in nanoseconds per window.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_ns_per_window", m.PerLink[i].ID, m.PerLink[i].NsPerWindowEWMA)
	}
	b = appendHeader(b, "mlink_link_source_drops_total", "counter", "Frames shed by each link's ingest ring.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_source_drops_total", m.PerLink[i].ID, float64(m.PerLink[i].SourceDrops))
	}
	b = appendHeader(b, "mlink_link_reconnects_total", "counter", "Successful source redials per link.")
	for i := range m.PerLink {
		b = appendLinkSample(b, "mlink_link_reconnects_total", m.PerLink[i].ID, float64(m.PerLink[i].Reconnects))
	}

	if hub != nil {
		b = appendMetric(b, "mlink_stream_subscribers", "gauge", "Active verdict stream subscriptions.", float64(hub.Subscribers()))
		b = appendMetric(b, "mlink_stream_rounds_total", "counter", "Fusion rounds serialized for streaming.", float64(hub.Encodes()))
		b = appendMetric(b, "mlink_stream_dropped_total", "counter", "Stream rounds lost to latest-wins coalescing.", float64(hub.Dropped()))
		b = appendMetric(b, "mlink_stream_shed_total", "counter", "Subscriptions shed for sustained lag.", float64(hub.Shed()))
	}
	return b
}

func bool01(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func appendHeader(b []byte, name, typ, help string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, help...)
	b = append(b, "\n# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	return append(b, '\n')
}

func appendMetric(b []byte, name, typ, help string, v float64) []byte {
	b = appendHeader(b, name, typ, help)
	b = append(b, name...)
	b = append(b, ' ')
	b = appendPromValue(b, v)
	return append(b, '\n')
}

func appendShardSample(b []byte, name string, shard int, v float64) []byte {
	b = append(b, name...)
	b = append(b, `{shard="`...)
	b = strconv.AppendInt(b, int64(shard), 10)
	b = append(b, `"} `...)
	b = appendPromValue(b, v)
	return append(b, '\n')
}

func appendLinkSample(b []byte, name, link string, v float64) []byte {
	b = append(b, name...)
	b = append(b, `{link="`...)
	b = appendPromLabel(b, link)
	b = append(b, `"} `...)
	b = appendPromValue(b, v)
	return append(b, '\n')
}

// appendPromLabel escapes a label value per the text exposition format
// (backslash, quote and newline).
func appendPromLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return b
}

// appendPromValue formats a sample value; Prometheus accepts NaN and ±Inf
// spelled out.
func appendPromValue(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, "NaN"...)
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
