package serve

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"mlink/internal/engine"
)

// VerdictSource produces the latest fused site verdict without allocating.
// Both the internal engine and the facade Engine satisfy it.
type VerdictSource interface {
	VerdictInto(*engine.SiteVerdict) error
}

var (
	// ErrClosed is returned by Subscription.Next after Close (or hub Close).
	ErrClosed = errors.New("serve: subscription closed")
	// ErrShed is returned by Subscription.Next after the hub shed the
	// subscriber for falling MaxLag consecutive rounds behind.
	ErrShed = errors.New("serve: subscription shed (consumer too slow)")
	// ErrHubClosed is returned by Subscribe on a closed hub.
	ErrHubClosed = errors.New("serve: hub closed")
)

// HubOptions tunes the fan-out hub. The zero value selects the defaults.
type HubOptions struct {
	// RingDepth is each subscriber's latest-wins buffer in rounds
	// (default 4). A subscriber more than RingDepth rounds behind loses the
	// oldest buffered round, never the newest.
	RingDepth int
	// MaxLag is how many consecutive rounds a subscriber may drop before
	// the hub sheds it (default 256; negative = never shed). Any successful
	// read resets the count, so a slow-but-draining consumer survives while
	// a wedged one is cut loose without ever back-pressuring the engine.
	MaxLag int
}

const (
	defaultRingDepth = 4
	defaultMaxLag    = 256
	// maxFreeFrames bounds the recycled-frame freelist. Steady state keeps
	// roughly RingDepth+1 frames in flight regardless of subscriber count
	// (subscribers share frames); anything beyond the cap is left to the GC.
	maxFreeFrames = 64
)

// Frame is one fusion round serialized once, shared by every subscriber.
// Bytes returns the complete SSE frame ("event: verdict\nid: N\ndata:
// {...}\n\n") ready to write to a client; Release returns the buffer to the
// hub's freelist once the last subscriber is done with it. A Frame is
// immutable between Publish and the final Release.
type Frame struct {
	hub     *Hub
	data    []byte
	dataOff int // start of the JSON document inside data
	round   uint64
	refs    atomic.Int64
}

// Bytes is the frame's wire form. Valid until Release.
func (f *Frame) Bytes() []byte { return f.data }

// JSON is the frame's verdict document without the SSE envelope — a
// sub-slice of Bytes between "data: " and the trailing blank line.
func (f *Frame) JSON() []byte { return f.data[f.dataOff : len(f.data)-2] }

// Round is the fusion round this frame serializes (the SSE id).
func (f *Frame) Round() uint64 { return f.round }

// Release drops the caller's reference; the last release recycles the
// buffer. Call exactly once per frame obtained from Next/TryNext.
func (f *Frame) Release() {
	if f.refs.Add(-1) > 0 {
		return
	}
	h := f.hub
	h.freeMu.Lock()
	if len(h.free) < maxFreeFrames {
		h.free = append(h.free, f)
	}
	h.freeMu.Unlock()
}

// Hub is the encode-once verdict fan-out: each fusion round is read from the
// engine's lock-free snapshots and serialized exactly once into a pooled
// Frame, and every subscriber receives a reference to that shared buffer
// through a small latest-wins ring. The scoring path's only cost per round
// is Notify — an atomic increment and a non-blocking channel send — no
// matter how many thousand subscribers are attached; a stalled subscriber
// coalesces to the newest round and is eventually shed, never blocking the
// engine or its sibling watchers.
type Hub struct {
	src  VerdictSource
	opts HubOptions

	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	closed bool

	freeMu sync.Mutex
	free   []*Frame

	rounds  atomic.Uint64 // Notify calls (fusion rounds signalled)
	encodes atomic.Uint64 // frames actually serialized
	dropped atomic.Uint64 // rounds lost to latest-wins coalescing
	shed    atomic.Uint64 // subscribers cut loose for sustained lag

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	runDone  chan struct{}
	started  bool

	// verdict is the encoder's scratch; PublishRound is single-caller (the
	// Start goroutine, or a test/benchmark driving rounds synchronously).
	verdict engine.SiteVerdict
}

// NewHub builds a hub over src. Call Start to serialize rounds in the
// background on Notify, or drive PublishRound synchronously.
func NewHub(src VerdictSource, opts HubOptions) *Hub {
	if opts.RingDepth <= 0 {
		opts.RingDepth = defaultRingDepth
	}
	if opts.MaxLag == 0 {
		opts.MaxLag = defaultMaxLag
	}
	return &Hub{
		src:     src,
		opts:    opts,
		subs:    make(map[*Subscription]struct{}),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		runDone: make(chan struct{}),
	}
}

// Notify signals that a fusion round completed. It is wait-free — one atomic
// add and one non-blocking send — and safe to call from scoring shards.
// Rounds signalled while the encoder is busy coalesce: the next encode
// serializes the newest state once, not the backlog.
func (h *Hub) Notify() {
	h.rounds.Add(1)
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Start launches the encoder goroutine: each batch of Notify signals becomes
// one PublishRound. Close stops it.
func (h *Hub) Start() {
	h.mu.Lock()
	if h.started || h.closed {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	go h.run()
}

func (h *Hub) run() {
	defer close(h.runDone)
	var published uint64
	for {
		select {
		case <-h.stop:
			return
		case <-h.wake:
		}
		// Drain: re-check the round counter after each encode so rounds that
		// arrived mid-serialization coalesce into exactly one more encode.
		for {
			seen := h.rounds.Load()
			if seen == published {
				break
			}
			published = seen
			// Before the first fused round the source has nothing to
			// serialize; the error is not sticky and the next Notify retries.
			_ = h.PublishRound()
		}
	}
}

// PublishRound reads the current verdict, serializes it once, and hands the
// shared frame to every subscriber. It is the synchronous form of the
// Notify→Start pipeline for tests and benchmarks; do not call it
// concurrently with itself or a Started hub.
func (h *Hub) PublishRound() error {
	if err := h.src.VerdictInto(&h.verdict); err != nil {
		return err
	}
	f := h.getFrame()
	f.round = h.encodes.Add(1)
	// The SSE envelope first, then the JSON document; the JSON never
	// contains a raw newline, so a single data: line is always a valid
	// frame.
	b := append(f.data[:0], "event: verdict\nid: "...)
	b = strconv.AppendUint(b, f.round, 10)
	b = append(b, "\ndata: "...)
	f.dataOff = len(b)
	b = AppendVerdict(b, &h.verdict)
	f.data = append(b, '\n', '\n')
	h.broadcast(f)
	return nil
}

func (h *Hub) getFrame() *Frame {
	h.freeMu.Lock()
	var f *Frame
	if n := len(h.free); n > 0 {
		f = h.free[n-1]
		h.free[n-1] = nil
		h.free = h.free[:n-1]
	}
	h.freeMu.Unlock()
	if f == nil {
		f = &Frame{hub: h}
	}
	return f
}

func (h *Hub) broadcast(f *Frame) {
	// The broadcast loop holds its own reference so a subscriber releasing
	// mid-loop cannot recycle the frame under the remaining pushes.
	f.refs.Store(1)
	h.mu.Lock()
	for s := range h.subs {
		f.refs.Add(1)
		if s.push(f) {
			delete(h.subs, s)
			h.shed.Add(1)
		}
	}
	h.mu.Unlock()
	f.Release()
}

// Subscribe registers a new verdict watcher.
func (h *Hub) Subscribe() (*Subscription, error) {
	s := &Subscription{
		hub:    h,
		maxLag: h.opts.MaxLag,
		ring:   make([]*Frame, h.opts.RingDepth),
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHubClosed
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s, nil
}

// Close stops the encoder goroutine (if started) and closes every
// subscription: their pending Next calls return ErrClosed.
func (h *Hub) Close() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.mu.Lock()
	if h.started {
		started := h.runDone
		h.mu.Unlock()
		<-started
		h.mu.Lock()
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	clear(h.subs)
	h.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		s.closeLocked(false)
		s.mu.Unlock()
	}
}

// Encodes counts frames actually serialized — the benchmark's self-gate for
// the one-encode-per-round contract.
func (h *Hub) Encodes() uint64 { return h.encodes.Load() }

// Rounds counts Notify signals received (≥ Encodes under coalescing).
func (h *Hub) Rounds() uint64 { return h.rounds.Load() }

// Dropped counts rounds lost to latest-wins coalescing across all
// subscribers; Shed counts subscribers cut loose for sustained lag.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Shed counts subscribers the hub has cut loose.
func (h *Hub) Shed() uint64 { return h.shed.Load() }

// Subscribers is the current watcher count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return n
}

// Subscription is one watcher's view of the hub: a small latest-wins ring of
// shared frames. Next blocks for the next buffered round; a consumer that
// cannot keep up loses oldest rounds first and — after MaxLag consecutive
// losses — the subscription itself.
type Subscription struct {
	hub    *Hub
	maxLag int
	notify chan struct{}
	done   chan struct{}

	mu     sync.Mutex
	ring   []*Frame
	head   int
	count  int
	lag    int // consecutive rounds dropped since the last successful read
	drops  uint64
	shed   bool
	closed bool
}

// push hands the subscriber a retained frame reference. It reports whether
// the push shed the subscriber (the caller then unregisters it).
func (s *Subscription) push(f *Frame) (shedNow bool) {
	s.mu.Lock()
	if s.closed || s.shed {
		s.mu.Unlock()
		f.Release()
		return false
	}
	if s.count == len(s.ring) {
		// Latest-wins: the oldest buffered round makes room for the newest.
		old := s.ring[s.head]
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.drops++
		s.lag++
		s.hub.dropped.Add(1)
		old.Release()
		if s.maxLag >= 0 && s.lag >= s.maxLag {
			s.closeLocked(true)
			s.mu.Unlock()
			f.Release()
			return true
		}
	}
	s.ring[(s.head+s.count)%len(s.ring)] = f
	s.count++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return false
}

// closeLocked finalizes the subscription (s.mu held): drains and releases
// buffered frames and wakes any blocked Next.
func (s *Subscription) closeLocked(shed bool) {
	if s.closed || s.shed {
		if !shed {
			s.closed = true
		}
		return
	}
	if shed {
		s.shed = true
	} else {
		s.closed = true
	}
	for s.count > 0 {
		f := s.ring[s.head]
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		f.Release()
	}
	close(s.done)
}

// TryNext pops the oldest buffered frame, or nil when the ring is empty. The
// caller owns the returned frame's reference and must Release it.
func (s *Subscription) TryNext() *Frame {
	s.mu.Lock()
	if s.count == 0 {
		s.mu.Unlock()
		return nil
	}
	f := s.ring[s.head]
	s.ring[s.head] = nil
	s.head = (s.head + 1) % len(s.ring)
	s.count--
	s.lag = 0 // a draining consumer is not a wedged one
	s.mu.Unlock()
	return f
}

// Next blocks until a frame is buffered, the subscription ends, or ctx is
// done. The caller must Release the returned frame.
func (s *Subscription) Next(ctx context.Context) (*Frame, error) {
	for {
		if f := s.TryNext(); f != nil {
			return f, nil
		}
		if err := s.Err(); err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.done:
		case <-s.notify:
		}
	}
}

// Err reports why the subscription ended (ErrShed or ErrClosed), or nil
// while it is live.
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.shed:
		return ErrShed
	case s.closed:
		return ErrClosed
	}
	return nil
}

// Dropped counts rounds this subscription lost to latest-wins coalescing.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

// Close unregisters the subscription and releases its buffered frames.
// Safe to call multiple times and after a shed.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	delete(s.hub.subs, s)
	s.hub.mu.Unlock()
	s.mu.Lock()
	s.closeLocked(false)
	s.mu.Unlock()
}
