package supervise

import (
	"sync/atomic"

	"mlink/internal/csi"
)

// ring is a bounded single-producer/single-consumer frame queue: the
// supervisor's producer goroutine pushes, the owning engine shard pops.
// Capacity is rounded up to a power of two so the head/tail indices wrap
// with a mask. Push and pop are wait-free (a full ring rejects rather than
// blocks); the producer decides whether to drop or wait.
//
// Memory ordering: the producer writes the slot before publishing tail, and
// the consumer reads head before clearing the slot, so Go's atomic
// acquire/release semantics make every published frame fully visible to the
// consumer with no lock.
type ring struct {
	buf  []*csi.Frame
	mask uint64
	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to push (producer-owned)
}

func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &ring{buf: make([]*csi.Frame, n), mask: uint64(n - 1)}
}

// push appends f; it reports false when the ring is full.
func (r *ring) push(f *csi.Frame) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = f
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest frame, or returns nil when the ring is empty. The
// slot is cleared so a buffered frame never outlives its consumption (frames
// are pooled; a stale reference would defeat recycling).
func (r *ring) pop() *csi.Frame {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	f := r.buf[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	return f
}

// len reports the number of buffered frames. Racy by nature (either index
// may move under the caller); good enough for metrics.
func (r *ring) len() int {
	return int(r.tail.Load() - r.head.Load())
}
