package supervise

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/csi"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRingBounds(t *testing.T) {
	r := newRing(5) // rounds up to 8
	if got := len(r.buf); got != 8 {
		t.Fatalf("capacity = %d, want 8", got)
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring returned a frame")
	}
	frames := make([]*csi.Frame, 8)
	for i := range frames {
		frames[i] = &csi.Frame{Seq: uint32(i)}
		if !r.push(frames[i]) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.push(&csi.Frame{}) {
		t.Fatal("push succeeded on a full ring")
	}
	if got := r.len(); got != 8 {
		t.Fatalf("len = %d, want 8", got)
	}
	for i := range frames {
		if f := r.pop(); f != frames[i] {
			t.Fatalf("pop %d returned the wrong frame", i)
		}
	}
	if r.pop() != nil {
		t.Fatal("pop after drain returned a frame")
	}
}

// TestRingSPSC hammers the ring from one producer and one consumer; run
// under -race it also proves the publication ordering.
func TestRingSPSC(t *testing.T) {
	r := newRing(16)
	const total = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			f := &csi.Frame{Seq: uint32(i)}
			for !r.push(f) {
				runtime.Gosched() // the consumer drains concurrently
			}
		}
	}()
	next := uint32(0)
	for next < total {
		f := r.pop()
		if f == nil {
			runtime.Gosched()
			continue
		}
		if f.Seq != next {
			t.Fatalf("out-of-order pop: got seq %d, want %d", f.Seq, next)
		}
		next++
	}
	wg.Wait()
	if r.pop() != nil {
		t.Fatal("ring not empty after consuming every frame")
	}
}

// scriptSource serves scripted frames/errors from a channel; Next blocks
// while the channel is empty (a stalled source) and returns io.EOF when it
// is closed.
type scriptSource struct {
	ch       chan scriptEvent
	recycled atomic.Uint64
}

type scriptEvent struct {
	f   *csi.Frame
	err error
}

func newScriptSource(buf int) *scriptSource {
	return &scriptSource{ch: make(chan scriptEvent, buf)}
}

func (s *scriptSource) Next() (*csi.Frame, error) {
	ev, ok := <-s.ch
	if !ok {
		return nil, io.EOF
	}
	return ev.f, ev.err
}

func (s *scriptSource) Recycle(*csi.Frame) { s.recycled.Add(1) }

func (s *scriptSource) feed(n int) {
	for i := 0; i < n; i++ {
		s.ch <- scriptEvent{f: &csi.Frame{}}
	}
}

// flakySource is a scriptSource whose transport can be redialed, failing a
// configured number of attempts first.
type flakySource struct {
	*scriptSource
	failConnects atomic.Int32
	reconnects   atomic.Uint64
}

func (s *flakySource) Reconnect(ctx context.Context) error {
	if s.failConnects.Add(-1) >= 0 {
		return errors.New("refused")
	}
	s.reconnects.Add(1)
	return nil
}

func fastPolicy() Policy {
	return Policy{
		RingSize:       16,
		StaleAfter:     20 * time.Millisecond,
		DownAfter:      60 * time.Millisecond,
		BackoffMin:     time.Millisecond,
		BackoffMax:     8 * time.Millisecond,
		HoldLiveFrames: 3,
	}
}

func TestSupervisorDeliversThenEnds(t *testing.T) {
	src := newScriptSource(16)
	s := New("L1", fastPolicy(), src, src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	src.feed(5)
	close(src.ch) // clean end after the frames

	got := 0
	waitFor(t, time.Second, "all frames + EOF", func() bool {
		f, err := s.Next()
		if f != nil {
			got++
			return false
		}
		return errors.Is(err, io.EOF)
	})
	if got != 5 {
		t.Fatalf("delivered %d frames, want 5", got)
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after end = %v, want io.EOF", err)
	}
	if st := s.Status(); st.Err != nil || st.Frames != 5 {
		t.Fatalf("Status = %+v, want 5 frames and nil Err", st)
	}
	s.Wait()
}

func TestSupervisorTerminalErrorEndsAsEOF(t *testing.T) {
	src := newScriptSource(16)
	boom := errors.New("wire torn")
	s := New("L1", fastPolicy(), src, src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	src.ch <- scriptEvent{err: boom}

	// The consumer sees a clean end — supervision never propagates a source
	// fault into the scoring loop — while Status keeps the real cause.
	waitFor(t, time.Second, "terminal EOF", func() bool {
		_, err := s.Next()
		return errors.Is(err, io.EOF)
	})
	if st := s.Status(); !errors.Is(st.Err, boom) {
		t.Fatalf("Status.Err = %v, want the source error", st.Err)
	}
	if lc := s.Lifecycle(); lc != adapt.LifecycleDown {
		t.Fatalf("Lifecycle after terminal error = %v, want Down", lc)
	}
	s.Wait()
}

func TestSupervisorStalenessLadder(t *testing.T) {
	src := newScriptSource(16)
	s := New("L1", fastPolicy(), src, src)
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	src.feed(1)
	waitFor(t, time.Second, "first frame", func() bool {
		f, _ := s.Next()
		return f != nil
	})
	if lc := s.Lifecycle(); lc != adapt.LifecycleLive {
		t.Fatalf("Lifecycle right after a frame = %v, want Live", lc)
	}
	// The source now blocks in Next with nothing scripted: no activity.
	waitFor(t, time.Second, "Stale", func() bool { return s.Lifecycle() == adapt.LifecycleStale })
	waitFor(t, time.Second, "Down", func() bool { return s.Lifecycle() == adapt.LifecycleDown })
	// Feeding again revives the link: staleness is purely activity age.
	src.feed(1)
	waitFor(t, time.Second, "Live again", func() bool { return s.Lifecycle() == adapt.LifecycleLive })
	cancel()
	close(src.ch)
	s.Wait()
}

func TestSupervisorReconnectBackoffAndHysteresis(t *testing.T) {
	inner := newScriptSource(64)
	src := &flakySource{scriptSource: inner}
	src.failConnects.Store(3)

	var mu sync.Mutex
	var trace []string
	pol := fastPolicy()
	pol.OnTransition = func(link string, from, to adapt.Lifecycle, cause error) {
		mu.Lock()
		trace = append(trace, fmt.Sprintf("%s->%s", from, to))
		mu.Unlock()
	}
	s := New("L1", pol, src, src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}

	inner.ch <- scriptEvent{err: errors.New("link reset")}
	// Down until the 4th redial attempt sticks.
	waitFor(t, 2*time.Second, "reconnect", func() bool { return s.Status().Reconnects == 1 })
	if got := src.reconnects.Load(); got != 1 {
		t.Fatalf("source saw %d successful reconnects, want 1", got)
	}
	if lc := s.Lifecycle(); lc != adapt.LifecycleRecovering {
		t.Fatalf("Lifecycle after redial = %v, want Recovering", lc)
	}

	// Hysteresis: two frames are not enough to re-enter Live...
	inner.feed(2)
	waitFor(t, time.Second, "2 frames buffered", func() bool { return s.Status().Frames == 2 })
	if lc := s.Lifecycle(); lc != adapt.LifecycleRecovering {
		t.Fatalf("Lifecycle after 2 frames = %v, want still Recovering", lc)
	}
	// ...the third (HoldLiveFrames) is.
	inner.feed(1)
	waitFor(t, time.Second, "Live after hold", func() bool { return s.Lifecycle() == adapt.LifecycleLive })

	cancel()
	close(inner.ch)
	s.Wait()

	// The watcher samples lifecycle on a tick, so fast intermediate states
	// (Recovering held only for 3 frames here) may be collapsed; what must
	// hold is that the outage and the return to Live were both reported.
	mu.Lock()
	defer mu.Unlock()
	joined := fmt.Sprint(trace)
	if len(trace) == 0 || trace[0] != "live->down" {
		t.Fatalf("transition trace %s does not start with the outage", joined)
	}
	if lastTo := trace[len(trace)-1]; lastTo != "down->live" && lastTo != "recovering->live" {
		t.Fatalf("transition trace %s does not end back at live", joined)
	}
}

func TestSupervisorDropWhenFull(t *testing.T) {
	src := newScriptSource(64)
	pol := fastPolicy()
	pol.RingSize = 4
	pol.DropWhenFull = true
	s := New("L1", pol, src, src)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	// Nobody consumes: 4 frames fill the ring, the rest are shed.
	src.feed(10)
	waitFor(t, time.Second, "drops", func() bool { return s.Status().Drops == 6 })
	if got := src.recycled.Load(); got != 6 {
		t.Fatalf("recycled %d dropped frames, want 6", got)
	}
	if n := s.Flush(); n != 4 {
		t.Fatalf("Flush drained %d frames, want 4", n)
	}
	if got := src.recycled.Load(); got != 10 {
		t.Fatalf("recycled %d total frames after Flush, want 10", got)
	}
	cancel()
	close(src.ch)
	s.Wait()
}

func TestSupervisorRestartableAcrossRuns(t *testing.T) {
	src := newScriptSource(16)
	s := New("L1", fastPolicy(), src, src)
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctx); !errors.Is(err, ErrStillRunning) {
		t.Fatalf("second Start = %v, want ErrStillRunning", err)
	}
	cancel()
	src.feed(1) // unblock the producer's pending Next
	s.Wait()

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	if err := s.Start(ctx2); err != nil {
		t.Fatalf("restart after Wait = %v", err)
	}
	src.feed(1)
	waitFor(t, time.Second, "frame on second run", func() bool {
		f, _ := s.Next()
		return f != nil
	})
	cancel2()
	src.feed(1)
	s.Wait()
}
