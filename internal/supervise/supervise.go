package supervise

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/csi"
)

// Errors surfaced by the supervisor.
var (
	// ErrNoFrame is the non-blocking "nothing buffered yet" result from
	// Supervisor.Next: the source is (as far as the supervisor knows) still
	// alive but the ring is empty. Consumers skip the link and move on.
	ErrNoFrame = errors.New("supervise: no frame buffered")
	// ErrStillRunning reports a Start while the previous run's producer has
	// not been waited out (a blocking source that ignored its interrupt).
	ErrStillRunning = errors.New("supervise: previous run still active")
)

// Source is the frame producer a supervisor pulls from — structurally
// identical to engine.Source, declared here so the engine can depend on this
// package without a cycle. Next blocks until a frame is available, the
// stream ends (io.EOF), or it fails. Only the supervisor's producer
// goroutine calls it.
type Source interface {
	Next() (*csi.Frame, error)
}

// Recycler takes back frames the supervisor had to drop (ring full with
// DropWhenFull, or in flight when the run was cancelled), so pooled sources
// don't leak their buffers. Mirrors engine.FrameRecycler.
type Recycler interface {
	Recycle(f *csi.Frame)
}

// Reconnector marks a source whose transport can be re-established after a
// failure. When a Reconnector's Next returns any error — including a
// mid-stream io.EOF, which for a network source just means the peer went
// away — the supervisor enters the Down state and redials with jittered
// exponential backoff instead of ending the link. Sources without this
// interface end cleanly on the first error.
type Reconnector interface {
	Reconnect(ctx context.Context) error
}

// Interrupter marks a source whose blocking Next can be unblocked from
// another goroutine (e.g. by closing the underlying connection). The
// supervisor calls it when its run context ends, so shutdown never waits on
// a network read.
type Interrupter interface {
	Interrupt()
}

// ActivityReporter lets a source contribute liveness the supervisor can't
// see from delivered frames alone — csinet heartbeats arrive inside a
// blocking Recv and never surface as frames, but they do prove the peer is
// up. Must be safe to call from any goroutine.
type ActivityReporter interface {
	LastActivity() time.Time
}

// Policy parameterizes link supervision. The zero value selects the
// defaults noted per field.
type Policy struct {
	// RingSize bounds the per-link ingest ring (default 128 frames; rounded
	// up to a power of two).
	RingSize int
	// StaleAfter is how long without source activity before a Live link is
	// reported Stale (default 500ms).
	StaleAfter time.Duration
	// DownAfter is how long without source activity before a Stale link is
	// reported Down (default 2s; must exceed StaleAfter).
	DownAfter time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff (defaults 50ms and 5s).
	BackoffMin, BackoffMax time.Duration
	// BackoffJitter is the ± fraction applied to each backoff sleep so a
	// site full of links redialing one restarted collector doesn't
	// synchronize (default 0.2; negative disables jitter).
	BackoffJitter float64
	// HoldLiveFrames is the anti-flap hysteresis: after a reconnect the
	// link stays Recovering — excluded from fusion — until this many
	// consecutive frames arrive (default 25, one typical window).
	HoldLiveFrames int
	// DropWhenFull sheds the newest frame when the ring is full instead of
	// blocking the producer. Off by default: a slow consumer then exerts
	// backpressure on the source, which is what replay and simulation
	// sources want; network ingestion typically turns it on.
	DropWhenFull bool
	// Seed fixes the jitter RNG for deterministic tests (default 1).
	Seed int64
	// OnTransition, when set, is called from the supervisor's watcher
	// goroutine on every lifecycle change, with the last source error (nil
	// for pure staleness transitions).
	OnTransition func(link string, from, to adapt.Lifecycle, cause error)
}

func (p Policy) withDefaults() Policy {
	if p.RingSize <= 0 {
		p.RingSize = 128
	}
	if p.StaleAfter <= 0 {
		p.StaleAfter = 500 * time.Millisecond
	}
	if p.DownAfter <= p.StaleAfter {
		p.DownAfter = 4 * p.StaleAfter
	}
	if p.BackoffMin <= 0 {
		p.BackoffMin = 50 * time.Millisecond
	}
	if p.BackoffMax < p.BackoffMin {
		p.BackoffMax = 5 * time.Second
		if p.BackoffMax < p.BackoffMin {
			p.BackoffMax = p.BackoffMin
		}
	}
	if p.BackoffJitter == 0 {
		p.BackoffJitter = 0.2
	}
	if p.BackoffJitter < 0 {
		p.BackoffJitter = 0
	}
	if p.HoldLiveFrames <= 0 {
		p.HoldLiveFrames = 25
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// runState is the producer-owned coarse state; the time-based Stale/Down
// refinement of stLive happens at read time in Lifecycle.
type runState int32

const (
	stLive runState = iota
	stRecovering
	stDown
	stEnded
)

// ringFullWait is the producer's poll interval while a full ring exerts
// backpressure (DropWhenFull off). A plain sleep rather than a timer select:
// this sits on the steady-state path and must not allocate.
const ringFullWait = 100 * time.Microsecond

// Status is a point-in-time supervisor report.
type Status struct {
	// Lifecycle is the link's current connectivity state.
	Lifecycle adapt.Lifecycle
	// Frames counts frames delivered by the source since New.
	Frames uint64
	// Drops counts frames shed because the ring was full (DropWhenFull).
	Drops uint64
	// Reconnects counts successful redials.
	Reconnects uint64
	// Buffered is the current ring depth.
	Buffered int
	// LastActivity is when the source last produced a frame (or reported
	// side-channel activity such as a heartbeat).
	LastActivity time.Time
	// Err is the most recent source error (nil after a clean end).
	Err error
}

// Supervisor owns one link's ingestion: a producer goroutine pulls frames
// from the source into a bounded SPSC ring, tracks the link's lifecycle
// state machine (Live → Stale → Down → Recovering → Live), and redials
// reconnectable sources with jittered exponential backoff. The consumer —
// the engine shard that owns the link — calls Next, which never blocks:
// a stalled, slow, or dead source can starve only its own link, never a
// shard sibling.
//
// Concurrency contract: exactly one goroutine calls Next/Flush (the
// consumer); Start/Wait are called by the run orchestrator; Lifecycle and
// Status are safe from any goroutine.
type Supervisor struct {
	link string
	pol  Policy
	src  Source
	rec  Recycler

	ring *ring
	rng  *rand.Rand // producer-owned (jitter)

	state        atomic.Int32 // runState; producer writes, anyone reads
	lastActivity atomic.Int64 // unix nanos of last source activity
	frames       atomic.Uint64
	drops        atomic.Uint64
	reconnects   atomic.Uint64
	errBox       atomic.Pointer[error]

	backoff time.Duration // producer-owned current backoff
	sinceUp int           // producer-owned consecutive frames since reconnect

	running atomic.Bool
	wg      sync.WaitGroup
}

// New builds a supervisor for one link. rec may be nil for sources whose
// frames are not pooled.
func New(link string, pol Policy, src Source, rec Recycler) *Supervisor {
	pol = pol.withDefaults()
	return &Supervisor{
		link: link,
		pol:  pol,
		src:  src,
		rec:  rec,
		ring: newRing(pol.RingSize),
		rng:  rand.New(rand.NewSource(pol.Seed)),
	}
}

// Policy returns the normalized policy in effect.
func (s *Supervisor) Policy() Policy { return s.pol }

// Start launches the producer and watcher goroutines for one run. The run
// ends when ctx is cancelled (Wait then joins both goroutines) or when a
// non-reconnectable source ends. Returns ErrStillRunning if a previous
// run's goroutines are still alive.
func (s *Supervisor) Start(ctx context.Context) error {
	if !s.running.CompareAndSwap(false, true) {
		return ErrStillRunning
	}
	s.errBox.Store(nil)
	s.state.Store(int32(stLive))
	s.lastActivity.Store(time.Now().UnixNano())
	s.backoff = s.pol.BackoffMin
	s.sinceUp = 0
	prodDone := make(chan struct{})
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		defer close(prodDone)
		s.produce(ctx)
	}()
	go func() {
		defer s.wg.Done()
		s.watch(ctx, prodDone)
	}()
	return nil
}

// Wait joins the run's goroutines. Cancel the Start context first, or a
// healthy source will keep the run alive indefinitely.
func (s *Supervisor) Wait() {
	s.wg.Wait()
	s.running.Store(false)
}

// Next pops the oldest buffered frame. It never blocks: ErrNoFrame means
// "nothing yet, skip me this pass"; io.EOF means the link has ended for
// good. A hard source failure on a non-reconnectable source also ends the
// link as io.EOF — supervision's contract is that one broken source marks
// its own link down instead of killing the run — with the terminal error
// preserved in Status().Err and the OnTransition cause.
func (s *Supervisor) Next() (*csi.Frame, error) {
	if f := s.ring.pop(); f != nil {
		return f, nil
	}
	if runState(s.state.Load()) == stEnded {
		// The producer's last pushes happen-before the stEnded store;
		// re-check the ring so an ending source's final frame isn't lost.
		if f := s.ring.pop(); f != nil {
			return f, nil
		}
		return nil, io.EOF
	}
	return nil, ErrNoFrame
}

// Flush drains and recycles every buffered frame, returning the count.
// Consumer-side only (same goroutine as Next); the engine uses it to shed a
// stale backlog before drawing recalibration data.
func (s *Supervisor) Flush() int {
	n := 0
	for f := s.ring.pop(); f != nil; f = s.ring.pop() {
		if s.rec != nil {
			s.rec.Recycle(f)
		}
		n++
	}
	return n
}

// Lifecycle derives the link's current connectivity state: the producer's
// coarse state, with Live refined by activity age against the staleness
// bounds. Safe from any goroutine; allocation-free.
func (s *Supervisor) Lifecycle() adapt.Lifecycle {
	switch runState(s.state.Load()) {
	case stEnded, stDown:
		return adapt.LifecycleDown
	case stRecovering:
		return adapt.LifecycleRecovering
	}
	last := s.lastActivity.Load()
	if ar, ok := s.src.(ActivityReporter); ok {
		if t := ar.LastActivity(); !t.IsZero() {
			if n := t.UnixNano(); n > last {
				last = n
			}
		}
	}
	age := time.Duration(time.Now().UnixNano() - last)
	switch {
	case age >= s.pol.DownAfter:
		return adapt.LifecycleDown
	case age >= s.pol.StaleAfter:
		return adapt.LifecycleStale
	}
	return adapt.LifecycleLive
}

// Status reports counters and state. Safe from any goroutine.
func (s *Supervisor) Status() Status {
	st := Status{
		Lifecycle:    s.Lifecycle(),
		Frames:       s.frames.Load(),
		Drops:        s.drops.Load(),
		Reconnects:   s.reconnects.Load(),
		Buffered:     s.ring.len(),
		LastActivity: time.Unix(0, s.lastActivity.Load()),
	}
	if ep := s.errBox.Load(); ep != nil {
		st.Err = *ep
	}
	return st
}

// produce is the ingestion loop: pull, deliver, and on failure either end
// the link (plain sources) or redial with backoff (Reconnectors).
func (s *Supervisor) produce(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		f, err := s.src.Next()
		if err == nil {
			s.noteFrame()
			if !s.deliver(ctx, f) {
				return
			}
			continue
		}
		if ctx.Err() != nil {
			// The read was interrupted by shutdown, not a source fault.
			return
		}
		rc, reconnectable := s.src.(Reconnector)
		if !reconnectable {
			// Clean end (io.EOF) and hard failure both end the link; the
			// terminal error is kept for Next/Status, EOF stays implicit.
			if !errors.Is(err, io.EOF) {
				s.setErr(err)
			}
			s.state.Store(int32(stEnded))
			return
		}
		// Down: redial until it sticks or the run ends. Backoff grows per
		// attempt and only resets once the link re-proves itself live
		// (HoldLiveFrames in noteFrame), so a flapping source pays the full
		// escalating price instead of thrashing at BackoffMin.
		s.setErr(err)
		s.state.Store(int32(stDown))
		for {
			if !sleepCtx(ctx, s.jittered(s.backoff)) {
				return
			}
			if s.backoff *= 2; s.backoff > s.pol.BackoffMax {
				s.backoff = s.pol.BackoffMax
			}
			rerr := rc.Reconnect(ctx)
			if rerr == nil {
				s.reconnects.Add(1)
				s.sinceUp = 0
				s.lastActivity.Store(time.Now().UnixNano())
				s.state.Store(int32(stRecovering))
				break
			}
			if ctx.Err() != nil {
				return
			}
			s.setErr(rerr)
		}
	}
}

// noteFrame records activity and applies the Recovering→Live hysteresis.
func (s *Supervisor) noteFrame() {
	s.frames.Add(1)
	s.lastActivity.Store(time.Now().UnixNano())
	if runState(s.state.Load()) == stRecovering {
		if s.sinceUp++; s.sinceUp >= s.pol.HoldLiveFrames {
			s.backoff = s.pol.BackoffMin
			s.state.Store(int32(stLive))
		}
	}
}

// deliver pushes f into the ring, shedding (DropWhenFull) or exerting
// backpressure otherwise. Returns false when the run ended mid-wait.
func (s *Supervisor) deliver(ctx context.Context, f *csi.Frame) bool {
	for !s.ring.push(f) {
		if s.pol.DropWhenFull {
			s.drops.Add(1)
			if s.rec != nil {
				s.rec.Recycle(f)
			}
			return true
		}
		if ctx.Err() != nil {
			if s.rec != nil {
				s.rec.Recycle(f)
			}
			return false
		}
		time.Sleep(ringFullWait)
		// The frame in hand proves the source is alive: a full ring means
		// the consumer fell behind (or met its windows quota and stopped
		// draining), not that the link went quiet. Keep the heartbeat
		// fresh so backpressure is never misreported as staleness.
		s.lastActivity.Store(time.Now().UnixNano())
	}
	return true
}

// watch is the run's second goroutine: it emits OnTransition callbacks
// (including the purely time-driven Live→Stale→Down ones the producer never
// sees) and interrupts a blocking source when the run context ends.
func (s *Supervisor) watch(ctx context.Context, prodDone <-chan struct{}) {
	period := s.pol.StaleAfter / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	if period > 250*time.Millisecond {
		period = 250 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	last := adapt.LifecycleLive
	for {
		select {
		case <-ctx.Done():
			// Final report, so a transition that landed between the last
			// tick and shutdown (e.g. Recovering→Live) is not lost.
			s.emit(&last)
			if in, ok := s.src.(Interrupter); ok {
				in.Interrupt()
			}
			return
		case <-prodDone:
			s.emit(&last)
			return
		case <-tick.C:
			s.emit(&last)
		}
	}
}

func (s *Supervisor) emit(last *adapt.Lifecycle) {
	cur := s.Lifecycle()
	if cur == *last {
		return
	}
	if cb := s.pol.OnTransition; cb != nil {
		var cause error
		if ep := s.errBox.Load(); ep != nil {
			cause = *ep
		}
		cb(s.link, *last, cur, cause)
	}
	*last = cur
}

func (s *Supervisor) setErr(err error) {
	s.errBox.Store(&err)
}

// jittered spreads d by ±BackoffJitter so redials across links decorrelate.
func (s *Supervisor) jittered(d time.Duration) time.Duration {
	j := s.pol.BackoffJitter
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// sleepCtx sleeps d or until ctx ends; reports whether the sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
