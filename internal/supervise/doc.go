// Package supervise decouples per-link frame ingestion from scoring.
//
// Each link gets a Supervisor: a producer goroutine pulls frames from the
// link's source into a bounded single-producer/single-consumer ring, and
// the scoring shard consumes the ring non-blockingly (Next returns
// ErrNoFrame instead of waiting). One stalled, slow, or dead source can
// therefore never stall the other links sharing its shard — the failure is
// contained to the one link, which the fusion layer then discounts or
// excludes.
//
// The supervisor also owns the link lifecycle state machine
//
//	Live → Stale → Down → Recovering → Live
//
// with heartbeat-based staleness detection (StaleAfter/DownAfter age
// bounds on the source's last activity), jittered exponential backoff
// redials for sources implementing Reconnector, and a HoldLiveFrames
// hysteresis so a flapping link must re-prove itself before re-entering
// fusion. Lifecycle states map into adapt.Health.Lifecycle, which
// adapt.Health.Weight folds into the link's fusion vote: Stale decays the
// vote, Down/Recovering collapse it below the fusible floor.
//
// Everything on the steady-state path — ring push/pop, Next, Lifecycle,
// Status — is allocation-free; allocations happen only at Start and on the
// reconnect path.
package supervise
