// Package campus aggregates many independently-monitored sites — one
// engine and fleet coordinator each — under a single campus view.
//
// Each site keeps its own calibration, fusion policy, adaptation loop and
// drift coordinator; the Aggregator adds the layer above: per-site verdict
// routing, a campus rollup (sites present / inconclusive / degraded, link
// and outage totals), batch profile persistence with one directory per site,
// and cross-site ambient correlation. The last is the campus-scale analogue
// of the fleet coordinator's localized-versus-ambient disambiguation:
// when several sites classify their drift as ambient inside one episode
// window, the cause is campus-wide (weather, HVAC, building RF) rather than
// per-site, and the OnAmbientEpisode hook fires once per episode so an
// operator can suppress recalibration storms instead of chasing each site.
package campus
