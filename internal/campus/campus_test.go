package campus

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlink/internal/engine"
	"mlink/internal/fleet"
)

// stubSite is a scriptable Site + FleetReporter + Persister.
type stubSite struct {
	mu      sync.Mutex
	verdict engine.SiteVerdict
	state   fleet.State
	fleetOn bool
	saved   int
}

func (s *stubSite) VerdictInto(v *engine.SiteVerdict) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	links := v.Links[:0]
	*v = s.verdict
	v.Links = links
	return nil
}

func (s *stubSite) MetricsInto(m *engine.Metrics) {
	*m = engine.Metrics{Links: s.verdict.Coverage.Links}
}

func (s *stubSite) FleetReport() (fleet.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fleet.Report{State: s.state}, s.fleetOn
}

func (s *stubSite) SaveProfiles(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.saved++
	s.mu.Unlock()
	return []string{"l0"}, nil
}

func (s *stubSite) LoadProfiles(dir string) ([]string, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, nil // first boot: nothing to restore
	}
	return []string{"l0"}, nil
}

func (s *stubSite) set(mut func(*stubSite)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mut(s)
}

func TestAggregatorRoutingAndRollup(t *testing.T) {
	a := New(Config{})
	east := &stubSite{verdict: engine.SiteVerdict{Present: true, Score: 0.8, Coverage: engine.Coverage{Links: 3, Fused: 3}}}
	west := &stubSite{verdict: engine.SiteVerdict{Inconclusive: true, Coverage: engine.Coverage{Links: 2, Down: 2}}}
	if err := a.Add("east", east); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("west", west); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("east", east); err == nil {
		t.Fatal("duplicate site ID accepted")
	}
	var v engine.SiteVerdict
	if err := a.VerdictInto("east", &v); err != nil || !v.Present {
		t.Fatalf("east verdict = %+v, %v", v, err)
	}
	if err := a.VerdictInto("nowhere", &v); !errors.Is(err, ErrUnknownSite) {
		t.Fatalf("unknown site error = %v", err)
	}
	o := a.Observe()
	if o.Sites != 2 || o.Present != 1 || o.Inconclusive != 1 || o.Degraded != 1 {
		t.Fatalf("overview = %+v", o)
	}
	if o.Links != 5 || o.Down != 2 {
		t.Fatalf("link totals = %+v", o)
	}
}

// TestAggregatorAmbientEpisode pins the cross-site correlation logic with an
// injected clock: two sites going ambient inside the window open exactly one
// episode; the hook re-arms only after correlation lapses.
func TestAggregatorAmbientEpisode(t *testing.T) {
	now := time.Unix(1000, 0)
	var episodes [][]string
	a := New(Config{
		EpisodeWindow:    10 * time.Second,
		MinSites:         2,
		Now:              func() time.Time { return now },
		OnAmbientEpisode: func(ids []string) { episodes = append(episodes, append([]string(nil), ids...)) },
	})
	s1, s2, s3 := &stubSite{fleetOn: true}, &stubSite{fleetOn: true}, &stubSite{fleetOn: true}
	for id, s := range map[string]*stubSite{"a": s1, "b": s2, "c": s3} {
		if err := a.Add(id, s); err != nil {
			t.Fatal(err)
		}
	}

	// One ambient site: below quorum, no episode.
	s1.set(func(s *stubSite) { s.state = fleet.StateAmbient })
	if o := a.Observe(); o.InEpisode || len(episodes) != 0 {
		t.Fatalf("single ambient site opened an episode: %+v", o)
	}

	// Second site correlates 5s later (inside the window): episode opens,
	// hook fires once with both IDs.
	s1.set(func(s *stubSite) { s.state = fleet.StateQuiet })
	s2.set(func(s *stubSite) { s.state = fleet.StateAmbient })
	now = now.Add(5 * time.Second)
	o := a.Observe()
	if !o.InEpisode || o.Episodes != 1 {
		t.Fatalf("correlated sites did not open an episode: %+v", o)
	}
	if len(episodes) != 1 || len(episodes[0]) != 2 {
		t.Fatalf("episode hook fired %v, want one firing with two sites", episodes)
	}

	// Still inside the window: the open episode does not re-fire.
	now = now.Add(2 * time.Second)
	if o := a.Observe(); o.Episodes != 1 || len(episodes) != 1 {
		t.Fatalf("episode re-fired while open: %+v", o)
	}

	// Evidence ages out: the episode closes...
	s2.set(func(s *stubSite) { s.state = fleet.StateQuiet })
	now = now.Add(30 * time.Second)
	if o := a.Observe(); o.InEpisode {
		t.Fatalf("episode still open after evidence aged out: %+v", o)
	}

	// ...and a fresh correlated pair opens a second one.
	s2.set(func(s *stubSite) { s.state = fleet.StateAmbient })
	s3.set(func(s *stubSite) { s.state = fleet.StateAmbient })
	now = now.Add(time.Second)
	if o := a.Observe(); !o.InEpisode || o.Episodes != 2 || len(episodes) != 2 {
		t.Fatalf("second episode not detected: %+v (hook %v)", o, episodes)
	}
}

func TestAggregatorPersistence(t *testing.T) {
	root := t.TempDir()
	a := New(Config{ProfileRoot: root})
	east, west := &stubSite{}, &stubSite{}
	if err := a.Add("east", east); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("west", west); err != nil {
		t.Fatal(err)
	}
	saved, err := a.SaveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 || len(saved["east"]) != 1 {
		t.Fatalf("saved = %v", saved)
	}
	for _, id := range []string{"east", "west"} {
		if _, err := os.Stat(filepath.Join(root, id)); err != nil {
			t.Fatalf("per-site dir missing for %q: %v", id, err)
		}
	}
	restored, err := a.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored["west"]) != 1 {
		t.Fatalf("restored = %v", restored)
	}

	noRoot := New(Config{})
	if _, err := noRoot.SaveAll(); err == nil {
		t.Fatal("SaveAll without ProfileRoot should error")
	}
}
