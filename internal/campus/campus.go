package campus

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"mlink/internal/engine"
	"mlink/internal/fleet"
)

// Site is one monitored deployment mounted under the aggregator: anything
// exposing the engine's allocation-free verdict and metrics snapshots. The
// facade mlink.Engine satisfies it.
type Site interface {
	VerdictInto(*engine.SiteVerdict) error
	MetricsInto(*engine.Metrics)
}

// FleetReporter is the optional drift-coordination surface a Site may also
// expose; the aggregator uses it for cross-site ambient correlation.
type FleetReporter interface {
	FleetReport() (fleet.Report, bool)
}

// Persister is the optional profile-persistence surface a Site may expose;
// SaveAll/LoadAll walk it with per-site directories under ProfileRoot.
type Persister interface {
	SaveProfiles(dir string) ([]string, error)
	LoadProfiles(dir string) ([]string, error)
}

// ErrUnknownSite is returned for lookups of an unregistered site ID.
var ErrUnknownSite = errors.New("campus: unknown site")

// Config parameterizes an Aggregator. The zero value is usable: no
// persistence root, a 30-second episode window, and a two-site quorum.
type Config struct {
	// ProfileRoot, when set, gives each persistable site a directory
	// ProfileRoot/<siteID> for SaveAll/LoadAll.
	ProfileRoot string
	// EpisodeWindow is how close together two sites' ambient-drift
	// classifications must land to correlate (default 30s).
	EpisodeWindow time.Duration
	// MinSites is how many sites must report ambient drift inside the
	// window to open a campus-wide episode (default 2).
	MinSites int
	// OnAmbientEpisode, when non-nil, fires once per episode with the IDs
	// of the correlating sites — the campus-scale counterpart of the fleet
	// coordinator's ambient/localized disambiguation: weather, HVAC cycles
	// or building-wide RF events move many sites together, while a person
	// or a renovation moves one.
	OnAmbientEpisode func(siteIDs []string)
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

type siteEntry struct {
	id          string
	site        Site
	lastAmbient time.Time
}

// Aggregator mounts many independently-monitored sites — one engine and
// fleet coordinator each — under a single campus view: per-site verdict
// routing, a cross-site occupancy/coverage rollup, batch profile
// persistence, and a cross-site ambient-correlation hook. All methods are
// safe for concurrent use.
type Aggregator struct {
	cfg Config

	mu        sync.Mutex
	sites     []*siteEntry
	byID      map[string]*siteEntry
	inEpisode bool
	episodes  uint64

	// Observe/OverviewInto scratch, guarded by mu.
	verdict    engine.SiteVerdict
	episodeIDs []string
}

// Overview is the campus rollup one Observe/OverviewInto pass produces.
type Overview struct {
	// Sites is the mounted-site count; Present, Inconclusive and Degraded
	// count sites by their current verdict state.
	Sites, Present, Inconclusive, Degraded int
	// Links and Down sum link counts across every site's coverage.
	Links, Down int
	// Episodes counts campus-wide ambient episodes detected so far, and
	// InEpisode reports whether one is currently open.
	Episodes  uint64
	InEpisode bool
}

// New builds an empty campus aggregator.
func New(cfg Config) *Aggregator {
	if cfg.EpisodeWindow <= 0 {
		cfg.EpisodeWindow = 30 * time.Second
	}
	if cfg.MinSites <= 0 {
		cfg.MinSites = 2
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Aggregator{cfg: cfg, byID: make(map[string]*siteEntry)}
}

// Add mounts a site under a unique ID.
func (a *Aggregator) Add(id string, s Site) error {
	if s == nil {
		return fmt.Errorf("campus: nil site %q", id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.byID[id]; dup {
		return fmt.Errorf("campus: duplicate site %q", id)
	}
	e := &siteEntry{id: id, site: s}
	a.sites = append(a.sites, e)
	a.byID[id] = e
	return nil
}

// Sites lists mounted site IDs in registration order.
func (a *Aggregator) Sites() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.sites))
	for i, e := range a.sites {
		out[i] = e.id
	}
	return out
}

// VerdictInto routes one site's fused verdict into v (reusing its buffers,
// like the engine method it forwards to).
func (a *Aggregator) VerdictInto(siteID string, v *engine.SiteVerdict) error {
	a.mu.Lock()
	e := a.byID[siteID]
	a.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSite, siteID)
	}
	return e.site.VerdictInto(v)
}

// Observe runs one campus tick: every site's verdict is folded into the
// rollup, fleet reports are polled for ambient evidence, and — when at least
// MinSites sites classified their drift as ambient within EpisodeWindow of
// each other — an episode opens and OnAmbientEpisode fires once. The episode
// closes (re-arming the hook) when correlation drops below the quorum.
func (a *Aggregator) Observe() Overview {
	a.mu.Lock()
	now := a.cfg.Now()
	var o Overview
	o.Sites = len(a.sites)
	a.episodeIDs = a.episodeIDs[:0]
	for _, e := range a.sites {
		if err := e.site.VerdictInto(&a.verdict); err == nil {
			switch {
			case a.verdict.Inconclusive:
				o.Inconclusive++
			case a.verdict.Present:
				o.Present++
			}
			if a.verdict.Coverage.Degraded() {
				o.Degraded++
			}
			o.Links += a.verdict.Coverage.Links
			o.Down += a.verdict.Coverage.Down
		}
		if fr, ok := e.site.(FleetReporter); ok {
			if rep, on := fr.FleetReport(); on && rep.State == fleet.StateAmbient {
				e.lastAmbient = now
			}
		}
		if !e.lastAmbient.IsZero() && now.Sub(e.lastAmbient) <= a.cfg.EpisodeWindow {
			a.episodeIDs = append(a.episodeIDs, e.id)
		}
	}
	var fire []string
	if len(a.episodeIDs) >= a.cfg.MinSites {
		if !a.inEpisode {
			a.inEpisode = true
			a.episodes++
			fire = append(fire, a.episodeIDs...)
		}
	} else {
		a.inEpisode = false
	}
	o.Episodes = a.episodes
	o.InEpisode = a.inEpisode
	cb := a.cfg.OnAmbientEpisode
	a.mu.Unlock()
	if fire != nil && cb != nil {
		cb(fire)
	}
	return o
}

// Episodes counts campus-wide ambient episodes detected so far.
func (a *Aggregator) Episodes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.episodes
}

// SaveAll snapshots every persistable site's adapted baselines under
// ProfileRoot/<siteID> and returns the per-site saved link IDs. Sites
// without the Persister surface are skipped.
func (a *Aggregator) SaveAll() (map[string][]string, error) {
	return a.persist(func(p Persister, dir string) ([]string, error) { return p.SaveProfiles(dir) })
}

// LoadAll restores every persistable site from ProfileRoot/<siteID>,
// returning the per-site restored link IDs. Missing directories restore
// nothing and are not an error (first boot).
func (a *Aggregator) LoadAll() (map[string][]string, error) {
	return a.persist(func(p Persister, dir string) ([]string, error) { return p.LoadProfiles(dir) })
}

func (a *Aggregator) persist(op func(Persister, string) ([]string, error)) (map[string][]string, error) {
	if a.cfg.ProfileRoot == "" {
		return nil, errors.New("campus: no ProfileRoot configured")
	}
	a.mu.Lock()
	sites := make([]*siteEntry, len(a.sites))
	copy(sites, a.sites)
	a.mu.Unlock()
	out := make(map[string][]string)
	for _, e := range sites {
		p, ok := e.site.(Persister)
		if !ok {
			continue
		}
		ids, err := op(p, filepath.Join(a.cfg.ProfileRoot, e.id))
		if err != nil {
			return out, fmt.Errorf("campus: site %q: %w", e.id, err)
		}
		out[e.id] = ids
	}
	return out, nil
}
