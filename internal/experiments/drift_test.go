package experiments

import (
	"testing"

	"mlink/internal/scenario"
)

// TestDriftAdaptationBoundsFalsePositives is the acceptance experiment: on
// the gain-walk drift preset, over a 10× calibration-length empty-room run,
// the adaptive detector must hold the false-positive rate at or below 5%
// while the frozen detector measurably exceeds it — the PR 1 "seeds 11-ish
// drift" caveat turned into a handled scenario.
func TestDriftAdaptationBoundsFalsePositives(t *testing.T) {
	// Several seeds, not a hand-picked one: the gain walk defeats the
	// frozen detector on all of them while adaptation holds the bound.
	// (Seeds whose OU gain process takes genuine step-like excursions are
	// the quarantine scenario — covered by the furniture/quarantine tests —
	// not the gradual-walk scenario this test demonstrates.)
	for _, seed := range []int64{1, 5, 9} {
		r, err := RunDriftAdaptation(DriftExperimentConfig{Preset: scenario.GainWalk(12), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("seed %d:\n%s", seed, r.Render())
		if r.Frozen.Windows < 10*r.Config.CalibrationPackets/r.Config.WindowPackets {
			t.Fatalf("monitoring run too short: %d windows", r.Frozen.Windows)
		}
		if r.Adaptive.FPR > 0.05 {
			t.Errorf("seed %d: adaptive FPR = %.1f%%, want ≤ 5%%", seed, 100*r.Adaptive.FPR)
		}
		if r.Frozen.FPR <= 0.05 {
			t.Errorf("seed %d: frozen FPR = %.1f%%, want > 5%% (drift preset too gentle to demonstrate adaptation)", seed, 100*r.Frozen.FPR)
		}
		if r.Frozen.FPR <= 2*r.Adaptive.FPR && r.Adaptive.FalsePositives > 0 {
			t.Errorf("seed %d: frozen FPR %.1f%% not measurably above adaptive %.1f%%", seed, 100*r.Frozen.FPR, 100*r.Adaptive.FPR)
		}
		// Adaptation must not trade away sensitivity: the person stepping
		// onto the link after the whole drifted run is still detected.
		if r.Adaptive.TailDetections == 0 {
			t.Errorf("seed %d: adaptive detector missed all %d occupied tail windows", seed, r.Adaptive.TailWindows)
		}
		if r.Adaptive.Health.Refreshes == 0 {
			t.Errorf("seed %d: adaptive arm never refreshed its profile", seed)
		}
	}
}

// TestDriftCFOWalkHarmless documents why the CFO preset exists: phase
// sanitization makes the detectors immune to oscillator drift, so the CFO
// arm behaves exactly like the no-drift control — any false positives come
// from the receiver's own stochastic gain process (the OU AGC drift), which
// adaptation in turn bounds.
func TestDriftCFOWalkHarmless(t *testing.T) {
	run := func(p scenario.DriftPreset) *DriftResult {
		t.Helper()
		r, err := RunDriftAdaptation(DriftExperimentConfig{
			Preset:          p,
			MonitorMultiple: 4,
			Seed:            5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	control := run(scenario.NoDrift())
	cfo := run(scenario.CFOWalk(60, 0.05))
	t.Logf("control:\n%s\ncfo:\n%s", control.Render(), cfo.Render())
	// Same seed, same frames, only the phase rotation differs: the CFO arm
	// must not add false positives over the control.
	if cfo.Frozen.FalsePositives > control.Frozen.FalsePositives {
		t.Errorf("CFO walk added frozen false positives: %d > control %d",
			cfo.Frozen.FalsePositives, control.Frozen.FalsePositives)
	}
	if cfo.Adaptive.FPR > 0.05 {
		t.Errorf("adaptive FPR on CFO walk = %.1f%%, want ≤ 5%%", 100*cfo.Adaptive.FPR)
	}
	if cfo.Adaptive.TailDetections == 0 {
		t.Error("adaptive detector missed the occupied tail under CFO drift")
	}
}

// TestDriftFurnitureMoveQuarantines checks the step change no EWMA can
// absorb: after the furniture moves, the adaptive link must flag itself as
// needing recalibration instead of silently false-alarming forever.
func TestDriftFurnitureMoveQuarantines(t *testing.T) {
	cfg := DriftExperimentConfig{
		Preset:              scenario.FurnitureMove(600), // mid-run step
		MonitorMultiple:     6,
		OccupiedTailWindows: -1, // none: the room stays empty throughout
		Seed:                2,
	}
	r, err := RunDriftAdaptation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Render())
	if !r.Adaptive.Health.NeedsRecalibration {
		t.Errorf("furniture step did not quarantine the adaptive link: health %+v", r.Adaptive.Health)
	}
	if r.Frozen.FalsePositives == 0 {
		t.Error("frozen detector did not false-alarm after the furniture step (step too gentle)")
	}
}
