package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/dsp"
	"mlink/internal/scenario"
)

func log10(x float64) float64 { return math.Log10(x) }

// CharacterizationResult holds the §III measurement campaign outputs that
// feed Figs. 2a, 3a, 3b and 3c: per-location subcarrier RSS changes and
// multipath factors on a 4 m classroom link.
type CharacterizationResult struct {
	// DeltaRSS pools the per-subcarrier RSS change (dB) of every location.
	DeltaRSS []float64
	// Mu pools the corresponding multipath factors.
	Mu []float64
	// PerSubcarrier keeps (Δs, μ) pairs per subcarrier for the log fits.
	PerSubcarrier [][][2]float64
	// Locations is the number of presence locations measured.
	Locations int
}

// RunCharacterization reproduces the §III-A campaign: many static presence
// locations on/near a 4 m link; for each, a short window of packets is
// compared against the empty-room profile.
func RunCharacterization(locations, packetsPerLocation int, seed int64) (*CharacterizationResult, error) {
	s, err := scenario.Classroom(seed)
	if err != nil {
		return nil, fmt.Errorf("characterization: %w", err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 99))

	// Empty-room profile (the calibration RSS s(0)).
	const ant = 1 // centre antenna, as a single-antenna link
	calFrames := captureWindow(x, 200, nil, nil)
	cal := meanRSSPerSubcarrier(calFrames, ant)
	nSub := len(cal)

	res := &CharacterizationResult{
		PerSubcarrier: make([][][2]float64, nSub),
		Locations:     locations,
	}
	locs := s.RandomPresenceLocations(locations, 1.0, rng)
	for _, loc := range locs {
		target := body.Default(loc)
		window := captureWindow(x, packetsPerLocation, &target, nil)
		mon := meanRSSPerSubcarrier(window, ant)

		// Mean multipath factor per subcarrier over the window.
		muSum := make([]float64, nSub)
		for _, f := range window {
			mu, err := core.MultipathFactors(f.CSI[ant], s.Grid)
			if err != nil {
				return nil, err
			}
			for k, v := range mu {
				muSum[k] += v
			}
		}
		for k := 0; k < nSub; k++ {
			delta := mon[k] - cal[k]
			mu := muSum[k] / float64(len(window))
			res.DeltaRSS = append(res.DeltaRSS, delta)
			res.Mu = append(res.Mu, mu)
			res.PerSubcarrier[k] = append(res.PerSubcarrier[k], [2]float64{mu, delta})
		}
	}
	return res, nil
}

// Fig2aResult is the CDF of subcarrier RSS change over the presence
// locations.
type Fig2aResult struct {
	CDF Series
	// FracNegative is the fraction of (location, subcarrier) pairs whose
	// RSS dropped — the paper's point is that this is well below 1.
	FracNegative float64
	// FracRise is the fraction with RSS rise beyond +0.5 dB.
	FracRise float64
}

// Fig2a summarizes a characterization run into the Fig. 2a CDF.
func Fig2a(c *CharacterizationResult, points int) (*Fig2aResult, error) {
	cdf, err := dsp.NewCDF(c.DeltaRSS)
	if err != nil {
		return nil, fmt.Errorf("fig2a: %w", err)
	}
	xs, ps := cdf.Points(points)
	var neg, rise float64
	for _, d := range c.DeltaRSS {
		if d < 0 {
			neg++
		}
		if d > 0.5 {
			rise++
		}
	}
	n := float64(len(c.DeltaRSS))
	return &Fig2aResult{
		CDF:          Series{Name: "RSS change CDF (500 locations)", X: xs, Y: ps},
		FracNegative: neg / n,
		FracRise:     rise / n,
	}, nil
}

// Render prints the figure data as text.
func (r *Fig2aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 2a — CDF of subcarrier RSS change over presence locations\n")
	fmt.Fprintf(&b, "fraction with RSS drop: %.3f, fraction with RSS rise >0.5 dB: %.3f\n",
		r.FracNegative, r.FracRise)
	renderSeries(&b, r.CDF, "ΔRSS (dB)", "P(X≤x)")
	return b.String()
}

// Fig2bResult traces per-subcarrier RSS change as a person crosses the
// link, highlighting two subcarriers whose trends diverge.
type Fig2bResult struct {
	// SubA and SubB are the traced subcarrier indices (0-based).
	SubA, SubB int
	TraceA     Series
	TraceB     Series
	// DivergentPackets counts packets where one subcarrier rises while the
	// other drops by more than 0.5 dB each.
	DivergentPackets int
}

// Fig2b reproduces the crossing experiment: 1000 packets while a person
// walks across the link midpoint.
func Fig2b(packets int, seed int64) (*Fig2bResult, error) {
	s, err := scenario.Classroom(seed)
	if err != nil {
		return nil, fmt.Errorf("fig2b: %w", err)
	}
	x, err := s.NewExtractor(2)
	if err != nil {
		return nil, err
	}
	const ant = 1
	cal := meanRSSPerSubcarrier(captureWindow(x, 200, nil, nil), ant)

	traj := s.CrossingTrajectory(packets, 4.0)
	// Paper subcarriers 15 and 25 (1-based) → 14 and 24.
	const subA, subB = 14, 24
	res := &Fig2bResult{
		SubA:   subA,
		SubB:   subB,
		TraceA: Series{Name: fmt.Sprintf("subcarrier %d", subA+1)},
		TraceB: Series{Name: fmt.Sprintf("subcarrier %d", subB+1)},
	}
	for i, pos := range traj {
		target := body.Default(pos)
		f := x.Capture([]body.Body{target})
		rss := core.SubcarrierRSSdB(f.CSI[ant])
		dA := rss[subA] - cal[subA]
		dB := rss[subB] - cal[subB]
		res.TraceA.X = append(res.TraceA.X, float64(i))
		res.TraceA.Y = append(res.TraceA.Y, dA)
		res.TraceB.X = append(res.TraceB.X, float64(i))
		res.TraceB.Y = append(res.TraceB.Y, dB)
		if (dA < -0.5 && dB > 0.5) || (dA > 0.5 && dB < -0.5) {
			res.DivergentPackets++
		}
	}
	// Smooth the rendered traces the way the paper's figure does.
	res.TraceA.Y = dsp.MovingAverage(res.TraceA.Y, 25)
	res.TraceB.Y = dsp.MovingAverage(res.TraceB.Y, 25)
	return res, nil
}

// Render prints a decimated version of both traces.
func (r *Fig2bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 2b — subcarrier RSS change while a person crosses the link\n")
	fmt.Fprintf(&b, "packets where subcarriers %d and %d diverge (one rises, one drops): %d\n",
		r.SubA+1, r.SubB+1, r.DivergentPackets)
	fmt.Fprintf(&b, "  %8s  %14s  %14s\n", "packet", r.TraceA.Name, r.TraceB.Name)
	step := len(r.TraceA.X) / 25
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.TraceA.X); i += step {
		fmt.Fprintf(&b, "  %8.0f  %14.3f  %14.3f\n", r.TraceA.X[i], r.TraceA.Y[i], r.TraceB.Y[i])
	}
	return b.String()
}

// Fig3aResult is the CDF of the multipath factor over the §III campaign.
type Fig3aResult struct {
	CDF Series
	// P10/P50/P90 summarize the spread the paper's Fig. 3a shows.
	P10, P50, P90 float64
}

// Fig3a summarizes the characterization multipath factors.
func Fig3a(c *CharacterizationResult, points int) (*Fig3aResult, error) {
	cdf, err := dsp.NewCDF(c.Mu)
	if err != nil {
		return nil, fmt.Errorf("fig3a: %w", err)
	}
	xs, ps := cdf.Points(points)
	p10, err := dsp.Percentile(c.Mu, 10)
	if err != nil {
		return nil, err
	}
	p50, err := dsp.Percentile(c.Mu, 50)
	if err != nil {
		return nil, err
	}
	p90, err := dsp.Percentile(c.Mu, 90)
	if err != nil {
		return nil, err
	}
	return &Fig3aResult{
		CDF: Series{Name: "multipath factor CDF", X: xs, Y: ps},
		P10: p10, P50: p50, P90: p90,
	}, nil
}

// Render prints the figure data as text.
func (r *Fig3aResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3a — multipath factor distribution\n")
	fmt.Fprintf(&b, "p10=%.3f median=%.3f p90=%.3f\n", r.P10, r.P50, r.P90)
	renderSeries(&b, r.CDF, "μ", "P(X≤x)")
	return b.String()
}

// LogFitEntry is one subcarrier's Δs-vs-μ logarithmic fit (Fig. 3b/3c).
type LogFitEntry struct {
	Subcarrier int // 1-based, as the paper labels them
	A, B, R2   float64
	Samples    int
}

// Fig3bcResult carries the logarithmic fits at selected subcarriers.
type Fig3bcResult struct {
	Fits []LogFitEntry
	// MonotoneFraction is the share of fitted subcarriers with negative
	// slope (Δs falls as μ grows — the paper's key monotonicity claim).
	MonotoneFraction float64
}

// Fig3bc fits Δs = A·ln(μ) + B at the given 1-based subcarrier labels
// (the paper displays 5 separated subcarriers).
func Fig3bc(c *CharacterizationResult, subcarriers []int) (*Fig3bcResult, error) {
	res := &Fig3bcResult{}
	neg := 0
	for _, sc := range subcarriers {
		k := sc - 1
		if k < 0 || k >= len(c.PerSubcarrier) {
			return nil, fmt.Errorf("subcarrier %d out of range: %w", sc, core.ErrBadInput)
		}
		pairs := c.PerSubcarrier[k]
		mus := make([]float64, len(pairs))
		ds := make([]float64, len(pairs))
		for i, p := range pairs {
			mus[i] = p[0]
			ds[i] = p[1]
		}
		fit, err := dsp.FitLog(mus, ds)
		if err != nil {
			return nil, fmt.Errorf("fig3 fit subcarrier %d: %w", sc, err)
		}
		res.Fits = append(res.Fits, LogFitEntry{
			Subcarrier: sc, A: fit.A, B: fit.B, R2: fit.R2, Samples: len(pairs),
		})
		if fit.A < 0 {
			neg++
		}
	}
	if len(res.Fits) > 0 {
		res.MonotoneFraction = float64(neg) / float64(len(res.Fits))
	}
	return res, nil
}

// Render prints the fit table.
func (r *Fig3bcResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 3b/3c — logarithmic fits Δs = A·ln(μ) + B per subcarrier\n")
	fmt.Fprintf(&b, "fraction with decreasing trend (A<0): %.2f\n", r.MonotoneFraction)
	fmt.Fprintf(&b, "  %10s  %10s  %10s  %8s  %8s\n", "subcarrier", "A", "B", "R2", "samples")
	for _, f := range r.Fits {
		fmt.Fprintf(&b, "  %10d  %10.3f  %10.3f  %8.3f  %8d\n", f.Subcarrier, f.A, f.B, f.R2, f.Samples)
	}
	return b.String()
}
