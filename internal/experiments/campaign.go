package experiments

import (
	"fmt"
	"math/rand"

	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/eval"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

// Schemes lists the three detection variants compared throughout §V.
var Schemes = []core.Scheme{core.SchemeBaseline, core.SchemeSubcarrier, core.SchemeSubcarrierPath}

// DetectionSample is one scored monitoring window with its ground truth and
// geometry metadata (distance/angle feed Figs. 9 and 11).
type DetectionSample struct {
	Case         int
	Scheme       core.Scheme
	Score        float64
	Positive     bool
	DistanceToRX float64
	AngleDeg     float64
}

// CampaignConfig sizes a detection measurement campaign.
type CampaignConfig struct {
	// Cases are the Fig. 6 link cases to include (1-based).
	Cases []int
	// Sessions is the number of repeated measurement sessions per case
	// (the paper repeats day/night and after two weeks).
	Sessions int
	// CalibrationPackets is N, the calibration sample count.
	CalibrationPackets int
	// WindowPackets is M, the monitoring window size (25 ≈ 0.5 s at
	// 50 pkt/s).
	WindowPackets int
	// WindowsPerLocation is how many monitoring windows each presence
	// location contributes.
	WindowsPerLocation int
	// BackgroundPeople is the number of distant students moving during the
	// measurements.
	BackgroundPeople int
	// Seed drives all randomness.
	Seed int64
}

// DefaultCampaignConfig returns a campaign matching the paper's setup at a
// simulation-friendly scale.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{
		Cases:              []int{1, 2, 3, 4, 5},
		Sessions:           2,
		CalibrationPackets: 150,
		WindowPackets:      25,
		WindowsPerLocation: 2,
		BackgroundPeople:   3,
		Seed:               1,
	}
}

// Campaign holds scored samples for every scheme and case.
type Campaign struct {
	Samples []DetectionSample
}

// sessionDetectors calibrates one detector per scheme on shared calibration
// frames.
func sessionDetectors(s *scenario.Scenario, cal []*csi.Frame) (map[core.Scheme]*core.Detector, error) {
	out := make(map[core.Scheme]*core.Detector, len(Schemes))
	for _, scheme := range Schemes {
		cfg := core.DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
		profile, err := core.Calibrate(cfg, cal)
		if err != nil {
			return nil, fmt.Errorf("calibrate %v: %w", scheme, err)
		}
		det, err := core.NewDetector(cfg, profile)
		if err != nil {
			return nil, fmt.Errorf("detector %v: %w", scheme, err)
		}
		out[scheme] = det
	}
	return out, nil
}

// scoreWindow scores one window under every scheme with a shared scratch
// and appends samples.
func (c *Campaign) scoreWindow(dets map[core.Scheme]*core.Detector, window []*csi.Frame, tmpl DetectionSample, sc *core.Scratch) error {
	for _, scheme := range Schemes {
		score, err := dets[scheme].ScoreScratch(window, sc)
		if err != nil {
			return fmt.Errorf("score %v: %w", scheme, err)
		}
		s := tmpl
		s.Scheme = scheme
		s.Score = score
		c.Samples = append(c.Samples, s)
	}
	return nil
}

// newBackground builds the session's background dynamics.
func newBackground(s *scenario.Scenario, people int, rng *rand.Rand) (*scenario.Background, error) {
	bg, err := scenario.NewBackground(people, scenario.DefaultAnchors(s), rng)
	if err != nil {
		return nil, err
	}
	// §V-A dynamics: students occasionally walk around their desks.
	bg.StepSigma = 0.03
	bg.Tether = 0.8
	bg.WalkProb = 0.05
	return bg, nil
}

// runSession executes one measurement session of one case. Calibration and
// monitoring happen in *different* jittered sub-sessions — the paper pauses
// five minutes between captures and repeats campaigns day/night and two
// weeks apart, so the static profile never perfectly matches the monitored
// channel. That temporal drift (plus background dynamics) is what limits
// the baseline.
func (c *Campaign) runSession(s *scenario.Scenario, cfg CampaignConfig, caseID int, session int64, locations []geom.Point) error {
	rng := rand.New(rand.NewSource(cfg.Seed*101 + int64(caseID)*13 + session))
	// One frame pool and scoring scratch serve the whole session: every
	// captured window is scored, then recycled (the detectors sanitize, so
	// profiles never retain pooled frames).
	pool := csi.NewFramePool(len(s.Env.RX.Elements), s.Grid.Len())
	sc := core.NewScratch()

	calSess, err := s.NewSession(session * 1000)
	if err != nil {
		return err
	}
	calX, err := calSess.NewExtractor(session * 17)
	if err != nil {
		return err
	}
	calBg, err := newBackground(calSess, cfg.BackgroundPeople, rng)
	if err != nil {
		return err
	}
	cal, err := capturePooledWindow(calX, pool, cfg.CalibrationPackets, nil, calBg)
	if err != nil {
		return err
	}
	dets, err := sessionDetectors(calSess, cal)
	if err != nil {
		return err
	}
	recycleWindow(pool, cal)

	for li, loc := range locations {
		// Each location is measured in its own drifted sub-session.
		monSess, err := s.NewSession(session*1000 + int64(li) + 1)
		if err != nil {
			return err
		}
		monX, err := monSess.NewExtractor(session*17 + int64(li) + 1)
		if err != nil {
			return err
		}
		bg, err := newBackground(monSess, cfg.BackgroundPeople, rng)
		if err != nil {
			return err
		}
		rx := monSess.RXCenter()
		rel := monSess.Env.RX.RelativeAngle(loc.Sub(rx).Angle())
		tmpl := DetectionSample{
			Case:         caseID,
			Positive:     true,
			DistanceToRX: loc.Dist(rx),
			AngleDeg:     geom.RadToDeg(rel),
		}
		for w := 0; w < cfg.WindowsPerLocation; w++ {
			window, err := capturePooledJitteredWindow(monX, pool, cfg.WindowPackets, body.Default(loc), 0.015, bg, rng)
			if err != nil {
				return err
			}
			if err := c.scoreWindow(dets, window, tmpl, sc); err != nil {
				return err
			}
			recycleWindow(pool, window)
		}
		// Matched negative windows from the same drifted session.
		for w := 0; w < cfg.WindowsPerLocation; w++ {
			window, err := capturePooledWindow(monX, pool, cfg.WindowPackets, nil, bg)
			if err != nil {
				return err
			}
			if err := c.scoreWindow(dets, window, DetectionSample{Case: caseID}, sc); err != nil {
				return err
			}
			recycleWindow(pool, window)
		}
	}
	return nil
}

// RunCampaign executes the full §V-A campaign over the configured link
// cases with the 3×3 presence grids.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	if len(cfg.Cases) == 0 || cfg.Sessions <= 0 || cfg.WindowPackets <= 0 {
		return nil, fmt.Errorf("campaign config %+v: %w", cfg, core.ErrBadInput)
	}
	c := &Campaign{}
	for _, caseID := range cfg.Cases {
		s, err := scenario.LinkCase(caseID, cfg.Seed+int64(caseID))
		if err != nil {
			return nil, err
		}
		for sess := int64(1); sess <= int64(cfg.Sessions); sess++ {
			if err := c.runSession(s, cfg, caseID, sess, s.Grid3x3()); err != nil {
				return nil, fmt.Errorf("case %d session %d: %w", caseID, sess, err)
			}
		}
	}
	return c, nil
}

// SchemeSamples extracts one scheme's samples as eval samples.
func (c *Campaign) SchemeSamples(scheme core.Scheme) []eval.Sample {
	var out []eval.Sample
	for _, s := range c.Samples {
		if s.Scheme != scheme {
			continue
		}
		out = append(out, eval.Sample{Score: s.Score, Positive: s.Positive})
	}
	return out
}

// FilterCase returns a campaign view restricted to one link case.
func (c *Campaign) FilterCase(caseID int) *Campaign {
	out := &Campaign{}
	for _, s := range c.Samples {
		if s.Case == caseID {
			out.Samples = append(out.Samples, s)
		}
	}
	return out
}
