package experiments

import (
	"math"
	"strings"
	"testing"

	"mlink/internal/core"
)

var charCache *CharacterizationResult

func char(t *testing.T) *CharacterizationResult {
	t.Helper()
	if charCache == nil {
		c, err := RunCharacterization(60, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		charCache = c
	}
	return charCache
}

func TestFig2aDiverseRSSChanges(t *testing.T) {
	c := char(t)
	r, err := Fig2a(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: RSS does NOT always drop — a multipath link shows
	// both drops and rises.
	if r.FracNegative < 0.1 || r.FracNegative > 0.9 {
		t.Fatalf("fraction of drops = %v, want mixed behaviour", r.FracNegative)
	}
	if r.FracRise <= 0 {
		t.Fatalf("no RSS rises observed; Fig 2a diversity missing")
	}
	if !strings.Contains(r.Render(), "Fig. 2a") {
		t.Fatal("render broken")
	}
}

func TestFig2bDivergentSubcarriers(t *testing.T) {
	r, err := Fig2b(300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.TraceA.Y) != 300 || len(r.TraceB.Y) != 300 {
		t.Fatalf("trace lengths %d/%d", len(r.TraceA.Y), len(r.TraceB.Y))
	}
	// Crossing the link must perturb at least one subcarrier noticeably.
	var maxAbs float64
	for _, y := range append(append([]float64{}, r.TraceA.Y...), r.TraceB.Y...) {
		if math.Abs(y) > maxAbs {
			maxAbs = math.Abs(y)
		}
	}
	if maxAbs < 1 {
		t.Fatalf("crossing produced max |ΔRSS| %v dB, want ≥1", maxAbs)
	}
	if !strings.Contains(r.Render(), "Fig. 2b") {
		t.Fatal("render broken")
	}
}

func TestFig3aMuSpread(t *testing.T) {
	c := char(t)
	r, err := Fig3a(c, 20)
	if err != nil {
		t.Fatal(err)
	}
	// μ must be spread (multipath superposition varies), centred near 1.
	if r.P90-r.P10 < 0.05 {
		t.Fatalf("μ spread p90-p10 = %v, want diversity", r.P90-r.P10)
	}
	if r.P50 < 0.3 || r.P50 > 3 {
		t.Fatalf("median μ = %v, implausible", r.P50)
	}
}

func TestFig3bcMonotoneTrend(t *testing.T) {
	c := char(t)
	r, err := Fig3bc(c, []int{5, 10, 15, 20, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fits) != 5 {
		t.Fatalf("fits = %d", len(r.Fits))
	}
	// The paper: "the monotonous relationship holds for all subcarriers" —
	// require a clear majority of negative slopes in the reduced run.
	if r.MonotoneFraction < 0.6 {
		t.Fatalf("monotone fraction = %v, want ≥0.6", r.MonotoneFraction)
	}
	if _, err := Fig3bc(c, []int{99}); err == nil {
		t.Fatal("out-of-range subcarrier accepted")
	}
}

func TestFig4Stability(t *testing.T) {
	r, err := Fig4(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Locations) != 2 {
		t.Fatalf("locations = %d", len(r.Locations))
	}
	for _, loc := range r.Locations {
		if len(loc.PerSubcarrierP50) != 30 {
			t.Fatalf("%s: %d subcarriers", loc.Name, len(loc.PerSubcarrierP50))
		}
		// Percentiles must be ordered.
		for k := range loc.PerSubcarrierP50 {
			if loc.PerSubcarrierP10[k] > loc.PerSubcarrierP50[k] ||
				loc.PerSubcarrierP50[k] > loc.PerSubcarrierP90[k] {
				t.Fatalf("%s subcarrier %d percentiles disordered", loc.Name, k)
			}
		}
	}
	if !strings.Contains(r.Render(), "Fig. 4") {
		t.Fatal("render broken")
	}
}

func TestFig5bPeaksNearTruth(t *testing.T) {
	r, err := Fig5b(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Peaks) == 0 {
		t.Fatal("no pseudospectrum peaks")
	}
	// One of the top peaks must sit near the true LOS angle. (With three
	// antennas and mutually coherent rays the *strongest* peak can land on
	// an aliased direction — the weakness the paper's Fig. 10 quantifies —
	// but the LOS direction itself must be represented.)
	foundLOS := false
	for _, p := range r.Peaks {
		if math.Abs(p.AngleDeg-r.TrueLOSDeg) <= 10 {
			foundLOS = true
		}
	}
	if !foundLOS {
		t.Fatalf("no peak near true LOS %v°: %+v", r.TrueLOSDeg, r.Peaks)
	}
	// LOS and wall reflection must be distinct directions in this geometry.
	if math.Abs(r.TrueLOSDeg-r.TrueWallDeg) < 5 {
		t.Fatalf("geometry degenerate: LOS %v°, wall %v°", r.TrueLOSDeg, r.TrueWallDeg)
	}
}

func TestFig5cPeakNearLOS(t *testing.T) {
	r, err := Fig5c(9, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerAngle.X) != 9 {
		t.Fatalf("points = %d", len(r.PerAngle.X))
	}
	// The LOS direction must carry a notable impact (paper: "most
	// subcarriers exhibit dramatic RSS changes along the direction of the
	// LOS path"). Near-endfire locations sit right next to the receive
	// array and can echo strongly too, so we assert the broadside impact
	// is above the arc average rather than the global maximum.
	var losImpact, peak float64
	for i, a := range r.PerAngle.X {
		if r.PerAngle.Y[i] > peak {
			peak = r.PerAngle.Y[i]
		}
		if math.Abs(a) < 15 && r.PerAngle.Y[i] > losImpact {
			losImpact = r.PerAngle.Y[i]
		}
	}
	if losImpact < 0.5*peak {
		t.Fatalf("LOS-direction impact %v not notable vs arc peak %v", losImpact, peak)
	}
}

func TestFig9RangeExtension(t *testing.T) {
	r, err := Fig9(20, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BinCenters) != 5 {
		t.Fatalf("bins = %d", len(r.BinCenters))
	}
	base := r.RangeAt90[core.SchemeBaseline]
	path := r.RangeAt90[core.SchemeSubcarrierPath]
	t.Logf("≥90%% range: baseline %.1f m, subcarrier+path %.1f m", base, path)
	// The paper's headline: path weighting extends range.
	if path < base {
		t.Fatalf("path weighting shrank the range: %v < %v", path, base)
	}
	if !strings.Contains(r.Render(), "Fig. 9") {
		t.Fatal("render broken")
	}
}

func TestFig10AveragingHelps(t *testing.T) {
	r, err := Fig10(15, 15, 9)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("median angle error: single %.1f°, averaged %.1f°", r.MedianSingle, r.MedianAvg)
	// The paper's point that survives any sampling: a 3-element array in
	// coherent multipath has substantial angle errors (its Fig. 10 median
	// exceeds 20°). Both estimates must be finite and non-trivial.
	if r.MedianSingle <= 0.5 && r.MedianAvg <= 0.5 {
		t.Fatalf("angle errors implausibly small: %v / %v", r.MedianSingle, r.MedianAvg)
	}
	if r.MedianSingle > 90 || r.MedianAvg > 90 {
		t.Fatalf("angle errors out of range: %v / %v", r.MedianSingle, r.MedianAvg)
	}
	if !strings.Contains(r.Render(), "Fig. 10") {
		t.Fatal("render broken")
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(5, 1.5, 20, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AnglesDeg) != 5 {
		t.Fatalf("angles = %d", len(r.AnglesDeg))
	}
	for _, scheme := range Schemes {
		if len(r.PerScheme[scheme]) != 5 {
			t.Fatalf("%v rates = %d", scheme, len(r.PerScheme[scheme]))
		}
	}
	if !strings.Contains(r.Render(), "Fig. 11") {
		t.Fatal("render broken")
	}
}

func TestFig12MorePacketsNoWorse(t *testing.T) {
	r, err := Fig12([]int{2, 25}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		rates := r.PerScheme[scheme]
		if len(rates) != 2 {
			t.Fatalf("%v rates = %d", scheme, len(rates))
		}
	}
	// The paper: rates saturate by ~25 packets; the full scheme at 25
	// packets must be respectable.
	if r.PerScheme[core.SchemeSubcarrierPath][1] < 0.6 {
		t.Fatalf("path rate at 25 packets = %v", r.PerScheme[core.SchemeSubcarrierPath][1])
	}
	if !strings.Contains(r.Render(), "Fig. 12") {
		t.Fatal("render broken")
	}
}

func TestRunCharacterizationShape(t *testing.T) {
	c := char(t)
	if c.Locations != 60 {
		t.Fatalf("locations = %d", c.Locations)
	}
	if len(c.DeltaRSS) != 60*30 || len(c.Mu) != 60*30 {
		t.Fatalf("pooled sizes %d/%d", len(c.DeltaRSS), len(c.Mu))
	}
	if len(c.PerSubcarrier) != 30 {
		t.Fatalf("per-subcarrier = %d", len(c.PerSubcarrier))
	}
	for _, mu := range c.Mu {
		if mu < 0 || math.IsNaN(mu) {
			t.Fatalf("bad μ %v", mu)
		}
	}
}
