package experiments

import (
	"fmt"
	"strings"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/scenario"
)

// DriftExperimentConfig sizes the frozen-vs-adaptive drift comparison.
type DriftExperimentConfig struct {
	// Case is the Fig. 6 link case (default 2, the 4 m classroom link).
	Case int
	// Scheme is the detection variant (default SchemeSubcarrier).
	Scheme core.Scheme
	// Preset is the drift mechanism (default GainWalk(12)).
	Preset scenario.DriftPreset
	// CalibrationPackets is N (default 150).
	CalibrationPackets int
	// MonitorMultiple sets the empty-room monitoring length as a multiple
	// of the calibration length (default 10 — the acceptance horizon).
	MonitorMultiple int
	// WindowPackets is M (default 25).
	WindowPackets int
	// OccupiedTailWindows appends windows with a person on the link after
	// the empty run, checking adaptation did not trade away sensitivity
	// (default 4).
	OccupiedTailWindows int
	// Policy is the adaptation policy (zero value = package defaults).
	Policy adapt.Policy
	// Seed drives the simulation.
	Seed int64
}

func (c DriftExperimentConfig) withDefaults() DriftExperimentConfig {
	if c.Case <= 0 {
		c.Case = 2
	}
	if c.Scheme == 0 {
		c.Scheme = core.SchemeSubcarrier
	}
	if c.Preset.Kind == 0 {
		c.Preset = scenario.GainWalk(12)
	}
	if c.CalibrationPackets <= 0 {
		c.CalibrationPackets = 150
	}
	if c.MonitorMultiple <= 0 {
		c.MonitorMultiple = 10
	}
	if c.WindowPackets <= 0 {
		c.WindowPackets = 25
	}
	if c.OccupiedTailWindows < 0 {
		c.OccupiedTailWindows = 0
	} else if c.OccupiedTailWindows == 0 {
		c.OccupiedTailWindows = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DriftArm is one detector's outcome over the drifting run.
type DriftArm struct {
	// Name labels the arm ("frozen", "adaptive").
	Name string
	// Windows and FalsePositives cover the empty-room monitoring run.
	Windows, FalsePositives int
	// FPR is FalsePositives/Windows.
	FPR float64
	// TailDetections counts detected occupied tail windows (of TailWindows).
	TailDetections, TailWindows int
	// FinalThreshold is the decision threshold at the end of the run.
	FinalThreshold float64
	// Health is the adaptive arm's snapshot at the end of the EMPTY
	// monitoring run, before any occupied tail (zero for frozen).
	Health adapt.Health
	// TailHealth is the snapshot after the occupied tail — a person parked
	// on the link for several windows legitimately drives the link towards
	// quarantine (single-link ambiguity; fusion and recalibration resolve
	// it), so it is reported separately rather than polluting Health.
	TailHealth adapt.Health
}

// DriftResult compares a frozen and an adaptive detector on one drifting
// stream — the experiment behind the repo's "turn the drift caveat into a
// handled scenario" claim.
type DriftResult struct {
	Config           DriftExperimentConfig
	Frozen, Adaptive DriftArm
	// FinalDriftDB is the gain-walk offset at the end of the run (0 for
	// other presets).
	FinalDriftDB float64
}

// RunDriftAdaptation runs one drifting link twice over the same captured
// frames: a frozen detector (profile and threshold fixed at calibration, as
// in PR 1–2) and an adaptive one (silent-window EWMA refresh + online
// threshold re-derivation). Calibration, holdout and monitoring all come
// from a single DriftStream, so the drift accumulates across phases exactly
// as it would on a live link.
func RunDriftAdaptation(cfg DriftExperimentConfig) (*DriftResult, error) {
	cfg = cfg.withDefaults()
	s, err := scenario.LinkCase(cfg.Case, cfg.Seed)
	if err != nil {
		return nil, err
	}
	stream, err := s.NewDriftStream(cfg.Preset, 1)
	if err != nil {
		return nil, err
	}
	pull := func(n int) ([]*csi.Frame, error) {
		out := make([]*csi.Frame, 0, n)
		for i := 0; i < n; i++ {
			f, err := stream.Next()
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	recycle := func(frames []*csi.Frame) {
		for _, f := range frames {
			stream.Recycle(f)
		}
	}

	detCfg := core.DefaultConfig(s.Grid, cfg.Scheme, s.Env.RX.Offsets())
	cal, err := pull(cfg.CalibrationPackets)
	if err != nil {
		return nil, fmt.Errorf("calibration capture: %w", err)
	}
	profile, err := core.Calibrate(detCfg, cal)
	if err != nil {
		return nil, err
	}
	recycle(cal)
	frozen, err := core.NewDetector(detCfg, profile)
	if err != nil {
		return nil, err
	}
	adaptive, err := core.NewDetector(detCfg, profile)
	if err != nil {
		return nil, err
	}
	holdout, err := pull(cfg.CalibrationPackets)
	if err != nil {
		return nil, fmt.Errorf("holdout capture: %w", err)
	}
	null, err := frozen.SelfScores(holdout, cfg.WindowPackets, cfg.WindowPackets)
	if err != nil {
		return nil, err
	}
	recycle(holdout)
	if _, err := frozen.CalibrateThreshold(null, 0.95, 1.3); err != nil {
		return nil, err
	}
	if _, err := adaptive.CalibrateThreshold(null, 0.95, 1.3); err != nil {
		return nil, err
	}
	adapter, err := adapt.NewAdapter(cfg.Policy, adaptive, null)
	if err != nil {
		return nil, err
	}

	res := &DriftResult{
		Config:   cfg,
		Frozen:   DriftArm{Name: "frozen"},
		Adaptive: DriftArm{Name: "adaptive"},
	}
	sc := core.NewScratch()
	windows := cfg.MonitorMultiple * cfg.CalibrationPackets / cfg.WindowPackets
	for w := 0; w < windows; w++ {
		window, err := pull(cfg.WindowPackets)
		if err != nil {
			return nil, fmt.Errorf("monitor window %d: %w", w, err)
		}
		fDec, err := frozen.DetectScratch(window, sc)
		if err != nil {
			return nil, err
		}
		aDec, err := adaptive.DetectScratch(window, sc)
		if err != nil {
			return nil, err
		}
		if _, err := adapter.Observe(window, aDec); err != nil {
			return nil, err
		}
		recycle(window)
		res.Frozen.Windows++
		res.Adaptive.Windows++
		if fDec.Present {
			res.Frozen.FalsePositives++
		}
		if aDec.Present {
			res.Adaptive.FalsePositives++
		}
	}

	res.Adaptive.Health = adapter.Health()

	// Occupied tail: the person steps onto the link after the long drift.
	mid := s.LinkMidpoint()
	stream.SetBodies([]body.Body{body.Default(mid)})
	for w := 0; w < cfg.OccupiedTailWindows; w++ {
		window, err := pull(cfg.WindowPackets)
		if err != nil {
			return nil, fmt.Errorf("tail window %d: %w", w, err)
		}
		fDec, err := frozen.DetectScratch(window, sc)
		if err != nil {
			return nil, err
		}
		aDec, err := adaptive.DetectScratch(window, sc)
		if err != nil {
			return nil, err
		}
		// The adapter keeps observing during the tail: a detected window is
		// never folded into the profile (silent-window gate), which is
		// itself part of what the tail verifies.
		if _, err := adapter.Observe(window, aDec); err != nil {
			return nil, err
		}
		recycle(window)
		res.Frozen.TailWindows++
		res.Adaptive.TailWindows++
		if fDec.Present {
			res.Frozen.TailDetections++
		}
		if aDec.Present {
			res.Adaptive.TailDetections++
		}
	}

	if res.Frozen.Windows > 0 {
		res.Frozen.FPR = float64(res.Frozen.FalsePositives) / float64(res.Frozen.Windows)
		res.Adaptive.FPR = float64(res.Adaptive.FalsePositives) / float64(res.Adaptive.Windows)
	}
	res.Frozen.FinalThreshold = frozen.Threshold()
	res.Adaptive.FinalThreshold = adaptive.Threshold()
	res.Adaptive.TailHealth = adapter.Health()
	res.FinalDriftDB = stream.AppliedGainDB()
	return res, nil
}

// Render prints the comparison table.
func (r *DriftResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift adaptation — %s on case %d (%s), %d×%d-packet calibration horizon\n",
		r.Config.Preset.Kind, r.Config.Case, r.Config.Scheme,
		r.Config.MonitorMultiple, r.Config.CalibrationPackets)
	if r.FinalDriftDB != 0 {
		fmt.Fprintf(&b, "  accumulated gain walk at end of run: %.2f dB\n", r.FinalDriftDB)
	}
	fmt.Fprintf(&b, "  %-10s  %8s  %8s  %8s  %10s  %12s\n",
		"detector", "windows", "FP", "FPR", "tail det.", "threshold")
	for _, arm := range []DriftArm{r.Frozen, r.Adaptive} {
		fmt.Fprintf(&b, "  %-10s  %8d  %8d  %7.1f%%  %7d/%d  %12.4f\n",
			arm.Name, arm.Windows, arm.FalsePositives, 100*arm.FPR,
			arm.TailDetections, arm.TailWindows, arm.FinalThreshold)
	}
	h := r.Adaptive.Health
	fmt.Fprintf(&b, "  adaptive health after empty run: %s (drift z %.1f, profile shift %.2f dB, %d refreshes, %d threshold updates)\n",
		h.State, h.DriftZ, h.ProfileShiftDB, h.Refreshes, h.ThresholdUpdates)
	if r.Adaptive.TailWindows > 0 {
		fmt.Fprintf(&b, "  adaptive health after occupied tail: %s (needs recalibration: %v)\n",
			r.Adaptive.TailHealth.State, r.Adaptive.TailHealth.NeedsRecalibration)
	}
	return b.String()
}
