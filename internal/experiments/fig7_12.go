package experiments

import (
	"fmt"
	"math"
	"strings"

	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/dsp"
	"mlink/internal/eval"
	"mlink/internal/geom"
	"mlink/internal/music"
	"mlink/internal/sanitize"
	"mlink/internal/scenario"
)

// SchemeROC is one scheme's ROC summary.
type SchemeROC struct {
	Scheme   core.Scheme
	Points   []eval.ROCPoint
	AUC      float64
	Balanced eval.ROCPoint
}

// Fig7Result is the overall detection ROC comparison.
type Fig7Result struct {
	PerScheme []SchemeROC
}

// Fig7 sweeps the ROC per scheme over a campaign's samples.
func Fig7(c *Campaign) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, scheme := range Schemes {
		samples := c.SchemeSamples(scheme)
		points, err := eval.ROC(samples)
		if err != nil {
			return nil, fmt.Errorf("fig7 %v: %w", scheme, err)
		}
		auc, err := eval.AUC(points)
		if err != nil {
			return nil, err
		}
		bp, err := eval.BalancedPoint(points)
		if err != nil {
			return nil, err
		}
		res.PerScheme = append(res.PerScheme, SchemeROC{
			Scheme: scheme, Points: points, AUC: auc, Balanced: bp,
		})
	}
	return res, nil
}

// BalancedThreshold returns the balanced operating threshold of a scheme.
func (r *Fig7Result) BalancedThreshold(scheme core.Scheme) (float64, error) {
	for _, s := range r.PerScheme {
		if s.Scheme == scheme {
			return s.Balanced.Threshold, nil
		}
	}
	return 0, fmt.Errorf("scheme %v not in result: %w", scheme, core.ErrBadInput)
}

// Render prints balanced points, AUCs and decimated ROC curves.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — overall detection ROC\n")
	fmt.Fprintf(&b, "  %-28s  %8s  %10s  %10s\n", "scheme", "AUC", "TP(bal)", "FP(bal)")
	for _, s := range r.PerScheme {
		fmt.Fprintf(&b, "  %-28s  %8.3f  %9.1f%%  %9.1f%%\n",
			s.Scheme, s.AUC, 100*s.Balanced.TPR, 100*s.Balanced.FPR)
	}
	for _, s := range r.PerScheme {
		fmt.Fprintf(&b, "%s ROC:\n  %10s  %10s\n", s.Scheme, "FPR", "TPR")
		step := len(s.Points) / 15
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(s.Points); i += step {
			fmt.Fprintf(&b, "  %10.3f  %10.3f\n", s.Points[i].FPR, s.Points[i].TPR)
		}
	}
	return b.String()
}

// Fig8Result is the per-link-case detection rate at the global balanced
// thresholds.
type Fig8Result struct {
	Cases     []int
	PerScheme map[core.Scheme][]float64 // detection rate per case
}

// Fig8 evaluates each case at the overall balanced threshold from Fig. 7.
func Fig8(c *Campaign, roc *Fig7Result, cases []int) (*Fig8Result, error) {
	res := &Fig8Result{Cases: cases, PerScheme: make(map[core.Scheme][]float64)}
	for _, scheme := range Schemes {
		th, err := roc.BalancedThreshold(scheme)
		if err != nil {
			return nil, err
		}
		for _, caseID := range cases {
			sub := c.FilterCase(caseID).SchemeSamples(scheme)
			dr, err := eval.DetectionRate(sub, th)
			if err != nil {
				return nil, fmt.Errorf("fig8 case %d %v: %w", caseID, scheme, err)
			}
			res.PerScheme[scheme] = append(res.PerScheme[scheme], dr)
		}
	}
	return res, nil
}

// Render prints the per-case table.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 8 — detection rate per link case (balanced threshold)\n")
	fmt.Fprintf(&b, "  %6s", "case")
	for _, scheme := range Schemes {
		fmt.Fprintf(&b, "  %-28s", scheme)
	}
	b.WriteString("\n")
	for i, caseID := range r.Cases {
		fmt.Fprintf(&b, "  %6d", caseID)
		for _, scheme := range Schemes {
			fmt.Fprintf(&b, "  %27.1f%%", 100*r.PerScheme[scheme][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9Result is detection rate versus target distance from the receiver.
type Fig9Result struct {
	// BinCenters are the distance bins (metres).
	BinCenters []float64
	PerScheme  map[core.Scheme][]float64
	// RangeAt90 is, per scheme, the largest bin centre with ≥90% detection
	// (the paper's headline coverage metric).
	RangeAt90 map[core.Scheme]float64
}

// Fig9 runs a dedicated distance-sweep campaign: presence locations at
// controlled distances (1–5 m) from the receiver along a long link.
func Fig9(windowPackets, windowsPerLoc int, seed int64) (*Fig9Result, error) {
	// A long diagonal link gives room for 5 m targets.
	s, err := scenario.LinkCase(1, seed)
	if err != nil {
		return nil, err
	}
	c := &Campaign{}
	distances := []float64{1, 2, 3, 4, 5}
	// Presence locations: along the RX→TX direction at each distance, with
	// small lateral offsets.
	var locations []geom.Point
	rx := s.RXCenter()
	dir := s.TX().Sub(rx)
	u := dir.Scale(1 / dir.Norm())
	perp := geom.Point{X: -u.Y, Y: u.X}
	// Mixed lateral offsets, as in the paper's grids: near-path locations
	// shadow the LOS, farther ones are reflection-dominated — the regime
	// that constrains coverage (§IV-B) and that path weighting rescues.
	for _, d := range distances {
		for _, lat := range []float64{0.4, 0.8, 1.2} {
			locations = append(locations, rx.Add(u.Scale(d)).Add(perp.Scale(lat)))
		}
	}
	cfg := CampaignConfig{
		Cases:              []int{1},
		Sessions:           2,
		CalibrationPackets: 150,
		WindowPackets:      windowPackets,
		WindowsPerLocation: windowsPerLoc,
		BackgroundPeople:   3,
		Seed:               seed,
	}
	for sess := int64(1); sess <= int64(cfg.Sessions); sess++ {
		if err := c.runSession(s, cfg, 1, sess, locations); err != nil {
			return nil, fmt.Errorf("fig9 session %d: %w", sess, err)
		}
	}

	res := &Fig9Result{
		BinCenters: distances,
		PerScheme:  make(map[core.Scheme][]float64),
		RangeAt90:  make(map[core.Scheme]float64),
	}
	for _, scheme := range Schemes {
		all := c.SchemeSamples(scheme)
		points, err := eval.ROC(all)
		if err != nil {
			return nil, err
		}
		bp, err := eval.BalancedPoint(points)
		if err != nil {
			return nil, err
		}
		for _, d := range distances {
			var sub []eval.Sample
			for _, smp := range c.Samples {
				if smp.Scheme != scheme {
					continue
				}
				if !smp.Positive {
					sub = append(sub, eval.Sample{Score: smp.Score, Positive: false})
					continue
				}
				if math.Abs(smp.DistanceToRX-d) < 0.6 {
					sub = append(sub, eval.Sample{Score: smp.Score, Positive: true})
				}
			}
			dr, err := eval.DetectionRate(sub, bp.Threshold)
			if err != nil {
				return nil, err
			}
			res.PerScheme[scheme] = append(res.PerScheme[scheme], dr)
			if dr >= 0.9 && d > res.RangeAt90[scheme] {
				res.RangeAt90[scheme] = d
			}
		}
	}
	return res, nil
}

// Render prints the distance table and the ≥90% range per scheme.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 9 — detection rate vs target distance to receiver\n")
	fmt.Fprintf(&b, "  %10s", "dist(m)")
	for _, scheme := range Schemes {
		fmt.Fprintf(&b, "  %-28s", scheme)
	}
	b.WriteString("\n")
	for i, d := range r.BinCenters {
		fmt.Fprintf(&b, "  %10.1f", d)
		for _, scheme := range Schemes {
			fmt.Fprintf(&b, "  %27.1f%%", 100*r.PerScheme[scheme][i])
		}
		b.WriteString("\n")
	}
	for _, scheme := range Schemes {
		fmt.Fprintf(&b, "range with ≥90%% detection, %s: %.1f m\n", scheme, r.RangeAt90[scheme])
	}
	return b.String()
}

// Fig10Result is the CDF of MUSIC angle-estimation error for single-packet
// and packet-averaged estimation.
type Fig10Result struct {
	SinglePacket Series
	Averaged     Series
	MedianSingle float64
	MedianAvg    float64
}

// Fig10 measures LOS angle-estimation error on the short link across many
// trials.
func Fig10(trials, avgPackets int, seed int64) (*Fig10Result, error) {
	s, err := scenario.ShortLinkNearWall(seed)
	if err != nil {
		return nil, err
	}
	est, err := music.NewEstimator(s.Env.RX.Offsets(), 299792458.0/s.Grid.Center)
	if err != nil {
		return nil, err
	}
	angles, amps := s.Env.TrueAoAs(s.Grid.Center)
	li, err := dsp.ArgMax(amps)
	if err != nil {
		return nil, err
	}
	trueDeg := angles[li] * 180 / math.Pi

	// A person stands near (not on) the link, never perfectly still — the
	// slight movements are what make packet averaging help (§V-B3).
	rng := randNew(seed + 10)
	bystander := bodyDefault(s.AngularArc(1, 1.3, 30, 30)[0])
	var single, averaged []float64
	for trial := 0; trial < trials; trial++ {
		x, err := s.NewExtractor(int64(1000 + trial))
		if err != nil {
			return nil, err
		}
		frames := captureJitteredWindow(x, avgPackets, bystander, 0.03, nil, rng)
		clean, err := sanitize.Frames(frames, s.Grid.Indices)
		if err != nil {
			return nil, err
		}
		// Per-packet estimates; the "averaged" variant averages the angle
		// estimates across the window (§V-B3: slight user movements vary
		// the per-packet bias, so averaging the estimates helps).
		var sum float64
		for fi, f := range clean {
			cov, err := music.Covariance([]*csi.Frame{f}, nil)
			if err != nil {
				return nil, err
			}
			spec, err := est.Pseudospectrum(cov, 2)
			if err != nil {
				return nil, err
			}
			dom, err := spec.DominantAngle()
			if err != nil {
				return nil, err
			}
			if fi == 0 {
				single = append(single, math.Abs(dom-trueDeg))
			}
			sum += dom
		}
		averaged = append(averaged, math.Abs(sum/float64(len(clean))-trueDeg))
	}
	cdfS, err := dsp.NewCDF(single)
	if err != nil {
		return nil, err
	}
	cdfA, err := dsp.NewCDF(averaged)
	if err != nil {
		return nil, err
	}
	xs, ps := cdfS.Points(20)
	xa, pa := cdfA.Points(20)
	medS, err := dsp.Median(single)
	if err != nil {
		return nil, err
	}
	medA, err := dsp.Median(averaged)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{
		SinglePacket: Series{Name: "single packet", X: xs, Y: ps},
		Averaged:     Series{Name: fmt.Sprintf("averaged over %d packets", avgPackets), X: xa, Y: pa},
		MedianSingle: medS,
		MedianAvg:    medA,
	}, nil
}

// Render prints both CDFs.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 10 — CDF of MUSIC angle estimation error\n")
	fmt.Fprintf(&b, "median error: single packet %.1f°, averaged %.1f°\n", r.MedianSingle, r.MedianAvg)
	renderSeries(&b, r.SinglePacket, "error(°)", "P(X≤x)")
	renderSeries(&b, r.Averaged, "error(°)", "P(X≤x)")
	return b.String()
}

// Fig11Result is detection rate versus presence angle at fixed radius.
type Fig11Result struct {
	AnglesDeg []float64
	PerScheme map[core.Scheme][]float64
}

// Fig11 runs an angular sweep at the given radius around the receiver.
func Fig11(nAngles int, radius float64, windowPackets, windowsPerLoc int, seed int64) (*Fig11Result, error) {
	s, err := scenario.ShortLinkNearWall(seed)
	if err != nil {
		return nil, err
	}
	arc := s.AngularArc(nAngles, radius, -75, 75)
	cfg := CampaignConfig{
		Cases:              []int{1},
		Sessions:           2,
		CalibrationPackets: 150,
		WindowPackets:      windowPackets,
		WindowsPerLocation: windowsPerLoc,
		BackgroundPeople:   3,
		Seed:               seed,
	}
	c := &Campaign{}
	for sess := int64(1); sess <= int64(cfg.Sessions); sess++ {
		if err := c.runSession(s, cfg, 1, sess, arc); err != nil {
			return nil, fmt.Errorf("fig11 session %d: %w", sess, err)
		}
	}
	res := &Fig11Result{PerScheme: make(map[core.Scheme][]float64)}
	for i := 0; i < nAngles; i++ {
		res.AnglesDeg = append(res.AnglesDeg, -75+150*float64(i)/float64(nAngles-1))
	}
	for _, scheme := range Schemes {
		points, err := eval.ROC(c.SchemeSamples(scheme))
		if err != nil {
			return nil, err
		}
		bp, err := eval.BalancedPoint(points)
		if err != nil {
			return nil, err
		}
		for _, deg := range res.AnglesDeg {
			var sub []eval.Sample
			for _, smp := range c.Samples {
				if smp.Scheme != scheme {
					continue
				}
				if !smp.Positive {
					sub = append(sub, eval.Sample{Score: smp.Score, Positive: false})
					continue
				}
				if math.Abs(smp.AngleDeg-deg) < 150/float64(2*(nAngles-1))+1e-9 {
					sub = append(sub, eval.Sample{Score: smp.Score, Positive: true})
				}
			}
			dr, err := eval.DetectionRate(sub, bp.Threshold)
			if err != nil {
				return nil, err
			}
			res.PerScheme[scheme] = append(res.PerScheme[scheme], dr)
		}
	}
	return res, nil
}

// Render prints the per-angle table.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 11 — detection rate vs presence angle\n")
	fmt.Fprintf(&b, "  %10s", "angle(°)")
	for _, scheme := range Schemes {
		fmt.Fprintf(&b, "  %-28s", scheme)
	}
	b.WriteString("\n")
	for i, a := range r.AnglesDeg {
		fmt.Fprintf(&b, "  %10.0f", a)
		for _, scheme := range Schemes {
			fmt.Fprintf(&b, "  %27.1f%%", 100*r.PerScheme[scheme][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig12Result is detection rate versus monitoring window size.
type Fig12Result struct {
	PacketCounts []int
	PerScheme    map[core.Scheme][]float64
}

// Fig12 sweeps the window size M on the classroom link.
func Fig12(packetCounts []int, seed int64) (*Fig12Result, error) {
	s, err := scenario.LinkCase(2, seed)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{PacketCounts: packetCounts, PerScheme: make(map[core.Scheme][]float64)}
	for _, m := range packetCounts {
		cfg := CampaignConfig{
			Cases:              []int{2},
			Sessions:           1,
			CalibrationPackets: 150,
			WindowPackets:      m,
			WindowsPerLocation: 2,
			BackgroundPeople:   3,
			Seed:               seed + int64(m),
		}
		c := &Campaign{}
		if err := c.runSession(s, cfg, 2, 1, s.Grid3x3()); err != nil {
			return nil, fmt.Errorf("fig12 M=%d: %w", m, err)
		}
		for _, scheme := range Schemes {
			points, err := eval.ROC(c.SchemeSamples(scheme))
			if err != nil {
				return nil, err
			}
			bp, err := eval.BalancedPoint(points)
			if err != nil {
				return nil, err
			}
			dr, err := eval.DetectionRate(c.SchemeSamples(scheme), bp.Threshold)
			if err != nil {
				return nil, err
			}
			res.PerScheme[scheme] = append(res.PerScheme[scheme], dr)
		}
	}
	return res, nil
}

// Render prints the packets/detection-rate table.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 12 — detection rate vs monitoring window size\n")
	fmt.Fprintf(&b, "  %10s", "packets")
	for _, scheme := range Schemes {
		fmt.Fprintf(&b, "  %-28s", scheme)
	}
	b.WriteString("\n")
	for i, m := range r.PacketCounts {
		fmt.Fprintf(&b, "  %10d", m)
		for _, scheme := range Schemes {
			fmt.Fprintf(&b, "  %27.1f%%", 100*r.PerScheme[scheme][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
