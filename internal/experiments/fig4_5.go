package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/dsp"
	"mlink/internal/music"
	"mlink/internal/sanitize"
	"mlink/internal/scenario"
)

// Fig4Location summarizes multipath-factor temporal stability at one fixed
// presence location over thousands of packets.
type Fig4Location struct {
	Name string
	// ArgmaxChanged reports whether the subcarrier with maximal μ differed
	// between two sample packets (the paper's Fig. 4a observation).
	ArgmaxChanged bool
	// PerSubcarrierP10/50/90 are μ percentiles per subcarrier.
	PerSubcarrierP10 []float64
	PerSubcarrierP50 []float64
	PerSubcarrierP90 []float64
	// MaxSpread is the largest (p90-p10) across subcarriers; StableCount is
	// the number of subcarriers whose spread stays below 25% of the median.
	MaxSpread   float64
	StableCount int
}

// Fig4Result is the temporal-stability study at two presence locations on a
// 3 m link (Fig. 4a–c).
type Fig4Result struct {
	Locations []Fig4Location
	Packets   int
}

// Fig4 captures `packets` packets at two fixed presence locations and
// summarizes the per-subcarrier μ distributions.
func Fig4(packets int, seed int64) (*Fig4Result, error) {
	s, err := scenario.ShortLinkNearWall(seed)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	rng := rand.New(rand.NewSource(seed + 4))
	const ant = 1
	mid := s.LinkMidpoint()
	locs := []struct {
		name string
		pos  body.Body
	}{
		{"location-1 (on LOS)", body.Default(mid)},
		{"location-2 (0.6 m off LOS)", body.Default(s.AngularArc(1, 1.4, 35, 35)[0])},
	}
	res := &Fig4Result{Packets: packets}
	for li, loc := range locs {
		x, err := s.NewExtractor(int64(10 + li))
		if err != nil {
			return nil, err
		}
		frames := captureJitteredWindow(x, packets, loc.pos, 0.01, nil, rng)
		nSub := frames[0].NumSubcarriers()
		mus := make([][]float64, nSub) // per subcarrier over time
		var first, later []float64
		for fi, f := range frames {
			mu, err := core.MultipathFactors(f.CSI[ant], s.Grid)
			if err != nil {
				return nil, err
			}
			if fi == 0 {
				first = mu
			}
			if fi == 199 {
				later = mu
			}
			for k, v := range mu {
				mus[k] = append(mus[k], v)
			}
		}
		out := Fig4Location{Name: loc.name}
		if first != nil && later != nil {
			a1, err := dsp.ArgMax(first)
			if err != nil {
				return nil, err
			}
			a2, err := dsp.ArgMax(later)
			if err != nil {
				return nil, err
			}
			out.ArgmaxChanged = a1 != a2
		}
		for k := 0; k < nSub; k++ {
			p10, err := dsp.Percentile(mus[k], 10)
			if err != nil {
				return nil, err
			}
			p50, err := dsp.Percentile(mus[k], 50)
			if err != nil {
				return nil, err
			}
			p90, err := dsp.Percentile(mus[k], 90)
			if err != nil {
				return nil, err
			}
			out.PerSubcarrierP10 = append(out.PerSubcarrierP10, p10)
			out.PerSubcarrierP50 = append(out.PerSubcarrierP50, p50)
			out.PerSubcarrierP90 = append(out.PerSubcarrierP90, p90)
			spread := p90 - p10
			if spread > out.MaxSpread {
				out.MaxSpread = spread
			}
			if p50 > 0 && spread < 0.25*p50 {
				out.StableCount++
			}
		}
		res.Locations = append(res.Locations, out)
	}
	return res, nil
}

// Render prints per-location μ stability tables.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4 — temporal stability of multipath factor (%d packets/location)\n", r.Packets)
	for _, loc := range r.Locations {
		fmt.Fprintf(&b, "%s: argmax-subcarrier changed between packets: %v, max p90-p10 spread %.3f, stable subcarriers %d/%d\n",
			loc.Name, loc.ArgmaxChanged, loc.MaxSpread, loc.StableCount, len(loc.PerSubcarrierP50))
		fmt.Fprintf(&b, "  %10s  %8s  %8s  %8s\n", "subcarrier", "p10", "median", "p90")
		for k := range loc.PerSubcarrierP50 {
			fmt.Fprintf(&b, "  %10d  %8.3f  %8.3f  %8.3f\n",
				k+1, loc.PerSubcarrierP10[k], loc.PerSubcarrierP50[k], loc.PerSubcarrierP90[k])
		}
	}
	return b.String()
}

// Fig5bResult is the static MUSIC pseudospectrum of the 3 m link near a
// concrete wall, with its peaks.
type Fig5bResult struct {
	Spectrum Series
	Peaks    []music.Peak
	// TrueLOSDeg and TrueWallDeg are the geometric arrival angles of the
	// LOS and the strongest wall reflection.
	TrueLOSDeg  float64
	TrueWallDeg float64
}

// Fig5b computes the angular pseudospectrum of the empty short link.
func Fig5b(packets int, seed int64) (*Fig5bResult, error) {
	s, err := scenario.ShortLinkNearWall(seed)
	if err != nil {
		return nil, fmt.Errorf("fig5b: %w", err)
	}
	x, err := s.NewExtractor(5)
	if err != nil {
		return nil, err
	}
	frames := captureWindow(x, packets, nil, nil)
	clean, err := sanitize.Frames(frames, s.Grid.Indices)
	if err != nil {
		return nil, err
	}
	cov, err := music.Covariance(clean, nil)
	if err != nil {
		return nil, err
	}
	est, err := music.NewEstimator(s.Env.RX.Offsets(), 299792458.0/s.Grid.Center)
	if err != nil {
		return nil, err
	}
	spec, err := est.Pseudospectrum(cov, 2)
	if err != nil {
		return nil, err
	}
	norm := spec.Normalized()

	res := &Fig5bResult{
		Spectrum: Series{Name: "static pseudospectrum", X: norm.AnglesDeg, Y: norm.Power},
		Peaks:    norm.Peaks(3),
	}
	// Ground-truth angles from the ray tracer.
	angles, amps := s.Env.TrueAoAs(s.Grid.Center)
	if len(angles) > 0 {
		// Strongest ray = LOS; strongest non-LOS = wall path.
		li, err := dsp.ArgMax(amps)
		if err != nil {
			return nil, err
		}
		res.TrueLOSDeg = angles[li] * 180 / 3.141592653589793
		bestAmp := -1.0
		for i := range angles {
			if i == li {
				continue
			}
			if amps[i] > bestAmp {
				bestAmp = amps[i]
				res.TrueWallDeg = angles[i] * 180 / 3.141592653589793
			}
		}
	}
	return res, nil
}

// Render prints the pseudospectrum and its peaks.
func (r *Fig5bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5b — MUSIC pseudospectrum, 3-antenna array, link near concrete wall\n")
	fmt.Fprintf(&b, "true LOS angle %.1f°, true wall-reflection angle %.1f°\n", r.TrueLOSDeg, r.TrueWallDeg)
	for _, p := range r.Peaks {
		fmt.Fprintf(&b, "peak at %.1f° (power %.3f)\n", p.AngleDeg, p.Power)
	}
	step := len(r.Spectrum.X) / 37
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(&b, "  %8s  %10s\n", "angle(°)", "power")
	for i := 0; i < len(r.Spectrum.X); i += step {
		fmt.Fprintf(&b, "  %8.0f  %10.4f\n", r.Spectrum.X[i], r.Spectrum.Y[i])
	}
	return b.String()
}

// Fig5cResult maps presence angle to mean absolute subcarrier RSS change.
type Fig5cResult struct {
	PerAngle Series
	// PeakAngleDeg is the angle with the largest mean |ΔRSS| (expected near
	// the LOS direction, 0°).
	PeakAngleDeg float64
}

// Fig5c measures RSS change for presence locations on an arc around the
// receiver (16 locations, -90°…90°, radius 1 m).
func Fig5c(nLocations, packetsPerLocation int, seed int64) (*Fig5cResult, error) {
	s, err := scenario.ShortLinkNearWall(seed)
	if err != nil {
		return nil, fmt.Errorf("fig5c: %w", err)
	}
	x, err := s.NewExtractor(6)
	if err != nil {
		return nil, err
	}
	nAnt := 3
	cal := make([][]float64, nAnt)
	calFrames := captureWindow(x, 200, nil, nil)
	for ant := 0; ant < nAnt; ant++ {
		cal[ant] = meanRSSPerSubcarrier(calFrames, ant)
	}
	arc := s.AngularArc(nLocations, 1.0, -90, 90)
	res := &Fig5cResult{PerAngle: Series{Name: "mean |ΔRSS| by angle"}}
	bestVal := -1.0
	for i, pos := range arc {
		deg := -90 + 180*float64(i)/float64(nLocations-1)
		target := body.Default(pos)
		window := captureWindow(x, packetsPerLocation, &target, nil)
		var acc, count float64
		for ant := 0; ant < nAnt; ant++ {
			mon := meanRSSPerSubcarrier(window, ant)
			for k := range mon {
				d := mon[k] - cal[ant][k]
				if d < 0 {
					d = -d
				}
				acc += d
				count++
			}
		}
		mean := acc / count
		res.PerAngle.X = append(res.PerAngle.X, deg)
		res.PerAngle.Y = append(res.PerAngle.Y, mean)
		if mean > bestVal {
			bestVal = mean
			res.PeakAngleDeg = deg
		}
	}
	return res, nil
}

// Render prints the angle/ΔRSS table.
func (r *Fig5cResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5c — RSS change vs presence angle (1 m radius arc)\n")
	fmt.Fprintf(&b, "peak impact at %.0f°\n", r.PeakAngleDeg)
	renderSeries(&b, r.PerAngle, "angle(°)", "mean |ΔRSS| (dB)")
	return b.String()
}
