package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

// Series is a named (x, y) sequence — one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// renderSeries prints aligned x/y columns.
func renderSeries(b *strings.Builder, s Series, xLabel, yLabel string) {
	fmt.Fprintf(b, "%s\n", s.Name)
	fmt.Fprintf(b, "  %14s  %14s\n", xLabel, yLabel)
	for i := range s.X {
		fmt.Fprintf(b, "  %14.4f  %14.4f\n", s.X[i], s.Y[i])
	}
}

// captureSeq drives n captures, building each packet's bodies with next.
// With a pool, frames are drawn from it via the allocation-free CaptureInto
// path and must be handed back with recycleWindow once scored; with a nil
// pool each capture allocates a fresh frame. All window-capture helpers
// funnel through here so the order-sensitive body assembly (background step,
// then jitter draw) has exactly one implementation.
func captureSeq(x *csi.Extractor, pool *csi.FramePool, n int, next func() []body.Body) ([]*csi.Frame, error) {
	frames := make([]*csi.Frame, 0, n)
	for i := 0; i < n; i++ {
		bodies := next()
		if pool == nil {
			frames = append(frames, x.Capture(bodies))
			continue
		}
		f := pool.Get()
		if err := x.CaptureInto(f, bodies); err != nil {
			pool.Put(f)
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}

// staticBodies builds per-packet body sets: the stepped background plus an
// optional static target.
func staticBodies(bg *scenario.Background, target *body.Body) func() []body.Body {
	return func() []body.Body {
		var bodies []body.Body
		if bg != nil {
			bodies = bg.Step()
		}
		if target != nil {
			bodies = append(bodies, *target)
		}
		return bodies
	}
}

// jitteredBodies is staticBodies with per-packet position jitter on the
// target (people are never perfectly static, which is what makes
// packet-averaged AoA estimation work — §V-B3). The background steps before
// the jitter normals are drawn, matching the historical variate order.
func jitteredBodies(bg *scenario.Background, target body.Body, jitter float64, rng *rand.Rand) func() []body.Body {
	base := target.Position
	return func() []body.Body {
		var bodies []body.Body
		if bg != nil {
			bodies = bg.Step()
		}
		t := target
		t.Position = geom.Point{
			X: base.X + rng.NormFloat64()*jitter,
			Y: base.Y + rng.NormFloat64()*jitter,
		}
		return append(bodies, t)
	}
}

// captureWindow captures n packets with an optional static target plus
// stepping background dynamics.
func captureWindow(x *csi.Extractor, n int, target *body.Body, bg *scenario.Background) []*csi.Frame {
	frames, _ := captureSeq(x, nil, n, staticBodies(bg, target)) // nil pool: cannot fail
	return frames
}

// captureJitteredWindow is captureWindow with per-packet target jitter.
func captureJitteredWindow(x *csi.Extractor, n int, target body.Body, jitter float64, bg *scenario.Background, rng *rand.Rand) []*csi.Frame {
	frames, _ := captureSeq(x, nil, n, jitteredBodies(bg, target, jitter, rng)) // nil pool: cannot fail
	return frames
}

// capturePooledWindow is captureWindow on pooled frames — the campaign
// drivers' hot loop.
func capturePooledWindow(x *csi.Extractor, pool *csi.FramePool, n int, target *body.Body, bg *scenario.Background) ([]*csi.Frame, error) {
	return captureSeq(x, pool, n, staticBodies(bg, target))
}

// capturePooledJitteredWindow is captureJitteredWindow on pooled frames.
func capturePooledJitteredWindow(x *csi.Extractor, pool *csi.FramePool, n int, target body.Body, jitter float64, bg *scenario.Background, rng *rand.Rand) ([]*csi.Frame, error) {
	return captureSeq(x, pool, n, jitteredBodies(bg, target, jitter, rng))
}

// recycleWindow returns a scored window's frames to the pool.
func recycleWindow(pool *csi.FramePool, frames []*csi.Frame) {
	for _, f := range frames {
		pool.Put(f)
	}
}

// randNew returns a seeded RNG (shorthand used by figure drivers).
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// bodyDefault is shorthand for a typical adult at p.
func bodyDefault(p geom.Point) body.Body { return body.Default(p) }

// meanRSSPerSubcarrier averages the per-subcarrier RSS (dB) of one antenna
// over a window.
func meanRSSPerSubcarrier(frames []*csi.Frame, antenna int) []float64 {
	if len(frames) == 0 {
		return nil
	}
	n := frames[0].NumSubcarriers()
	out := make([]float64, n)
	for _, f := range frames {
		for k, v := range f.CSI[antenna] {
			re, im := real(v), imag(v)
			p := re*re + im*im
			if p > 0 {
				out[k] += 10 * log10(p)
			}
		}
	}
	for k := range out {
		out[k] /= float64(len(frames))
	}
	return out
}
