package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/scenario"
)

// Series is a named (x, y) sequence — one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// renderSeries prints aligned x/y columns.
func renderSeries(b *strings.Builder, s Series, xLabel, yLabel string) {
	fmt.Fprintf(b, "%s\n", s.Name)
	fmt.Fprintf(b, "  %14s  %14s\n", xLabel, yLabel)
	for i := range s.X {
		fmt.Fprintf(b, "  %14.4f  %14.4f\n", s.X[i], s.Y[i])
	}
}

// captureWindow captures n packets with an optional static target plus
// stepping background dynamics.
func captureWindow(x *csi.Extractor, n int, target *body.Body, bg *scenario.Background) []*csi.Frame {
	frames := make([]*csi.Frame, 0, n)
	for i := 0; i < n; i++ {
		var bodies []body.Body
		if bg != nil {
			bodies = bg.Step()
		}
		if target != nil {
			bodies = append(bodies, *target)
		}
		frames = append(frames, x.Capture(bodies))
	}
	return frames
}

// captureJitteredWindow is captureWindow with per-packet position jitter on
// the target (people are never perfectly static, which is what makes
// packet-averaged AoA estimation work — §V-B3).
func captureJitteredWindow(x *csi.Extractor, n int, target body.Body, jitter float64, bg *scenario.Background, rng *rand.Rand) []*csi.Frame {
	frames := make([]*csi.Frame, 0, n)
	base := target.Position
	for i := 0; i < n; i++ {
		var bodies []body.Body
		if bg != nil {
			bodies = bg.Step()
		}
		t := target
		t.Position = geom.Point{
			X: base.X + rng.NormFloat64()*jitter,
			Y: base.Y + rng.NormFloat64()*jitter,
		}
		bodies = append(bodies, t)
		frames = append(frames, x.Capture(bodies))
	}
	return frames
}

// randNew returns a seeded RNG (shorthand used by figure drivers).
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// bodyDefault is shorthand for a typical adult at p.
func bodyDefault(p geom.Point) body.Body { return body.Default(p) }

// meanRSSPerSubcarrier averages the per-subcarrier RSS (dB) of one antenna
// over a window.
func meanRSSPerSubcarrier(frames []*csi.Frame, antenna int) []float64 {
	if len(frames) == 0 {
		return nil
	}
	n := frames[0].NumSubcarriers()
	out := make([]float64, n)
	for _, f := range frames {
		for k, v := range f.CSI[antenna] {
			re, im := real(v), imag(v)
			p := re*re + im*im
			if p > 0 {
				out[k] += 10 * log10(p)
			}
		}
	}
	for k := range out {
		out[k] /= float64(len(frames))
	}
	return out
}
