package experiments

import (
	"strings"
	"testing"

	"mlink/internal/core"
)

// smallCampaign runs a reduced-size campaign once per test binary.
var smallCampaignCache *Campaign

func smallCampaign(t *testing.T) *Campaign {
	t.Helper()
	if smallCampaignCache != nil {
		return smallCampaignCache
	}
	cfg := CampaignConfig{
		Cases:              []int{1, 2, 3, 4, 5},
		Sessions:           1,
		CalibrationPackets: 100,
		WindowPackets:      20,
		WindowsPerLocation: 1,
		BackgroundPeople:   3,
		Seed:               7,
	}
	c, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	smallCampaignCache = c
	return c
}

func TestRunCampaignShape(t *testing.T) {
	c := smallCampaign(t)
	// 5 cases × 1 session × (9 locations × 1 window × 2 classes) × 3 schemes.
	want := 5 * 1 * (9*1 + 9*1) * 3
	if len(c.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(c.Samples), want)
	}
	for _, scheme := range Schemes {
		samples := c.SchemeSamples(scheme)
		var pos, neg int
		for _, s := range samples {
			if s.Positive {
				pos++
			} else {
				neg++
			}
			if s.Score < 0 {
				t.Fatalf("negative score %v", s.Score)
			}
		}
		if pos != neg {
			t.Fatalf("%v: unbalanced classes %d/%d", scheme, pos, neg)
		}
	}
}

func TestRunCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(CampaignConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestFig7OrderingMatchesPaper(t *testing.T) {
	c := smallCampaign(t)
	roc, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(roc.PerScheme) != 3 {
		t.Fatalf("schemes = %d", len(roc.PerScheme))
	}
	byScheme := map[core.Scheme]SchemeROC{}
	for _, s := range roc.PerScheme {
		byScheme[s.Scheme] = s
	}
	base := byScheme[core.SchemeBaseline]
	sub := byScheme[core.SchemeSubcarrier]
	path := byScheme[core.SchemeSubcarrierPath]
	t.Logf("AUC: baseline %.3f, subcarrier %.3f, subcarrier+path %.3f", base.AUC, sub.AUC, path.AUC)
	t.Logf("balanced: baseline %.1f%%/%.1f%%, subcarrier %.1f%%/%.1f%%, path %.1f%%/%.1f%%",
		100*base.Balanced.TPR, 100*base.Balanced.FPR,
		100*sub.Balanced.TPR, 100*sub.Balanced.FPR,
		100*path.Balanced.TPR, 100*path.Balanced.FPR)
	// The paper's headline ordering, asserted within the sampling noise of
	// this reduced smoke campaign (±0.05 AUC at ~45 samples/class; the
	// full-size bench in bench_test.go exercises the paper-scale campaign).
	if sub.AUC < base.AUC-0.05 {
		t.Errorf("subcarrier weighting (%.3f) clearly below baseline (%.3f)", sub.AUC, base.AUC)
	}
	if path.AUC <= base.AUC {
		t.Errorf("path weighting (%.3f) did not beat baseline (%.3f)", path.AUC, base.AUC)
	}
	if path.AUC <= sub.AUC {
		t.Errorf("path weighting (%.3f) did not beat subcarrier weighting (%.3f)", path.AUC, sub.AUC)
	}
	// Balanced detection accuracy must be materially above chance.
	if sub.Balanced.TPR < 0.65 {
		t.Errorf("subcarrier balanced TPR = %.2f, want ≥0.65", sub.Balanced.TPR)
	}
	if path.Balanced.TPR < 0.8 {
		t.Errorf("path balanced TPR = %.2f, want ≥0.8", path.Balanced.TPR)
	}
	if out := roc.Render(); !strings.Contains(out, "Fig. 7") {
		t.Fatal("render missing header")
	}
}

func TestFig8PerCase(t *testing.T) {
	c := smallCampaign(t)
	roc, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(c, roc, []int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes {
		rates := f8.PerScheme[scheme]
		if len(rates) != 5 {
			t.Fatalf("%v rates = %d", scheme, len(rates))
		}
		for i, r := range rates {
			if r < 0 || r > 1 {
				t.Fatalf("%v case %d rate %v", scheme, i+1, r)
			}
		}
	}
	if out := f8.Render(); !strings.Contains(out, "case") {
		t.Fatal("render broken")
	}
}
