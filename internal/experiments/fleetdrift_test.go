package experiments

import "testing"

// TestFleetDriftDisambiguation is the fleet layer's acceptance experiment:
// under a correlated ambient event (gain walk + AGC re-lock step applied to
// every link of a 5-link site) over a 10× calibration-length empty run, the
// coordinator must attribute the shift to the environment and recover
// automatically — quarantines cleared, baselines relocked, staggered
// recalibration dispatched — holding the site false-alarm rate at ≤5%,
// while per-link-only adaptation writes off at least half the fleet as
// needing recalibration on the very same stream. A person stepping onto one
// link afterwards must still be detected and must NOT trigger any fleet
// recalibration (localized perturbation ≠ ambient drift).
func TestFleetDriftDisambiguation(t *testing.T) {
	for _, seed := range []int64{1, 5, 9} {
		res, err := RunFleetDrift(FleetDriftConfig{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		t.Logf("seed %d:\n%s", seed, res.Render())

		fl := res.Fleet
		if fl.EmptyTicks == 0 {
			t.Fatalf("seed %d: fleet arm fused no verdicts", seed)
		}
		if fl.FAR > 0.05 {
			t.Errorf("seed %d: fleet site FAR %.1f%% > 5%%", seed, 100*fl.FAR)
		}
		if fl.Quarantined != 0 {
			t.Errorf("seed %d: fleet arm ends with %d quarantined links; coordinator should have cleared them", seed, fl.Quarantined)
		}
		if fl.Relocks == 0 {
			t.Errorf("seed %d: fleet arm never relocked a baseline", seed)
		}
		if fl.RecalsDispatched == 0 {
			t.Errorf("seed %d: fleet arm never dispatched a recalibration", seed)
		}

		// Same stream, per-link adaptation only: the correlated step reads
		// as a local change on every link, so at least half the fleet ends
		// up written off.
		if min := (res.Config.Links + 1) / 2; res.PerLink.Quarantined < min {
			t.Errorf("seed %d: per-link arm quarantined %d links, want ≥%d", seed, res.PerLink.Quarantined, min)
		}

		// The person on one link is a localized perturbation: detected, and
		// never answered with a fleet recalibration.
		if fl.PersonTicks == 0 || fl.PersonAlarms < fl.PersonTicks/2 {
			t.Errorf("seed %d: person detected in only %d/%d fused ticks", seed, fl.PersonAlarms, fl.PersonTicks)
		}
		if fl.RecalsDuringPerson != 0 {
			t.Errorf("seed %d: %d recalibrations dispatched during the person visit", seed, fl.RecalsDuringPerson)
		}

		// The comparison must actually show the failure modes it claims:
		// frozen profiles false-alarm through the event.
		if res.Frozen.FAR < 0.3 {
			t.Errorf("seed %d: frozen arm FAR %.1f%% suspiciously low — did the ambient preset apply?", seed, 100*res.Frozen.FAR)
		}
	}
}
