package experiments

import (
	"context"
	"fmt"
	"strings"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/engine"
	"mlink/internal/fleet"
	"mlink/internal/scenario"
)

// FleetDriftConfig sizes the frozen vs per-link vs fleet drift comparison.
type FleetDriftConfig struct {
	// Links is the site size (default 5, cycling the Fig. 6 link cases).
	Links int
	// Scheme is the detection variant (default SchemeSubcarrier).
	Scheme core.Scheme
	// Preset is the correlated site-wide drift (zero value: AmbientDrift —
	// a 2 dB/min walk with a 6 dB AGC re-lock step one third into the run —
	// applied identically to every link).
	Preset scenario.DriftPreset
	// Fusion is the site fusion policy (nil = KOfN{K: 1}, so any alarming
	// link trips the site — the sharpest view of both failure modes: a
	// frozen or quarantined fleet alarms constantly, and a single-link
	// person is never masked by fleet-level weighting).
	Fusion engine.FusionPolicy
	// CalibrationPackets is N (default 300). The site-level false-alarm
	// budget is tighter than a single link's — with 1-of-n fusion every
	// link's tail contributes — so the fleet experiment doubles the
	// paper's 150-packet calibration to get a 12-window (rather than
	// 6-window) null sample behind each threshold.
	CalibrationPackets int
	// ThresholdMargin inflates each link's calibrated threshold (default
	// 3.0). The single-link experiments use the paper's 1.3, but a 5-link
	// 1-of-n site multiplies every link's false-alarm tail by the fleet
	// size while the calibration holdout (a few seconds) under-samples the
	// receiver's multi-second gain wander; the wider margin buys the
	// headroom, and an on-link person still scores several times past it.
	ThresholdMargin float64
	// MonitorMultiple sets the empty monitoring length as a multiple of the
	// calibration length (default 10 — the acceptance horizon).
	MonitorMultiple int
	// WindowPackets is M (default 25).
	WindowPackets int
	// PersonLink is the 1-based link a person steps onto after the empty
	// run (default 1); PersonWindows is for how many windows (default 6).
	PersonLink, PersonWindows int
	// Policy is the per-link adaptation policy (zero value = defaults).
	Policy adapt.Policy
	// Fleet is the coordinator configuration (zero value = defaults).
	Fleet fleet.Config
	// Seed drives the simulation.
	Seed int64
}

func (c FleetDriftConfig) withDefaults() FleetDriftConfig {
	if c.Links <= 0 {
		c.Links = 5
	}
	if c.Scheme == 0 {
		c.Scheme = core.SchemeSubcarrier
	}
	if c.CalibrationPackets <= 0 {
		c.CalibrationPackets = 300
	}
	if c.ThresholdMargin <= 0 {
		c.ThresholdMargin = 3.0
	}
	if c.MonitorMultiple <= 0 {
		c.MonitorMultiple = 10
	}
	if c.WindowPackets <= 0 {
		c.WindowPackets = 25
	}
	if c.PersonLink <= 0 {
		c.PersonLink = 1
	}
	if c.PersonWindows <= 0 {
		c.PersonWindows = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Preset.Kind == 0 {
		// The step lands a third into the monitoring run: late enough that
		// every adaptive arm has settled, early enough that two thirds of
		// the horizon exercises the recovery. 6 dB is a typical AGC
		// re-lock quantum — far past every link's jump discriminator, so
		// per-link adaptation latches critical exactly as designed.
		windows := c.MonitorMultiple * c.CalibrationPackets / c.WindowPackets
		stepAt := 2*c.CalibrationPackets + (windows/3)*c.WindowPackets
		c.Preset = scenario.AmbientDrift(2, 6, stepAt)
	}
	if c.Fusion == nil {
		c.Fusion = engine.KOfN{K: 1}
	}
	return c
}

// FleetArm is one adaptation mode's outcome on the shared ambient stream.
type FleetArm struct {
	// Name labels the arm ("frozen", "per-link", "fleet").
	Name string
	// EmptyTicks and EmptyAlarms count site-verdict evaluations during the
	// empty monitoring run and how many read Present — every one a false
	// alarm. FAR is their ratio.
	EmptyTicks, EmptyAlarms int
	FAR                     float64
	// Quarantined counts links flagged NeedsRecalibration at the end of the
	// empty run — the sticky state only recalibration (or fleet-attributed
	// ambient relock) clears.
	Quarantined int
	// PersonTicks and PersonAlarms cover the occupied tail: a person parked
	// on one link, which the site must still detect.
	PersonTicks, PersonAlarms int
	// Relocks, RecalsDispatched and RecalsDuringPerson are the fleet
	// coordinator's action counts (zero for the other arms).
	Relocks, RecalsDispatched, RecalsDuringPerson uint64
	// FinalState is the coordinator's final classification (fleet arm).
	FinalState fleet.State
}

// FleetDriftResult compares the three adaptation modes on one correlated
// ambient-drift stream — the experiment behind the fleet layer's claim: only
// cross-link disambiguation survives a site-wide event without either
// false-alarming through it (frozen), or writing off the fleet as
// human-perturbed and quarantining it link by link (per-link).
type FleetDriftResult struct {
	Config                 FleetDriftConfig
	Frozen, PerLink, Fleet FleetArm
}

type fleetArmMode int

const (
	armFrozen fleetArmMode = iota
	armPerLink
	armFleet
)

// RunFleetDrift runs the three arms over identically seeded sites.
func RunFleetDrift(cfg FleetDriftConfig) (*FleetDriftResult, error) {
	cfg = cfg.withDefaults()
	res := &FleetDriftResult{Config: cfg}
	var err error
	if res.Frozen, err = runFleetArm(cfg, armFrozen); err != nil {
		return nil, fmt.Errorf("frozen arm: %w", err)
	}
	if res.PerLink, err = runFleetArm(cfg, armPerLink); err != nil {
		return nil, fmt.Errorf("per-link arm: %w", err)
	}
	if res.Fleet, err = runFleetArm(cfg, armFleet); err != nil {
		return nil, fmt.Errorf("fleet arm: %w", err)
	}
	return res, nil
}

func runFleetArm(cfg FleetDriftConfig, mode fleetArmMode) (FleetArm, error) {
	arm := FleetArm{Name: [...]string{"frozen", "per-link", "fleet"}[mode]}

	var (
		eng     *engine.Engine
		coord   *fleet.Coordinator
		verdict engine.SiteVerdict
		decided int
		ticks   *int
		alarms  *int
	)
	// Every decision triggers one site evaluation for the false-alarm
	// accounting; the coordinator observes once per fused round (every
	// Links-th decision), the cadence its tick windows are sized for. With
	// one worker the whole arm runs on a single shard goroutine, so the
	// callback needs no locking and the run is deterministic.
	onDecision := func(string, core.Decision) {
		if err := eng.VerdictInto(&verdict); err != nil {
			return
		}
		*ticks++
		if verdict.Present {
			*alarms++
		}
		decided++
		if coord != nil && decided%cfg.Links == 0 {
			coord.Observe(&verdict)
		}
	}
	engCfg := engine.Config{
		Workers:         1,
		WindowSize:      cfg.WindowPackets,
		ThresholdMargin: cfg.ThresholdMargin,
		Fusion:          cfg.Fusion,
		OnDecision:      onDecision,
	}
	if mode != armFrozen {
		pol := cfg.Policy
		engCfg.Adaptation = &pol
	}
	eng = engine.New(engCfg)
	if mode == armFleet {
		coord = fleet.New(cfg.Fleet, eng)
	}

	streams := make([]*scenario.DriftStream, 0, cfg.Links)
	var personMid body.Body
	for i := 0; i < cfg.Links; i++ {
		caseN := i%scenario.NumLinkCases + 1
		s, err := scenario.LinkCase(caseN, cfg.Seed+int64(i))
		if err != nil {
			return arm, err
		}
		stream, err := s.NewDriftStream(cfg.Preset, 1)
		if err != nil {
			return arm, err
		}
		id := fmt.Sprintf("case%d-%d", caseN, i+1)
		detCfg := core.DefaultConfig(s.Grid, cfg.Scheme, s.Env.RX.Offsets())
		if err := eng.AddLink(id, detCfg, stream); err != nil {
			return arm, err
		}
		streams = append(streams, stream)
		if i == cfg.PersonLink-1 {
			personMid = body.Default(s.LinkMidpoint())
		}
	}

	ctx := context.Background()
	if err := eng.Calibrate(ctx, cfg.CalibrationPackets); err != nil {
		return arm, err
	}

	// Empty monitoring run: the ambient event lands mid-run.
	ticks, alarms = &arm.EmptyTicks, &arm.EmptyAlarms
	emptyWindows := cfg.MonitorMultiple * cfg.CalibrationPackets / cfg.WindowPackets
	if err := eng.Run(ctx, emptyWindows); err != nil {
		return arm, err
	}
	if arm.EmptyTicks > 0 {
		arm.FAR = float64(arm.EmptyAlarms) / float64(arm.EmptyTicks)
	}
	for _, lm := range eng.Metrics().PerLink {
		if lm.Health.NeedsRecalibration {
			arm.Quarantined++
		}
	}
	var recalsBeforePerson uint64
	if coord != nil {
		rep := coord.Report()
		arm.Relocks = rep.Relocks
		recalsBeforePerson = rep.RecalsDispatched
	}

	// Occupied tail: a person parks on one link. The site must still
	// detect them, and the fleet must classify the perturbation as
	// localized — never as a reason to recalibrate.
	streams[cfg.PersonLink-1].SetBodies([]body.Body{personMid})
	ticks, alarms = &arm.PersonTicks, &arm.PersonAlarms
	if err := eng.Run(ctx, cfg.PersonWindows); err != nil {
		return arm, err
	}
	if coord != nil {
		rep := coord.Report()
		arm.RecalsDispatched = rep.RecalsDispatched
		arm.RecalsDuringPerson = rep.RecalsDispatched - recalsBeforePerson
		arm.FinalState = rep.State
	}
	return arm, nil
}

// Render prints the comparison table.
func (r *FleetDriftResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet drift disambiguation — %s across %d links (%s), %d×%d-packet horizon\n",
		r.Config.Preset.Kind, r.Config.Links, r.Config.Scheme,
		r.Config.MonitorMultiple, r.Config.CalibrationPackets)
	fmt.Fprintf(&b, "  ambient preset: %.1f dB/min walk + %.1f dB step at packet %d\n",
		r.Config.Preset.GainDBPerMinute, r.Config.Preset.StepDB, r.Config.Preset.StepAtPacket)
	fmt.Fprintf(&b, "  %-9s  %10s  %8s  %12s  %11s  %8s  %7s\n",
		"mode", "site FAR", "alarms", "quarantined", "person det.", "relocks", "recals")
	for _, arm := range []FleetArm{r.Frozen, r.PerLink, r.Fleet} {
		fmt.Fprintf(&b, "  %-9s  %9.1f%%  %8d  %7d/%d  %8d/%d  %8d  %7d\n",
			arm.Name, 100*arm.FAR, arm.EmptyAlarms,
			arm.Quarantined, r.Config.Links,
			arm.PersonAlarms, arm.PersonTicks,
			arm.Relocks, arm.RecalsDispatched)
	}
	fmt.Fprintf(&b, "  fleet classification at end: %s (recals dispatched during person visit: %d)\n",
		r.Fleet.FinalState, r.Fleet.RecalsDuringPerson)
	return b.String()
}
