// Package experiments contains one driver per figure of the paper's
// analysis (§III) and evaluation (§V) sections. Each driver generates its
// workload with internal/scenario, runs the pipeline under test, and
// returns a result struct that renders the same rows/series the paper
// plots: Fig. 2–4 characterize RSS change and the multipath factor, Fig. 5
// the MUSIC angular view, and Fig. 7–12 the detection performance of the
// three schemes across links, ranges, angles and packet budgets.
//
// Beyond the paper's figures, RunDriftAdaptation compares a frozen and an
// adaptive detector over the scenario drift presets (gain walk, CFO walk,
// furniture move) — the table behind the repo's adaptation claim.
//
// cmd/mlink-exp prints the full tables; bench_test.go reports each figure's
// headline quantity via go test -bench.
package experiments
