// Package engine is the concurrent multi-link monitoring engine: it manages
// a fleet of WiFi links end-to-end the way the paper's deployment story
// (§IV–§V) prescribes — assess and calibrate each link's static profile,
// then monitor every link continuously and fuse the per-link verdicts into
// one site-level presence decision.
//
// Calibration runs per link in parallel on a bounded worker pool. During
// monitoring, one assembler goroutine per link slices the link's frame
// stream (a csinet client, a simulated extractor, or a recorded replay)
// into fixed-size windows and feeds a shared scoring pool whose workers
// reuse per-worker core.Scratch buffers, keeping the hot path free of
// per-window allocations. Sources that implement FrameRecycler (such as
// PooledExtractorSource) get their frames back after each window is scored,
// so steady-state monitoring allocates neither frames nor windows. Per-link
// core.Decisions are fused by a pluggable FusionPolicy (k-of-n, max-score,
// quality-weighted k-of-n), and a snapshotable Metrics block tracks windows
// scored, scoring throughput, per-link mean multipath factor μ and
// adaptation health.
//
// With Config.Adaptation set, every calibrated link runs an adapt.Adapter:
// scored windows refresh the link's profile when confidently empty, the
// threshold follows the rolling null distribution, and a drift monitor
// flags links whose baseline has walked (Recalibrate rebuilds a quarantined
// link in place). The per-link health feeds WeightedKOfN fusion — each
// link votes with its characterized μ scaled by health, so a drifting or
// dead link cannot outvote healthy ones.
package engine
