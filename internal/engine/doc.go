// Package engine is the concurrent multi-link monitoring engine: it manages
// a fleet of WiFi links end-to-end the way the paper's deployment story
// (§IV–§V) prescribes — assess and calibrate each link's static profile,
// then monitor every link continuously and fuse the per-link verdicts into
// one site-level presence decision.
//
// Calibration runs per link in parallel on a bounded worker pool. During
// monitoring, links are seeded round-robin onto min(Workers, links)
// long-lived shards and rebalance from there by work stealing: each shard
// keeps its resident links in a lock-free FIFO run queue, drives them one
// window at a time, and — when its own queue runs dry because its links
// retired, starved, or were stolen — takes a link whole from a busy
// sibling's queue. A link is held by exactly one shard at a time (the
// queues hand it off atomically, together with its window slab, detector,
// adapter and journal buffer), so nothing on the score path is shared
// between shards and the steady state runs with no locks, no channel
// hand-offs and zero allocations per window (journaled runs add one brief
// mutexed append per scored window, keeping the crash log in global
// emission order) — and because each link's
// windows are scored strictly in stream order by its current holder,
// per-link decision sequences are bit-identical whatever the shard count or
// migration history. Sources that implement
// FrameRecycler (such as PooledExtractorSource) get their frames back after
// each window is scored, so steady-state monitoring allocates neither
// frames nor windows. Per-link core.Decisions are fused by a pluggable
// FusionPolicy (k-of-n, max-score, quality-weighted k-of-n); Verdict and
// Metrics (plus their reuse-friendly VerdictInto/MetricsInto/LinksInto
// variants) read atomically-published per-link snapshots, so monitoring
// dashboards can poll as fast as they like without ever blocking a scorer.
//
// With Config.Adaptation set, every calibrated link runs an adapt.Adapter:
// scored windows refresh the link's profile when confidently empty, the
// threshold follows the rolling null distribution, and a drift monitor
// flags links whose baseline has walked (Recalibrate rebuilds a quarantined
// link in place). The per-link health feeds WeightedKOfN fusion — each
// link votes with its characterized μ scaled by health, so a drifting or
// dead link cannot outvote healthy ones.
//
// Recalibration is online: while Run is active, Recalibrate (blocking) and
// RequestRecalibration (fire-and-forget, the fleet coordinator's entry
// point) post the rebuild to the link; the shard holding it claims the job
// at the link's next turn and drains its stream into a fresh calibration —
// other links never pause, the single-writer ownership of detectors and
// adapters is preserved, and the link is excluded from fusion
// (Recalibrating) until its new baseline lands. A link already retired for
// the Run (quota met, stream ended) is revived through a dedicated queue so
// late rebuilds are serviced rather than rejected. SuppressRefresh and RelockLink expose the adapter's
// fleet controls per link, and ExportLink/ImportLink serialize a link's
// full monitoring state as versioned records for fleet.Store persistence.
//
// With Config.Supervision set, every source moves behind a
// supervise.Supervisor: a per-link producer goroutine feeds a bounded SPSC
// ring the shard drains non-blockingly, so a stalled, slow, or dead source
// degrades only its own link instead of the shard-mates it used to advance
// in lockstep with. The supervisor's lifecycle (Live/Stale/Down/Recovering,
// with jittered-backoff redials and re-entry hysteresis) flows into each
// link's fusion weight, and SiteVerdict.Coverage reports how many links
// actually voted: a verdict with fewer fused links than registered ones is
// Degraded, and when no link can vote the verdict is Inconclusive — an
// explicit "site unobserved" answer, not an error and not a fabricated
// "absent".
package engine
