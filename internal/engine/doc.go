// Package engine is the concurrent multi-link monitoring engine: it manages
// a fleet of WiFi links end-to-end the way the paper's deployment story
// (§IV–§V) prescribes — assess and calibrate each link's static profile,
// then monitor every link continuously and fuse the per-link verdicts into
// one site-level presence decision.
//
// Calibration runs per link in parallel on a bounded worker pool. During
// monitoring, one assembler goroutine per link slices the link's frame
// stream (a csinet client, a simulated extractor, or a recorded replay)
// into fixed-size windows and feeds a shared scoring pool whose workers
// reuse per-worker core.Scratch buffers, keeping the hot path free of
// per-window allocations. Sources that implement FrameRecycler (such as
// PooledExtractorSource) get their frames back after each window is scored,
// so steady-state monitoring allocates neither frames nor windows. Per-link
// core.Decisions are fused by a pluggable FusionPolicy (k-of-n, max-score),
// and a snapshotable Metrics block tracks windows scored, scoring
// throughput and per-link mean multipath factor μ.
package engine
