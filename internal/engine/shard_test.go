package engine

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/scenario"
)

// recordDecisions wires an OnDecision callback that captures every link's
// decision stream in arrival order (per link, arrival order == stream order:
// shards score each link's windows sequentially).
func recordDecisions() (map[string][]core.Decision, func(string, core.Decision)) {
	var mu sync.Mutex
	byLink := make(map[string][]core.Decision)
	return byLink, func(id string, d core.Decision) {
		mu.Lock()
		byLink[id] = append(byLink[id], d)
		mu.Unlock()
	}
}

// driftFleet builds one engine whose three links run distinct drift presets
// from fixed seeds, so every source stream is fully deterministic.
func driftFleet(t *testing.T, workers int, seed int64, rec func(string, core.Decision)) *Engine {
	t.Helper()
	e := New(Config{
		Workers:    workers,
		WindowSize: 25,
		Adaptation: &adapt.Policy{},
		OnDecision: rec,
	})
	presets := []struct {
		name   string
		preset scenario.DriftPreset
	}{
		{"gain", scenario.GainWalk(12)},
		{"cfo", scenario.CFOWalk(60, 0.05)},
		{"furniture", scenario.FurnitureMove(600)},
	}
	for i, p := range presets {
		s, err := scenario.LinkCase(1+i, seed)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := s.NewDriftStream(p.preset, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(p.name, cfg, stream); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestEngineShardedMatchesSequential proves the tentpole determinism claim:
// a fleet scored across many shards produces bit-identical per-link decision
// streams to the same fleet on a single shard (the sequential reference),
// adaptation state and all — across drift presets and seeds.
func TestEngineShardedMatchesSequential(t *testing.T) {
	const windows = 8
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runs := make([]map[string][]core.Decision, 0, 2)
			for _, workers := range []int{1, 3} {
				byLink, rec := recordDecisions()
				e := driftFleet(t, workers, seed, rec)
				ctx := context.Background()
				if err := e.Calibrate(ctx, 150); err != nil {
					t.Fatal(err)
				}
				if err := e.Run(ctx, windows); err != nil {
					t.Fatal(err)
				}
				runs = append(runs, byLink)
			}
			seqRun, shardRun := runs[0], runs[1]
			if len(seqRun) != 3 || len(shardRun) != 3 {
				t.Fatalf("decision maps cover %d/%d links, want 3", len(seqRun), len(shardRun))
			}
			for id, seq := range seqRun {
				sh := shardRun[id]
				if len(seq) != windows || len(sh) != windows {
					t.Fatalf("link %s: %d sequential vs %d sharded decisions, want %d", id, len(seq), len(sh), windows)
				}
				for w := range seq {
					if seq[w] != sh[w] { // exact struct equality: bit-identical scores
						t.Errorf("link %s window %d: sequential %+v != sharded %+v", id, w, seq[w], sh[w])
					}
				}
			}
		})
	}
}

// TestEngineMatchesDetectorReference checks the engine pipeline end to end
// against a hand-rolled sequential core.Detector loop on the identical
// recorded stream: same calibration split, same windows, bit-identical
// scores. This pins the engine's frame accounting (n profile + n holdout,
// then WindowSize-sized windows in stream order) independently of the
// engine's own code paths.
func TestEngineMatchesDetectorReference(t *testing.T) {
	const (
		winSize = 25
		calN    = 50
		windows = 4
	)
	s, err := scenario.LinkCase(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
	frames := x.CaptureN(2*calN+windows*winSize, nil)

	// Reference: the documented calibration split, scored window by window.
	profile, err := core.Calibrate(cfg, frames[:calN])
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	null, err := det.SelfScores(frames[calN:2*calN], winSize, winSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.CalibrateThreshold(null, 0.95, 1.3); err != nil {
		t.Fatal(err)
	}
	want := make([]core.Decision, 0, windows)
	sc := core.NewScratch()
	for w := 0; w < windows; w++ {
		lo := 2*calN + w*winSize
		dec, err := det.DetectScratch(frames[lo:lo+winSize], sc)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, dec)
	}

	byLink, rec := recordDecisions()
	e := New(Config{Workers: 2, WindowSize: winSize, OnDecision: rec})
	if err := e.AddLink("ref", cfg, NewReplaySource(frames, false)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, calN); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ctx, windows); err != nil {
		t.Fatal(err)
	}
	got := byLink["ref"]
	if len(got) != windows {
		t.Fatalf("engine scored %d windows, want %d", len(got), windows)
	}
	for w := range want {
		if got[w] != want[w] {
			t.Errorf("window %d: engine %+v != reference %+v", w, got[w], want[w])
		}
	}
}

// TestEngineConcurrentReadersDuringRun runs an adaptive sharded fleet while
// goroutines hammer every read API — Verdict/VerdictInto, Metrics/
// MetricsInto, Links/LinksInto, adapter Health via metrics — checking
// snapshot invariants as they go. Under -race (as CI runs it) this validates
// that the lock-free published state never tears.
func TestEngineConcurrentReadersDuringRun(t *testing.T) {
	byLink, rec := recordDecisions()
	_ = byLink
	e := driftFleet(t, 2, 5, rec) // 2 shards, 3 links: one shard owns 2 links
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := e.Calibrate(ctx, 150); err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()

	var stop atomic.Bool
	var readers sync.WaitGroup
	readerErr := make(chan string, 8)
	reportErr := func(format string, args ...any) {
		select {
		case readerErr <- fmt.Sprintf(format, args...):
		default:
		}
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var v SiteVerdict
			var m Metrics
			var ids []string
			lastWindows := make(map[string]uint64)
			for !stop.Load() {
				if err := e.VerdictInto(&v); err == nil {
					if v.Total < 1 || v.Total > 3 || v.Positive > v.Total {
						reportErr("torn verdict: %+v", v)
						return
					}
					for _, d := range v.Links {
						if math.IsNaN(d.Score) {
							reportErr("NaN score in verdict for %s", d.LinkID)
							return
						}
					}
				}
				e.MetricsInto(&m)
				if m.Links != 3 || len(m.PerLink) != 3 {
					reportErr("torn metrics: %d links, %d entries", m.Links, len(m.PerLink))
					return
				}
				for _, lm := range m.PerLink {
					if lm.WindowsScored < lastWindows[lm.ID] {
						reportErr("link %s windows went backwards: %d after %d",
							lm.ID, lm.WindowsScored, lastWindows[lm.ID])
						return
					}
					lastWindows[lm.ID] = lm.WindowsScored
					if lm.WindowsScored > 0 && (math.IsNaN(lm.MeanScore) || math.IsInf(lm.MeanScore, 0)) {
						reportErr("link %s torn mean score %v", lm.ID, lm.MeanScore)
						return
					}
				}
				ids = e.LinksInto(ids)
				if len(ids) != 3 {
					reportErr("LinksInto returned %d ids", len(ids))
					return
				}
				_, _ = e.Verdict()
				_ = e.Metrics()
			}
		}()
	}

	// Let scoring and reading overlap for a while, then wind down.
	deadline := time.After(2 * time.Second)
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		select {
		case <-deadline:
			break wait
		case <-tick.C:
			if e.Metrics().WindowsScored >= 30 {
				break wait
			}
		}
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	stop.Store(true)
	readers.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if scored := e.Metrics().WindowsScored; scored == 0 {
		t.Fatal("no windows scored while readers ran")
	}
}
