package engine

import (
	"sync"
	"sync/atomic"
)

// linkQueue is a fixed-capacity single-producer/multi-consumer FIFO ring of
// links — one per shard, holding the links currently resident there. The
// owning shard pushes a link back after each window (bottom, plain store +
// publish) and takes its next link from the top; idle shards steal by taking
// from the same top with the same CAS, so "steal" and "next" are one
// operation and a stolen link simply migrates to the thief's ring. FIFO
// order keeps the shard cycling its residents round-robin — a link with
// frames always buffered can never starve its ring-mates, which both
// fairness and the quota-run termination of Run depend on.
//
// Safety: top only grows (no ABA on the take CAS), and capacity is a power
// of two strictly greater than the fleet size — a link lives in at most one
// ring at a time, so bottom-top ≤ links < capacity and the producer can
// never wrap onto a slot a consumer still races for. Go's atomics are
// sequentially consistent, and the same operations order each link's
// unsynchronized owner-partition fields (window slab, scored count, journal
// buffer, adapter/detector) between consecutive owners: whoever takes the
// link observes everything its previous owner wrote before pushing it.
type linkQueue struct {
	top    atomic.Int64
	bottom atomic.Int64
	mask   int64
	buf    []atomic.Pointer[link]
}

// reset empties the queue and (re)sizes it for a fleet of `links` links.
// Owner-free context only (Run start, under the engine mutex).
func (q *linkQueue) reset(links int) {
	n := 1
	for n < links+1 {
		n <<= 1
	}
	if len(q.buf) != n {
		q.buf = make([]atomic.Pointer[link], n)
	}
	q.mask = int64(n - 1)
	q.top.Store(0)
	q.bottom.Store(0)
}

// push appends l at the bottom. Owning shard only.
func (q *linkQueue) push(l *link) {
	b := q.bottom.Load()
	q.buf[b&q.mask].Store(l)
	q.bottom.Store(b + 1)
}

// take removes the oldest link, or returns nil when the queue is empty or
// the CAS loses to a concurrent taker. Any goroutine.
func (q *linkQueue) take() *link {
	t := q.top.Load()
	if t >= q.bottom.Load() {
		return nil
	}
	l := q.buf[t&q.mask].Load()
	if !q.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return l
}

// size reports the current occupancy. Racy by nature; used only to gate
// stealing (leave a victim its last resident link) and the idle heuristic.
func (q *linkQueue) size() int64 {
	n := q.bottom.Load() - q.top.Load()
	if n < 0 {
		return 0
	}
	return n
}

// reviveQueue holds hints that a retired link (quota met or stream ended)
// has a posted recalibration job waiting: retired links are in no ring, so
// without a revive path a recal posted after retirement would sit unserviced
// until the run ends. Hints are deduplicated through link.hinted and pushed
// by whichever side of the post/retire race sees the other (both may try);
// any shard drains them between takes. Cold path — a mutex is fine here, the
// scoring loop only ever reads the count atomically.
type reviveQueue struct {
	mu    sync.Mutex
	count atomic.Int32
	links []*link
}

// reset clears the queue for a new Run. Under the engine mutex.
func (rq *reviveQueue) reset(capacity int) {
	rq.mu.Lock()
	if cap(rq.links) < capacity {
		rq.links = make([]*link, 0, capacity)
	}
	rq.links = rq.links[:0]
	rq.count.Store(0)
	rq.mu.Unlock()
}

// push enqueues a hint for l unless one is already queued.
func (rq *reviveQueue) push(l *link) {
	if !l.hinted.CompareAndSwap(false, true) {
		return
	}
	rq.mu.Lock()
	rq.links = append(rq.links, l)
	rq.count.Store(int32(len(rq.links)))
	rq.mu.Unlock()
}

// drain appends all queued hints to dst and clears the queue.
func (rq *reviveQueue) drain(dst []*link) []*link {
	if rq.count.Load() == 0 {
		return dst
	}
	rq.mu.Lock()
	dst = append(dst, rq.links...)
	rq.links = rq.links[:0]
	rq.count.Store(0)
	rq.mu.Unlock()
	for _, l := range dst {
		l.hinted.Store(false)
	}
	return dst
}
