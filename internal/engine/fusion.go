package engine

import (
	"errors"
	"fmt"

	"mlink/internal/adapt"
	"mlink/internal/core"
)

// ErrNoDecisions is returned when fusion is attempted before any link has
// scored a window.
var ErrNoDecisions = errors.New("engine: no link decisions yet")

// ErrAllQuarantined is returned by weight-aware fusion when every link's
// vote weight is negligible — the whole fleet is quarantined or otherwise
// written off, so no meaningful site verdict exists. Callers should treat it
// as "inconclusive: recalibrate the site", never as "absent".
var ErrAllQuarantined = errors.New("engine: every link vote is negligible")

// MinFusibleWeight is the weight below which a link's vote is considered
// dead for weighted fusion. Weights this small cannot influence a verdict —
// fusing them anyway would divide two near-zero sums and report the rounding
// noise as a confident site verdict.
const MinFusibleWeight = 1e-6

// LinkDecision pairs a link ID with its latest monitoring decision plus the
// link's current quality weight and adaptation health.
type LinkDecision struct {
	LinkID string
	core.Decision
	// Weight is the link's fusion vote weight: its characterized mean
	// multipath factor μ normalized across the fleet, discounted by
	// adaptation health (1 for the best healthy link; 0 is treated as
	// "unset" and fused at uniform weight). Count-based policies (KOfN,
	// MaxScore) ignore it; WeightedKOfN votes with it.
	Weight float64
	// Health is the link's adaptation snapshot (zero value when adaptation
	// is disabled).
	Health adapt.Health
}

// Coverage reports how much of the fleet stood behind a verdict — the
// degradation view a supervised site exposes: a verdict fused from 3 of 5
// links because two collectors are down is still a verdict, but the
// operator (and the fleet coordinator) must know it rests on partial
// evidence.
type Coverage struct {
	// Links is the registered fleet size.
	Links int
	// Fused counts links whose current decision actually entered fusion.
	Fused int
	// Live/Stale/Down/Recovering count links per lifecycle state (all zero
	// when supervision is off — links then report LifecycleUnsupervised).
	Live, Stale, Down, Recovering int
	// Recalibrating counts links excluded while an online recalibration
	// rebuilds their baseline.
	Recalibrating int
}

// Degraded reports whether any registered link was left out of fusion.
func (c Coverage) Degraded() bool { return c.Fused < c.Links }

// SiteVerdict is the fused, site-level presence verdict over all monitored
// links — the deployment-level answer RASID-style systems report.
type SiteVerdict struct {
	// Present is the fused decision. Check Inconclusive first: an
	// inconclusive verdict's Present is false because nothing could vote,
	// not because the site was observed empty.
	Present bool
	// Score is the policy's fused statistic: the positive-link fraction for
	// KOfN, the maximum normalized score for MaxScore.
	Score float64
	// Positive and Total count links voting present and links fused.
	Positive, Total int
	// Policy names the fusion policy that produced the verdict.
	Policy string
	// Links holds the per-link decisions the verdict was fused from.
	Links []LinkDecision
	// Coverage summarizes link availability behind the verdict (stamped by
	// the engine; zero value when a policy's Fuse is called directly).
	Coverage Coverage
	// Inconclusive marks a dead site: every link is down, recovering,
	// recalibrating, or quarantined, so no trustworthy vote exists. The
	// answer is "inspect/recalibrate the site", never "absent".
	Inconclusive bool
}

// FusionPolicy combines per-link decisions into one site verdict.
type FusionPolicy interface {
	// Fuse returns the site verdict for a snapshot of link decisions. It
	// must return ErrNoDecisions (possibly wrapped) for an empty snapshot.
	Fuse(decisions []LinkDecision) (SiteVerdict, error)
	// String names the policy for logs and metrics.
	String() string
}

// KOfN declares the site occupied when at least K of the N fused links vote
// present. K ≤ 0 selects a strict majority (N/2+1); K > N is clamped to N
// (unanimity). A tie — exactly K positive links — is a detection: the
// threshold is inclusive.
type KOfN struct{ K int }

// kofnNames interns the common K values so Fuse, which stamps the policy
// name into every verdict, stays allocation-free on the steady-state path.
var kofnNames = [...]string{"", "1-of-n", "2-of-n", "3-of-n", "4-of-n", "5-of-n", "6-of-n", "7-of-n", "8-of-n"}

// String implements FusionPolicy.
func (p KOfN) String() string {
	if p.K <= 0 {
		return "majority"
	}
	if p.K < len(kofnNames) {
		return kofnNames[p.K]
	}
	return fmt.Sprintf("%d-of-n", p.K)
}

// Fuse implements FusionPolicy.
func (p KOfN) Fuse(decisions []LinkDecision) (SiteVerdict, error) {
	n := len(decisions)
	if n == 0 {
		return SiteVerdict{}, ErrNoDecisions
	}
	k := p.K
	if k <= 0 {
		k = n/2 + 1
	}
	if k > n {
		k = n
	}
	positive := 0
	for _, d := range decisions {
		if d.Present {
			positive++
		}
	}
	return SiteVerdict{
		Present:  positive >= k,
		Score:    float64(positive) / float64(n),
		Positive: positive,
		Total:    n,
		Policy:   p.String(),
		Links:    decisions,
	}, nil
}

// WeightedKOfN is quality-weighted k-of-n voting: every link votes with its
// LinkDecision.Weight (characterized link quality × adaptation health) and
// the site is declared occupied when the positive weight reaches the K/N
// fraction of the total weight. With all weights equal it reduces exactly
// to KOfN — k equal votes of n trip it, k−1 do not — while a drifting or
// quarantined link's discounted vote cannot outvote healthy links.
// K ≤ 0 selects a strict majority (N/2+1); K > N clamps to N.
//
// Trade-off: a person parked on exactly one link long enough to quarantine
// it (single-link ambiguity — sustained presence and a furniture step look
// identical) has their sustained vote discounted too; the early windows of
// the visit fuse at full weight and alarm, after which the link reads as
// unreliable until recalibrated. Deployments that prefer never discounting
// positive votes keep count-based KOfN.
type WeightedKOfN struct{ K int }

// weightedNames mirrors kofnNames for the weighted policy.
var weightedNames = [...]string{"", "weighted-1-of-n", "weighted-2-of-n", "weighted-3-of-n", "weighted-4-of-n",
	"weighted-5-of-n", "weighted-6-of-n", "weighted-7-of-n", "weighted-8-of-n"}

// String implements FusionPolicy.
func (p WeightedKOfN) String() string {
	if p.K <= 0 {
		return "weighted-majority"
	}
	if p.K < len(weightedNames) {
		return weightedNames[p.K]
	}
	return fmt.Sprintf("weighted-%d-of-n", p.K)
}

// Fuse implements FusionPolicy.
func (p WeightedKOfN) Fuse(decisions []LinkDecision) (SiteVerdict, error) {
	n := len(decisions)
	if n == 0 {
		return SiteVerdict{}, ErrNoDecisions
	}
	k := p.K
	if k <= 0 {
		k = n/2 + 1
	}
	if k > n {
		k = n
	}
	var totalW, positiveW float64
	positive := 0
	fused := 0
	writtenOff := 0
	for _, d := range decisions {
		if d.Health.NeedsRecalibration {
			writtenOff++
		}
		w := d.Weight
		if w <= 0 {
			// Unset weight (engine without adaptation metadata, or a
			// hand-built decision): vote uniformly.
			w = 1
		}
		if w < MinFusibleWeight {
			// A dead vote: counting it into either sum would only add
			// rounding noise to the quorum fraction.
			continue
		}
		fused++
		totalW += w
		if d.Present {
			positive++
			positiveW += w
		}
	}
	if fused == 0 || writtenOff == n {
		// Every link is quarantined (NeedsRecalibration on the whole
		// fleet) or otherwise weighted to nothing: each remaining vote
		// comes from a baseline the system itself has declared
		// untrustworthy, and fusing them anyway would launder that into a
		// confident verdict. Refuse explicitly — the answer is
		// "inconclusive: recalibrate the site", not "absent".
		return SiteVerdict{}, fmt.Errorf("all %d links quarantined or weightless: %w", n, ErrAllQuarantined)
	}
	frac := positiveW / totalW
	// The small epsilon keeps the equal-weight case exactly k-of-n despite
	// floating-point division (k/n must count as reaching the quorum).
	quorum := float64(k)/float64(n) - 1e-9
	return SiteVerdict{
		Present:  frac >= quorum,
		Score:    frac,
		Positive: positive,
		Total:    n,
		Policy:   p.String(),
		Links:    decisions,
	}, nil
}

// MaxScore declares the site occupied when any link's score clears its own
// threshold, and reports the fleet's maximum threshold-normalized score —
// the most sensitive-link view, useful when a person can only perturb one
// link at a time.
type MaxScore struct{}

// String implements FusionPolicy.
func (MaxScore) String() string { return "max-score" }

// Fuse implements FusionPolicy.
func (MaxScore) Fuse(decisions []LinkDecision) (SiteVerdict, error) {
	n := len(decisions)
	if n == 0 {
		return SiteVerdict{}, ErrNoDecisions
	}
	var best float64
	positive := 0
	present := false
	for i, d := range decisions {
		r := d.Score
		if d.Threshold > 0 {
			r = d.Score / d.Threshold
		}
		if i == 0 || r > best {
			best = r
		}
		if d.Present {
			positive++
			present = true
		}
	}
	return SiteVerdict{
		Present:  present,
		Score:    best,
		Positive: positive,
		Total:    n,
		Policy:   MaxScore{}.String(),
		Links:    decisions,
	}, nil
}
