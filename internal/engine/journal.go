package engine

// JournalWriter receives the fleet's stream of records during Run. The
// engine uses one writer per sink and serializes appends to it (see
// Engine.jmu), so the writer sees records in global emission order from one
// caller at a time — the order a sink can persist wholesale and still offer
// cut-consistent crash recovery (any durable prefix is a state the fleet
// actually passed through). The implementation therefore needs no internal
// lock against the engine; it only coordinates with its own sink's drain
// side.
//
// The record slices are only valid for the duration of the call — the link
// reuses its buffer for the next record — so an implementation that retains
// them must copy.
type JournalWriter interface {
	// AppendFull records a complete ExportLink-format snapshot of a link.
	// Emitted at the first scored window after (re)calibration, import, or
	// journal attach — the base every subsequent delta applies against.
	AppendFull(linkID string, record []byte)
	// AppendDelta records an adapter delta (adapt.Adapter.AppendDelta):
	// the link's absolute mutable state as of the window just scored.
	AppendDelta(linkID string, record []byte)
	// Flush hands any buffered records to the sink. Called when a link
	// retires and again at the end of Run, so the journal's last durable
	// state trails the engine's by at most the sync cadence, never by a
	// whole run.
	Flush()
}

// JournalSink makes JournalWriters — the factory the fleet journal
// implements. The engine calls NewWriter once per installed sink, under the
// engine mutex at Run start.
type JournalSink interface {
	NewWriter() JournalWriter
}

// SetJournal installs (or, with nil, removes) the journal sink. From the
// next Run on, every link's full records and per-window deltas are emitted
// into a writer obtained from the sink. Rejected while Run or a
// calibration is active: the sink swap must not race shards already
// appending.
//
// Installing a sink marks every link for a fresh full record at its first
// scored window, so the journal is self-contained from the moment it is
// attached — no delta ever lands without a base in the same journal.
func (e *Engine) SetJournal(sink JournalSink) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.journal = sink
	e.jw = nil
	for _, l := range e.links {
		l.needFull = true
	}
	return nil
}
