package engine

// JournalWriter receives one shard's stream of link records during Run.
// Each shard gets its own writer (see JournalSink.NewWriter), so the
// emission path inherits the shard partition: calls on one writer are
// always from the single goroutine that owns the shard, and the
// implementation needs no lock on the append path.
//
// The record slices are only valid for the duration of the call — the
// shard reuses its buffer for the next record — so an implementation that
// retains them must copy.
type JournalWriter interface {
	// AppendFull records a complete ExportLink-format snapshot of a link.
	// Emitted at the first scored window after (re)calibration, import, or
	// journal attach — the base every subsequent delta applies against.
	AppendFull(linkID string, record []byte)
	// AppendDelta records an adapter delta (adapt.Adapter.AppendDelta):
	// the link's absolute mutable state as of the window just scored.
	AppendDelta(linkID string, record []byte)
	// Flush hands any buffered records to the sink. Called by the shard on
	// its way out of a Run, so the journal's last durable state trails the
	// engine's by at most the sync cadence, never by a whole run.
	Flush()
}

// JournalSink makes per-shard JournalWriters — the factory the fleet
// journal implements. NewWriter is called under the engine mutex while
// shards are (re)assigned at Run start.
type JournalSink interface {
	NewWriter() JournalWriter
}

// SetJournal installs (or, with nil, removes) the journal sink. From the
// next Run on, every shard emits its links' full records and per-window
// deltas into writers obtained from the sink. Rejected while Run or a
// calibration is active: the sink swap must not race shards already
// holding writers.
//
// Installing a sink marks every link for a fresh full record at its first
// scored window, so the journal is self-contained from the moment it is
// attached — no delta ever lands without a base in the same journal.
func (e *Engine) SetJournal(sink JournalSink) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.journal = sink
	for _, sh := range e.shards {
		sh.jw = nil
	}
	for _, l := range e.links {
		l.needFull = true
	}
	return nil
}
