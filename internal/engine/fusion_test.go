package engine

import (
	"errors"
	"testing"

	"mlink/internal/adapt"
	"mlink/internal/core"
)

func dec(id string, present bool, score, threshold float64) LinkDecision {
	return LinkDecision{LinkID: id, Decision: core.Decision{Present: present, Score: score, Threshold: threshold}}
}

func wdec(id string, present bool, weight float64) LinkDecision {
	d := dec(id, present, 2, 1)
	if !present {
		d.Decision.Score = 0.5
	}
	d.Weight = weight
	return d
}

// recalDec is wdec for a link flagged NeedsRecalibration (the engine floors
// such links' weights at 0.1 × quality).
func recalDec(id string, present bool, weight float64) LinkDecision {
	d := wdec(id, present, weight)
	d.Health = adapt.Health{State: adapt.StateQuarantined, NeedsRecalibration: true}
	return d
}

func TestKOfNEmptyFleet(t *testing.T) {
	if _, err := (KOfN{K: 1}).Fuse(nil); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("empty fuse: %v, want ErrNoDecisions", err)
	}
}

func TestKOfNSingleLink(t *testing.T) {
	for _, present := range []bool{true, false} {
		v, err := (KOfN{K: 1}).Fuse([]LinkDecision{dec("a", present, 2, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if v.Present != present || v.Total != 1 {
			t.Fatalf("single-link verdict %+v for present=%v", v, present)
		}
	}
}

func TestKOfNTieAtK(t *testing.T) {
	// Exactly K positive links is a detection (inclusive threshold).
	d := []LinkDecision{
		dec("a", true, 2, 1),
		dec("b", true, 2, 1),
		dec("c", false, 0.5, 1),
	}
	v, err := (KOfN{K: 2}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Positive != 2 {
		t.Fatalf("tie at k=2 fused to %+v, want present", v)
	}
	// One fewer positive flips the verdict.
	d[1] = dec("b", false, 0.5, 1)
	if v, _ = (KOfN{K: 2}).Fuse(d); v.Present {
		t.Fatalf("1 positive with k=2 fused to present: %+v", v)
	}
}

func TestKOfNMajorityAndClamp(t *testing.T) {
	d := []LinkDecision{
		dec("a", true, 2, 1),
		dec("b", true, 2, 1),
		dec("c", false, 0.5, 1),
	}
	// K<=0 selects majority: 2 of 3 positive trips.
	v, err := (KOfN{}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Policy != "majority" {
		t.Fatalf("majority fuse = %+v", v)
	}
	// K beyond the fleet clamps to unanimity.
	if v, _ = (KOfN{K: 99}).Fuse(d); v.Present {
		t.Fatalf("k=99 over 3 links (2 positive) fused to present: %+v", v)
	}
	all := []LinkDecision{dec("a", true, 2, 1), dec("b", true, 2, 1)}
	if v, _ = (KOfN{K: 99}).Fuse(all); !v.Present {
		t.Fatalf("k=99 clamp over 2 unanimous links fused to absent: %+v", v)
	}
}

// TestWeightedKOfNEqualWeightsIsKOfN: with uniform weights the weighted
// policy must reproduce plain k-of-n semantics exactly, including the
// inclusive tie at K, for every K and every positive count.
func TestWeightedKOfNEqualWeightsIsKOfN(t *testing.T) {
	if _, err := (WeightedKOfN{K: 1}).Fuse(nil); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("empty fuse: %v, want ErrNoDecisions", err)
	}
	const n = 5
	for k := 0; k <= n+1; k++ {
		for positive := 0; positive <= n; positive++ {
			d := make([]LinkDecision, n)
			for i := range d {
				d[i] = wdec(string(rune('a'+i)), i < positive, 1)
			}
			plain, err := (KOfN{K: k}).Fuse(d)
			if err != nil {
				t.Fatal(err)
			}
			weighted, err := (WeightedKOfN{K: k}).Fuse(d)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Present != weighted.Present {
				t.Fatalf("k=%d positive=%d: weighted=%v, k-of-n=%v", k, positive, weighted.Present, plain.Present)
			}
		}
	}
}

// TestWeightedKOfNDriftingLinkCannotOutvote: the satellite requirement — a
// dead or drifting link's discounted vote must not outvote healthy links.
func TestWeightedKOfNDriftingLinkCannotOutvote(t *testing.T) {
	// A quarantined link screams "present" while two healthy links see an
	// empty site: majority fusion must stay absent.
	d := []LinkDecision{
		wdec("dead", true, 0.1), // quarantined weight
		wdec("h1", false, 1),
		wdec("h2", false, 1),
	}
	v, err := (WeightedKOfN{}).Fuse(d) // weighted majority
	if err != nil {
		t.Fatal(err)
	}
	if v.Present {
		t.Fatalf("quarantined link outvoted 2 healthy links: %+v", v)
	}
	// Count-based majority on the same snapshot would also be absent (1/3)
	// — so tighten: even at K=1 (any-link-trips), the discounted vote must
	// not reach the 1/3-weight quorum.
	v, err = (WeightedKOfN{K: 1}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if v.Present {
		t.Fatalf("quarantined link tripped weighted 1-of-n: %+v (score %v)", v, v.Score)
	}
	// The converse: a healthy link's full-weight vote still trips 1-of-n
	// over two discounted links.
	d = []LinkDecision{
		wdec("h1", true, 1),
		wdec("drift1", false, 0.4),
		wdec("drift2", false, 0.4),
	}
	if v, _ = (WeightedKOfN{K: 1}).Fuse(d); !v.Present {
		t.Fatalf("healthy positive link lost to discounted negatives: %+v", v)
	}
}

// TestWeightedKOfNUnsetWeights: hand-built decisions without weights fuse
// uniformly instead of dividing by zero.
func TestWeightedKOfNUnsetWeights(t *testing.T) {
	d := []LinkDecision{
		dec("a", true, 2, 1),
		dec("b", false, 0.5, 1),
	}
	v, err := (WeightedKOfN{K: 1}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present {
		t.Fatalf("unset weights did not fuse as uniform: %+v", v)
	}
}

func TestMaxScore(t *testing.T) {
	if _, err := (MaxScore{}).Fuse(nil); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("empty fuse: %v, want ErrNoDecisions", err)
	}
	d := []LinkDecision{
		dec("quiet", false, 0.4, 1.0),
		dec("loud", true, 3.0, 2.0), // normalized 1.5: the fleet max
		dec("noisy", false, 5.0, 10.0),
	}
	v, err := (MaxScore{}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Positive != 1 {
		t.Fatalf("max-score fuse = %+v, want present with 1 positive", v)
	}
	if v.Score != 1.5 {
		t.Fatalf("fused score = %v, want 1.5 (max normalized)", v.Score)
	}
	none := []LinkDecision{dec("a", false, 0.4, 1.0)}
	if v, _ = (MaxScore{}).Fuse(none); v.Present {
		t.Fatalf("all-negative fleet fused to present: %+v", v)
	}
}

// TestWeightedKOfNAllQuarantined pins the degenerate case: when every link's
// vote weight is negligible (an entirely quarantined or written-off fleet),
// weighted fusion must refuse with ErrAllQuarantined instead of dividing two
// near-zero sums into a confident verdict.
func TestWeightedKOfNAllQuarantined(t *testing.T) {
	tiny := MinFusibleWeight / 10
	cases := []struct {
		name      string
		decisions []LinkDecision
		wantErr   error
		want      bool // Present, when no error expected
	}{
		{
			name:      "all weights negligible",
			decisions: []LinkDecision{wdec("a", true, tiny), wdec("b", true, tiny), wdec("c", false, tiny)},
			wantErr:   ErrAllQuarantined,
		},
		{
			name:      "single dead link",
			decisions: []LinkDecision{wdec("a", true, tiny)},
			wantErr:   ErrAllQuarantined,
		},
		{
			name:      "one live link decides among dead ones",
			decisions: []LinkDecision{wdec("a", false, tiny), wdec("b", true, 1), wdec("c", false, tiny)},
			want:      true,
		},
		{
			name:      "live quiet link keeps the site quiet",
			decisions: []LinkDecision{wdec("a", true, tiny), wdec("b", false, 1)},
			want:      false,
		},
		{
			name:      "zero weights are unset, not dead",
			decisions: []LinkDecision{wdec("a", true, 0), wdec("b", false, 0)},
			want:      true,
		},
		{
			// The integrated-system shape: engine-built decisions carry the
			// quarantined 0.1-weight floor, which is well above
			// MinFusibleWeight — the whole-fleet write-off must be detected
			// from the health flags, not the weights.
			name: "whole fleet flagged NeedsRecalibration",
			decisions: []LinkDecision{
				recalDec("a", true, 0.1), recalDec("b", true, 0.08), recalDec("c", false, 0.1),
			},
			wantErr: ErrAllQuarantined,
		},
		{
			name: "one trustworthy link among written-off ones still decides",
			decisions: []LinkDecision{
				recalDec("a", true, 0.1), wdec("b", false, 1), recalDec("c", false, 0.1),
			},
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := (WeightedKOfN{K: 1}).Fuse(tc.decisions)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if v.Present != tc.want {
				t.Fatalf("present = %v, want %v (verdict %+v)", v.Present, tc.want, v)
			}
		})
	}
	// ErrAllQuarantined is not ErrNoDecisions: callers distinguish "nothing
	// fused yet" from "fleet written off".
	if errors.Is(ErrAllQuarantined, ErrNoDecisions) {
		t.Fatal("ErrAllQuarantined must be distinct from ErrNoDecisions")
	}
}
