package engine

import (
	"errors"
	"testing"

	"mlink/internal/core"
)

func dec(id string, present bool, score, threshold float64) LinkDecision {
	return LinkDecision{LinkID: id, Decision: core.Decision{Present: present, Score: score, Threshold: threshold}}
}

func TestKOfNEmptyFleet(t *testing.T) {
	if _, err := (KOfN{K: 1}).Fuse(nil); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("empty fuse: %v, want ErrNoDecisions", err)
	}
}

func TestKOfNSingleLink(t *testing.T) {
	for _, present := range []bool{true, false} {
		v, err := (KOfN{K: 1}).Fuse([]LinkDecision{dec("a", present, 2, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if v.Present != present || v.Total != 1 {
			t.Fatalf("single-link verdict %+v for present=%v", v, present)
		}
	}
}

func TestKOfNTieAtK(t *testing.T) {
	// Exactly K positive links is a detection (inclusive threshold).
	d := []LinkDecision{
		dec("a", true, 2, 1),
		dec("b", true, 2, 1),
		dec("c", false, 0.5, 1),
	}
	v, err := (KOfN{K: 2}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Positive != 2 {
		t.Fatalf("tie at k=2 fused to %+v, want present", v)
	}
	// One fewer positive flips the verdict.
	d[1] = dec("b", false, 0.5, 1)
	if v, _ = (KOfN{K: 2}).Fuse(d); v.Present {
		t.Fatalf("1 positive with k=2 fused to present: %+v", v)
	}
}

func TestKOfNMajorityAndClamp(t *testing.T) {
	d := []LinkDecision{
		dec("a", true, 2, 1),
		dec("b", true, 2, 1),
		dec("c", false, 0.5, 1),
	}
	// K<=0 selects majority: 2 of 3 positive trips.
	v, err := (KOfN{}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Policy != "majority" {
		t.Fatalf("majority fuse = %+v", v)
	}
	// K beyond the fleet clamps to unanimity.
	if v, _ = (KOfN{K: 99}).Fuse(d); v.Present {
		t.Fatalf("k=99 over 3 links (2 positive) fused to present: %+v", v)
	}
	all := []LinkDecision{dec("a", true, 2, 1), dec("b", true, 2, 1)}
	if v, _ = (KOfN{K: 99}).Fuse(all); !v.Present {
		t.Fatalf("k=99 clamp over 2 unanimous links fused to absent: %+v", v)
	}
}

func TestMaxScore(t *testing.T) {
	if _, err := (MaxScore{}).Fuse(nil); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("empty fuse: %v, want ErrNoDecisions", err)
	}
	d := []LinkDecision{
		dec("quiet", false, 0.4, 1.0),
		dec("loud", true, 3.0, 2.0), // normalized 1.5: the fleet max
		dec("noisy", false, 5.0, 10.0),
	}
	v, err := (MaxScore{}).Fuse(d)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Positive != 1 {
		t.Fatalf("max-score fuse = %+v, want present with 1 positive", v)
	}
	if v.Score != 1.5 {
		t.Fatalf("fused score = %v, want 1.5 (max normalized)", v.Score)
	}
	none := []LinkDecision{dec("a", false, 0.4, 1.0)}
	if v, _ = (MaxScore{}).Fuse(none); v.Present {
		t.Fatalf("all-negative fleet fused to present: %+v", v)
	}
}
