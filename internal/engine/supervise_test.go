package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/scenario"
	"mlink/internal/supervise"
)

// soakPolicy is the fast-clock supervision policy the soak tests run under.
func soakPolicy() supervise.Policy {
	return supervise.Policy{
		RingSize:       64,
		StaleAfter:     60 * time.Millisecond,
		DownAfter:      200 * time.Millisecond,
		BackoffMin:     2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		HoldLiveFrames: 10,
		Seed:           7,
	}
}

// pacedSource rate-limits a simulated source the way a real collector is
// limited by its packet rate (the paper's collectors ping at 50 packets/s).
// An unpaced simulation source produces as fast as one CPU core can
// compute, which on a small CI box turns the soak's rate comparison into a
// CPU-scheduling benchmark; pacing restores the property under test —
// whether an impaired link stalls its shard siblings.
//
// The schedule is absolute (each frame's release time is the previous one
// plus pace) rather than a relative sleep per frame: a relative sleep adds
// the scheduler's wake-up latency to every frame, and that latency grows
// with whatever else the box is doing — which is exactly what differs
// between the soak's clean and impaired phases. Against the absolute
// schedule a late wake-up shortens the next sleep, so the delivery rate
// self-corrects and stays load-independent while there is CPU slack. The
// catch-up window is capped below the supervisor ring size — a burst that
// outruns the ring would be counted as producer drops — and after a longer
// gap (the chaos stall) the schedule re-anchors instead of bursting the
// backlog.
type pacedSource struct {
	inner Source
	pace  time.Duration
	next  time.Time
}

func (s *pacedSource) Next() (*csi.Frame, error) {
	now := time.Now()
	if s.next.IsZero() || s.next.Before(now.Add(-50*s.pace)) {
		s.next = now
	}
	s.next = s.next.Add(s.pace)
	if d := s.next.Sub(now); d > 0 {
		time.Sleep(d)
	}
	return s.inner.Next()
}

// soakFleet builds a 5-link supervised fleet on ONE worker — the shape that
// proves decoupling, because an impaired link and its siblings share the
// same scoring goroutine — with link 2 occupied by a person and link 0
// wrapped in the chaos source.
func soakFleet(t *testing.T, chaos scenario.ChaosConfig) (*Engine, *scenario.ChaosSource) {
	t.Helper()
	e := New(Config{Workers: 1, Fusion: KOfN{K: 1}})
	pol := soakPolicy()
	if err := e.SetSupervision(&pol); err != nil {
		t.Fatal(err)
	}
	var chaosSrc *scenario.ChaosSource
	var occupied *switchSource
	for i := 0; i < 5; i++ {
		s, cfg, src := buildLink(t, i%5+1, int64(40+i))
		id := fmt.Sprintf("L%d", i)
		if i == 2 {
			src.bodies = []body.Body{body.Default(s.LinkMidpoint())}
			occupied = src
		}
		paced := &pacedSource{inner: src, pace: time.Millisecond}
		var err error
		if i == 0 {
			chaosSrc = scenario.NewChaosSource(paced, chaos)
			err = e.AddLink(id, cfg, chaosSrc)
		} else {
			err = e.AddLink(id, cfg, paced)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	// Calibrate with everyone out of the room: person in, chaos unarmed.
	bodies := occupied.bodies
	occupied.bodies = nil
	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	occupied.bodies = bodies
	return e, chaosSrc
}

// siblingWindows sums WindowsScored over every link but L0 (the chaos one).
func siblingWindows(m *Metrics) uint64 {
	var sum uint64
	for _, lm := range m.PerLink {
		if lm.ID != "L0" {
			sum += lm.WindowsScored
		}
	}
	return sum
}

func lifecycleOf(m *Metrics, id string) adapt.Lifecycle {
	for _, lm := range m.PerLink {
		if lm.ID == id {
			return lm.Lifecycle
		}
	}
	return adapt.LifecycleUnsupervised
}

// runSoak drives the three-phase soak: a clean baseline phase, an impaired
// phase with chaos armed, and a recovery phase after disarming. It returns
// the sibling scoring rates (windows/s) measured in the clean and impaired
// phases. Both phases run the identical observation loop — a verdict poll
// every 20 ms — and normalize by their actual elapsed time, so the two
// rates differ only by what the impairment itself costs (on a one-core CI
// box, an asymmetric measurement load or a driver oversleep would otherwise
// masquerade as a sibling slowdown).
func runSoak(t *testing.T, chaos scenario.ChaosConfig, phase time.Duration, wantDegraded bool) (clean, impaired float64) {
	t.Helper()
	e, chaosSrc := soakFleet(t, chaos)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}()

	var m Metrics
	settled := func() bool {
		e.MetricsInto(&m)
		for _, lm := range m.PerLink {
			if lm.WindowsScored < 2 {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(15 * time.Second)
	for !settled() {
		if time.Now().After(deadline) {
			t.Fatal("fleet never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var v SiteVerdict
	phaseRate := func(check func(v *SiteVerdict)) float64 {
		e.MetricsInto(&m)
		start := siblingWindows(&m)
		t0 := time.Now()
		for end := t0.Add(phase); time.Now().Before(end); time.Sleep(20 * time.Millisecond) {
			if err := e.VerdictInto(&v); err != nil {
				t.Fatalf("VerdictInto: %v", err)
			}
			check(&v)
		}
		e.MetricsInto(&m)
		return float64(siblingWindows(&m)-start) / time.Since(t0).Seconds()
	}

	// Phase A: clean baseline. The occupied sibling keeps the site present.
	clean = phaseRate(func(v *SiteVerdict) {
		if !v.Present {
			t.Fatalf("site verdict lost the occupied link in the clean phase: %+v", v.Coverage)
		}
	})

	// Phase B: chaos armed. The occupied sibling must keep the site verdict
	// positive through the impairment on every poll.
	chaosSrc.Arm(true)
	sawDegraded := false
	impaired = phaseRate(func(v *SiteVerdict) {
		if v.Inconclusive {
			t.Fatal("site went inconclusive with 4 healthy links")
		}
		if !v.Present {
			t.Fatalf("site verdict lost the occupied sibling during chaos: %+v", v.Coverage)
		}
		if v.Coverage.Degraded() {
			sawDegraded = true
		}
	})
	if wantDegraded && !sawDegraded {
		t.Error("coverage never reported degraded during the impairment")
	}

	// Phase C: disarm and require full re-entry — the impaired link back to
	// Live and every link fused again.
	chaosSrc.Arm(false)
	chaosSrc.Resume()
	deadline = time.Now().Add(10 * time.Second)
	for {
		e.MetricsInto(&m)
		if err := e.VerdictInto(&v); err == nil &&
			!v.Coverage.Degraded() && lifecycleOf(&m, "L0") == adapt.LifecycleLive {
			break
		}
		if time.Now().After(deadline) {
			e.MetricsInto(&m)
			t.Fatalf("impaired link never recovered: lifecycle %v, coverage %+v",
				lifecycleOf(&m, "L0"), v.Coverage)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return clean, impaired
}

// checkSiblingRate enforces the soak criterion: siblings keep >= 95% of
// their clean-phase scoring rate while one link is impaired.
func checkSiblingRate(t *testing.T, clean, impaired float64) {
	t.Helper()
	t.Logf("sibling rate: clean phase %.1f windows/s, impaired phase %.1f windows/s", clean, impaired)
	if clean == 0 {
		t.Fatal("no sibling windows in the clean phase")
	}
	if impaired < 0.95*clean {
		t.Errorf("sibling rate dropped below 95%%: %.1f clean vs %.1f impaired", clean, impaired)
	}
}

func TestSoakStalledSource(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// A hard stall long enough to walk the whole Live→Stale→Down ladder.
	clean, impaired := runSoak(t, scenario.ChaosConfig{StallAfter: 1, StallFor: time.Hour}, 2*time.Second, true)
	checkSiblingRate(t, clean, impaired)
}

func TestSoakFlappingReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	clean, impaired := runSoak(t, scenario.ChaosConfig{FailEvery: 150, FailConnects: 2}, 2*time.Second, false)
	checkSiblingRate(t, clean, impaired)
}

func TestSoakMidStreamEOF(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	clean, impaired := runSoak(t, scenario.ChaosConfig{EOFEvery: 200}, 2*time.Second, false)
	checkSiblingRate(t, clean, impaired)
}

func TestSoakSlowDrip(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	clean, impaired := runSoak(t, scenario.ChaosConfig{DripEvery: 1, DripDelay: 4 * time.Millisecond}, 2*time.Second, false)
	checkSiblingRate(t, clean, impaired)
}

// TestSupervisedAllDownInconclusive stalls every source: the verdict must
// turn explicitly Inconclusive (nil error), never report "absent", and turn
// conclusive again when the sources come back.
func TestSupervisedAllDownInconclusive(t *testing.T) {
	e := New(Config{Workers: 1, Fusion: KOfN{K: 1}})
	pol := soakPolicy()
	if err := e.SetSupervision(&pol); err != nil {
		t.Fatal(err)
	}
	chaos := make([]*scenario.ChaosSource, 2)
	for i := 0; i < 2; i++ {
		_, cfg, src := buildLink(t, i+1, int64(60+i))
		chaos[i] = scenario.NewChaosSource(src, scenario.ChaosConfig{})
		if err := e.AddLink(fmt.Sprintf("L%d", i), cfg, chaos[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run returned %v", err)
		}
	}()

	var v SiteVerdict
	waitVerdict := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (verdict %+v coverage %+v)", what, v.Present, v.Coverage)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitVerdict("first conclusive verdict", func() bool {
		return e.VerdictInto(&v) == nil && !v.Inconclusive && v.Total == 2
	})

	chaos[0].Stall()
	chaos[1].Stall()
	waitVerdict("inconclusive verdict", func() bool {
		if err := e.VerdictInto(&v); err != nil {
			t.Fatalf("VerdictInto with the site down: %v (must be a nil-error inconclusive verdict)", err)
		}
		return v.Inconclusive
	})
	if v.Present {
		t.Fatal("inconclusive verdict claims presence")
	}
	if v.Coverage.Fused != 0 || v.Coverage.Links != 2 {
		t.Fatalf("inconclusive coverage = %+v, want 0 of 2 fused", v.Coverage)
	}

	chaos[0].Resume()
	chaos[1].Resume()
	waitVerdict("conclusive verdict after recovery", func() bool {
		return e.VerdictInto(&v) == nil && !v.Inconclusive && !v.Coverage.Degraded()
	})
}

// endAfterSource fails hard (not io.EOF, not reconnectable) after serving
// n frames.
type endAfterSource struct {
	inner Source
	n     int
	err   error
}

func (s *endAfterSource) Next() (*csi.Frame, error) {
	if s.n <= 0 {
		return nil, s.err
	}
	s.n--
	return s.inner.Next()
}

// TestSupervisedRunSurvivesSourceError kills one link's source with a hard
// error mid-run: the supervised engine must keep serving the remaining link
// to completion and return cleanly, with the dead link's cause preserved in
// its status rather than propagated as the run's error.
func TestSupervisedRunSurvivesSourceError(t *testing.T) {
	e := New(Config{Workers: 1, Fusion: KOfN{K: 1}})
	pol := soakPolicy()
	if err := e.SetSupervision(&pol); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transport wedged")
	_, cfg1, src1 := buildLink(t, 1, 71)
	_, cfg2, src2 := buildLink(t, 2, 72)
	if err := e.AddLink("dying", cfg1, src1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("healthy", cfg2, src2); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	// Swap the dying link's source for one that hard-fails after 30 frames
	// (one window and change) — after calibration, so the baseline is real.
	e.byID["dying"].src = &endAfterSource{inner: src1, n: 30, err: boom}

	if err := e.Run(context.Background(), 8); err != nil {
		t.Fatalf("Run with a dying link returned %v, want nil", err)
	}
	var m Metrics
	e.MetricsInto(&m)
	for _, lm := range m.PerLink {
		switch lm.ID {
		case "healthy":
			if lm.WindowsScored < 8 {
				t.Errorf("healthy link scored %d windows, want >= 8", lm.WindowsScored)
			}
		case "dying":
			if lm.WindowsScored >= 8 {
				t.Errorf("dying link scored %d windows despite its source dying", lm.WindowsScored)
			}
		}
	}
	sup := e.byID["dying"].sup
	if sup == nil {
		t.Fatal("dying link has no supervisor")
	}
	if st := sup.Status(); !errors.Is(st.Err, boom) {
		t.Errorf("dying link status err = %v, want the source error", st.Err)
	}
}

// TestSupervisedLifecycleTransitionsReported checks OnTransition plumbing
// through the engine: a stalled link must report Live→Stale→Down and the
// per-link jitter seeds must decorrelate (distinct supervisor RNG streams).
func TestSupervisedLifecycleTransitionsReported(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	pol := soakPolicy()
	pol.OnTransition = func(link string, from, to adapt.Lifecycle, cause error) {
		mu.Lock()
		seen[fmt.Sprintf("%s:%s->%s", link, from, to)] = true
		mu.Unlock()
	}
	e := New(Config{Workers: 1, Fusion: KOfN{K: 1}})
	if err := e.SetSupervision(&pol); err != nil {
		t.Fatal(err)
	}
	_, cfg, src := buildLink(t, 3, 81)
	chaosSrc := scenario.NewChaosSource(src, scenario.ChaosConfig{})
	if err := e.AddLink("L0", cfg, chaosSrc); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()

	chaosSrc.Stall()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		ok := seen["L0:live->stale"] && seen["L0:stale->down"]
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("missing staleness transitions; saw %v", seen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	chaosSrc.Resume()
	if err := <-runDone; err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, io.EOF) {
		t.Fatalf("Run returned %v", err)
	}
}
