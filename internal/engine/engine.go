package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/csi"
)

// Engine errors.
var (
	// ErrNoLinks is returned by fleet-wide operations on an empty fleet.
	ErrNoLinks = errors.New("engine: no links")
	// ErrNotCalibrated is returned by Run when a link has no detector yet.
	ErrNotCalibrated = errors.New("engine: link not calibrated")
	// ErrRunning rejects fleet mutation while Run is active.
	ErrRunning = errors.New("engine: engine is running")
	// ErrDuplicateLink rejects reuse of a link ID.
	ErrDuplicateLink = errors.New("engine: duplicate link id")
	// ErrUnknownLink reports an ID that is not in the fleet.
	ErrUnknownLink = errors.New("engine: unknown link")
)

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the calibration and scoring pools (default GOMAXPROCS).
	Workers int
	// WindowSize is the monitoring window in packets (default 25, the
	// paper's operating point at 50 packets/s).
	WindowSize int
	// ThresholdQuantile and ThresholdMargin parameterize per-link threshold
	// calibration from held-out self scores (defaults 0.95 and 1.3, as the
	// facade uses).
	ThresholdQuantile float64
	ThresholdMargin   float64
	// Fusion combines per-link decisions into a site verdict (default
	// KOfN{K: 1}: any positive link trips the site).
	Fusion FusionPolicy
	// Adaptation, when non-nil, enables per-link online adaptation: every
	// calibrated link gets an adapt.Adapter that refreshes its profile on
	// silent windows, re-derives its threshold, and tracks drift health
	// (which quality-weighted fusion consumes). The zero Policy selects the
	// package defaults.
	Adaptation *adapt.Policy
	// OnDecision, when non-nil, is invoked from scoring workers after every
	// scored window. It must be safe for concurrent use and fast.
	OnDecision func(linkID string, d core.Decision)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 25
	}
	if c.ThresholdQuantile <= 0 || c.ThresholdQuantile > 1 {
		c.ThresholdQuantile = 0.95
	}
	if c.ThresholdMargin <= 0 {
		c.ThresholdMargin = 1.3
	}
	if c.Fusion == nil {
		c.Fusion = KOfN{K: 1}
	}
	return c
}

// link is one monitored TX–RX pair.
type link struct {
	id       string
	cfg      core.Config
	src      Source
	recycler FrameRecycler // non-nil when src pools its frames

	// scoreDone serializes an adaptive link's windows: the assembler waits
	// for window w's score+Observe to finish before submitting w+1, so the
	// adapter always sees a link's scores in stream order (the drift
	// monitor's jump discriminator and the EWMA refresh sequence are
	// order-sensitive) and results stay deterministic across pool sizes.
	// Nil for non-adaptive links, whose windows may score out of order.
	scoreDone chan struct{}

	mu       sync.Mutex
	det      *core.Detector
	adapter  *adapt.Adapter // nil when adaptation is disabled
	health   adapt.Health
	meanMu   float64
	last     core.Decision
	decided  bool
	windows  uint64
	scoreSum float64
}

// Engine monitors a fleet of links concurrently.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	links   []*link
	byID    map[string]*link
	running bool
	// calibrating guards the whole span of Calibrate/Recalibrate (not just
	// their entry check): Run must not start while a calibration is still
	// pulling frames from a link's single-reader source.
	calibrating bool
	runStart    time.Time

	windowsScored atomic.Uint64
	framesSeen    atomic.Uint64
	runNanos      atomic.Int64

	windowPool sync.Pool
}

// New builds an engine; zero-valued config fields take defaults.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{cfg: cfg, byID: make(map[string]*link)}
	e.windowPool.New = func() any {
		s := make([]*csi.Frame, 0, cfg.WindowSize)
		return &s
	}
	return e
}

// WindowSize reports the effective monitoring window in packets.
func (e *Engine) WindowSize() int { return e.cfg.WindowSize }

// SetAdaptation installs (or, with nil, removes) the adaptation policy.
// It affects links calibrated afterwards — call it before Calibrate, or
// Recalibrate existing links to pick it up. Rejected while Run is active.
func (e *Engine) SetAdaptation(p *adapt.Policy) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.cfg.Adaptation = p
	return nil
}

// AddLink registers a link under a unique ID. The source is owned by the
// engine from here on: calibration and monitoring both draw frames from it,
// always from a single goroutine at a time.
func (e *Engine) AddLink(id string, cfg core.Config, src Source) error {
	if id == "" {
		return fmt.Errorf("empty link id: %w", ErrUnknownLink)
	}
	if src == nil {
		return fmt.Errorf("link %s: nil source", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	if _, ok := e.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateLink, id)
	}
	l := &link{id: id, cfg: cfg, src: src}
	l.recycler, _ = src.(FrameRecycler)
	e.links = append(e.links, l)
	e.byID[id] = l
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.links))
	for i, l := range e.links {
		out[i] = l.id
	}
	return out
}

func (e *Engine) snapshot() []*link {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]*link(nil), e.links...)
}

// pull reads n frames from a source, counting them into the metrics.
func (e *Engine) pull(ctx context.Context, src Source, dst []*csi.Frame, n int) ([]*csi.Frame, error) {
	for len(dst) < n {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		f, err := src.Next()
		if err != nil {
			return dst, err
		}
		e.framesSeen.Add(1)
		dst = append(dst, f)
	}
	return dst, nil
}

// Calibrate calibrates every link in parallel on the worker pool: n
// profile frames plus n held-out frames are drawn from each link's source,
// a static profile and detector are built (§IV-C calibration stage), the
// decision threshold is set from the held-out self scores, and the link's
// mean multipath factor μ is recorded for the metrics block. n is raised to
// cover at least two self-score windows.
func (e *Engine) Calibrate(ctx context.Context, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	links := append([]*link(nil), e.links...)
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if len(links) == 0 {
		return ErrNoLinks
	}
	if n < 2*e.cfg.WindowSize {
		n = 2 * e.cfg.WindowSize
	}
	if n < 50 {
		n = 50
	}
	return e.forEach(ctx, links, func(ctx context.Context, l *link) error {
		return e.calibrateLink(ctx, l, n)
	})
}

// forEach runs fn over links with at most cfg.Workers in flight; it waits
// for all and returns the first error.
func (e *Engine) forEach(ctx context.Context, links []*link, fn func(context.Context, *link) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, e.cfg.Workers)
	errs := make(chan error, len(links))
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(l *link) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs <- ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := fn(ctx, l); err != nil {
				errs <- fmt.Errorf("link %s: %w", l.id, err)
				cancel()
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}

func (e *Engine) calibrateLink(ctx context.Context, l *link, n int) error {
	cal, err := e.pull(ctx, l.src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("calibration capture: %w", err)
	}
	profile, err := core.Calibrate(l.cfg, cal)
	if err != nil {
		return err
	}
	det, err := core.NewDetector(l.cfg, profile)
	if err != nil {
		return err
	}
	holdout, err := e.pull(ctx, l.src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("holdout capture: %w", err)
	}
	null, err := det.SelfScores(holdout, e.cfg.WindowSize, e.cfg.WindowSize)
	if err != nil {
		return err
	}
	if _, err := det.CalibrateThreshold(null, e.cfg.ThresholdQuantile, e.cfg.ThresholdMargin); err != nil {
		return err
	}
	meanMu, err := linkMeanMu(cal, l.cfg)
	if err != nil {
		return err
	}
	var adapter *adapt.Adapter
	if e.cfg.Adaptation != nil {
		adapter, err = adapt.NewAdapter(*e.cfg.Adaptation, det, null)
		if err != nil {
			return fmt.Errorf("adaptation: %w", err)
		}
	}
	// Holdout frames are done; calibration frames may be recycled only when
	// sanitization is on (otherwise the profile retains them directly).
	l.recycleFrames(holdout)
	if l.cfg.Sanitize {
		l.recycleFrames(cal)
	}
	l.mu.Lock()
	l.det = det
	l.adapter = adapter
	l.health = adapt.Health{}
	if adapter != nil {
		l.health = adapter.Health()
		if l.scoreDone == nil {
			l.scoreDone = make(chan struct{}, 1)
		}
	}
	l.meanMu = meanMu
	l.mu.Unlock()
	return nil
}

// Recalibrate rebuilds one link's profile, threshold and (when enabled)
// adapter from a fresh empty-room capture — the recovery path for a link
// whose adaptation health reports NeedsRecalibration after a step change
// (furniture moved, antenna bumped). The caller is asserting the room is
// empty again, exactly as for the initial Calibrate. Rejected while Run is
// active.
func (e *Engine) Recalibrate(ctx context.Context, linkID string, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	l, ok := e.byID[linkID]
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if n < 2*e.cfg.WindowSize {
		n = 2 * e.cfg.WindowSize
	}
	if n < 50 {
		n = 50
	}
	if err := e.calibrateLink(ctx, l, n); err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	return nil
}

// linkMeanMu averages the mean multipath factor over up to 25 calibration
// frames — the §IV-A deployment-assessment metric surfaced per link in the
// metrics block.
func linkMeanMu(frames []*csi.Frame, cfg core.Config) (float64, error) {
	const maxFrames = 25
	if len(frames) > maxFrames {
		frames = frames[:maxFrames]
	}
	ant := 0
	if frames[0].NumAntennas() > 1 {
		ant = 1
	}
	sc := core.NewScratch()
	mu := make([]float64, cfg.Grid.Len())
	var acc float64
	for _, f := range frames {
		if err := sc.MultipathFactorsInto(mu, f.CSI[ant], cfg.Grid); err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		m, err := core.MeanMultipathFactor(mu)
		if err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		acc += m
	}
	return acc / float64(len(frames)), nil
}

// scoreJob is one window awaiting a pool worker.
type scoreJob struct {
	l      *link
	window *[]*csi.Frame
}

// Run monitors the whole fleet until every link has scored windowsPerLink
// windows (0 = until its source ends or ctx is cancelled). Each link gets an
// assembler goroutine slicing its stream into windows; scoring fans out over
// the shared worker pool. Every link must be calibrated first.
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	links := e.snapshot()
	if len(links) == 0 {
		return ErrNoLinks
	}
	for _, l := range links {
		l.mu.Lock()
		calibrated := l.det != nil
		l.mu.Unlock()
		if !calibrated {
			return fmt.Errorf("%w: %s", ErrNotCalibrated, l.id)
		}
	}
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.running = true
	e.runStart = time.Now()
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.runNanos.Add(int64(time.Since(e.runStart)))
		e.running = false
		e.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	jobs := make(chan scoreJob)

	// First-error recorder: goroutines may fail any number of times (a
	// worker keeps draining jobs after an error), so errors are folded into
	// one slot rather than sent on a channel that could fill and block.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if err == nil || errors.Is(err, context.Canceled) {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	var workers sync.WaitGroup
	for i := 0; i < e.cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			sc := core.NewScratch()
			for job := range jobs {
				fail(e.score(job, sc))
			}
		}()
	}

	var assemblers sync.WaitGroup
	for _, l := range links {
		assemblers.Add(1)
		go func(l *link) {
			defer assemblers.Done()
			if err := e.assemble(ctx, l, windowsPerLink, jobs); err != nil {
				fail(fmt.Errorf("link %s: %w", l.id, err))
			}
		}(l)
	}

	assemblers.Wait()
	close(jobs)
	workers.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// assemble slices one link's stream into windows and submits them for
// scoring. A clean end of stream (io.EOF) stops the link without error.
// For an adaptive link, each window must finish scoring (and feeding the
// adapter) before the next is submitted — see link.scoreDone.
func (e *Engine) assemble(ctx context.Context, l *link, windowsPerLink int, jobs chan<- scoreJob) error {
	if l.scoreDone != nil {
		// Drop a token a cancelled previous run may have left behind.
		select {
		case <-l.scoreDone:
		default:
		}
	}
	for w := 0; windowsPerLink <= 0 || w < windowsPerLink; w++ {
		buf := e.windowPool.Get().(*[]*csi.Frame)
		*buf = (*buf)[:0]
		var err error
		*buf, err = e.pull(ctx, l.src, *buf, e.cfg.WindowSize)
		if err != nil {
			l.recycleFrames(*buf)
			e.windowPool.Put(buf)
			if errors.Is(err, io.EOF) || errors.Is(err, context.Canceled) {
				return nil
			}
			return err
		}
		select {
		case jobs <- scoreJob{l: l, window: buf}:
		case <-ctx.Done():
			l.recycleFrames(*buf)
			e.windowPool.Put(buf)
			return nil
		}
		if l.scoreDone != nil {
			select {
			case <-l.scoreDone:
			case <-ctx.Done():
				return nil
			}
		}
	}
	return nil
}

// recycleFrames hands a scored window's frames back to a pooling source.
// Safe after scoring: the detector's profile never retains monitoring
// frames (the sanitize path copies into scratch-owned buffers, and the raw
// path only reads).
func (l *link) recycleFrames(frames []*csi.Frame) {
	if l.recycler == nil {
		return
	}
	for _, f := range frames {
		l.recycler.Recycle(f)
	}
}

// score runs one window through the link's detector with the worker's
// scratch, lets the link's adapter observe the outcome (profile refresh /
// drift tracking happen here, before the frames are recycled), and folds
// the decision into the link and engine state.
func (e *Engine) score(job scoreJob, sc *core.Scratch) error {
	l := job.l
	if l.scoreDone != nil {
		// Release the link's assembler whatever happens below; the token
		// is what keeps an adaptive link's windows in stream order.
		defer func() { l.scoreDone <- struct{}{} }()
	}
	dec, err := l.det.DetectScratch(*job.window, sc)
	var health adapt.Health
	if err == nil && l.adapter != nil {
		health, err = l.adapter.Observe(*job.window, dec)
	}
	l.recycleFrames(*job.window)
	*job.window = (*job.window)[:0]
	e.windowPool.Put(job.window)
	if err != nil {
		return fmt.Errorf("link %s: %w", l.id, err)
	}
	l.mu.Lock()
	l.last = dec
	l.decided = true
	l.windows++
	l.scoreSum += dec.Score
	if l.adapter != nil {
		l.health = health
	}
	l.mu.Unlock()
	e.windowsScored.Add(1)
	if cb := e.cfg.OnDecision; cb != nil {
		cb(l.id, dec)
	}
	return nil
}

// ScoreWindow synchronously scores one externally assembled window on the
// named link (outside the pool — for tests and ad-hoc probes).
func (e *Engine) ScoreWindow(linkID string, window []*csi.Frame) (core.Decision, error) {
	e.mu.Lock()
	l, ok := e.byID[linkID]
	e.mu.Unlock()
	if !ok {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	l.mu.Lock()
	det := l.det
	l.mu.Unlock()
	if det == nil {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrNotCalibrated, linkID)
	}
	dec, err := det.Detect(window)
	if err != nil {
		return core.Decision{}, err
	}
	var health adapt.Health
	l.mu.Lock()
	adapter := l.adapter
	l.mu.Unlock()
	if adapter != nil {
		if health, err = adapter.Observe(window, dec); err != nil {
			return core.Decision{}, err
		}
	}
	l.mu.Lock()
	l.last = dec
	l.decided = true
	l.windows++
	l.scoreSum += dec.Score
	if adapter != nil {
		l.health = health
	}
	l.mu.Unlock()
	e.windowsScored.Add(1)
	e.framesSeen.Add(uint64(len(window)))
	return dec, nil
}

// Verdict fuses the latest decision of every link that has scored at least
// one window into a site-level verdict under the configured policy. Each
// decision carries the link's characterized quality weight — its mean
// multipath factor μ (§IV-A: higher μ means a more detection-sensitive
// link) normalized across the fleet, discounted by its current adaptation
// health — so weight-aware policies (WeightedKOfN) let well-characterized
// healthy links dominate drifting or insensitive ones.
func (e *Engine) Verdict() (SiteVerdict, error) {
	links := e.snapshot()
	if len(links) == 0 {
		return SiteVerdict{}, ErrNoLinks
	}
	decisions := make([]LinkDecision, 0, len(links))
	var maxMu float64
	for _, l := range links {
		l.mu.Lock()
		if l.decided && l.meanMu > maxMu {
			maxMu = l.meanMu
		}
		l.mu.Unlock()
	}
	for _, l := range links {
		l.mu.Lock()
		if l.decided {
			quality := 1.0
			if maxMu > 0 && l.meanMu > 0 {
				quality = l.meanMu / maxMu
			}
			decisions = append(decisions, LinkDecision{
				LinkID:   l.id,
				Decision: l.last,
				Weight:   quality * l.health.Weight(),
				Health:   l.health,
			})
		}
		l.mu.Unlock()
	}
	return e.cfg.Fusion.Fuse(decisions)
}
