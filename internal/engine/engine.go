package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/csi"
)

// Engine errors.
var (
	// ErrNoLinks is returned by fleet-wide operations on an empty fleet.
	ErrNoLinks = errors.New("engine: no links")
	// ErrNotCalibrated is returned by Run when a link has no detector yet.
	ErrNotCalibrated = errors.New("engine: link not calibrated")
	// ErrRunning rejects fleet mutation while Run is active.
	ErrRunning = errors.New("engine: engine is running")
	// ErrDuplicateLink rejects reuse of a link ID.
	ErrDuplicateLink = errors.New("engine: duplicate link id")
	// ErrUnknownLink reports an ID that is not in the fleet.
	ErrUnknownLink = errors.New("engine: unknown link")
)

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the calibration pool and the number of scoring shards
	// (default GOMAXPROCS). Links are distributed over min(Workers, links)
	// long-lived shards with link affinity — parallelism is per link, so
	// more workers than links buys nothing.
	Workers int
	// WindowSize is the monitoring window in packets (default 25, the
	// paper's operating point at 50 packets/s).
	WindowSize int
	// ThresholdQuantile and ThresholdMargin parameterize per-link threshold
	// calibration from held-out self scores (defaults 0.95 and 1.3, as the
	// facade uses).
	ThresholdQuantile float64
	ThresholdMargin   float64
	// Fusion combines per-link decisions into a site verdict (default
	// KOfN{K: 1}: any positive link trips the site).
	Fusion FusionPolicy
	// Adaptation, when non-nil, enables per-link online adaptation: every
	// calibrated link gets an adapt.Adapter that refreshes its profile on
	// silent windows, re-derives its threshold, and tracks drift health
	// (which quality-weighted fusion consumes). The zero Policy selects the
	// package defaults.
	Adaptation *adapt.Policy
	// OnDecision, when non-nil, is invoked from scoring shards after every
	// scored window. It must be safe for concurrent use and fast.
	OnDecision func(linkID string, d core.Decision)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 25
	}
	if c.ThresholdQuantile <= 0 || c.ThresholdQuantile > 1 {
		c.ThresholdQuantile = 0.95
	}
	if c.ThresholdMargin <= 0 {
		c.ThresholdMargin = 1.3
	}
	if c.Fusion == nil {
		c.Fusion = KOfN{K: 1}
	}
	return c
}

// link is one monitored TX–RX pair.
//
// The mutable fields are partitioned by owner rather than guarded by a
// mutex: det/adapter/meanMu are written only while e.calibrating (and read
// afterwards through the e.mu happens-before chain); win/scored/done belong
// to the link's shard during Run; everything Verdict and Metrics need is
// published through state, which readers load without locking.
type link struct {
	id       string
	cfg      core.Config
	src      Source
	recycler FrameRecycler // non-nil when src pools its frames

	det     *core.Detector
	adapter *adapt.Adapter // nil when adaptation is disabled
	meanMu  float64

	// win is the link's persistent window slab: one WindowSize-capacity
	// frame buffer reused for every tick of every Run — the replacement for
	// the old per-tick pool round trips.
	win    []*csi.Frame
	scored int
	done   bool

	state linkState
}

// shard is one long-lived scoring worker: it owns a subset of the links
// (assigned round-robin by registration order at Run start), a scratch, and
// nothing else — every per-window buffer it touches hangs off its links, so
// the steady-state loop shares no mutable state with other shards and takes
// no lock. Shards persist across Runs so their scratches stay warm.
type shard struct {
	sc    *core.Scratch
	links []*link
}

// Engine monitors a fleet of links concurrently.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	links   []*link
	byID    map[string]*link
	running bool
	// calibrating guards the whole span of Calibrate/Recalibrate (not just
	// their entry check): Run must not start while a calibration is still
	// pulling frames from a link's single-reader source.
	calibrating bool
	runStart    time.Time
	shards      []*shard

	windowsScored atomic.Uint64
	framesSeen    atomic.Uint64
	runNanos      atomic.Int64
}

// New builds an engine; zero-valued config fields take defaults.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{cfg: cfg, byID: make(map[string]*link)}
}

// WindowSize reports the effective monitoring window in packets.
func (e *Engine) WindowSize() int { return e.cfg.WindowSize }

// SetAdaptation installs (or, with nil, removes) the adaptation policy.
// It affects links calibrated afterwards — call it before Calibrate, or
// Recalibrate existing links to pick it up. Rejected while Run is active.
func (e *Engine) SetAdaptation(p *adapt.Policy) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.cfg.Adaptation = p
	return nil
}

// AddLink registers a link under a unique ID. The source is owned by the
// engine from here on: calibration and monitoring both draw frames from it,
// always from a single goroutine at a time.
func (e *Engine) AddLink(id string, cfg core.Config, src Source) error {
	if id == "" {
		return fmt.Errorf("empty link id: %w", ErrUnknownLink)
	}
	if src == nil {
		return fmt.Errorf("link %s: nil source", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	if _, ok := e.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateLink, id)
	}
	l := &link{id: id, cfg: cfg, src: src}
	l.recycler, _ = src.(FrameRecycler)
	e.links = append(e.links, l)
	e.byID[id] = l
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string {
	return e.LinksInto(nil)
}

// LinksInto is Links appending into a caller-owned buffer (reset to length
// zero first), so a report loop can poll the fleet without allocating.
func (e *Engine) LinksInto(dst []string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	dst = dst[:0]
	for _, l := range e.links {
		dst = append(dst, l.id)
	}
	return dst
}

// pull reads n frames from a source, counting them into the metrics.
func (e *Engine) pull(ctx context.Context, src Source, dst []*csi.Frame, n int) ([]*csi.Frame, error) {
	for len(dst) < n {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		f, err := src.Next()
		if err != nil {
			return dst, err
		}
		e.framesSeen.Add(1)
		dst = append(dst, f)
	}
	return dst, nil
}

// Calibrate calibrates every link in parallel on the worker pool: n
// profile frames plus n held-out frames are drawn from each link's source,
// a static profile and detector are built (§IV-C calibration stage), the
// decision threshold is set from the held-out self scores, and the link's
// mean multipath factor μ is recorded for the metrics block. n is raised to
// cover at least two self-score windows.
func (e *Engine) Calibrate(ctx context.Context, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	links := append([]*link(nil), e.links...)
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if len(links) == 0 {
		return ErrNoLinks
	}
	if n < 2*e.cfg.WindowSize {
		n = 2 * e.cfg.WindowSize
	}
	if n < 50 {
		n = 50
	}
	return e.forEach(ctx, links, func(ctx context.Context, l *link) error {
		return e.calibrateLink(ctx, l, n)
	})
}

// forEach runs fn over links with at most cfg.Workers in flight; it waits
// for all and returns the first error.
func (e *Engine) forEach(ctx context.Context, links []*link, fn func(context.Context, *link) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, e.cfg.Workers)
	errs := make(chan error, len(links))
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(l *link) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs <- ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := fn(ctx, l); err != nil {
				errs <- fmt.Errorf("link %s: %w", l.id, err)
				cancel()
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}

func (e *Engine) calibrateLink(ctx context.Context, l *link, n int) error {
	cal, err := e.pull(ctx, l.src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("calibration capture: %w", err)
	}
	profile, err := core.Calibrate(l.cfg, cal)
	if err != nil {
		return err
	}
	det, err := core.NewDetector(l.cfg, profile)
	if err != nil {
		return err
	}
	holdout, err := e.pull(ctx, l.src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("holdout capture: %w", err)
	}
	null, err := det.SelfScores(holdout, e.cfg.WindowSize, e.cfg.WindowSize)
	if err != nil {
		return err
	}
	if _, err := det.CalibrateThreshold(null, e.cfg.ThresholdQuantile, e.cfg.ThresholdMargin); err != nil {
		return err
	}
	meanMu, err := linkMeanMu(cal, l.cfg)
	if err != nil {
		return err
	}
	var adapter *adapt.Adapter
	if e.cfg.Adaptation != nil {
		adapter, err = adapt.NewAdapter(*e.cfg.Adaptation, det, null)
		if err != nil {
			return fmt.Errorf("adaptation: %w", err)
		}
	}
	// Holdout frames are done; calibration frames may be recycled only when
	// sanitization is on (otherwise the profile retains them directly).
	l.recycleFrames(holdout)
	if l.cfg.Sanitize {
		l.recycleFrames(cal)
	}
	l.det = det
	l.adapter = adapter
	l.meanMu = meanMu
	health := adapt.Health{}
	if adapter != nil {
		health = adapter.Health()
	}
	l.state.publishCalibration(meanMu, det.Threshold(), adapter != nil, health)
	return nil
}

// Recalibrate rebuilds one link's profile, threshold and (when enabled)
// adapter from a fresh empty-room capture — the recovery path for a link
// whose adaptation health reports NeedsRecalibration after a step change
// (furniture moved, antenna bumped). The caller is asserting the room is
// empty again, exactly as for the initial Calibrate. Rejected while Run is
// active.
func (e *Engine) Recalibrate(ctx context.Context, linkID string, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	l, ok := e.byID[linkID]
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if n < 2*e.cfg.WindowSize {
		n = 2 * e.cfg.WindowSize
	}
	if n < 50 {
		n = 50
	}
	if err := e.calibrateLink(ctx, l, n); err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	return nil
}

// linkMeanMu averages the mean multipath factor over up to 25 calibration
// frames — the §IV-A deployment-assessment metric surfaced per link in the
// metrics block.
func linkMeanMu(frames []*csi.Frame, cfg core.Config) (float64, error) {
	const maxFrames = 25
	if len(frames) > maxFrames {
		frames = frames[:maxFrames]
	}
	ant := 0
	if frames[0].NumAntennas() > 1 {
		ant = 1
	}
	sc := core.NewScratch()
	mu := make([]float64, cfg.Grid.Len())
	var acc float64
	for _, f := range frames {
		if err := sc.MultipathFactorsInto(mu, f.CSI[ant], cfg.Grid); err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		m, err := core.MeanMultipathFactor(mu)
		if err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		acc += m
	}
	return acc / float64(len(frames)), nil
}

// ensureShards (re)builds the shard set for the current fleet under e.mu.
// Shard structs and their scratches persist across Runs — only the link
// assignment is refreshed — so a warmed-up engine re-enters its steady state
// without reallocating anything.
func (e *Engine) ensureShards() {
	n := e.cfg.Workers
	if n > len(e.links) {
		n = len(e.links)
	}
	if len(e.shards) != n {
		shards := make([]*shard, n)
		for i := range shards {
			if i < len(e.shards) {
				shards[i] = e.shards[i]
			} else {
				shards[i] = &shard{sc: core.NewScratch()}
			}
		}
		e.shards = shards
	}
	for _, sh := range e.shards {
		sh.links = sh.links[:0]
	}
	for i, l := range e.links {
		sh := e.shards[i%n]
		sh.links = append(sh.links, l)
		if cap(l.win) < e.cfg.WindowSize {
			l.win = make([]*csi.Frame, 0, e.cfg.WindowSize)
		}
		l.scored = 0
		l.done = false
	}
}

// Run monitors the whole fleet until every link has scored windowsPerLink
// windows (0 = until its source ends or ctx is cancelled). Links are
// assigned round-robin to min(Workers, links) persistent shards; each shard
// advances its links one window at a time, in registration order, so every
// link's windows are scored in stream order and its decision sequence is
// identical whatever the shard count (see TestEngineShardedMatchesSequential).
// Every link must be calibrated first.
//
// Links sharing a shard advance in lockstep: a source that blocks in Next
// stalls its shard-mates too, so fleets fed by blocking sources (csinet)
// should run with Workers ≥ links.
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	if len(e.links) == 0 {
		e.mu.Unlock()
		return ErrNoLinks
	}
	for _, l := range e.links {
		if l.det == nil {
			e.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNotCalibrated, l.id)
		}
	}
	e.ensureShards()
	e.running = true
	e.runStart = time.Now()
	shards := e.shards
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.runNanos.Add(int64(time.Since(e.runStart)))
		e.running = false
		e.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// First-error recorder: shards may fail any number of times, so errors
	// fold into one slot rather than a channel that could fill and block.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if err == nil || errors.Is(err, context.Canceled) {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			e.runShard(ctx, sh, windowsPerLink, fail)
		}(sh)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// runShard drives one shard's links round-robin, one window per link per
// pass, until every link is done or the context ends. The loop owns all the
// state it touches — links' slabs and detectors, the shard scratch — so the
// steady state runs without locks or allocations.
func (e *Engine) runShard(ctx context.Context, sh *shard, windowsPerLink int, fail func(error)) {
	active := len(sh.links)
	done := ctx.Done()
	for active > 0 {
		select {
		case <-done:
			return
		default:
		}
		for _, l := range sh.links {
			if l.done {
				continue
			}
			ok, err := e.tick(done, sh, l)
			if err != nil {
				fail(fmt.Errorf("link %s: %w", l.id, err))
				return
			}
			if !ok {
				l.done = true
				active--
				continue
			}
			l.scored++
			if windowsPerLink > 0 && l.scored >= windowsPerLink {
				l.done = true
				active--
			}
		}
	}
}

// tick pulls and scores one window for a link: assemble into the link's
// slab, score against its detector with the shard scratch, let the adapter
// observe, recycle the frames, publish the decision. It reports ok=false on
// a clean end of stream (EOF or cancellation). done is polled between
// frames — a non-blocking channel read, a few ns — so cancellation lands
// mid-window even on slow real-time sources, not a whole shard pass later.
func (e *Engine) tick(done <-chan struct{}, sh *shard, l *link) (bool, error) {
	l.win = l.win[:0]
	for len(l.win) < e.cfg.WindowSize {
		select {
		case <-done:
			e.framesSeen.Add(uint64(len(l.win)))
			l.recycleFrames(l.win)
			return false, nil
		default:
		}
		f, err := l.src.Next()
		if err != nil {
			e.framesSeen.Add(uint64(len(l.win)))
			l.recycleFrames(l.win)
			if errors.Is(err, io.EOF) || errors.Is(err, context.Canceled) {
				return false, nil
			}
			return false, err
		}
		l.win = append(l.win, f)
	}
	e.framesSeen.Add(uint64(len(l.win)))

	dec, err := l.det.DetectScratch(l.win, sh.sc)
	var health adapt.Health
	if err == nil && l.adapter != nil {
		health, err = l.adapter.Observe(l.win, dec)
	}
	l.recycleFrames(l.win)
	l.win = l.win[:0]
	if err != nil {
		return false, err
	}
	threshold := dec.Threshold
	if l.adapter != nil {
		threshold = health.Threshold
	}
	l.state.publishDecision(dec, threshold, health)
	e.windowsScored.Add(1)
	if cb := e.cfg.OnDecision; cb != nil {
		cb(l.id, dec)
	}
	return true, nil
}

// recycleFrames hands a scored window's frames back to a pooling source.
// Safe after scoring: the detector's profile never retains monitoring
// frames (the sanitize path copies into scratch-owned buffers, and the raw
// path only reads).
func (l *link) recycleFrames(frames []*csi.Frame) {
	if l.recycler == nil {
		return
	}
	for _, f := range frames {
		l.recycler.Recycle(f)
	}
}

// ScoreWindow synchronously scores one externally assembled window on the
// named link — for tests and ad-hoc probes. It is rejected while Run or a
// calibration is active: the link's detector, adapter and published state
// have exactly one writer at a time.
func (e *Engine) ScoreWindow(linkID string, window []*csi.Frame) (core.Decision, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.running || e.calibrating {
		return core.Decision{}, ErrRunning
	}
	if l.det == nil {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrNotCalibrated, linkID)
	}
	dec, err := l.det.Detect(window)
	if err != nil {
		return core.Decision{}, err
	}
	var health adapt.Health
	if l.adapter != nil {
		if health, err = l.adapter.Observe(window, dec); err != nil {
			return core.Decision{}, err
		}
	}
	threshold := dec.Threshold
	if l.adapter != nil {
		threshold = health.Threshold
	}
	l.state.publishDecision(dec, threshold, health)
	e.windowsScored.Add(1)
	e.framesSeen.Add(uint64(len(window)))
	return dec, nil
}

// Verdict fuses the latest decision of every link that has scored at least
// one window into a site-level verdict under the configured policy. Each
// decision carries the link's characterized quality weight — its mean
// multipath factor μ (§IV-A: higher μ means a more detection-sensitive
// link) normalized across the fleet, discounted by its current adaptation
// health — so weight-aware policies (WeightedKOfN) let well-characterized
// healthy links dominate drifting or insensitive ones.
func (e *Engine) Verdict() (SiteVerdict, error) {
	var v SiteVerdict
	if err := e.VerdictInto(&v); err != nil {
		return SiteVerdict{}, err
	}
	return v, nil
}

// VerdictInto is Verdict reusing the caller's SiteVerdict — in particular
// its Links slice — so a steady-state report loop fuses the fleet without
// allocating. Link state is read from lock-free published snapshots; the
// fleet lock is held only to walk the link list, never while scoring.
func (e *Engine) VerdictInto(v *SiteVerdict) error {
	decisions := v.Links[:0]
	var snap linkSnap
	e.mu.Lock()
	if len(e.links) == 0 {
		e.mu.Unlock()
		return ErrNoLinks
	}
	var maxMu float64
	for _, l := range e.links {
		l.state.load(&snap)
		if snap.Windows > 0 && snap.MeanMu > maxMu {
			maxMu = snap.MeanMu
		}
	}
	for _, l := range e.links {
		l.state.load(&snap)
		if snap.Windows == 0 {
			continue
		}
		quality := 1.0
		if maxMu > 0 && snap.MeanMu > 0 {
			quality = snap.MeanMu / maxMu
		}
		decisions = append(decisions, LinkDecision{
			LinkID:   l.id,
			Decision: snap.Last,
			Weight:   quality * snap.Health.Weight(),
			Health:   snap.Health,
		})
	}
	e.mu.Unlock()
	out, err := e.cfg.Fusion.Fuse(decisions)
	if err != nil {
		v.Links = decisions
		return err
	}
	*v = out
	return nil
}
