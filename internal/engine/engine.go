package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/supervise"
)

// Engine errors.
var (
	// ErrNoLinks is returned by fleet-wide operations on an empty fleet.
	ErrNoLinks = errors.New("engine: no links")
	// ErrNotCalibrated is returned by Run when a link has no detector yet.
	ErrNotCalibrated = errors.New("engine: link not calibrated")
	// ErrRunning rejects fleet mutation while Run is active.
	ErrRunning = errors.New("engine: engine is running")
	// ErrNotRunning rejects operations that need an active Run (posting an
	// online recalibration to a stopped engine, for instance).
	ErrNotRunning = errors.New("engine: not running")
	// ErrDuplicateLink rejects reuse of a link ID.
	ErrDuplicateLink = errors.New("engine: duplicate link id")
	// ErrUnknownLink reports an ID that is not in the fleet.
	ErrUnknownLink = errors.New("engine: unknown link")
	// ErrRecalPending rejects a second recalibration of a link whose first
	// one has not completed yet.
	ErrRecalPending = errors.New("engine: recalibration already pending")
	// ErrNotAdaptive reports a fleet-control operation on a link that runs
	// without an adaptation loop.
	ErrNotAdaptive = errors.New("engine: link not adaptive")
	// ErrLinkDown reports an operation that needs frames from a link whose
	// supervised source is down (an online recalibration of a dead link,
	// for instance) — retry once the link recovers.
	ErrLinkDown = errors.New("engine: link source down")
)

// Config parameterizes an Engine.
type Config struct {
	// Workers bounds the calibration pool and the number of scoring shards
	// (default GOMAXPROCS). Links start distributed over min(Workers, links)
	// long-lived shards and migrate between them through work stealing: a
	// shard whose links are all retired or starved takes a link from a
	// busy sibling instead of idling. Parallelism is still per link —
	// more workers than links buys nothing.
	Workers int
	// StaticAffinity disables work stealing: links stay on the shard they
	// were assigned to at Run start, as in the original static round-robin
	// scheduler. Scoring semantics are identical either way (each link's
	// windows are scored in stream order by exactly one shard at a time);
	// this switch exists for A/B comparison under skewed fleets — see
	// BenchmarkEngineSteadyStateSkewed.
	StaticAffinity bool
	// WindowSize is the monitoring window in packets (default 25, the
	// paper's operating point at 50 packets/s).
	WindowSize int
	// ThresholdQuantile and ThresholdMargin parameterize per-link threshold
	// calibration from held-out self scores (defaults 0.95 and 1.3, as the
	// facade uses).
	ThresholdQuantile float64
	ThresholdMargin   float64
	// Fusion combines per-link decisions into a site verdict (default
	// KOfN{K: 1}: any positive link trips the site).
	Fusion FusionPolicy
	// Adaptation, when non-nil, enables per-link online adaptation: every
	// calibrated link gets an adapt.Adapter that refreshes its profile on
	// silent windows, re-derives its threshold, and tracks drift health
	// (which quality-weighted fusion consumes). The zero Policy selects the
	// package defaults.
	Adaptation *adapt.Policy
	// OnDecision, when non-nil, is invoked from scoring shards after every
	// scored window. It must be safe for concurrent use and fast.
	OnDecision func(linkID string, d core.Decision)
	// Supervision, when non-nil, decouples ingestion from scoring: every
	// link gets a supervise.Supervisor whose producer goroutine pulls the
	// source into a bounded ring the shard consumes non-blockingly, so one
	// stalled or dead source can never stall its shard siblings. The
	// supervisor also tracks the link's lifecycle (Live/Stale/Down/
	// Recovering) — verdict fusion decays stale links and excludes down
	// ones — and redials reconnectable sources with jittered backoff. The
	// zero Policy selects the package defaults.
	Supervision *supervise.Policy
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.WindowSize <= 0 {
		c.WindowSize = 25
	}
	if c.ThresholdQuantile <= 0 || c.ThresholdQuantile > 1 {
		c.ThresholdQuantile = 0.95
	}
	if c.ThresholdMargin <= 0 {
		c.ThresholdMargin = 1.3
	}
	if c.Fusion == nil {
		c.Fusion = KOfN{K: 1}
	}
	return c
}

// link is one monitored TX–RX pair.
//
// The mutable fields are partitioned by owner rather than guarded by a
// mutex: det/adapter/meanMu are written only while e.calibrating (and read
// afterwards through the e.mu happens-before chain); win/scored/jrec/ewmaNs
// belong to whichever shard currently holds the link — the linkQueue's
// atomic handoff orders them between consecutive owners, so there is one
// writer at a time even as the link migrates; everything Verdict and
// Metrics need is published through state, which readers load without
// locking.
type link struct {
	id       string
	cfg      core.Config
	src      Source
	recycler FrameRecycler // non-nil when src pools its frames
	// sup, when supervision is enabled, owns the link's ingestion: the
	// shard consumes sup instead of src during Run (assigned by
	// ensureShards under e.mu, so the single-reader source contract moves
	// wholesale to the supervisor's producer goroutine).
	sup *supervise.Supervisor

	det *core.Detector
	// adapter is nil when adaptation is disabled. It is an atomic pointer —
	// not part of the owner partition — because the fleet layer's control
	// calls (SuppressRefresh, RelockLink) look it up from arbitrary
	// goroutines while an online recalibration on the owning shard may be
	// swapping it.
	adapter atomic.Pointer[adapt.Adapter]
	meanMu  float64

	// recal is the link's pending online-recalibration request. Posted from
	// any goroutine (under e.mu), claimed and executed by the shard holding
	// the link — the latch that lets Recalibrate run while Run is active
	// without a second writer ever touching the link's detector or adapter.
	recal atomic.Pointer[recalJob]
	// retired marks that the link is finished for the current Run (windows
	// quota met or stream ended) and is in no shard's queue. Posters read
	// it to route a new recal job through the revive queue instead.
	retired atomic.Bool
	// hinted dedupes the link's revive-queue entries (see reviveQueue).
	hinted atomic.Bool

	// win is the link's persistent window slab: one WindowSize-capacity
	// frame buffer reused for every tick of every Run — the replacement for
	// the old per-tick pool round trips.
	win    []*csi.Frame
	scored int
	// ewmaNs tracks the link's smoothed scoring cost (ns per window,
	// α = 1/8), published with each decision — the observability handle for
	// spotting the heavy link a shard is pinned on.
	ewmaNs float64

	// jrec is the link's reusable journal record buffer: emission
	// serializes into jrec and hands the bytes to the engine's writer,
	// which copies before the next tick reuses the buffer, so steady-state
	// journaling allocates nothing. Owned by the shard holding the link.
	jrec []byte

	// needFull asks the holding shard to journal a complete link record at
	// the link's next scored window — set whenever the full state changed
	// outside the journal's view (calibration, import, journal attach), so
	// every delta in the journal has a base record ahead of it.
	needFull bool

	state linkState
}

// recalJob is one posted online recalibration: the packet budget plus a
// completion channel the poster may wait on. err is written (at most once,
// by whichever side completes the job) before done is closed. waited marks
// a job a blocking Recalibrate caller is selecting on: those must be failed
// at Run exit so the caller unblocks, while fire-and-forget jobs
// (RequestRecalibration — the fleet scheduler) survive a Run boundary and
// execute at the next Run's first pass instead of being silently dropped.
type recalJob struct {
	n      int
	done   chan struct{}
	err    error
	waited bool
}

// shard is one long-lived scoring worker. It owns a scratch and a run queue
// of resident links (seeded round-robin by registration order at Run start);
// every per-window buffer it touches hangs off the link it is holding, so
// the steady-state loop shares no mutable state with other shards and takes
// no lock. When its queue runs dry it steals a resident link from a busy
// sibling (unless Config.StaticAffinity), so one heavy link can no longer
// serialize its queue-mates behind it. Shards persist across Runs so their
// scratches stay warm.
type shard struct {
	id int
	sc *core.Scratch
	// dq is the shard's run queue (see linkQueue); revived is scratch space
	// for draining the engine's revive queue.
	dq      linkQueue
	revived []*link
	// Scheduler observability, read by MetricsInto while the run is live.
	windows atomic.Uint64 // windows scored by this shard
	steals  atomic.Uint64 // links taken from a sibling's queue
	busyNs  atomic.Int64  // wall time spent scoring windows (vs polling/idling)
}

// Engine monitors a fleet of links concurrently.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	links   []*link
	byID    map[string]*link
	running bool
	// calibrating guards the whole span of Calibrate/Recalibrate (not just
	// their entry check): Run must not start while a calibration is still
	// pulling frames from a link's single-reader source.
	calibrating bool
	// journal, when non-nil, supplies the writer that receives every link's
	// full records and per-window deltas during Run (see SetJournal). jw is
	// that writer, created once per sink under e.mu; jmu serializes the
	// shards' appends to it so the journal file's record order is the global
	// emission order — the property crash recovery's cut consistency rests
	// on — even as links migrate between shards. The critical section is a
	// buffer append a few hundred bytes long once per scored window
	// (~100 µs of DSP), so the lock is uncontended in practice.
	journal  JournalSink
	jmu      sync.Mutex
	jw       JournalWriter
	runStart time.Time
	shards   []*shard

	// remaining counts the links not yet retired in the current Run; it
	// hitting zero is what ends the shard loops. revive carries hints that
	// a retired link has a posted recalibration (see reviveQueue).
	remaining atomic.Int64
	revive    reviveQueue

	windowsScored atomic.Uint64
	framesSeen    atomic.Uint64
	runNanos      atomic.Int64
}

// New builds an engine; zero-valued config fields take defaults.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{cfg: cfg, byID: make(map[string]*link)}
}

// WindowSize reports the effective monitoring window in packets.
func (e *Engine) WindowSize() int { return e.cfg.WindowSize }

// SetAdaptation installs (or, with nil, removes) the adaptation policy.
// It affects links calibrated afterwards — call it before Calibrate, or
// Recalibrate existing links to pick it up. Rejected while Run is active.
func (e *Engine) SetAdaptation(p *adapt.Policy) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.cfg.Adaptation = p
	return nil
}

// SetSupervision installs (or, with nil, removes) the link-source
// supervision policy; it takes effect at the next Run. Rejected while Run
// is active. Removing supervision drains any frames still buffered in the
// links' ingest rings back to their pooling sources.
func (e *Engine) SetSupervision(p *supervise.Policy) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running || e.calibrating {
		return ErrRunning
	}
	e.cfg.Supervision = p
	if p == nil {
		for _, l := range e.links {
			if l.sup != nil {
				l.sup.Flush()
				l.sup = nil
			}
		}
	}
	return nil
}

// AddLink registers a link under a unique ID. The source is owned by the
// engine from here on: calibration and monitoring both draw frames from it,
// always from a single goroutine at a time.
func (e *Engine) AddLink(id string, cfg core.Config, src Source) error {
	if id == "" {
		return fmt.Errorf("empty link id: %w", ErrUnknownLink)
	}
	if src == nil {
		return fmt.Errorf("link %s: nil source", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.running {
		return ErrRunning
	}
	if _, ok := e.byID[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateLink, id)
	}
	l := &link{id: id, cfg: cfg, src: src}
	l.recycler, _ = src.(FrameRecycler)
	e.links = append(e.links, l)
	e.byID[id] = l
	return nil
}

// Links lists the fleet's link IDs in registration order.
func (e *Engine) Links() []string {
	return e.LinksInto(nil)
}

// LinksInto is Links appending into a caller-owned buffer (reset to length
// zero first), so a report loop can poll the fleet without allocating.
func (e *Engine) LinksInto(dst []string) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	dst = dst[:0]
	for _, l := range e.links {
		dst = append(dst, l.id)
	}
	return dst
}

// pull reads n frames from a source, counting them into the metrics. A
// supervised source's non-blocking ErrNoFrame is absorbed by a short wait —
// calibration genuinely needs the frames — except when the link is Down,
// which fails fast with ErrLinkDown rather than hanging until ctx ends.
func (e *Engine) pull(ctx context.Context, src Source, dst []*csi.Frame, n int) ([]*csi.Frame, error) {
	for len(dst) < n {
		if err := ctx.Err(); err != nil {
			return dst, err
		}
		f, err := src.Next()
		if err != nil {
			if errors.Is(err, supervise.ErrNoFrame) {
				if sup, ok := src.(*supervise.Supervisor); ok && sup.Lifecycle() == adapt.LifecycleDown {
					return dst, fmt.Errorf("capture %d/%d frames: %w", len(dst), n, ErrLinkDown)
				}
				time.Sleep(200 * time.Microsecond)
				continue
			}
			return dst, err
		}
		e.framesSeen.Add(1)
		dst = append(dst, f)
	}
	return dst, nil
}

// Calibrate calibrates every link in parallel on the worker pool: n
// profile frames plus n held-out frames are drawn from each link's source,
// a static profile and detector are built (§IV-C calibration stage), the
// decision threshold is set from the held-out self scores, and the link's
// mean multipath factor μ is recorded for the metrics block. n is raised to
// cover at least two self-score windows.
func (e *Engine) Calibrate(ctx context.Context, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	links := append([]*link(nil), e.links...)
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if len(links) == 0 {
		return ErrNoLinks
	}
	n = e.normalizeCalPackets(n)
	return e.forEach(ctx, links, func(ctx context.Context, l *link) error {
		if l.sup != nil {
			// Offline calibration draws from the raw source; frames a past
			// Run left buffered in the ingest ring would otherwise be
			// replayed against the fresh baseline.
			l.sup.Flush()
		}
		if err := e.calibrateLink(ctx, l, n, l.src); err != nil {
			return err
		}
		clearStaleRecal(l)
		return nil
	})
}

// clearStaleRecal completes a fire-and-forget recalibration left over from a
// previous Run once an offline rebuild has just made it redundant. Only
// called from the offline calibration paths (engine not running), so it
// cannot race a shard execution.
func clearStaleRecal(l *link) {
	if job := l.recal.Swap(nil); job != nil {
		close(job.done)
	}
}

// forEach runs fn over links with at most cfg.Workers in flight; it waits
// for all and returns the first error.
func (e *Engine) forEach(ctx context.Context, links []*link, fn func(context.Context, *link) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, e.cfg.Workers)
	errs := make(chan error, len(links))
	var wg sync.WaitGroup
	for _, l := range links {
		wg.Add(1)
		go func(l *link) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs <- ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := fn(ctx, l); err != nil {
				errs <- fmt.Errorf("link %s: %w", l.id, err)
				cancel()
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return ctx.Err()
}

// calibrateLink rebuilds one link's detector state from 2n fresh frames
// drawn from src — the raw source for offline calibration, the link's
// supervisor during an online (mid-Run) recalibration, where the producer
// goroutine owns the raw source.
func (e *Engine) calibrateLink(ctx context.Context, l *link, n int, src Source) error {
	cal, err := e.pull(ctx, src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("calibration capture: %w", err)
	}
	profile, err := core.Calibrate(l.cfg, cal)
	if err != nil {
		return err
	}
	det, err := core.NewDetector(l.cfg, profile)
	if err != nil {
		return err
	}
	holdout, err := e.pull(ctx, src, make([]*csi.Frame, 0, n), n)
	if err != nil {
		return fmt.Errorf("holdout capture: %w", err)
	}
	null, err := det.SelfScores(holdout, e.cfg.WindowSize, e.cfg.WindowSize)
	if err != nil {
		return err
	}
	if _, err := det.CalibrateThreshold(null, e.cfg.ThresholdQuantile, e.cfg.ThresholdMargin); err != nil {
		return err
	}
	// A RE-calibration floors the fresh threshold at the link's previous
	// operational one. The fresh estimate rests on a dozen null windows —
	// a capture that happens to ride a quiet stretch of the receiver's
	// slow gain wander produces a threshold the very next minutes alarm
	// over — while the outgoing threshold distils every null the link has
	// scored since deployment. Scores are relative statistics (dB-domain
	// distances), so the old threshold remains meaningful across the gain
	// steps and baseline shifts that prompted the rebuild.
	if l.det != nil {
		if prev := l.det.Threshold(); prev > det.Threshold() {
			det.SetThreshold(prev)
		}
	}
	meanMu, err := linkMeanMu(cal, l.cfg)
	if err != nil {
		return err
	}
	var adapter *adapt.Adapter
	if e.cfg.Adaptation != nil {
		adapter, err = adapt.NewAdapter(*e.cfg.Adaptation, det, null)
		if err != nil {
			return fmt.Errorf("adaptation: %w", err)
		}
	}
	// Holdout frames are done; calibration frames may be recycled only when
	// sanitization is on (otherwise the profile retains them directly).
	l.recycleFrames(holdout)
	if l.cfg.Sanitize {
		l.recycleFrames(cal)
	}
	l.det = det
	l.adapter.Store(adapter)
	l.meanMu = meanMu
	l.needFull = true
	health := adapt.Health{}
	if adapter != nil {
		health = adapter.Health()
	}
	l.state.publishCalibration(meanMu, det.Threshold(), adapter != nil, health)
	return nil
}

// normalizeCalPackets raises a calibration packet budget to the floors
// Calibrate applies (two self-score windows, 50 packets minimum).
func (e *Engine) normalizeCalPackets(n int) int {
	if n < 2*e.cfg.WindowSize {
		n = 2 * e.cfg.WindowSize
	}
	if n < 50 {
		n = 50
	}
	return n
}

// Recalibrate rebuilds one link's profile, threshold and (when enabled)
// adapter from a fresh empty-room capture — the recovery path for a link
// whose adaptation health reports NeedsRecalibration after a step change
// (furniture moved, antenna bumped). The caller is asserting the room is
// empty again, exactly as for the initial Calibrate.
//
// While Run is active the recalibration happens online: the request is
// posted to the link, and the shard currently holding it claims and
// executes the rebuild at the link's next turn — sibling links keep scoring
// throughout — while Recalibrate blocks until that rebuild completes or ctx
// ends. A link already retired this Run (quota met or stream ended) is
// revived for the rebuild: any shard picks the job up from the revive
// queue, so late recalibrations are serviced instead of rejected. An
// unknown link returns ErrUnknownLink in every engine state (consistent
// with ScoreWindow); ErrRunning is returned only when a fleet-wide
// Calibrate is still in flight, and ErrRecalPending when the link already
// has an unfinished online recalibration.
func (e *Engine) Recalibrate(ctx context.Context, linkID string, n int) error {
	n = e.normalizeCalPackets(n)
	e.mu.Lock()
	l, ok := e.byID[linkID]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	if e.running {
		job := &recalJob{n: n, done: make(chan struct{}), waited: true}
		if err := e.postRecal(l, job); err != nil {
			e.mu.Unlock()
			return fmt.Errorf("link %s: %w", linkID, err)
		}
		e.mu.Unlock()
		select {
		case <-job.done:
			if job.err != nil {
				return fmt.Errorf("link %s: %w", linkID, job.err)
			}
			return nil
		case <-ctx.Done():
			// The job stays posted; the shard that claims it (or the
			// run-exit sweep) completes it without this caller.
			return ctx.Err()
		}
	}
	e.calibrating = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if l.sup != nil {
		l.sup.Flush()
	}
	if err := e.calibrateLink(ctx, l, n, l.src); err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	clearStaleRecal(l)
	return nil
}

// RequestRecalibration posts an online recalibration without waiting for it:
// the shard holding the link rebuilds its profile at the link's next turn
// (a retired link is revived through the revive queue), with the outcome
// observable through the link's published health and metrics. This is the
// entry point the fleet coordinator schedules staggered fleet
// recalibrations through. Only valid while Run is active.
func (e *Engine) RequestRecalibration(linkID string, n int) error {
	n = e.normalizeCalPackets(n)
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if !e.running {
		return fmt.Errorf("link %s: %w", linkID, ErrNotRunning)
	}
	if err := e.postRecal(l, &recalJob{n: n, done: make(chan struct{})}); err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	return nil
}

// postRecal installs a recalibration job on a running link. Under e.mu.
//
// The pending check reads the recal slot AND the published Recalibrating
// flag: serviceRecal raises the flag before claiming (emptying) the slot
// and lowers it only after the rebuild, so with sequentially consistent
// atomics there is no instant at which a rebuild is in flight and both
// reads come back clear — a second job can never be accepted while one
// executes, which is what makes serviceRecal's executor unique.
func (e *Engine) postRecal(l *link, job *recalJob) error {
	if l.state.recalibrating() || !l.recal.CompareAndSwap(nil, job) {
		return ErrRecalPending
	}
	if l.retired.Load() {
		// The link is in no shard's queue; hint the job to whichever shard
		// drains the revive queue next. Ordering: the job is posted before
		// this load, and retire() pushes its own hint after storing retired,
		// so whichever side of the race runs second sees the other — the
		// job cannot be stranded.
		e.revive.push(l)
	}
	return nil
}

// RecalibrationPending reports whether linkID has a recalibration posted or
// executing — the fleet coordinator's staggering signal: the next scheduled
// rebuild is dispatched only once this turns false for the previous one.
// Unknown links report false.
func (e *Engine) RecalibrationPending(linkID string) bool {
	e.mu.Lock()
	l, ok := e.byID[linkID]
	e.mu.Unlock()
	if !ok {
		return false
	}
	if l.recal.Load() != nil {
		return true
	}
	var snap linkSnap
	l.state.load(&snap)
	return snap.Recalibrating
}

// adapterOf resolves a link's adapter for a fleet-control operation.
func (e *Engine) adapterOf(linkID string) (*adapt.Adapter, error) {
	e.mu.Lock()
	l, ok := e.byID[linkID]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	ad := l.adapter.Load()
	if ad == nil {
		return nil, fmt.Errorf("link %s: %w", linkID, ErrNotAdaptive)
	}
	return ad, nil
}

// SuppressRefresh holds off (or resumes) a link's profile refreshes — the
// fleet layer raises it while it attributes the link's drift to a localized
// perturbation (likely a person) that must not be absorbed into the
// baseline. Safe to call while Run is active; takes effect at the link's
// next scored window.
func (e *Engine) SuppressRefresh(linkID string, on bool) error {
	ad, err := e.adapterOf(linkID)
	if err != nil {
		return err
	}
	ad.SetRefreshSuppressed(on)
	return nil
}

// RelockLink asks a link's adapter to adopt its next window wholesale as the
// new baseline, clearing any quarantine — the fleet layer's ambient-drift
// recovery, invoked when correlated evidence across the site shows the shift
// is environmental rather than human. Safe to call while Run is active.
func (e *Engine) RelockLink(linkID string) error {
	ad, err := e.adapterOf(linkID)
	if err != nil {
		return err
	}
	ad.RequestRelock()
	return nil
}

// linkMeanMu averages the mean multipath factor over up to 25 calibration
// frames — the §IV-A deployment-assessment metric surfaced per link in the
// metrics block.
func linkMeanMu(frames []*csi.Frame, cfg core.Config) (float64, error) {
	const maxFrames = 25
	if len(frames) > maxFrames {
		frames = frames[:maxFrames]
	}
	ant := 0
	if frames[0].NumAntennas() > 1 {
		ant = 1
	}
	sc := core.NewScratch()
	mu := make([]float64, cfg.Grid.Len())
	var acc float64
	for _, f := range frames {
		if err := sc.MultipathFactorsInto(mu, f.CSI[ant], cfg.Grid); err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		m, err := core.MeanMultipathFactor(mu)
		if err != nil {
			return 0, fmt.Errorf("assess: %w", err)
		}
		acc += m
	}
	return acc / float64(len(frames)), nil
}

// ensureShards (re)builds the shard set for the current fleet under e.mu.
// Shard structs and their scratches persist across Runs — only the link
// distribution is refreshed (round-robin seed; stealing rebalances from
// there) — so a warmed-up engine re-enters its steady state without
// reallocating anything.
func (e *Engine) ensureShards() {
	n := e.cfg.Workers
	if n > len(e.links) {
		n = len(e.links)
	}
	if len(e.shards) != n {
		shards := make([]*shard, n)
		for i := range shards {
			if i < len(e.shards) {
				shards[i] = e.shards[i]
			} else {
				shards[i] = &shard{id: i, sc: core.NewScratch()}
			}
		}
		e.shards = shards
	}
	for _, sh := range e.shards {
		// Queues are sized for the whole fleet: stealing can migrate every
		// link onto one shard.
		sh.dq.reset(len(e.links))
	}
	e.revive.reset(len(e.links))
	e.remaining.Store(int64(len(e.links)))
	if e.journal != nil && e.jw == nil {
		e.jw = e.journal.NewWriter()
	}
	for i, l := range e.links {
		sh := e.shards[i%n]
		l.scored = 0
		l.retired.Store(false)
		l.hinted.Store(false)
		if cap(l.win) < e.cfg.WindowSize {
			l.win = make([]*csi.Frame, 0, e.cfg.WindowSize)
		}
		if len(l.win) > 0 {
			// A cancelled supervised run can leave a part-assembled window;
			// recycle it rather than scoring stale frames a Run later.
			l.recycleFrames(l.win)
			l.win = l.win[:0]
		}
		if e.cfg.Supervision != nil {
			if l.sup == nil {
				pol := *e.cfg.Supervision
				// Decorrelate the per-link backoff jitter streams: links
				// sharing one seed would redial a restarted collector in
				// exact unison, defeating the jitter.
				pol.Seed += int64(i)
				l.sup = supervise.New(l.id, pol, l.src, l.recycler)
			}
		} else if l.sup != nil {
			l.sup.Flush()
			l.sup = nil
		}
		sh.dq.push(l)
	}
	// Warm every shard's scratch for every link's kernel: stealing can
	// migrate any link onto any shard, and a heavy link's first window on a
	// cold holder would otherwise pay a one-time buffer growth mid
	// steady-state (the stray bytes/op the Skewed benchmark used to record).
	// Pure sizing, no compute — on a warmed engine this is a no-op.
	for _, sh := range e.shards {
		for _, l := range e.links {
			if l.det == nil {
				continue
			}
			if prof := l.det.Profile(); prof != nil && len(prof.MeanAmp) > 0 {
				l.det.Kernel().WarmScratch(sh.sc, len(prof.MeanAmp), e.cfg.WindowSize)
			}
		}
	}
}

// Run monitors the whole fleet until every link has scored windowsPerLink
// windows (0 = until its source ends or ctx is cancelled). Links are seeded
// round-robin onto min(Workers, links) persistent shards and rebalance from
// there by work stealing: a shard whose queue runs dry (links retired,
// starved, or stolen) takes a link from a busy sibling instead of idling,
// so a fleet with one heavy link or one retiring early keeps every worker
// busy. Each link is still advanced one window at a time by exactly one
// shard — the queues hand a link off whole — so every link's windows are
// scored in stream order and its decision sequence is bit-identical
// whatever the shard count or migration history (see
// TestEngineStealingMatchesSequential). Every link must be calibrated
// first.
//
// A source that blocks in Next still stalls whichever shard is driving it
// for the duration of one window, so fleets fed by blocking sources
// (csinet) should enable Config.Supervision, which moves every source
// behind a per-link ingest ring the shards consume non-blockingly; stealing
// then keeps the remaining shards saturated with whatever links have frames
// buffered.
func (e *Engine) Run(ctx context.Context, windowsPerLink int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	if len(e.links) == 0 {
		e.mu.Unlock()
		return ErrNoLinks
	}
	for _, l := range e.links {
		if l.det == nil {
			e.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrNotCalibrated, l.id)
		}
	}
	e.ensureShards()
	e.running = true
	e.runStart = time.Now()
	shards := e.shards
	var sups []*supervise.Supervisor
	if e.cfg.Supervision != nil {
		sups = make([]*supervise.Supervisor, 0, len(e.links))
		for _, l := range e.links {
			sups = append(sups, l.sup)
		}
	}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.runNanos.Add(int64(time.Since(e.runStart)))
		e.running = false
		// A recalibration a blocking caller is waiting on must fail now so
		// the caller unblocks; a fire-and-forget job (the fleet scheduler's)
		// stays posted and executes at the next Run's first pass — dropping
		// it would silently cancel a scheduled rebuild the coordinator
		// already counts as dispatched. The shards have all exited by now,
		// so the swap cannot race an execution in flight.
		for _, l := range e.links {
			if job := l.recal.Load(); job != nil && job.waited {
				l.recal.Store(nil)
				job.err = fmt.Errorf("run ended before recalibration: %w", ErrNotRunning)
				close(job.done)
			}
		}
		e.mu.Unlock()
	}()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Supervised ingestion starts first so the shards find frames buffering
	// already, and is torn down last (after every shard has stopped
	// consuming): cancel unblocks the producers, Wait joins them.
	for i, s := range sups {
		if err := s.Start(ctx); err != nil {
			cancel()
			for _, p := range sups[:i] {
				p.Wait()
			}
			return err
		}
	}
	defer func() {
		cancel()
		for _, s := range sups {
			s.Wait()
		}
	}()

	// First-error recorder: shards may fail any number of times, so errors
	// fold into one slot rather than a channel that could fill and block.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		if err == nil || errors.Is(err, context.Canceled) {
			return
		}
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			e.runShard(ctx, sh, shards, windowsPerLink, fail)
		}(sh)
	}
	wg.Wait()
	// Hand the buffered journal records to the sink, so the journal's
	// durable state trails a finished or cancelled run by at most the sync
	// cadence. (Each link already flushed when it retired; this picks up
	// records a cancellation interrupted.)
	if e.jw != nil {
		e.jmu.Lock()
		e.jw.Flush()
		e.jmu.Unlock()
	}
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}

// runShard is one worker's scheduling loop: take the oldest resident link
// from the shard's queue, drive it one step (a scored window or a claimed
// recalibration), push it back — FIFO, so residents advance round-robin.
// When the queue runs dry the shard steals a resident from a busy sibling
// (unless Config.StaticAffinity) and adopts it; when nothing is stealable
// it backs off with a ramping sleep. Between takes it services revive-queue
// hints (recalibrations posted to links already retired). The loop ends
// when every link in the fleet has retired or the context does — shards no
// longer exit early when "their" links finish, because links are no longer
// theirs.
//
// The loop owns all the state it touches while holding a link — the link's
// slab, detector and journal buffer, the shard scratch — handed off through
// the queue's atomics, so the steady state runs without locks or
// allocations.
func (e *Engine) runShard(ctx context.Context, sh *shard, shards []*shard, windowsPerLink int, fail func(error)) {
	done := ctx.Done()
	var idle time.Duration
	var futile int64
	for e.remaining.Load() > 0 {
		select {
		case <-done:
			return
		default:
		}
		if e.revive.count.Load() != 0 {
			sh.revived = e.revive.drain(sh.revived[:0])
			for _, l := range sh.revived {
				if e.serviceRecal(ctx, l) {
					futile, idle = 0, 0
				}
			}
		}
		l := sh.dq.take()
		if l == nil && !e.cfg.StaticAffinity {
			if l = e.steal(sh, shards); l != nil {
				sh.steals.Add(1)
			}
		}
		if l == nil {
			// Nothing resident and nothing stealable: every live link is in
			// flight on another shard or the fleet is retiring. Back off —
			// ramping to 2ms — rather than spin; the loop-top done check
			// absorbs the shutdown latency.
			if idle < 2*time.Millisecond {
				idle += 100 * time.Microsecond
			}
			time.Sleep(idle)
			continue
		}
		progressed, keep, err := e.advance(ctx, done, sh, l, windowsPerLink)
		if err != nil {
			fail(fmt.Errorf("link %s: %w", l.id, err))
			return
		}
		if keep {
			sh.dq.push(l)
		}
		if progressed {
			futile, idle = 0, 0
			continue
		}
		// A starved link (empty ingest ring) went back to the queue without
		// work. Only once a whole round of takes is futile — every resident
		// starved — does the shard park itself, with the same 100µs→2ms
		// ramp as the empty-queue path.
		futile++
		if futile > sh.dq.size() {
			if idle < 2*time.Millisecond {
				idle += 100 * time.Microsecond
			}
			time.Sleep(idle)
			futile = 0
		}
	}
	// The fleet has retired and the run is completing normally; pick up any
	// late revive hints so a blocking Recalibrate caller isn't left for the
	// run-exit sweep to fail when the job could simply be serviced.
	if ctx.Err() == nil {
		sh.revived = e.revive.drain(sh.revived[:0])
		for _, l := range sh.revived {
			e.serviceRecal(ctx, l)
		}
	}
}

// steal takes one resident link from a sibling shard's queue, scanning
// round-robin from the thief's successor. Victims keep their last resident
// (size < 2 is skipped): stealing a shard's only link would just ping-pong
// it between queues, and a single serial link can't be sped up anyway.
func (e *Engine) steal(sh *shard, shards []*shard) *link {
	for k := 1; k < len(shards); k++ {
		v := shards[(sh.id+k)%len(shards)]
		if v.dq.size() < 2 {
			continue
		}
		if l := v.dq.take(); l != nil {
			return l
		}
	}
	return nil
}

// advance drives one held link a single step: claim and execute its posted
// recalibration, or score one window. It reports whether the link made
// progress (the shard's backoff signal), whether it stays in rotation, and
// a fatal stream error if any.
func (e *Engine) advance(ctx context.Context, done <-chan struct{}, sh *shard, l *link, windowsPerLink int) (progressed, keep bool, err error) {
	// A posted recalibration runs here, on the shard currently holding the
	// link, so the detector and adapter keep exactly one writer. It
	// replaces this turn's window for this link only — every other link,
	// on this shard and its siblings, keeps scoring. A link that has
	// already met its windows quota honors the request too, via the revive
	// queue rather than this path.
	if l.recal.Load() != nil {
		e.serviceRecal(ctx, l)
		return true, true, nil
	}
	res, err := e.tick(done, sh, l)
	if err != nil {
		return false, false, err
	}
	switch res {
	case tickScored:
		sh.windows.Add(1)
		l.scored++
		if windowsPerLink > 0 && l.scored >= windowsPerLink {
			e.retire(l)
			return true, false, nil
		}
		return true, true, nil
	case tickEnded:
		e.retire(l)
		return false, false, nil
	default: // tickStarved
		// Supervised link with an empty ring: back into the queue, its
		// queue-mates keep scoring — the whole point of the rings.
		return false, true, nil
	}
}

// retire takes a finished link out of rotation for the rest of the Run:
// quota met or stream ended. The remaining count hitting zero is what ends
// the shard loops. The link's journal trail is flushed now — in an
// unbounded run no later flush would come — and a recalibration that raced
// the retirement is hinted to the revive queue (see postRecal for why at
// least one side always pushes).
func (e *Engine) retire(l *link) {
	l.retired.Store(true)
	e.remaining.Add(-1)
	if e.jw != nil {
		e.jmu.Lock()
		e.jw.Flush()
		e.jmu.Unlock()
	}
	if l.recal.Load() != nil {
		e.revive.push(l)
	}
}

// serviceRecal claims and executes l's posted recalibration, if any: the
// link's stream is drained into a fresh calibration capture and the
// detector, adapter and published state are rebuilt in place. While it
// runs, the link's published state carries the Recalibrating flag, so
// verdict fusion excludes the link (it has no current opinion) instead of
// reusing its stale last decision. A failed rebuild keeps the old detector
// — calibrateLink swaps state in only on success — and reports through the
// job, never by killing the run.
//
// The executor is unique per job: for a live link only the holding shard
// gets here (queue ownership), and for a retired link only one shard drains
// the link's deduplicated revive hint. Raising the Recalibrating flag
// BEFORE emptying the recal slot closes the loop — postRecal checks both,
// so no second job (whose executor could overlap this one) is accepted
// until the flag drops after the rebuild. The claim CAS is defensive depth,
// not the uniqueness argument.
func (e *Engine) serviceRecal(ctx context.Context, l *link) bool {
	job := l.recal.Load()
	if job == nil {
		return false
	}
	l.state.setRecalibrating(true)
	if !l.recal.CompareAndSwap(job, nil) {
		l.state.setRecalibrating(false)
		return false
	}
	src := l.src
	if l.sup != nil {
		// The producer goroutine owns the raw source while Run is active, so
		// the rebuild draws through the supervisor's ring. The backlog the
		// ring holds predates this request — under the facade it can even
		// predate the occupied→empty monitoring switch — so shed it and
		// calibrate on frames captured from here on.
		l.sup.Flush()
		src = l.sup
	}
	job.err = e.calibrateLink(ctx, l, job.n, src)
	// A successful rebuild is journaled immediately as a full record — the
	// walked baseline the deltas were building on just got replaced, so a
	// crash between here and the link's next scored window must not resume
	// onto the superseded one.
	if job.err == nil {
		e.jmu.Lock()
		e.journalFull(l)
		e.jmu.Unlock()
	}
	l.state.setRecalibrating(false)
	close(job.done)
	return true
}

// journalFull serializes a complete link record into the link's buffer and
// hands it to the journal writer, clearing the needFull mark. Called with
// e.jmu held. A serialization failure keeps the mark so the next scored
// window retries; with no writer the mark survives for a future journaled
// Run.
func (e *Engine) journalFull(l *link) {
	if e.jw == nil {
		return
	}
	rec, err := appendLinkRecord(l.jrec[:0], l)
	if err != nil {
		return
	}
	l.jrec = rec
	e.jw.AppendFull(l.id, rec)
	l.needFull = false
}

// tickResult is one tick's outcome for the shard loop.
type tickResult int

const (
	// tickScored: a full window was assembled and scored.
	tickScored tickResult = iota
	// tickStarved: a supervised link had no frame buffered; the partial
	// window stays in the link's slab and assembly resumes next pass.
	tickStarved
	// tickEnded: the link's stream ended (EOF, cancellation, or an error —
	// reported alongside).
	tickEnded
)

// tick pulls and scores one window for a link: assemble into the link's
// slab, score against its detector with the shard scratch, let the adapter
// observe, recycle the frames, publish the decision. done is polled between
// frames — a non-blocking channel read, a few ns — so cancellation lands
// mid-window even on slow real-time sources, not a whole queue round later.
// A supervised link draws from its ingest ring and never blocks: an empty
// ring parks the partial window in l.win (kept across turns, following the
// link if it migrates) and returns tickStarved so the shard moves on to its
// queue-mates.
func (e *Engine) tick(done <-chan struct{}, sh *shard, l *link) (tickResult, error) {
	src := l.src
	if l.sup != nil {
		src = l.sup
	}
	for len(l.win) < e.cfg.WindowSize {
		select {
		case <-done:
			e.framesSeen.Add(uint64(len(l.win)))
			l.recycleFrames(l.win)
			l.win = l.win[:0]
			return tickEnded, nil
		default:
		}
		f, err := src.Next()
		if err != nil {
			if errors.Is(err, supervise.ErrNoFrame) {
				return tickStarved, nil
			}
			e.framesSeen.Add(uint64(len(l.win)))
			l.recycleFrames(l.win)
			l.win = l.win[:0]
			if errors.Is(err, io.EOF) || errors.Is(err, context.Canceled) {
				return tickEnded, nil
			}
			return tickEnded, err
		}
		l.win = append(l.win, f)
	}
	e.framesSeen.Add(uint64(len(l.win)))

	t0 := time.Now()
	dec, err := l.det.DetectScratch(l.win, sh.sc)
	adapter := l.adapter.Load()
	var health adapt.Health
	if err == nil && adapter != nil {
		health, err = adapter.Observe(l.win, dec)
	}
	l.recycleFrames(l.win)
	l.win = l.win[:0]
	if err != nil {
		return tickEnded, err
	}
	// Smooth the window's scoring cost into the link's EWMA (α = 1/8) —
	// published with the decision, so operators can see which link the
	// heavy DSP lives on and why it migrates. The same sample feeds the
	// shard's busy-time counter: scoring dominates a shard's useful work,
	// and timing only scored windows keeps the starved-poll path free of
	// clock calls.
	elapsed := time.Since(t0)
	sh.busyNs.Add(int64(elapsed))
	dt := float64(elapsed)
	if l.ewmaNs == 0 {
		l.ewmaNs = dt
	} else {
		l.ewmaNs += (dt - l.ewmaNs) * 0.125
	}
	threshold := dec.Threshold
	if adapter != nil {
		threshold = health.Threshold
	}
	l.state.publishDecision(dec, threshold, health, l.ewmaNs)
	e.windowsScored.Add(1)
	if cb := e.cfg.OnDecision; cb != nil {
		cb(l.id, dec)
	}
	if e.jw != nil {
		e.jmu.Lock()
		if l.needFull {
			e.journalFull(l)
		}
		if adapter != nil {
			l.jrec = adapter.AppendDelta(l.jrec[:0])
			e.jw.AppendDelta(l.id, l.jrec)
		}
		e.jmu.Unlock()
	}
	return tickScored, nil
}

// recycleFrames hands a scored window's frames back to a pooling source.
// Safe after scoring: the detector's profile never retains monitoring
// frames (the sanitize path copies into scratch-owned buffers, and the raw
// path only reads).
func (l *link) recycleFrames(frames []*csi.Frame) {
	if l.recycler == nil {
		return
	}
	for _, f := range frames {
		l.recycler.Recycle(f)
	}
}

// ScoreWindow synchronously scores one externally assembled window on the
// named link — for tests and ad-hoc probes. It is rejected while Run or a
// calibration is active: the link's detector, adapter and published state
// have exactly one writer at a time.
func (e *Engine) ScoreWindow(linkID string, window []*csi.Frame) (core.Decision, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.running || e.calibrating {
		return core.Decision{}, ErrRunning
	}
	if l.det == nil {
		return core.Decision{}, fmt.Errorf("%w: %s", ErrNotCalibrated, linkID)
	}
	dec, err := l.det.Detect(window)
	if err != nil {
		return core.Decision{}, err
	}
	adapter := l.adapter.Load()
	var health adapt.Health
	if adapter != nil {
		if health, err = adapter.Observe(window, dec); err != nil {
			return core.Decision{}, err
		}
	}
	threshold := dec.Threshold
	if adapter != nil {
		threshold = health.Threshold
	}
	l.state.publishDecision(dec, threshold, health, l.ewmaNs)
	e.windowsScored.Add(1)
	e.framesSeen.Add(uint64(len(window)))
	return dec, nil
}

// Verdict fuses the latest decision of every link that has scored at least
// one window into a site-level verdict under the configured policy. Each
// decision carries the link's characterized quality weight — its mean
// multipath factor μ (§IV-A: higher μ means a more detection-sensitive
// link) normalized across the fleet, discounted by its current adaptation
// health — so weight-aware policies (WeightedKOfN) let well-characterized
// healthy links dominate drifting or insensitive ones.
func (e *Engine) Verdict() (SiteVerdict, error) {
	var v SiteVerdict
	if err := e.VerdictInto(&v); err != nil {
		return SiteVerdict{}, err
	}
	return v, nil
}

// VerdictInto is Verdict reusing the caller's SiteVerdict — in particular
// its Links slice — so a steady-state report loop fuses the fleet without
// allocating. Link state is read from lock-free published snapshots; the
// fleet lock is held only to walk the link list, never while scoring.
//
// Under supervision the verdict is coverage-aware: each link's lifecycle is
// read from its supervisor and stamped into its Health, so Stale links fuse
// at a decayed weight, Down/Recovering links are excluded outright, and
// v.Coverage reports the degradation. A site with nothing left to vote —
// every link down, recovering, recalibrating, or quarantined — returns a
// nil error with v.Inconclusive set rather than an error: dead coverage is
// a reportable site state, not a caller bug. ErrNoDecisions is still
// returned before any link has scored its first window.
func (e *Engine) VerdictInto(v *SiteVerdict) error {
	decisions := v.Links[:0]
	var snap linkSnap
	e.mu.Lock()
	if len(e.links) == 0 {
		e.mu.Unlock()
		return ErrNoLinks
	}
	running := e.running
	var maxMu float64
	for _, l := range e.links {
		l.state.load(&snap)
		if snap.Windows > 0 && snap.MeanMu > maxMu {
			maxMu = snap.MeanMu
		}
	}
	cov := Coverage{Links: len(e.links)}
	excluded := 0
	for _, l := range e.links {
		l.state.load(&snap)
		lc := adapt.LifecycleUnsupervised
		if running && l.sup != nil {
			lc = l.sup.Lifecycle()
		}
		switch lc {
		case adapt.LifecycleLive:
			cov.Live++
		case adapt.LifecycleStale:
			cov.Stale++
		case adapt.LifecycleDown:
			cov.Down++
		case adapt.LifecycleRecovering:
			cov.Recovering++
		}
		if snap.Recalibrating {
			cov.Recalibrating++
		}
		if snap.Windows == 0 {
			continue
		}
		if snap.Recalibrating {
			// A recalibrating link has no current opinion: its last decision
			// predates the rebuild in progress, so fusing it would let a
			// stale alarm (or a stale all-clear) outlive its baseline.
			excluded++
			continue
		}
		if lc == adapt.LifecycleDown || lc == adapt.LifecycleRecovering {
			// Same reasoning on the connectivity axis: the link's last
			// decision predates the outage, and a recovering link hasn't
			// re-proven itself yet.
			excluded++
			continue
		}
		snap.Health.Lifecycle = lc
		quality := 1.0
		if maxMu > 0 && snap.MeanMu > 0 {
			quality = snap.MeanMu / maxMu
		}
		decisions = append(decisions, LinkDecision{
			LinkID:   l.id,
			Decision: snap.Last,
			Weight:   quality * snap.Health.Weight(),
			Health:   snap.Health,
		})
		cov.Fused++
	}
	e.mu.Unlock()
	if len(decisions) == 0 && excluded > 0 {
		// Links have scored but every one is currently unusable: an
		// explicit inconclusive verdict, not an error — the caller's report
		// loop keeps running and sees the site recover through Coverage.
		*v = SiteVerdict{Inconclusive: true, Policy: e.cfg.Fusion.String(), Links: decisions, Coverage: cov}
		return nil
	}
	out, err := e.cfg.Fusion.Fuse(decisions)
	if err != nil {
		if errors.Is(err, ErrAllQuarantined) {
			// The drift-axis dead site (every vote quarantined away) gets
			// the same explicit inconclusive treatment as the dead-coverage
			// one; the per-link evidence stays available in v.Links.
			*v = SiteVerdict{Inconclusive: true, Policy: e.cfg.Fusion.String(), Links: decisions, Coverage: cov}
			return nil
		}
		v.Links = decisions
		return err
	}
	out.Coverage = cov
	*v = out
	return nil
}
