package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/scenario"
)

// trackedSource is a pooling extractor source that records frame checkout
// state: Next must never hand out a frame that is still in use, and Recycle
// must only receive frames that are. Run under -race (as CI does) it also
// exercises the assembler/worker concurrency of the recycle path.
type trackedSource struct {
	x *csi.Extractor

	mu         sync.Mutex
	free       []*csi.Frame
	inUse      map[*csi.Frame]bool
	violations atomic.Int64
}

func newTrackedSource(t *testing.T, caseN int, seed int64) (*trackedSource, core.Config) {
	t.Helper()
	s, err := scenario.LinkCase(caseN, seed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
	return &trackedSource{x: x, inUse: make(map[*csi.Frame]bool)}, cfg
}

func (s *trackedSource) Next() (*csi.Frame, error) {
	s.mu.Lock()
	var f *csi.Frame
	if n := len(s.free); n > 0 {
		f = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		f = csi.NewFrame(len(s.x.Env.RX.Elements), s.x.Grid.Len())
	}
	if s.inUse[f] {
		s.violations.Add(1)
	}
	s.inUse[f] = true
	s.mu.Unlock()
	if err := s.x.CaptureInto(f, nil); err != nil {
		return nil, err
	}
	return f, nil
}

func (s *trackedSource) Recycle(f *csi.Frame) {
	s.mu.Lock()
	if !s.inUse[f] {
		s.violations.Add(1)
	} else {
		delete(s.inUse, f)
		s.free = append(s.free, f)
	}
	s.mu.Unlock()
}

// TestEnginePooledFramesNeverAliased runs a multi-link fleet on pooled
// frames across a pool of scoring workers and asserts no frame is ever
// checked out twice concurrently or recycled twice — i.e. the engine's
// recycle-after-score protocol never aliases pooled frames across workers.
func TestEnginePooledFramesNeverAliased(t *testing.T) {
	const links = 3
	e := New(Config{Workers: 4, WindowSize: 25, Fusion: KOfN{K: 1}})
	sources := make([]*trackedSource, 0, links)
	for i := 0; i < links; i++ {
		src, cfg := newTrackedSource(t, 1+i, 7)
		sources = append(sources, src)
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, src); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 75); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ctx, 12); err != nil {
		t.Fatal(err)
	}
	for i, src := range sources {
		if v := src.violations.Load(); v != 0 {
			t.Fatalf("link %d: %d frame aliasing violations", i, v)
		}
		src.mu.Lock()
		outstanding := len(src.inUse)
		src.mu.Unlock()
		if outstanding != 0 {
			t.Fatalf("link %d: %d frames never recycled", i, outstanding)
		}
	}
	if scored := e.Metrics().WindowsScored; scored != links*12 {
		t.Fatalf("windows scored = %d, want %d", scored, links*12)
	}
}
