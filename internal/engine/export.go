package engine

import (
	"context"
	"fmt"

	"mlink/internal/adapt"
	"mlink/internal/binio"
	"mlink/internal/core"
)

// linkRecordMagic marks a serialized link record ("MLNK"); linkRecordVersion
// tags the layout.
const (
	linkRecordMagic   uint32 = 0x4D4C4E4B
	linkRecordVersion uint16 = 1
)

// ErrBadRecord reports a persisted link record that cannot be decoded or
// does not belong to the link it is being imported onto.
var ErrBadRecord = fmt.Errorf("engine: bad link record")

// ExportLink serializes one calibrated link's full monitoring state — the
// characterized quality weight, decision threshold, and either the static
// profile (frozen links) or the adapter's walked baseline, rolling windows
// and health (adaptive links) — as a versioned binary record. A fleet.Store
// writes these records to disk so a restarted daemon resumes from the
// adapted baseline instead of recalibrating from scratch.
//
// Rejected while Run or a calibration is active: the exported state must be
// a quiescent snapshot, not a moving target.
func (e *Engine) ExportLink(linkID string) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.running || e.calibrating {
		return nil, ErrRunning
	}
	if l.det == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotCalibrated, linkID)
	}
	record, err := appendLinkRecord(nil, l)
	if err != nil {
		return nil, fmt.Errorf("link %s: %w", linkID, err)
	}
	return record, nil
}

// appendLinkRecord serializes a calibrated link's full record into dst —
// the one layout shared by ExportLink and the journal's full records, built
// with reserve-and-patch framing so a shard with a warmed buffer emits
// without allocating. The caller must hold the link quiescent (the engine
// mutex offline, shard ownership during Run).
func appendLinkRecord(dst []byte, l *link) ([]byte, error) {
	dst = binio.AppendU32(dst, linkRecordMagic)
	dst = binio.AppendU16(dst, linkRecordVersion)
	dst = binio.AppendString(dst, l.id)
	dst = binio.AppendF64(dst, l.meanMu)
	adapter := l.adapter.Load()
	dst = binio.AppendBool(dst, adapter != nil)
	var (
		mark int
		err  error
	)
	if adapter != nil {
		dst, mark = binio.ReserveLen(dst)
		if dst, err = adapter.AppendBinary(dst); err != nil {
			return nil, err
		}
		return binio.PatchLen(dst, mark), nil
	}
	dst = binio.AppendF64(dst, l.det.Threshold())
	dst, mark = binio.ReserveLen(dst)
	if dst, err = l.det.Profile().AppendBinary(dst); err != nil {
		return nil, err
	}
	return binio.PatchLen(dst, mark), nil
}

// ImportLink restores a link from a record produced by ExportLink: the
// detector (and, for adaptive records, the adapter with its walked baseline
// and drift state) is rebuilt exactly as exported, so the link's next
// windows score as if the original engine had never stopped and no
// recalibration is needed. The link must already be registered under the
// same ID with the same scoring config; adaptive records additionally
// require the engine's adaptation policy to be set. Rejected while Run or a
// calibration is active.
func (e *Engine) ImportLink(linkID string, record []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.running || e.calibrating {
		return ErrRunning
	}
	r := binio.NewReader(record)
	if m := r.U32(); r.Err() == nil && m != linkRecordMagic {
		return fmt.Errorf("%w: magic %#x", ErrBadRecord, m)
	}
	if v := r.U16(); r.Err() == nil && v != linkRecordVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadRecord, v, linkRecordVersion)
	}
	recordedID := string(r.Bytes())
	meanMu := r.F64()
	adaptive := r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("link %s: %w (%w)", linkID, ErrBadRecord, err)
	}
	if recordedID != linkID {
		return fmt.Errorf("%w: record for link %q imported onto %q", ErrBadRecord, recordedID, linkID)
	}

	if adaptive {
		if e.cfg.Adaptation == nil {
			return fmt.Errorf("link %s: adaptive record without an adaptation policy: %w", linkID, ErrNotAdaptive)
		}
		blob := r.Bytes()
		if err := r.Done(); err != nil {
			return fmt.Errorf("link %s: %w (%w)", linkID, ErrBadRecord, err)
		}
		adapter, det, err := adapt.Restore(*e.cfg.Adaptation, l.cfg, blob)
		if err != nil {
			return fmt.Errorf("link %s: %w", linkID, err)
		}
		l.det = det
		l.adapter.Store(adapter)
		l.meanMu = meanMu
		l.needFull = true
		l.state.publishCalibration(meanMu, det.Threshold(), true, adapter.Health())
		return nil
	}

	threshold := r.F64()
	blob := r.Bytes()
	if err := r.Done(); err != nil {
		return fmt.Errorf("link %s: %w (%w)", linkID, ErrBadRecord, err)
	}
	profile, err := core.UnmarshalProfile(blob)
	if err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	det, err := core.NewDetector(l.cfg, profile)
	if err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	det.SetThreshold(threshold)
	l.det = det
	l.adapter.Store(nil)
	l.meanMu = meanMu
	l.needFull = true
	l.state.publishCalibration(meanMu, threshold, false, adapt.Health{})
	return nil
}

// ApplyLinkDelta replays one journal delta (adapt.Adapter.AppendDelta) onto
// a restored adaptive link, replacing the adapter's whole mutable state —
// the recovery step that advances an imported full record to the last
// journaled window. The link must already be calibrated (normally via
// ImportLink of the full record the delta was emitted against) and
// adaptive; a corrupt delta leaves the link untouched. Rejected while Run
// or a calibration is active.
func (e *Engine) ApplyLinkDelta(linkID string, delta []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	l, ok := e.byID[linkID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownLink, linkID)
	}
	if e.running || e.calibrating {
		return ErrRunning
	}
	if l.det == nil {
		return fmt.Errorf("%w: %s", ErrNotCalibrated, linkID)
	}
	ad := l.adapter.Load()
	if ad == nil {
		return fmt.Errorf("link %s: %w", linkID, ErrNotAdaptive)
	}
	if err := ad.ApplyDelta(delta); err != nil {
		return fmt.Errorf("link %s: %w", linkID, err)
	}
	h := ad.Health()
	l.state.publishCalibration(l.meanMu, h.Threshold, true, h)
	return nil
}

// CalibrateMissing calibrates only the links that have no detector yet — the
// companion of a profile restore, where most of the fleet resumed from disk
// and just the new (or unreadable) links need a fresh empty-room capture.
// With nothing missing it is a no-op.
func (e *Engine) CalibrateMissing(ctx context.Context, n int) error {
	e.mu.Lock()
	if e.running || e.calibrating {
		e.mu.Unlock()
		return ErrRunning
	}
	e.calibrating = true
	var missing []*link
	for _, l := range e.links {
		if l.det == nil {
			missing = append(missing, l)
		}
	}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.calibrating = false
		e.mu.Unlock()
	}()
	if len(missing) == 0 {
		return nil
	}
	n = e.normalizeCalPackets(n)
	return e.forEach(ctx, missing, func(ctx context.Context, l *link) error {
		return e.calibrateLink(ctx, l, n, l.src)
	})
}
