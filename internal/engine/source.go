package engine

import (
	"io"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/csinet"
)

// Source is a link's frame stream. Next returns io.EOF to end the stream
// cleanly. The engine always calls Next from one goroutine at a time, so a
// Source need not be safe for concurrent use.
type Source interface {
	Next() (*csi.Frame, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (*csi.Frame, error)

// Next calls the function.
func (f SourceFunc) Next() (*csi.Frame, error) { return f() }

// FrameRecycler is implemented by sources whose frames the engine should
// hand back once a window has been scored. Recycle may be called from a
// scoring worker concurrently with Next, so implementations must be safe for
// that pairing.
type FrameRecycler interface {
	Recycle(*csi.Frame)
}

// ExtractorSource streams simulated captures from a csi.Extractor with a
// fixed set of bodies present (nil = empty room). The extractor must not be
// shared with another goroutine while the engine owns the source.
func ExtractorSource(x *csi.Extractor, bodies []body.Body) Source {
	return SourceFunc(func() (*csi.Frame, error) {
		return x.Capture(bodies), nil
	})
}

// pooledExtractorSource is ExtractorSource with a frame pool: captures write
// into recycled frames via the allocation-free CaptureInto path, and the
// engine returns scored frames through Recycle.
type pooledExtractorSource struct {
	x      *csi.Extractor
	bodies []body.Body
	pool   *csi.FramePool
}

// PooledExtractorSource streams simulated captures through a frame pool —
// the allocation-free capture path for long-running fleets. The engine
// recycles each frame after its window is scored (see FrameRecycler);
// callers that hold frames beyond the OnDecision callback must Clone them.
func PooledExtractorSource(x *csi.Extractor, bodies []body.Body) Source {
	return &pooledExtractorSource{
		x:      x,
		bodies: bodies,
		pool:   csi.NewFramePool(len(x.Env.RX.Elements), x.Grid.Len()),
	}
}

// Next implements Source.
func (s *pooledExtractorSource) Next() (*csi.Frame, error) {
	f := s.pool.Get()
	if err := s.x.CaptureInto(f, s.bodies); err != nil {
		s.pool.Put(f)
		return nil, err
	}
	return f, nil
}

// Recycle implements FrameRecycler.
func (s *pooledExtractorSource) Recycle(f *csi.Frame) { s.pool.Put(f) }

// ClientSource streams frames received from a csinet server — the
// distributed deployment where receiver daemons export CSI over TCP.
func ClientSource(c *csinet.Client) Source {
	return SourceFunc(c.Recv)
}

// ReplaySource replays pre-recorded frames, optionally looping forever —
// used by benchmarks to decouple scoring throughput from capture cost.
type ReplaySource struct {
	frames []*csi.Frame
	next   int
	loop   bool
}

// NewReplaySource wraps recorded frames; loop cycles them indefinitely.
func NewReplaySource(frames []*csi.Frame, loop bool) *ReplaySource {
	return &ReplaySource{frames: frames, loop: loop}
}

// Next implements Source.
func (r *ReplaySource) Next() (*csi.Frame, error) {
	if len(r.frames) == 0 {
		return nil, io.EOF
	}
	if r.next >= len(r.frames) {
		if !r.loop {
			return nil, io.EOF
		}
		r.next = 0
	}
	f := r.frames[r.next]
	r.next++
	return f, nil
}
