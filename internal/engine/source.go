package engine

import (
	"io"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/csinet"
)

// Source is a link's frame stream. Next returns io.EOF to end the stream
// cleanly. The engine always calls Next from one goroutine at a time, so a
// Source need not be safe for concurrent use.
type Source interface {
	Next() (*csi.Frame, error)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func() (*csi.Frame, error)

// Next calls the function.
func (f SourceFunc) Next() (*csi.Frame, error) { return f() }

// ExtractorSource streams simulated captures from a csi.Extractor with a
// fixed set of bodies present (nil = empty room). The extractor must not be
// shared with another goroutine while the engine owns the source.
func ExtractorSource(x *csi.Extractor, bodies []body.Body) Source {
	return SourceFunc(func() (*csi.Frame, error) {
		return x.Capture(bodies), nil
	})
}

// ClientSource streams frames received from a csinet server — the
// distributed deployment where receiver daemons export CSI over TCP.
func ClientSource(c *csinet.Client) Source {
	return SourceFunc(c.Recv)
}

// ReplaySource replays pre-recorded frames, optionally looping forever —
// used by benchmarks to decouple scoring throughput from capture cost.
type ReplaySource struct {
	frames []*csi.Frame
	next   int
	loop   bool
}

// NewReplaySource wraps recorded frames; loop cycles them indefinitely.
func NewReplaySource(frames []*csi.Frame, loop bool) *ReplaySource {
	return &ReplaySource{frames: frames, loop: loop}
}

// Next implements Source.
func (r *ReplaySource) Next() (*csi.Frame, error) {
	if len(r.frames) == 0 {
		return nil, io.EOF
	}
	if r.next >= len(r.frames) {
		if !r.loop {
			return nil, io.EOF
		}
		r.next = 0
	}
	f := r.frames[r.next]
	r.next++
	return f, nil
}
