package engine

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/body"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/csinet"
	"mlink/internal/scenario"
)

// switchSource is an extractor source whose occupancy can be changed
// between engine phases (calibrate empty, then monitor with a person).
type switchSource struct {
	x      *csi.Extractor
	bodies []body.Body
}

func (s *switchSource) Next() (*csi.Frame, error) { return s.x.Capture(s.bodies), nil }

func buildLink(t testing.TB, caseN int, seed int64) (*scenario.Scenario, core.Config, *switchSource) {
	t.Helper()
	s, err := scenario.LinkCase(caseN, seed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
	return s, cfg, &switchSource{x: x}
}

// TestEngineRoundTrip calibrates a two-link fleet in parallel, occupies one
// link, runs concurrent monitoring and checks decisions, fusion and the
// metrics block. Simulation and window assembly are deterministic per link,
// so the verdicts are reproducible regardless of pool scheduling.
func TestEngineRoundTrip(t *testing.T) {
	e := New(Config{Workers: 4, WindowSize: 25, Fusion: KOfN{K: 1}})

	// A frozen (non-adaptive) fleet over a short run. Receiver gain drift
	// is a first-class scenario now — scenario drift presets plus engine
	// adaptation, exercised by TestEngineAdaptationBoundsDriftFalsePositives
	// below — so this round-trip only checks the frozen pipeline.
	s1, cfg1, src1 := buildLink(t, 2, 7)
	_, cfg2, src2 := buildLink(t, 3, 5)
	if err := e.AddLink("occupied", cfg1, src1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("empty", cfg2, src2); err != nil {
		t.Fatal(err)
	}
	if got := e.Links(); len(got) != 2 || got[0] != "occupied" || got[1] != "empty" {
		t.Fatalf("Links() = %v", got)
	}

	if err := e.Calibrate(context.Background(), 150); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	for _, lm := range m.PerLink {
		if !lm.Calibrated {
			t.Fatalf("link %s not calibrated after Calibrate", lm.ID)
		}
		if lm.Threshold <= 0 {
			t.Fatalf("link %s threshold = %v, want > 0", lm.ID, lm.Threshold)
		}
		if lm.MeanMu <= 0 {
			t.Fatalf("link %s mean mu = %v, want > 0", lm.ID, lm.MeanMu)
		}
	}

	// A person steps onto link 1's LOS midpoint; link 2 stays empty.
	src1.bodies = []body.Body{body.Default(s1.LinkMidpoint())}

	const windows = 4
	if err := e.Run(context.Background(), windows); err != nil {
		t.Fatal(err)
	}

	m = e.Metrics()
	if m.WindowsScored != 2*windows {
		t.Fatalf("windows scored = %d, want %d", m.WindowsScored, 2*windows)
	}
	if m.ScoresPerSec <= 0 {
		t.Fatalf("scores/sec = %v, want > 0", m.ScoresPerSec)
	}
	var occ, emp LinkMetrics
	for _, lm := range m.PerLink {
		switch lm.ID {
		case "occupied":
			occ = lm
		case "empty":
			emp = lm
		}
	}
	if occ.WindowsScored != windows || emp.WindowsScored != windows {
		t.Fatalf("per-link windows = %d/%d, want %d each", occ.WindowsScored, emp.WindowsScored, windows)
	}
	if !occ.Present {
		t.Errorf("occupied link not detected (last score %v vs threshold %v)", occ.LastScore, occ.Threshold)
	}
	if emp.Present {
		t.Errorf("empty link false positive (last score %v vs threshold %v)", emp.LastScore, emp.Threshold)
	}
	if occ.MeanScore <= emp.MeanScore {
		t.Errorf("occupied mean score %v not above empty mean score %v", occ.MeanScore, emp.MeanScore)
	}

	v, err := e.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Present || v.Positive != 1 || v.Total != 2 {
		t.Fatalf("site verdict = %+v, want present with 1/2 positive", v)
	}
}

func TestEngineFleetErrors(t *testing.T) {
	e := New(Config{WindowSize: 25})
	if err := e.Calibrate(context.Background(), 100); !errors.Is(err, ErrNoLinks) {
		t.Fatalf("Calibrate on empty fleet: %v, want ErrNoLinks", err)
	}
	if _, err := e.Verdict(); !errors.Is(err, ErrNoLinks) {
		t.Fatalf("Verdict on empty fleet: %v, want ErrNoLinks", err)
	}
	if err := e.Run(context.Background(), 1); !errors.Is(err, ErrNoLinks) {
		t.Fatalf("Run on empty fleet: %v, want ErrNoLinks", err)
	}

	_, cfg, src := buildLink(t, 1, 3)
	if err := e.AddLink("a", cfg, src); err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("a", cfg, src); !errors.Is(err, ErrDuplicateLink) {
		t.Fatalf("duplicate AddLink: %v, want ErrDuplicateLink", err)
	}
	if err := e.Run(context.Background(), 1); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("Run before Calibrate: %v, want ErrNotCalibrated", err)
	}
	if _, err := e.Verdict(); !errors.Is(err, ErrNoDecisions) {
		t.Fatalf("Verdict before any window: %v, want ErrNoDecisions", err)
	}
	if _, err := e.ScoreWindow("missing", nil); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("ScoreWindow on unknown link: %v, want ErrUnknownLink", err)
	}
}

// TestEngineAdaptationBoundsDriftFalsePositives runs the drift scenario the
// seed comments used to warn about — a receiver whose gain walks during
// monitoring (seed 11 was the PR 1 caveat seed, plus an explicit gain-walk
// preset on top) — through the engine twice: frozen and adaptive. The
// frozen fleet false-alarms on most empty-room windows; adaptation keeps
// the false-positive rate bounded and the link healthy.
func TestEngineAdaptationBoundsDriftFalsePositives(t *testing.T) {
	const windows = 60 // the experiment's 10× calibration-length horizon
	run := func(adaptive bool) (falsePositives int, m Metrics) {
		s, err := scenario.LinkCase(2, 11)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := s.NewDriftStream(scenario.GainWalk(12), 1)
		if err != nil {
			t.Fatal(err)
		}
		var fp atomic.Int64
		cfg := Config{
			Workers:    2,
			WindowSize: 25,
			OnDecision: func(_ string, d core.Decision) {
				if d.Present {
					fp.Add(1)
				}
			},
		}
		if adaptive {
			cfg.Adaptation = &adapt.Policy{}
		}
		e := New(cfg)
		detCfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink("drifting", detCfg, stream); err != nil {
			t.Fatal(err)
		}
		if err := e.Calibrate(context.Background(), 150); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(context.Background(), windows); err != nil {
			t.Fatal(err)
		}
		return int(fp.Load()), e.Metrics()
	}

	frozenFP, _ := run(false)
	adaptiveFP, m := run(true)
	t.Logf("gain-walk seed 11 over %d windows: frozen %d false positives, adaptive %d", windows, frozenFP, adaptiveFP)
	if frozenFP <= windows/5 {
		t.Fatalf("frozen fleet FPs = %d/%d — drift too gentle to demonstrate adaptation", frozenFP, windows)
	}
	if adaptiveFP*2 >= frozenFP {
		t.Errorf("adaptation did not measurably bound FPs: %d vs frozen %d", adaptiveFP, frozenFP)
	}
	if adaptiveFP > windows/3 {
		t.Errorf("adaptive FPs = %d/%d, want ≤ 1/3", adaptiveFP, windows)
	}
	lm := m.PerLink[0]
	if !lm.Adaptive {
		t.Fatal("link metrics not marked adaptive")
	}
	if lm.Health.Refreshes == 0 {
		t.Error("adaptive link never refreshed its profile")
	}
	if lm.Health.State == adapt.StateQuarantined {
		t.Errorf("gradual gain walk quarantined the link: %+v", lm.Health)
	}
}

// TestEngineRunEndsOnEOF checks a finite replay stream ends Run cleanly and
// scores only the complete windows.
func TestEngineRunEndsOnEOF(t *testing.T) {
	s, err := scenario.Classroom(5)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(s.Grid, core.SchemeBaseline, s.Env.RX.Offsets())
	// 100 calibration + 100 holdout + 2.5 windows of 10.
	frames := x.CaptureN(225, nil)
	e := New(Config{Workers: 2, WindowSize: 10})
	if err := e.AddLink("replay", cfg, NewReplaySource(frames, false)); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics().WindowsScored; got != 2 {
		t.Fatalf("windows scored = %d, want 2 (25 leftover frames, 2 full windows)", got)
	}
}

// TestEngineCancel checks Run returns promptly when the context is
// cancelled mid-stream.
func TestEngineCancel(t *testing.T) {
	_, cfg, src := buildLink(t, 2, 9)
	e := New(Config{Workers: 2, WindowSize: 25})
	if err := e.AddLink("a", cfg, src); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, 0) }()
	time.Sleep(50 * time.Millisecond)
	// While monitoring is live, fleet mutation and recalibration must be
	// rejected: both would race on link state and the single-reader source.
	if err := e.Calibrate(ctx, 100); !errors.Is(err, ErrRunning) {
		t.Errorf("Calibrate during Run: %v, want ErrRunning", err)
	}
	if err := e.AddLink("b", cfg, src); !errors.Is(err, ErrRunning) {
		t.Errorf("AddLink during Run: %v, want ErrRunning", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled Run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

// TestEngineStreamsFromCSINet runs the distributed deployment under -race:
// a csinet server streams simulated CSI over TCP into two engine links that
// calibrate and score concurrently.
func TestEngineStreamsFromCSINet(t *testing.T) {
	s, err := scenario.Classroom(21)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu     sync.Mutex
		nConns int64
	)
	factory := func() csinet.Source {
		mu.Lock()
		nConns++
		seed := nConns
		mu.Unlock()
		x, err := s.NewExtractor(100 + seed)
		if err != nil {
			return csinet.SourceFunc(func() (*csi.Frame, error) { return nil, io.EOF })
		}
		return csinet.SourceFunc(func() (*csi.Frame, error) { return x.Capture(nil), nil })
	}
	idx := make([]int16, len(s.Grid.Indices))
	for i, v := range s.Grid.Indices {
		idx[i] = int16(v)
	}
	hello := csinet.Hello{
		CenterFreqHz:   s.Grid.Center,
		NumAntennas:    3,
		NumSubcarriers: uint8(len(idx)),
		Indices:        idx,
	}
	srv, err := csinet.NewServer("127.0.0.1:0", hello, factory)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	defer srv.Close()

	e := New(Config{Workers: 4, WindowSize: 10, Fusion: MaxScore{}})
	for _, id := range []string{"rx1", "rx2"} {
		dialCtx, dialCancel := context.WithTimeout(ctx, 5*time.Second)
		client, err := csinet.Dial(dialCtx, srv.Addr().String())
		dialCancel()
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		cfg := core.DefaultConfig(s.Grid, core.SchemeSubcarrier, s.Env.RX.Offsets())
		if err := e.AddLink(id, cfg, ClientSource(client)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Calibrate(ctx, 60); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(ctx, 2); err != nil {
		t.Fatal(err)
	}
	v, err := e.Verdict()
	if err != nil {
		t.Fatal(err)
	}
	if v.Total != 2 {
		t.Fatalf("fused %d links, want 2", v.Total)
	}
	if v.Present {
		t.Errorf("empty rooms fused to present: %+v", v)
	}
	if got := e.Metrics().WindowsScored; got != 4 {
		t.Fatalf("windows scored = %d, want 4", got)
	}
}
