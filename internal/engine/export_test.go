package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"mlink/internal/adapt"
	"mlink/internal/binio"
	"mlink/internal/core"
)

// exportFixture builds a calibrated adaptive single-link engine and returns
// it with the link's exported record.
func exportFixture(t testing.TB) (*Engine, []byte) {
	t.Helper()
	pol := adapt.Policy{}
	e := New(Config{Workers: 1, WindowSize: 25, Adaptation: &pol})
	_, cfg, src := buildLink(t, 2, 7)
	if err := e.AddLink("fuzz", cfg, src); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 150); err != nil {
		t.Fatal(err)
	}
	record, err := e.ExportLink("fuzz")
	if err != nil {
		t.Fatal(err)
	}
	return e, record
}

func TestExportImportErrorPaths(t *testing.T) {
	e, record := exportFixture(t)

	t.Run("unknown link", func(t *testing.T) {
		if _, err := e.ExportLink("nope"); !errors.Is(err, ErrUnknownLink) {
			t.Errorf("ExportLink: err = %v, want ErrUnknownLink", err)
		}
		if err := e.ImportLink("nope", record); !errors.Is(err, ErrUnknownLink) {
			t.Errorf("ImportLink: err = %v, want ErrUnknownLink", err)
		}
		if err := e.ApplyLinkDelta("nope", nil); !errors.Is(err, ErrUnknownLink) {
			t.Errorf("ApplyLinkDelta: err = %v, want ErrUnknownLink", err)
		}
	})

	t.Run("not calibrated", func(t *testing.T) {
		e2 := New(Config{Workers: 1, WindowSize: 25})
		_, cfg, src := buildLink(t, 2, 7)
		if err := e2.AddLink("bare", cfg, src); err != nil {
			t.Fatal(err)
		}
		if _, err := e2.ExportLink("bare"); !errors.Is(err, ErrNotCalibrated) {
			t.Errorf("ExportLink: err = %v, want ErrNotCalibrated", err)
		}
		if err := e2.ApplyLinkDelta("bare", nil); !errors.Is(err, ErrNotCalibrated) {
			t.Errorf("ApplyLinkDelta: err = %v, want ErrNotCalibrated", err)
		}
	})

	t.Run("version skew", func(t *testing.T) {
		skewed := append([]byte(nil), record...)
		binary.BigEndian.PutUint16(skewed[4:], linkRecordVersion+1)
		if err := e.ImportLink("fuzz", skewed); !errors.Is(err, ErrBadRecord) {
			t.Errorf("err = %v, want ErrBadRecord", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		skewed := append([]byte(nil), record...)
		skewed[0] ^= 0xFF
		if err := e.ImportLink("fuzz", skewed); !errors.Is(err, ErrBadRecord) {
			t.Errorf("err = %v, want ErrBadRecord", err)
		}
	})

	t.Run("id mismatch", func(t *testing.T) {
		// The record names "fuzz"; importing it onto another registered link
		// must be refused.
		_, cfg, src := buildLink(t, 3, 5)
		if err := e.AddLink("other", cfg, src); err != nil {
			t.Fatal(err)
		}
		if err := e.ImportLink("other", record); !errors.Is(err, ErrBadRecord) {
			t.Errorf("err = %v, want ErrBadRecord", err)
		}
	})

	t.Run("short record", func(t *testing.T) {
		for _, n := range []int{0, 3, 6, 10, len(record) / 2, len(record) - 1} {
			err := e.ImportLink("fuzz", record[:n])
			if err == nil {
				t.Fatalf("truncation to %d bytes accepted", n)
			}
			if !errors.Is(err, ErrBadRecord) && !errors.Is(err, core.ErrBadInput) && !errors.Is(err, binio.ErrShort) {
				t.Errorf("truncation to %d: untyped err %v", n, err)
			}
		}
	})

	t.Run("adaptive record without policy", func(t *testing.T) {
		e2 := New(Config{Workers: 1, WindowSize: 25})
		_, cfg, src := buildLink(t, 2, 7)
		if err := e2.AddLink("fuzz", cfg, src); err != nil {
			t.Fatal(err)
		}
		if err := e2.ImportLink("fuzz", record); !errors.Is(err, ErrNotAdaptive) {
			t.Errorf("err = %v, want ErrNotAdaptive", err)
		}
	})

	t.Run("delta on frozen link", func(t *testing.T) {
		e2 := New(Config{Workers: 1, WindowSize: 25})
		_, cfg, src := buildLink(t, 2, 7)
		if err := e2.AddLink("frozen", cfg, src); err != nil {
			t.Fatal(err)
		}
		if err := e2.Calibrate(context.Background(), 150); err != nil {
			t.Fatal(err)
		}
		if err := e2.ApplyLinkDelta("frozen", nil); !errors.Is(err, ErrNotAdaptive) {
			t.Errorf("err = %v, want ErrNotAdaptive", err)
		}
	})

	t.Run("corrupt delta leaves state intact", func(t *testing.T) {
		before, err := e.ExportLink("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		for _, bad := range [][]byte{nil, {1, 2, 3}, record[:16]} {
			if err := e.ApplyLinkDelta("fuzz", bad); err == nil {
				t.Fatalf("corrupt delta %v accepted", bad)
			}
		}
		after, err := e.ExportLink("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		if string(before) != string(after) {
			t.Error("failed delta application mutated the link")
		}
	})
}

// TestExportRejectedWhileRunning pins the quiescence contract ExportLink,
// ImportLink and ApplyLinkDelta share.
func TestExportRejectedWhileRunning(t *testing.T) {
	e, record := exportFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	e.cfg.OnDecision = func(string, core.Decision) {
		select {
		case <-started:
		default:
			close(started)
		}
	}
	go func() { done <- e.Run(ctx, 0) }()
	<-started
	if _, err := e.ExportLink("fuzz"); !errors.Is(err, ErrRunning) {
		t.Errorf("ExportLink: err = %v, want ErrRunning", err)
	}
	if err := e.ImportLink("fuzz", record); !errors.Is(err, ErrRunning) {
		t.Errorf("ImportLink: err = %v, want ErrRunning", err)
	}
	if err := e.ApplyLinkDelta("fuzz", nil); !errors.Is(err, ErrRunning) {
		t.Errorf("ApplyLinkDelta: err = %v, want ErrRunning", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// FuzzLinkRecord throws mutated ExportLink records at ImportLink and
// ApplyLinkDelta: any input must either be accepted (and the resulting
// state re-export) or fail with a typed error — never panic, never leave
// the engine rejecting subsequent valid imports.
func FuzzLinkRecord(f *testing.F) {
	e, record := exportFixture(f)
	ad := e.byID["fuzz"].adapter.Load()
	delta := ad.AppendDelta(nil)
	f.Add(record)
	f.Add(delta)
	f.Add(record[:len(record)-9])
	f.Add(delta[:len(delta)/2])
	flipped := append([]byte(nil), record...)
	flipped[20] ^= 0x10
	f.Add(flipped)

	typed := func(t *testing.T, err error) {
		if err != nil && !errors.Is(err, ErrBadRecord) && !errors.Is(err, core.ErrBadInput) &&
			!errors.Is(err, binio.ErrShort) && !errors.Is(err, ErrNotAdaptive) {
			t.Fatalf("untyped error: %v", err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		typed(t, e.ImportLink("fuzz", data))
		typed(t, e.ApplyLinkDelta("fuzz", data))
		// Whatever the mutated inputs did, the engine must still accept the
		// genuine record: decode failures may not corrupt live state.
		if err := e.ImportLink("fuzz", record); err != nil {
			t.Fatalf("valid record rejected after fuzz input: %v", err)
		}
	})
}
