package engine

import (
	"math"
	"sync/atomic"

	"mlink/internal/adapt"
	"mlink/internal/core"
)

// linkSnap is one consistent snapshot of a link's monitoring state, read by
// Verdict and Metrics without touching any lock the scorers hold.
type linkSnap struct {
	Calibrated bool
	Adaptive   bool
	// Recalibrating is set while an online recalibration is rebuilding the
	// link's baseline on the shard that claimed the job; fusion excludes
	// the link until the rebuild lands.
	Recalibrating bool
	MeanMu        float64
	Threshold     float64
	Windows       uint64
	ScoreSum      float64
	// NsPerWindowEWMA is the link's smoothed scoring cost in nanoseconds
	// per window (α = 1/8) — the load signal behind shard rebalancing.
	NsPerWindowEWMA float64
	Last            core.Decision
	Health          adapt.Health
}

// linkState atomically publishes linkSnap values through a sequence lock
// built entirely from atomics: the writer (the link's owning shard during
// Run, or the calibration worker) bumps seq to odd, stores every field, and
// bumps it back to even; readers retry until a whole read straddles one even
// sequence. Every access is an atomic operation, so the construction is
// race-free without a mutex, publication allocates nothing, and however many
// readers poll, the single writer never waits — the property the metrics
// path needs so that Verdict/Metrics cannot stall the scoring loop.
type linkState struct {
	seq        atomic.Uint64
	calibrated atomic.Bool
	adaptive   atomic.Bool
	recal      atomic.Bool
	meanMu     atomic.Uint64
	threshold  atomic.Uint64 // current decision threshold
	decThr     atomic.Uint64 // threshold the last decision was made against
	windows    atomic.Uint64
	scoreSum   atomic.Uint64
	ewmaNs     atomic.Uint64
	score      atomic.Uint64
	present    atomic.Bool
	health     adapt.AtomicHealth // guarded by seq like every other field
}

// publishCalibration records a (re)calibration: quality weight, starting
// threshold and adapter health, leaving the scoring counters intact.
func (st *linkState) publishCalibration(meanMu, threshold float64, adaptive bool, h adapt.Health) {
	st.seq.Add(1)
	st.calibrated.Store(true)
	st.adaptive.Store(adaptive)
	st.meanMu.Store(math.Float64bits(meanMu))
	st.threshold.Store(math.Float64bits(threshold))
	st.health.Store(h)
	st.seq.Add(1)
}

// setRecalibrating marks (or clears) an online recalibration in progress.
func (st *linkState) setRecalibrating(on bool) {
	st.seq.Add(1)
	st.recal.Store(on)
	st.seq.Add(1)
}

// recalibrating reads the Recalibrating flag alone — a single atomic load,
// no seqlock round trip. postRecal's pending check is the caller.
func (st *linkState) recalibrating() bool {
	return st.recal.Load()
}

// publishDecision folds one scored window into the published state.
// threshold is the link's current decision threshold (post-adaptation);
// ewmaNs the link's smoothed per-window scoring cost.
func (st *linkState) publishDecision(dec core.Decision, threshold float64, h adapt.Health, ewmaNs float64) {
	st.seq.Add(1)
	st.windows.Store(st.windows.Load() + 1)
	st.scoreSum.Store(math.Float64bits(math.Float64frombits(st.scoreSum.Load()) + dec.Score))
	st.ewmaNs.Store(math.Float64bits(ewmaNs))
	st.score.Store(math.Float64bits(dec.Score))
	st.present.Store(dec.Present)
	st.decThr.Store(math.Float64bits(dec.Threshold))
	st.threshold.Store(math.Float64bits(threshold))
	st.health.Store(h)
	st.seq.Add(1)
}

// load spins until it reads one consistent snapshot. With a healthy writer
// the loop runs once or twice; writers publish in a handful of atomic
// stores, so there is no unbounded window to wait out.
func (st *linkState) load(dst *linkSnap) {
	for {
		s := st.seq.Load()
		if s&1 != 0 {
			continue
		}
		*dst = linkSnap{
			Calibrated:      st.calibrated.Load(),
			Adaptive:        st.adaptive.Load(),
			Recalibrating:   st.recal.Load(),
			MeanMu:          math.Float64frombits(st.meanMu.Load()),
			Threshold:       math.Float64frombits(st.threshold.Load()),
			Windows:         st.windows.Load(),
			ScoreSum:        math.Float64frombits(st.scoreSum.Load()),
			NsPerWindowEWMA: math.Float64frombits(st.ewmaNs.Load()),
			Last: core.Decision{
				Present:   st.present.Load(),
				Score:     math.Float64frombits(st.score.Load()),
				Threshold: math.Float64frombits(st.decThr.Load()),
			},
			Health: st.health.Load(),
		}
		if st.seq.Load() == s {
			return
		}
	}
}
