package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/csi"
)

// TestRecalibrateTypedErrors pins the error contract shared with
// ScoreWindow: an unknown link is ErrUnknownLink in EVERY engine state —
// including while Run is active — and a Recalibrate that collides with a
// fleet-wide Calibrate is ErrRunning.
func TestRecalibrateTypedErrors(t *testing.T) {
	e := New(Config{Workers: 2, WindowSize: 25})
	_, cfg1, src1 := buildLink(t, 2, 11)
	_, cfg2, src2 := buildLink(t, 3, 12)
	if err := e.AddLink("a", cfg1, src1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("b", cfg2, src2); err != nil {
		t.Fatal(err)
	}

	// Idle engine, unknown link.
	if err := e.Recalibrate(context.Background(), "nope", 60); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("idle unknown-link err = %v", err)
	}
	// Not running: a non-blocking request has nowhere to go.
	if err := e.RequestRecalibration("a", 60); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("request while stopped err = %v", err)
	}

	if err := e.Calibrate(context.Background(), 60); err != nil {
		t.Fatal(err)
	}

	// While Run is active: unknown link still reports ErrUnknownLink, never
	// ErrRunning (consistent with ScoreWindow's check order).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- e.Run(ctx, 0) }()
	waitRunning(t, e)
	if err := e.Recalibrate(ctx, "nope", 60); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("running unknown-link err = %v", err)
	}
	if err := e.RequestRecalibration("nope", 60); !errors.Is(err, ErrUnknownLink) {
		t.Fatalf("running request unknown-link err = %v", err)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// While a fleet Calibrate is in flight: ErrRunning. The calibration is
	// held open by a gate on the source.
	e2 := New(Config{Workers: 1, WindowSize: 25})
	gate := make(chan struct{})
	release := make(chan struct{})
	_, cfg3, src3 := buildLink(t, 4, 13)
	first := true
	if err := e2.AddLink("g", cfg3, SourceFunc(func() (*csi.Frame, error) {
		if first {
			first = false
			close(gate)
			<-release
		}
		return src3.Next()
	})); err != nil {
		t.Fatal(err)
	}
	calDone := make(chan error, 1)
	go func() { calDone <- e2.Calibrate(context.Background(), 60) }()
	<-gate
	if err := e2.Recalibrate(context.Background(), "g", 60); !errors.Is(err, ErrRunning) {
		t.Fatalf("recalibrate during calibrate err = %v", err)
	}
	close(release)
	if err := <-calDone; err != nil {
		t.Fatal(err)
	}
}

// waitRunning spins until Run has flipped the engine into its running state.
func waitRunning(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		running := e.running
		e.mu.Unlock()
		if running {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never started running")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestOnlineRecalibration is the acceptance check for during-Run
// recalibration: with two links on two shards, recalibrating one must
// complete while Run stays active, without stopping the sibling (it keeps
// scoring throughout) and while resetting the recalibrated link's adaptation
// state.
func TestOnlineRecalibration(t *testing.T) {
	pol := adapt.Policy{}
	e := New(Config{Workers: 2, WindowSize: 25, Adaptation: &pol})
	_, cfg1, src1 := buildLink(t, 2, 21)
	_, cfg2, src2 := buildLink(t, 3, 22)
	if err := e.AddLink("target", cfg1, src1); err != nil {
		t.Fatal(err)
	}
	if err := e.AddLink("sibling", cfg2, src2); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()
	waitRunning(t, e)

	windowsOf := func(id string) uint64 {
		var m Metrics
		e.MetricsInto(&m)
		for _, lm := range m.PerLink {
			if lm.ID == id {
				return lm.WindowsScored
			}
		}
		t.Fatalf("link %s missing from metrics", id)
		return 0
	}
	// Let both links score a few windows first.
	for windowsOf("target") < 3 || windowsOf("sibling") < 3 {
		time.Sleep(time.Millisecond)
	}

	siblingBefore := windowsOf("sibling")
	targetBefore := windowsOf("target")
	if err := e.Recalibrate(ctx, "target", 100); err != nil {
		t.Fatalf("online recalibrate: %v", err)
	}
	// Run must still be active, and both links must keep scoring on their
	// rebuilt / untouched baselines.
	select {
	case err := <-runDone:
		t.Fatalf("run ended during online recalibration: %v", err)
	default:
	}
	deadline := time.Now().Add(10 * time.Second)
	for windowsOf("sibling") <= siblingBefore || windowsOf("target") <= targetBefore {
		if time.Now().After(deadline) {
			t.Fatalf("links stalled after recal: sibling %d→%d target %d→%d",
				siblingBefore, windowsOf("sibling"), targetBefore, windowsOf("target"))
		}
		time.Sleep(time.Millisecond)
	}

	// The rebuilt adapter starts from scratch.
	var m Metrics
	e.MetricsInto(&m)
	for _, lm := range m.PerLink {
		if lm.ID == "target" {
			if !lm.Adaptive {
				t.Fatal("target lost its adapter")
			}
			if lm.Health.NeedsRecalibration {
				t.Fatal("fresh recalibration still flags NeedsRecalibration")
			}
		}
	}

	// A second request on a link with one already pending is
	// ErrRecalPending.
	if err := e.RequestRecalibration("target", 100); err != nil {
		t.Fatalf("request: %v", err)
	}
	if err := e.RequestRecalibration("target", 100); !errors.Is(err, ErrRecalPending) {
		t.Fatalf("duplicate request err = %v", err)
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

// TestRequestedRecalSurvivesRunBoundary: a fire-and-forget recalibration
// posted too late for its shard to pick up must NOT be dropped at Run exit —
// it stays pending and executes at the next Run's first pass (the fleet
// scheduler counts it as dispatched and never re-enqueues it).
func TestRequestedRecalSurvivesRunBoundary(t *testing.T) {
	pol := adapt.Policy{}
	e := New(Config{Workers: 1, WindowSize: 25, Adaptation: &pol})
	_, cfg, src := buildLink(t, 2, 31)
	started := make(chan struct{})
	release := make(chan struct{})
	var once, gated bool
	if err := e.AddLink("l", cfg, SourceFunc(func() (*csi.Frame, error) {
		if gated {
			if !once {
				once = true
				close(started)
			}
			<-release
		}
		return src.Next()
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.Calibrate(context.Background(), 100); err != nil {
		t.Fatal(err)
	}

	// Gate the source so the shard parks inside a window pull; post the
	// request while it is parked, then cancel — the job is provably never
	// picked up before the run exits.
	gated = true
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, 0) }()
	<-started
	if err := e.RequestRecalibration("l", 100); err != nil {
		t.Fatal(err)
	}
	cancel()
	close(release)
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if !e.RecalibrationPending("l") {
		t.Fatal("fire-and-forget recalibration dropped at run exit")
	}

	// The next Run services it before scoring.
	gated = false
	if err := e.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if e.RecalibrationPending("l") {
		t.Fatal("carried-over recalibration never executed")
	}
	var m Metrics
	e.MetricsInto(&m)
	if !m.PerLink[0].Calibrated || m.PerLink[0].Health.NeedsRecalibration {
		t.Fatalf("link unhealthy after carried-over recal: %+v", m.PerLink[0])
	}

	// An offline rebuild clears a stale pending job instead of letting it
	// re-run on the next Run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	runDone2 := make(chan error, 1)
	gated = true
	once = false
	started = make(chan struct{})
	release = make(chan struct{})
	go func() { runDone2 <- e.Run(ctx2, 0) }()
	<-started
	if err := e.RequestRecalibration("l", 100); err != nil {
		t.Fatal(err)
	}
	cancel2()
	close(release)
	if err := <-runDone2; err != nil {
		t.Fatal(err)
	}
	gated = false
	if err := e.Recalibrate(context.Background(), "l", 100); err != nil {
		t.Fatal(err)
	}
	if e.RecalibrationPending("l") {
		t.Fatal("offline rebuild left a stale job pending")
	}
}
