package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mlink/internal/adapt"
	"mlink/internal/core"
	"mlink/internal/csi"
	"mlink/internal/scenario"
)

// skewedFrames records one deterministic frame stream per link case, so the
// same bytes replay into every engine configuration under test.
func skewedFrames(t testing.TB, cases int, seed int64, n int) ([]*scenario.Scenario, [][]*csi.Frame) {
	t.Helper()
	scens := make([]*scenario.Scenario, cases)
	frames := make([][]*csi.Frame, cases)
	for i := range scens {
		s, err := scenario.LinkCase(1+i%5, seed)
		if err != nil {
			t.Fatal(err)
		}
		x, err := s.NewExtractor(seed + int64(i))
		if err != nil {
			t.Fatal(err)
		}
		scens[i] = s
		frames[i] = x.CaptureN(n, nil)
	}
	return scens, frames
}

// skewedFleet builds a fleet whose link 0 runs the MUSIC-weighted
// SchemeSubcarrierPath detector — an order of magnitude more DSP per window
// than its SchemeSubcarrier peers — over pre-recorded deterministic streams.
// The shape the work-stealing scheduler exists for: under static affinity
// the shard seeded with link 0 lags the fleet.
func skewedFleet(t testing.TB, workers int, static bool, scens []*scenario.Scenario, frames [][]*csi.Frame, loop bool, rec func(string, core.Decision)) *Engine {
	t.Helper()
	e := New(Config{
		Workers:        workers,
		WindowSize:     25,
		StaticAffinity: static,
		Adaptation:     &adapt.Policy{},
		OnDecision:     rec,
	})
	for i, s := range scens {
		scheme := core.SchemeSubcarrier
		if i == 0 {
			scheme = core.SchemeSubcarrierPath
		}
		cfg := core.DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, NewReplaySource(frames[i], loop)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestEngineStealingMatchesSequential is the tentpole determinism gate for
// the work-stealing scheduler: whatever the worker count, and whether links
// migrate or sit pinned (StaticAffinity), every link's decision stream must
// be bit-identical to the single-shard sequential reference — stealing may
// move a link between shards but never reorder, skip, or rescore a window.
// Covered shapes: the three-preset drift fleet (adaptation state evolving
// per window) and a skewed fleet whose heavy link migrates under load.
func TestEngineStealingMatchesSequential(t *testing.T) {
	const windows = 6

	type variant struct {
		name    string
		workers int
		static  bool
	}
	variants := []variant{
		{"workers=1", 1, false},
		{"workers=2", 2, false},
		{"workers=3", 3, false},
		{"workers=4", 4, false},
		{"workers=4,static", 4, true},
	}

	t.Run("drift", func(t *testing.T) {
		const seed = 17
		var ref map[string][]core.Decision
		for _, v := range variants {
			byLink, rec := recordDecisions()
			e := driftFleet(t, v.workers, seed, rec)
			e.cfg.StaticAffinity = v.static
			ctx := context.Background()
			if err := e.Calibrate(ctx, 150); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(ctx, windows); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = byLink
				continue
			}
			compareDecisionStreams(t, v.name, ref, byLink, windows)
		}
	})

	t.Run("skewed", func(t *testing.T) {
		const links = 5
		scens, frames := skewedFrames(t, links, 23, 2*60+windows*25)
		var ref map[string][]core.Decision
		for _, v := range variants {
			byLink, rec := recordDecisions()
			e := skewedFleet(t, v.workers, v.static, scens, frames, false, rec)
			ctx := context.Background()
			if err := e.Calibrate(ctx, 60); err != nil {
				t.Fatal(err)
			}
			if err := e.Run(ctx, windows); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = byLink
				continue
			}
			compareDecisionStreams(t, v.name, ref, byLink, windows)
		}
	})
}

func compareDecisionStreams(t *testing.T, name string, ref, got map[string][]core.Decision, windows int) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: decision maps cover %d links, reference has %d", name, len(got), len(ref))
	}
	for id, want := range ref {
		have := got[id]
		if len(want) != windows || len(have) != windows {
			t.Fatalf("%s: link %s scored %d windows vs reference %d, want %d", name, id, len(have), len(want), windows)
		}
		for w := range want {
			if want[w] != have[w] { // exact struct equality: bit-identical scores
				t.Errorf("%s: link %s window %d: %+v != reference %+v", name, id, w, have[w], want[w])
			}
		}
	}
}

// captureSink is a JournalSink whose writer records every append in arrival
// order. The engine serializes appends on its emission mutex, so the plain
// slice needs no extra locking; the test reads it only after Run returns.
type captureSink struct {
	mu      sync.Mutex
	flushes int
	recs    []capturedRec
}

type capturedRec struct {
	full bool
	link string
	blob []byte
}

func (s *captureSink) NewWriter() JournalWriter { return (*captureWriter)(s) }

type captureWriter captureSink

func (w *captureWriter) add(full bool, id string, rec []byte) {
	w.mu.Lock()
	w.recs = append(w.recs, capturedRec{full: full, link: id, blob: append([]byte(nil), rec...)})
	w.mu.Unlock()
}
func (w *captureWriter) AppendFull(id string, rec []byte)  { w.add(true, id, rec) }
func (w *captureWriter) AppendDelta(id string, rec []byte) { w.add(false, id, rec) }
func (w *captureWriter) Flush() {
	w.mu.Lock()
	w.flushes++
	w.mu.Unlock()
}

// TestEngineMigrationUnderChurn exercises everything that must follow a
// link to its current holder while links actually migrate: three heavy
// MUSIC-weighted links seeded onto shard 0 and three cheap links onto
// shard 1, so shard 1 retires its residents early and steals the heavies.
// While the run churns, blocking recalibrations land on random links (live,
// migrating, and already-retired ones — the revive path). Afterwards the
// test checks the scheduler did migrate (Metrics.Steals > 0), every link
// scored exactly its quota in order, the journal saw a base full record
// before any delta and one delta per scored window per link, and the
// per-link cost EWMAs separate the heavy links from the cheap ones. Run
// under -race (as CI does) this also proves the queues' atomic handoff
// publishes the link's unsynchronized owner state between shards.
func TestEngineMigrationUnderChurn(t *testing.T) {
	const (
		links   = 6
		windows = 30
	)
	scens, frames := skewedFrames(t, links, 41, 2*60+10)
	byLink, rec := recordDecisions()
	e := New(Config{
		Workers:    2,
		WindowSize: 25,
		Adaptation: &adapt.Policy{},
		OnDecision: rec,
	})
	// Links 0/2/4 run the heavy path-weighted scheme and seed round-robin
	// onto shard 0; links 1/3/5 are cheap and land on shard 1.
	for i, s := range scens {
		scheme := core.SchemeSubcarrier
		if i%2 == 0 {
			scheme = core.SchemeSubcarrierPath
		}
		cfg := core.DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
		if err := e.AddLink(fmt.Sprintf("l%d", i), cfg, NewReplaySource(frames[i], true)); err != nil {
			t.Fatal(err)
		}
	}
	sink := &captureSink{}
	if err := e.SetJournal(sink); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := e.Calibrate(ctx, 60); err != nil {
		t.Fatal(err)
	}

	runDone := make(chan error, 1)
	go func() { runDone <- e.Run(ctx, windows) }()

	// Wait for scoring to actually start: an inline Recalibrate fired before
	// Run's entry check would make Run bounce off ErrRunning.
	for e.Metrics().WindowsScored == 0 {
		select {
		case err := <-runDone:
			t.Fatalf("Run ended before scoring started: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Recalibration churn: blocking rebuilds posted at the links while they
	// retire and migrate. Near the end of the run a post can race Run's
	// exit; those fail with ErrNotRunning, which is the documented contract,
	// not a bug — everything else must succeed or report a pending clash.
	var recals, lateRejects int
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("l%d", i%links)
		switch err := e.Recalibrate(ctx, id, 40); {
		case err == nil:
			recals++
		case errors.Is(err, ErrRecalPending):
		case errors.Is(err, ErrNotRunning):
			lateRejects++
		default:
			t.Errorf("Recalibrate(%s): %v", id, err)
		}
	}

	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	if recals == 0 && lateRejects < 8 {
		t.Error("no recalibration completed and not all were late rejects")
	}

	m := e.Metrics()
	if m.Steals == 0 {
		t.Error("no link migrated: Steals == 0 (shard 1 retires three cheap links early and must steal)")
	}
	if len(m.Shards) != 2 {
		t.Fatalf("got %d shard metric entries, want 2", len(m.Shards))
	}
	var shardWindows uint64
	for i, sm := range m.Shards {
		shardWindows += sm.WindowsScored
		if sm.Utilization < 0 || sm.Utilization > 1 {
			t.Errorf("shard %d utilization %v outside [0,1]", i, sm.Utilization)
		}
	}
	if shardWindows != m.WindowsScored {
		t.Errorf("shard windows sum %d != fleet windows %d", shardWindows, m.WindowsScored)
	}

	// Cost EWMAs must be populated for every link. (The heavy-vs-cheap
	// ordering is NOT asserted here: with concurrent recalibrations and the
	// race detector on an oversubscribed host, a preemption mid-window can
	// inflate any link's measured cost. TestEngineStealingMatchesSequential's
	// skewed fleet covers the scheduler's response to real cost skew.)
	for _, lm := range m.PerLink {
		if lm.NsPerWindowEWMA <= 0 {
			t.Errorf("link %s: NsPerWindowEWMA = %v, want > 0", lm.ID, lm.NsPerWindowEWMA)
		}
	}

	for i := 0; i < links; i++ {
		id := fmt.Sprintf("l%d", i)
		if got := len(byLink[id]); got != windows {
			t.Errorf("link %s scored %d windows, want %d", id, got, windows)
		}
	}

	// Journal stream invariants, per link: a base full record arrives before
	// any delta, and — since every scored window of an adaptive link emits a
	// delta — each link logs at least its quota of deltas (recalibrations
	// add extra full records in between).
	fullSeen := make(map[string]bool)
	deltas := make(map[string]int)
	for _, r := range sink.recs {
		if r.full {
			fullSeen[r.link] = true
			continue
		}
		if !fullSeen[r.link] {
			t.Fatalf("link %s: delta before any full record", r.link)
		}
		deltas[r.link]++
	}
	for i := 0; i < links; i++ {
		id := fmt.Sprintf("l%d", i)
		if deltas[id] != windows {
			t.Errorf("link %s journaled %d deltas, want %d", id, deltas[id], windows)
		}
	}
	if sink.flushes == 0 {
		t.Error("journal writer never flushed")
	}
}
