package engine

import (
	"time"

	"mlink/internal/adapt"
)

// LinkMetrics is one link's monitoring state snapshot.
type LinkMetrics struct {
	// ID is the link's fleet ID.
	ID string
	// Calibrated reports whether the link has a detector.
	Calibrated bool
	// MeanMu is the link's mean multipath factor μ measured at calibration
	// (the §IV-A deployment-assessment metric; higher = more sensitive).
	MeanMu float64
	// Threshold is the current decision threshold (it moves over time when
	// adaptation is enabled).
	Threshold float64
	// WindowsScored counts scored monitoring windows.
	WindowsScored uint64
	// LastScore and MeanScore summarize the link's score stream.
	LastScore, MeanScore float64
	// Present is the link's latest verdict.
	Present bool
	// Adaptive reports whether the link runs an adaptation loop.
	Adaptive bool
	// Health is the link's adaptation snapshot (zero value when Adaptive is
	// false).
	Health adapt.Health
}

// Metrics is a consistent-enough snapshot of the engine's counters.
type Metrics struct {
	// Links is the fleet size.
	Links int
	// WindowsScored and FramesSeen count fleet-wide work.
	WindowsScored uint64
	FramesSeen    uint64
	// ScoresPerSec is windows scored per second of active Run time (0 before
	// the first Run).
	ScoresPerSec float64
	// PerLink holds one entry per link in registration order.
	PerLink []LinkMetrics
}

// Metrics snapshots the engine's counters and per-link state.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	links := append([]*link(nil), e.links...)
	active := time.Duration(e.runNanos.Load())
	if e.running {
		active += time.Since(e.runStart)
	}
	e.mu.Unlock()

	m := Metrics{
		Links:         len(links),
		WindowsScored: e.windowsScored.Load(),
		FramesSeen:    e.framesSeen.Load(),
		PerLink:       make([]LinkMetrics, 0, len(links)),
	}
	if secs := active.Seconds(); secs > 0 {
		m.ScoresPerSec = float64(m.WindowsScored) / secs
	}
	for _, l := range links {
		l.mu.Lock()
		lm := LinkMetrics{
			ID:            l.id,
			Calibrated:    l.det != nil,
			MeanMu:        l.meanMu,
			WindowsScored: l.windows,
			LastScore:     l.last.Score,
			Present:       l.last.Present,
			Adaptive:      l.adapter != nil,
			Health:        l.health,
		}
		if l.det != nil {
			lm.Threshold = l.det.Threshold()
		}
		if l.windows > 0 {
			lm.MeanScore = l.scoreSum / float64(l.windows)
		}
		l.mu.Unlock()
		m.PerLink = append(m.PerLink, lm)
	}
	return m
}
