package engine

import (
	"time"

	"mlink/internal/adapt"
)

// LinkMetrics is one link's monitoring state snapshot.
type LinkMetrics struct {
	// ID is the link's fleet ID.
	ID string
	// Calibrated reports whether the link has a detector.
	Calibrated bool
	// MeanMu is the link's mean multipath factor μ measured at calibration
	// (the §IV-A deployment-assessment metric; higher = more sensitive).
	MeanMu float64
	// Threshold is the current decision threshold (it moves over time when
	// adaptation is enabled).
	Threshold float64
	// WindowsScored counts scored monitoring windows.
	WindowsScored uint64
	// LastScore and MeanScore summarize the link's score stream.
	LastScore, MeanScore float64
	// Present is the link's latest verdict.
	Present bool
	// Adaptive reports whether the link runs an adaptation loop.
	Adaptive bool
	// Recalibrating reports an online recalibration in progress on the
	// link's owning shard (the link is excluded from fusion until it ends).
	Recalibrating bool
	// Health is the link's adaptation snapshot (zero value when Adaptive is
	// false). Its Lifecycle field mirrors the Lifecycle below.
	Health adapt.Health
	// Lifecycle is the link's supervised connectivity state
	// (LifecycleUnsupervised when supervision is off or Run is not active).
	Lifecycle adapt.Lifecycle
	// SourceDrops counts frames shed by the link's ingest ring, and
	// Reconnects successful source redials (both zero without supervision).
	SourceDrops uint64
	Reconnects  uint64
}

// Metrics is a consistent-enough snapshot of the engine's counters.
type Metrics struct {
	// Links is the fleet size.
	Links int
	// WindowsScored and FramesSeen count fleet-wide work.
	WindowsScored uint64
	FramesSeen    uint64
	// ScoresPerSec is windows scored per second of active Run time (0 before
	// the first Run).
	ScoresPerSec float64
	// PerLink holds one entry per link in registration order.
	PerLink []LinkMetrics
}

// Metrics snapshots the engine's counters and per-link state.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	e.MetricsInto(&m)
	return m
}

// MetricsInto is Metrics reusing the caller's struct — in particular its
// PerLink slice — so a steady-state report loop polls the engine without
// allocating. Per-link state is read from the links' lock-free published
// snapshots: a Metrics poll never blocks a scoring shard.
func (e *Engine) MetricsInto(m *Metrics) {
	perLink := m.PerLink[:0]
	var snap linkSnap
	e.mu.Lock()
	active := time.Duration(e.runNanos.Load())
	if e.running {
		active += time.Since(e.runStart)
	}
	m.Links = len(e.links)
	m.WindowsScored = e.windowsScored.Load()
	m.FramesSeen = e.framesSeen.Load()
	m.ScoresPerSec = 0
	if secs := active.Seconds(); secs > 0 {
		m.ScoresPerSec = float64(m.WindowsScored) / secs
	}
	for _, l := range e.links {
		l.state.load(&snap)
		lm := LinkMetrics{
			ID:            l.id,
			Calibrated:    snap.Calibrated,
			MeanMu:        snap.MeanMu,
			Threshold:     snap.Threshold,
			WindowsScored: snap.Windows,
			LastScore:     snap.Last.Score,
			Present:       snap.Last.Present,
			Adaptive:      snap.Adaptive,
			Recalibrating: snap.Recalibrating,
			Health:        snap.Health,
		}
		if snap.Windows > 0 {
			lm.MeanScore = snap.ScoreSum / float64(snap.Windows)
		}
		if l.sup != nil {
			st := l.sup.Status()
			lm.SourceDrops = st.Drops
			lm.Reconnects = st.Reconnects
			if e.running {
				lm.Lifecycle = st.Lifecycle
				lm.Health.Lifecycle = st.Lifecycle
			}
		}
		perLink = append(perLink, lm)
	}
	e.mu.Unlock()
	m.PerLink = perLink
}
