package engine

import (
	"time"

	"mlink/internal/adapt"
)

// LinkMetrics is one link's monitoring state snapshot.
type LinkMetrics struct {
	// ID is the link's fleet ID.
	ID string
	// Calibrated reports whether the link has a detector.
	Calibrated bool
	// MeanMu is the link's mean multipath factor μ measured at calibration
	// (the §IV-A deployment-assessment metric; higher = more sensitive).
	MeanMu float64
	// Threshold is the current decision threshold (it moves over time when
	// adaptation is enabled).
	Threshold float64
	// WindowsScored counts scored monitoring windows.
	WindowsScored uint64
	// LastScore and MeanScore summarize the link's score stream.
	LastScore, MeanScore float64
	// Present is the link's latest verdict.
	Present bool
	// NsPerWindowEWMA is the link's smoothed scoring cost in nanoseconds
	// per window (EWMA, α = 1/8) — the per-link load signal: a link an
	// order of magnitude above its peers is the one pinning a shard, and
	// the one work stealing routes around.
	NsPerWindowEWMA float64
	// Adaptive reports whether the link runs an adaptation loop.
	Adaptive bool
	// Recalibrating reports an online recalibration in progress on the
	// shard holding the link (the link is excluded from fusion until it
	// ends).
	Recalibrating bool
	// Health is the link's adaptation snapshot (zero value when Adaptive is
	// false). Its Lifecycle field mirrors the Lifecycle below.
	Health adapt.Health
	// Lifecycle is the link's supervised connectivity state
	// (LifecycleUnsupervised when supervision is off or Run is not active).
	Lifecycle adapt.Lifecycle
	// SourceDrops counts frames shed by the link's ingest ring, and
	// Reconnects successful source redials (both zero without supervision).
	SourceDrops uint64
	Reconnects  uint64
}

// ShardMetrics is one scoring shard's scheduler counters, cumulative across
// Runs (shards persist between Runs; counters reset only when the shard set
// is rebuilt for a different worker count).
type ShardMetrics struct {
	// WindowsScored counts windows this shard scored, whichever links they
	// came from.
	WindowsScored uint64
	// Steals counts links this shard took from a sibling's queue.
	Steals uint64
	// Utilization is the fraction of active Run time this shard spent
	// scoring windows rather than polling or idling — the load-balance
	// signal: under a skewed fleet with static affinity the shard pinned
	// on the heavy link sits near 1.0 while its siblings idle; with
	// stealing the spread tightens.
	Utilization float64
}

// Metrics is a consistent-enough snapshot of the engine's counters.
type Metrics struct {
	// Links is the fleet size.
	Links int
	// WindowsScored and FramesSeen count fleet-wide work.
	WindowsScored uint64
	FramesSeen    uint64
	// ScoresPerSec is windows scored per second of active Run time (0 before
	// the first Run).
	ScoresPerSec float64
	// Steals counts link migrations between shards (sum over Shards).
	Steals uint64
	// PerLink holds one entry per link in registration order.
	PerLink []LinkMetrics
	// Shards holds one entry per scoring shard.
	Shards []ShardMetrics
}

// Metrics snapshots the engine's counters and per-link state.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	e.MetricsInto(&m)
	return m
}

// MetricsInto is Metrics reusing the caller's struct — in particular its
// PerLink slice — so a steady-state report loop polls the engine without
// allocating. Per-link state is read from the links' lock-free published
// snapshots: a Metrics poll never blocks a scoring shard.
func (e *Engine) MetricsInto(m *Metrics) {
	perLink := m.PerLink[:0]
	shards := m.Shards[:0]
	var snap linkSnap
	e.mu.Lock()
	active := time.Duration(e.runNanos.Load())
	if e.running {
		active += time.Since(e.runStart)
	}
	m.Links = len(e.links)
	m.WindowsScored = e.windowsScored.Load()
	m.FramesSeen = e.framesSeen.Load()
	m.ScoresPerSec = 0
	if secs := active.Seconds(); secs > 0 {
		m.ScoresPerSec = float64(m.WindowsScored) / secs
	}
	m.Steals = 0
	for _, sh := range e.shards {
		sm := ShardMetrics{
			WindowsScored: sh.windows.Load(),
			Steals:        sh.steals.Load(),
		}
		if active > 0 {
			sm.Utilization = float64(sh.busyNs.Load()) / float64(active)
			if sm.Utilization > 1 {
				sm.Utilization = 1
			}
		}
		m.Steals += sm.Steals
		shards = append(shards, sm)
	}
	for _, l := range e.links {
		l.state.load(&snap)
		lm := LinkMetrics{
			ID:              l.id,
			Calibrated:      snap.Calibrated,
			MeanMu:          snap.MeanMu,
			Threshold:       snap.Threshold,
			WindowsScored:   snap.Windows,
			LastScore:       snap.Last.Score,
			NsPerWindowEWMA: snap.NsPerWindowEWMA,
			Present:         snap.Last.Present,
			Adaptive:        snap.Adaptive,
			Recalibrating:   snap.Recalibrating,
			Health:          snap.Health,
		}
		if snap.Windows > 0 {
			lm.MeanScore = snap.ScoreSum / float64(snap.Windows)
		}
		if l.sup != nil {
			st := l.sup.Status()
			lm.SourceDrops = st.Drops
			lm.Reconnects = st.Reconnects
			if e.running {
				lm.Lifecycle = st.Lifecycle
				lm.Health.Lifecycle = st.Lifecycle
			}
		}
		perLink = append(perLink, lm)
	}
	e.mu.Unlock()
	m.PerLink = perLink
	m.Shards = shards
}
