package core

import (
	"fmt"
	"math"

	"mlink/internal/dsp"
	"mlink/internal/music"
)

// PathWeightConfig bounds the angular region Eq. 17 enhances. Outside
// (MinDeg, MaxDeg) the weight is zero, because linear arrays estimate large
// angles unreliably (§IV-B2).
type PathWeightConfig struct {
	MinDeg, MaxDeg float64
	// FloorRatio clamps the pseudospectrum at FloorRatio·max(Ps) before
	// inversion so angles where essentially no energy ever arrives cannot
	// produce unbounded weights. The paper leaves this implicit; 1e-3
	// reproduces its behaviour while keeping the metric numerically sane.
	FloorRatio float64
}

// DefaultPathWeightConfig matches the paper's implementation choices
// (θmin = -60°, θmax = 60°).
func DefaultPathWeightConfig() PathWeightConfig {
	return PathWeightConfig{MinDeg: -60, MaxDeg: 60, FloorRatio: 1e-3}
}

// PathWeights implements Eq. 17: w(θ) = 1/Ps(θ) for θ ∈ (θmin, θmax), else
// 0, computed from the static (no-presence) pseudospectrum measured during
// calibration. The returned slice is aligned with static.AnglesDeg.
func PathWeights(static *music.Spectrum, cfg PathWeightConfig) ([]float64, error) {
	if static == nil || len(static.Power) == 0 {
		return nil, fmt.Errorf("empty static spectrum: %w", ErrBadInput)
	}
	if len(static.Power) != len(static.AnglesDeg) {
		return nil, fmt.Errorf("spectrum angles/power length mismatch: %w", ErrBadInput)
	}
	if cfg.MinDeg >= cfg.MaxDeg {
		return nil, fmt.Errorf("angular clamp [%v, %v]: %w", cfg.MinDeg, cfg.MaxDeg, ErrBadInput)
	}
	norm := static.Normalized()
	floor := cfg.FloorRatio
	if floor <= 0 {
		floor = 1e-6
	}
	out := make([]float64, len(norm.Power))
	for i, p := range norm.Power {
		theta := norm.AnglesDeg[i]
		if theta <= cfg.MinDeg || theta >= cfg.MaxDeg {
			continue
		}
		if p < floor {
			p = floor
		}
		out[i] = 1 / p
	}
	return out, nil
}

// WeightedSpectrumDistance computes the path-weighted Euclidean distance
// between two normalized pseudospectra (the §IV-C decision statistic):
//
//	score = √( Σθ w(θ)·(Pm(θ) - Pc(θ))² / Σθ w(θ) )
//
// The weight normalization keeps scores comparable across links with
// different static spectra.
func WeightedSpectrumDistance(mon, cal *music.Spectrum, weights []float64) (float64, error) {
	if mon == nil || cal == nil {
		return 0, fmt.Errorf("nil spectrum: %w", ErrBadInput)
	}
	n := len(mon.Power)
	if n == 0 || len(cal.Power) != n || len(weights) != n {
		return 0, fmt.Errorf("spectrum/weight lengths %d/%d/%d: %w", n, len(cal.Power), len(weights), ErrBadInput)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		d := mon.Power[i] - cal.Power[i]
		num += weights[i] * d * d
		den += weights[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("all-zero path weights: %w", ErrBadInput)
	}
	return math.Sqrt(num / den), nil
}

// weightedSpectrumDistanceDB computes
// WeightedSpectrumDistance(toDB(mon), toDB(cal), weights) straight from the
// linear power spectra: zero-weight angles contribute nothing to either sum
// term that depends on the spectra, so only the weighted angles pay a
// logarithm — and each pays one, 10·log₁₀(mon/cal) with both sides floored
// at 1e-30 as in toDB, instead of two, through the table-backed
// dsp.Log10Fast (≤2e-9 abs error — ≤2e-8 dB per weighted angle, far below
// the detector's decision margins). The hot scoring path uses this form;
// the property tests pin it to the naive toDB/math.Log10 composition.
func weightedSpectrumDistanceDB(mon, cal *music.Spectrum, weights []float64) (float64, error) {
	if mon == nil || cal == nil {
		return 0, fmt.Errorf("nil spectrum: %w", ErrBadInput)
	}
	n := len(mon.Power)
	if n == 0 || len(cal.Power) != n || len(weights) != n {
		return 0, fmt.Errorf("spectrum/weight lengths %d/%d/%d: %w", n, len(cal.Power), len(weights), ErrBadInput)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		w := weights[i]
		den += w
		if w == 0 {
			continue
		}
		m := mon.Power[i]
		if m < 1e-30 {
			m = 1e-30
		}
		c := cal.Power[i]
		if c < 1e-30 {
			c = 1e-30
		}
		d := 10 * dsp.Log10Fast(m/c)
		num += w * d * d
	}
	if den == 0 {
		return 0, fmt.Errorf("all-zero path weights: %w", ErrBadInput)
	}
	return math.Sqrt(num / den), nil
}
