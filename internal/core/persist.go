package core

import (
	"fmt"
	"math"

	"mlink/internal/binio"
	"mlink/internal/csi"
	"mlink/internal/music"
)

// Versioned binary formats. Every top-level blob opens with a magic and a
// version so a daemon restarted onto a newer build can reject (rather than
// misread) profiles persisted by an older one.
const (
	// profileVersion tags the Profile wire layout.
	profileVersion uint16 = 1
	// linkProfileVersion tags the LinkProfile (orig + adapted) layout.
	linkProfileVersion uint16 = 1
)

// profileMagic marks a serialized Profile ("MLPR") and linkProfileMagic a
// serialized LinkProfile ("MLLP").
const (
	profileMagic     uint32 = 0x4D4C5052
	linkProfileMagic uint32 = 0x4D4C4C50
)

// ErrBadSnapshot reports a persisted blob that cannot be decoded: truncated,
// wrong magic, or a version this build does not understand.
var ErrBadSnapshot = fmt.Errorf("core: bad profile snapshot (%w)", ErrBadInput)

// appendFrame serializes one CSI frame (shape, metadata, RSSI, IQ values).
func appendFrame(dst []byte, f *csi.Frame) []byte {
	dst = binio.AppendU32(dst, f.Seq)
	dst = binio.AppendU64(dst, f.TimestampMicros)
	dst = binio.AppendU16(dst, uint16(f.NumAntennas()))
	dst = binio.AppendU16(dst, uint16(f.NumSubcarriers()))
	for _, r := range f.RSSI {
		dst = binio.AppendF64(dst, r)
	}
	for _, row := range f.CSI {
		for _, v := range row {
			dst = binio.AppendF64(dst, real(v))
			dst = binio.AppendF64(dst, imag(v))
		}
	}
	return dst
}

func readFrame(r *binio.Reader) (*csi.Frame, error) {
	seq := r.U32()
	ts := r.U64()
	nAnt := int(r.U16())
	nSub := int(r.U16())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nAnt == 0 || nSub == 0 {
		return nil, fmt.Errorf("frame %dx%d: %w", nAnt, nSub, ErrBadSnapshot)
	}
	// Corrupt dimensions must fail as a decode error before the contiguous
	// frame backing is allocated, not as a multi-gigabyte OOM.
	if need := 8*uint64(nAnt) + 16*uint64(nAnt)*uint64(nSub); uint64(len(r.Rest())) < need {
		return nil, fmt.Errorf("frame %dx%d needs %d bytes, have %d: %w",
			nAnt, nSub, need, len(r.Rest()), ErrBadSnapshot)
	}
	f := csi.NewFrame(nAnt, nSub)
	f.Seq, f.TimestampMicros = seq, ts
	for i := range f.RSSI {
		f.RSSI[i] = r.F64()
	}
	for _, row := range f.CSI {
		for k := range row {
			re := r.F64()
			im := r.F64()
			row[k] = complex(re, im)
		}
	}
	return f, r.Err()
}

// appendGrid2 serializes a rectangular [][]float64.
func appendGrid2(dst []byte, g [][]float64) []byte {
	dst = binio.AppendU16(dst, uint16(len(g)))
	cols := 0
	if len(g) > 0 {
		cols = len(g[0])
	}
	dst = binio.AppendU16(dst, uint16(cols))
	for _, row := range g {
		for _, v := range row {
			dst = binio.AppendF64(dst, v)
		}
	}
	return dst
}

func readGrid2(r *binio.Reader) ([][]float64, error) {
	rows := int(r.U16())
	cols := int(r.U16())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("empty %dx%d fingerprint: %w", rows, cols, ErrBadSnapshot)
	}
	// Validate against the remaining bytes before any row is allocated.
	if need := 8 * uint64(rows) * uint64(cols); uint64(len(r.Rest())) < need {
		return nil, fmt.Errorf("%dx%d fingerprint needs %d bytes, have %d: %w",
			rows, cols, need, len(r.Rest()), ErrBadSnapshot)
	}
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
		for j := range out[i] {
			out[i][j] = r.F64()
		}
	}
	return out, r.Err()
}

// AppendBinary serializes the profile — fingerprints, static spectrum, path
// weights and the retained calibration frames, i.e. everything scoring
// touches — onto dst and returns the extended slice.
func (p *Profile) AppendBinary(dst []byte) ([]byte, error) {
	if p == nil || len(p.MeanAmp) == 0 || len(p.MeanRSSdB) == 0 {
		return nil, fmt.Errorf("serialize empty profile: %w", ErrBadInput)
	}
	dst = binio.AppendU32(dst, profileMagic)
	dst = binio.AppendU16(dst, profileVersion)
	dst = appendGrid2(dst, p.MeanAmp)
	dst = appendGrid2(dst, p.MeanRSSdB)
	if p.StaticSpectrum != nil {
		dst = binio.AppendBool(dst, true)
		dst = binio.AppendF64s(dst, p.StaticSpectrum.AnglesDeg)
		dst = binio.AppendF64s(dst, p.StaticSpectrum.Power)
	} else {
		dst = binio.AppendBool(dst, false)
	}
	dst = binio.AppendF64s(dst, p.PathWeights)
	dst = binio.AppendU32(dst, uint32(len(p.Frames)))
	for _, f := range p.Frames {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("serialize profile frame: %w", err)
		}
		dst = appendFrame(dst, f)
	}
	return dst, nil
}

// readProfile decodes one Profile from the reader's current position.
func readProfile(r *binio.Reader) (*Profile, error) {
	if m := r.U32(); r.Err() == nil && m != profileMagic {
		return nil, fmt.Errorf("profile magic %#x: %w", m, ErrBadSnapshot)
	}
	if v := r.U16(); r.Err() == nil && v != profileVersion {
		return nil, fmt.Errorf("profile version %d (want %d): %w", v, profileVersion, ErrBadSnapshot)
	}
	p := &Profile{}
	var err error
	if p.MeanAmp, err = readGrid2(r); err != nil {
		return nil, fmt.Errorf("mean amplitude: %w", err)
	}
	if p.MeanRSSdB, err = readGrid2(r); err != nil {
		return nil, fmt.Errorf("mean rss: %w", err)
	}
	if r.Bool() {
		p.StaticSpectrum = &music.Spectrum{AnglesDeg: r.F64s(), Power: r.F64s()}
	}
	p.PathWeights = r.F64s()
	nFrames := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Every frame costs at least its fixed header; a corrupt count cannot
	// be allowed to size the slice.
	if uint64(nFrames)*16 > uint64(len(r.Rest())) {
		return nil, fmt.Errorf("%d frames in %d bytes: %w", nFrames, len(r.Rest()), ErrBadSnapshot)
	}
	p.Frames = make([]*csi.Frame, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		f, err := readFrame(r)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		p.Frames = append(p.Frames, f)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Partials are a derived cache, not wire state: rebuild them from the
	// decoded frames so a restored path-weighted profile scores through the
	// same O(nSub·nAnt²) combine as a freshly calibrated one. The wire
	// format is unchanged.
	if p.StaticSpectrum != nil && len(p.Frames) > 0 {
		var err error
		if p.Partials, err = music.NewPartials(p.Frames); err != nil {
			return nil, fmt.Errorf("rebuild spectral partials: %w", err)
		}
	}
	return p, nil
}

// UnmarshalProfile decodes a Profile serialized by AppendBinary. The whole
// buffer must be consumed.
func UnmarshalProfile(b []byte) (*Profile, error) {
	r := binio.NewReader(b)
	p, err := readProfile(r)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	return p, nil
}

// AppendBinary serializes the link profile: EWMA alpha, refresh count, the
// immutable calibration original (in full, spectrum and frames included) and
// the adapted fingerprints. ShiftDB needs no field of its own — it is
// re-derived from the two fingerprints on restore, so it can never disagree
// with them.
func (lp *LinkProfile) AppendBinary(dst []byte) ([]byte, error) {
	dst = binio.AppendU32(dst, linkProfileMagic)
	dst = binio.AppendU16(dst, linkProfileVersion)
	dst = binio.AppendF64(dst, lp.alpha)
	dst = binio.AppendU64(dst, lp.refreshes)
	var err error
	if dst, err = lp.orig.AppendBinary(dst); err != nil {
		return nil, fmt.Errorf("link profile original: %w", err)
	}
	// The adapted profile shares spectrum/path-weights/frames/partials with
	// the original by construction (Refresh and Adopt carry them over by
	// reference), so only its fingerprints are stored.
	dst = appendGrid2(dst, lp.cur.MeanAmp)
	dst = appendGrid2(dst, lp.cur.MeanRSSdB)
	return dst, nil
}

// readLinkProfile decodes a LinkProfile from the reader's current position.
func readLinkProfile(r *binio.Reader) (*LinkProfile, error) {
	if m := r.U32(); r.Err() == nil && m != linkProfileMagic {
		return nil, fmt.Errorf("link profile magic %#x: %w", m, ErrBadSnapshot)
	}
	if v := r.U16(); r.Err() == nil && v != linkProfileVersion {
		return nil, fmt.Errorf("link profile version %d (want %d): %w", v, linkProfileVersion, ErrBadSnapshot)
	}
	alpha := r.F64()
	refreshes := r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	orig, err := readProfile(r)
	if err != nil {
		return nil, fmt.Errorf("original profile: %w", err)
	}
	lp, err := NewLinkProfile(orig, alpha)
	if err != nil {
		return nil, err
	}
	curAmp, err := readGrid2(r)
	if err != nil {
		return nil, fmt.Errorf("adapted amplitude: %w", err)
	}
	curRSS, err := readGrid2(r)
	if err != nil {
		return nil, fmt.Errorf("adapted rss: %w", err)
	}
	if len(curAmp) != len(orig.MeanAmp) || len(curAmp[0]) != len(orig.MeanAmp[0]) {
		return nil, fmt.Errorf("adapted fingerprint %dx%d differs from original %dx%d: %w",
			len(curAmp), len(curAmp[0]), len(orig.MeanAmp), len(orig.MeanAmp[0]), ErrBadSnapshot)
	}
	if len(curRSS) != len(curAmp) || len(curRSS[0]) != len(curAmp[0]) {
		return nil, fmt.Errorf("adapted rss %dx%d differs from amplitude %dx%d: %w",
			len(curRSS), len(curRSS[0]), len(curAmp), len(curAmp[0]), ErrBadSnapshot)
	}
	if refreshes > 0 {
		lp.cur = &Profile{
			MeanAmp:        curAmp,
			MeanRSSdB:      curRSS,
			StaticSpectrum: orig.StaticSpectrum,
			PathWeights:    orig.PathWeights,
			Frames:         orig.Frames,
			Partials:       orig.Partials,
		}
	}
	lp.refreshes = refreshes
	return lp, nil
}

// UnmarshalLinkProfile decodes a LinkProfile serialized by AppendBinary. The
// whole buffer must be consumed.
func UnmarshalLinkProfile(b []byte) (*LinkProfile, error) {
	r := binio.NewReader(b)
	lp, err := readLinkProfile(r)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("link profile: %w", err)
	}
	return lp, nil
}

// AdaptedState is the mutable slice of a LinkProfile — the refresh counter
// and the adapted fingerprints, everything that changes between two journal
// deltas. The immutable calibration original travels only in full records.
type AdaptedState struct {
	// Refreshes counts applied EWMA updates (0 means the adapted profile is
	// still the calibration original).
	Refreshes uint64
	// MeanAmp and MeanRSSdB are the adapted fingerprints.
	MeanAmp, MeanRSSdB [][]float64
}

// AppendAdaptedBinary serializes the link profile's mutable slice (refresh
// count plus adapted fingerprints) — the LinkProfile half of a journal
// delta. Pure appends: given capacity it allocates nothing.
func (lp *LinkProfile) AppendAdaptedBinary(dst []byte) []byte {
	dst = binio.AppendU64(dst, lp.refreshes)
	dst = appendGrid2(dst, lp.cur.MeanAmp)
	return appendGrid2(dst, lp.cur.MeanRSSdB)
}

// ReadAdaptedState decodes an AppendAdaptedBinary blob from the reader's
// current position.
func ReadAdaptedState(r *binio.Reader) (AdaptedState, error) {
	var st AdaptedState
	st.Refreshes = r.U64()
	var err error
	if st.MeanAmp, err = readGrid2(r); err != nil {
		return st, fmt.Errorf("adapted amplitude: %w", err)
	}
	if st.MeanRSSdB, err = readGrid2(r); err != nil {
		return st, fmt.Errorf("adapted rss: %w", err)
	}
	return st, nil
}

// RestoreAdapted replaces the link profile's mutable slice with persisted
// state, validating the fingerprints against the calibration original's
// shape first — on any error the profile is left untouched. As in
// readLinkProfile, a zero refresh count restores cur as the original
// itself, and an adapted profile shares the original's spectrum-derived
// fields by reference.
func (lp *LinkProfile) RestoreAdapted(st AdaptedState) error {
	if len(st.MeanAmp) != len(lp.orig.MeanAmp) || len(st.MeanAmp[0]) != len(lp.orig.MeanAmp[0]) {
		return fmt.Errorf("adapted fingerprint %dx%d differs from original %dx%d: %w",
			len(st.MeanAmp), len(st.MeanAmp[0]), len(lp.orig.MeanAmp), len(lp.orig.MeanAmp[0]), ErrBadSnapshot)
	}
	if len(st.MeanRSSdB) != len(st.MeanAmp) || len(st.MeanRSSdB[0]) != len(st.MeanAmp[0]) {
		return fmt.Errorf("adapted rss %dx%d differs from amplitude %dx%d: %w",
			len(st.MeanRSSdB), len(st.MeanRSSdB[0]), len(st.MeanAmp), len(st.MeanAmp[0]), ErrBadSnapshot)
	}
	if st.Refreshes == 0 {
		lp.cur = lp.orig
	} else {
		lp.cur = &Profile{
			MeanAmp:        st.MeanAmp,
			MeanRSSdB:      st.MeanRSSdB,
			StaticSpectrum: lp.orig.StaticSpectrum,
			PathWeights:    lp.orig.PathWeights,
			Frames:         lp.orig.Frames,
			Partials:       lp.orig.Partials,
		}
	}
	lp.refreshes = st.Refreshes
	return nil
}

// DriftMonitorState is the serializable state of a DriftMonitor: reference
// statistics plus the rolling score window, ordered oldest to newest. It is
// what the persistence layer stores so a restarted daemon's drift test
// resumes mid-window instead of going blind for a whole warm-up period.
type DriftMonitorState struct {
	// RefMean and RefStd are the reference null statistics (μ₀, σ₀).
	RefMean, RefStd float64
	// Scores and Jumps are the rolling window contents, oldest first; Jumps
	// is aligned with Scores (|Δ| versus the preceding observation).
	Scores, Jumps []float64
	// Prev is the last observed score (the jump base), valid when HavePrev.
	Prev     float64
	HavePrev bool
	// Seen counts all observations ever made.
	Seen uint64
	// OverCritical is the current consecutive-over-critical streak and
	// Latched the critical hysteresis latch.
	OverCritical int
	Latched      bool
}

// State exports the monitor for persistence.
func (m *DriftMonitor) State() DriftMonitorState {
	var st DriftMonitorState
	m.StateInto(&st)
	return st
}

// StateInto is State reusing the caller's struct — notably its Scores and
// Jumps slices — so the journal's per-window delta emission exports the
// monitor without allocating once the buffers have grown to the window
// length.
func (m *DriftMonitor) StateInto(st *DriftMonitorState) {
	n := m.count()
	st.RefMean = m.refMean
	st.RefStd = m.refStd
	st.Scores = st.Scores[:0]
	st.Jumps = st.Jumps[:0]
	st.Prev = m.prev
	st.HavePrev = m.havePrev
	st.Seen = m.seen
	st.OverCritical = m.overCrit
	st.Latched = m.latched
	start := 0
	if m.full {
		start = m.next
	}
	for i := 0; i < n; i++ {
		j := (start + i) % len(m.ring)
		st.Scores = append(st.Scores, m.ring[j])
		st.Jumps = append(st.Jumps, m.jumps[j])
	}
}

// RestoreDriftMonitor rebuilds a monitor from persisted state under the given
// config. A window shorter than the persisted sample keeps the newest scores.
func RestoreDriftMonitor(cfg DriftConfig, st DriftMonitorState) (*DriftMonitor, error) {
	cfg = cfg.withDefaults()
	if len(st.Jumps) != len(st.Scores) {
		return nil, fmt.Errorf("drift state with %d jumps for %d scores: %w", len(st.Jumps), len(st.Scores), ErrBadInput)
	}
	if st.RefStd <= 0 || math.IsNaN(st.RefMean) || math.IsNaN(st.RefStd) {
		return nil, fmt.Errorf("drift state reference (μ₀=%v, σ₀=%v): %w", st.RefMean, st.RefStd, ErrBadInput)
	}
	m := &DriftMonitor{
		cfg:      cfg,
		refMean:  st.RefMean,
		refStd:   st.RefStd,
		ring:     make([]float64, cfg.Window),
		jumps:    make([]float64, cfg.Window),
		prev:     st.Prev,
		havePrev: st.HavePrev,
		seen:     st.Seen,
		overCrit: st.OverCritical,
		latched:  st.Latched,
		last:     DriftStats{RefMean: st.RefMean, RefStd: st.RefStd, Observed: st.Seen},
	}
	scores, jumps := st.Scores, st.Jumps
	if len(scores) > cfg.Window {
		scores = scores[len(scores)-cfg.Window:]
		jumps = jumps[len(jumps)-cfg.Window:]
	}
	for i, s := range scores {
		m.ring[i] = s
		m.jumps[i] = jumps[i]
		m.sum += s
	}
	m.next = len(scores) % cfg.Window
	m.full = len(scores) == cfg.Window
	return m, nil
}

// Reset empties the rolling window and clears the critical latch while
// keeping the reference statistics — the clean-slate restart the fleet layer
// performs after relocking a link's baseline, when the scores accumulated
// against the pre-relock profile would poison every rolling statistic.
func (m *DriftMonitor) Reset() {
	for i := range m.ring {
		m.ring[i] = 0
		m.jumps[i] = 0
	}
	m.next, m.full = 0, false
	m.sum = 0
	m.havePrev = false
	m.overCrit = 0
	m.latched = false
	m.last = DriftStats{RefMean: m.refMean, RefStd: m.refStd, Observed: m.seen}
}
