package core

import (
	"math"
	"sync"
	"testing"

	"mlink/internal/csi"
	"mlink/internal/music"
	"mlink/internal/scenario"
)

// naivePathScore recomputes the SchemeSubcarrierPath decision statistic
// through the retained allocating reference path — naive music.Covariance
// over every calibration frame, the estimator's trigonometric Bartlett,
// toDB, WeightedSpectrumDistance — mirroring scoreSubcarrierPath step for
// step without any of its caches (steering plan, spectral partials, fused
// dB distance). The property tests pin the production path to this.
func naivePathScore(t *testing.T, k *Kernel, profile *Profile, window []*csi.Frame) float64 {
	t.Helper()
	sc := NewScratch()
	prep, err := prepareScratch(k.cfg, window, sc)
	if err != nil {
		t.Fatalf("naive prepare: %v", err)
	}
	perAnt, err := k.windowWeights(prep, sc)
	if err != nil {
		t.Fatalf("naive weights: %v", err)
	}
	w, err := AverageWeightVectors(perAnt)
	if err != nil {
		t.Fatalf("naive average: %v", err)
	}
	est, err := newEstimator(k.cfg)
	if err != nil {
		t.Fatalf("naive estimator: %v", err)
	}
	monCov, err := music.Covariance(prep, w)
	if err != nil {
		t.Fatalf("naive monitor covariance: %v", err)
	}
	monSpec, err := est.Bartlett(monCov)
	if err != nil {
		t.Fatalf("naive monitor spectrum: %v", err)
	}
	calCov, err := music.Covariance(profile.Frames, w)
	if err != nil {
		t.Fatalf("naive calibration covariance: %v", err)
	}
	calSpec, err := est.Bartlett(calCov)
	if err != nil {
		t.Fatalf("naive calibration spectrum: %v", err)
	}
	score, err := WeightedSpectrumDistance(toDB(monSpec), toDB(calSpec), profile.PathWeights)
	if err != nil {
		t.Fatalf("naive distance: %v", err)
	}
	return score
}

// driftFrames pulls n frames off a drift stream without recycling (the
// calibration profile retains its frames).
func driftFrames(t *testing.T, d *scenario.DriftStream, n int) []*csi.Frame {
	t.Helper()
	out := make([]*csi.Frame, n)
	for i := range out {
		f, err := d.Next()
		if err != nil {
			t.Fatalf("drift frame %d: %v", i, err)
		}
		out[i] = f
	}
	return out
}

// TestPathScoreCachedMatchesNaive sweeps drift presets × seeds and pins the
// cached scoring path (steering plan + profile partials + scratch reuse +
// fused dB distance through dsp.Log10Fast) to the naive math.Log10 reference
// within 1e-6 — including after a profile Refresh and a full Adopt relock,
// whose profiles carry the calibration partials by reference. The bound is
// dominated by Log10Fast's ≤2e-9 per-log error (≤2e-8 dB per weighted
// angle); everything upstream of the distance agrees to ~1e-15 relative, and
// Log10Fast itself is pinned to <2e-9 by its own property suite in dsp.
func TestPathScoreCachedMatchesNaive(t *testing.T) {
	presets := map[string]scenario.DriftPreset{
		"none":      scenario.NoDrift(),
		"gain":      scenario.GainWalk(4),
		"cfo":       scenario.CFOWalk(20, 0.002),
		"furniture": scenario.FurnitureMove(70),
	}
	for name, preset := range presets {
		for _, seed := range []int64{1, 5, 9} {
			s, err := scenario.LinkCase(2, seed)
			if err != nil {
				t.Fatal(err)
			}
			d, err := s.NewDriftStream(preset, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(s.Grid, SchemeSubcarrierPath, s.Env.RX.Offsets())
			profile, err := Calibrate(cfg, driftFrames(t, d, 60))
			if err != nil {
				t.Fatal(err)
			}
			if profile.Partials == nil {
				t.Fatal("Calibrate left Partials nil")
			}
			det, err := NewDetector(cfg, profile)
			if err != nil {
				t.Fatal(err)
			}
			k := det.Kernel()
			sc := NewScratch()
			check := func(stage string, p *Profile, window []*csi.Frame) {
				got, err := k.Score(p, window, sc)
				if err != nil {
					t.Fatalf("%s/%s/seed=%d: cached score: %v", name, stage, seed, err)
				}
				want := naivePathScore(t, k, p, window)
				if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
					t.Fatalf("%s/%s/seed=%d: cached %v vs naive %v (diff %v)",
						name, stage, seed, got, want, math.Abs(got-want))
				}
			}
			check("calibrated", profile, driftFrames(t, d, 25))

			// Refresh folds a silent window into the EWMA profile; Frames are
			// untouched, so the partials ride along by reference.
			lp, err := NewLinkProfile(profile, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			var ws WindowStats
			if err := k.MeasureWindowInto(&ws, driftFrames(t, d, 25), sc); err != nil {
				t.Fatal(err)
			}
			refreshed, err := lp.Refresh(&ws)
			if err != nil {
				t.Fatal(err)
			}
			if refreshed.Partials != profile.Partials {
				t.Fatalf("%s/seed=%d: Refresh did not carry partials by reference", name, seed)
			}
			check("refreshed", refreshed, driftFrames(t, d, 25))

			// Adopt relocks the profile onto the drifted window statistics.
			if err := k.MeasureWindowInto(&ws, driftFrames(t, d, 25), sc); err != nil {
				t.Fatal(err)
			}
			adopted, err := lp.Adopt(&ws)
			if err != nil {
				t.Fatal(err)
			}
			if adopted.Partials == nil {
				t.Fatalf("%s/seed=%d: Adopt dropped partials", name, seed)
			}
			check("adopted", adopted, driftFrames(t, d, 25))
		}
	}
}

// TestScoreScratchIndependentAcrossSchemes pins scratch-state hygiene for
// every scheme: a scratch that has scored many windows produces bit-identical
// scores to a fresh one — the invariant that makes work-stealing link
// migration safe.
func TestScoreScratchIndependentAcrossSchemes(t *testing.T) {
	s, err := scenario.LinkCase(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NewDriftStream(scenario.GainWalk(2), 5)
	if err != nil {
		t.Fatal(err)
	}
	cal := driftFrames(t, d, 60)
	windows := make([][]*csi.Frame, 6)
	for i := range windows {
		windows[i] = driftFrames(t, d, 25)
	}
	for _, scheme := range []Scheme{SchemeBaseline, SchemeSubcarrier, SchemeSubcarrierPath} {
		cfg := DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
		profile, err := Calibrate(cfg, cal)
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewDetector(cfg, profile)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewScratch()
		for _, win := range windows {
			if _, err := det.ScoreScratch(win, warm); err != nil {
				t.Fatal(err)
			}
		}
		for wi, win := range windows {
			reused, err := det.ScoreScratch(win, warm)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := det.ScoreScratch(win, NewScratch())
			if err != nil {
				t.Fatal(err)
			}
			if reused != fresh {
				t.Fatalf("%v window %d: reused scratch %v != fresh scratch %v", scheme, wi, reused, fresh)
			}
		}
	}
}

// TestPathProfilePersistenceRebuildsPartials round-trips a path profile and
// a link profile through the binary format: partials are never serialized,
// so decode must re-derive them from the decoded frames, and scores through
// the restored profiles must be bit-identical (frames round-trip exactly).
func TestPathProfilePersistenceRebuildsPartials(t *testing.T) {
	s, err := scenario.LinkCase(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NewDriftStream(scenario.NoDrift(), 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s.Grid, SchemeSubcarrierPath, s.Env.RX.Offsets())
	profile, err := Calibrate(cfg, driftFrames(t, d, 60))
	if err != nil {
		t.Fatal(err)
	}
	window := driftFrames(t, d, 25)
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.Score(window)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := profile.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalProfile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Partials == nil {
		t.Fatal("UnmarshalProfile left Partials nil for a spectrum-bearing profile")
	}
	if decoded.Partials.NumFrames() != len(decoded.Frames) {
		t.Fatalf("rebuilt partials cover %d frames, profile has %d", decoded.Partials.NumFrames(), len(decoded.Frames))
	}
	if err := det.SetProfile(decoded); err != nil {
		t.Fatal(err)
	}
	got, err := det.Score(window)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("restored-profile score %v != original %v", got, want)
	}

	lp, err := NewLinkProfile(profile, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	lpBlob, err := lp.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	lpDec, err := UnmarshalLinkProfile(lpBlob)
	if err != nil {
		t.Fatal(err)
	}
	for tag, p := range map[string]*Profile{"original": lpDec.Original(), "current": lpDec.Current()} {
		if p.Partials == nil {
			t.Fatalf("UnmarshalLinkProfile left %s Partials nil", tag)
		}
	}
	if err := det.SetProfile(lpDec.Current()); err != nil {
		t.Fatal(err)
	}
	if got, err := det.Score(window); err != nil || got != want {
		t.Fatalf("link-profile restored score %v (err %v) != original %v", got, err, want)
	}
}

// TestPathScoreZeroAllocs pins the tentpole claim at the API boundary: a
// warmed path-scheme ScoreScratch allocates nothing.
func TestPathScoreZeroAllocs(t *testing.T) {
	s, err := scenario.LinkCase(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NewDriftStream(scenario.NoDrift(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s.Grid, SchemeSubcarrierPath, s.Env.RX.Offsets())
	profile, err := Calibrate(cfg, driftFrames(t, d, 60))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	window := driftFrames(t, d, 25)
	sc := NewScratch()
	if _, err := det.ScoreScratch(window, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := det.ScoreScratch(window, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm path-scheme score allocates %v/op, want 0", allocs)
	}
}

// TestPathScorersConcurrentSharedPlan runs many scorers against one Detector
// — one Kernel, one steering plan, one profile partials — with per-goroutine
// scratches, under -race in CI. Every scorer must get the identical score.
func TestPathScorersConcurrentSharedPlan(t *testing.T) {
	s, err := scenario.LinkCase(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.NewDriftStream(scenario.GainWalk(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s.Grid, SchemeSubcarrierPath, s.Env.RX.Offsets())
	profile, err := Calibrate(cfg, driftFrames(t, d, 60))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	window := driftFrames(t, d, 25)
	want, err := det.Score(window)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	scores := make([]float64, 8)
	errs := make([]error, 8)
	for g := range scores {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := NewScratch()
			for iter := 0; iter < 10; iter++ {
				scores[g], errs[g] = det.ScoreScratch(window, sc)
				if errs[g] != nil {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := range scores {
		if errs[g] != nil {
			t.Fatalf("scorer %d: %v", g, errs[g])
		}
		if scores[g] != want {
			t.Fatalf("scorer %d: score %v != sequential %v", g, scores[g], want)
		}
	}
}
