package core

import (
	"fmt"
	"math"
)

// LinkProfile is the mutable, adaptable view of a link's static profile. It
// keeps the original calibration Profile as an immutable reference and
// maintains a current Profile whose amplitude and RSS fingerprints are
// updated online by exponentially weighted moving averages over silent
// monitoring windows — the RASID-style profile refresh that lets a detector
// survive environment non-stationarity (slow gain walks, temperature drift,
// small furniture settles).
//
// Refresh is copy-on-write: every update allocates fresh mean rows and
// returns a brand-new *Profile, so scorers holding an older snapshot are
// never raced. Spectrum-derived fields (StaticSpectrum, PathWeights,
// Frames, Partials) are carried over by reference — the EWMA scheme adapts
// the amplitude fingerprints only; a walked angular profile is what
// quarantine and recalibration are for. Partials ride along safely because
// they are a pure function of Frames, which a refresh never changes; a
// recalibration builds a whole new Profile (with fresh partials) through
// Calibrate.
type LinkProfile struct {
	orig  *Profile
	cur   *Profile
	alpha float64
	// refreshes counts applied updates.
	refreshes uint64
}

// DefaultProfileAlpha is the EWMA weight of one silent window's statistics.
// At the paper's operating point (25-packet windows at 50 pkt/s) 0.08 gives
// a ~6 s profile time constant: fast enough to track thermal gain walks,
// slow enough that a person lingering below threshold for one window cannot
// erase themselves from the reference.
const DefaultProfileAlpha = 0.08

// NewLinkProfile wraps a calibration profile for online adaptation.
// alpha ∈ (0, 1] is the EWMA weight of each new window (0 selects
// DefaultProfileAlpha).
func NewLinkProfile(p *Profile, alpha float64) (*LinkProfile, error) {
	if p == nil || len(p.MeanAmp) == 0 || len(p.MeanRSSdB) == 0 {
		return nil, fmt.Errorf("link profile needs a calibrated profile: %w", ErrBadInput)
	}
	if alpha == 0 {
		alpha = DefaultProfileAlpha
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("ewma alpha %v out of (0,1]: %w", alpha, ErrBadInput)
	}
	return &LinkProfile{orig: p, cur: p, alpha: alpha}, nil
}

// Alpha returns the EWMA weight of one refresh.
func (lp *LinkProfile) Alpha() float64 { return lp.alpha }

// Original returns the immutable calibration-time profile.
func (lp *LinkProfile) Original() *Profile { return lp.orig }

// Current returns the latest adapted profile.
func (lp *LinkProfile) Current() *Profile { return lp.cur }

// Refreshes counts the EWMA updates applied so far.
func (lp *LinkProfile) Refreshes() uint64 { return lp.refreshes }

// Refresh folds one silent window's statistics into the profile:
//
//	mean ← (1−α)·mean + α·window
//
// applied to both the amplitude and RSS fingerprints, and returns the new
// immutable Profile (also retrievable via Current). The caller typically
// hands it straight to Detector.SetProfile.
func (lp *LinkProfile) Refresh(ws *WindowStats) (*Profile, error) {
	if ws == nil || len(ws.MeanAmp) == 0 {
		return nil, fmt.Errorf("refresh with empty window stats: %w", ErrBadInput)
	}
	if len(ws.MeanAmp) != len(lp.cur.MeanAmp) || len(ws.MeanAmp[0]) != len(lp.cur.MeanAmp[0]) {
		return nil, fmt.Errorf("window stats %dx%d differ from profile %dx%d: %w",
			len(ws.MeanAmp), len(ws.MeanAmp[0]),
			len(lp.cur.MeanAmp), len(lp.cur.MeanAmp[0]), ErrBadInput)
	}
	nAnt := len(lp.cur.MeanAmp)
	nSub := len(lp.cur.MeanAmp[0])
	next := &Profile{
		MeanAmp:        zeros2(nAnt, nSub),
		MeanRSSdB:      zeros2(nAnt, nSub),
		StaticSpectrum: lp.cur.StaticSpectrum,
		PathWeights:    lp.cur.PathWeights,
		Frames:         lp.cur.Frames,
		Partials:       lp.cur.Partials,
	}
	a := lp.alpha
	for ant := 0; ant < nAnt; ant++ {
		for k := 0; k < nSub; k++ {
			v := (1-a)*lp.cur.MeanAmp[ant][k] + a*ws.MeanAmp[ant][k]
			r := (1-a)*lp.cur.MeanRSSdB[ant][k] + a*ws.MeanRSSdB[ant][k]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(r) {
				return nil, fmt.Errorf("non-finite refresh at antenna %d subcarrier %d: %w", ant, k, ErrBadInput)
			}
			next.MeanAmp[ant][k] = v
			next.MeanRSSdB[ant][k] = r
		}
	}
	lp.cur = next
	lp.refreshes++
	return next, nil
}

// Adopt replaces the current fingerprints wholesale with one window's
// statistics — a Refresh with α = 1. It is the fleet layer's ambient-drift
// relock: when every link of a site moved together, the level the site sits
// at now *is* the empty room, and EWMA-walking towards it over dozens of
// windows would false-alarm the whole way. Like Refresh it is copy-on-write
// and carries the spectrum-derived fields over by reference.
func (lp *LinkProfile) Adopt(ws *WindowStats) (*Profile, error) {
	if ws == nil || len(ws.MeanAmp) == 0 {
		return nil, fmt.Errorf("adopt with empty window stats: %w", ErrBadInput)
	}
	if len(ws.MeanAmp) != len(lp.cur.MeanAmp) || len(ws.MeanAmp[0]) != len(lp.cur.MeanAmp[0]) {
		return nil, fmt.Errorf("window stats %dx%d differ from profile %dx%d: %w",
			len(ws.MeanAmp), len(ws.MeanAmp[0]),
			len(lp.cur.MeanAmp), len(lp.cur.MeanAmp[0]), ErrBadInput)
	}
	nAnt := len(lp.cur.MeanAmp)
	nSub := len(lp.cur.MeanAmp[0])
	next := &Profile{
		MeanAmp:        zeros2(nAnt, nSub),
		MeanRSSdB:      zeros2(nAnt, nSub),
		StaticSpectrum: lp.cur.StaticSpectrum,
		PathWeights:    lp.cur.PathWeights,
		Frames:         lp.cur.Frames,
		Partials:       lp.cur.Partials,
	}
	for ant := 0; ant < nAnt; ant++ {
		for k := 0; k < nSub; k++ {
			v, r := ws.MeanAmp[ant][k], ws.MeanRSSdB[ant][k]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.IsNaN(r) {
				return nil, fmt.Errorf("non-finite adopt at antenna %d subcarrier %d: %w", ant, k, ErrBadInput)
			}
			next.MeanAmp[ant][k] = v
			next.MeanRSSdB[ant][k] = r
		}
	}
	lp.cur = next
	lp.refreshes++
	return next, nil
}

// ShiftDB measures how far the adapted profile has walked from the
// calibration-time original: the mean absolute per-subcarrier RSS change in
// dB across all antennas. It is the accumulated-adaptation counterpart of
// the DriftMonitor's score test — a detector that is tracking drift
// perfectly shows normal scores but a growing ShiftDB.
func (lp *LinkProfile) ShiftDB() float64 {
	var sum float64
	var n int
	for ant := range lp.cur.MeanRSSdB {
		for k := range lp.cur.MeanRSSdB[ant] {
			d := lp.cur.MeanRSSdB[ant][k] - lp.orig.MeanRSSdB[ant][k]
			if math.IsInf(d, 0) || math.IsNaN(d) {
				continue
			}
			sum += math.Abs(d)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
