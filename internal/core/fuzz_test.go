package core

import (
	"errors"
	"testing"

	"mlink/internal/binio"
	"mlink/internal/scenario"
)

// fuzzProfileSeeds builds real serialized profiles — a calibrated Profile
// blob and a LinkProfile blob with refresh history — so the fuzzer starts
// from the structures it must not be panicked by.
func fuzzProfileSeeds(f *testing.F) (profile, linkProfile []byte) {
	f.Helper()
	s, err := scenario.Classroom(31)
	if err != nil {
		f.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		f.Fatal(err)
	}
	cfg := DefaultConfig(s.Grid, SchemeSubcarrier, s.Env.RX.Offsets())
	p, err := Calibrate(cfg, x.CaptureN(60, nil))
	if err != nil {
		f.Fatal(err)
	}
	profile, err = p.AppendBinary(nil)
	if err != nil {
		f.Fatal(err)
	}
	lp, err := NewLinkProfile(p, 0.05)
	if err != nil {
		f.Fatal(err)
	}
	det, err := NewDetector(cfg, p)
	if err != nil {
		f.Fatal(err)
	}
	var ws WindowStats
	if err := det.MeasureWindow(&ws, x.CaptureN(25, nil), NewScratch()); err != nil {
		f.Fatal(err)
	}
	if _, err := lp.Refresh(&ws); err != nil {
		f.Fatal(err)
	}
	linkProfile, err = lp.AppendBinary(nil)
	if err != nil {
		f.Fatal(err)
	}
	return profile, linkProfile
}

// FuzzProfileRecord throws truncated, bit-flipped and length-inflated
// variants of real profile records at the profile decoders: they must
// return typed errors (ErrBadInput-wrapping or binio.ErrShort) and never
// panic, and an accepted blob must re-serialize.
func FuzzProfileRecord(f *testing.F) {
	profile, linkProfile := fuzzProfileSeeds(f)
	f.Add(profile)
	f.Add(linkProfile)
	f.Add(profile[:len(profile)/2])
	f.Add(linkProfile[:len(linkProfile)-7])
	flipped := append([]byte(nil), linkProfile...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Length-inflated fingerprint: a grid header claiming 65535×65535.
	inflated := append([]byte(nil), profile[:10]...)
	inflated = append(inflated, 0xFF, 0xFF, 0xFF, 0xFF)
	f.Add(inflated)
	f.Add([]byte{})

	check := func(t *testing.T, err error) {
		if err != nil && !errors.Is(err, ErrBadInput) && !errors.Is(err, binio.ErrShort) {
			t.Fatalf("untyped decode error: %v", err)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalProfile(data)
		check(t, err)
		if err == nil {
			if _, err := p.AppendBinary(nil); err != nil {
				t.Fatalf("accepted profile does not re-serialize: %v", err)
			}
		}
		lp, err := UnmarshalLinkProfile(data)
		check(t, err)
		if err == nil {
			if _, err := lp.AppendBinary(nil); err != nil {
				t.Fatalf("accepted link profile does not re-serialize: %v", err)
			}
		}
		// The delta-side adapted-state reader shares the hostile-input
		// guarantees: no panic, typed errors only.
		r := binio.NewReader(data)
		if _, err := ReadAdaptedState(r); err != nil {
			check(t, err)
		}
	})
}
