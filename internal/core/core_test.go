package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/music"
	"mlink/internal/propagation"
)

func testGrid(t *testing.T) *channel.Grid {
	t.Helper()
	g, err := channel.NewIntel5300Grid(channel.CenterFreqChannel11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testLink builds a 4 m classroom-style link with a 3-antenna receiver.
func testLink(t *testing.T, reflective bool) (*propagation.Environment, *channel.Grid) {
	t.Helper()
	mat := propagation.Drywall
	if !reflective {
		mat = propagation.Material{Name: "absorber", Reflectivity: 0}
	}
	room, err := propagation.RectRoom(6, 8, mat)
	if err != nil {
		t.Fatal(err)
	}
	grid := testGrid(t)
	lambda := propagation.SpeedOfLight / grid.Center
	rx, err := propagation.NewULA(geom.Point{X: 5, Y: 4}, math.Pi, 3, lambda/2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := propagation.NewEnvironment(room, geom.Point{X: 1, Y: 4}, rx, propagation.DefaultLinkParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return env, grid
}

func testExtractor(t *testing.T, env *propagation.Environment, grid *channel.Grid, seed int64) *csi.Extractor {
	t.Helper()
	x, err := csi.NewExtractor(env, grid, csi.DefaultImpairments(), 50, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestMultipathFactorsPureLOS(t *testing.T) {
	env, grid := testLink(t, false)
	x, err := csi.NewExtractor(env, grid, csi.Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := x.Capture(nil)
	mu, err := MultipathFactors(f.CSI[1], grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu) != 30 {
		t.Fatalf("mu len = %d", len(mu))
	}
	// A pure LOS channel has μ ≈ 1 on every subcarrier.
	for k, m := range mu {
		if math.Abs(m-1) > 0.15 {
			t.Fatalf("pure-LOS μ[%d] = %v, want ≈1", k, m)
		}
	}
}

func TestMultipathFactorsSpreadWithMultipath(t *testing.T) {
	env, grid := testLink(t, true)
	x, err := csi.NewExtractor(env, grid, csi.Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := x.Capture(nil)
	mu, err := MultipathFactors(f.CSI[1], grid)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = math.Inf(1), math.Inf(-1)
	for _, m := range mu {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	// Multipath must spread μ across subcarriers.
	if hi-lo < 0.05 {
		t.Fatalf("μ spread = %v, want spread from multipath", hi-lo)
	}
	for _, m := range mu {
		if m <= 0 || m > 10 {
			t.Fatalf("μ out of plausible range: %v", m)
		}
	}
}

func TestMultipathFactorsErrors(t *testing.T) {
	grid := testGrid(t)
	if _, err := MultipathFactors(make([]complex128, 5), grid); !errors.Is(err, ErrBadInput) {
		t.Fatalf("length mismatch err = %v", err)
	}
	if _, err := MultipathFactors(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil grid err = %v", err)
	}
}

func TestFrameMultipathFactors(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 1)
	f := x.Capture(nil)
	mus, err := FrameMultipathFactors(f, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(mus) != 3 || len(mus[0]) != 30 {
		t.Fatalf("shape %dx%d", len(mus), len(mus[0]))
	}
	if _, err := FrameMultipathFactors(&csi.Frame{}, grid); err == nil {
		t.Fatal("invalid frame accepted")
	}
}

func TestSubcarrierRSSdB(t *testing.T) {
	row := []complex128{complex(10, 0), 0}
	rss := SubcarrierRSSdB(row)
	if math.Abs(rss[0]-20) > 1e-9 {
		t.Fatalf("rss[0] = %v", rss[0])
	}
	if !math.IsInf(rss[1], -1) {
		t.Fatalf("rss of 0 = %v", rss[1])
	}
}

func TestComputeSubcarrierWeights(t *testing.T) {
	// Subcarrier 2 always has the largest μ: it must get the top weight.
	mus := [][]float64{
		{0.5, 0.8, 2.0, 0.6},
		{0.4, 0.9, 1.8, 0.5},
		{0.6, 0.7, 2.2, 0.4},
	}
	sw, err := ComputeSubcarrierWeights(mus)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Weights) != 4 {
		t.Fatalf("weights len = %d", len(sw.Weights))
	}
	for k := range sw.Weights {
		if k == 2 {
			continue
		}
		if sw.Weights[2] <= sw.Weights[k] {
			t.Fatalf("weight[2]=%v not dominant over weight[%d]=%v", sw.Weights[2], k, sw.Weights[k])
		}
	}
	if sw.StabilityRatio[2] != 1 {
		t.Fatalf("stability of always-max subcarrier = %v, want 1", sw.StabilityRatio[2])
	}
	if math.Abs(sw.MeanMu[2]-2.0) > 1e-9 {
		t.Fatalf("mean μ[2] = %v", sw.MeanMu[2])
	}
}

func TestComputeSubcarrierWeightsUnstablePenalized(t *testing.T) {
	// Subcarriers 0 and 1 have the same mean μ, but 0 is stable (always
	// above median) while 1 alternates; Eq. 15 must favour 0.
	mus := [][]float64{
		{2.0, 3.5, 0.5, 0.4},
		{2.0, 0.3, 0.5, 0.4},
		{2.0, 3.5, 0.5, 0.4},
		{2.0, 0.3, 0.5, 0.4},
	}
	sw, err := ComputeSubcarrierWeights(mus)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Weights[0] <= sw.Weights[1] {
		t.Fatalf("stable subcarrier not favoured: w0=%v w1=%v", sw.Weights[0], sw.Weights[1])
	}
}

func TestComputeSubcarrierWeightsErrors(t *testing.T) {
	if _, err := ComputeSubcarrierWeights(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := ComputeSubcarrierWeights([][]float64{{}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no subcarriers err = %v", err)
	}
	if _, err := ComputeSubcarrierWeights([][]float64{{1, 2}, {1}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestPerPacketWeights(t *testing.T) {
	w, err := PerPacketWeights([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.25) > 1e-12 || math.Abs(w[1]-0.75) > 1e-12 {
		t.Fatalf("weights = %v", w)
	}
	zero, err := PerPacketWeights([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero weights = %v", zero)
	}
	if _, err := PerPacketWeights(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestApplyWeightsAndAverage(t *testing.T) {
	out, err := ApplyWeights([]float64{2, 0.5}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 6 || out[1] != 2 {
		t.Fatalf("applied = %v", out)
	}
	if _, err := ApplyWeights([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatch err = %v", err)
	}
	avg, err := AverageWeightVectors([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 2 || avg[1] != 3 {
		t.Fatalf("avg = %v", avg)
	}
	if _, err := AverageWeightVectors(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty err = %v", err)
	}
	if _, err := AverageWeightVectors([][]float64{{1}, {1, 2}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestPathWeights(t *testing.T) {
	spec := &music.Spectrum{
		AnglesDeg: []float64{-90, -60, -30, 0, 30, 60, 90},
		Power:     []float64{0.1, 0.2, 0.5, 1.0, 0.25, 0.2, 0.1},
	}
	w, err := PathWeights(spec, DefaultPathWeightConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Outside (−60, 60) must be zero (inclusive bounds excluded).
	if w[0] != 0 || w[1] != 0 || w[5] != 0 || w[6] != 0 {
		t.Fatalf("weights outside clamp nonzero: %v", w)
	}
	// Strongest static direction gets the smallest in-range weight.
	if !(w[3] < w[2] && w[3] < w[4]) {
		t.Fatalf("LOS angle not de-emphasized: %v", w)
	}
	// The weaker static direction (+30°, Ps=0.25) gets a larger weight than
	// the stronger one (-30°, Ps=0.5) — NLOS enhancement.
	if w[4] <= w[2] {
		t.Fatalf("weights do not favour weaker static paths: %v", w)
	}
}

func TestPathWeightsErrors(t *testing.T) {
	if _, err := PathWeights(nil, DefaultPathWeightConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil spectrum err = %v", err)
	}
	bad := &music.Spectrum{AnglesDeg: []float64{0}, Power: []float64{1, 2}}
	if _, err := PathWeights(bad, DefaultPathWeightConfig()); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatch err = %v", err)
	}
	cfg := DefaultPathWeightConfig()
	cfg.MinDeg, cfg.MaxDeg = 60, -60
	good := &music.Spectrum{AnglesDeg: []float64{0}, Power: []float64{1}}
	if _, err := PathWeights(good, cfg); !errors.Is(err, ErrBadInput) {
		t.Fatalf("inverted clamp err = %v", err)
	}
}

func TestPathWeightsFloorCapsExplosion(t *testing.T) {
	spec := &music.Spectrum{
		AnglesDeg: []float64{-10, 0, 10},
		Power:     []float64{1e-12, 1.0, 0.5},
	}
	cfg := DefaultPathWeightConfig()
	w, err := PathWeights(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] > 1/cfg.FloorRatio+1e-9 {
		t.Fatalf("floor did not cap weight: %v", w[0])
	}
}

func TestWeightedSpectrumDistance(t *testing.T) {
	a := &music.Spectrum{AnglesDeg: []float64{0, 1}, Power: []float64{1, 0}}
	b := &music.Spectrum{AnglesDeg: []float64{0, 1}, Power: []float64{0, 0}}
	d, err := WeightedSpectrumDistance(a, b, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-math.Sqrt(0.5)) > 1e-12 {
		t.Fatalf("distance = %v", d)
	}
	// Identical spectra → 0.
	z, err := WeightedSpectrumDistance(a, a, []float64{1, 1})
	if err != nil || z != 0 {
		t.Fatalf("self distance = %v err = %v", z, err)
	}
	if _, err := WeightedSpectrumDistance(a, b, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("weight mismatch err = %v", err)
	}
	if _, err := WeightedSpectrumDistance(a, b, []float64{0, 0}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero weights err = %v", err)
	}
	if _, err := WeightedSpectrumDistance(nil, b, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil err = %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	grid := testGrid(t)
	good := DefaultConfig(grid, SchemeBaseline, nil)
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	noGrid := DefaultConfig(nil, SchemeBaseline, nil)
	if err := noGrid.validate(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil grid err = %v", err)
	}
	pathNoArray := DefaultConfig(grid, SchemeSubcarrierPath, nil)
	if err := pathNoArray.validate(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("path-without-array err = %v", err)
	}
	unknown := DefaultConfig(grid, Scheme(42), nil)
	if err := unknown.validate(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unknown scheme err = %v", err)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeBaseline.String() != "baseline" ||
		SchemeSubcarrier.String() != "subcarrier-weighting" ||
		SchemeSubcarrierPath.String() != "subcarrier+path-weighting" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() != "scheme(9)" {
		t.Fatalf("unknown scheme string = %v", Scheme(9))
	}
}

// calibrateAndDetect builds a detector of the given scheme over the test
// link and returns (emptyScore, presentScore).
func calibrateAndDetect(t *testing.T, scheme Scheme, target geom.Point) (float64, float64) {
	t.Helper()
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 7)
	cfg := DefaultConfig(grid, scheme, env.RX.Offsets())

	cal := x.CaptureN(120, nil)
	profile, err := Calibrate(cfg, cal)
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatalf("detector: %v", err)
	}

	emptyWin := x.CaptureN(25, nil)
	emptyScore, err := det.Score(emptyWin)
	if err != nil {
		t.Fatalf("empty score: %v", err)
	}
	presWin := x.CaptureN(25, []body.Body{body.Default(target)})
	presScore, err := det.Score(presWin)
	if err != nil {
		t.Fatalf("present score: %v", err)
	}
	return emptyScore, presScore
}

func TestDetectorSeparatesPresenceAllSchemes(t *testing.T) {
	target := geom.Point{X: 3, Y: 4} // on the LOS
	for _, scheme := range []Scheme{SchemeBaseline, SchemeSubcarrier, SchemeSubcarrierPath} {
		empty, present := calibrateAndDetect(t, scheme, target)
		if present <= empty {
			t.Fatalf("%v: present score %v not above empty score %v", scheme, present, empty)
		}
		if present < empty*1.5 {
			t.Fatalf("%v: separation too weak: %v vs %v", scheme, present, empty)
		}
	}
}

func TestDetectorThresholdWorkflow(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 11)
	cfg := DefaultConfig(grid, SchemeSubcarrier, nil)
	cal := x.CaptureN(150, nil)
	profile, err := Calibrate(cfg, cal)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	holdout := x.CaptureN(150, nil)
	null, err := det.SelfScores(holdout, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(null) != 6 {
		t.Fatalf("null scores = %d", len(null))
	}
	th, err := det.CalibrateThreshold(null, 0.95, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || det.Threshold() != th {
		t.Fatalf("threshold = %v", th)
	}
	// Empty window must not trigger; LOS-blocking presence must.
	dEmpty, err := det.Detect(x.CaptureN(25, nil))
	if err != nil {
		t.Fatal(err)
	}
	if dEmpty.Present {
		t.Fatalf("false positive on empty room: %+v", dEmpty)
	}
	dPres, err := det.Detect(x.CaptureN(25, []body.Body{body.Default(geom.Point{X: 3, Y: 4})}))
	if err != nil {
		t.Fatal(err)
	}
	if !dPres.Present {
		t.Fatalf("missed LOS-blocking presence: %+v", dPres)
	}
}

func TestDetectorErrors(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 13)
	cfg := DefaultConfig(grid, SchemeBaseline, nil)
	if _, err := Calibrate(cfg, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty calibrate err = %v", err)
	}
	profile, err := Calibrate(cfg, x.CaptureN(30, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDetector(cfg, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil profile err = %v", err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Score(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty window err = %v", err)
	}
	if _, err := det.SelfScores(x.CaptureN(10, nil), 25, 25); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short holdout err = %v", err)
	}
	if _, err := det.SelfScores(nil, 0, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero window err = %v", err)
	}
	if _, err := det.CalibrateThreshold(nil, 0.9, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("no null scores err = %v", err)
	}
	if _, err := det.CalibrateThreshold([]float64{1}, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad quantile err = %v", err)
	}
	// Path scheme requires a profile with a static spectrum.
	pathCfg := DefaultConfig(grid, SchemeSubcarrierPath, env.RX.Offsets())
	if _, err := NewDetector(pathCfg, profile); !errors.Is(err, ErrBadInput) {
		t.Fatalf("missing spectrum err = %v", err)
	}
}

func TestPathWeightingEmphasizesOffPathPresence(t *testing.T) {
	// A person near the receiver but well off the LOS (reflection-dominated
	// geometry): path weighting should score it at least as prominently
	// relative to its own noise floor as the baseline does.
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 17)
	offPath := geom.Point{X: 4.4, Y: 5.8} // ~1.9 m lateral of the LOS

	ratio := func(scheme Scheme) float64 {
		cfg := DefaultConfig(grid, scheme, env.RX.Offsets())
		profile, err := Calibrate(cfg, x.CaptureN(120, nil))
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewDetector(cfg, profile)
		if err != nil {
			t.Fatal(err)
		}
		empty, err := det.Score(x.CaptureN(25, nil))
		if err != nil {
			t.Fatal(err)
		}
		pres, err := det.Score(x.CaptureN(25, []body.Body{body.Default(offPath)}))
		if err != nil {
			t.Fatal(err)
		}
		if empty == 0 {
			t.Fatal("empty score is zero")
		}
		return pres / empty
	}
	base := ratio(SchemeBaseline)
	path := ratio(SchemeSubcarrierPath)
	if path < 1 {
		t.Fatalf("path weighting did not register off-path presence: ratio %v", path)
	}
	t.Logf("off-path score ratios: baseline %.2f, subcarrier+path %.2f", base, path)
}

func TestCalibrateStoresStaticSpectrum(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 19)
	cfg := DefaultConfig(grid, SchemeSubcarrierPath, env.RX.Offsets())
	profile, err := Calibrate(cfg, x.CaptureN(60, nil))
	if err != nil {
		t.Fatal(err)
	}
	if profile.StaticSpectrum == nil || len(profile.PathWeights) == 0 {
		t.Fatal("static spectrum or path weights missing")
	}
	if len(profile.PathWeights) != len(profile.StaticSpectrum.AnglesDeg) {
		t.Fatal("path weights misaligned with spectrum")
	}
	// The static spectrum's dominant angle should be near broadside (the
	// LOS arrives head-on in this geometry).
	dom, err := profile.StaticSpectrum.DominantAngle()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dom) > 10 {
		t.Fatalf("static dominant angle = %v°, want ≈0", dom)
	}
}

func TestMeanMultipathFactor(t *testing.T) {
	m, err := MeanMultipathFactor([]float64{1, 2, 3})
	if err != nil || m != 2 {
		t.Fatalf("mean = %v err = %v", m, err)
	}
	if _, err := MeanMultipathFactor(nil); err == nil {
		t.Fatal("empty accepted")
	}
}
