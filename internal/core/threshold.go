package core

import (
	"errors"
	"fmt"
	"math"

	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// Threshold-calibration errors. All wrap ErrBadInput so callers that only
// distinguish "bad input" keep working, while adaptation code can match the
// specific failure and decide between retrying with more data and
// quarantining the link.
var (
	// ErrTooFewNullScores reports a null sample too small to estimate a
	// quantile from (fewer than MinNullScores).
	ErrTooFewNullScores = errors.New("core: too few null scores")
	// ErrDegenerateNull reports a null sample with no variation at all —
	// every score identical, which no real link produces; the capture path
	// is stuck or replaying a constant.
	ErrDegenerateNull = errors.New("core: degenerate null distribution")
	// ErrNonFiniteScore reports NaN or ±Inf in the null sample.
	ErrNonFiniteScore = errors.New("core: non-finite null score")
)

// MinNullScores is the smallest usable null sample. Two windows is the bare
// minimum for any spread estimate (the single-link facade calibrates from
// exactly two at its smallest setting).
const MinNullScores = 2

// SelfScores slides a window of the given size (with the given stride) over
// held-out no-presence frames and returns the detector's score for each
// window — the empirical null distribution the threshold is calibrated
// from ("determined by the variations of the static profile", §IV-C).
func (d *Detector) SelfScores(frames []*csi.Frame, windowSize, stride int) ([]float64, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("window size %d: %w", windowSize, ErrBadInput)
	}
	if stride <= 0 {
		stride = windowSize
	}
	if len(frames) < windowSize {
		return nil, fmt.Errorf("%d frames for window %d: %w", len(frames), windowSize, ErrBadInput)
	}
	var scores []float64
	for start := 0; start+windowSize <= len(frames); start += stride {
		s, err := d.Score(frames[start : start+windowSize])
		if err != nil {
			return nil, fmt.Errorf("self score at %d: %w", start, err)
		}
		scores = append(scores, s)
	}
	return scores, nil
}

// ValidateNullScores vets a null-score sample before a threshold is derived
// from it: enough samples, all finite, and not perfectly constant. It
// returns one of the typed threshold errors (all wrapping ErrBadInput) so a
// junk sample can never silently become a junk threshold.
func ValidateNullScores(nullScores []float64) error {
	if len(nullScores) < MinNullScores {
		return fmt.Errorf("%d null scores (need ≥%d): %w (%w)",
			len(nullScores), MinNullScores, ErrTooFewNullScores, ErrBadInput)
	}
	allSame := true
	for i, s := range nullScores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("null score [%d] = %v: %w (%w)", i, s, ErrNonFiniteScore, ErrBadInput)
		}
		if s != nullScores[0] {
			allSame = false
		}
	}
	if allSame {
		return fmt.Errorf("all %d null scores identical (%v): %w (%w)",
			len(nullScores), nullScores[0], ErrDegenerateNull, ErrBadInput)
	}
	return nil
}

// DeriveThreshold computes (without setting) the q-quantile of the null
// scores inflated by margin. It is the pure function behind
// CalibrateThreshold, shared with the adaptation layer's online threshold
// re-derivation.
func DeriveThreshold(nullScores []float64, q, margin float64) (float64, error) {
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("quantile %v: %w", q, ErrBadInput)
	}
	if err := ValidateNullScores(nullScores); err != nil {
		return 0, err
	}
	if margin <= 0 {
		margin = 1
	}
	cdf, err := dsp.NewCDF(nullScores)
	if err != nil {
		return 0, fmt.Errorf("threshold: %w", err)
	}
	return cdf.Quantile(q) * margin, nil
}

// CalibrateThreshold sets the decision threshold to the q-quantile of the
// null scores inflated by margin (q close to 1 bounds the false-positive
// rate; margin adds headroom for unseen dynamics). It returns the chosen
// threshold, or a typed error (ErrTooFewNullScores, ErrNonFiniteScore,
// ErrDegenerateNull — all wrapping ErrBadInput) when the null sample cannot
// support a meaningful threshold.
func (d *Detector) CalibrateThreshold(nullScores []float64, q, margin float64) (float64, error) {
	if len(nullScores) == 0 {
		return 0, fmt.Errorf("no null scores: %w (%w)", ErrTooFewNullScores, ErrBadInput)
	}
	t, err := DeriveThreshold(nullScores, q, margin)
	if err != nil {
		return 0, err
	}
	d.SetThreshold(t)
	return t, nil
}
