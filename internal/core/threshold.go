package core

import (
	"fmt"

	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// SelfScores slides a window of the given size (with the given stride) over
// held-out no-presence frames and returns the detector's score for each
// window — the empirical null distribution the threshold is calibrated
// from ("determined by the variations of the static profile", §IV-C).
func (d *Detector) SelfScores(frames []*csi.Frame, windowSize, stride int) ([]float64, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("window size %d: %w", windowSize, ErrBadInput)
	}
	if stride <= 0 {
		stride = windowSize
	}
	if len(frames) < windowSize {
		return nil, fmt.Errorf("%d frames for window %d: %w", len(frames), windowSize, ErrBadInput)
	}
	var scores []float64
	for start := 0; start+windowSize <= len(frames); start += stride {
		s, err := d.Score(frames[start : start+windowSize])
		if err != nil {
			return nil, fmt.Errorf("self score at %d: %w", start, err)
		}
		scores = append(scores, s)
	}
	return scores, nil
}

// CalibrateThreshold sets the decision threshold to the q-quantile of the
// null scores inflated by margin (q close to 1 bounds the false-positive
// rate; margin adds headroom for unseen dynamics). It returns the chosen
// threshold.
func (d *Detector) CalibrateThreshold(nullScores []float64, q, margin float64) (float64, error) {
	if len(nullScores) == 0 {
		return 0, fmt.Errorf("no null scores: %w", ErrBadInput)
	}
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("quantile %v: %w", q, ErrBadInput)
	}
	if margin <= 0 {
		margin = 1
	}
	cdf, err := dsp.NewCDF(nullScores)
	if err != nil {
		return 0, fmt.Errorf("threshold: %w", err)
	}
	t := cdf.Quantile(q) * margin
	d.threshold = t
	return t, nil
}
