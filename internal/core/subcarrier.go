package core

import (
	"fmt"
	"math"

	"mlink/internal/dsp"
)

// SubcarrierWeights holds the frequency-diversity weighting state of
// §IV-A2, computed over a window of M packets.
type SubcarrierWeights struct {
	// MeanMu is μ̄k, the temporal mean of the multipath factor per
	// subcarrier (average detection sensitivity).
	MeanMu []float64
	// StabilityRatio is rk (Eq. 13–14): the fraction of packets in which μk
	// exceeded that packet's cross-subcarrier median — consistently
	// sensitive subcarriers score high.
	StabilityRatio []float64
	// Weights is the combined normalized weight of Eq. 15:
	// |μ̄k·rk / (Σμ̄ · Σr)|.
	Weights []float64
}

// ComputeSubcarrierWeights derives Eq. 15 weights from a window of
// multipath-factor measurements mus[m][k] (packet m, subcarrier k).
func ComputeSubcarrierWeights(mus [][]float64) (*SubcarrierWeights, error) {
	sw := &SubcarrierWeights{}
	if err := ComputeSubcarrierWeightsInto(sw, mus, nil); err != nil {
		return nil, err
	}
	return sw, nil
}

// ComputeSubcarrierWeightsInto is ComputeSubcarrierWeights writing into a
// caller-owned output struct, reusing sw's slices across calls — the scoring
// hot path's entry point. scratch, when non-nil, is a work buffer of at
// least one subcarrier row (it is clobbered); nil allocates a transient one.
func ComputeSubcarrierWeightsInto(sw *SubcarrierWeights, mus [][]float64, scratch []float64) error {
	if len(mus) == 0 {
		return fmt.Errorf("no packets: %w", ErrBadInput)
	}
	k := len(mus[0])
	if k == 0 {
		return fmt.Errorf("no subcarriers: %w", ErrBadInput)
	}
	meanMu := growFloats(&sw.MeanMu, k)
	ratio := growFloats(&sw.StabilityRatio, k)
	for i := range meanMu {
		meanMu[i], ratio[i] = 0, 0
	}
	if cap(scratch) < k {
		scratch = make([]float64, k)
	}
	scratch = scratch[:k]
	for m, mu := range mus {
		if len(mu) != k {
			return fmt.Errorf("packet %d has %d subcarriers, want %d: %w", m, len(mu), k, ErrBadInput)
		}
		// Median via allocation-free selection on the scratch copy (the mu
		// row itself must keep its subcarrier order).
		copy(scratch, mu)
		med, err := dsp.MedianInPlace(scratch)
		if err != nil {
			return fmt.Errorf("packet %d median: %w", m, err)
		}
		for i, v := range mu {
			meanMu[i] += v
			if v > med {
				ratio[i]++
			}
		}
	}
	mf := float64(len(mus))
	var sumMu, sumR float64
	for i := range meanMu {
		meanMu[i] /= mf
		ratio[i] /= mf
		sumMu += meanMu[i]
		sumR += ratio[i]
	}
	w := growFloats(&sw.Weights, k)
	switch {
	case sumMu > 0 && sumR > 0:
		for i := range w {
			w[i] = math.Abs(meanMu[i] * ratio[i] / (sumMu * sumR))
		}
	case sumMu > 0:
		// Degenerate window (e.g. a single packet where no subcarrier ever
		// exceeds the median of an all-equal μ vector): fall back to the
		// per-packet Eq. 12 weighting.
		for i := range w {
			w[i] = math.Abs(meanMu[i] / sumMu)
		}
	default:
		for i := range w {
			w[i] = 0
		}
	}
	return nil
}

// PerPacketWeights implements the simpler Eq. 12 weighting from a single
// packet's multipath factors: wk = |μk / Σμ|. Used as an ablation of the
// stability ratio.
func PerPacketWeights(mu []float64) ([]float64, error) {
	out := make([]float64, len(mu))
	if err := PerPacketWeightsInto(out, mu); err != nil {
		return nil, err
	}
	return out, nil
}

// PerPacketWeightsInto is PerPacketWeights writing into a caller-owned
// buffer of len(mu).
func PerPacketWeightsInto(dst, mu []float64) error {
	if len(mu) == 0 {
		return fmt.Errorf("no subcarriers: %w", ErrBadInput)
	}
	if len(dst) != len(mu) {
		return fmt.Errorf("%d weights for %d factors: %w", len(dst), len(mu), ErrBadInput)
	}
	var sum float64
	for _, v := range mu {
		sum += v
	}
	if sum == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	for i, v := range mu {
		dst[i] = math.Abs(v / sum)
	}
	return nil
}

// ApplyWeights returns the element-wise weighted copy w∘Δs (Eq. 12/15
// application to a vector of RSS changes).
func ApplyWeights(weights, deltas []float64) ([]float64, error) {
	if len(weights) != len(deltas) {
		return nil, fmt.Errorf("%d weights for %d deltas: %w", len(weights), len(deltas), ErrBadInput)
	}
	out := make([]float64, len(deltas))
	for i := range deltas {
		out[i] = weights[i] * deltas[i]
	}
	return out, nil
}

// AverageWeightVectors averages per-antenna weight vectors into a single
// vector (used when one weight set must drive the array covariance).
func AverageWeightVectors(vectors [][]float64) ([]float64, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("no vectors: %w", ErrBadInput)
	}
	out := make([]float64, len(vectors[0]))
	if err := AverageWeightVectorsInto(out, vectors); err != nil {
		return nil, err
	}
	return out, nil
}

// AverageWeightVectorsInto is AverageWeightVectors writing into a caller
// buffer of the vectors' common length.
func AverageWeightVectorsInto(dst []float64, vectors [][]float64) error {
	if len(vectors) == 0 {
		return fmt.Errorf("no vectors: %w", ErrBadInput)
	}
	n := len(vectors[0])
	if len(dst) != n {
		return fmt.Errorf("dst length %d, want %d: %w", len(dst), n, ErrBadInput)
	}
	for i := range dst {
		dst[i] = 0
	}
	for vi, v := range vectors {
		if len(v) != n {
			return fmt.Errorf("vector %d length %d, want %d: %w", vi, len(v), n, ErrBadInput)
		}
		for i, x := range v {
			dst[i] += x
		}
	}
	for i := range dst {
		dst[i] /= float64(len(vectors))
	}
	return nil
}
