package core

import (
	"fmt"
	"math"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/music"
	"mlink/internal/sanitize"
)

// Scheme selects the detection variant evaluated in §V.
type Scheme int

// The three schemes compared throughout the paper's evaluation.
const (
	// SchemeBaseline scores the Euclidean distance of mean CSI amplitudes.
	SchemeBaseline Scheme = iota + 1
	// SchemeSubcarrier adds the Eq. 15 subcarrier weighting of RSS changes.
	SchemeSubcarrier
	// SchemeSubcarrierPath adds MUSIC path weighting on top (§IV-C).
	SchemeSubcarrierPath
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeSubcarrier:
		return "subcarrier-weighting"
	case SchemeSubcarrierPath:
		return "subcarrier+path-weighting"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config parameterizes calibration and detection.
type Config struct {
	// Grid is the OFDM subcarrier grid of the receiver.
	Grid *channel.Grid
	// Scheme selects the detector variant.
	Scheme Scheme
	// ArrayOffsets are the receive-array element offsets in metres
	// (required for SchemeSubcarrierPath).
	ArrayOffsets []float64
	// NumSignals is the MUSIC source count (0 = auto; the paper uses the
	// plain MUSIC algorithm able to separate 2 paths with 3 antennas).
	NumSignals int
	// PathWeight bounds and regularizes Eq. 17.
	PathWeight PathWeightConfig
	// SpectrumStepDeg is the pseudospectrum resolution (default 1°).
	SpectrumStepDeg float64
	// Sanitize enables phase calibration of every frame before processing
	// (required for meaningful MUSIC on impaired CSI).
	Sanitize bool
	// UsePerPacketWeights switches Eq. 15 weighting to the simpler Eq. 12
	// per-packet weighting (ablation).
	UsePerPacketWeights bool
}

// DefaultConfig returns the paper's implementation parameters for a given
// scheme.
func DefaultConfig(grid *channel.Grid, scheme Scheme, arrayOffsets []float64) Config {
	return Config{
		Grid:            grid,
		Scheme:          scheme,
		ArrayOffsets:    arrayOffsets,
		NumSignals:      2,
		PathWeight:      DefaultPathWeightConfig(),
		SpectrumStepDeg: 1,
		Sanitize:        true,
	}
}

func (c *Config) validate() error {
	if c.Grid == nil || c.Grid.Len() == 0 {
		return fmt.Errorf("config needs a grid: %w", ErrBadInput)
	}
	switch c.Scheme {
	case SchemeBaseline, SchemeSubcarrier:
	case SchemeSubcarrierPath:
		if len(c.ArrayOffsets) < 2 {
			return fmt.Errorf("path weighting needs ≥2 array offsets: %w", ErrBadInput)
		}
	default:
		return fmt.Errorf("unknown scheme %d: %w", int(c.Scheme), ErrBadInput)
	}
	return nil
}

// wavelength returns the carrier wavelength of the grid centre.
func (c *Config) wavelength() float64 {
	return 299792458.0 / c.Grid.Center
}

// Profile is the calibration-stage output (§IV-C): the static fingerprint a
// monitoring window is compared against.
type Profile struct {
	// MeanAmp is the mean linear CSI amplitude per [antenna][subcarrier]
	// (the baseline's reference).
	MeanAmp [][]float64
	// MeanRSSdB is the mean per-subcarrier RSS in dB (Δs reference).
	MeanRSSdB [][]float64
	// StaticSpectrum is the unweighted MUSIC pseudospectrum of the empty
	// room (Fig. 5b), nil for schemes that do not use the array.
	StaticSpectrum *music.Spectrum
	// PathWeights is the Eq. 17 weight vector aligned with StaticSpectrum.
	PathWeights []float64
	// Frames are the sanitized calibration frames, retained because the
	// monitoring stage re-weights calibration data with monitor-derived
	// subcarrier weights (§IV-C).
	Frames []*csi.Frame
}

// Calibrate builds the static profile from no-presence frames.
func Calibrate(cfg Config, frames []*csi.Frame) (*Profile, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("calibrate with no frames: %w", ErrBadInput)
	}
	prep, err := prepare(cfg, frames)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	nAnt := prep[0].NumAntennas()
	nSub := prep[0].NumSubcarriers()

	p := &Profile{
		MeanAmp:   zeros2(nAnt, nSub),
		MeanRSSdB: zeros2(nAnt, nSub),
		Frames:    prep,
	}
	rss := make([]float64, nSub) // reused across frames and antennas
	for _, f := range prep {
		for ant := 0; ant < nAnt; ant++ {
			subcarrierRSSdBInto(rss, f.CSI[ant])
			for k := 0; k < nSub; k++ {
				re, im := real(f.CSI[ant][k]), imag(f.CSI[ant][k])
				p.MeanAmp[ant][k] += math.Hypot(re, im)
				p.MeanRSSdB[ant][k] += rss[k]
			}
		}
	}
	scale := 1 / float64(len(prep))
	for ant := 0; ant < nAnt; ant++ {
		for k := 0; k < nSub; k++ {
			p.MeanAmp[ant][k] *= scale
			p.MeanRSSdB[ant][k] *= scale
		}
	}

	if cfg.Scheme == SchemeSubcarrierPath {
		est, err := newEstimator(cfg)
		if err != nil {
			return nil, err
		}
		cov, err := music.Covariance(prep, nil)
		if err != nil {
			return nil, fmt.Errorf("static covariance: %w", err)
		}
		spec, err := est.Pseudospectrum(cov, cfg.NumSignals)
		if err != nil {
			return nil, fmt.Errorf("static pseudospectrum: %w", err)
		}
		p.StaticSpectrum = spec
		p.PathWeights, err = PathWeights(spec, cfg.PathWeight)
		if err != nil {
			return nil, fmt.Errorf("path weights: %w", err)
		}
	}
	return p, nil
}

// Detector scores monitoring windows against a calibration profile.
type Detector struct {
	cfg       Config
	profile   *Profile
	threshold float64
}

// NewDetector pairs a config with its calibration profile. The threshold
// may be set later via SetThreshold or CalibrateThreshold.
func NewDetector(cfg Config, profile *Profile) (*Detector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if profile == nil || len(profile.Frames) == 0 {
		return nil, fmt.Errorf("detector needs a calibration profile: %w", ErrBadInput)
	}
	if cfg.Scheme == SchemeSubcarrierPath && (profile.StaticSpectrum == nil || len(profile.PathWeights) == 0) {
		return nil, fmt.Errorf("profile lacks static spectrum for path weighting: %w", ErrBadInput)
	}
	return &Detector{cfg: cfg, profile: profile}, nil
}

// Profile exposes the calibration profile (read-only by convention).
func (d *Detector) Profile() *Profile { return d.profile }

// Threshold returns the current decision threshold.
func (d *Detector) Threshold() float64 { return d.threshold }

// SetThreshold fixes the decision threshold.
func (d *Detector) SetThreshold(t float64) { d.threshold = t }

// Decision is a monitoring-window verdict.
type Decision struct {
	// Present is true when the score exceeds the threshold.
	Present bool
	// Score is the window's distance statistic.
	Score float64
	// Threshold is the threshold used for the verdict.
	Threshold float64
}

// Detect scores a monitoring window and applies the threshold.
func (d *Detector) Detect(window []*csi.Frame) (Decision, error) {
	score, err := d.Score(window)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Present: score > d.threshold, Score: score, Threshold: d.threshold}, nil
}

// Score computes the scheme's distance statistic for a window of M frames
// (§IV-C monitoring stage).
func (d *Detector) Score(window []*csi.Frame) (float64, error) {
	return d.ScoreScratch(window, nil)
}

// ScoreScratch is Score with a caller-managed scratch buffer: a long-lived
// worker that scores many windows passes the same non-nil *Scratch each call
// and avoids re-allocating the per-window vectors. A nil scratch behaves
// exactly like Score.
func (d *Detector) ScoreScratch(window []*csi.Frame, sc *Scratch) (float64, error) {
	if len(window) == 0 {
		return 0, fmt.Errorf("empty monitoring window: %w", ErrBadInput)
	}
	if sc == nil {
		sc = NewScratch()
	}
	prep, err := prepareScratch(d.cfg, window, sc)
	if err != nil {
		return 0, fmt.Errorf("score: %w", err)
	}
	if prep[0].NumAntennas() != len(d.profile.MeanAmp) || prep[0].NumSubcarriers() != len(d.profile.MeanAmp[0]) {
		return 0, fmt.Errorf("window shape %dx%d differs from profile %dx%d: %w",
			prep[0].NumAntennas(), prep[0].NumSubcarriers(),
			len(d.profile.MeanAmp), len(d.profile.MeanAmp[0]), ErrBadInput)
	}
	switch d.cfg.Scheme {
	case SchemeBaseline:
		return d.scoreBaseline(prep, sc)
	case SchemeSubcarrier:
		return d.scoreSubcarrier(prep, sc)
	case SchemeSubcarrierPath:
		return d.scoreSubcarrierPath(prep, sc)
	default:
		return 0, fmt.Errorf("unknown scheme: %w", ErrBadInput)
	}
}

// scoreBaseline: normalized Euclidean distance of mean CSI amplitudes,
// averaged across antennas.
func (d *Detector) scoreBaseline(window []*csi.Frame, sc *Scratch) (float64, error) {
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	var total float64
	for ant := 0; ant < nAnt; ant++ {
		mean := sc.accumulator(nSub)
		for _, f := range window {
			for k := 0; k < nSub; k++ {
				re, im := real(f.CSI[ant][k]), imag(f.CSI[ant][k])
				mean[k] += math.Hypot(re, im)
			}
		}
		var dist, ref float64
		for k := 0; k < nSub; k++ {
			mean[k] /= float64(len(window))
			diff := mean[k] - d.profile.MeanAmp[ant][k]
			dist += diff * diff
			ref += d.profile.MeanAmp[ant][k] * d.profile.MeanAmp[ant][k]
		}
		if ref > 0 {
			total += math.Sqrt(dist / ref)
		}
	}
	return total / float64(nAnt), nil
}

// windowWeights derives the subcarrier weights from the monitoring window's
// multipath factors, per antenna. The multipath-factor rows live in the
// scratch and are only valid until its next use.
func (d *Detector) windowWeights(window []*csi.Frame, sc *Scratch) ([][]float64, error) {
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	perAnt := sc.perAntenna(nAnt)
	for ant := 0; ant < nAnt; ant++ {
		mus := sc.muRows(len(window), nSub)
		for i, f := range window {
			if err := sc.MultipathFactorsInto(mus[i], f.CSI[ant], d.cfg.Grid); err != nil {
				return nil, err
			}
		}
		if d.cfg.UsePerPacketWeights {
			// Eq. 12 ablation: average the per-packet weights.
			acc := make([]float64, len(mus[0]))
			for _, mu := range mus {
				w, err := PerPacketWeights(mu)
				if err != nil {
					return nil, err
				}
				for i, v := range w {
					acc[i] += v / float64(len(mus))
				}
			}
			perAnt[ant] = acc
			continue
		}
		sw, err := ComputeSubcarrierWeights(mus)
		if err != nil {
			return nil, err
		}
		perAnt[ant] = sw.Weights
	}
	return perAnt, nil
}

// scoreSubcarrier: Euclidean norm of the Eq. 15 weighted RSS changes,
// averaged across antennas.
func (d *Detector) scoreSubcarrier(window []*csi.Frame, sc *Scratch) (float64, error) {
	weights, err := d.windowWeights(window, sc)
	if err != nil {
		return 0, err
	}
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	var total float64
	for ant := 0; ant < nAnt; ant++ {
		meanRSS := sc.accumulator(nSub)
		for _, f := range window {
			rss := sc.rssRow(nSub)
			subcarrierRSSdBInto(rss, f.CSI[ant])
			for k := 0; k < nSub; k++ {
				meanRSS[k] += rss[k]
			}
		}
		var dist, wNorm float64
		for k := 0; k < nSub; k++ {
			meanRSS[k] /= float64(len(window))
			delta := meanRSS[k] - d.profile.MeanRSSdB[ant][k]
			wd := weights[ant][k] * delta
			dist += wd * wd
			wNorm += weights[ant][k] * weights[ant][k]
		}
		if wNorm > 0 {
			// Normalize by the weight norm: the score becomes a weighted
			// RMS Δs in dB, comparable across links whose multipath-factor
			// scales differ (the paper applies one threshold to all cases).
			total += math.Sqrt(dist / wNorm)
		}
	}
	return total / float64(nAnt), nil
}

// scoreSubcarrierPath: path-weighted distance between the subcarrier-
// weighted monitoring and calibration angular power spectra (§IV-C). The
// decision statistic runs on the Bartlett spectrum in dB — it carries the
// per-direction received power, so on-path attenuation and off-path echoes
// both register — while the Eq. 17 path weights, derived from the static
// MUSIC pseudospectrum at calibration, amplify the NLOS directions.
func (d *Detector) scoreSubcarrierPath(window []*csi.Frame, sc *Scratch) (float64, error) {
	perAnt, err := d.windowWeights(window, sc)
	if err != nil {
		return 0, err
	}
	w, err := AverageWeightVectors(perAnt)
	if err != nil {
		return 0, err
	}
	est, err := newEstimator(d.cfg)
	if err != nil {
		return 0, err
	}
	monCov, err := music.Covariance(window, w)
	if err != nil {
		return 0, fmt.Errorf("monitor covariance: %w", err)
	}
	monSpec, err := est.Bartlett(monCov)
	if err != nil {
		return 0, fmt.Errorf("monitor spectrum: %w", err)
	}
	calCov, err := music.Covariance(d.profile.Frames, w)
	if err != nil {
		return 0, fmt.Errorf("calibration covariance: %w", err)
	}
	calSpec, err := est.Bartlett(calCov)
	if err != nil {
		return 0, fmt.Errorf("calibration spectrum: %w", err)
	}
	return WeightedSpectrumDistance(toDB(monSpec), toDB(calSpec), d.profile.PathWeights)
}

// toDB converts a power spectrum to decibels (floored well below any
// physical level to keep the distance finite).
func toDB(s *music.Spectrum) *music.Spectrum {
	out := &music.Spectrum{
		AnglesDeg: append([]float64(nil), s.AnglesDeg...),
		Power:     make([]float64, len(s.Power)),
	}
	for i, p := range s.Power {
		if p < 1e-30 {
			p = 1e-30
		}
		out.Power[i] = 10 * math.Log10(p)
	}
	return out
}

// prepare optionally sanitizes frames per the config. Calibrate uses this
// allocating path because the profile retains the sanitized frames.
func prepare(cfg Config, frames []*csi.Frame) ([]*csi.Frame, error) {
	if !cfg.Sanitize {
		return frames, nil
	}
	return sanitize.Frames(frames, cfg.Grid.Indices)
}

// prepareScratch sanitizes into scratch-owned frames, valid only until the
// scratch's next use — the scoring hot path, where nothing outlives a call.
func prepareScratch(cfg Config, frames []*csi.Frame, sc *Scratch) ([]*csi.Frame, error) {
	if !cfg.Sanitize {
		return frames, nil
	}
	return sc.san.Frames(frames, cfg.Grid.Indices)
}

func newEstimator(cfg Config) (*music.Estimator, error) {
	est, err := music.NewEstimator(cfg.ArrayOffsets, cfg.wavelength())
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	if cfg.SpectrumStepDeg > 0 {
		est.StepDeg = cfg.SpectrumStepDeg
	}
	return est, nil
}

func zeros2(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}
