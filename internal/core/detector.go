package core

import (
	"fmt"
	"math"
	"sync"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/music"
	"mlink/internal/sanitize"
)

// Scheme selects the detection variant evaluated in §V.
type Scheme int

// The three schemes compared throughout the paper's evaluation.
const (
	// SchemeBaseline scores the Euclidean distance of mean CSI amplitudes.
	SchemeBaseline Scheme = iota + 1
	// SchemeSubcarrier adds the Eq. 15 subcarrier weighting of RSS changes.
	SchemeSubcarrier
	// SchemeSubcarrierPath adds MUSIC path weighting on top (§IV-C).
	SchemeSubcarrierPath
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeBaseline:
		return "baseline"
	case SchemeSubcarrier:
		return "subcarrier-weighting"
	case SchemeSubcarrierPath:
		return "subcarrier+path-weighting"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config parameterizes calibration and detection.
type Config struct {
	// Grid is the OFDM subcarrier grid of the receiver.
	Grid *channel.Grid
	// Scheme selects the detector variant.
	Scheme Scheme
	// ArrayOffsets are the receive-array element offsets in metres
	// (required for SchemeSubcarrierPath).
	ArrayOffsets []float64
	// NumSignals is the MUSIC source count (0 = auto; the paper uses the
	// plain MUSIC algorithm able to separate 2 paths with 3 antennas).
	NumSignals int
	// PathWeight bounds and regularizes Eq. 17.
	PathWeight PathWeightConfig
	// SpectrumStepDeg is the pseudospectrum resolution (default 1°).
	SpectrumStepDeg float64
	// Sanitize enables phase calibration of every frame before processing
	// (required for meaningful MUSIC on impaired CSI).
	Sanitize bool
	// UsePerPacketWeights switches Eq. 15 weighting to the simpler Eq. 12
	// per-packet weighting (ablation).
	UsePerPacketWeights bool
}

// DefaultConfig returns the paper's implementation parameters for a given
// scheme.
func DefaultConfig(grid *channel.Grid, scheme Scheme, arrayOffsets []float64) Config {
	return Config{
		Grid:            grid,
		Scheme:          scheme,
		ArrayOffsets:    arrayOffsets,
		NumSignals:      2,
		PathWeight:      DefaultPathWeightConfig(),
		SpectrumStepDeg: 1,
		Sanitize:        true,
	}
}

func (c *Config) validate() error {
	if c.Grid == nil || c.Grid.Len() == 0 {
		return fmt.Errorf("config needs a grid: %w", ErrBadInput)
	}
	switch c.Scheme {
	case SchemeBaseline, SchemeSubcarrier:
	case SchemeSubcarrierPath:
		if len(c.ArrayOffsets) < 2 {
			return fmt.Errorf("path weighting needs ≥2 array offsets: %w", ErrBadInput)
		}
	default:
		return fmt.Errorf("unknown scheme %d: %w", int(c.Scheme), ErrBadInput)
	}
	return nil
}

// wavelength returns the carrier wavelength of the grid centre.
func (c *Config) wavelength() float64 {
	return 299792458.0 / c.Grid.Center
}

// Profile is the calibration-stage output (§IV-C): the static fingerprint a
// monitoring window is compared against. A Profile is treated as immutable
// once built — the adaptation layer never edits a live Profile in place but
// swaps in a fresh one (see LinkProfile), so concurrent scorers always see a
// consistent snapshot.
type Profile struct {
	// MeanAmp is the mean linear CSI amplitude per [antenna][subcarrier]
	// (the baseline's reference).
	MeanAmp [][]float64
	// MeanRSSdB is the mean per-subcarrier RSS in dB (Δs reference).
	MeanRSSdB [][]float64
	// StaticSpectrum is the unweighted MUSIC pseudospectrum of the empty
	// room (Fig. 5b), nil for schemes that do not use the array.
	StaticSpectrum *music.Spectrum
	// PathWeights is the Eq. 17 weight vector aligned with StaticSpectrum.
	PathWeights []float64
	// Frames are the sanitized calibration frames, retained because the
	// monitoring stage re-weights calibration data with monitor-derived
	// subcarrier weights (§IV-C).
	Frames []*csi.Frame
	// Partials are the per-subcarrier covariance partials of Frames — a
	// derived cache that lets scoring re-weight the calibration covariance
	// at O(nSub·nAnt²) per window instead of touching every frame. Rebuilt
	// wherever Frames are (re)established (Calibrate, persistence restore);
	// never serialized. Nil is legal (hand-assembled profiles): scoring
	// derives them transiently.
	Partials *music.Partials
}

// Calibrate builds the static profile from no-presence frames.
func Calibrate(cfg Config, frames []*csi.Frame) (*Profile, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("calibrate with no frames: %w", ErrBadInput)
	}
	prep, err := prepare(cfg, frames)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	var ws WindowStats
	meanStatsInto(&ws, prep, make([]float64, prep[0].NumSubcarriers()))
	p := &Profile{
		MeanAmp:   ws.MeanAmp,
		MeanRSSdB: ws.MeanRSSdB,
		Frames:    prep,
	}

	if cfg.Scheme == SchemeSubcarrierPath {
		est, err := newEstimator(cfg)
		if err != nil {
			return nil, err
		}
		cov, err := music.Covariance(prep, nil)
		if err != nil {
			return nil, fmt.Errorf("static covariance: %w", err)
		}
		spec, err := est.Pseudospectrum(cov, cfg.NumSignals)
		if err != nil {
			return nil, fmt.Errorf("static pseudospectrum: %w", err)
		}
		p.StaticSpectrum = spec
		p.PathWeights, err = PathWeights(spec, cfg.PathWeight)
		if err != nil {
			return nil, fmt.Errorf("path weights: %w", err)
		}
		p.Partials, err = music.NewPartials(prep)
		if err != nil {
			return nil, fmt.Errorf("spectral partials: %w", err)
		}
	}
	return p, nil
}

// Detector scores monitoring windows against a calibration profile: an
// immutable scoring Kernel plus the mutable link state (current profile and
// decision threshold). Profile and threshold reads/writes are synchronized,
// so an adaptation loop may refresh them while scoring workers are active;
// each scored window sees one consistent (profile, threshold) snapshot.
type Detector struct {
	kernel *Kernel

	mu        sync.RWMutex
	profile   *Profile
	threshold float64
}

// NewDetector pairs a config with its calibration profile. The threshold
// may be set later via SetThreshold or CalibrateThreshold.
func NewDetector(cfg Config, profile *Profile) (*Detector, error) {
	kernel, err := NewKernel(cfg)
	if err != nil {
		return nil, err
	}
	if profile == nil || len(profile.Frames) == 0 {
		return nil, fmt.Errorf("detector needs a calibration profile: %w", ErrBadInput)
	}
	if cfg.Scheme == SchemeSubcarrierPath && (profile.StaticSpectrum == nil || len(profile.PathWeights) == 0) {
		return nil, fmt.Errorf("profile lacks static spectrum for path weighting: %w", ErrBadInput)
	}
	return &Detector{kernel: kernel, profile: profile}, nil
}

// Kernel exposes the detector's immutable scoring kernel.
func (d *Detector) Kernel() *Kernel { return d.kernel }

// Profile returns the current calibration profile (read-only by convention).
func (d *Detector) Profile() *Profile {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.profile
}

// SetProfile atomically swaps in a refreshed profile. The new profile must
// be treated as immutable from here on; in-flight scorers keep using the
// snapshot they started with.
func (d *Detector) SetProfile(p *Profile) error {
	if p == nil || len(p.MeanAmp) == 0 {
		return fmt.Errorf("set nil profile: %w", ErrBadInput)
	}
	d.mu.Lock()
	d.profile = p
	d.mu.Unlock()
	return nil
}

// Threshold returns the current decision threshold.
func (d *Detector) Threshold() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.threshold
}

// SetThreshold fixes the decision threshold.
func (d *Detector) SetThreshold(t float64) {
	d.mu.Lock()
	d.threshold = t
	d.mu.Unlock()
}

// snapshot returns a consistent (profile, threshold) pair.
func (d *Detector) snapshot() (*Profile, float64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.profile, d.threshold
}

// Decision is a monitoring-window verdict.
type Decision struct {
	// Present is true when the score exceeds the threshold.
	Present bool
	// Score is the window's distance statistic.
	Score float64
	// Threshold is the threshold used for the verdict.
	Threshold float64
}

// Detect scores a monitoring window and applies the threshold.
func (d *Detector) Detect(window []*csi.Frame) (Decision, error) {
	return d.DetectScratch(window, nil)
}

// DetectInto is DetectScratch writing into a caller-owned Decision — the
// batch-friendly entry point for long-lived scoring loops that reuse their
// decision structs across ticks. On error dec is left untouched.
func (d *Detector) DetectInto(dec *Decision, window []*csi.Frame, sc *Scratch) error {
	out, err := d.DetectScratch(window, sc)
	if err != nil {
		return err
	}
	*dec = out
	return nil
}

// Score computes the scheme's distance statistic for a window of M frames
// (§IV-C monitoring stage).
func (d *Detector) Score(window []*csi.Frame) (float64, error) {
	return d.ScoreScratch(window, nil)
}

// ScoreScratch is Score with a caller-managed scratch buffer: a long-lived
// worker that scores many windows passes the same non-nil *Scratch each call
// and avoids re-allocating the per-window vectors. A nil scratch behaves
// exactly like Score.
func (d *Detector) ScoreScratch(window []*csi.Frame, sc *Scratch) (float64, error) {
	profile, _ := d.snapshot()
	return d.kernel.Score(profile, window, sc)
}

// MeasureWindow sanitizes a window per the detector's config and computes
// its profile statistics into ws (see Kernel.MeasureWindowInto).
func (d *Detector) MeasureWindow(ws *WindowStats, window []*csi.Frame, sc *Scratch) error {
	return d.kernel.MeasureWindowInto(ws, window, sc)
}

// toDB converts a power spectrum to decibels (floored well below any
// physical level to keep the distance finite). It is the allocating
// reference for Spectrum.ToDBInPlace, retained for the property tests that
// pin the scratch-backed scoring path to the naive one.
func toDB(s *music.Spectrum) *music.Spectrum {
	out := &music.Spectrum{
		AnglesDeg: append([]float64(nil), s.AnglesDeg...),
		Power:     make([]float64, len(s.Power)),
	}
	for i, p := range s.Power {
		if p < 1e-30 {
			p = 1e-30
		}
		out.Power[i] = 10 * math.Log10(p)
	}
	return out
}

// prepare optionally sanitizes frames per the config. Calibrate uses this
// allocating path because the profile retains the sanitized frames.
func prepare(cfg Config, frames []*csi.Frame) ([]*csi.Frame, error) {
	if !cfg.Sanitize {
		return frames, nil
	}
	return sanitize.Frames(frames, cfg.Grid.Indices)
}

// prepareScratch sanitizes into scratch-owned frames, valid only until the
// scratch's next use — the scoring hot path, where nothing outlives a call.
func prepareScratch(cfg Config, frames []*csi.Frame, sc *Scratch) ([]*csi.Frame, error) {
	if !cfg.Sanitize {
		return frames, nil
	}
	return sc.san.Frames(frames, cfg.Grid.Indices)
}

func newEstimator(cfg Config) (*music.Estimator, error) {
	est, err := music.NewEstimator(cfg.ArrayOffsets, cfg.wavelength())
	if err != nil {
		return nil, fmt.Errorf("estimator: %w", err)
	}
	if cfg.SpectrumStepDeg > 0 {
		est.StepDeg = cfg.SpectrumStepDeg
	}
	return est, nil
}

func zeros2(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}
