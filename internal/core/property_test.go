package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mlink/internal/music"
)

// Property: Eq. 15 weights are non-negative, finite, and invariant to a
// uniform scaling of all multipath factors (the normalization divides the
// scale out).
func TestQuickSubcarrierWeightsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		m := 2 + r.Intn(8)
		k := 2 + r.Intn(20)
		mus := make([][]float64, m)
		for i := range mus {
			mus[i] = make([]float64, k)
			for j := range mus[i] {
				mus[i][j] = 0.05 + r.Float64()*3
			}
		}
		sw, err := ComputeSubcarrierWeights(mus)
		if err != nil {
			return false
		}
		for _, w := range sw.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
		}
		for _, rk := range sw.StabilityRatio {
			if rk < 0 || rk > 1 {
				return false
			}
		}
		// Scale invariance.
		scaled := make([][]float64, m)
		for i := range mus {
			scaled[i] = make([]float64, k)
			for j := range mus[i] {
				scaled[i][j] = mus[i][j] * 7.5
			}
		}
		sw2, err := ComputeSubcarrierWeights(scaled)
		if err != nil {
			return false
		}
		for j := range sw.Weights {
			// Weights scale by the factor in the numerator but the double
			// normalization keeps ratios identical; compare normalized.
			a := sw.Weights[j] * float64(k*k)
			b := sw2.Weights[j] * float64(k*k)
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 12 per-packet weights sum to 1 for positive inputs.
func TestQuickPerPacketWeightsSumToOne(t *testing.T) {
	f := func(raw []float64) bool {
		mu := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Clamp to a physical μ range so the sum cannot overflow.
			mu = append(mu, math.Mod(math.Abs(x), 10)+0.01)
		}
		if len(mu) == 0 {
			return true
		}
		w, err := PerPacketWeights(mu)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range w {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: WeightedSpectrumDistance is a pseudmetric — symmetric,
// zero on identical spectra, and non-negative.
func TestQuickSpectrumDistancePseudometric(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(30)
		mkSpec := func() []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = r.Float64() * 10
			}
			return out
		}
		angles := make([]float64, n)
		for i := range angles {
			angles[i] = float64(i)
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + r.Float64()
		}
		a := &specOf{angles, mkSpec()}
		b := &specOf{angles, mkSpec()}
		dab, err := WeightedSpectrumDistance(a.spec(), b.spec(), w)
		if err != nil {
			return false
		}
		dba, err := WeightedSpectrumDistance(b.spec(), a.spec(), w)
		if err != nil {
			return false
		}
		daa, err := WeightedSpectrumDistance(a.spec(), a.spec(), w)
		if err != nil {
			return false
		}
		return dab >= 0 && math.Abs(dab-dba) < 1e-12 && daa == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// specOf avoids importing music in the property test's closure signatures.
type musicSpectrum = music.Spectrum

type specOf struct {
	angles []float64
	power  []float64
}

func (s *specOf) spec() *musicSpectrum {
	return &musicSpectrum{AnglesDeg: s.angles, Power: s.power}
}
