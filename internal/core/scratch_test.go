package core

import (
	"math"
	"testing"

	"mlink/internal/body"
	"mlink/internal/geom"
)

// TestScratchMultipathFactorsParity checks the allocation-free scratch path
// is bit-identical to the allocating MultipathFactors, including after the
// scratch has been used on other rows (buffer reuse must not leak state).
func TestScratchMultipathFactorsParity(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 42)
	sc := NewScratch()
	dst := make([]float64, grid.Len())
	for i := 0; i < 10; i++ {
		f := x.Capture(nil)
		for ant := range f.CSI {
			want, err := MultipathFactors(f.CSI[ant], grid)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.MultipathFactorsInto(dst, f.CSI[ant], grid); err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if dst[k] != want[k] {
					t.Fatalf("packet %d ant %d sub %d: scratch %v != fresh %v", i, ant, k, dst[k], want[k])
				}
			}
		}
	}
}

func TestScratchMultipathFactorsBadInput(t *testing.T) {
	_, grid := testLink(t, true)
	sc := NewScratch()
	row := make([]complex128, grid.Len())
	if err := sc.MultipathFactorsInto(make([]float64, grid.Len()), row, nil); err == nil {
		t.Fatal("nil grid accepted")
	}
	if err := sc.MultipathFactorsInto(make([]float64, 3), row, grid); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := sc.MultipathFactorsInto(make([]float64, grid.Len()), row[:5], grid); err == nil {
		t.Fatal("short row accepted")
	}
}

// TestScoreScratchParity checks that a reused scratch produces exactly the
// scores of the allocating path for every scheme, across several windows.
func TestScoreScratchParity(t *testing.T) {
	env, grid := testLink(t, true)
	for _, scheme := range []Scheme{SchemeBaseline, SchemeSubcarrier, SchemeSubcarrierPath} {
		x := testExtractor(t, env, grid, 7)
		cfg := DefaultConfig(grid, scheme, env.RX.Offsets())
		profile, err := Calibrate(cfg, x.CaptureN(100, nil))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		det, err := NewDetector(cfg, profile)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		sc := NewScratch()
		person := []body.Body{body.Default(geom.Point{X: 3, Y: 4})}
		for i := 0; i < 3; i++ {
			bodies := person
			if i%2 == 0 {
				bodies = nil
			}
			window := x.CaptureN(10, bodies)
			want, err := det.Score(window)
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			got, err := det.ScoreScratch(window, sc)
			if err != nil {
				t.Fatalf("%v: %v", scheme, err)
			}
			if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("%v window %d: scratch score %v != fresh score %v", scheme, i, got, want)
			}
		}
	}
}
