package core

import (
	"errors"
	"math"
	"testing"
)

func testDetector(t *testing.T, seed int64) *Detector {
	t.Helper()
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, seed)
	cfg := DefaultConfig(grid, SchemeSubcarrier, nil)
	profile, err := Calibrate(cfg, x.CaptureN(60, nil))
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestCalibrateThresholdEdgeCases(t *testing.T) {
	det := testDetector(t, 23)

	// Tiny null sample.
	if _, err := det.CalibrateThreshold([]float64{0.4}, 0.95, 1.3); !errors.Is(err, ErrTooFewNullScores) {
		t.Fatalf("1-sample err = %v, want ErrTooFewNullScores", err)
	}
	if _, err := det.CalibrateThreshold(nil, 0.95, 1.3); !errors.Is(err, ErrTooFewNullScores) {
		t.Fatalf("empty err = %v, want ErrTooFewNullScores", err)
	}
	// All-identical scores: no real link produces a constant statistic.
	if _, err := det.CalibrateThreshold([]float64{0.7, 0.7, 0.7, 0.7}, 0.95, 1.3); !errors.Is(err, ErrDegenerateNull) {
		t.Fatalf("identical err = %v, want ErrDegenerateNull", err)
	}
	// NaN / Inf guards.
	for _, bad := range [][]float64{
		{0.5, math.NaN(), 0.6},
		{0.5, math.Inf(1), 0.6},
		{math.Inf(-1), 0.5, 0.6},
	} {
		if _, err := det.CalibrateThreshold(bad, 0.95, 1.3); !errors.Is(err, ErrNonFiniteScore) {
			t.Fatalf("non-finite %v err = %v, want ErrNonFiniteScore", bad, err)
		}
	}
	// Every typed error also matches the package-wide ErrBadInput, so the
	// pre-existing error handling keeps working.
	for _, bad := range [][]float64{{0.4}, {0.7, 0.7}, {0.5, math.NaN()}} {
		if _, err := det.CalibrateThreshold(bad, 0.95, 1.3); !errors.Is(err, ErrBadInput) {
			t.Fatalf("%v does not wrap ErrBadInput: %v", bad, err)
		}
	}
	// A junk sample must never have set a junk threshold.
	if got := det.Threshold(); got != 0 {
		t.Fatalf("threshold mutated by failed calibration: %v", got)
	}
	// And a good sample still works.
	th, err := det.CalibrateThreshold([]float64{0.4, 0.5, 0.6, 0.45}, 0.95, 1.3)
	if err != nil || th <= 0 {
		t.Fatalf("good sample: th=%v err=%v", th, err)
	}
}

func TestLinkProfileRefresh(t *testing.T) {
	det := testDetector(t, 29)
	lp, err := NewLinkProfile(det.Profile(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	orig := det.Profile()
	nAnt := len(orig.MeanAmp)
	nSub := len(orig.MeanAmp[0])

	// A window identical to the profile changes nothing.
	same := &WindowStats{MeanAmp: orig.MeanAmp, MeanRSSdB: orig.MeanRSSdB}
	next, err := lp.Refresh(same)
	if err != nil {
		t.Fatal(err)
	}
	if next == orig {
		t.Fatal("refresh returned the same *Profile (must be copy-on-write)")
	}
	for ant := 0; ant < nAnt; ant++ {
		for k := 0; k < nSub; k++ {
			if math.Abs(next.MeanRSSdB[ant][k]-orig.MeanRSSdB[ant][k]) > 1e-12 {
				t.Fatalf("identical window moved the profile at [%d][%d]", ant, k)
			}
		}
	}
	if lp.ShiftDB() > 1e-9 {
		t.Fatalf("shift after identical refresh = %v", lp.ShiftDB())
	}

	// A +2 dB window moves the RSS profile by alpha × 2 dB and the shift
	// reports it; the original profile stays untouched.
	shifted := &WindowStats{MeanAmp: zeros2(nAnt, nSub), MeanRSSdB: zeros2(nAnt, nSub)}
	for ant := 0; ant < nAnt; ant++ {
		for k := 0; k < nSub; k++ {
			shifted.MeanAmp[ant][k] = orig.MeanAmp[ant][k]
			shifted.MeanRSSdB[ant][k] = orig.MeanRSSdB[ant][k] + 2
		}
	}
	if _, err := lp.Refresh(shifted); err != nil {
		t.Fatal(err)
	}
	if got := lp.ShiftDB(); math.Abs(got-1.0) > 1e-9 { // α=0.5 × 2 dB
		t.Fatalf("shift = %v dB, want 1.0", got)
	}
	if lp.Original() != orig {
		t.Fatal("original profile pointer changed")
	}
	if lp.Refreshes() != 2 {
		t.Fatalf("refreshes = %d", lp.Refreshes())
	}

	// Shape mismatch and non-finite stats are rejected.
	if _, err := lp.Refresh(&WindowStats{MeanAmp: zeros2(1, 2), MeanRSSdB: zeros2(1, 2)}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("shape mismatch err = %v", err)
	}
	nan := &WindowStats{MeanAmp: zeros2(nAnt, nSub), MeanRSSdB: zeros2(nAnt, nSub)}
	nan.MeanAmp[0][0] = math.NaN()
	if _, err := lp.Refresh(nan); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN stats err = %v", err)
	}
}

func TestLinkProfileValidation(t *testing.T) {
	if _, err := NewLinkProfile(nil, 0.1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil profile err = %v", err)
	}
	det := testDetector(t, 31)
	if _, err := NewLinkProfile(det.Profile(), 1.5); !errors.Is(err, ErrBadInput) {
		t.Fatalf("alpha>1 err = %v", err)
	}
	lp, err := NewLinkProfile(det.Profile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Alpha() != DefaultProfileAlpha {
		t.Fatalf("default alpha = %v", lp.Alpha())
	}
}

func TestMeasureWindowMatchesCalibrate(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 37)
	cfg := DefaultConfig(grid, SchemeSubcarrier, nil)
	frames := x.CaptureN(30, nil)
	profile, err := Calibrate(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := NewKernel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ws WindowStats
	if err := kernel.MeasureWindowInto(&ws, frames, nil); err != nil {
		t.Fatal(err)
	}
	// Measuring the calibration window must reproduce the profile exactly:
	// same sanitization, same means.
	for ant := range profile.MeanAmp {
		for k := range profile.MeanAmp[ant] {
			if math.Abs(ws.MeanAmp[ant][k]-profile.MeanAmp[ant][k]) > 1e-9 {
				t.Fatalf("amp mismatch at [%d][%d]: %v vs %v", ant, k, ws.MeanAmp[ant][k], profile.MeanAmp[ant][k])
			}
			if math.Abs(ws.MeanRSSdB[ant][k]-profile.MeanRSSdB[ant][k]) > 1e-9 {
				t.Fatalf("rss mismatch at [%d][%d]", ant, k)
			}
		}
	}
	if err := kernel.MeasureWindowInto(&ws, nil, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty window err = %v", err)
	}
}

func TestDriftMonitorWalkVsStep(t *testing.T) {
	ref := []float64{0.50, 0.55, 0.45, 0.52, 0.48, 0.51}
	mon, err := NewDriftMonitor(DriftConfig{Window: 10}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if st := mon.Snapshot(); st.State != DriftUnknown {
		t.Fatalf("state before samples = %v", st.State)
	}

	// Scores consistent with the reference: healthy.
	for i := 0; i < 10; i++ {
		mon.Observe(0.5 + 0.03*float64(i%3-1))
	}
	if st := mon.Snapshot(); st.State != DriftHealthy {
		t.Fatalf("healthy stream classified %v (z=%v)", st.State, st.Z)
	}

	// A gradual walk: large total shift, tiny per-window increments →
	// warning, never critical.
	level := 0.5
	for i := 0; i < 40; i++ {
		level += 0.02
		mon.Observe(level)
	}
	st := mon.Snapshot()
	if st.State != DriftWarning {
		t.Fatalf("walked stream classified %v (z=%v, jump=%v), want warning", st.State, st.Z, st.MaxJumpZ)
	}

	// A step: one big jump, sustained → critical (quarantine).
	mon2, err := NewDriftMonitor(DriftConfig{Window: 10}, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mon2.Observe(0.5)
	}
	for i := 0; i < 6; i++ {
		mon2.Observe(2.5) // person / furniture arrives
	}
	st = mon2.Snapshot()
	if st.State != DriftCritical {
		t.Fatalf("step stream classified %v (z=%v, jump=%v), want critical", st.State, st.Z, st.MaxJumpZ)
	}
	// The step subsides (person leaves): hysteresis unlatches.
	for i := 0; i < 12; i++ {
		mon2.Observe(0.5)
	}
	if st = mon2.Snapshot(); st.State == DriftCritical {
		t.Fatalf("monitor stayed critical after recovery (z=%v)", st.Z)
	}
}

func TestDriftMonitorRebase(t *testing.T) {
	ref := []float64{0.50, 0.55, 0.45, 0.52, 0.48, 0.51}
	mon, err := NewDriftMonitor(DriftConfig{Window: 8}, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mon.Observe(1.0)
	}
	before := mon.Snapshot()
	if before.Z <= 3 {
		t.Fatalf("shifted stream z = %v, want > 3", before.Z)
	}
	// Rebase onto the new level: the same stream is now healthy.
	if err := mon.Rebase([]float64{0.95, 1.05, 1.0, 0.98, 1.02}); err != nil {
		t.Fatal(err)
	}
	mon.Observe(1.0)
	after := mon.Snapshot()
	if after.State != DriftHealthy {
		t.Fatalf("rebased stream classified %v (z=%v)", after.State, after.Z)
	}
}

func TestDriftMonitorErrors(t *testing.T) {
	if _, err := NewDriftMonitor(DriftConfig{}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("short ref err = %v", err)
	}
	if _, err := NewDriftMonitor(DriftConfig{}, []float64{1, math.NaN()}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN ref err = %v", err)
	}
	mon, err := NewDriftMonitor(DriftConfig{Window: 4, MinSamples: 2}, []float64{0.5, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// Non-finite scores are counted but never poison the statistics.
	mon.Observe(0.55)
	mon.Observe(math.NaN())
	mon.Observe(math.Inf(1))
	mon.Observe(0.5)
	st := mon.Snapshot()
	if math.IsNaN(st.Z) || math.IsInf(st.Z, 0) {
		t.Fatalf("non-finite z after NaN scores: %v", st.Z)
	}
	if st.Observed != 4 {
		t.Fatalf("observed = %d, want 4", st.Observed)
	}
}

// TestDetectorConcurrentAdaptation exercises the snapshot discipline: one
// goroutine swaps profiles and thresholds while workers score — run under
// -race this validates the Detector's synchronization.
func TestDetectorConcurrentAdaptation(t *testing.T) {
	env, grid := testLink(t, true)
	x := testExtractor(t, env, grid, 41)
	cfg := DefaultConfig(grid, SchemeSubcarrier, nil)
	frames := x.CaptureN(60, nil)
	profile, err := Calibrate(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetector(cfg, profile)
	if err != nil {
		t.Fatal(err)
	}
	det.SetThreshold(1)
	window := x.CaptureN(25, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		lp, err := NewLinkProfile(profile, 0.2)
		if err != nil {
			t.Error(err)
			return
		}
		var ws WindowStats
		for i := 0; i < 50; i++ {
			if err := det.MeasureWindow(&ws, window, nil); err != nil {
				t.Error(err)
				return
			}
			next, err := lp.Refresh(&ws)
			if err != nil {
				t.Error(err)
				return
			}
			if err := det.SetProfile(next); err != nil {
				t.Error(err)
				return
			}
			det.SetThreshold(1 + float64(i)*0.01)
		}
	}()
	sc := NewScratch()
	for i := 0; i < 50; i++ {
		if _, err := det.DetectScratch(window, sc); err != nil {
			t.Fatal(err)
		}
	}
	<-done
}
