package core

import (
	"fmt"
	"math"

	"mlink/internal/dsp"
)

// DriftState classifies how far a link's score statistics have walked from
// their reference null distribution.
type DriftState int

const (
	// DriftUnknown means the monitor has not yet seen enough samples.
	DriftUnknown DriftState = iota
	// DriftHealthy: the rolling window is statistically consistent with the
	// reference null distribution.
	DriftHealthy
	// DriftWarning: the window mean has shifted past the warn bound — the
	// empty-room baseline is walking and the profile should be refreshed.
	DriftWarning
	// DriftCritical: the shift has exceeded the quarantine bound for
	// several consecutive windows — adaptation is not keeping up (step
	// change, dead link) and the link needs recalibration.
	DriftCritical
)

// String names the drift state.
func (s DriftState) String() string {
	switch s {
	case DriftUnknown:
		return "unknown"
	case DriftHealthy:
		return "healthy"
	case DriftWarning:
		return "drifting"
	case DriftCritical:
		return "critical"
	default:
		return fmt.Sprintf("driftstate(%d)", int(s))
	}
}

// DriftConfig parameterizes the windowed score-statistics test.
type DriftConfig struct {
	// Window is the rolling score window length (default 20 windows —
	// 10 s of monitoring at the paper's operating point).
	Window int
	// WarnZ and CriticalZ bound the standardized shift of the rolling mean,
	// measured in units of the reference deviation σ₀ (defaults 3 and 8).
	// Monitoring scores are autocorrelated, so these are effect sizes, not
	// √n-scaled test statistics — textbook 2σ bounds would trip on every
	// AGC wiggle.
	WarnZ, CriticalZ float64
	// CriticalPersist is how many consecutive over-critical windows are
	// required before the state becomes DriftCritical (default 3) — a
	// single outlier window, or the transient before the first threshold
	// rebase, must not quarantine a link.
	CriticalPersist int
	// JumpZ separates step changes from walks: DriftCritical additionally
	// requires that some consecutive-window score increment within the
	// rolling window exceeded JumpZ × σ₀ (default 6). A person or moved
	// cabinet arrives as a jump; a thermal gain walk creeps in sub-σ
	// increments and classifies as DriftWarning no matter how far it has
	// walked — warning keeps adaptation tracking, critical quarantines.
	JumpZ float64
	// MinSamples is how many scores must be observed before the monitor
	// leaves DriftUnknown (default Window/2).
	MinSamples int
}

// withDefaults fills zero fields.
func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.WarnZ <= 0 {
		c.WarnZ = 3
	}
	if c.CriticalZ <= 0 {
		c.CriticalZ = 8
	}
	if c.CriticalZ < c.WarnZ {
		c.CriticalZ = c.WarnZ
	}
	if c.CriticalPersist <= 0 {
		c.CriticalPersist = 3
	}
	if c.JumpZ <= 0 {
		c.JumpZ = 6
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 2 {
			c.MinSamples = 2
		}
	}
	return c
}

// DriftStats is one snapshot of the monitor.
type DriftStats struct {
	// State is the classified drift condition.
	State DriftState
	// Z is the standardized shift of the rolling window mean against the
	// reference: (mean_w − μ₀) / σ₀.
	Z float64
	// ScoreZ is the latest single score's standardized deviation from the
	// reference — the fast signal the critical latch runs on (a person's
	// arrival shows here immediately, windows before the rolling mean
	// catches up).
	ScoreZ float64
	// RollingMean is the current window's mean score.
	RollingMean float64
	// RecentMean is the mean of the last few scores (≤5) — a nearly
	// lag-free estimate of the current baseline level that the adaptation
	// layer's tracking gate compares new scores against.
	RecentMean float64
	// RefMean and RefStd are the reference null-score statistics (μ₀, σ₀).
	RefMean, RefStd float64
	// MaxJumpZ is the largest consecutive-window score increment in the
	// rolling window, in σ₀ units — the step-vs-walk discriminator.
	MaxJumpZ float64
	// JumpExceeded reports MaxJumpZ ≥ the configured JumpZ bound: a
	// step-like arrival is in the recent history, so the adaptation layer
	// must not treat the current level as a trackable walk.
	JumpExceeded bool
	// Observed counts all scores seen.
	Observed uint64
}

// DriftMonitor implements the windowed score-statistics test that flags a
// walked empty-room baseline (§IV-C threshold assumptions + RASID §5.2):
// a reference null sample fixes (μ₀, σ₀); during monitoring the mean of the
// last Window scores is standardized against that reference, and sustained
// shifts past the warn / critical bounds classify the link as drifting /
// needing recalibration. The adaptation layer Rebases the reference
// whenever it re-derives the threshold, so for an adapted link "critical"
// means scores have walked away from even the refreshed baseline.
//
// The monitor is not safe for concurrent use; callers (the adapt package)
// serialize Observe externally.
type DriftMonitor struct {
	cfg      DriftConfig
	refMean  float64
	refStd   float64
	ring     []float64
	jumps    []float64 // |Δscore| between consecutive windows, same ring
	prev     float64
	havePrev bool
	next     int
	full     bool
	sum      float64
	seen     uint64
	overCrit int
	latched  bool
	last     DriftStats
}

// refStats computes a floored (mean, std) reference from a null sample.
func refStats(refScores []float64) (mean, std float64, err error) {
	if len(refScores) < 2 {
		return 0, 0, fmt.Errorf("drift reference needs ≥2 null scores, got %d: %w", len(refScores), ErrBadInput)
	}
	for _, s := range refScores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return 0, 0, fmt.Errorf("non-finite reference score %v: %w", s, ErrBadInput)
		}
	}
	if mean, err = dsp.Mean(refScores); err != nil {
		return 0, 0, fmt.Errorf("drift reference: %w", err)
	}
	if std, err = dsp.StdDev(refScores); err != nil {
		return 0, 0, fmt.Errorf("drift reference: %w", err)
	}
	// Floor σ₀ so an unnaturally quiet calibration (short holdouts barely
	// explore the receiver's slow gain process) cannot make the test
	// infinitely touchy, and an all-identical sample cannot zero it.
	if floor := 0.1 * math.Abs(mean); std < floor {
		std = floor
	}
	if std == 0 {
		std = 1e-12
	}
	return mean, std, nil
}

// NewDriftMonitor builds a monitor referenced to the calibration-stage null
// scores (the same sample CalibrateThreshold consumes).
func NewDriftMonitor(cfg DriftConfig, refScores []float64) (*DriftMonitor, error) {
	cfg = cfg.withDefaults()
	mean, std, err := refStats(refScores)
	if err != nil {
		return nil, err
	}
	return &DriftMonitor{
		cfg:     cfg,
		refMean: mean,
		refStd:  std,
		ring:    make([]float64, cfg.Window),
		jumps:   make([]float64, cfg.Window),
		last:    DriftStats{RefMean: mean, RefStd: std},
	}, nil
}

// Rebase replaces the reference statistics with those of a fresh null
// sample — the adaptation layer calls this when it re-derives the decision
// threshold, anchoring "drift" to the profile actually in use.
func (m *DriftMonitor) Rebase(refScores []float64) error {
	mean, std, err := refStats(refScores)
	if err != nil {
		return err
	}
	m.refMean, m.refStd = mean, std
	return nil
}

// Observe feeds one monitoring-window score into the rolling window and
// reclassifies the drift state. Non-finite scores are counted but excluded
// from the statistics.
func (m *DriftMonitor) Observe(score float64) {
	m.seen++
	if !math.IsNaN(score) && !math.IsInf(score, 0) {
		if m.full {
			m.sum -= m.ring[m.next]
		}
		m.ring[m.next] = score
		if m.havePrev {
			m.jumps[m.next] = math.Abs(score - m.prev)
		}
		m.prev = score
		m.havePrev = true
		m.sum += score
		m.next++
		if m.next == len(m.ring) {
			m.next = 0
			m.full = true
		}
	}

	st := DriftStats{RefMean: m.refMean, RefStd: m.refStd, Observed: m.seen}
	n := m.count()
	if n < m.cfg.MinSamples {
		st.State = DriftUnknown
		m.last = st
		return
	}
	st.RollingMean = m.sum / float64(n)
	st.Z = (st.RollingMean - m.refMean) / m.refStd
	st.ScoreZ = (m.prev - m.refMean) / m.refStd
	var maxJump float64
	for i := 0; i < n; i++ {
		if m.jumps[i] > maxJump {
			maxJump = m.jumps[i]
		}
	}
	st.MaxJumpZ = maxJump / m.refStd
	st.JumpExceeded = st.MaxJumpZ >= m.cfg.JumpZ
	recent := n
	if recent > 5 {
		recent = 5
	}
	for i := 1; i <= recent; i++ {
		st.RecentMean += m.ring[(m.next-i+len(m.ring))%len(m.ring)]
	}
	st.RecentMean /= float64(recent)

	// The critical latch runs on the per-score deviation (fast) and
	// requires BOTH a sustained excursion and a step-like jump in the
	// recent history; it then stays latched until the excursion subsides
	// (hysteresis), so a parked person stays critical even after their
	// arrival jump slides out of the ring. A jump-free sustained shift is a
	// walk: warning, never critical, however far it has walked — warning
	// keeps the adaptation layer tracking it.
	if math.Abs(st.ScoreZ) >= m.cfg.CriticalZ {
		m.overCrit++
	} else {
		m.overCrit = 0
	}
	if m.overCrit >= m.cfg.CriticalPersist && st.JumpExceeded {
		m.latched = true
	}
	if m.latched && math.Abs(st.ScoreZ) < m.cfg.WarnZ {
		m.latched = false
	}
	switch {
	case m.latched:
		st.State = DriftCritical
	case math.Abs(st.Z) >= m.cfg.WarnZ:
		st.State = DriftWarning
	default:
		st.State = DriftHealthy
	}
	m.last = st
}

// count returns how many samples the ring currently holds.
func (m *DriftMonitor) count() int {
	if m.full {
		return len(m.ring)
	}
	return m.next
}

// Snapshot returns the classification after the latest Observe.
func (m *DriftMonitor) Snapshot() DriftStats { return m.last }
