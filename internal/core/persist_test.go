package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"mlink/internal/scenario"
)

// calibrateCase builds a real profile (with spectrum and path weights) over
// a link case.
func calibrateCase(t *testing.T, scheme Scheme) (Config, *Profile) {
	t.Helper()
	s, err := scenario.Classroom(31)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(s.Grid, scheme, s.Env.RX.Offsets())
	profile, err := Calibrate(cfg, x.CaptureN(60, nil))
	if err != nil {
		t.Fatal(err)
	}
	return cfg, profile
}

func TestProfileBinaryRoundTrip(t *testing.T) {
	for _, scheme := range []Scheme{SchemeSubcarrier, SchemeSubcarrierPath} {
		_, profile := calibrateCase(t, scheme)
		blob, err := profile.AppendBinary(nil)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		back, err := UnmarshalProfile(blob)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !reflect.DeepEqual(profile.MeanAmp, back.MeanAmp) ||
			!reflect.DeepEqual(profile.MeanRSSdB, back.MeanRSSdB) ||
			!reflect.DeepEqual(profile.PathWeights, back.PathWeights) {
			t.Fatalf("%v: fingerprints did not round-trip", scheme)
		}
		if (profile.StaticSpectrum == nil) != (back.StaticSpectrum == nil) {
			t.Fatalf("%v: spectrum presence changed", scheme)
		}
		if profile.StaticSpectrum != nil && !reflect.DeepEqual(profile.StaticSpectrum, back.StaticSpectrum) {
			t.Fatalf("%v: spectrum did not round-trip", scheme)
		}
		if len(back.Frames) != len(profile.Frames) {
			t.Fatalf("%v: %d frames, want %d", scheme, len(back.Frames), len(profile.Frames))
		}
		for i, f := range profile.Frames {
			if !reflect.DeepEqual(f.CSI, back.Frames[i].CSI) || !reflect.DeepEqual(f.RSSI, back.Frames[i].RSSI) {
				t.Fatalf("%v: frame %d did not round-trip", scheme, i)
			}
		}

		// Truncations and garbage must fail loudly.
		if _, err := UnmarshalProfile(blob[:len(blob)/2]); err == nil {
			t.Fatalf("%v: truncated profile decoded", scheme)
		}
		if _, err := UnmarshalProfile(append(append([]byte(nil), blob...), 0)); err == nil {
			t.Fatalf("%v: overlong profile decoded", scheme)
		}
		blob[0] ^= 0xFF
		if _, err := UnmarshalProfile(blob); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%v: bad magic err = %v", scheme, err)
		}
	}
}

func TestLinkProfileBinaryRoundTrip(t *testing.T) {
	cfg, profile := calibrateCase(t, SchemeSubcarrier)
	_ = cfg
	lp, err := NewLinkProfile(profile, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the profile a little so cur != orig and ShiftDB is non-zero.
	ws := &WindowStats{}
	ws.shaped(len(profile.MeanAmp), len(profile.MeanAmp[0]))
	for ant := range ws.MeanAmp {
		for k := range ws.MeanAmp[ant] {
			ws.MeanAmp[ant][k] = profile.MeanAmp[ant][k] * 1.2
			ws.MeanRSSdB[ant][k] = profile.MeanRSSdB[ant][k] + 1.5
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := lp.Refresh(ws); err != nil {
			t.Fatal(err)
		}
	}

	blob, err := lp.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalLinkProfile(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Alpha() != lp.Alpha() || back.Refreshes() != lp.Refreshes() {
		t.Fatalf("alpha/refreshes: got (%v,%d) want (%v,%d)", back.Alpha(), back.Refreshes(), lp.Alpha(), lp.Refreshes())
	}
	if !reflect.DeepEqual(back.Current().MeanRSSdB, lp.Current().MeanRSSdB) ||
		!reflect.DeepEqual(back.Original().MeanRSSdB, lp.Original().MeanRSSdB) {
		t.Fatal("fingerprints did not round-trip")
	}
	if math.Abs(back.ShiftDB()-lp.ShiftDB()) > 1e-12 {
		t.Fatalf("ShiftDB %v != %v after round trip", back.ShiftDB(), lp.ShiftDB())
	}
	if lp.ShiftDB() == 0 {
		t.Fatal("test walked nothing — ShiftDB should be non-zero")
	}
	// The restored current profile must carry the original's aux data by
	// reference, exactly as Refresh maintains it.
	if back.Current().Frames == nil {
		t.Fatal("restored current profile lost the calibration frames")
	}
}

func TestDriftMonitorStateRoundTrip(t *testing.T) {
	cfg := DriftConfig{Window: 8}
	ref := []float64{1, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8, 1}
	m, err := NewDriftMonitor(cfg, ref)
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{1, 1.2, 0.9, 1.4, 1.1, 0.95, 1.3, 1, 1.15, 1.05, 0.9}
	for _, s := range scores {
		m.Observe(s)
	}

	back, err := RestoreDriftMonitor(cfg, m.State())
	if err != nil {
		t.Fatal(err)
	}
	// Both monitors must classify every future score identically.
	future := []float64{1.2, 5, 5.2, 5.1, 5.3, 5.2, 1.0, 0.9}
	for i, s := range future {
		m.Observe(s)
		back.Observe(s)
		a, b := m.Snapshot(), back.Snapshot()
		if a.State != b.State || math.Abs(a.Z-b.Z) > 1e-12 || a.JumpExceeded != b.JumpExceeded {
			t.Fatalf("future score %d diverged:\n orig %+v\n rest %+v", i, a, b)
		}
	}

	if _, err := RestoreDriftMonitor(cfg, DriftMonitorState{RefStd: -1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative σ₀ err = %v", err)
	}
	if _, err := RestoreDriftMonitor(cfg, DriftMonitorState{RefMean: 1, RefStd: 1, Scores: []float64{1}, Jumps: nil}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("mismatched rings err = %v", err)
	}
}

func TestDriftMonitorReset(t *testing.T) {
	m, err := NewDriftMonitor(DriftConfig{Window: 6, CriticalPersist: 2}, []float64{1, 1.1, 0.9, 1.05})
	if err != nil {
		t.Fatal(err)
	}
	// Latch critical: a big jump plus a sustained excursion.
	for _, s := range []float64{1, 1, 50, 51, 50, 52} {
		m.Observe(s)
	}
	if m.Snapshot().State != DriftCritical {
		t.Fatalf("setup failed to latch: %+v", m.Snapshot())
	}
	m.Reset()
	if st := m.Snapshot(); st.State != DriftUnknown {
		t.Fatalf("reset state = %v", st.State)
	}
	// The reference survives a reset; the ring is empty so a few quiet
	// scores bring the monitor back healthy with no memory of the latch.
	for _, s := range []float64{1, 1.05, 0.95, 1.1} {
		m.Observe(s)
	}
	if st := m.Snapshot(); st.State != DriftHealthy || st.JumpExceeded {
		t.Fatalf("post-reset state = %+v", st)
	}
}

func TestLinkProfileAdopt(t *testing.T) {
	_, profile := calibrateCase(t, SchemeSubcarrier)
	lp, err := NewLinkProfile(profile, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ws := &WindowStats{}
	ws.shaped(len(profile.MeanAmp), len(profile.MeanAmp[0]))
	for ant := range ws.MeanAmp {
		for k := range ws.MeanAmp[ant] {
			ws.MeanAmp[ant][k] = 42
			ws.MeanRSSdB[ant][k] = -10
		}
	}
	next, err := lp.Adopt(ws)
	if err != nil {
		t.Fatal(err)
	}
	if next.MeanAmp[0][0] != 42 || next.MeanRSSdB[0][0] != -10 {
		t.Fatalf("adopt kept EWMA memory: %v / %v", next.MeanAmp[0][0], next.MeanRSSdB[0][0])
	}
	if len(next.Frames) != len(profile.Frames) || len(next.Frames) == 0 || next.Frames[0] != profile.Frames[0] {
		t.Fatal("adopt dropped the aux fields")
	}
	if lp.Refreshes() != 1 {
		t.Fatalf("adopt counted %d refreshes", lp.Refreshes())
	}
	ws.MeanAmp[0][0] = math.NaN()
	if _, err := lp.Adopt(ws); !errors.Is(err, ErrBadInput) {
		t.Fatalf("NaN adopt err = %v", err)
	}
}
