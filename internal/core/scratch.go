package core

import (
	"fmt"
	"math"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/dsp"
	"mlink/internal/linalg"
	"mlink/internal/music"
	"mlink/internal/sanitize"
)

// Scratch holds reusable buffers for the detector's per-window hot path, so
// a long-lived scoring worker (e.g. one goroutine of the engine's pool) can
// score windows without re-allocating the multipath-factor, RSS and mean
// vectors on every call. A Scratch also caches the grid-derived constants of
// Eq. 10 (resampling targets, subcarrier frequencies, Σf⁻²), which are
// identical for every packet on a link.
//
// A Scratch must not be shared between goroutines; give each worker its own.
// The zero value is ready to use.
type Scratch struct {
	// Cached per-grid constants (rebuilt when the grid changes).
	grid    *channel.Grid
	xs      []float64
	targets []float64
	freqs   []float64
	invSq   float64
	// Resampling knots: target i interpolates between row[knotLo[i]] and
	// row[knotHi[i]] at fraction knotFrac[i] — precomputed once per grid so
	// the per-packet loop does no searching or validation.
	knotLo, knotHi []int
	knotFrac       []float64
	// plNum[k] = (1/f_k²)/Σf⁻², the Eq. 10 path-loss numerator.
	plNum []float64
	// xform is the planned power-delay-profile transform (mixed-radix FFT
	// for smooth sizes such as the 30-subcarrier grid).
	xform *dsp.Transform

	// Reusable multipath-factor buffers.
	uniform []complex128
	taps    []complex128
	powers  []float64

	// Reusable detector buffers. The mu and weight rows are headers over
	// contiguous slabs (muSlab/wSlab): a window's 25×30 multipath factors
	// occupy one ~6 KB block, so the fill and weight-derivation passes sweep
	// it linearly instead of hopping between individually grown rows.
	acc    []float64   // per-subcarrier accumulator (mean amplitude / RSS)
	row    []float64   // one frame's RSS row
	mus    [][]float64 // window multipath factors, [packet][subcarrier]
	muSlab []float64   // contiguous backing for mus
	pant   [][]float64 // per-antenna weight vectors
	wrows  [][]float64 // per-antenna weight rows (Eq. 15 / Eq. 12)
	wSlab  []float64   // contiguous backing for wrows
	med    []float64   // median-selection work row
	sw     SubcarrierWeights

	// Angular-scheme buffers (SchemeSubcarrierPath): the averaged
	// subcarrier-weight row, the monitor window's covariance partials, the
	// combined covariance matrices and the two Bartlett spectra. All are
	// fully rewritten every window, so a link migrating between shards
	// (work stealing) carries no angular state — the new holder's scratch
	// reproduces bit-identical spectra.
	wavg             []float64
	winPartials      music.Partials
	monCov, calCov   linalg.Matrix
	monSpec, calSpec music.Spectrum

	// Reusable sanitized-window frames.
	san sanitize.Scratch
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

// bindGrid (re)computes the grid-derived constants of MultipathFactors.
func (sc *Scratch) bindGrid(grid *channel.Grid) {
	if sc.grid == grid {
		return
	}
	n := grid.Len()
	sc.xs = growFloats(&sc.xs, n)
	for i, idx := range grid.Indices {
		sc.xs[i] = float64(idx)
	}
	sc.targets = growFloats(&sc.targets, n)
	span := sc.xs[n-1] - sc.xs[0]
	for i := range sc.targets {
		sc.targets[i] = sc.xs[0] + span*float64(i)/float64(n-1)
	}
	sc.freqs = append(sc.freqs[:0], grid.Frequencies()...)
	sc.invSq = 0
	for _, f := range sc.freqs {
		sc.invSq += 1 / (f * f)
	}
	// Interpolation knots: targets are ascending across the xs span, so one
	// forward sweep replaces the per-packet binary searches.
	sc.knotLo = growInts(&sc.knotLo, n)
	sc.knotHi = growInts(&sc.knotHi, n)
	sc.knotFrac = growFloats(&sc.knotFrac, n)
	lo := 0
	for i, t := range sc.targets {
		switch {
		case t <= sc.xs[0]:
			sc.knotLo[i], sc.knotHi[i], sc.knotFrac[i] = 0, 0, 0
		case t >= sc.xs[n-1]:
			sc.knotLo[i], sc.knotHi[i], sc.knotFrac[i] = n-1, n-1, 0
		default:
			for sc.xs[lo+1] <= t {
				lo++
			}
			sc.knotLo[i] = lo
			sc.knotHi[i] = lo + 1
			sc.knotFrac[i] = (t - sc.xs[lo]) / (sc.xs[lo+1] - sc.xs[lo])
		}
	}
	sc.plNum = growFloats(&sc.plNum, n)
	if sc.invSq > 0 {
		for k, f := range sc.freqs {
			sc.plNum[k] = (1 / (f * f)) / sc.invSq
		}
	}
	if sc.xform == nil || sc.xform.Len() != n {
		// Shared process-wide plan: Transforms are immutable and
		// concurrency-safe, so every scratch (and so every shard) scoring
		// the same grid size reuses one warmed radix plan.
		sc.xform = dsp.Plan(n)
	}
	sc.grid = grid
}

// MultipathFactorsInto computes the Eq. 11 multipath factors of one
// antenna's CSI row into dst (len = grid.Len()), reusing the scratch
// buffers. It is the allocation-free core of MultipathFactors.
func (sc *Scratch) MultipathFactorsInto(dst []float64, row []complex128, grid *channel.Grid) error {
	if grid == nil || grid.Len() == 0 {
		return fmt.Errorf("empty grid: %w", ErrBadInput)
	}
	if len(row) != grid.Len() {
		return fmt.Errorf("%d subcarriers for grid of %d: %w", len(row), grid.Len(), ErrBadInput)
	}
	if len(dst) != grid.Len() {
		return fmt.Errorf("dst of %d for grid of %d: %w", len(dst), grid.Len(), ErrBadInput)
	}
	n := len(row)
	sc.bindGrid(grid)

	// Resample onto a uniform index grid (the 5300 indices skip pilots),
	// through the knots precomputed by bindGrid.
	sc.uniform = growComplexes(&sc.uniform, n)
	for i := 0; i < n; i++ {
		lo, hi := sc.knotLo[i], sc.knotHi[i]
		if lo == hi {
			sc.uniform[i] = row[lo]
			continue
		}
		frac := sc.knotFrac[i]
		sc.uniform[i] = row[lo]*complex(1-frac, 0) + row[hi]*complex(frac, 0)
	}

	// Dominant-path cluster power via the strongest IDFT tap and its two
	// cyclic neighbours (see MultipathFactors for the derivation).
	sc.taps = growComplexes(&sc.taps, n)
	sc.xform.IDFTInto(sc.taps, sc.uniform)
	sc.powers = growFloats(&sc.powers, n)
	best := 0
	for i, tap := range sc.taps {
		re, im := real(tap), imag(tap)
		sc.powers[i] = re*re + im*im
		if sc.powers[i] > sc.powers[best] {
			best = i
		}
	}
	cluster := sc.powers[best]
	if n > 1 {
		cluster += sc.powers[(best+1)%n] + sc.powers[(best-1+n)%n]
	}
	pDom := float64(n) * cluster

	if sc.invSq <= 0 {
		return fmt.Errorf("degenerate frequency grid: %w", ErrBadInput)
	}
	for k, v := range row {
		re, im := real(v), imag(v)
		p := re*re + im*im
		if p <= 0 {
			dst[k] = 0
			continue
		}
		dst[k] = sc.plNum[k] * pDom / p
	}
	return nil
}

// accumulator returns the zeroed per-subcarrier accumulator.
func (sc *Scratch) accumulator(n int) []float64 {
	sc.acc = growFloats(&sc.acc, n)
	for i := range sc.acc {
		sc.acc[i] = 0
	}
	return sc.acc
}

// rssRow returns the reusable single-frame RSS buffer.
func (sc *Scratch) rssRow(n int) []float64 {
	sc.row = growFloats(&sc.row, n)
	return sc.row
}

// muRows returns m reusable rows of n multipath factors, all views into one
// contiguous slab so per-window passes over the whole window sweep linear
// memory.
func (sc *Scratch) muRows(m, n int) [][]float64 {
	if cap(sc.mus) < m {
		sc.mus = make([][]float64, m)
	}
	sc.mus = sc.mus[:m]
	sc.muSlab = growFloats(&sc.muSlab, m*n)
	for i := range sc.mus {
		sc.mus[i] = sc.muSlab[i*n : (i+1)*n : (i+1)*n]
	}
	return sc.mus
}

// perAntenna returns the reusable per-antenna weight-vector table, sizing the
// weight-row slab for nAnt rows of nSub floats up front — weightRow hands out
// views into that slab, so it must not grow (and so invalidate earlier rows)
// mid-window.
func (sc *Scratch) perAntenna(nAnt, nSub int) [][]float64 {
	if cap(sc.pant) < nAnt {
		sc.pant = make([][]float64, nAnt)
	}
	sc.pant = sc.pant[:nAnt]
	if cap(sc.wrows) < nAnt {
		sc.wrows = make([][]float64, nAnt)
	}
	sc.wrows = sc.wrows[:nAnt]
	sc.wSlab = growFloats(&sc.wSlab, nAnt*nSub)
	for i := range sc.wrows {
		sc.wrows[i] = sc.wSlab[i*nSub : (i+1)*nSub : (i+1)*nSub]
	}
	return sc.pant
}

// weightRow returns antenna ant's weight row (a view into the slab sized by
// perAntenna).
func (sc *Scratch) weightRow(ant, n int) []float64 {
	return sc.wrows[ant][:n]
}

// medRow returns the reusable median/selection work row.
func (sc *Scratch) medRow(n int) []float64 {
	sc.med = growFloats(&sc.med, n)
	return sc.med
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growComplexes(buf *[]complex128, n int) []complex128 {
	if cap(*buf) < n {
		*buf = make([]complex128, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// subcarrierRSSdBInto is SubcarrierRSSdB writing into a caller buffer.
func subcarrierRSSdBInto(dst []float64, row []complex128) {
	for k, v := range row {
		re, im := real(v), imag(v)
		p := re*re + im*im
		if p <= 0 {
			dst[k] = math.Inf(-1)
			continue
		}
		dst[k] = 10 * math.Log10(p)
	}
}

// WarmScratch pre-sizes every buffer the kernel's scheme touches when
// scoring a window of windowLen nAnt-antenna frames, without computing
// anything. A shard that warms its scratch for every link it might ever hold
// (work stealing can migrate any link anywhere) enters the steady state with
// the growth already paid — the first window a migrated link scores on its
// new holder allocates nothing, even for a heavy fine-grid angular link
// whose spectra dwarf every sibling's buffers.
func (k *Kernel) WarmScratch(sc *Scratch, nAnt, windowLen int) {
	if sc == nil || nAnt <= 0 || windowLen <= 0 || k.cfg.Grid == nil || k.cfg.Grid.Len() == 0 {
		return
	}
	n := k.cfg.Grid.Len()
	sc.bindGrid(k.cfg.Grid)
	growComplexes(&sc.uniform, n)
	growComplexes(&sc.taps, n)
	growFloats(&sc.powers, n)
	growFloats(&sc.acc, n)
	growFloats(&sc.row, n)
	growFloats(&sc.med, n)
	sc.muRows(windowLen, n)
	sc.perAntenna(nAnt, n)
	growFloats(&sc.sw.MeanMu, n)
	growFloats(&sc.sw.StabilityRatio, n)
	growFloats(&sc.sw.Weights, n)
	if k.cfg.Sanitize {
		sc.san.Reserve(windowLen, nAnt, n)
	}
	if k.cfg.Scheme == SchemeSubcarrierPath && k.plan != nil {
		growFloats(&sc.wavg, n)
		sc.winPartials.Reserve(nAnt, n)
		sc.monCov.Reuse(nAnt, nAnt)
		sc.calCov.Reuse(nAnt, nAnt)
		k.plan.ReserveSpectrum(&sc.monSpec)
		k.plan.ReserveSpectrum(&sc.calSpec)
	}
}

// DetectScratch is Detect with a caller-managed scratch (nil is allowed and
// behaves like Detect). The decision is made against one consistent
// (profile, threshold) snapshot even while an adaptation loop is updating
// the detector concurrently.
func (d *Detector) DetectScratch(window []*csi.Frame, sc *Scratch) (Decision, error) {
	profile, threshold := d.snapshot()
	score, err := d.kernel.Score(profile, window, sc)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Present: score > threshold, Score: score, Threshold: threshold}, nil
}
