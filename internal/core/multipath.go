// Package core implements the paper's contribution: the multipath factor
// (Eq. 3, 9–11), the subcarrier weighting scheme (Eq. 12–15), the MUSIC
// path weighting scheme (Eq. 17), and the calibration/monitoring detector
// of §IV-C with its three variants (baseline, +subcarrier weighting,
// +subcarrier and path weighting).
package core

import (
	"errors"
	"fmt"
	"math"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// ErrBadInput reports invalid detector or metric input.
var ErrBadInput = errors.New("core: bad input")

// MultipathFactors computes the per-subcarrier multipath factor μk (Eq. 11)
// for one antenna's CSI row from a single packet:
//
//	μk = PL(fk) / |H(fk)|²,   PL(fk) = (fk⁻² / Σᵢ fᵢ⁻²) · Pdom
//
// where Pdom is the band-total power of the dominant propagation path,
// approximated (per the paper, following [11][21]) by the strongest tap of
// the inverse DFT of the CSI vector. The non-uniform Intel 5300 subcarrier
// indices are first resampled onto a uniform grid so the IDFT is valid.
//
// μk ≈ 1 means the subcarrier is dominated by the strongest (usually LOS)
// path; μk > 1 flags destructive multipath superposition — the sensitive
// regime the weighting scheme exploits.
func MultipathFactors(row []complex128, grid *channel.Grid) ([]float64, error) {
	if grid == nil || grid.Len() == 0 {
		return nil, fmt.Errorf("empty grid: %w", ErrBadInput)
	}
	if len(row) != grid.Len() {
		return nil, fmt.Errorf("%d subcarriers for grid of %d: %w", len(row), grid.Len(), ErrBadInput)
	}
	n := len(row)

	// Resample onto a uniform index grid (the 5300 indices skip pilots).
	xs := make([]float64, n)
	for i, idx := range grid.Indices {
		xs[i] = float64(idx)
	}
	targets := make([]float64, n)
	span := xs[n-1] - xs[0]
	for i := range targets {
		targets[i] = xs[0] + span*float64(i)/float64(n-1)
	}
	uniform, err := dsp.InterpolateComplex(xs, row, targets)
	if err != nil {
		return nil, fmt.Errorf("resample: %w", err)
	}

	// Dominant-path power: the paper approximates it by "the power of the
	// dominant paths across all subcarriers |ĥ(0)|²" (plural — the leading
	// delay cluster). A physical path delay rarely falls exactly on a tap
	// centre, so its energy leaks into adjacent taps; summing the dominant
	// tap with its two cyclic neighbours recovers the cluster power. IDFT
	// carries a 1/N scale, so the band-total power of a flat single-path
	// channel is N·Σ|tap|².
	taps := dsp.IDFT(uniform)
	powers := make([]float64, n)
	best := 0
	for i, tap := range taps {
		re, im := real(tap), imag(tap)
		powers[i] = re*re + im*im
		if powers[i] > powers[best] {
			best = i
		}
	}
	cluster := powers[best]
	if n > 1 {
		cluster += powers[(best+1)%n] + powers[(best-1+n)%n]
	}
	pDom := float64(n) * cluster

	// Frequency-dependent split of the dominant-path power (Eq. 10).
	freqs := grid.Frequencies()
	var invSq float64
	for _, f := range freqs {
		invSq += 1 / (f * f)
	}
	if invSq <= 0 {
		return nil, fmt.Errorf("degenerate frequency grid: %w", ErrBadInput)
	}

	mu := make([]float64, n)
	for k, v := range row {
		re, im := real(v), imag(v)
		p := re*re + im*im
		if p <= 0 {
			mu[k] = 0
			continue
		}
		pl := (1 / (freqs[k] * freqs[k])) / invSq * pDom
		mu[k] = pl / p
	}
	return mu, nil
}

// FrameMultipathFactors computes μ for every antenna of a frame, returning
// [antenna][subcarrier].
func FrameMultipathFactors(f *csi.Frame, grid *channel.Grid) ([][]float64, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("multipath factors: %w", err)
	}
	out := make([][]float64, f.NumAntennas())
	for ant := range f.CSI {
		mu, err := MultipathFactors(f.CSI[ant], grid)
		if err != nil {
			return nil, fmt.Errorf("antenna %d: %w", ant, err)
		}
		out[ant] = mu
	}
	return out, nil
}

// MeanMultipathFactor returns the mean of μ across subcarriers — a scalar
// link-quality indicator used by the deployment-assessment example.
func MeanMultipathFactor(mu []float64) (float64, error) {
	m, err := dsp.Mean(mu)
	if err != nil {
		return 0, fmt.Errorf("mean multipath factor: %w", err)
	}
	return m, nil
}

// SubcarrierRSSdB returns the per-subcarrier received signal strength in dB
// (10·log10|H|²) for one antenna — the s(fk) quantity of §III.
func SubcarrierRSSdB(row []complex128) []float64 {
	out := make([]float64, len(row))
	for k, v := range row {
		re, im := real(v), imag(v)
		p := re*re + im*im
		if p <= 0 {
			out[k] = math.Inf(-1)
			continue
		}
		out[k] = 10 * math.Log10(p)
	}
	return out
}
