package core

import (
	"errors"
	"fmt"
	"math"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// ErrBadInput reports invalid detector or metric input.
var ErrBadInput = errors.New("core: bad input")

// MultipathFactors computes the per-subcarrier multipath factor μk (Eq. 11)
// for one antenna's CSI row from a single packet:
//
//	μk = PL(fk) / |H(fk)|²,   PL(fk) = (fk⁻² / Σᵢ fᵢ⁻²) · Pdom
//
// where Pdom is the band-total power of the dominant propagation path,
// approximated (per the paper, following [11][21]) by the strongest tap of
// the inverse DFT of the CSI vector. The non-uniform Intel 5300 subcarrier
// indices are first resampled onto a uniform grid so the IDFT is valid.
//
// μk ≈ 1 means the subcarrier is dominated by the strongest (usually LOS)
// path; μk > 1 flags destructive multipath superposition — the sensitive
// regime the weighting scheme exploits.
//
// The "dominant path" is really the leading delay cluster: a physical path
// delay rarely falls exactly on a tap centre, so its energy leaks into
// adjacent taps, and the strongest IDFT tap is summed with its two cyclic
// neighbours to recover the cluster power. IDFT carries a 1/N scale, so the
// band-total power of a flat single-path channel is N·Σ|tap|².
// Scratch.MultipathFactorsInto implements the computation; this wrapper
// allocates the result.
func MultipathFactors(row []complex128, grid *channel.Grid) ([]float64, error) {
	if grid == nil || grid.Len() == 0 {
		return nil, fmt.Errorf("empty grid: %w", ErrBadInput)
	}
	mu := make([]float64, grid.Len())
	var sc Scratch
	if err := sc.MultipathFactorsInto(mu, row, grid); err != nil {
		return nil, err
	}
	return mu, nil
}

// FrameMultipathFactors computes μ for every antenna of a frame, returning
// [antenna][subcarrier].
func FrameMultipathFactors(f *csi.Frame, grid *channel.Grid) ([][]float64, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("multipath factors: %w", err)
	}
	out := make([][]float64, f.NumAntennas())
	for ant := range f.CSI {
		mu, err := MultipathFactors(f.CSI[ant], grid)
		if err != nil {
			return nil, fmt.Errorf("antenna %d: %w", ant, err)
		}
		out[ant] = mu
	}
	return out, nil
}

// MeanMultipathFactor returns the mean of μ across subcarriers — a scalar
// link-quality indicator used by the deployment-assessment example.
func MeanMultipathFactor(mu []float64) (float64, error) {
	m, err := dsp.Mean(mu)
	if err != nil {
		return 0, fmt.Errorf("mean multipath factor: %w", err)
	}
	return m, nil
}

// SubcarrierRSSdB returns the per-subcarrier received signal strength in dB
// (10·log10|H|²) for one antenna — the s(fk) quantity of §III.
func SubcarrierRSSdB(row []complex128) []float64 {
	out := make([]float64, len(row))
	for k, v := range row {
		re, im := real(v), imag(v)
		p := re*re + im*im
		if p <= 0 {
			out[k] = math.Inf(-1)
			continue
		}
		out[k] = 10 * math.Log10(p)
	}
	return out
}
