package core

import (
	"fmt"
	"math"

	"mlink/internal/csi"
	"mlink/internal/music"
)

// Kernel is the immutable scoring core of a detector: a validated Config
// plus the scheme's distance statistics, with the calibration profile passed
// in per call rather than owned. Splitting the kernel from the profile is
// what makes online adaptation possible — the adaptation layer swaps
// profiles and thresholds while the kernel itself never changes, so scoring
// workers can keep a Kernel forever without synchronization.
type Kernel struct {
	cfg Config
	// plan is the precomputed steering table for SchemeSubcarrierPath (nil
	// otherwise) — built once here, shared read-only by every worker that
	// scores through this kernel, never rebuilt per window.
	plan *music.Plan
}

// NewKernel validates the config and wraps it as a scoring kernel.
func NewKernel(cfg Config) (*Kernel, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := &Kernel{cfg: cfg}
	if cfg.Scheme == SchemeSubcarrierPath {
		est, err := newEstimator(cfg)
		if err != nil {
			return nil, err
		}
		if k.plan, err = est.NewPlan(); err != nil {
			return nil, fmt.Errorf("steering plan: %w", err)
		}
	}
	return k, nil
}

// Config returns the kernel's configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Score computes the scheme's distance statistic for a window of M frames
// against the given profile (§IV-C monitoring stage). A nil scratch
// allocates a transient one.
func (k *Kernel) Score(profile *Profile, window []*csi.Frame, sc *Scratch) (float64, error) {
	if len(window) == 0 {
		return 0, fmt.Errorf("empty monitoring window: %w", ErrBadInput)
	}
	if profile == nil || len(profile.MeanAmp) == 0 {
		return 0, fmt.Errorf("score without a profile: %w", ErrBadInput)
	}
	if sc == nil {
		sc = NewScratch()
	}
	prep, err := prepareScratch(k.cfg, window, sc)
	if err != nil {
		return 0, fmt.Errorf("score: %w", err)
	}
	if prep[0].NumAntennas() != len(profile.MeanAmp) || prep[0].NumSubcarriers() != len(profile.MeanAmp[0]) {
		return 0, fmt.Errorf("window shape %dx%d differs from profile %dx%d: %w",
			prep[0].NumAntennas(), prep[0].NumSubcarriers(),
			len(profile.MeanAmp), len(profile.MeanAmp[0]), ErrBadInput)
	}
	switch k.cfg.Scheme {
	case SchemeBaseline:
		return k.scoreBaseline(profile, prep, sc)
	case SchemeSubcarrier:
		return k.scoreSubcarrier(profile, prep, sc)
	case SchemeSubcarrierPath:
		return k.scoreSubcarrierPath(profile, prep, sc)
	default:
		return 0, fmt.Errorf("unknown scheme: %w", ErrBadInput)
	}
}

// WindowStats are the per-window profile statistics a monitoring window
// contributes: the same mean-amplitude and mean-RSS summaries a calibration
// profile holds, measured over one sanitized window. The adaptation layer
// folds them into a LinkProfile via EWMA updates.
type WindowStats struct {
	// MeanAmp is the window's mean linear CSI amplitude per
	// [antenna][subcarrier].
	MeanAmp [][]float64
	// MeanRSSdB is the window's mean per-subcarrier RSS in dB.
	MeanRSSdB [][]float64
}

// shaped grows the stats buffers to nAnt×nSub and zeroes them.
func (ws *WindowStats) shaped(nAnt, nSub int) {
	for _, rows := range []*[][]float64{&ws.MeanAmp, &ws.MeanRSSdB} {
		if len(*rows) != nAnt {
			*rows = make([][]float64, nAnt)
		}
		for i := range *rows {
			(*rows)[i] = growFloats(&(*rows)[i], nSub)
			for j := range (*rows)[i] {
				(*rows)[i][j] = 0
			}
		}
	}
}

// meanStatsInto accumulates the per-subcarrier mean amplitude and mean RSS
// of already-prepared frames into ws — the single definition of the
// profile fingerprint, shared by Calibrate (building the static profile)
// and MeasureWindowInto (measuring a refresh window), so the adaptation
// layer can never EWMA-mix statistics computed differently from the
// profile's. rss is a caller-provided row buffer of nSub floats.
func meanStatsInto(ws *WindowStats, prep []*csi.Frame, rss []float64) {
	nAnt := prep[0].NumAntennas()
	nSub := prep[0].NumSubcarriers()
	ws.shaped(nAnt, nSub)
	for _, f := range prep {
		for ant := 0; ant < nAnt; ant++ {
			subcarrierRSSdBInto(rss, f.CSI[ant])
			amp := ws.MeanAmp[ant]
			mrs := ws.MeanRSSdB[ant]
			for kk := 0; kk < nSub; kk++ {
				re, im := real(f.CSI[ant][kk]), imag(f.CSI[ant][kk])
				amp[kk] += math.Hypot(re, im)
				mrs[kk] += rss[kk]
			}
		}
	}
	scale := 1 / float64(len(prep))
	for ant := 0; ant < nAnt; ant++ {
		for kk := 0; kk < nSub; kk++ {
			ws.MeanAmp[ant][kk] *= scale
			ws.MeanRSSdB[ant][kk] *= scale
		}
	}
}

// MeasureWindowInto sanitizes a monitoring window (per the kernel's config)
// and computes its profile statistics into ws, reusing ws's buffers across
// calls. It is the measurement half of a silent-window profile refresh.
func (k *Kernel) MeasureWindowInto(ws *WindowStats, window []*csi.Frame, sc *Scratch) error {
	if len(window) == 0 {
		return fmt.Errorf("empty window: %w", ErrBadInput)
	}
	if ws == nil {
		return fmt.Errorf("nil window stats: %w", ErrBadInput)
	}
	if sc == nil {
		sc = NewScratch()
	}
	prep, err := prepareScratch(k.cfg, window, sc)
	if err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	meanStatsInto(ws, prep, sc.rssRow(prep[0].NumSubcarriers()))
	return nil
}

// scoreBaseline: normalized Euclidean distance of mean CSI amplitudes,
// averaged across antennas.
func (k *Kernel) scoreBaseline(profile *Profile, window []*csi.Frame, sc *Scratch) (float64, error) {
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	var total float64
	for ant := 0; ant < nAnt; ant++ {
		mean := sc.accumulator(nSub)
		for _, f := range window {
			for kk := 0; kk < nSub; kk++ {
				re, im := real(f.CSI[ant][kk]), imag(f.CSI[ant][kk])
				mean[kk] += math.Hypot(re, im)
			}
		}
		var dist, ref float64
		for kk := 0; kk < nSub; kk++ {
			mean[kk] /= float64(len(window))
			diff := mean[kk] - profile.MeanAmp[ant][kk]
			dist += diff * diff
			ref += profile.MeanAmp[ant][kk] * profile.MeanAmp[ant][kk]
		}
		if ref > 0 {
			total += math.Sqrt(dist / ref)
		}
	}
	return total / float64(nAnt), nil
}

// windowWeights derives the subcarrier weights from the monitoring window's
// multipath factors, per antenna, entirely into scratch-owned rows — the
// steady-state scoring loop allocates nothing here. The returned rows are
// only valid until the scratch's next use.
func (k *Kernel) windowWeights(window []*csi.Frame, sc *Scratch) ([][]float64, error) {
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	perAnt := sc.perAntenna(nAnt, nSub)
	for ant := 0; ant < nAnt; ant++ {
		mus := sc.muRows(len(window), nSub)
		for i, f := range window {
			if err := sc.MultipathFactorsInto(mus[i], f.CSI[ant], k.cfg.Grid); err != nil {
				return nil, err
			}
		}
		row := sc.weightRow(ant, nSub)
		if k.cfg.UsePerPacketWeights {
			// Eq. 12 ablation: average the per-packet weights.
			for i := range row {
				row[i] = 0
			}
			tmp := sc.medRow(nSub)
			for _, mu := range mus {
				if err := PerPacketWeightsInto(tmp, mu); err != nil {
					return nil, err
				}
				for i, v := range tmp {
					row[i] += v / float64(len(mus))
				}
			}
			perAnt[ant] = row
			continue
		}
		if err := ComputeSubcarrierWeightsInto(&sc.sw, mus, sc.medRow(nSub)); err != nil {
			return nil, err
		}
		perAnt[ant] = row[:copy(row, sc.sw.Weights)]
	}
	return perAnt, nil
}

// scoreSubcarrier: Euclidean norm of the Eq. 15 weighted RSS changes,
// averaged across antennas.
//
// The window's mean per-subcarrier RSS in dB is computed as
// 10·log₁₀(Π_f p_f)/M rather than Σ 10·log₁₀(p_f)/M — the same quantity
// with one logarithm per subcarrier instead of one per packet (Log10 was
// the scoring loop's hottest call). Running power products are rescaled by
// 10^±300 before they can leave the double range; the decade offsets are
// folded back into the dB mean.
func (k *Kernel) scoreSubcarrier(profile *Profile, window []*csi.Frame, sc *Scratch) (float64, error) {
	weights, err := k.windowWeights(window, sc)
	if err != nil {
		return 0, err
	}
	nAnt := window[0].NumAntennas()
	nSub := window[0].NumSubcarriers()
	var total float64
	for ant := 0; ant < nAnt; ant++ {
		prod := sc.accumulator(nSub) // running power products
		exps := sc.medRow(nSub)      // rescue decades, in powers of 10
		for kk := 0; kk < nSub; kk++ {
			prod[kk], exps[kk] = 1, 0
		}
		for _, f := range window {
			row := f.CSI[ant]
			for kk := 0; kk < nSub; kk++ {
				re, im := real(row[kk]), imag(row[kk])
				v := prod[kk] * (re*re + im*im)
				switch {
				case v > 0 && v < 1e-150:
					v *= 1e300
					exps[kk] -= 300
				case v > 1e150:
					v *= 1e-300
					exps[kk] += 300
				}
				prod[kk] = v
			}
		}
		var dist, wNorm float64
		for kk := 0; kk < nSub; kk++ {
			meanRSS := math.Inf(-1) // a zero-power subcarrier, as in SubcarrierRSSdB
			if prod[kk] > 0 {
				meanRSS = (10*math.Log10(prod[kk]) + 10*exps[kk]) / float64(len(window))
			}
			delta := meanRSS - profile.MeanRSSdB[ant][kk]
			wd := weights[ant][kk] * delta
			dist += wd * wd
			wNorm += weights[ant][kk] * weights[ant][kk]
		}
		if wNorm > 0 {
			// Normalize by the weight norm: the score becomes a weighted
			// RMS Δs in dB, comparable across links whose multipath-factor
			// scales differ (the paper applies one threshold to all cases).
			total += math.Sqrt(dist / wNorm)
		}
	}
	return total / float64(nAnt), nil
}

// scoreSubcarrierPath: path-weighted distance between the subcarrier-
// weighted monitoring and calibration angular power spectra (§IV-C). The
// decision statistic runs on the Bartlett spectrum in dB — it carries the
// per-direction received power, so on-path attenuation and off-path echoes
// both register — while the Eq. 17 path weights, derived from the static
// MUSIC pseudospectrum at calibration, amplify the NLOS directions.
//
// The whole computation is allocation-free at steady state: the monitor
// covariance accumulates through the scratch's per-subcarrier partials, the
// calibration covariance is a weight-combine of the profile's precomputed
// partials (the frames themselves are never touched per window), and both
// Bartlett spectra run over the kernel's cached steering table. Every
// scratch buffer is fully rewritten per window, so a link migrating between
// shards reproduces bit-identical spectra on its new holder's scratch.
func (k *Kernel) scoreSubcarrierPath(profile *Profile, window []*csi.Frame, sc *Scratch) (float64, error) {
	perAnt, err := k.windowWeights(window, sc)
	if err != nil {
		return 0, err
	}
	w := growFloats(&sc.wavg, window[0].NumSubcarriers())
	if err := AverageWeightVectorsInto(w, perAnt); err != nil {
		return 0, err
	}
	if err := music.CovarianceInto(&sc.monCov, window, w, &sc.winPartials); err != nil {
		return 0, fmt.Errorf("monitor covariance: %w", err)
	}
	if err := k.plan.BartlettInto(&sc.monSpec, &sc.monCov); err != nil {
		return 0, fmt.Errorf("monitor spectrum: %w", err)
	}
	parts := profile.Partials
	if parts == nil {
		// A profile assembled outside Calibrate carries no cached partials;
		// derive them transiently (one allocation, not steady state).
		if parts, err = music.NewPartials(profile.Frames); err != nil {
			return 0, fmt.Errorf("calibration covariance: %w", err)
		}
	}
	if err := parts.CovarianceInto(&sc.calCov, w); err != nil {
		return 0, fmt.Errorf("calibration covariance: %w", err)
	}
	if err := k.plan.BartlettInto(&sc.calSpec, &sc.calCov); err != nil {
		return 0, fmt.Errorf("calibration spectrum: %w", err)
	}
	return weightedSpectrumDistanceDB(&sc.monSpec, &sc.calSpec, profile.PathWeights)
}
