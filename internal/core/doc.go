// Package core implements the paper's contribution: the multipath factor
// (Eq. 3, 9–11), the subcarrier weighting scheme (Eq. 12–15), the MUSIC
// path weighting scheme (Eq. 17), and the calibration/monitoring detector
// of §IV-C with its three variants (baseline, +subcarrier weighting,
// +subcarrier and path weighting).
//
// The lifecycle mirrors §IV-C: Calibrate builds a static Profile from
// empty-room frames, NewDetector pairs it with a Config, SelfScores +
// CalibrateThreshold fix the decision threshold from the profile's own
// variations, and Score/Detect judge monitoring windows. Long-lived scoring
// workers pass a reusable Scratch to ScoreScratch/DetectScratch to keep the
// per-window hot path allocation-free (internal/engine does this per pool
// worker). That holds for every scheme, including the angular
// SchemeSubcarrierPath: the Kernel carries a precomputed music.Plan
// (steering table), the Profile carries music.Partials of its calibration
// frames (rebuilt wherever Frames are established — Calibrate, persistence
// restore — and carried by reference through refresh/adopt, since those
// never change Frames), and the Scratch holds the window covariances and
// spectra, fully rewritten each window so scores are bit-identical across
// scratches and shard migrations.
//
// The detector is split into an immutable scoring Kernel and mutable link
// state so profiles can adapt online: LinkProfile applies EWMA refreshes
// from silent-window statistics (copy-on-write; concurrent scorers always
// see a consistent snapshot), DriftMonitor runs the windowed
// score-statistics test that flags a walked empty-room baseline, and the
// typed threshold errors (ErrTooFewNullScores, ErrDegenerateNull,
// ErrNonFiniteScore) keep junk null samples from becoming junk thresholds.
// The adaptation policy that drives these pieces lives in internal/adapt.
package core
