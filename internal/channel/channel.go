package channel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Grid constants for the paper's setup.
const (
	// CenterFreqChannel11 is the centre frequency of 2.4 GHz channel 11.
	CenterFreqChannel11 = 2.462e9
	// SubcarrierSpacing is the 802.11n OFDM subcarrier spacing.
	SubcarrierSpacing = 312.5e3
	// NumSubcarriers is the number of subcarriers the Intel 5300 reports.
	NumSubcarriers = 30
)

// ErrBadGrid reports an invalid frequency-grid configuration.
var ErrBadGrid = errors.New("channel: bad grid")

// intel5300Indices are the subcarrier indices reported by the CSI Tool for a
// 20 MHz channel, exactly as listed in the paper's footnote 1.
var intel5300Indices = [NumSubcarriers]int{
	-28, -26, -24, -22, -20, -18, -16, -14, -12, -10,
	-8, -6, -4, -2, -1, 1, 3, 5, 7, 9,
	11, 13, 15, 17, 19, 21, 23, 25, 27, 28,
}

// Intel5300Indices returns a copy of the CSI Tool subcarrier index list.
func Intel5300Indices() []int {
	out := make([]int, NumSubcarriers)
	copy(out[:], intel5300Indices[:])
	return out
}

// Grid is an OFDM subcarrier frequency grid.
type Grid struct {
	// Center is the carrier centre frequency in Hz.
	Center float64
	// Indices are the subcarrier indices relative to the centre.
	Indices []int
	// Spacing is the subcarrier spacing in Hz.
	Spacing float64
}

// NewIntel5300Grid returns the 30-subcarrier grid of the paper's receiver at
// the given centre frequency.
func NewIntel5300Grid(center float64) (*Grid, error) {
	if center <= 0 {
		return nil, fmt.Errorf("center %v Hz: %w", center, ErrBadGrid)
	}
	return &Grid{Center: center, Indices: Intel5300Indices(), Spacing: SubcarrierSpacing}, nil
}

// Frequencies returns the absolute frequency of every subcarrier.
func (g *Grid) Frequencies() []float64 {
	out := make([]float64, len(g.Indices))
	for i, idx := range g.Indices {
		out[i] = g.Center + float64(idx)*g.Spacing
	}
	return out
}

// Wavelengths returns the wavelength of every subcarrier.
func (g *Grid) Wavelengths(speedOfLight float64) []float64 {
	out := make([]float64, len(g.Indices))
	for i, f := range g.Frequencies() {
		out[i] = speedOfLight / f
	}
	return out
}

// Len returns the number of subcarriers.
func (g *Grid) Len() int { return len(g.Indices) }

// AddAWGN returns h plus circularly-symmetric complex Gaussian noise sized
// so that the per-subcarrier SNR (averaged signal power over noise power)
// equals snrDB. The input is not modified. A nil rng or an empty input
// returns a copy of h unchanged.
func AddAWGN(h []complex128, snrDB float64, rng *rand.Rand) []complex128 {
	out := make([]complex128, len(h))
	copy(out, h)
	AddAWGNInPlace(out, snrDB, rng)
	return out
}

// AddAWGNInPlace is AddAWGN mutating h directly — the allocation-free
// capture hot path. A nil rng or an empty input leaves h unchanged.
func AddAWGNInPlace(h []complex128, snrDB float64, rng *rand.Rand) {
	if rng == nil || len(h) == 0 {
		return
	}
	var avg float64
	for _, v := range h {
		re, im := real(v), imag(v)
		avg += re*re + im*im
	}
	avg /= float64(len(h))
	noisePower := avg / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noisePower / 2)
	for i := range h {
		h[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
}
