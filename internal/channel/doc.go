// Package channel defines the OFDM frequency grid of the paper's testbed —
// IEEE 802.11n, 2.4 GHz channel 11, 20 MHz bandwidth — and the subcarrier
// subset the Intel 5300 CSI Tool reports (the 30 indices listed in the
// paper's footnote 1). It also provides the AWGN model applied to channel
// responses before CSI extraction, in allocating (AddAWGN) and in-place
// (AddAWGNInPlace) forms; the latter backs the allocation-free capture
// pipeline in internal/csi.
package channel
