package channel

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestIntel5300Indices(t *testing.T) {
	idx := Intel5300Indices()
	if len(idx) != NumSubcarriers {
		t.Fatalf("len = %d", len(idx))
	}
	// Exact footnote-1 list spot checks.
	if idx[0] != -28 || idx[14] != -1 || idx[15] != 1 || idx[29] != 28 {
		t.Fatalf("indices = %v", idx)
	}
	// Strictly increasing.
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("not increasing at %d: %v", i, idx)
		}
	}
	// Returned slice must be a copy.
	idx[0] = 99
	if Intel5300Indices()[0] != -28 {
		t.Fatal("Intel5300Indices returns aliased storage")
	}
}

func TestNewIntel5300Grid(t *testing.T) {
	g, err := NewIntel5300Grid(CenterFreqChannel11)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 30 {
		t.Fatalf("len = %d", g.Len())
	}
	fs := g.Frequencies()
	if math.Abs(fs[0]-(2.462e9-28*312.5e3)) > 1 {
		t.Fatalf("f[0] = %v", fs[0])
	}
	if math.Abs(fs[29]-(2.462e9+28*312.5e3)) > 1 {
		t.Fatalf("f[29] = %v", fs[29])
	}
	// All within the 20 MHz channel.
	for _, f := range fs {
		if math.Abs(f-CenterFreqChannel11) > 10e6 {
			t.Fatalf("subcarrier %v outside channel", f)
		}
	}
	if _, err := NewIntel5300Grid(0); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("zero center err = %v", err)
	}
}

func TestWavelengths(t *testing.T) {
	g, _ := NewIntel5300Grid(CenterFreqChannel11)
	c := 299792458.0
	ws := g.Wavelengths(c)
	if len(ws) != 30 {
		t.Fatalf("len = %d", len(ws))
	}
	mid := c / CenterFreqChannel11
	for _, w := range ws {
		if math.Abs(w-mid) > 0.002 {
			t.Fatalf("wavelength %v too far from %v", w, mid)
		}
	}
	// Higher frequency → shorter wavelength.
	if ws[0] <= ws[29] {
		t.Fatalf("wavelength ordering wrong: %v ... %v", ws[0], ws[29])
	}
}

func TestAddAWGNSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	h := make([]complex128, n)
	for i := range h {
		h[i] = 1
	}
	const snr = 20.0
	noisy := AddAWGN(h, snr, rng)
	var noisePower float64
	for i := range h {
		d := noisy[i] - h[i]
		noisePower += real(d)*real(d) + imag(d)*imag(d)
	}
	noisePower /= float64(n)
	want := math.Pow(10, -snr/10)
	if math.Abs(noisePower-want)/want > 0.1 {
		t.Fatalf("noise power %v, want ≈%v", noisePower, want)
	}
}

func TestAddAWGNDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := []complex128{1 + 1i, 2}
	_ = AddAWGN(h, 10, rng)
	if h[0] != 1+1i || h[1] != 2 {
		t.Fatalf("input mutated: %v", h)
	}
}

func TestAddAWGNNilRNG(t *testing.T) {
	h := []complex128{1, 2}
	out := AddAWGN(h, 10, nil)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("nil rng altered data: %v", out)
	}
	if len(AddAWGN(nil, 10, nil)) != 0 {
		t.Fatal("empty input should return empty")
	}
}

func TestAddAWGNHigherSNRLessNoise(t *testing.T) {
	mkNoise := func(snr float64) float64 {
		rng := rand.New(rand.NewSource(7))
		h := make([]complex128, 5000)
		for i := range h {
			h[i] = 1
		}
		noisy := AddAWGN(h, snr, rng)
		var p float64
		for i := range h {
			d := noisy[i] - h[i]
			p += real(d)*real(d) + imag(d)*imag(d)
		}
		return p
	}
	if mkNoise(30) >= mkNoise(10) {
		t.Fatal("higher SNR produced more noise")
	}
}
