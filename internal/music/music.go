package music

import (
	"errors"
	"fmt"
	"math"

	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/linalg"
)

// ErrBadInput reports invalid estimator input.
var ErrBadInput = errors.New("music: bad input")

// Estimator computes angular pseudospectra for a uniform linear array.
type Estimator struct {
	// Offsets are the element positions along the array axis in metres,
	// relative to the array centre (propagation.Array.Offsets()).
	Offsets []float64
	// Wavelength is the carrier wavelength in metres.
	Wavelength float64
	// StepDeg is the pseudospectrum angular resolution (default 1°).
	StepDeg float64
	// MaxDeg bounds the scan to [-MaxDeg, +MaxDeg] (default 90°).
	MaxDeg float64
}

// NewEstimator returns an estimator with default scan parameters.
func NewEstimator(offsets []float64, wavelength float64) (*Estimator, error) {
	if len(offsets) < 2 {
		return nil, fmt.Errorf("need ≥2 elements, got %d: %w", len(offsets), ErrBadInput)
	}
	if wavelength <= 0 {
		return nil, fmt.Errorf("wavelength %v: %w", wavelength, ErrBadInput)
	}
	return &Estimator{Offsets: offsets, Wavelength: wavelength, StepDeg: 1, MaxDeg: 90}, nil
}

// scanGrid resolves the estimator's scan parameters into a deterministic
// index-based grid of n angles, angle(i) = -maxDeg + i·step. Stepping by
// index instead of accumulating a float loop variable keeps the grid length
// exactly reproducible for any StepDeg — the cached steering table, the
// persisted path-weight vectors and every spectrum comparison depend on it.
// The closed-form count tolerates step values that do not divide the span
// exactly; the last angle never exceeds +maxDeg.
func (e *Estimator) scanGrid() (step, maxDeg float64, n int) {
	step = e.StepDeg
	if step <= 0 {
		step = 1
	}
	maxDeg = e.MaxDeg
	if maxDeg <= 0 || maxDeg > 90 {
		maxDeg = 90
	}
	n = int(math.Floor(2*maxDeg/step+1e-9)) + 1
	return step, maxDeg, n
}

// NumAngles returns the length of the estimator's scan grid — the number of
// angles every Pseudospectrum/Bartlett call (and any Plan built from this
// estimator) will produce.
func (e *Estimator) NumAngles() int {
	_, _, n := e.scanGrid()
	return n
}

// Steering returns the array steering vector a(θ) for an angle relative to
// broadside: a_m(θ) = e^{+j·2π·offset_m·sinθ/λ}. The sign convention matches
// the propagation model's e^{-j2πfd/c} ray phases (an element closer to the
// source accumulates less negative phase).
func (e *Estimator) Steering(thetaRad float64) linalg.Vector {
	v := make(linalg.Vector, len(e.Offsets))
	s := math.Sin(thetaRad)
	for m, off := range e.Offsets {
		phi := 2 * math.Pi * off * s / e.Wavelength
		v[m] = complex(math.Cos(phi), math.Sin(phi))
	}
	return v
}

// Covariance accumulates the spatial covariance matrix from CSI frames:
// every (packet, subcarrier) pair contributes one snapshot across antennas.
// Optional per-subcarrier weights scale each snapshot (the paper's
// subcarrier weighting feeding path weighting); nil means uniform.
func Covariance(frames []*csi.Frame, weights []float64) (*linalg.Matrix, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("no frames: %w", ErrBadInput)
	}
	nAnt := frames[0].NumAntennas()
	nSub := frames[0].NumSubcarriers()
	if nAnt == 0 || nSub == 0 {
		return nil, fmt.Errorf("empty frame: %w", ErrBadInput)
	}
	if weights != nil && len(weights) != nSub {
		return nil, fmt.Errorf("%d weights for %d subcarriers: %w", len(weights), nSub, ErrBadInput)
	}
	for k, w := range weights {
		// A negative weight would flip the snapshot's sign instead of
		// down-weighting it — reject rather than silently corrupt R.
		if w < 0 {
			return nil, fmt.Errorf("negative weight %v at subcarrier %d: %w", w, k, ErrBadInput)
		}
	}
	r := linalg.NewMatrix(nAnt, nAnt)
	count := 0
	snapshot := make(linalg.Vector, nAnt)
	for fi, f := range frames {
		if f.NumAntennas() != nAnt || f.NumSubcarriers() != nSub {
			return nil, fmt.Errorf("frame %d shape %dx%d differs from %dx%d: %w",
				fi, f.NumAntennas(), f.NumSubcarriers(), nAnt, nSub, ErrBadInput)
		}
		for k := 0; k < nSub; k++ {
			w := 1.0
			if weights != nil {
				w = weights[k]
			}
			if w == 0 {
				continue
			}
			for ant := 0; ant < nAnt; ant++ {
				snapshot[ant] = f.CSI[ant][k] * complex(w, 0)
			}
			for i := 0; i < nAnt; i++ {
				for j := 0; j < nAnt; j++ {
					r.Set(i, j, r.At(i, j)+snapshot[i]*conj(snapshot[j]))
				}
			}
			count++
		}
	}
	if count == 0 {
		return nil, fmt.Errorf("all snapshots zero-weighted: %w", ErrBadInput)
	}
	return r.Scale(complex(1/float64(count), 0)), nil
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }

// EstimateSignals guesses the number of incoherent sources from the
// eigenvalue profile: eigenvalues within ratio (e.g. 0.1) of the largest
// count as signal. The result is clamped to [1, n-1] so a noise subspace
// always remains.
func EstimateSignals(values []float64, ratio float64) int {
	if len(values) == 0 {
		return 1
	}
	top := values[0]
	count := 0
	for _, v := range values {
		if v > top*ratio {
			count++
		}
	}
	if count < 1 {
		count = 1
	}
	if count > len(values)-1 {
		count = len(values) - 1
	}
	return count
}

// Spectrum is an angular pseudospectrum sampled on a regular grid.
type Spectrum struct {
	// AnglesDeg are the scan angles in degrees relative to broadside.
	AnglesDeg []float64
	// Power is the pseudospectrum value at each angle.
	Power []float64
}

// Pseudospectrum computes the MUSIC pseudospectrum from a spatial covariance
// matrix assuming nSignals incoherent sources (clamped to keep a non-empty
// noise subspace; pass 0 to auto-estimate from the eigenvalue profile).
func (e *Estimator) Pseudospectrum(r *linalg.Matrix, nSignals int) (*Spectrum, error) {
	if r.Rows() != len(e.Offsets) || r.Cols() != len(e.Offsets) {
		return nil, fmt.Errorf("covariance %dx%d for %d elements: %w", r.Rows(), r.Cols(), len(e.Offsets), ErrBadInput)
	}
	eig, err := linalg.EigHermitian(r)
	if err != nil {
		return nil, fmt.Errorf("pseudospectrum: %w", err)
	}
	if nSignals <= 0 {
		nSignals = EstimateSignals(eig.Values, 0.08)
	}
	if nSignals > len(e.Offsets)-1 {
		nSignals = len(e.Offsets) - 1
	}
	en, err := eig.NoiseSubspace(nSignals)
	if err != nil {
		return nil, fmt.Errorf("pseudospectrum: %w", err)
	}
	step, maxDeg, n := e.scanGrid()
	angles := make([]float64, 0, n)
	power := make([]float64, 0, n)
	for gi := 0; gi < n; gi++ {
		a := -maxDeg + float64(gi)*step
		sv := e.Steering(geom.DegToRad(a))
		// denom = ‖Enᴴ a‖².
		var denom float64
		for j := 0; j < en.Cols(); j++ {
			var dot complex128
			for i := 0; i < en.Rows(); i++ {
				dot += conj(en.At(i, j)) * sv[i]
			}
			denom += real(dot)*real(dot) + imag(dot)*imag(dot)
		}
		p := math.Inf(1)
		if denom > 1e-18 {
			p = 1 / denom
		}
		angles = append(angles, a)
		power = append(power, p)
	}
	return &Spectrum{AnglesDeg: angles, Power: power}, nil
}

// Bartlett computes the conventional (delay-and-sum) angular power spectrum
// B(θ) = aᴴ(θ)·R·a(θ). Unlike the MUSIC pseudospectrum, which depends only
// on subspace geometry, the Bartlett spectrum carries the received power per
// direction — the "subcarrier weighted signal strengths ... processed to
// output the angular pseudospectrum" the detector's decision distance runs
// on (§IV-C).
func (e *Estimator) Bartlett(r *linalg.Matrix) (*Spectrum, error) {
	if r.Rows() != len(e.Offsets) || r.Cols() != len(e.Offsets) {
		return nil, fmt.Errorf("covariance %dx%d for %d elements: %w", r.Rows(), r.Cols(), len(e.Offsets), ErrBadInput)
	}
	step, maxDeg, n := e.scanGrid()
	angles := make([]float64, 0, n)
	power := make([]float64, 0, n)
	for gi := 0; gi < n; gi++ {
		a := -maxDeg + float64(gi)*step
		sv := e.Steering(geom.DegToRad(a))
		rv, err := r.MulVec(sv)
		if err != nil {
			return nil, fmt.Errorf("bartlett: %w", err)
		}
		dot, err := sv.Dot(rv)
		if err != nil {
			return nil, fmt.Errorf("bartlett: %w", err)
		}
		angles = append(angles, a)
		power = append(power, real(dot))
	}
	return &Spectrum{AnglesDeg: angles, Power: power}, nil
}

// Normalized returns a copy of the spectrum scaled to unit maximum, making
// spectra from different capture windows comparable.
func (s *Spectrum) Normalized() *Spectrum {
	out := &Spectrum{
		AnglesDeg: append([]float64(nil), s.AnglesDeg...),
		Power:     append([]float64(nil), s.Power...),
	}
	var peak float64
	for _, p := range out.Power {
		if !math.IsInf(p, 1) && p > peak {
			peak = p
		}
	}
	if peak <= 0 {
		return out
	}
	for i, p := range out.Power {
		if math.IsInf(p, 1) {
			out.Power[i] = 1
			continue
		}
		out.Power[i] = p / peak
	}
	return out
}

// NormalizeInPlace scales the spectrum to unit maximum in place — the
// allocation-free form of Normalized, with identical semantics (infinite
// bins map to 1; a spectrum with no positive finite peak is left unchanged).
func (s *Spectrum) NormalizeInPlace() {
	var peak float64
	for _, p := range s.Power {
		if !math.IsInf(p, 1) && p > peak {
			peak = p
		}
	}
	if peak <= 0 {
		return
	}
	for i, p := range s.Power {
		if math.IsInf(p, 1) {
			s.Power[i] = 1
			continue
		}
		s.Power[i] = p / peak
	}
}

// ToDBInPlace converts a power spectrum to decibels in place, flooring at
// 1e-30 (well below any physical level) so downstream distances stay finite.
func (s *Spectrum) ToDBInPlace() {
	for i, p := range s.Power {
		if p < 1e-30 {
			p = 1e-30
		}
		s.Power[i] = 10 * math.Log10(p)
	}
}

// Peak is a local pseudospectrum maximum.
type Peak struct {
	AngleDeg float64
	Power    float64
}

// Peaks returns up to maxPeaks local maxima sorted by descending power.
func (s *Spectrum) Peaks(maxPeaks int) []Peak {
	var peaks []Peak
	n := len(s.Power)
	for i := 0; i < n; i++ {
		left := math.Inf(-1)
		right := math.Inf(-1)
		if i > 0 {
			left = s.Power[i-1]
		}
		if i < n-1 {
			right = s.Power[i+1]
		}
		if s.Power[i] >= left && s.Power[i] > right || (i == n-1 && s.Power[i] > left) {
			peaks = append(peaks, Peak{AngleDeg: s.AnglesDeg[i], Power: s.Power[i]})
		}
	}
	// Insertion sort by power (lists are tiny).
	for i := 1; i < len(peaks); i++ {
		for j := i; j > 0 && peaks[j].Power > peaks[j-1].Power; j-- {
			peaks[j], peaks[j-1] = peaks[j-1], peaks[j]
		}
	}
	if maxPeaks > 0 && len(peaks) > maxPeaks {
		peaks = peaks[:maxPeaks]
	}
	return peaks
}

// DominantAngle returns the angle of the strongest pseudospectrum peak.
func (s *Spectrum) DominantAngle() (float64, error) {
	peaks := s.Peaks(1)
	if len(peaks) == 0 {
		return 0, fmt.Errorf("no peaks: %w", ErrBadInput)
	}
	return peaks[0].AngleDeg, nil
}
