package music

import (
	"errors"
	"math"
	"sync"
	"testing"

	"mlink/internal/linalg"
)

// relDiff is the symmetric relative difference used by the cached-vs-naive
// property assertions.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestScanGridLengthStable pins the index-based grid: its length has a
// closed form for any StepDeg, every angle is -maxDeg + i·step exactly, and
// repeated spectrum computations agree on the grid — the float-accumulation
// loop this replaced could gain or lose a trailing angle depending on step.
func TestScanGridLengthStable(t *testing.T) {
	cases := []struct {
		step, maxDeg float64
		want         int
	}{
		{1, 90, 181}, // default grid: must stay 181 for persisted profiles
		{0.5, 90, 361},
		{0.7, 90, 258}, // 2·90/0.7 = 257.14… → floor+1
		{2.5, 90, 73},
		{0.05, 90, 3601},
		{1, 60, 121},
		{0.1, 45, 901}, // 0.1 is inexact in binary; the 1e-9 guard keeps the endpoint
	}
	for _, tc := range cases {
		est, err := NewEstimator(ulaOffsets(3), lambda)
		if err != nil {
			t.Fatal(err)
		}
		est.StepDeg, est.MaxDeg = tc.step, tc.maxDeg
		if got := est.NumAngles(); got != tc.want {
			t.Errorf("step=%v max=%v: NumAngles=%d, want %d", tc.step, tc.maxDeg, got, tc.want)
		}
		plan, err := est.NewPlan()
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumAngles() != tc.want {
			t.Errorf("step=%v max=%v: plan has %d angles, want %d", tc.step, tc.maxDeg, plan.NumAngles(), tc.want)
		}
		frames := syntheticFrames(t, []float64{10}, []float64{1}, 8, 20, 1)
		r, err := Covariance(frames, nil)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := est.Pseudospectrum(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := est.Bartlett(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(ps.AnglesDeg) != tc.want || len(bs.AnglesDeg) != tc.want {
			t.Errorf("step=%v max=%v: spectra lengths %d/%d, want %d",
				tc.step, tc.maxDeg, len(ps.AnglesDeg), len(bs.AnglesDeg), tc.want)
		}
		for i, a := range plan.anglesDeg {
			if want := -tc.maxDeg + float64(i)*tc.step; a != want {
				t.Fatalf("step=%v angle[%d]=%v, want exactly %v", tc.step, i, a, want)
			}
			if ps.AnglesDeg[i] != a || bs.AnglesDeg[i] != a {
				t.Fatalf("step=%v angle[%d]: plan/pseudo/bartlett disagree: %v/%v/%v",
					tc.step, i, a, ps.AnglesDeg[i], bs.AnglesDeg[i])
			}
		}
	}
}

// TestCovarianceRejectsNegativeWeights covers the naive path and both
// partials-based paths with the same weight-validation table.
func TestCovarianceRejectsNegativeWeights(t *testing.T) {
	frames := syntheticFrames(t, []float64{0}, []float64{1}, 4, 0, 2)
	nSub := frames[0].NumSubcarriers()
	mkWeights := func(bad int) []float64 {
		w := make([]float64, nSub)
		for i := range w {
			w[i] = 1
		}
		if bad >= 0 {
			w[bad] = -0.25
		}
		return w
	}
	for _, bad := range []int{0, 7, nSub - 1} {
		w := mkWeights(bad)
		if _, err := Covariance(frames, w); !errors.Is(err, ErrBadInput) {
			t.Errorf("Covariance(bad=%d): err=%v, want ErrBadInput", bad, err)
		}
		parts, err := NewPartials(frames)
		if err != nil {
			t.Fatal(err)
		}
		var dst linalg.Matrix
		if err := parts.CovarianceInto(&dst, w); !errors.Is(err, ErrBadInput) {
			t.Errorf("Partials.CovarianceInto(bad=%d): err=%v, want ErrBadInput", bad, err)
		}
		if err := CovarianceInto(&dst, frames, w, nil); !errors.Is(err, ErrBadInput) {
			t.Errorf("CovarianceInto(bad=%d): err=%v, want ErrBadInput", bad, err)
		}
	}
	// Sanity: the all-positive control passes everywhere.
	if _, err := Covariance(frames, mkWeights(-1)); err != nil {
		t.Errorf("all-positive weights rejected: %v", err)
	}
}

// TestPartialsCovarianceMatchesNaive asserts the per-subcarrier partials
// identity against the retained naive Covariance, entry by entry, across
// weight shapes (nil, uniform, sparse, zero-heavy).
func TestPartialsCovarianceMatchesNaive(t *testing.T) {
	frames := syntheticFrames(t, []float64{-20, 35}, []float64{1, 0.6}, 12, 15, 3)
	nSub := frames[0].NumSubcarriers()
	sparse := make([]float64, nSub)
	for i := range sparse {
		if i%3 == 0 {
			sparse[i] = float64(i%5) + 0.5
		}
	}
	uniform := make([]float64, nSub)
	for i := range uniform {
		uniform[i] = 0.8
	}
	for name, w := range map[string][]float64{"nil": nil, "uniform": uniform, "sparse": sparse} {
		want, err := Covariance(frames, w)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := NewPartials(frames)
		if err != nil {
			t.Fatal(err)
		}
		if parts.NumFrames() != len(frames) {
			t.Fatalf("%s: NumFrames=%d, want %d", name, parts.NumFrames(), len(frames))
		}
		var got linalg.Matrix
		if err := parts.CovarianceInto(&got, w); err != nil {
			t.Fatal(err)
		}
		var pkgGot linalg.Matrix
		if err := CovarianceInto(&pkgGot, frames, w, &Partials{}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for tag, m := range map[string]*linalg.Matrix{"partials": &got, "package": &pkgGot} {
					d := m.At(i, j) - want.At(i, j)
					scale := math.Max(1e-300, complexAbs(want.At(i, j)))
					if complexAbs(d)/scale > 1e-9 {
						t.Errorf("%s/%s R[%d,%d]=%v, naive %v", name, tag, i, j, m.At(i, j), want.At(i, j))
					}
				}
			}
		}
	}
	// Zero weights must fail identically to the naive path.
	zero := make([]float64, nSub)
	parts, err := NewPartials(frames)
	if err != nil {
		t.Fatal(err)
	}
	var dst linalg.Matrix
	if err := parts.CovarianceInto(&dst, zero); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero weights: err=%v, want ErrBadInput", err)
	}
}

func complexAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// TestPlanIntoMatchesNaive asserts BartlettInto and PseudospectrumInto
// reproduce the naive allocating paths within 1e-9 relative, across step
// sizes and reused destination buffers.
func TestPlanIntoMatchesNaive(t *testing.T) {
	for _, step := range []float64{1, 0.5, 2.5} {
		est, err := NewEstimator(ulaOffsets(3), lambda)
		if err != nil {
			t.Fatal(err)
		}
		est.StepDeg = step
		plan, err := est.NewPlan()
		if err != nil {
			t.Fatal(err)
		}
		var dstB, dstP Spectrum
		var ws linalg.EigWorkspace
		for _, seed := range []int64{1, 5, 9} {
			frames := syntheticFrames(t, []float64{-15, 40}, []float64{1, 0.7}, 10, 18, seed)
			r, err := Covariance(frames, nil)
			if err != nil {
				t.Fatal(err)
			}
			wantB, err := est.Bartlett(r)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.BartlettInto(&dstB, r); err != nil {
				t.Fatal(err)
			}
			compareSpectra(t, "bartlett", &dstB, wantB)
			for _, nSig := range []int{0, 1, 2, 5} {
				wantP, err := est.Pseudospectrum(r, nSig)
				if err != nil {
					t.Fatal(err)
				}
				if err := plan.PseudospectrumInto(&dstP, r, nSig, &ws); err != nil {
					t.Fatal(err)
				}
				compareSpectra(t, "pseudo", &dstP, wantP)
			}
		}
	}
}

func compareSpectra(t *testing.T, tag string, got, want *Spectrum) {
	t.Helper()
	if len(got.Power) != len(want.Power) {
		t.Fatalf("%s: %d angles, want %d", tag, len(got.Power), len(want.Power))
	}
	for i := range got.Power {
		if got.AnglesDeg[i] != want.AnglesDeg[i] {
			t.Fatalf("%s: angle[%d]=%v, want %v", tag, i, got.AnglesDeg[i], want.AnglesDeg[i])
		}
		if math.IsInf(want.Power[i], 1) {
			if !math.IsInf(got.Power[i], 1) {
				t.Fatalf("%s: power[%d]=%v, want +Inf", tag, i, got.Power[i])
			}
			continue
		}
		if relDiff(got.Power[i], want.Power[i]) > 1e-9 {
			t.Fatalf("%s: power[%d]=%v, want %v", tag, i, got.Power[i], want.Power[i])
		}
	}
}

// TestInPlaceSpectrumOpsMatchAllocating pins NormalizeInPlace to Normalized
// and ToDBInPlace to the floored 10·log10 definition, including the
// degenerate inputs Normalized special-cases.
func TestInPlaceSpectrumOpsMatchAllocating(t *testing.T) {
	cases := map[string][]float64{
		"regular":  {1, 4, 2, 0.5},
		"has-inf":  {1, math.Inf(1), 3},
		"all-zero": {0, 0, 0},
		"tiny":     {1e-33, 5e-31, 2e-29},
	}
	for name, pow := range cases {
		angles := make([]float64, len(pow))
		for i := range angles {
			angles[i] = float64(i)
		}
		mk := func() *Spectrum {
			return &Spectrum{AnglesDeg: append([]float64(nil), angles...), Power: append([]float64(nil), pow...)}
		}
		want := mk().Normalized()
		got := mk()
		got.NormalizeInPlace()
		for i := range want.Power {
			if relDiff(got.Power[i], want.Power[i]) > 1e-12 &&
				!(math.IsInf(got.Power[i], 1) && math.IsInf(want.Power[i], 1)) {
				t.Errorf("%s: NormalizeInPlace[%d]=%v, Normalized=%v", name, i, got.Power[i], want.Power[i])
			}
		}
		db := mk()
		db.ToDBInPlace()
		for i, p := range pow {
			if p < 1e-30 {
				p = 1e-30
			}
			if want := 10 * math.Log10(p); relDiff(db.Power[i], want) > 1e-12 &&
				!(math.IsInf(db.Power[i], 1) && math.IsInf(want, 1)) {
				t.Errorf("%s: ToDBInPlace[%d]=%v, want %v", name, i, db.Power[i], want)
			}
		}
	}
}

// TestPlanSharedAcrossGoroutines drives one Plan (and one profile-side
// Partials) from several scorer goroutines with private destination buffers
// and workspaces — the production sharing shape (run under -race in CI).
func TestPlanSharedAcrossGoroutines(t *testing.T) {
	est, err := NewEstimator(ulaOffsets(3), lambda)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := est.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	calFrames := syntheticFrames(t, []float64{25}, []float64{1}, 8, 20, 7)
	shared, err := NewPartials(calFrames)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var cov linalg.Matrix
			var spec Spectrum
			var ws linalg.EigWorkspace
			var scratch Partials
			frames := syntheticFrames(t, []float64{-10}, []float64{1}, 6, 15, int64(100+g))
			for iter := 0; iter < 20; iter++ {
				if err := shared.CovarianceInto(&cov, nil); err != nil {
					errs <- err
					return
				}
				if err := plan.BartlettInto(&spec, &cov); err != nil {
					errs <- err
					return
				}
				if err := CovarianceInto(&cov, frames, nil, &scratch); err != nil {
					errs <- err
					return
				}
				if err := plan.PseudospectrumInto(&spec, &cov, 1, &ws); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPlanIntoAllocFree pins the steady-state claim the benchmarks gate: with
// warmed destinations, the full Into pipeline allocates nothing.
func TestPlanIntoAllocFree(t *testing.T) {
	est, err := NewEstimator(ulaOffsets(3), lambda)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := est.NewPlan()
	if err != nil {
		t.Fatal(err)
	}
	frames := syntheticFrames(t, []float64{5}, []float64{1}, 8, 20, 11)
	var cov linalg.Matrix
	var spec Spectrum
	var ws linalg.EigWorkspace
	var scratch Partials
	run := func() {
		if err := CovarianceInto(&cov, frames, nil, &scratch); err != nil {
			t.Fatal(err)
		}
		if err := plan.BartlettInto(&spec, &cov); err != nil {
			t.Fatal(err)
		}
		if err := plan.PseudospectrumInto(&spec, &cov, 1, &ws); err != nil {
			t.Fatal(err)
		}
		spec.NormalizeInPlace()
		spec.ToDBInPlace()
	}
	run() // warm buffers
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Fatalf("warm Into pipeline allocates %v/op, want 0", allocs)
	}
}
