package music

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/linalg"
	"mlink/internal/propagation"
)

const lambda = propagation.SpeedOfLight / channel.CenterFreqChannel11

func ulaOffsets(n int) []float64 {
	out := make([]float64, n)
	for m := 0; m < n; m++ {
		out[m] = (float64(m) - float64(n-1)/2) * lambda / 2
	}
	return out
}

// syntheticFrames builds CSI frames carrying plane waves from the given
// angles (degrees) with the given amplitudes, plus white noise.
func syntheticFrames(t *testing.T, anglesDeg, amps []float64, nFrames int, snrDB float64, seed int64) []*csi.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	est, err := NewEstimator(ulaOffsets(3), lambda)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]*csi.Frame, 0, nFrames)
	for fi := 0; fi < nFrames; fi++ {
		f := &csi.Frame{
			CSI:  make([][]complex128, 3),
			RSSI: make([]float64, 3),
		}
		for ant := range f.CSI {
			f.CSI[ant] = make([]complex128, 30)
		}
		for k := 0; k < 30; k++ {
			for src := range anglesDeg {
				// Random per-snapshot source phase decorrelates the sources.
				ph := rng.Float64() * 2 * math.Pi
				sv := est.Steering(geom.DegToRad(anglesDeg[src]))
				for ant := 0; ant < 3; ant++ {
					f.CSI[ant][k] += complex(amps[src], 0) * sv[ant] *
						complex(math.Cos(ph), math.Sin(ph))
				}
			}
			if snrDB > 0 {
				sigma := math.Sqrt(math.Pow(10, -snrDB/10) / 2)
				for ant := 0; ant < 3; ant++ {
					f.CSI[ant][k] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
				}
			}
		}
		frames = append(frames, f)
	}
	return frames
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator([]float64{0}, lambda); !errors.Is(err, ErrBadInput) {
		t.Fatalf("1-element err = %v", err)
	}
	if _, err := NewEstimator(ulaOffsets(3), 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("zero wavelength err = %v", err)
	}
}

func TestSteeringBroadside(t *testing.T) {
	est, _ := NewEstimator(ulaOffsets(3), lambda)
	sv := est.Steering(0)
	for m, v := range sv {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("broadside steering[%d] = %v, want 1", m, v)
		}
	}
	// At 90° with λ/2 spacing, adjacent elements differ by π.
	sv90 := est.Steering(math.Pi / 2)
	dphi := phaseOf(sv90[1]) - phaseOf(sv90[0])
	if math.Abs(math.Abs(dphi)-math.Pi) > 1e-9 {
		t.Fatalf("endfire phase step = %v, want ±π", dphi)
	}
}

func phaseOf(v complex128) float64 { return math.Atan2(imag(v), real(v)) }

func TestCovarianceProperties(t *testing.T) {
	frames := syntheticFrames(t, []float64{20}, []float64{1}, 5, 30, 1)
	r, err := Covariance(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != 3 || r.Cols() != 3 {
		t.Fatalf("shape %dx%d", r.Rows(), r.Cols())
	}
	if !r.IsHermitian(1e-9) {
		t.Fatal("covariance not Hermitian")
	}
	tr, _ := r.Trace()
	if real(tr) <= 0 {
		t.Fatalf("trace = %v", tr)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty err = %v", err)
	}
	frames := syntheticFrames(t, []float64{0}, []float64{1}, 2, 30, 2)
	if _, err := Covariance(frames, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("weight len err = %v", err)
	}
	zero := make([]float64, 30)
	if _, err := Covariance(frames, zero); !errors.Is(err, ErrBadInput) {
		t.Fatalf("all-zero weights err = %v", err)
	}
	// Shape mismatch across frames.
	bad := append(frames, &csi.Frame{CSI: [][]complex128{{1}}, RSSI: []float64{0}})
	if _, err := Covariance(bad, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("shape mismatch err = %v", err)
	}
}

func TestPseudospectrumSingleSource(t *testing.T) {
	for _, angle := range []float64{-40, -15, 0, 25, 55} {
		frames := syntheticFrames(t, []float64{angle}, []float64{1}, 10, 30, int64(100+angle))
		r, err := Covariance(frames, nil)
		if err != nil {
			t.Fatal(err)
		}
		est, _ := NewEstimator(ulaOffsets(3), lambda)
		spec, err := est.Pseudospectrum(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := spec.DominantAngle()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-angle) > 3 {
			t.Fatalf("angle %v estimated as %v", angle, got)
		}
	}
}

func TestPseudospectrumTwoSources(t *testing.T) {
	// Two well-separated sources resolvable with 3 antennas.
	frames := syntheticFrames(t, []float64{-30, 40}, []float64{1, 0.8}, 40, 35, 7)
	r, err := Covariance(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := NewEstimator(ulaOffsets(3), lambda)
	spec, err := est.Pseudospectrum(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	peaks := spec.Peaks(2)
	if len(peaks) < 2 {
		t.Fatalf("found %d peaks, want 2", len(peaks))
	}
	found := map[string]bool{}
	for _, p := range peaks {
		if math.Abs(p.AngleDeg-(-30)) < 8 {
			found["a"] = true
		}
		if math.Abs(p.AngleDeg-40) < 8 {
			found["b"] = true
		}
	}
	if !found["a"] || !found["b"] {
		t.Fatalf("peaks %+v do not cover both sources", peaks)
	}
}

func TestPseudospectrumAutoSignals(t *testing.T) {
	frames := syntheticFrames(t, []float64{10}, []float64{1}, 10, 30, 9)
	r, _ := Covariance(frames, nil)
	est, _ := NewEstimator(ulaOffsets(3), lambda)
	spec, err := est.Pseudospectrum(r, 0) // auto-estimate
	if err != nil {
		t.Fatal(err)
	}
	got, _ := spec.DominantAngle()
	if math.Abs(got-10) > 4 {
		t.Fatalf("auto-signal estimate angle = %v", got)
	}
}

func TestPseudospectrumClampsSignals(t *testing.T) {
	frames := syntheticFrames(t, []float64{10}, []float64{1}, 5, 30, 10)
	r, _ := Covariance(frames, nil)
	est, _ := NewEstimator(ulaOffsets(3), lambda)
	// Requesting too many signals must clamp, not fail.
	if _, err := est.Pseudospectrum(r, 10); err != nil {
		t.Fatalf("clamped pseudospectrum err = %v", err)
	}
	// Covariance size mismatch must fail.
	if _, err := est.Pseudospectrum(linalg.NewMatrix(2, 2), 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("size mismatch err = %v", err)
	}
}

func TestEstimateSignals(t *testing.T) {
	tests := []struct {
		values []float64
		want   int
	}{
		{[]float64{10, 0.1, 0.05}, 1},
		{[]float64{10, 5, 0.05}, 2},
		{[]float64{10, 9, 8}, 2}, // clamped to n-1
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
	}
	for _, tc := range tests {
		if got := EstimateSignals(tc.values, 0.08); got != tc.want {
			t.Fatalf("EstimateSignals(%v) = %d, want %d", tc.values, got, tc.want)
		}
	}
}

func TestNormalized(t *testing.T) {
	s := &Spectrum{AnglesDeg: []float64{-1, 0, 1}, Power: []float64{1, 4, 2}}
	n := s.Normalized()
	if n.Power[1] != 1 || n.Power[0] != 0.25 {
		t.Fatalf("normalized = %v", n.Power)
	}
	// Original untouched.
	if s.Power[1] != 4 {
		t.Fatal("Normalized mutated input")
	}
	// Inf handling.
	inf := &Spectrum{AnglesDeg: []float64{0, 1}, Power: []float64{math.Inf(1), 2}}
	ni := inf.Normalized()
	if ni.Power[0] != 1 {
		t.Fatalf("inf normalized = %v", ni.Power)
	}
	// All-zero spectrum survives.
	z := &Spectrum{AnglesDeg: []float64{0}, Power: []float64{0}}
	if zp := z.Normalized(); zp.Power[0] != 0 {
		t.Fatalf("zero normalize = %v", zp.Power)
	}
}

func TestPeaksOrderingAndEdges(t *testing.T) {
	s := &Spectrum{
		AnglesDeg: []float64{-2, -1, 0, 1, 2},
		Power:     []float64{5, 1, 3, 1, 4},
	}
	peaks := s.Peaks(0)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %+v", peaks)
	}
	if peaks[0].Power != 5 || peaks[1].Power != 4 || peaks[2].Power != 3 {
		t.Fatalf("peak order wrong: %+v", peaks)
	}
	top := s.Peaks(1)
	if len(top) != 1 || top[0].AngleDeg != -2 {
		t.Fatalf("top peak = %+v", top)
	}
	empty := &Spectrum{}
	if _, err := empty.DominantAngle(); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty dominant err = %v", err)
	}
}

// TestEndToEndAoAFromRayTracer is the key integration test: CSI generated by
// the physical simulator must yield a MUSIC LOS peak at the geometric angle.
func TestEndToEndAoAFromRayTracer(t *testing.T) {
	room, err := propagation.RectRoom(8, 8, propagation.Material{Name: "absorber", Reflectivity: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Array at (6,4) facing -x; TX placed so the LOS arrives at +25° from
	// broadside: direction from array to TX = π - 25°.
	arr, err := propagation.NewULA(geom.Point{X: 6, Y: 4}, math.Pi, 3, lambda/2)
	if err != nil {
		t.Fatal(err)
	}
	want := 25.0
	dir := math.Pi + geom.DegToRad(want)
	tx := geom.Point{X: 6 + 3*math.Cos(dir), Y: 4 + 3*math.Sin(dir)}
	env, err := propagation.NewEnvironment(room, tx, arr, propagation.DefaultLinkParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := channel.NewIntel5300Grid(channel.CenterFreqChannel11)
	if err != nil {
		t.Fatal(err)
	}
	x, err := csi.NewExtractor(env, grid, csi.Impairments{SNRdB: 30, NoiseEnabled: true, RandomCommonPhase: true}, 50, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	frames := x.CaptureN(20, nil)
	r, err := Covariance(frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewEstimator(arr.Offsets(), lambda)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := est.Pseudospectrum(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := spec.DominantAngle()
	if err != nil {
		t.Fatal(err)
	}
	relWant := arr.RelativeAngle(tx.Sub(arr.Center).Angle())
	if math.Abs(geom.RadToDeg(relWant)-want) > 1e-6 {
		t.Fatalf("test geometry broken: relative angle %v", geom.RadToDeg(relWant))
	}
	if math.Abs(got-want) > 4 {
		t.Fatalf("AoA = %v°, want ≈%v°", got, want)
	}
}

func TestWeightedCovarianceFocusesSubcarriers(t *testing.T) {
	// Weighting one subcarrier to zero removes its snapshots: construct
	// frames where subcarrier 0 carries a -60° source and the rest carry a
	// +30° source; zeroing subcarrier 0 must leave only the +30° peak.
	est, _ := NewEstimator(ulaOffsets(3), lambda)
	rng := rand.New(rand.NewSource(21))
	frames := make([]*csi.Frame, 10)
	for fi := range frames {
		f := &csi.Frame{CSI: make([][]complex128, 3), RSSI: make([]float64, 3)}
		for ant := range f.CSI {
			f.CSI[ant] = make([]complex128, 30)
		}
		for k := 0; k < 30; k++ {
			angle := 30.0
			if k == 0 {
				angle = -60
			}
			ph := rng.Float64() * 2 * math.Pi
			sv := est.Steering(geom.DegToRad(angle))
			for ant := 0; ant < 3; ant++ {
				f.CSI[ant][k] = sv[ant] * complex(math.Cos(ph), math.Sin(ph))
			}
		}
		frames[fi] = f
	}
	w := make([]float64, 30)
	for i := range w {
		w[i] = 1
	}
	w[0] = 0
	r, err := Covariance(frames, w)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := est.Pseudospectrum(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := spec.DominantAngle()
	if math.Abs(got-30) > 3 {
		t.Fatalf("weighted dominant angle = %v, want 30", got)
	}
}
