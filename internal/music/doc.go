// Package music implements the MUltiple SIgnal Classification (MUSIC)
// angle-of-arrival estimator the paper uses (§IV-B1, Eq. 16, reference
// [23]): the spatial covariance of per-antenna CSI snapshots is
// eigendecomposed, the eigenvectors beyond the signal count span the noise
// subspace, and arrival angles appear as peaks of the angular
// pseudospectrum P(θ) = 1/(aᴴ(θ)·En·Enᴴ·a(θ)). A Bartlett (conventional
// beamformer) spectrum over the same steering vectors backs the detector's
// angular power comparison.
//
// Two call surfaces coexist. Estimator.Pseudospectrum/Bartlett and
// Covariance are the allocating reference paths — simple, self-contained,
// and retained as the oracle the property tests pin the fast paths to. The
// scoring hot path instead uses the precomputed/in-place surface: a Plan
// caches the steering-vector table for the scan grid once per link (shared
// read-only across goroutines) and writes spectra into caller-owned buffers
// via BartlettInto/PseudospectrumInto; Partials caches a fixed frame set's
// per-subcarrier snapshot outer products so a weighted covariance becomes a
// per-subcarrier combine (CovarianceInto) instead of a sweep over every
// frame; NormalizeInPlace/ToDBInPlace avoid spectrum copies. Both surfaces
// share one scan-grid definition (index-stepped, so the grid length is a
// closed form of StepDeg/MaxDeg) and produce identical angle axes.
package music
