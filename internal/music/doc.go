// Package music implements the MUltiple SIgnal Classification (MUSIC)
// angle-of-arrival estimator the paper uses (§IV-B1, Eq. 16, reference
// [23]): the spatial covariance of per-antenna CSI snapshots is
// eigendecomposed, the eigenvectors beyond the signal count span the noise
// subspace, and arrival angles appear as peaks of the angular
// pseudospectrum P(θ) = 1/(aᴴ(θ)·En·Enᴴ·a(θ)). A Bartlett (conventional
// beamformer) spectrum over the same steering vectors backs the detector's
// angular power comparison.
package music
