package music

import (
	"fmt"
	"math"

	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/linalg"
)

// Plan is the precomputed, immutable side of angular scoring: the scan grid
// and the full steering-vector table a(θ) for every grid angle, built once
// from an Estimator's parameters. The per-window trigonometry of the naive
// Pseudospectrum/Bartlett paths (nAngles × nAnt sin/cos pairs per spectrum)
// disappears into the table, and the Into methods below write spectra into
// caller-owned buffers — a scoring worker holding a Plan computes angular
// spectra with zero allocations.
//
// A Plan is read-only after construction and safe to share between
// goroutines; it is meant to live on a long-lived owner (core.Kernel builds
// one per path-weighted link).
type Plan struct {
	nAnt      int
	anglesDeg []float64
	// steer is the row-major steering table: row i (nAnt entries) is
	// a(anglesDeg[i]), bit-identical to Steering(DegToRad(anglesDeg[i])).
	steer []complex128
}

// NewPlan precomputes the steering table for the estimator's scan grid.
func (e *Estimator) NewPlan() (*Plan, error) {
	if len(e.Offsets) < 2 {
		return nil, fmt.Errorf("need ≥2 elements, got %d: %w", len(e.Offsets), ErrBadInput)
	}
	if e.Wavelength <= 0 {
		return nil, fmt.Errorf("wavelength %v: %w", e.Wavelength, ErrBadInput)
	}
	step, maxDeg, n := e.scanGrid()
	p := &Plan{
		nAnt:      len(e.Offsets),
		anglesDeg: make([]float64, n),
		steer:     make([]complex128, n*len(e.Offsets)),
	}
	for i := 0; i < n; i++ {
		a := -maxDeg + float64(i)*step
		p.anglesDeg[i] = a
		s := math.Sin(geom.DegToRad(a))
		row := p.steer[i*p.nAnt : (i+1)*p.nAnt]
		for m, off := range e.Offsets {
			phi := 2 * math.Pi * off * s / e.Wavelength
			row[m] = complex(math.Cos(phi), math.Sin(phi))
		}
	}
	return p, nil
}

// NumAngles returns the scan-grid length.
func (p *Plan) NumAngles() int { return len(p.anglesDeg) }

// NumAntennas returns the array size the plan was built for.
func (p *Plan) NumAntennas() int { return p.nAnt }

// reuseSpectrum sizes dst for the plan's grid and copies the angle axis.
func (p *Plan) reuseSpectrum(dst *Spectrum) {
	dst.AnglesDeg = append(dst.AnglesDeg[:0], p.anglesDeg...)
	if cap(dst.Power) < len(p.anglesDeg) {
		dst.Power = make([]float64, len(p.anglesDeg))
	}
	dst.Power = dst.Power[:len(p.anglesDeg)]
}

// ReserveSpectrum pre-sizes dst for the plan's scan grid, so the first
// BartlettInto/PseudospectrumInto on a fresh spectrum allocates nothing.
func (p *Plan) ReserveSpectrum(dst *Spectrum) {
	if dst == nil {
		return
	}
	p.reuseSpectrum(dst)
}

// BartlettInto computes the conventional angular power spectrum
// B(θ) = aᴴ(θ)·R·a(θ) over the cached steering table into dst, allocating
// nothing once dst has warmed. Steering rows have unit-modulus entries, so
// aᴴRa = tr(R) + 2·Re Σ_{i<j} conj(a_i)·R_ij·a_j: the diagonal contributes
// the angle-independent trace and each angle costs only the strict upper
// triangle — no per-angle MulVec/Dot temporaries.
func (p *Plan) BartlettInto(dst *Spectrum, r *linalg.Matrix) error {
	if dst == nil {
		return fmt.Errorf("nil spectrum: %w", ErrBadInput)
	}
	if r.Rows() != p.nAnt || r.Cols() != p.nAnt {
		return fmt.Errorf("covariance %dx%d for %d elements: %w", r.Rows(), r.Cols(), p.nAnt, ErrBadInput)
	}
	p.reuseSpectrum(dst)
	nAnt := p.nAnt
	var tr float64
	for i := 0; i < nAnt; i++ {
		tr += real(r.At(i, i))
	}
	// Hoist the strict upper triangle once so the angle loop indexes a small
	// dense slice instead of recomputing matrix offsets per angle. Arrays up
	// to 6 elements fit the stack buffer; larger ones (not a hot path here)
	// pay one allocation.
	var upArr [16]complex128
	tri := nAnt * (nAnt - 1) / 2
	up := upArr[:0]
	if tri > len(upArr) {
		up = make([]complex128, 0, tri)
	}
	for i := 0; i < nAnt-1; i++ {
		for j := i + 1; j < nAnt; j++ {
			up = append(up, r.At(i, j))
		}
	}
	for ai := range dst.Power {
		row := p.steer[ai*nAnt : (ai+1)*nAnt]
		var cross complex128
		t := 0
		for i := 0; i < nAnt-1; i++ {
			ci := conj(row[i])
			for j := i + 1; j < nAnt; j++ {
				cross += ci * up[t] * row[j]
				t++
			}
		}
		dst.Power[ai] = tr + 2*real(cross)
	}
	return nil
}

// PseudospectrumInto computes the MUSIC pseudospectrum over the cached
// steering table into dst, running the eigensolver through the caller's
// workspace (nil allocates a transient one). Semantics match the naive
// Pseudospectrum: nSignals ≤ 0 auto-estimates from the eigenvalue profile,
// and the count is clamped to keep a non-empty noise subspace.
func (p *Plan) PseudospectrumInto(dst *Spectrum, r *linalg.Matrix, nSignals int, ws *linalg.EigWorkspace) error {
	if dst == nil {
		return fmt.Errorf("nil spectrum: %w", ErrBadInput)
	}
	if r.Rows() != p.nAnt || r.Cols() != p.nAnt {
		return fmt.Errorf("covariance %dx%d for %d elements: %w", r.Rows(), r.Cols(), p.nAnt, ErrBadInput)
	}
	if ws == nil {
		ws = &linalg.EigWorkspace{}
	}
	eig, err := ws.EigHermitian(r)
	if err != nil {
		return fmt.Errorf("pseudospectrum: %w", err)
	}
	if nSignals <= 0 {
		nSignals = EstimateSignals(eig.Values, 0.08)
	}
	if nSignals > p.nAnt-1 {
		nSignals = p.nAnt - 1
	}
	p.reuseSpectrum(dst)
	nAnt := p.nAnt
	vecs := eig.Vectors
	for ai := range dst.Power {
		row := p.steer[ai*nAnt : (ai+1)*nAnt]
		// denom = ‖Enᴴ a‖², read straight off the noise-subspace columns.
		var denom float64
		for j := nSignals; j < nAnt; j++ {
			var dot complex128
			for i := 0; i < nAnt; i++ {
				dot += conj(vecs.At(i, j)) * row[i]
			}
			denom += real(dot)*real(dot) + imag(dot)*imag(dot)
		}
		if denom > 1e-18 {
			dst.Power[ai] = 1 / denom
		} else {
			dst.Power[ai] = math.Inf(1)
		}
	}
	return nil
}

// Partials are per-subcarrier snapshot outer-product sums over a fixed frame
// set: sums_k = Σ_f x_{f,k}·x_{f,k}ᴴ, stored as nAnt(nAnt+1)/2 upper-triangle
// planes of nSub entries. The weighted spatial covariance of those same
// frames then collapses to a per-subcarrier combine,
//
//	R = (1/(F·nnz(w))) · Σ_k w_k² · sums_k,
//
// matching Covariance's snapshot count (F frames × nonzero-weighted
// subcarriers). The §IV-C scoring hot path exploits this twice: a profile's
// frames are immutable, so their partials are accumulated once at
// calibration and re-combined with every window's fresh weights at
// O(nSub·nAnt²) instead of O(F·nSub·nAnt²); and the monitoring window's own
// covariance accumulates through a scratch Partials, touching each snapshot
// without per-snapshot weight scaling.
//
// The zero value is ready to use; Accumulate sizes (and reuses) the backing
// storage. A Partials is read-only after accumulation and safe to share
// between goroutines as long as no further Accumulate runs.
type Partials struct {
	nAnt, nSub, frames int
	sums               []complex128
}

// Reserve pre-sizes the backing storage for an nAnt×nSub frame set without
// accumulating anything, so a scoring worker can pay the allocation before
// entering its steady state (e.g. when a link first lands on a shard).
// Contents are left undefined; Accumulate still fully rewrites them.
func (p *Partials) Reserve(nAnt, nSub int) {
	if nAnt <= 0 || nSub <= 0 {
		return
	}
	if tri := nAnt * (nAnt + 1) / 2; cap(p.sums) < tri*nSub {
		p.sums = make([]complex128, tri*nSub)
	}
}

// NewPartials accumulates the partials of a frame set.
func NewPartials(frames []*csi.Frame) (*Partials, error) {
	p := &Partials{}
	if err := p.Accumulate(frames); err != nil {
		return nil, err
	}
	return p, nil
}

// NumFrames returns the number of accumulated frames.
func (p *Partials) NumFrames() int { return p.frames }

// Accumulate rebuilds the partials from a frame set, replacing any previous
// contents and reusing the backing storage.
func (p *Partials) Accumulate(frames []*csi.Frame) error {
	if len(frames) == 0 {
		return fmt.Errorf("no frames: %w", ErrBadInput)
	}
	nAnt := frames[0].NumAntennas()
	nSub := frames[0].NumSubcarriers()
	if nAnt == 0 || nSub == 0 {
		return fmt.Errorf("empty frame: %w", ErrBadInput)
	}
	tri := nAnt * (nAnt + 1) / 2
	if cap(p.sums) < tri*nSub {
		p.sums = make([]complex128, tri*nSub)
	}
	p.sums = p.sums[:tri*nSub]
	for i := range p.sums {
		p.sums[i] = 0
	}
	for fi, f := range frames {
		if f.NumAntennas() != nAnt || f.NumSubcarriers() != nSub {
			return fmt.Errorf("frame %d shape %dx%d differs from %dx%d: %w",
				fi, f.NumAntennas(), f.NumSubcarriers(), nAnt, nSub, ErrBadInput)
		}
		t := 0
		for i := 0; i < nAnt; i++ {
			xi := f.CSI[i]
			// Diagonal plane (i,i): |x|² sums, exactly real.
			plane := p.sums[t*nSub : (t+1)*nSub]
			for k, v := range xi {
				re, im := real(v), imag(v)
				plane[k] += complex(re*re+im*im, 0)
			}
			t++
			for j := i + 1; j < nAnt; j++ {
				xj := f.CSI[j]
				plane := p.sums[t*nSub : (t+1)*nSub]
				for k, v := range xi {
					plane[k] += v * conj(xj[k])
				}
				t++
			}
		}
	}
	p.nAnt, p.nSub, p.frames = nAnt, nSub, len(frames)
	return nil
}

// CovarianceInto combines the partials with per-subcarrier weights into the
// caller-owned covariance matrix (Covariance semantics: nil weights are
// uniform, a zero weight drops the subcarrier's snapshots from the count,
// negative weights are rejected). Only the upper triangle is computed; the
// lower is mirrored by conjugation.
func (p *Partials) CovarianceInto(dst *linalg.Matrix, weights []float64) error {
	if dst == nil {
		return fmt.Errorf("nil covariance: %w", ErrBadInput)
	}
	if p.frames == 0 {
		return fmt.Errorf("no frames: %w", ErrBadInput)
	}
	if weights != nil && len(weights) != p.nSub {
		return fmt.Errorf("%d weights for %d subcarriers: %w", len(weights), p.nSub, ErrBadInput)
	}
	nnz := p.nSub
	if weights != nil {
		nnz = 0
		for k, w := range weights {
			if w < 0 {
				return fmt.Errorf("negative weight %v at subcarrier %d: %w", w, k, ErrBadInput)
			}
			if w != 0 {
				nnz++
			}
		}
	}
	count := p.frames * nnz
	if count == 0 {
		return fmt.Errorf("all snapshots zero-weighted: %w", ErrBadInput)
	}
	dst.Reuse(p.nAnt, p.nAnt)
	inv := complex(1/float64(count), 0)
	t := 0
	for i := 0; i < p.nAnt; i++ {
		for j := i; j < p.nAnt; j++ {
			plane := p.sums[t*p.nSub : (t+1)*p.nSub]
			var acc complex128
			if weights == nil {
				for _, v := range plane {
					acc += v
				}
			} else {
				for k, v := range plane {
					if w := weights[k]; w != 0 {
						acc += complex(w*w, 0) * v
					}
				}
			}
			acc *= inv
			dst.Set(i, j, acc)
			if i != j {
				dst.Set(j, i, conj(acc))
			}
			t++
		}
	}
	return nil
}

// CovarianceInto is Covariance writing into a caller-owned matrix, using
// scratch as the per-subcarrier accumulation buffer (nil allocates a
// transient one). It is the allocation-free monitor-window covariance of the
// scoring hot path: accumulate the window's partials, then weight-combine.
func CovarianceInto(dst *linalg.Matrix, frames []*csi.Frame, weights []float64, scratch *Partials) error {
	if scratch == nil {
		scratch = &Partials{}
	}
	if err := scratch.Accumulate(frames); err != nil {
		return err
	}
	return scratch.CovarianceInto(dst, weights)
}
