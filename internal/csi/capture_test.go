package csi

import (
	"math/cmplx"
	"testing"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/geom"
)

// TestCaptureMatchesNaive drives the cached (Capture/CaptureInto) and naive
// (CaptureNaive) paths from identically-seeded extractors: both consume
// random variates in the same order, so frames must agree to float roundoff
// (quantization snaps both to the same levels in practice).
func TestCaptureMatchesNaive(t *testing.T) {
	bodies := []body.Body{body.Default(geom.Point{X: 3, Y: 4.2})}
	for name, bs := range map[string][]body.Body{"empty": nil, "occupied": bodies} {
		t.Run(name, func(t *testing.T) {
			cached := newExtractor(t, DefaultImpairments(), 42)
			naive := newExtractor(t, DefaultImpairments(), 42)
			for pkt := 0; pkt < 20; pkt++ {
				cf := cached.Capture(bs)
				nf := naive.CaptureNaive(bs)
				if cf.Seq != nf.Seq || cf.TimestampMicros != nf.TimestampMicros {
					t.Fatalf("pkt %d: stamp mismatch %d/%d vs %d/%d", pkt, cf.Seq, cf.TimestampMicros, nf.Seq, nf.TimestampMicros)
				}
				for ant := range cf.CSI {
					for k := range cf.CSI[ant] {
						d := cmplx.Abs(cf.CSI[ant][k] - nf.CSI[ant][k])
						if d > 1e-9 {
							t.Fatalf("pkt %d ant %d sub %d: |cached-naive| = %v", pkt, ant, k, d)
						}
					}
					if dr := cf.RSSI[ant] - nf.RSSI[ant]; dr > 1e-9 || dr < -1e-9 {
						t.Fatalf("pkt %d ant %d: rssi %v vs %v", pkt, ant, cf.RSSI[ant], nf.RSSI[ant])
					}
				}
			}
		})
	}
}

// TestCaptureIntoAllocationFree pins the headline property of the capture
// pipeline: steady-state CaptureInto performs zero allocations.
func TestCaptureIntoAllocationFree(t *testing.T) {
	x := newExtractor(t, DefaultImpairments(), 7)
	bodies := []body.Body{body.Default(geom.Point{X: 3, Y: 4})}
	f := NewFrame(len(x.Env.RX.Elements), x.Grid.Len())
	if err := x.CaptureInto(f, bodies); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := x.CaptureInto(f, bodies); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("CaptureInto allocates %v per call, want 0", allocs)
	}
}

// TestCaptureIntoShapeErrors covers the frame-shape validation.
func TestCaptureIntoShapeErrors(t *testing.T) {
	x := newExtractor(t, Impairments{}, 1)
	if err := x.CaptureInto(NewFrame(1, x.Grid.Len()), nil); err == nil {
		t.Fatal("wrong antenna count accepted")
	}
	if err := x.CaptureInto(NewFrame(len(x.Env.RX.Elements), 4), nil); err == nil {
		t.Fatal("wrong subcarrier count accepted")
	}
	if err := x.CaptureInto(NewFrame(len(x.Env.RX.Elements), x.Grid.Len()), nil); err != nil {
		t.Fatalf("correct shape rejected: %v", err)
	}
}

// TestCaptureIntoSharedEnvDifferentGrids pins the cross-grid guard: two
// extractors on different grids sharing one environment must each
// synthesize at their own frequencies — the later extractor's PrepareGrid
// rebuilds the shared cache, and the earlier one must detect the mismatch
// and re-prepare rather than reading phasors for the wrong grid.
func TestCaptureIntoSharedEnvDifferentGrids(t *testing.T) {
	env := testEnv(t)
	gridA := testGrid(t)
	gridB, err := channel.NewIntel5300Grid(2.412e9) // channel 1: same length, other freqs
	if err != nil {
		t.Fatal(err)
	}
	// Noiseless, impairment-free extractors so captures equal the raw
	// response and can be compared against the naive reference exactly.
	xa, err := NewExtractor(env, gridA, Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := NewExtractor(env, gridB, Impairments{}, 50, nil) // re-prepares the shared cache
	if err != nil {
		t.Fatal(err)
	}
	fa := xa.Capture(nil) // must notice the cache now belongs to gridB
	fb := xb.Capture(nil)
	wantA := env.Response(gridA.Frequencies(), nil)
	wantB := env.Response(gridB.Frequencies(), nil)
	for ant := range fa.CSI {
		for k := range fa.CSI[ant] {
			if d := cmplx.Abs(fa.CSI[ant][k] - wantA[ant][k]); d > 1e-9 {
				t.Fatalf("grid A ant %d sub %d: diverges by %v", ant, k, d)
			}
			if d := cmplx.Abs(fb.CSI[ant][k] - wantB[ant][k]); d > 1e-9 {
				t.Fatalf("grid B ant %d sub %d: diverges by %v", ant, k, d)
			}
		}
	}
}

// TestNewFrameShape verifies NewFrame builds a valid frame whose rows are
// full-capacity slices (no row can append over its neighbour in the shared
// backing array).
func TestNewFrameShape(t *testing.T) {
	f := NewFrame(3, 30)
	if err := f.Validate(); err != nil {
		t.Fatalf("fresh frame invalid: %v", err)
	}
	for i := 0; i < 3; i++ {
		if len(f.CSI[i]) != 30 || cap(f.CSI[i]) != 30 {
			t.Fatalf("row %d len/cap = %d/%d, want 30/30", i, len(f.CSI[i]), cap(f.CSI[i]))
		}
	}
}

// TestFramePoolRecycling checks Get/Put round-trips and that foreign-shaped
// frames are dropped rather than poisoning the pool.
func TestFramePoolRecycling(t *testing.T) {
	p := NewFramePool(2, 8)
	f := p.Get()
	if f.NumAntennas() != 2 || f.NumSubcarriers() != 8 {
		t.Fatalf("pool frame shape %dx%d", f.NumAntennas(), f.NumSubcarriers())
	}
	p.Put(f)
	p.Put(nil)               // ignored
	p.Put(NewFrame(3, 8))    // wrong antennas: dropped
	p.Put(NewFrame(2, 4))    // wrong subcarriers: dropped
	for i := 0; i < 4; i++ { // pooled or fresh, shape must hold
		g := p.Get()
		if g.NumAntennas() != 2 || g.NumSubcarriers() != 8 {
			t.Fatalf("recycled frame shape %dx%d", g.NumAntennas(), g.NumSubcarriers())
		}
	}
}

// TestQuantizeInPlaceMatchesQuantize checks the in-place rewrite agrees with
// the allocating reference and handles the all-zero row.
func TestQuantizeInPlaceMatchesQuantize(t *testing.T) {
	h := []complex128{3 + 4i, -0.02 + 0.7i, 0.001 - 2.5i, 0}
	want := quantize(h, 8)
	got := append([]complex128(nil), h...)
	quantizeInPlace(got, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zero := []complex128{0, 0}
	quantizeInPlace(zero, 8)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatalf("zero row mutated: %v", zero)
	}
}
