package csi

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/propagation"
)

// ErrBadFrame reports a malformed CSI frame.
var ErrBadFrame = errors.New("csi: bad frame")

// Frame is one packet's worth of CSI, the unit every detector in this
// repository consumes.
type Frame struct {
	// Seq is the packet sequence number.
	Seq uint32
	// TimestampMicros is the capture time in microseconds since stream
	// start.
	TimestampMicros uint64
	// CSI is the complex channel estimate, indexed [antenna][subcarrier].
	CSI [][]complex128
	// RSSI is the per-antenna received signal strength in dB (10·log10 of
	// the summed subcarrier power).
	RSSI []float64
}

// NewFrame allocates a frame whose CSI rows are slices of one contiguous
// complex backing array — the layout the allocation-free capture pipeline
// and the frame pool rely on.
func NewFrame(nAnt, nSub int) *Frame {
	backing := make([]complex128, nAnt*nSub)
	rows := make([][]complex128, nAnt)
	for i := range rows {
		rows[i] = backing[i*nSub : (i+1)*nSub : (i+1)*nSub]
	}
	return &Frame{CSI: rows, RSSI: make([]float64, nAnt)}
}

// NumAntennas returns the receive-antenna count of the frame.
func (f *Frame) NumAntennas() int { return len(f.CSI) }

// NumSubcarriers returns the subcarrier count of the frame.
func (f *Frame) NumSubcarriers() int {
	if len(f.CSI) == 0 {
		return 0
	}
	return len(f.CSI[0])
}

// Validate checks the frame is rectangular and non-empty.
func (f *Frame) Validate() error {
	if len(f.CSI) == 0 {
		return fmt.Errorf("no antennas: %w", ErrBadFrame)
	}
	n := len(f.CSI[0])
	if n == 0 {
		return fmt.Errorf("no subcarriers: %w", ErrBadFrame)
	}
	for i, row := range f.CSI {
		if len(row) != n {
			return fmt.Errorf("antenna %d has %d subcarriers, want %d: %w", i, len(row), n, ErrBadFrame)
		}
	}
	if len(f.RSSI) != len(f.CSI) {
		return fmt.Errorf("rssi count %d != antenna count %d: %w", len(f.RSSI), len(f.CSI), ErrBadFrame)
	}
	return nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Seq: f.Seq, TimestampMicros: f.TimestampMicros}
	out.CSI = make([][]complex128, len(f.CSI))
	for i, row := range f.CSI {
		out.CSI[i] = append([]complex128(nil), row...)
	}
	out.RSSI = append([]float64(nil), f.RSSI...)
	return out
}

// AmplitudeDB returns 20·log10|CSI| for one antenna.
func (f *Frame) AmplitudeDB(antenna int) []float64 {
	out := make([]float64, len(f.CSI[antenna]))
	for k, v := range f.CSI[antenna] {
		a := cmplx.Abs(v)
		if a <= 0 {
			out[k] = math.Inf(-1)
			continue
		}
		out[k] = 20 * math.Log10(a)
	}
	return out
}

// SubcarrierPower returns |CSI|² per subcarrier for one antenna.
func (f *Frame) SubcarrierPower(antenna int) []float64 {
	out := make([]float64, len(f.CSI[antenna]))
	for k, v := range f.CSI[antenna] {
		re, im := real(v), imag(v)
		out[k] = re*re + im*im
	}
	return out
}

// Impairments configures the hardware error model.
type Impairments struct {
	// SNRdB is the per-subcarrier AWGN signal-to-noise ratio. Zero or
	// negative disables noise (treated as infinite SNR when NoiseEnabled is
	// false).
	SNRdB float64
	// NoiseEnabled gates AWGN injection.
	NoiseEnabled bool
	// MaxSTOSeconds bounds the per-packet sampling-time offset, drawn
	// uniformly in ±MaxSTOSeconds (≈50 ns on real 802.11 hardware).
	MaxSTOSeconds float64
	// AGCJitterDB is the standard deviation of the per-packet common
	// amplitude jitter in dB (white component).
	AGCJitterDB float64
	// AGCDriftDB is the stationary standard deviation (dB) of a slowly
	// varying gain drift, modelled as an Ornstein–Uhlenbeck process with
	// time constant AGCDriftTauPackets packets. Real receive chains drift
	// with temperature and gain-control state; unlike white jitter this
	// does not average out within a monitoring window — it is the
	// "fickleness" of amplitude features the paper's related work cites.
	AGCDriftDB float64
	// AGCDriftTauPackets is the drift correlation length (default 250
	// packets = 5 s at the paper's 50 pkt/s).
	AGCDriftTauPackets float64
	// RandomCommonPhase enables the per-packet uniform [0,2π) oscillator
	// phase offset shared by all antennas.
	RandomCommonPhase bool
	// QuantizationBits, when in [2,16], quantizes real/imag parts to signed
	// integers of that many bits (8 on the Intel 5300). 0 disables.
	QuantizationBits int
}

// DefaultImpairments models a healthy Intel 5300 capture chain.
func DefaultImpairments() Impairments {
	return Impairments{
		SNRdB:              26,
		NoiseEnabled:       true,
		MaxSTOSeconds:      50e-9,
		AGCJitterDB:        0.3,
		AGCDriftDB:         1.2,
		AGCDriftTauPackets: 250,
		RandomCommonPhase:  true,
		QuantizationBits:   8,
	}
}

// Extractor captures CSI frames from a simulated environment, applying the
// impairment model. It is the software stand-in for the CSI Tool's netlink
// export.
type Extractor struct {
	Env        *propagation.Environment
	Grid       *channel.Grid
	Imp        Impairments
	PacketRate float64 // packets per second, for timestamps

	rng      *rand.Rand
	seq      uint32
	agcDrift float64   // current OU drift state in dB
	freqs    []float64 // cached grid frequencies
	resp     propagation.ResponseScratch
}

// NewExtractor builds an extractor; rng drives every stochastic impairment
// and must not be nil when any impairment is enabled. The environment's
// synthesis cache is prepared for the grid here, so every capture rides the
// cached fast path.
func NewExtractor(env *propagation.Environment, grid *channel.Grid, imp Impairments, packetRate float64, rng *rand.Rand) (*Extractor, error) {
	if env == nil {
		return nil, errors.New("csi: nil environment")
	}
	if grid == nil || grid.Len() == 0 {
		return nil, fmt.Errorf("csi: empty grid: %w", channel.ErrBadGrid)
	}
	if packetRate <= 0 {
		packetRate = 50 // the paper pings at 50 packets/s
	}
	if rng == nil && (imp.NoiseEnabled || imp.MaxSTOSeconds > 0 || imp.AGCJitterDB > 0 ||
		imp.AGCDriftDB > 0 || imp.RandomCommonPhase) {
		return nil, errors.New("csi: nil rng with stochastic impairments enabled")
	}
	x := &Extractor{Env: env, Grid: grid, Imp: imp, PacketRate: packetRate, rng: rng,
		freqs: grid.Frequencies()}
	if err := env.PrepareGrid(x.freqs); err != nil {
		return nil, fmt.Errorf("csi: prepare grid: %w", err)
	}
	if imp.AGCDriftDB > 0 {
		// Start the drift in its stationary distribution so the first
		// window is as realistic as the thousandth.
		x.agcDrift = rng.NormFloat64() * imp.AGCDriftDB
	}
	return x, nil
}

// drawImpairments draws the per-packet common impairments (shared across
// antennas) in a fixed order, so the cached and naive capture paths consume
// identical random variates.
func (x *Extractor) drawImpairments() (commonPhase, sto, agc float64) {
	if x.Imp.RandomCommonPhase {
		commonPhase = x.rng.Float64() * 2 * math.Pi
	}
	if x.Imp.MaxSTOSeconds > 0 {
		sto = (x.rng.Float64()*2 - 1) * x.Imp.MaxSTOSeconds
	}
	agcDB := 0.0
	if x.Imp.AGCJitterDB > 0 {
		agcDB += x.rng.NormFloat64() * x.Imp.AGCJitterDB
	}
	if x.Imp.AGCDriftDB > 0 {
		tau := x.Imp.AGCDriftTauPackets
		if tau <= 0 {
			tau = 250
		}
		rho := math.Exp(-1 / tau)
		x.agcDrift = rho*x.agcDrift + math.Sqrt(1-rho*rho)*x.rng.NormFloat64()*x.Imp.AGCDriftDB
		agcDB += x.agcDrift
	}
	return commonPhase, sto, math.Pow(10, agcDB/20)
}

// stamp assigns the frame's sequence number and timestamp.
func (x *Extractor) stamp(f *Frame) {
	f.Seq = x.seq
	f.TimestampMicros = uint64(float64(x.seq) / x.PacketRate * 1e6)
	x.seq++
}

// Capture simulates receiving one packet with the given bodies in the room
// and returns its CSI frame. It rides the cached synthesis path; see
// CaptureInto for the allocation-free variant and CaptureNaive for the
// uncached reference.
func (x *Extractor) Capture(bodies []body.Body) *Frame {
	f := NewFrame(len(x.Env.RX.Elements), x.Grid.Len())
	if err := x.CaptureInto(f, bodies); err != nil {
		// The frame shape and grid are constructed here; failure means a
		// broken invariant, not bad input.
		panic(fmt.Sprintf("csi: capture: %v", err))
	}
	return f
}

// CaptureInto simulates receiving one packet into a caller-provided frame
// (shaped as by NewFrame) without allocating: channel synthesis writes
// directly into the frame's CSI rows via the environment's phasor cache, and
// the impairments — STO/phase rotation, AWGN, quantization — are applied in
// place on the frame's backing array.
func (x *Extractor) CaptureInto(f *Frame, bodies []body.Body) error {
	nAnt := len(x.Env.RX.Elements)
	nSub := x.Grid.Len()
	if len(f.CSI) != nAnt || len(f.RSSI) != nAnt {
		return fmt.Errorf("frame for %d antennas, link has %d: %w", len(f.CSI), nAnt, ErrBadFrame)
	}
	for _, row := range f.CSI {
		if len(row) != nSub {
			return fmt.Errorf("frame row of %d subcarriers, grid has %d: %w", len(row), nSub, ErrBadFrame)
		}
	}
	if !x.Env.PreparedFor(x.freqs) {
		// Another extractor sharing this environment re-prepared its cache
		// for a different grid; rebuild for ours rather than silently
		// synthesizing at the wrong frequencies. (In the common case this
		// check is a 30-float compare and the rebuild never triggers.)
		if err := x.Env.PrepareGrid(x.freqs); err != nil {
			return fmt.Errorf("re-prepare grid: %w", err)
		}
	}
	if err := x.Env.ResponseInto(f.CSI, bodies, &x.resp); err != nil {
		return fmt.Errorf("synthesize: %w", err)
	}
	commonPhase, sto, agc := x.drawImpairments()
	x.stamp(f)
	for ant := 0; ant < nAnt; ant++ {
		row := f.CSI[ant]
		for k := range row {
			// STO phase slope across subcarriers (relative to centre to keep
			// the slope numerically clean) plus the common oscillator phase.
			phi := commonPhase - 2*math.Pi*(x.freqs[k]-x.Grid.Center)*sto
			sin, cos := math.Sincos(phi)
			row[k] *= complex(agc*cos, agc*sin)
		}
		if x.Imp.NoiseEnabled {
			channel.AddAWGNInPlace(row, x.Imp.SNRdB, x.rng)
		}
		if b := x.Imp.QuantizationBits; b >= 2 && b <= 16 {
			quantizeInPlace(row, b)
		}
		f.RSSI[ant] = rssiOf(row)
	}
	return nil
}

// CaptureNaive is the uncached reference capture path: it synthesizes the
// channel with the naive per-ray Response and allocates fresh CSI rows, as
// Capture did before the phasor cache existed. It is kept runnable for the
// cached-vs-naive benchmarks and consistency tests; production callers use
// Capture/CaptureInto.
func (x *Extractor) CaptureNaive(bodies []body.Body) *Frame {
	h := x.Env.Response(x.freqs, bodies)
	commonPhase, sto, agc := x.drawImpairments()

	frame := &Frame{
		CSI:  make([][]complex128, len(h)),
		RSSI: make([]float64, len(h)),
	}
	x.stamp(frame)

	for ant, row := range h {
		out := make([]complex128, len(row))
		for k, v := range row {
			phi := commonPhase - 2*math.Pi*(x.freqs[k]-x.Grid.Center)*sto
			out[k] = v * complex(agc, 0) * cmplx.Exp(complex(0, phi))
		}
		if x.Imp.NoiseEnabled {
			out = channel.AddAWGN(out, x.Imp.SNRdB, x.rng)
		}
		if b := x.Imp.QuantizationBits; b >= 2 && b <= 16 {
			out = quantize(out, b)
		}
		frame.CSI[ant] = out
		frame.RSSI[ant] = rssiOf(out)
	}
	return frame
}

// rssiOf returns the summed subcarrier power of one antenna row in dB.
func rssiOf(row []complex128) float64 {
	var p float64
	for _, v := range row {
		re, im := real(v), imag(v)
		p += re*re + im*im
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// CaptureN captures n consecutive frames with a fixed body configuration.
func (x *Extractor) CaptureN(n int, bodies []body.Body) []*Frame {
	out := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, x.Capture(bodies))
	}
	return out
}

// quantize rounds real/imag parts to signed b-bit integers, returning a new
// slice (the naive capture path).
func quantize(h []complex128, bits int) []complex128 {
	out := append([]complex128(nil), h...)
	quantizeInPlace(out, bits)
	return out
}

// quantizeInPlace rounds real/imag parts to signed b-bit integers with a
// per-antenna scale chosen so the largest component uses the full range,
// then scales back — exactly what the 5300 firmware does with 8 bits. It
// mutates h directly, the allocation-free capture hot path.
func quantizeInPlace(h []complex128, bits int) {
	maxLevel := float64(int(1)<<(bits-1)) - 1 // e.g. 127 for 8 bits
	var peak float64
	for _, v := range h {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if a := math.Abs(imag(v)); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return
	}
	scale := maxLevel / peak
	for i, v := range h {
		re := math.Round(real(v)*scale) / scale
		im := math.Round(imag(v)*scale) / scale
		h[i] = complex(re, im)
	}
}
