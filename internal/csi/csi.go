// Package csi emulates the Channel State Information export path of the
// paper's receiver: an Intel 5300 NIC with the Linux CSI Tool [16]. Each
// captured packet yields an NRX×30 complex CSI matrix plus per-antenna RSSI.
//
// The emulation layers the hardware impairments real CSI exhibits on top of
// the noiseless channel response from internal/propagation:
//
//   - a per-packet common phase offset (residual CFO — identical on all RX
//     chains because they share one oscillator, which is what makes
//     cross-antenna phase usable for AoA),
//   - a per-packet sampling-time offset, i.e. a linear phase slope across
//     subcarriers (what phase sanitization removes),
//   - automatic gain control jitter (a common amplitude scale per packet),
//   - additive white Gaussian noise per subcarrier and antenna,
//   - int8 quantization of the real/imaginary parts, as the 5300 reports.
package csi

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/propagation"
)

// ErrBadFrame reports a malformed CSI frame.
var ErrBadFrame = errors.New("csi: bad frame")

// Frame is one packet's worth of CSI, the unit every detector in this
// repository consumes.
type Frame struct {
	// Seq is the packet sequence number.
	Seq uint32
	// TimestampMicros is the capture time in microseconds since stream
	// start.
	TimestampMicros uint64
	// CSI is the complex channel estimate, indexed [antenna][subcarrier].
	CSI [][]complex128
	// RSSI is the per-antenna received signal strength in dB (10·log10 of
	// the summed subcarrier power).
	RSSI []float64
}

// NumAntennas returns the receive-antenna count of the frame.
func (f *Frame) NumAntennas() int { return len(f.CSI) }

// NumSubcarriers returns the subcarrier count of the frame.
func (f *Frame) NumSubcarriers() int {
	if len(f.CSI) == 0 {
		return 0
	}
	return len(f.CSI[0])
}

// Validate checks the frame is rectangular and non-empty.
func (f *Frame) Validate() error {
	if len(f.CSI) == 0 {
		return fmt.Errorf("no antennas: %w", ErrBadFrame)
	}
	n := len(f.CSI[0])
	if n == 0 {
		return fmt.Errorf("no subcarriers: %w", ErrBadFrame)
	}
	for i, row := range f.CSI {
		if len(row) != n {
			return fmt.Errorf("antenna %d has %d subcarriers, want %d: %w", i, len(row), n, ErrBadFrame)
		}
	}
	if len(f.RSSI) != len(f.CSI) {
		return fmt.Errorf("rssi count %d != antenna count %d: %w", len(f.RSSI), len(f.CSI), ErrBadFrame)
	}
	return nil
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Seq: f.Seq, TimestampMicros: f.TimestampMicros}
	out.CSI = make([][]complex128, len(f.CSI))
	for i, row := range f.CSI {
		out.CSI[i] = append([]complex128(nil), row...)
	}
	out.RSSI = append([]float64(nil), f.RSSI...)
	return out
}

// AmplitudeDB returns 20·log10|CSI| for one antenna.
func (f *Frame) AmplitudeDB(antenna int) []float64 {
	out := make([]float64, len(f.CSI[antenna]))
	for k, v := range f.CSI[antenna] {
		a := cmplx.Abs(v)
		if a <= 0 {
			out[k] = math.Inf(-1)
			continue
		}
		out[k] = 20 * math.Log10(a)
	}
	return out
}

// SubcarrierPower returns |CSI|² per subcarrier for one antenna.
func (f *Frame) SubcarrierPower(antenna int) []float64 {
	out := make([]float64, len(f.CSI[antenna]))
	for k, v := range f.CSI[antenna] {
		re, im := real(v), imag(v)
		out[k] = re*re + im*im
	}
	return out
}

// Impairments configures the hardware error model.
type Impairments struct {
	// SNRdB is the per-subcarrier AWGN signal-to-noise ratio. Zero or
	// negative disables noise (treated as infinite SNR when NoiseEnabled is
	// false).
	SNRdB float64
	// NoiseEnabled gates AWGN injection.
	NoiseEnabled bool
	// MaxSTOSeconds bounds the per-packet sampling-time offset, drawn
	// uniformly in ±MaxSTOSeconds (≈50 ns on real 802.11 hardware).
	MaxSTOSeconds float64
	// AGCJitterDB is the standard deviation of the per-packet common
	// amplitude jitter in dB (white component).
	AGCJitterDB float64
	// AGCDriftDB is the stationary standard deviation (dB) of a slowly
	// varying gain drift, modelled as an Ornstein–Uhlenbeck process with
	// time constant AGCDriftTauPackets packets. Real receive chains drift
	// with temperature and gain-control state; unlike white jitter this
	// does not average out within a monitoring window — it is the
	// "fickleness" of amplitude features the paper's related work cites.
	AGCDriftDB float64
	// AGCDriftTauPackets is the drift correlation length (default 250
	// packets = 5 s at the paper's 50 pkt/s).
	AGCDriftTauPackets float64
	// RandomCommonPhase enables the per-packet uniform [0,2π) oscillator
	// phase offset shared by all antennas.
	RandomCommonPhase bool
	// QuantizationBits, when in [2,16], quantizes real/imag parts to signed
	// integers of that many bits (8 on the Intel 5300). 0 disables.
	QuantizationBits int
}

// DefaultImpairments models a healthy Intel 5300 capture chain.
func DefaultImpairments() Impairments {
	return Impairments{
		SNRdB:              26,
		NoiseEnabled:       true,
		MaxSTOSeconds:      50e-9,
		AGCJitterDB:        0.3,
		AGCDriftDB:         1.2,
		AGCDriftTauPackets: 250,
		RandomCommonPhase:  true,
		QuantizationBits:   8,
	}
}

// Extractor captures CSI frames from a simulated environment, applying the
// impairment model. It is the software stand-in for the CSI Tool's netlink
// export.
type Extractor struct {
	Env        *propagation.Environment
	Grid       *channel.Grid
	Imp        Impairments
	PacketRate float64 // packets per second, for timestamps

	rng      *rand.Rand
	seq      uint32
	agcDrift float64 // current OU drift state in dB
}

// NewExtractor builds an extractor; rng drives every stochastic impairment
// and must not be nil when any impairment is enabled.
func NewExtractor(env *propagation.Environment, grid *channel.Grid, imp Impairments, packetRate float64, rng *rand.Rand) (*Extractor, error) {
	if env == nil {
		return nil, errors.New("csi: nil environment")
	}
	if grid == nil || grid.Len() == 0 {
		return nil, fmt.Errorf("csi: empty grid: %w", channel.ErrBadGrid)
	}
	if packetRate <= 0 {
		packetRate = 50 // the paper pings at 50 packets/s
	}
	if rng == nil && (imp.NoiseEnabled || imp.MaxSTOSeconds > 0 || imp.AGCJitterDB > 0 ||
		imp.AGCDriftDB > 0 || imp.RandomCommonPhase) {
		return nil, errors.New("csi: nil rng with stochastic impairments enabled")
	}
	x := &Extractor{Env: env, Grid: grid, Imp: imp, PacketRate: packetRate, rng: rng}
	if imp.AGCDriftDB > 0 {
		// Start the drift in its stationary distribution so the first
		// window is as realistic as the thousandth.
		x.agcDrift = rng.NormFloat64() * imp.AGCDriftDB
	}
	return x, nil
}

// Capture simulates receiving one packet with the given bodies in the room
// and returns its CSI frame.
func (x *Extractor) Capture(bodies []body.Body) *Frame {
	freqs := x.Grid.Frequencies()
	h := x.Env.Response(freqs, bodies)

	// Per-packet common impairments (shared across antennas).
	commonPhase := 0.0
	if x.Imp.RandomCommonPhase {
		commonPhase = x.rng.Float64() * 2 * math.Pi
	}
	sto := 0.0
	if x.Imp.MaxSTOSeconds > 0 {
		sto = (x.rng.Float64()*2 - 1) * x.Imp.MaxSTOSeconds
	}
	agcDB := 0.0
	if x.Imp.AGCJitterDB > 0 {
		agcDB += x.rng.NormFloat64() * x.Imp.AGCJitterDB
	}
	if x.Imp.AGCDriftDB > 0 {
		tau := x.Imp.AGCDriftTauPackets
		if tau <= 0 {
			tau = 250
		}
		rho := math.Exp(-1 / tau)
		x.agcDrift = rho*x.agcDrift + math.Sqrt(1-rho*rho)*x.rng.NormFloat64()*x.Imp.AGCDriftDB
		agcDB += x.agcDrift
	}
	agc := math.Pow(10, agcDB/20)

	frame := &Frame{
		Seq:             x.seq,
		TimestampMicros: uint64(float64(x.seq) / x.PacketRate * 1e6),
		CSI:             make([][]complex128, len(h)),
		RSSI:            make([]float64, len(h)),
	}
	x.seq++

	for ant, row := range h {
		out := make([]complex128, len(row))
		for k, v := range row {
			// STO phase slope across subcarriers (relative to centre to keep
			// the slope numerically clean) plus the common oscillator phase.
			phi := commonPhase - 2*math.Pi*(freqs[k]-x.Grid.Center)*sto
			out[k] = v * complex(agc, 0) * cmplx.Exp(complex(0, phi))
		}
		if x.Imp.NoiseEnabled {
			out = channel.AddAWGN(out, x.Imp.SNRdB, x.rng)
		}
		if b := x.Imp.QuantizationBits; b >= 2 && b <= 16 {
			out = quantize(out, b)
		}
		frame.CSI[ant] = out
		var p float64
		for _, v := range out {
			re, im := real(v), imag(v)
			p += re*re + im*im
		}
		if p > 0 {
			frame.RSSI[ant] = 10 * math.Log10(p)
		} else {
			frame.RSSI[ant] = math.Inf(-1)
		}
	}
	return frame
}

// CaptureN captures n consecutive frames with a fixed body configuration.
func (x *Extractor) CaptureN(n int, bodies []body.Body) []*Frame {
	out := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, x.Capture(bodies))
	}
	return out
}

// quantize rounds real/imag parts to signed b-bit integers with a per-frame
// scale chosen so the largest component uses the full range, then scales
// back — exactly what the 5300 firmware does with 8 bits.
func quantize(h []complex128, bits int) []complex128 {
	maxLevel := float64(int(1)<<(bits-1)) - 1 // e.g. 127 for 8 bits
	var peak float64
	for _, v := range h {
		if a := math.Abs(real(v)); a > peak {
			peak = a
		}
		if a := math.Abs(imag(v)); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		return append([]complex128(nil), h...)
	}
	scale := maxLevel / peak
	out := make([]complex128, len(h))
	for i, v := range h {
		re := math.Round(real(v)*scale) / scale
		im := math.Round(imag(v)*scale) / scale
		out[i] = complex(re, im)
	}
	return out
}
