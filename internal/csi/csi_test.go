package csi

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mlink/internal/body"
	"mlink/internal/channel"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

func testEnv(t *testing.T) *propagation.Environment {
	t.Helper()
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		t.Fatal(err)
	}
	lambda := propagation.SpeedOfLight / channel.CenterFreqChannel11
	rx, err := propagation.NewULA(geom.Point{X: 5, Y: 4}, math.Pi, 3, lambda/2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := propagation.NewEnvironment(room, geom.Point{X: 1, Y: 4}, rx, propagation.DefaultLinkParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func testGrid(t *testing.T) *channel.Grid {
	t.Helper()
	g, err := channel.NewIntel5300Grid(channel.CenterFreqChannel11)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newExtractor(t *testing.T, imp Impairments, seed int64) *Extractor {
	t.Helper()
	x, err := NewExtractor(testEnv(t), testGrid(t), imp, 50, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestCaptureShape(t *testing.T) {
	x := newExtractor(t, DefaultImpairments(), 1)
	f := x.Capture(nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid frame: %v", err)
	}
	if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
		t.Fatalf("shape %dx%d", f.NumAntennas(), f.NumSubcarriers())
	}
	if len(f.RSSI) != 3 {
		t.Fatalf("rssi len = %d", len(f.RSSI))
	}
	for _, r := range f.RSSI {
		if math.IsInf(r, 0) || math.IsNaN(r) {
			t.Fatalf("rssi = %v", f.RSSI)
		}
	}
}

func TestCaptureSequencing(t *testing.T) {
	x := newExtractor(t, DefaultImpairments(), 2)
	f0 := x.Capture(nil)
	f1 := x.Capture(nil)
	if f0.Seq != 0 || f1.Seq != 1 {
		t.Fatalf("seqs = %d %d", f0.Seq, f1.Seq)
	}
	// 50 pkt/s → 20 ms per packet.
	if f1.TimestampMicros-f0.TimestampMicros != 20000 {
		t.Fatalf("timestamps = %d %d", f0.TimestampMicros, f1.TimestampMicros)
	}
}

func TestCaptureNoiseless(t *testing.T) {
	imp := Impairments{} // everything off
	x, err := NewExtractor(testEnv(t), testGrid(t), imp, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	f0 := x.Capture(nil)
	f1 := x.Capture(nil)
	// Without impairments, consecutive captures of a static room agree.
	for ant := range f0.CSI {
		for k := range f0.CSI[ant] {
			if f0.CSI[ant][k] != f1.CSI[ant][k] {
				t.Fatalf("noiseless captures differ at [%d][%d]", ant, k)
			}
		}
	}
}

func TestNilRNGRejectedWithImpairments(t *testing.T) {
	if _, err := NewExtractor(testEnv(t), testGrid(t), DefaultImpairments(), 50, nil); err == nil {
		t.Fatal("nil rng accepted with impairments")
	}
	if _, err := NewExtractor(nil, testGrid(t), Impairments{}, 50, nil); err == nil {
		t.Fatal("nil env accepted")
	}
	if _, err := NewExtractor(testEnv(t), nil, Impairments{}, 50, nil); !errors.Is(err, channel.ErrBadGrid) {
		t.Fatalf("nil grid err = %v", err)
	}
}

func TestCommonPhaseIsCommonAcrossAntennas(t *testing.T) {
	// With only the common phase enabled, the inter-antenna phase
	// difference must be impairment-free.
	clean, err := NewExtractor(testEnv(t), testGrid(t), Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	dirty := newExtractor(t, Impairments{RandomCommonPhase: true}, 3)
	fc := clean.Capture(nil)
	fd := dirty.Capture(nil)
	for k := 0; k < fc.NumSubcarriers(); k++ {
		want := cmplx.Phase(fc.CSI[1][k] / fc.CSI[0][k])
		got := cmplx.Phase(fd.CSI[1][k] / fd.CSI[0][k])
		if math.Abs(want-got) > 1e-9 {
			t.Fatalf("inter-antenna phase changed at %d: %v vs %v", k, got, want)
		}
	}
}

func TestSTOAddsLinearPhaseSlope(t *testing.T) {
	clean, err := NewExtractor(testEnv(t), testGrid(t), Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	dirty := newExtractor(t, Impairments{MaxSTOSeconds: 50e-9}, 4)
	fc := clean.Capture(nil)
	fd := dirty.Capture(nil)
	// The phase error must be (approximately) linear in subcarrier
	// frequency: check the second difference of the error is ≈0.
	idx := channel.Intel5300Indices()
	errPhase := make([]float64, len(idx))
	for k := range idx {
		errPhase[k] = cmplx.Phase(fd.CSI[0][k] / fc.CSI[0][k])
	}
	// Unwrap.
	for k := 1; k < len(errPhase); k++ {
		for errPhase[k]-errPhase[k-1] > math.Pi {
			errPhase[k] -= 2 * math.Pi
		}
		for errPhase[k]-errPhase[k-1] < -math.Pi {
			errPhase[k] += 2 * math.Pi
		}
	}
	// Fit slope against index and check residuals are tiny.
	var sx, sy, sxx, sxy float64
	for k, v := range idx {
		x := float64(v)
		sx += x
		sy += errPhase[k]
		sxx += x * x
		sxy += x * errPhase[k]
	}
	n := float64(len(idx))
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	for k, v := range idx {
		res := errPhase[k] - (slope*float64(v) + intercept)
		if math.Abs(res) > 1e-6 {
			t.Fatalf("sto phase not linear at %d: residual %v", k, res)
		}
	}
	if slope == 0 {
		t.Fatal("sto produced no slope")
	}
}

func TestQuantization(t *testing.T) {
	in := []complex128{complex(1, -0.5), complex(0.3, 0.7)}
	out := quantize(in, 8)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	// Quantization error bounded by half a step: peak=1 → step = 1/127.
	for i := range in {
		if math.Abs(real(out[i])-real(in[i])) > 0.5/127+1e-12 {
			t.Fatalf("re error too large at %d", i)
		}
		if math.Abs(imag(out[i])-imag(in[i])) > 0.5/127+1e-12 {
			t.Fatalf("im error too large at %d", i)
		}
	}
	// Zero input passes through.
	z := quantize([]complex128{0, 0}, 8)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero quantize = %v", z)
	}
}

func TestQuantizationCoarserMoreError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := make([]complex128, 100)
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	errAt := func(bits int) float64 {
		out := quantize(in, bits)
		var sum float64
		for i := range in {
			sum += cmplx.Abs(out[i] - in[i])
		}
		return sum
	}
	if errAt(4) <= errAt(12) {
		t.Fatal("4-bit quantization not coarser than 12-bit")
	}
}

func TestHumanPresenceChangesCSI(t *testing.T) {
	x, err := NewExtractor(testEnv(t), testGrid(t), Impairments{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	empty := x.Capture(nil)
	blocked := x.Capture([]body.Body{body.Default(geom.Point{X: 3, Y: 4})})
	var diff float64
	for ant := range empty.CSI {
		for k := range empty.CSI[ant] {
			diff += cmplx.Abs(blocked.CSI[ant][k] - empty.CSI[ant][k])
		}
	}
	if diff == 0 {
		t.Fatal("human presence left CSI unchanged")
	}
	// Blocking the LOS must reduce RSSI.
	if blocked.RSSI[1] >= empty.RSSI[1] {
		t.Fatalf("blocking raised RSSI: %v -> %v", empty.RSSI[1], blocked.RSSI[1])
	}
}

func TestCaptureN(t *testing.T) {
	x := newExtractor(t, DefaultImpairments(), 6)
	frames := x.CaptureN(5, nil)
	if len(frames) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	for i, f := range frames {
		if f.Seq != uint32(i) {
			t.Fatalf("seq[%d] = %d", i, f.Seq)
		}
	}
}

func TestFrameValidate(t *testing.T) {
	good := &Frame{
		CSI:  [][]complex128{{1, 2}, {3, 4}},
		RSSI: []float64{0, 0},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	bad := []*Frame{
		{},
		{CSI: [][]complex128{{}}},
		{CSI: [][]complex128{{1}, {1, 2}}, RSSI: []float64{0, 0}},
		{CSI: [][]complex128{{1}, {2}}, RSSI: []float64{0}},
	}
	for i, f := range bad {
		if err := f.Validate(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("bad frame %d err = %v", i, err)
		}
	}
}

func TestFrameClone(t *testing.T) {
	f := &Frame{Seq: 7, CSI: [][]complex128{{1, 2}}, RSSI: []float64{-10}}
	c := f.Clone()
	c.CSI[0][0] = 99
	c.RSSI[0] = 0
	if f.CSI[0][0] == 99 || f.RSSI[0] == 0 {
		t.Fatal("clone aliases original")
	}
	if c.Seq != 7 {
		t.Fatalf("seq = %d", c.Seq)
	}
}

func TestAmplitudeDBAndPower(t *testing.T) {
	f := &Frame{CSI: [][]complex128{{complex(10, 0), 0}}, RSSI: []float64{0}}
	db := f.AmplitudeDB(0)
	if math.Abs(db[0]-20) > 1e-9 {
		t.Fatalf("db[0] = %v, want 20", db[0])
	}
	if !math.IsInf(db[1], -1) {
		t.Fatalf("db of 0 = %v, want -inf", db[1])
	}
	p := f.SubcarrierPower(0)
	if math.Abs(p[0]-100) > 1e-9 || p[1] != 0 {
		t.Fatalf("power = %v", p)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	a := newExtractor(t, DefaultImpairments(), 42)
	b := newExtractor(t, DefaultImpairments(), 42)
	fa := a.Capture(nil)
	fb := b.Capture(nil)
	for ant := range fa.CSI {
		for k := range fa.CSI[ant] {
			if fa.CSI[ant][k] != fb.CSI[ant][k] {
				t.Fatal("same seed produced different CSI")
			}
		}
	}
}
