package csi

import "sync"

// FramePool recycles frames of one fixed shape so steady-state capture and
// scoring pipelines run without per-frame allocations. Get and Put are safe
// for concurrent use — the monitoring engine captures frames on one
// goroutine per link and returns them from its scoring workers.
//
// A frame handed to Put must no longer be referenced by the caller: the pool
// hands it to a future Get, which overwrites the CSI backing array in place.
type FramePool struct {
	nAnt, nSub int
	pool       sync.Pool
}

// NewFramePool builds a pool of nAnt×nSub frames (the shape NewFrame
// allocates).
func NewFramePool(nAnt, nSub int) *FramePool {
	p := &FramePool{nAnt: nAnt, nSub: nSub}
	p.pool.New = func() any { return NewFrame(nAnt, nSub) }
	return p
}

// Get returns a frame of the pool's shape. Its contents are stale — every
// capture path overwrites them in full.
func (p *FramePool) Get() *Frame {
	return p.pool.Get().(*Frame)
}

// Put recycles a frame for a future Get. Frames of a different shape are
// dropped rather than poisoning the pool.
func (p *FramePool) Put(f *Frame) {
	if f == nil || len(f.CSI) != p.nAnt || len(f.RSSI) != p.nAnt {
		return
	}
	for _, row := range f.CSI {
		if len(row) != p.nSub {
			return
		}
	}
	p.pool.Put(f)
}
