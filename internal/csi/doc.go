// Package csi emulates the Channel State Information export path of the
// paper's receiver: an Intel 5300 NIC with the Linux CSI Tool [16]. Each
// captured packet yields an NRX×30 complex CSI matrix plus per-antenna RSSI.
//
// The emulation layers the hardware impairments real CSI exhibits on top of
// the noiseless channel response from internal/propagation:
//
//   - a per-packet common phase offset (residual CFO — identical on all RX
//     chains because they share one oscillator, which is what makes
//     cross-antenna phase usable for AoA),
//   - a per-packet sampling-time offset, i.e. a linear phase slope across
//     subcarriers (what phase sanitization removes),
//   - automatic gain control jitter (a common amplitude scale per packet),
//   - additive white Gaussian noise per subcarrier and antenna,
//   - int8 quantization of the real/imaginary parts, as the 5300 reports.
//
// Capture rides the environment's phasor-cached synthesis path and
// CaptureInto is its allocation-free form: frames built by NewFrame hold one
// contiguous complex backing array, impairments are applied in place on it,
// and a FramePool recycles frames across packets. CaptureNaive keeps the
// original per-ray, per-allocation path runnable as the reference the
// cached path is benchmarked and property-tested against.
package csi
