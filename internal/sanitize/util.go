package sanitize

import (
	"math"
	"math/cmplx"
)

// phase returns the argument of v in radians.
func phase(v complex128) float64 { return cmplx.Phase(v) }

// rotor returns e^{jφ}.
func rotor(phi float64) complex128 {
	return complex(math.Cos(phi), math.Sin(phi))
}
