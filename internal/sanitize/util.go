package sanitize

import (
	"mlink/internal/dsp"
)

// phase returns the argument of v in radians. It runs once per subcarrier
// per antenna per packet, so it uses the table-backed approximation
// (error < 1e-10 rad — see dsp.Atan2Fast — versus ~1e-2 rad of impairment
// phase noise in the CSI itself).
func phase(v complex128) float64 { return dsp.Atan2Fast(imag(v), real(v)) }

// rotor returns e^{jφ}, through the table-backed sincos (error < 2e-9).
func rotor(phi float64) complex128 {
	sin, cos := dsp.SincosFast(phi)
	return complex(cos, sin)
}
