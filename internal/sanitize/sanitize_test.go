package sanitize

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/dsp"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

func buildExtractor(t *testing.T, imp csi.Impairments, seed int64) (*csi.Extractor, []int) {
	t.Helper()
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		t.Fatal(err)
	}
	lambda := propagation.SpeedOfLight / channel.CenterFreqChannel11
	rx, err := propagation.NewULA(geom.Point{X: 5, Y: 4}, math.Pi, 3, lambda/2)
	if err != nil {
		t.Fatal(err)
	}
	env, err := propagation.NewEnvironment(room, geom.Point{X: 1, Y: 4}, rx, propagation.DefaultLinkParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := channel.NewIntel5300Grid(channel.CenterFreqChannel11)
	if err != nil {
		t.Fatal(err)
	}
	var rng *rand.Rand
	if imp.NoiseEnabled || imp.MaxSTOSeconds > 0 || imp.AGCJitterDB > 0 || imp.RandomCommonPhase {
		rng = rand.New(rand.NewSource(seed))
	}
	x, err := csi.NewExtractor(env, grid, imp, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	return x, grid.Indices
}

func TestSanitizeRemovesSTOSlope(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 50e-9, RandomCommonPhase: true}, 1)
	f := x.Capture(nil)
	s, err := Frame(f, idx)
	if err != nil {
		t.Fatal(err)
	}
	// After sanitization the residual phase across subcarriers must have
	// near-zero linear trend.
	ph := make([]float64, len(idx))
	for k, v := range s.CSI[0] {
		ph[k] = cmplx.Phase(v)
	}
	un := dsp.Unwrap(ph)
	xs := make([]float64, len(idx))
	for i, v := range idx {
		xs[i] = float64(v)
	}
	fit, err := dsp.FitLinear(xs, un)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope) > 0.02 {
		t.Fatalf("residual slope = %v rad/index, want ≈0", fit.Slope)
	}
}

func TestSanitizePreservesInterAntennaPhase(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 50e-9, RandomCommonPhase: true}, 2)
	f := x.Capture(nil)
	s, err := Frame(f, idx)
	if err != nil {
		t.Fatal(err)
	}
	for k := range idx {
		before := cmplx.Phase(f.CSI[2][k] / f.CSI[0][k])
		after := cmplx.Phase(s.CSI[2][k] / s.CSI[0][k])
		if math.Abs(before-after) > 1e-9 {
			t.Fatalf("inter-antenna phase changed at %d: %v -> %v", k, before, after)
		}
	}
}

func TestSanitizePreservesAmplitude(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 30e-9}, 3)
	f := x.Capture(nil)
	s, err := Frame(f, idx)
	if err != nil {
		t.Fatal(err)
	}
	for ant := range f.CSI {
		for k := range f.CSI[ant] {
			if math.Abs(cmplx.Abs(s.CSI[ant][k])-cmplx.Abs(f.CSI[ant][k])) > 1e-12 {
				t.Fatalf("amplitude changed at [%d][%d]", ant, k)
			}
		}
	}
}

func TestSanitizeDoesNotMutateInput(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 30e-9}, 4)
	f := x.Capture(nil)
	orig := f.Clone()
	if _, err := Frame(f, idx); err != nil {
		t.Fatal(err)
	}
	for ant := range f.CSI {
		for k := range f.CSI[ant] {
			if f.CSI[ant][k] != orig.CSI[ant][k] {
				t.Fatal("input frame mutated")
			}
		}
	}
}

func TestSanitizeIdempotentOnCleanFrame(t *testing.T) {
	// A frame with no STO has almost no trend; sanitizing twice must agree
	// with sanitizing once.
	x, idx := buildExtractor(t, csi.Impairments{}, 5)
	f := x.Capture(nil)
	s1, err := Frame(f, idx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Frame(s1, idx)
	if err != nil {
		t.Fatal(err)
	}
	for ant := range s1.CSI {
		for k := range s1.CSI[ant] {
			if cmplx.Abs(s1.CSI[ant][k]-s2.CSI[ant][k]) > 1e-9*cmplx.Abs(s1.CSI[ant][k]) {
				t.Fatalf("not idempotent at [%d][%d]", ant, k)
			}
		}
	}
}

func TestSanitizeErrors(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{}, 6)
	f := x.Capture(nil)
	if _, err := Frame(f, idx[:5]); err == nil {
		t.Fatal("index length mismatch accepted")
	}
	bad := &csi.Frame{}
	if _, err := Frame(bad, idx); err == nil {
		t.Fatal("invalid frame accepted")
	}
}

func TestSanitizeFramesBatch(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 40e-9, RandomCommonPhase: true}, 7)
	frames := x.CaptureN(4, nil)
	out, err := Frames(frames, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("out = %d", len(out))
	}
	// Batch with one bad frame fails with its index in the error.
	frames = append(frames, &csi.Frame{})
	if _, err := Frames(frames, idx); err == nil {
		t.Fatal("bad frame in batch accepted")
	}
}

// TestSanitizeStabilizesAcrossPackets verifies the point of sanitization:
// per-packet phase impairments make raw CSI phases jump packet-to-packet,
// sanitized ones stay put.
func TestSanitizeStabilizesAcrossPackets(t *testing.T) {
	x, idx := buildExtractor(t, csi.Impairments{MaxSTOSeconds: 50e-9, RandomCommonPhase: true}, 8)
	f1 := x.Capture(nil)
	f2 := x.Capture(nil)
	s1, err := Frame(f1, idx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Frame(f2, idx)
	if err != nil {
		t.Fatal(err)
	}
	var rawJump, cleanJump float64
	for k := range idx {
		rawJump += math.Abs(angleDiff(cmplx.Phase(f1.CSI[0][k]), cmplx.Phase(f2.CSI[0][k])))
		cleanJump += math.Abs(angleDiff(cmplx.Phase(s1.CSI[0][k]), cmplx.Phase(s2.CSI[0][k])))
	}
	if cleanJump >= rawJump {
		t.Fatalf("sanitization did not stabilize phase: %v >= %v", cleanJump, rawJump)
	}
	if cleanJump/float64(len(idx)) > 0.2 {
		t.Fatalf("sanitized phase jump %v rad/subcarrier too large", cleanJump/float64(len(idx)))
	}
}

func angleDiff(a, b float64) float64 {
	d := a - b
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}
