// Package sanitize implements CSI phase calibration in the style of the
// paper's reference [26] ("You Are Facing the Mona Lisa"): raw CSI phase is
// corrupted by a per-packet sampling-time offset (a linear phase slope
// across subcarriers) and a common oscillator phase offset. Both are
// removed by fitting a line to the unwrapped phase over subcarrier index
// and subtracting it.
//
// The same fitted line is subtracted from every antenna: the offsets are
// common-mode across RX chains (shared clock), so a common correction
// preserves the inter-antenna phase differences MUSIC needs.
package sanitize

import (
	"fmt"

	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// Frame returns a sanitized copy of f: the linear phase trend (over the
// subcarrier indices idx) common to all antennas is removed. The input
// frame is unchanged.
func Frame(f *csi.Frame, idx []int) (*csi.Frame, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("sanitize: %w", err)
	}
	if len(idx) != f.NumSubcarriers() {
		return nil, fmt.Errorf("sanitize: %d indices for %d subcarriers", len(idx), f.NumSubcarriers())
	}
	xs := make([]float64, len(idx))
	for i, v := range idx {
		xs[i] = float64(v)
	}

	// Average the unwrapped per-antenna phases to estimate the common trend.
	// The average carries the sampling-time slope, the common oscillator
	// phase and the mean inter-antenna offset; subtracting its fitted line
	// removes all three identically from every antenna, which stabilizes the
	// phase across packets while preserving inter-antenna differences.
	nSub := f.NumSubcarriers()
	meanPhase := make([]float64, nSub)
	for ant := 0; ant < f.NumAntennas(); ant++ {
		row := f.CSI[ant]
		ph := make([]float64, nSub)
		for k, v := range row {
			ph[k] = phase(v)
		}
		un := dsp.Unwrap(ph)
		for k := range un {
			meanPhase[k] += un[k] / float64(f.NumAntennas())
		}
	}

	fit, err := dsp.FitLinear(xs, meanPhase)
	if err != nil {
		return nil, fmt.Errorf("sanitize fit: %w", err)
	}

	out := f.Clone()
	// One rotor row serves every antenna: the fitted trend is common-mode.
	rot := make([]complex128, nSub)
	for k := range rot {
		rot[k] = rotor(-(fit.Slope*xs[k] + fit.Intercept))
	}
	for ant := range out.CSI {
		for k := range out.CSI[ant] {
			out.CSI[ant][k] *= rot[k]
		}
	}
	return out, nil
}

// Frames sanitizes a batch, failing on the first malformed frame.
func Frames(frames []*csi.Frame, idx []int) ([]*csi.Frame, error) {
	out := make([]*csi.Frame, len(frames))
	for i, f := range frames {
		s, err := Frame(f, idx)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
