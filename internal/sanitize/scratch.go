package sanitize

import (
	"fmt"

	"mlink/internal/csi"
	"mlink/internal/dsp"
)

// Scratch holds reusable buffers for repeated sanitization, so a long-lived
// scoring worker can sanitize monitoring windows without cloning frames on
// every call. The returned frames are owned by the scratch and are only
// valid until its next Frames call. Not safe for concurrent use.
type Scratch struct {
	xs   []float64
	ph   []float64
	mean []float64
	rot  []complex128
	out  []*csi.Frame
}

// Reserve pre-sizes the scratch for sanitizing windows of `frames` frames of
// nAnt×nSub CSI, so the first real window on a fresh scratch allocates
// nothing. Existing warmed buffers are kept.
func (sc *Scratch) Reserve(frames, nAnt, nSub int) {
	if frames <= 0 || nAnt <= 0 || nSub <= 0 {
		return
	}
	if cap(sc.out) < frames {
		next := make([]*csi.Frame, frames)
		copy(next, sc.out[:cap(sc.out)])
		sc.out = next
	}
	for i, f := range sc.out[:frames] {
		if f == nil || len(f.CSI) != nAnt || len(f.CSI[0]) != nSub {
			f = &csi.Frame{CSI: make([][]complex128, nAnt), RSSI: make([]float64, 0, nAnt)}
			for ant := range f.CSI {
				f.CSI[ant] = make([]complex128, nSub)
			}
			sc.out[i] = f
		}
	}
	growFloats(&sc.xs, nSub)
	growFloats(&sc.ph, nSub)
	growFloats(&sc.mean, nSub)
	if cap(sc.rot) < nSub {
		sc.rot = make([]complex128, nSub)
	}
}

// Frames sanitizes a batch like the package-level Frames, but into frame
// buffers owned by the scratch.
func (sc *Scratch) Frames(frames []*csi.Frame, idx []int) ([]*csi.Frame, error) {
	if cap(sc.out) < len(frames) {
		next := make([]*csi.Frame, len(frames))
		copy(next, sc.out[:cap(sc.out)])
		sc.out = next
	}
	sc.out = sc.out[:len(frames)]
	for i, f := range frames {
		if err := sc.frame(&sc.out[i], f, idx); err != nil {
			return nil, fmt.Errorf("frame %d: %w", i, err)
		}
	}
	return sc.out, nil
}

// frame sanitizes f into *dst, reusing its buffers when the shape matches.
func (sc *Scratch) frame(dst **csi.Frame, f *csi.Frame, idx []int) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("sanitize: %w", err)
	}
	nSub := f.NumSubcarriers()
	nAnt := f.NumAntennas()
	if len(idx) != nSub {
		return fmt.Errorf("sanitize: %d indices for %d subcarriers", len(idx), nSub)
	}
	sc.xs = growFloats(&sc.xs, nSub)
	for i, v := range idx {
		sc.xs[i] = float64(v)
	}

	// Common phase trend, as in Frame: mean of the unwrapped per-antenna
	// phases, then a linear fit over subcarrier index.
	sc.mean = growFloats(&sc.mean, nSub)
	for k := range sc.mean {
		sc.mean[k] = 0
	}
	sc.ph = growFloats(&sc.ph, nSub)
	for ant := 0; ant < nAnt; ant++ {
		for k, v := range f.CSI[ant] {
			sc.ph[k] = phase(v)
		}
		dsp.UnwrapInPlace(sc.ph)
		for k, v := range sc.ph {
			sc.mean[k] += v / float64(nAnt)
		}
	}
	fit, err := dsp.FitLinear(sc.xs, sc.mean)
	if err != nil {
		return fmt.Errorf("sanitize fit: %w", err)
	}

	out := *dst
	if out == nil || len(out.CSI) != nAnt || len(out.CSI[0]) != nSub {
		out = &csi.Frame{CSI: make([][]complex128, nAnt)}
		for ant := range out.CSI {
			out.CSI[ant] = make([]complex128, nSub)
		}
		*dst = out
	}
	out.Seq = f.Seq
	out.TimestampMicros = f.TimestampMicros
	out.RSSI = append(out.RSSI[:0], f.RSSI...)
	// The correction rotor depends only on the subcarrier, not the antenna:
	// build the row once and apply it to every chain (Sincos is the hot op).
	if cap(sc.rot) < nSub {
		sc.rot = make([]complex128, nSub)
	}
	sc.rot = sc.rot[:nSub]
	for k := 0; k < nSub; k++ {
		sc.rot[k] = rotor(-(fit.Slope*sc.xs[k] + fit.Intercept))
	}
	for ant := 0; ant < nAnt; ant++ {
		for k, v := range f.CSI[ant] {
			out.CSI[ant][k] = v * sc.rot[k]
		}
	}
	return nil
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
