package scenario

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"mlink/internal/csi"
)

// countSource serves fresh frames forever and counts recycles.
type countSource struct {
	served   int
	recycled int
}

func (s *countSource) Next() (*csi.Frame, error) {
	s.served++
	return &csi.Frame{Seq: uint32(s.served)}, nil
}

func (s *countSource) Recycle(*csi.Frame) { s.recycled++ }

func TestChaosUnarmedIsTransparent(t *testing.T) {
	inner := &countSource{}
	c := NewChaosSource(inner, ChaosConfig{FailEvery: 1, EOFEvery: 1, TornEvery: 1, DropEvery: 1, DropBurst: 5})
	for i := 1; i <= 10; i++ {
		f, err := c.Next()
		if err != nil {
			t.Fatalf("unarmed Next %d: %v", i, err)
		}
		if f.Seq != uint32(i) {
			t.Fatalf("unarmed Next %d returned seq %d", i, f.Seq)
		}
	}
	st := c.Stats()
	if st.Delivered != 10 || st.Fails != 0 || st.Dropped != 0 {
		t.Fatalf("unarmed stats = %+v, want pure delivery", st)
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	run := func() (faults []int, stats ChaosStats) {
		inner := &countSource{}
		c := NewChaosSource(inner, ChaosConfig{FailEvery: 3, TornEvery: 5})
		c.Arm(true)
		for i := 1; i <= 30; i++ {
			if _, err := c.Next(); err != nil {
				faults = append(faults, i)
			}
		}
		return faults, c.Stats()
	}
	f1, s1 := run()
	f2, s2 := run()
	if len(f1) == 0 {
		t.Fatal("no faults injected")
	}
	if len(f1) != len(f2) {
		t.Fatalf("schedules differ in length: %v vs %v", f1, f2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("schedules diverge: %v vs %v", f1, f2)
		}
	}
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	// FailEvery wins ties with TornEvery: multiples of 3 (10 of them) are
	// fails, and of the multiples of 5 only 5, 10, 20, 25 remain torn
	// (15 and 30 collide with fails).
	if s1.Fails != 10 || s1.Torn != 4 {
		t.Fatalf("fault mix = %+v, want 10 fails and 4 torn", s1)
	}
}

func TestChaosFaultKinds(t *testing.T) {
	inner := &countSource{}
	c := NewChaosSource(inner, ChaosConfig{EOFEvery: 2})
	c.Arm(true)
	if _, err := c.Next(); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	if _, err := c.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("call 2 = %v, want io.EOF", err)
	}

	c2 := NewChaosSource(&countSource{}, ChaosConfig{TornEvery: 2})
	c2.Arm(true)
	c2.Next()
	if _, err := c2.Next(); !errors.Is(err, ErrTornFrame) {
		t.Fatalf("torn call = %v, want ErrTornFrame", err)
	}
}

func TestChaosDropBurst(t *testing.T) {
	inner := &countSource{}
	c := NewChaosSource(inner, ChaosConfig{DropEvery: 3, DropBurst: 2})
	c.Arm(true)
	var got []uint32
	for i := 0; i < 6; i++ {
		f, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, f.Seq)
	}
	// Calls 3 and 6 each swallow a 2-frame burst before delivering.
	want := []uint32{1, 2, 5, 6, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered seqs %v, want %v", got, want)
		}
	}
	st := c.Stats()
	if st.Dropped != 4 || inner.recycled != 4 {
		t.Fatalf("dropped %d (recycled %d), want 4", st.Dropped, inner.recycled)
	}
}

func TestChaosFlappingReconnect(t *testing.T) {
	c := NewChaosSource(&countSource{}, ChaosConfig{FailConnects: 2})
	c.Arm(true)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := c.Reconnect(ctx); !errors.Is(err, ErrChaosDown) {
			t.Fatalf("redial %d = %v, want ErrChaosDown", i+1, err)
		}
	}
	if err := c.Reconnect(ctx); err != nil {
		t.Fatalf("redial after flap budget = %v, want success", err)
	}
	st := c.Stats()
	if st.FailedConnects != 2 || st.Reconnects != 1 {
		t.Fatalf("reconnect stats = %+v", st)
	}
	// Re-arming resets the flap budget.
	c.Arm(true)
	if err := c.Reconnect(ctx); !errors.Is(err, ErrChaosDown) {
		t.Fatalf("redial after re-arm = %v, want ErrChaosDown again", err)
	}
}

func TestChaosStallAndInterrupt(t *testing.T) {
	c := NewChaosSource(&countSource{}, ChaosConfig{})
	c.Stall()
	done := make(chan error, 1)
	go func() {
		_, err := c.Next()
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Next returned %v during a stall", err)
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Next after Resume: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Next still blocked after Resume")
	}

	// Interrupt unblocks a stalled Next with io.EOF.
	c.Stall()
	go func() {
		_, err := c.Next()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Interrupt()
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("interrupted Next = %v, want io.EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Next still blocked after Interrupt")
	}
}
