package scenario

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mlink/internal/geom"
	"mlink/internal/propagation"
)

func TestClassroomBuilds(t *testing.T) {
	s, err := Classroom(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.LinkLength()-4) > 1e-9 {
		t.Fatalf("link length = %v", s.LinkLength())
	}
	if s.Grid.Len() != 30 {
		t.Fatalf("grid len = %d", s.Grid.Len())
	}
	x, err := s.NewExtractor(0)
	if err != nil {
		t.Fatal(err)
	}
	f := x.Capture(nil)
	if f.NumAntennas() != 3 || f.NumSubcarriers() != 30 {
		t.Fatalf("frame shape %dx%d", f.NumAntennas(), f.NumSubcarriers())
	}
}

func TestAllLinkCasesBuild(t *testing.T) {
	lengths := map[int]float64{}
	for n := 1; n <= NumLinkCases; n++ {
		s, err := LinkCase(n, int64(n))
		if err != nil {
			t.Fatalf("case %d: %v", n, err)
		}
		lengths[n] = s.LinkLength()
		if s.Name == "" {
			t.Fatalf("case %d unnamed", n)
		}
		// Every case must produce CSI.
		x, err := s.NewExtractor(0)
		if err != nil {
			t.Fatalf("case %d extractor: %v", n, err)
		}
		if f := x.Capture(nil); f.NumSubcarriers() != 30 {
			t.Fatalf("case %d capture broken", n)
		}
	}
	// Diverse TX-RX distances (Fig. 6): case 3 is the shortest.
	for n, l := range lengths {
		if n == 3 {
			continue
		}
		if lengths[3] >= l {
			t.Fatalf("case 3 (%.2f m) not the shortest vs case %d (%.2f m)", lengths[3], n, l)
		}
	}
	if _, err := LinkCase(0, 1); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("case 0 err = %v", err)
	}
	if _, err := LinkCase(6, 1); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("case 6 err = %v", err)
	}
}

func TestShortLinkNearWall(t *testing.T) {
	s, err := ShortLinkNearWall(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.LinkLength()-3) > 1e-9 {
		t.Fatalf("link length = %v", s.LinkLength())
	}
	// The link must sit near the concrete top wall (y=8).
	if s.LinkMidpoint().Y < 6 {
		t.Fatalf("link not near wall: %v", s.LinkMidpoint())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{NumAnts: 3}); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("nil room err = %v", err)
	}
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(Spec{Room: room, NumAnts: 0}); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("0 antennas err = %v", err)
	}
}

func TestGrid3x3(t *testing.T) {
	s, err := Classroom(3)
	if err != nil {
		t.Fatal(err)
	}
	grid := s.Grid3x3()
	if len(grid) != 9 {
		t.Fatalf("grid size = %d", len(grid))
	}
	// All points must lie within the room.
	for _, p := range grid {
		if p.X < 0 || p.X > 6 || p.Y < 0 || p.Y > 8 {
			t.Fatalf("grid point %v outside room", p)
		}
	}
	// Exactly three on the LOS line (lateral 0).
	link := geom.Segment{A: s.TX(), B: s.RXCenter()}
	onLink := 0
	for _, p := range grid {
		if link.DistToPoint(p) < 1e-9 {
			onLink++
		}
	}
	if onLink != 3 {
		t.Fatalf("on-link grid points = %d, want 3", onLink)
	}
}

func TestRandomPresenceLocations(t *testing.T) {
	s, err := Classroom(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	locs := s.RandomPresenceLocations(500, 1.0, rng)
	if len(locs) != 500 {
		t.Fatalf("locations = %d", len(locs))
	}
	link := geom.Segment{A: s.TX(), B: s.RXCenter()}
	for _, p := range locs {
		if d := link.DistToPoint(p); d > 1.0+1e-9 {
			t.Fatalf("location %v is %v m from link, want ≤1", p, d)
		}
	}
}

func TestCrossingTrajectory(t *testing.T) {
	s, err := Classroom(5)
	if err != nil {
		t.Fatal(err)
	}
	traj := s.CrossingTrajectory(1000, 3)
	if len(traj) != 1000 {
		t.Fatalf("trajectory length = %d", len(traj))
	}
	// Starts 1.5 m on one side, ends 1.5 m on the other, crosses the link.
	link := geom.Segment{A: s.TX(), B: s.RXCenter()}
	d0 := link.DistToPoint(traj[0])
	dMid := link.DistToPoint(traj[500])
	dEnd := link.DistToPoint(traj[999])
	if math.Abs(d0-1.5) > 0.01 || math.Abs(dEnd-1.5) > 0.01 {
		t.Fatalf("span wrong: %v ... %v", d0, dEnd)
	}
	if dMid > 0.01 {
		t.Fatalf("midpoint distance = %v, want ≈0", dMid)
	}
}

func TestAngularArc(t *testing.T) {
	s, err := ShortLinkNearWall(6)
	if err != nil {
		t.Fatal(err)
	}
	arc := s.AngularArc(16, 1.0, -90, 90)
	if len(arc) != 16 {
		t.Fatalf("arc points = %d", len(arc))
	}
	for _, p := range arc {
		if math.Abs(p.Dist(s.RXCenter())-1.0) > 1e-9 {
			t.Fatalf("arc point %v not at radius 1", p)
		}
	}
	// First point at -90°, last at +90° relative to broadside.
	rel0 := s.Env.RX.RelativeAngle(arc[0].Sub(s.RXCenter()).Angle())
	relN := s.Env.RX.RelativeAngle(arc[15].Sub(s.RXCenter()).Angle())
	if math.Abs(geom.RadToDeg(rel0)+90) > 1e-6 || math.Abs(geom.RadToDeg(relN)-90) > 1e-6 {
		t.Fatalf("arc angles = %v ... %v", geom.RadToDeg(rel0), geom.RadToDeg(relN))
	}
}

func TestNewSessionJitters(t *testing.T) {
	s, err := Classroom(7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	// TX moved by ~cm, not by metres.
	d := sess.TX().Dist(s.TX())
	if d == 0 || d > 0.1 {
		t.Fatalf("session TX jitter = %v m", d)
	}
	// Different sessions differ.
	sess2, err := s.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	if sess2.TX() == sess.TX() {
		t.Fatal("sessions identical")
	}
}

func TestExtractorDeterminism(t *testing.T) {
	s, err := Classroom(8)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := s.NewExtractor(5)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := s.NewExtractor(5)
	if err != nil {
		t.Fatal(err)
	}
	f1 := x1.Capture(nil)
	f2 := x2.Capture(nil)
	for ant := range f1.CSI {
		for k := range f1.CSI[ant] {
			if f1.CSI[ant][k] != f2.CSI[ant][k] {
				t.Fatal("same seed offset produced different CSI")
			}
		}
	}
	x3, err := s.NewExtractor(6)
	if err != nil {
		t.Fatal(err)
	}
	f3 := x3.Capture(nil)
	same := true
	for ant := range f1.CSI {
		for k := range f1.CSI[ant] {
			if f1.CSI[ant][k] != f3.CSI[ant][k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seed offsets produced identical CSI")
	}
}

func TestBackground(t *testing.T) {
	s, err := Classroom(9)
	if err != nil {
		t.Fatal(err)
	}
	anchors := DefaultAnchors(s)
	if len(anchors) != 3 {
		t.Fatalf("anchors = %d", len(anchors))
	}
	// Anchors stay far from the link midpoint (the paper keeps students
	// ~5 m away; our room bounds that at >2.5 m).
	for _, a := range anchors {
		if a.Dist(s.LinkMidpoint()) < 2.5 {
			t.Fatalf("anchor %v too close to link", a)
		}
	}
	rng := rand.New(rand.NewSource(10))
	bg, err := NewBackground(3, anchors, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bg.Len() != 3 {
		t.Fatalf("bg len = %d", bg.Len())
	}
	for step := 0; step < 500; step++ {
		bodies := bg.Step()
		if len(bodies) != 3 {
			t.Fatalf("bodies = %d", len(bodies))
		}
		for i, b := range bodies {
			if b.Position.Dist(anchors[i]) > bg.Tether+1e-9 {
				t.Fatalf("body %d broke tether: %v", i, b.Position)
			}
		}
	}
	// Motion must actually happen.
	p0 := bg.Positions()
	bg.Step()
	p1 := bg.Positions()
	moved := false
	for i := range p0 {
		if p0[i] != p1[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("background people frozen")
	}
}

func TestBackgroundValidation(t *testing.T) {
	if _, err := NewBackground(-1, nil, nil); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("negative n err = %v", err)
	}
	if _, err := NewBackground(2, nil, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("no anchors err = %v", err)
	}
	if _, err := NewBackground(2, []geom.Point{{X: 1, Y: 1}}, nil); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("nil rng err = %v", err)
	}
	empty, err := NewBackground(0, nil, nil)
	if err != nil {
		t.Fatalf("zero people rejected: %v", err)
	}
	if got := empty.Step(); len(got) != 0 {
		t.Fatalf("zero-people step = %v", got)
	}
}
