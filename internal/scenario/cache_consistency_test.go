package scenario

import (
	"fmt"
	"math"
	"testing"

	"mlink/internal/body"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

// TestCachedResponseMatchesNaiveAcrossPresets is the preset half of the
// cache-consistency property: for every scenario preset, the cached
// ResponseInto path must match the naive per-ray Response to <1e-9 with an
// empty room and with 1–3 bodies placed around the link.
func TestCachedResponseMatchesNaiveAcrossPresets(t *testing.T) {
	presets := map[string]func() (*Scenario, error){
		"classroom":  func() (*Scenario, error) { return Classroom(3) },
		"short-link": func() (*Scenario, error) { return ShortLinkNearWall(3) },
	}
	for n := 1; n <= NumLinkCases; n++ {
		n := n
		presets[fmt.Sprintf("case%d", n)] = func() (*Scenario, error) { return LinkCase(n, 3) }
	}
	for name, build := range presets {
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			freqs := s.Grid.Frequencies()
			if err := s.Env.PrepareGrid(freqs); err != nil {
				t.Fatal(err)
			}
			mid := s.LinkMidpoint()
			bodySets := [][]body.Body{
				nil,
				{body.Default(mid)},
				{body.Default(mid), body.Default(s.TX().Add(geom.Point{X: 0.4, Y: 0.6}))},
				{
					body.Default(mid),
					body.Default(mid.Add(geom.Point{X: -0.7, Y: 0.3})),
					body.Default(s.RXCenter().Add(geom.Point{X: -0.5, Y: -0.9})),
				},
			}
			dst := make([][]complex128, len(s.Env.RX.Elements))
			for i := range dst {
				dst[i] = make([]complex128, len(freqs))
			}
			sc := &propagation.ResponseScratch{}
			for bi, bodies := range bodySets {
				naive := s.Env.Response(freqs, bodies)
				if err := s.Env.ResponseInto(dst, bodies, sc); err != nil {
					t.Fatalf("bodies=%d: %v", len(bodies), err)
				}
				for i := range naive {
					for k := range naive[i] {
						d := naive[i][k] - dst[i][k]
						if mag := math.Hypot(real(d), imag(d)); mag > 1e-9 {
							t.Fatalf("set %d elem %d sub %d: divergence %v > 1e-9", bi, i, k, mag)
						}
					}
				}
			}
		})
	}
}
