package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"mlink/internal/channel"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

// ErrBadScenario reports an invalid scenario configuration.
var ErrBadScenario = errors.New("scenario: bad configuration")

// Scenario is a complete, buildable measurement setup.
type Scenario struct {
	// Name identifies the setup ("classroom", "case3", ...).
	Name string
	// Env is the built propagation environment.
	Env *propagation.Environment
	// Grid is the receiver's subcarrier grid.
	Grid *channel.Grid
	// Imp is the CSI impairment model.
	Imp csi.Impairments
	// PacketRate is the ping rate (the paper uses 50 packets/s).
	PacketRate float64
	// Seed is the base RNG seed; derive per-run seeds from it.
	Seed int64

	// Construction inputs, retained so sessions can re-build the
	// environment with jittered parameters.
	room       *propagation.Room
	tx         geom.Point
	rxCenter   geom.Point
	rxBrdside  float64
	numAnts    int
	params     propagation.LinkParams
	maxBounces int
}

// Spec collects the inputs needed to build a scenario.
type Spec struct {
	Name       string
	Room       *propagation.Room
	TX         geom.Point
	RXCenter   geom.Point
	NumAnts    int
	Params     propagation.LinkParams
	MaxBounces int
	Imp        csi.Impairments
	PacketRate float64
	Seed       int64
}

// Build constructs the scenario: the receive array is a λ/2 ULA centred at
// RXCenter facing the transmitter.
func Build(spec Spec) (*Scenario, error) {
	if spec.Room == nil {
		return nil, fmt.Errorf("nil room: %w", ErrBadScenario)
	}
	if spec.NumAnts < 1 {
		return nil, fmt.Errorf("%d antennas: %w", spec.NumAnts, ErrBadScenario)
	}
	grid, err := channel.NewIntel5300Grid(channel.CenterFreqChannel11)
	if err != nil {
		return nil, fmt.Errorf("grid: %w", err)
	}
	lambda := propagation.SpeedOfLight / grid.Center
	broadside := spec.TX.Sub(spec.RXCenter).Angle()
	rx, err := propagation.NewULA(spec.RXCenter, broadside, spec.NumAnts, lambda/2)
	if err != nil {
		return nil, fmt.Errorf("rx array: %w", err)
	}
	env, err := propagation.NewEnvironment(spec.Room, spec.TX, rx, spec.Params, spec.MaxBounces)
	if err != nil {
		return nil, fmt.Errorf("environment: %w", err)
	}
	rate := spec.PacketRate
	if rate <= 0 {
		rate = 50
	}
	return &Scenario{
		Name:       spec.Name,
		Env:        env,
		Grid:       grid,
		Imp:        spec.Imp,
		PacketRate: rate,
		Seed:       spec.Seed,
		room:       spec.Room,
		tx:         spec.TX,
		rxCenter:   spec.RXCenter,
		rxBrdside:  broadside,
		numAnts:    spec.NumAnts,
		params:     spec.Params,
		maxBounces: spec.MaxBounces,
	}, nil
}

// NewExtractor returns a CSI extractor whose RNG is derived from the
// scenario seed and the given offset, so distinct measurement sessions are
// independent yet reproducible.
func (s *Scenario) NewExtractor(seedOffset int64) (*csi.Extractor, error) {
	rng := rand.New(rand.NewSource(s.Seed*1000003 + seedOffset))
	x, err := csi.NewExtractor(s.Env, s.Grid, s.Imp, s.PacketRate, rng)
	if err != nil {
		return nil, fmt.Errorf("extractor: %w", err)
	}
	return x, nil
}

// NewSession re-builds the scenario with small per-session hardware and
// placement jitter (TX power ±, TX position ~1 cm) modelling the paper's
// repeated campaigns (day/night, two weeks apart).
func (s *Scenario) NewSession(sessionSeed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(s.Seed*7919 + sessionSeed))
	params := s.params
	// Power drift (AP thermal/power-control) and a sub-wavelength antenna
	// settle. A full centimetre would re-randomize every multipath phase at
	// 12 cm wavelength, which fixed installations do not do.
	params.TxPower *= math.Pow(10, rng.NormFloat64()*0.3/10)
	tx := geom.Point{
		X: s.tx.X + rng.NormFloat64()*0.002,
		Y: s.tx.Y + rng.NormFloat64()*0.002,
	}
	out, err := Build(Spec{
		Name:       s.Name,
		Room:       s.room,
		TX:         tx,
		RXCenter:   s.rxCenter,
		NumAnts:    s.numAnts,
		Params:     params,
		MaxBounces: s.maxBounces,
		Imp:        s.Imp,
		PacketRate: s.PacketRate,
		Seed:       s.Seed*31 + sessionSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	return out, nil
}

// TX returns the transmitter position.
func (s *Scenario) TX() geom.Point { return s.tx }

// RXCenter returns the receive-array centre.
func (s *Scenario) RXCenter() geom.Point { return s.rxCenter }

// LinkMidpoint returns the midpoint of the TX–RX segment.
func (s *Scenario) LinkMidpoint() geom.Point {
	return geom.Segment{A: s.tx, B: s.rxCenter}.Midpoint()
}

// LinkLength returns the TX–RX distance.
func (s *Scenario) LinkLength() float64 { return s.tx.Dist(s.rxCenter) }

// Grid3x3 returns the nine human presence locations the paper tests per
// link: a 3×3 grid spanning the link's length and lateral offsets, covering
// different distances and angles from the receiver.
func (s *Scenario) Grid3x3() []geom.Point {
	dir := s.rxCenter.Sub(s.tx)
	l := dir.Norm()
	if l == 0 {
		return nil
	}
	u := dir.Scale(1 / l)               // along the link
	v := geom.Point{X: -u.Y, Y: u.X}    // perpendicular
	fracs := []float64{0.25, 0.5, 0.75} // along-link stations
	lats := []float64{-1.0, 0.0, 1.0}   // lateral offsets (metres)
	out := make([]geom.Point, 0, 9)
	for _, f := range fracs {
		base := s.tx.Add(u.Scale(f * l))
		for _, lat := range lats {
			out = append(out, base.Add(v.Scale(lat)))
		}
	}
	return out
}

// RandomPresenceLocations samples n locations on and near the LOS path —
// the §III-A campaign of 500 static presence locations. Locations are drawn
// along the link (10%–90% of its length) with lateral offsets up to
// maxLateral metres on either side.
func (s *Scenario) RandomPresenceLocations(n int, maxLateral float64, rng *rand.Rand) []geom.Point {
	dir := s.rxCenter.Sub(s.tx)
	l := dir.Norm()
	u := dir.Scale(1 / l)
	v := geom.Point{X: -u.Y, Y: u.X}
	out := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		f := 0.1 + 0.8*rng.Float64()
		lat := (rng.Float64()*2 - 1) * maxLateral
		out = append(out, s.tx.Add(u.Scale(f*l)).Add(v.Scale(lat)))
	}
	return out
}

// CrossingTrajectory returns one body position per packet for a person
// crossing the link perpendicularly at its midpoint, from -span/2 to
// +span/2 metres (the Fig. 2b experiment).
func (s *Scenario) CrossingTrajectory(packets int, span float64) []geom.Point {
	mid := s.LinkMidpoint()
	dir := s.rxCenter.Sub(s.tx)
	l := dir.Norm()
	u := dir.Scale(1 / l)
	v := geom.Point{X: -u.Y, Y: u.X}
	out := make([]geom.Point, packets)
	for i := 0; i < packets; i++ {
		frac := float64(i)/float64(packets-1) - 0.5
		out[i] = mid.Add(v.Scale(frac * span))
	}
	return out
}

// AngularArc returns presence locations at the given radius from the
// receiver, spanning incident angles from minDeg to maxDeg relative to the
// array broadside (the Fig. 5c / Fig. 11 experiment).
func (s *Scenario) AngularArc(nPoints int, radius, minDeg, maxDeg float64) []geom.Point {
	out := make([]geom.Point, nPoints)
	for i := 0; i < nPoints; i++ {
		frac := 0.0
		if nPoints > 1 {
			frac = float64(i) / float64(nPoints-1)
		}
		deg := minDeg + (maxDeg-minDeg)*frac
		ang := s.rxBrdside + geom.DegToRad(deg)
		out[i] = s.rxCenter.Add(geom.Point{X: math.Cos(ang), Y: math.Sin(ang)}.Scale(radius))
	}
	return out
}

// Broadside returns the receive array's facing direction.
func (s *Scenario) Broadside() float64 { return s.rxBrdside }
