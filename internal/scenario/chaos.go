package scenario

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"mlink/internal/csi"
)

// ErrChaosDown is the transport failure ChaosSource injects: returned by
// Next for FailEvery faults and by Reconnect while FailConnects redial
// attempts remain. Supervised links treat it like any link-down error —
// enter Down, back off, redial.
var ErrChaosDown = errors.New("scenario: chaos link down")

// ErrTornFrame models a corrupt wire message (bad CRC, truncated payload):
// the frame is unusable and the connection cannot be trusted, so the only
// sane reaction is to drop the transport and redial.
var ErrTornFrame = errors.New("scenario: torn frame")

// FrameSource is the frame stream ChaosSource wraps. It matches
// engine.Source, so any engine-compatible source (DriftStream, a replay, a
// pooled extractor source) can be made misbehaving.
type FrameSource interface {
	Next() (*csi.Frame, error)
}

// ChaosConfig selects which faults a ChaosSource injects. Every fault is
// driven by deterministic frame counters — two runs with the same config
// and the same inner source misbehave identically — and only applies while
// the source is armed (Arm(true)), so a test can establish a clean baseline
// phase, flip chaos on, and flip it off again to watch recovery. Zero-value
// fields disable their fault.
type ChaosConfig struct {
	// Seed is reserved for randomized faults; current faults are all
	// counter-deterministic, and the seed is carried so configs stay stable
	// when a randomized mode is added.
	Seed int64

	// StallAfter injects a one-shot stall: after this many armed Next calls
	// the source blocks for StallFor before serving the frame.
	StallAfter int
	// StallEvery injects a recurring stall every N armed Next calls.
	StallEvery int
	// StallFor is how long each injected stall blocks (default 0: no-op).
	StallFor time.Duration

	// DripEvery delays every Nth armed Next by DripDelay — a slow-drip
	// source that is alive but too slow to fill windows at line rate.
	DripEvery int
	DripDelay time.Duration

	// EOFEvery makes every Nth armed Next return a mid-stream io.EOF — the
	// peer closed the connection under us.
	EOFEvery int

	// FailEvery makes every Nth armed Next return ErrChaosDown.
	FailEvery int
	// FailConnects makes the first N Reconnect attempts after each failure
	// fail with ErrChaosDown — forcing the supervisor through its backoff
	// ladder before a redial sticks.
	FailConnects int

	// DropEvery starts a silent drop burst every Nth armed Next: DropBurst
	// frames are pulled from the inner source and recycled without being
	// delivered (a bursty lossy transport, not a dead one).
	DropEvery int
	DropBurst int

	// TornEvery makes every Nth armed Next return ErrTornFrame.
	TornEvery int
}

// ChaosStats counts what a ChaosSource actually did — the ground truth a
// soak test checks its observations against.
type ChaosStats struct {
	// Delivered counts frames handed to the consumer (armed or not).
	Delivered uint64
	// Dropped counts frames consumed and recycled by drop bursts.
	Dropped uint64
	// Stalls, Drips, EOFs, Fails, Torn count injected faults by kind.
	Stalls, Drips, EOFs, Fails, Torn uint64
	// Reconnects counts successful Reconnect calls; FailedConnects the
	// injected redial failures.
	Reconnects, FailedConnects uint64
}

// ChaosSource wraps a FrameSource with deterministic fault injection: stalls,
// slow drip, mid-stream EOF, transport failures, flapping reconnects, drop
// bursts, and torn messages. It implements the supervise source surface —
// Next, Recycle, Reconnect, Interrupt — so a supervised engine link can be
// pointed at it unchanged, and the chaos harness observes how the rest of
// the fleet behaves while this one link misbehaves.
//
// Chaos is off until Arm(true); an unarmed ChaosSource is a transparent
// pass-through. Arm resets the fault counters, so each armed phase replays
// the same deterministic fault schedule.
//
// Next is safe for one consumer goroutine with Arm/Stall/Resume/Interrupt
// called concurrently from others (the shape the supervisor and a test
// driver produce).
type ChaosSource struct {
	inner FrameSource

	mu        sync.Mutex
	cfg       ChaosConfig
	armed     bool
	n         uint64 // armed Next calls since the last Arm
	failsLeft int    // injected redial failures remaining
	stats     ChaosStats
	stall     chan struct{} // non-nil while manually stalled; closed by Resume
	release   chan struct{} // closed by Arm/Resume to cut short a scheduled sleep
	intr      chan struct{} // closed by Interrupt
	intrDone  bool
}

// NewChaosSource wraps inner with the given fault schedule, initially
// unarmed.
func NewChaosSource(inner FrameSource, cfg ChaosConfig) *ChaosSource {
	return &ChaosSource{
		inner:   inner,
		cfg:     cfg,
		release: make(chan struct{}),
		intr:    make(chan struct{}),
	}
}

// Arm enables (true) or disables (false) fault injection. Arming resets the
// deterministic fault counters and the remaining-redial-failure budget, so
// every armed phase starts the same schedule from the top. Arming in either
// direction cuts short any in-flight scheduled stall or drip sleep, and
// disarming also releases a manual Stall — Arm(false) always gets the
// source flowing again.
func (c *ChaosSource) Arm(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.armed = on
	c.n = 0
	c.failsLeft = 0
	if on {
		c.failsLeft = c.cfg.FailConnects
	}
	if !on && c.stall != nil {
		close(c.stall)
		c.stall = nil
	}
	close(c.release)
	c.release = make(chan struct{})
}

// Stall blocks the source manually: Next waits until Resume, Interrupt, or
// Arm(false). Unlike StallAfter/StallEvery this is operator-driven, for
// tests that want to control exactly when a link goes quiet.
func (c *ChaosSource) Stall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stall == nil {
		c.stall = make(chan struct{})
	}
}

// Resume releases a manual Stall and cuts short any in-flight scheduled
// stall or drip sleep.
func (c *ChaosSource) Resume() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stall != nil {
		close(c.stall)
		c.stall = nil
	}
	close(c.release)
	c.release = make(chan struct{})
}

// Stats snapshots the fault and delivery counters.
func (c *ChaosSource) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Next implements the engine source contract with faults injected per the
// config. Fault order on an armed call: transport errors (fail, EOF, torn)
// first, then stalls and drip delays, then drop bursts, then the real frame.
func (c *ChaosSource) Next() (*csi.Frame, error) {
	for {
		c.mu.Lock()
		stall, intr := c.stall, c.intr
		if stall == nil && !c.armed {
			c.mu.Unlock()
			f, err := c.inner.Next()
			if err == nil {
				c.mu.Lock()
				c.stats.Delivered++
				c.mu.Unlock()
			}
			return f, err
		}
		if stall != nil {
			c.mu.Unlock()
			select {
			case <-stall:
				continue // re-evaluate state after release
			case <-intr:
				return nil, io.EOF
			}
		}

		// Armed: advance the deterministic schedule.
		c.n++
		n := c.n
		cfg := c.cfg
		var (
			sleep time.Duration
			drop  int
			fail  error
		)
		switch {
		case cfg.FailEvery > 0 && n%uint64(cfg.FailEvery) == 0:
			c.stats.Fails++
			fail = ErrChaosDown
		case cfg.EOFEvery > 0 && n%uint64(cfg.EOFEvery) == 0:
			c.stats.EOFs++
			fail = io.EOF
		case cfg.TornEvery > 0 && n%uint64(cfg.TornEvery) == 0:
			c.stats.Torn++
			fail = ErrTornFrame
		}
		if fail == nil && cfg.StallFor > 0 {
			oneShot := cfg.StallAfter > 0 && n == uint64(cfg.StallAfter)
			recurring := cfg.StallEvery > 0 && n%uint64(cfg.StallEvery) == 0
			if oneShot || recurring {
				c.stats.Stalls++
				sleep = cfg.StallFor
			}
		}
		if fail == nil && sleep == 0 && cfg.DripEvery > 0 && cfg.DripDelay > 0 && n%uint64(cfg.DripEvery) == 0 {
			c.stats.Drips++
			sleep = cfg.DripDelay
		}
		if fail == nil && cfg.DropEvery > 0 && cfg.DropBurst > 0 && n%uint64(cfg.DropEvery) == 0 {
			drop = cfg.DropBurst
		}
		release := c.release
		c.mu.Unlock()

		if fail != nil {
			return nil, fail
		}
		if sleep > 0 && !c.wait(sleep, release, intr) {
			return nil, io.EOF
		}
		for drop > 0 {
			f, err := c.inner.Next()
			if err != nil {
				return nil, err
			}
			c.Recycle(f)
			c.mu.Lock()
			c.stats.Dropped++
			c.mu.Unlock()
			drop--
		}
		f, err := c.inner.Next()
		if err == nil {
			c.mu.Lock()
			c.stats.Delivered++
			c.mu.Unlock()
		}
		return f, err
	}
}

// wait sleeps for d; release (an Arm/Resume) cuts the sleep short and lets
// the call proceed, Interrupt aborts it (returns false).
func (c *ChaosSource) wait(d time.Duration, release, intr <-chan struct{}) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-release:
		return true
	case <-intr:
		return false
	}
}

// Recycle implements the recycler contract by delegating to the inner
// source when it pools frames; otherwise the frame is left to the GC.
func (c *ChaosSource) Recycle(f *csi.Frame) {
	if r, ok := c.inner.(interface{ Recycle(*csi.Frame) }); ok {
		r.Recycle(f)
	}
}

// Reconnect implements the supervise reconnect contract. While armed, the
// first FailConnects attempts after each Arm fail with ErrChaosDown — the
// flapping-redial case — after which reconnects succeed (delegating to the
// inner source if it is itself reconnectable).
func (c *ChaosSource) Reconnect(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	if c.armed && c.failsLeft > 0 {
		c.failsLeft--
		c.stats.FailedConnects++
		c.mu.Unlock()
		return ErrChaosDown
	}
	c.mu.Unlock()
	if r, ok := c.inner.(interface{ Reconnect(context.Context) error }); ok {
		if err := r.Reconnect(ctx); err != nil {
			return err
		}
	}
	c.mu.Lock()
	c.stats.Reconnects++
	c.mu.Unlock()
	return nil
}

// Interrupt unblocks a stalled or sleeping Next (it returns io.EOF) and
// propagates to the inner source when it supports interruption. Used at
// shutdown; a ChaosSource is not reusable after Interrupt.
func (c *ChaosSource) Interrupt() {
	c.mu.Lock()
	if !c.intrDone {
		c.intrDone = true
		close(c.intr)
	}
	c.mu.Unlock()
	if in, ok := c.inner.(interface{ Interrupt() }); ok {
		in.Interrupt()
	}
}
