package scenario

import (
	"fmt"
	"math/rand"

	"mlink/internal/body"
	"mlink/internal/geom"
)

// Background models the environmental dynamics of §V-A: "up to 5 students
// work at their desks and occasionally walk around ... but remain about
// 5 meters away from the testing link". Each background person performs a
// bounded random walk around an anchor, contributing weak time-varying
// echoes and occasional shadowing of distant reflected paths — the dynamics
// responsible for the ROC plateau the paper discusses.
type Background struct {
	anchors   []geom.Point
	positions []geom.Point
	// StepSigma is the per-packet random-walk step (metres).
	StepSigma float64
	// Tether bounds how far a person may drift from their anchor.
	Tether float64
	// WalkProb is the chance per packet that a person takes a large step
	// (an "occasional walk").
	WalkProb float64
	rng      *rand.Rand
}

// NewBackground places n background people at the given anchors (cycled if
// n exceeds them).
func NewBackground(n int, anchors []geom.Point, rng *rand.Rand) (*Background, error) {
	if n < 0 {
		return nil, fmt.Errorf("%d background people: %w", n, ErrBadScenario)
	}
	if n > 0 && len(anchors) == 0 {
		return nil, fmt.Errorf("no anchors for %d people: %w", n, ErrBadScenario)
	}
	if n > 0 && rng == nil {
		return nil, fmt.Errorf("nil rng: %w", ErrBadScenario)
	}
	b := &Background{
		StepSigma: 0.02,
		Tether:    0.6,
		WalkProb:  0.01,
		rng:       rng,
	}
	for i := 0; i < n; i++ {
		a := anchors[i%len(anchors)]
		b.anchors = append(b.anchors, a)
		b.positions = append(b.positions, a)
	}
	return b, nil
}

// DefaultAnchors returns anchor points for background people in the far
// region of the scenario's room: the corner farthest from the link
// midpoint, offset inward.
func DefaultAnchors(s *Scenario) []geom.Point {
	mid := s.LinkMidpoint()
	// Probe the rectangle hull of the walls for the farthest region.
	var minX, minY, maxX, maxY float64
	first := true
	for _, w := range s.Env.Room.Walls {
		for _, p := range []geom.Point{w.Seg.A, w.Seg.B} {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	corners := []geom.Point{
		{X: minX + 0.8, Y: minY + 0.8},
		{X: maxX - 0.8, Y: minY + 0.8},
		{X: minX + 0.8, Y: maxY - 0.8},
		{X: maxX - 0.8, Y: maxY - 0.8},
	}
	// Sort corners by distance from the link midpoint, farthest first
	// (insertion sort on 4 elements).
	for i := 1; i < len(corners); i++ {
		for j := i; j > 0 && corners[j].Dist(mid) > corners[j-1].Dist(mid); j-- {
			corners[j], corners[j-1] = corners[j-1], corners[j]
		}
	}
	return corners[:3]
}

// Step advances every background person one packet interval and returns
// their current body models.
func (b *Background) Step() []body.Body {
	out := make([]body.Body, len(b.positions))
	for i := range b.positions {
		step := b.StepSigma
		if b.rng.Float64() < b.WalkProb {
			step = b.StepSigma * 15 // occasional walk
		}
		cand := geom.Point{
			X: b.positions[i].X + b.rng.NormFloat64()*step,
			Y: b.positions[i].Y + b.rng.NormFloat64()*step,
		}
		// Tether to the anchor.
		if cand.Dist(b.anchors[i]) > b.Tether {
			dir := cand.Sub(b.anchors[i])
			cand = b.anchors[i].Add(dir.Scale(b.Tether / dir.Norm()))
		}
		b.positions[i] = cand
		out[i] = body.Body{Position: cand, Radius: 0.2, RCS: 0.4}
	}
	return out
}

// Positions returns the current positions (a copy).
func (b *Background) Positions() []geom.Point {
	return append([]geom.Point(nil), b.positions...)
}

// Len returns the number of background people.
func (b *Background) Len() int { return len(b.positions) }
