// Package scenario reproduces the paper's measurement campaigns as seeded,
// deterministic simulation setups: the 6m×8m classroom of §III-A, the five
// TX–RX link cases of Fig. 6 (LinkCase, or LinkCases for the whole fleet at
// once), the 3×3 presence grids, the 500-location sampler, link-crossing
// trajectories, and the background dynamics (up to five students working
// ≥5 m away) of §V-A.
//
// A Scenario bundles a built propagation environment with the receiver's
// subcarrier grid and impairment model; NewExtractor derives reproducible
// CSI extractors from the scenario seed, and NewSession re-builds the setup
// with the small hardware/placement jitter of the paper's repeated
// campaigns (day/night, two weeks apart).
//
// Environment non-stationarity is first-class: DriftPreset/NewDriftStream
// wrap a scenario's capture stream with deterministic drift mechanisms — a
// linear receive-gain walk, temperature-like oscillator (CFO/STO) drift,
// and a furniture-move step change — the adversarial inputs the adaptation
// layer (internal/adapt) is tested against.
//
// Transport misbehaviour is first-class too: ChaosSource wraps any frame
// source with deterministic, counter-scheduled fault injection — stalls,
// slow drip, mid-stream EOF, transport failures with flapping reconnects,
// silent drop bursts, and torn messages — and counts ground truth in
// ChaosStats. It implements the full supervise source surface (Next,
// Recycle, Reconnect, Interrupt), so the supervision layer
// (internal/supervise) and its soak tests drive a misbehaving link through
// exactly the code paths a real collector outage would.
package scenario
