package scenario

import (
	"fmt"
	"math"

	"mlink/internal/body"
	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

// DriftKind selects an environment-drift mechanism.
type DriftKind int

// The first-class drift scenarios. They promote the "slow gain walk"
// behaviour some simulator seeds exhibited by accident (see CHANGES.md,
// PR 1) into deterministic, parameterized presets a test or experiment can
// ask for by name.
const (
	// DriftNone applies no extra drift: the control arm, exposing only the
	// extractor's own stochastic impairments (AGC jitter and the OU gain
	// process). Useful for separating a preset's effect from the
	// receiver's natural fickleness.
	DriftNone DriftKind = iota + 1
	// DriftGainWalk ramps the receive-chain gain linearly in dB over time —
	// the thermal / AGC-state walk that defeats amplitude profiles frozen
	// at calibration.
	DriftGainWalk
	// DriftCFOWalk models temperature-driven oscillator drift: a slowly
	// accumulating common phase plus a sampling-time-offset ramp (the
	// shared crystal skews both). Phase sanitization makes the detectors
	// largely immune — the preset exists to prove that, not to break them.
	DriftCFOWalk
	// DriftFurnitureMove is a step change: at StepAtPacket an obstacle
	// appears near the link, permanently altering the multipath profile —
	// the case online EWMA adaptation cannot absorb and quarantine +
	// recalibration must catch.
	DriftFurnitureMove
	// DriftAmbient is a correlated receiver-chain event: a slow thermal
	// gain walk plus an AGC re-lock step of StepDB at StepAtPacket. Applied
	// with the same preset to every link of a site it models the
	// environmental change that shifts MANY links at once and in the same
	// direction — the disambiguation test bed for the fleet coordination
	// layer (a person can only cut the Fresnel zones of a few links; a
	// temperature or gain event moves all of them together).
	DriftAmbient
)

// String names the drift kind.
func (k DriftKind) String() string {
	switch k {
	case DriftNone:
		return "no-drift"
	case DriftGainWalk:
		return "gain-walk"
	case DriftCFOWalk:
		return "cfo-walk"
	case DriftFurnitureMove:
		return "furniture-move"
	case DriftAmbient:
		return "ambient"
	default:
		return fmt.Sprintf("driftkind(%d)", int(k))
	}
}

// DriftPreset parameterizes one drift scenario.
type DriftPreset struct {
	// Kind selects the mechanism.
	Kind DriftKind
	// GainDBPerMinute is the gain-walk slope (DriftGainWalk).
	GainDBPerMinute float64
	// STODriftNsPerMinute ramps the residual sampling-time offset
	// (DriftCFOWalk), in nanoseconds per minute.
	STODriftNsPerMinute float64
	// PhaseRadPerPacket is the per-packet common oscillator phase creep
	// (DriftCFOWalk).
	PhaseRadPerPacket float64
	// StepAtPacket is when the furniture moves (DriftFurnitureMove) or the
	// AGC re-locks (DriftAmbient).
	StepAtPacket int
	// StepDB is the gain step applied from StepAtPacket on (DriftAmbient).
	StepDB float64
	// Obstacle overrides the auto-placed furniture segment; nil places a
	// metal panel ~1 m lateral of the link midpoint.
	Obstacle *geom.Segment
	// ObstacleMat is the obstacle material (zero value = Metal).
	ObstacleMat propagation.Material
}

// NoDrift returns the control preset (capture impairments only).
func NoDrift() DriftPreset {
	return DriftPreset{Kind: DriftNone}
}

// GainWalk returns a linear gain-walk preset. Simulated campaigns compress
// hours into seconds, so slopes are steeper than physical thermal drift;
// 4 dB/min walks a 150-packet calibration profile well past a 1.3× margin
// within a 10× monitoring run.
func GainWalk(dbPerMinute float64) DriftPreset {
	return DriftPreset{Kind: DriftGainWalk, GainDBPerMinute: dbPerMinute}
}

// CFOWalk returns a temperature-like oscillator-drift preset.
func CFOWalk(stoNsPerMinute, phaseRadPerPacket float64) DriftPreset {
	return DriftPreset{
		Kind:                DriftCFOWalk,
		STODriftNsPerMinute: stoNsPerMinute,
		PhaseRadPerPacket:   phaseRadPerPacket,
	}
}

// FurnitureMove returns a step-change preset: the default metal panel
// appears at the given packet.
func FurnitureMove(stepAtPacket int) DriftPreset {
	return DriftPreset{Kind: DriftFurnitureMove, StepAtPacket: stepAtPacket}
}

// AmbientDrift returns the correlated site-wide preset: a slow gain walk of
// dbPerMinute plus an AGC re-lock step of stepDB at stepAtPacket. Apply the
// SAME preset to every link of a site — correlation across links is the
// point; the streams advance in lockstep, so every link sees the identical
// gain trajectory against its own noise process.
func AmbientDrift(dbPerMinute, stepDB float64, stepAtPacket int) DriftPreset {
	return DriftPreset{
		Kind:            DriftAmbient,
		GainDBPerMinute: dbPerMinute,
		StepDB:          stepDB,
		StepAtPacket:    stepAtPacket,
	}
}

// WithObstacle rebuilds the scenario with one extra interior obstacle — the
// post-step world of a furniture-move drift. The original scenario's room is
// cloned, never mutated.
func (s *Scenario) WithObstacle(seg geom.Segment, mat propagation.Material) (*Scenario, error) {
	room := s.room.Clone()
	room.AddObstacle(seg, mat)
	out, err := Build(Spec{
		Name:       s.Name + "+obstacle",
		Room:       room,
		TX:         s.tx,
		RXCenter:   s.rxCenter,
		NumAnts:    s.numAnts,
		Params:     s.params,
		MaxBounces: s.maxBounces,
		Imp:        s.Imp,
		PacketRate: s.PacketRate,
		Seed:       s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("with obstacle: %w", err)
	}
	return out, nil
}

// defaultFurniture places a 1.2 m panel parallel to the link, one metre to
// its side at the midpoint — close enough to reroute reflected energy
// through the monitored zone, far enough not to block the LOS.
func (s *Scenario) defaultFurniture() geom.Segment {
	dir := s.rxCenter.Sub(s.tx)
	l := dir.Norm()
	u := dir.Scale(1 / l)
	v := geom.Point{X: -u.Y, Y: u.X}
	mid := s.LinkMidpoint().Add(v.Scale(1.0))
	return geom.Segment{A: mid.Sub(u.Scale(0.6)), B: mid.Add(u.Scale(0.6))}
}

// DriftStream is a frame source that captures from the scenario and applies
// the preset's drift on top — a drop-in engine source (it implements the
// engine's Source and FrameRecycler contracts structurally) whose occupancy
// can be switched between calibration and monitoring via SetBodies.
//
// Frames are pooled and written via the allocation-free CaptureInto path;
// like every engine source it must be driven by one goroutine at a time.
type DriftStream struct {
	preset DriftPreset
	rate   float64
	freqs  []float64
	center float64

	pre, post *csi.Extractor
	pool      *csi.FramePool
	bodies    []body.Body
	n         int
}

// NewDriftStream builds the drifting frame source. seedOffset derives the
// capture RNG exactly as Scenario.NewExtractor does, so a drift stream and
// a plain extractor with the same offset see identical impairment draws.
func (s *Scenario) NewDriftStream(preset DriftPreset, seedOffset int64) (*DriftStream, error) {
	switch preset.Kind {
	case DriftNone, DriftGainWalk, DriftCFOWalk, DriftFurnitureMove, DriftAmbient:
	default:
		return nil, fmt.Errorf("unknown drift kind %d: %w", int(preset.Kind), ErrBadScenario)
	}
	pre, err := s.NewExtractor(seedOffset)
	if err != nil {
		return nil, err
	}
	d := &DriftStream{
		preset: preset,
		rate:   s.PacketRate,
		freqs:  s.Grid.Frequencies(),
		center: s.Grid.Center,
		pre:    pre,
		pool:   csi.NewFramePool(len(s.Env.RX.Elements), s.Grid.Len()),
	}
	if preset.Kind == DriftFurnitureMove {
		if preset.StepAtPacket < 0 {
			return nil, fmt.Errorf("furniture step at packet %d: %w", preset.StepAtPacket, ErrBadScenario)
		}
		seg := preset.Obstacle
		if seg == nil {
			def := s.defaultFurniture()
			seg = &def
		}
		mat := preset.ObstacleMat
		if mat == (propagation.Material{}) {
			mat = propagation.Metal
		}
		moved, err := s.WithObstacle(*seg, mat)
		if err != nil {
			return nil, err
		}
		// A distinct RNG stream after the step is realistic (nothing about
		// the noise process survives a furniture move).
		d.post, err = moved.NewExtractor(seedOffset + 7777)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// SetBodies switches the people present for subsequent captures (nil =
// empty room). Call between engine phases, never concurrently with Next.
func (d *DriftStream) SetBodies(bodies []body.Body) { d.bodies = bodies }

// Packets returns how many frames the stream has emitted.
func (d *DriftStream) Packets() int { return d.n }

// AppliedGainDB reports the gain offset the NEXT frame will receive — how
// far the baseline has walked (and, for the ambient preset, stepped) so far.
func (d *DriftStream) AppliedGainDB() float64 {
	switch d.preset.Kind {
	case DriftGainWalk:
		return d.preset.GainDBPerMinute * float64(d.n) / (60 * d.rate)
	case DriftAmbient:
		g := d.preset.GainDBPerMinute * float64(d.n) / (60 * d.rate)
		if d.n >= d.preset.StepAtPacket {
			g += d.preset.StepDB
		}
		return g
	default:
		return 0
	}
}

// Stepped reports whether the furniture move has happened.
func (d *DriftStream) Stepped() bool {
	return d.post != nil && d.n >= d.preset.StepAtPacket
}

// Next implements the engine Source contract.
func (d *DriftStream) Next() (*csi.Frame, error) {
	x := d.pre
	if d.Stepped() {
		x = d.post
	}
	f := d.pool.Get()
	if err := x.CaptureInto(f, d.bodies); err != nil {
		d.pool.Put(f)
		return nil, err
	}
	switch d.preset.Kind {
	case DriftGainWalk, DriftAmbient:
		gdB := d.AppliedGainDB()
		g := math.Pow(10, gdB/20)
		for ant := range f.CSI {
			row := f.CSI[ant]
			for k := range row {
				row[k] *= complex(g, 0)
			}
			f.RSSI[ant] += gdB
		}
	case DriftCFOWalk:
		minutes := float64(d.n) / (60 * d.rate)
		sto := d.preset.STODriftNsPerMinute * 1e-9 * minutes
		phi := d.preset.PhaseRadPerPacket * float64(d.n)
		for ant := range f.CSI {
			row := f.CSI[ant]
			for k := range row {
				sin, cos := math.Sincos(phi - 2*math.Pi*(d.freqs[k]-d.center)*sto)
				row[k] *= complex(cos, sin)
			}
		}
	}
	d.n++
	return f, nil
}

// Recycle implements the engine FrameRecycler contract.
func (d *DriftStream) Recycle(f *csi.Frame) { d.pool.Put(f) }
