package scenario

import "testing"

func TestLinkCasesFleet(t *testing.T) {
	fleet, err := LinkCases(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != NumLinkCases {
		t.Fatalf("fleet of %d, want %d", len(fleet), NumLinkCases)
	}
	names := make(map[string]bool)
	seeds := make(map[int64]bool)
	for i, s := range fleet {
		one, err := LinkCase(i+1, 3+int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != one.Name {
			t.Errorf("case %d named %q, want %q", i+1, s.Name, one.Name)
		}
		if names[s.Name] {
			t.Errorf("duplicate case name %q", s.Name)
		}
		names[s.Name] = true
		if seeds[s.Seed] {
			t.Errorf("cases share seed %d — fleet links must be independent", s.Seed)
		}
		seeds[s.Seed] = true
		if s.LinkLength() <= 0 {
			t.Errorf("case %d has zero link length", i+1)
		}
	}
}
