package scenario

import (
	"errors"
	"math"
	"testing"

	"mlink/internal/body"
	"mlink/internal/propagation"
)

func classroom(t *testing.T) *Scenario {
	t.Helper()
	s, err := Classroom(7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDriftStreamNoDriftMatchesExtractor(t *testing.T) {
	s := classroom(t)
	stream, err := s.NewDriftStream(NoDrift(), 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(3)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed offset → identical captures: the no-drift stream is a
	// transparent source.
	for i := 0; i < 5; i++ {
		got, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := x.Capture(nil)
		for ant := range want.CSI {
			for k := range want.CSI[ant] {
				if got.CSI[ant][k] != want.CSI[ant][k] {
					t.Fatalf("packet %d differs at [%d][%d]", i, ant, k)
				}
			}
		}
		stream.Recycle(got)
	}
}

func TestDriftStreamGainWalk(t *testing.T) {
	s := classroom(t)
	// 60 dB/min = 1 dB/s = 0.02 dB/packet at 50 pkt/s.
	stream, err := s.NewDriftStream(GainWalk(60), 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var lastGain float64
	for i := 0; i < n; i++ {
		wantGainDB := stream.AppliedGainDB()
		got, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := x.Capture(nil)
		g := math.Pow(10, wantGainDB/20)
		for ant := range want.CSI {
			for k := range want.CSI[ant] {
				scaled := want.CSI[ant][k] * complex(g, 0)
				if d := got.CSI[ant][k] - scaled; math.Hypot(real(d), imag(d)) > 1e-9*math.Hypot(real(scaled), imag(scaled))+1e-15 {
					t.Fatalf("packet %d: gain not applied exactly at [%d][%d]", i, ant, k)
				}
			}
			if math.Abs(got.RSSI[ant]-(want.RSSI[ant]+wantGainDB)) > 1e-9 {
				t.Fatalf("packet %d: RSSI not shifted by %v dB", i, wantGainDB)
			}
		}
		lastGain = wantGainDB
		stream.Recycle(got)
	}
	expected := 60 * float64(n-1) / (60 * s.PacketRate)
	if math.Abs(lastGain-expected) > 1e-9 {
		t.Fatalf("gain after %d packets = %v dB, want %v", n, lastGain, expected)
	}
}

func TestDriftStreamCFOWalkPreservesAmplitude(t *testing.T) {
	s := classroom(t)
	stream, err := s.NewDriftStream(CFOWalk(120, 0.1), 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := x.Capture(nil)
		for ant := range want.CSI {
			for k := range want.CSI[ant] {
				ga := math.Hypot(real(got.CSI[ant][k]), imag(got.CSI[ant][k]))
				wa := math.Hypot(real(want.CSI[ant][k]), imag(want.CSI[ant][k]))
				if math.Abs(ga-wa) > 1e-9*wa+1e-15 {
					t.Fatalf("packet %d: CFO walk changed |H| at [%d][%d]: %v vs %v", i, ant, k, ga, wa)
				}
			}
		}
		stream.Recycle(got)
	}
}

func TestDriftStreamFurnitureStep(t *testing.T) {
	s := classroom(t)
	const stepAt = 50
	stream, err := s.NewDriftStream(FurnitureMove(stepAt), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Mean per-subcarrier power before and after the step must differ: the
	// new obstacle reroutes multipath.
	power := func(from, to int) float64 {
		var acc float64
		var cnt int
		for i := from; i < to; i++ {
			if stream.Stepped() != (i >= stepAt) {
				t.Fatalf("packet %d: Stepped() = %v", i, stream.Stepped())
			}
			f, err := stream.Next()
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range f.CSI {
				for _, v := range row {
					acc += real(v)*real(v) + imag(v)*imag(v)
					cnt++
				}
			}
			stream.Recycle(f)
		}
		return acc / float64(cnt)
	}
	before := power(0, stepAt)
	after := power(stepAt, 2*stepAt)
	rel := math.Abs(after-before) / before
	if rel < 0.02 {
		t.Fatalf("furniture move changed mean power by only %.2f%% — step invisible", 100*rel)
	}
}

func TestDriftStreamBodiesSwitch(t *testing.T) {
	s := classroom(t)
	stream, err := s.NewDriftStream(NoDrift(), 5)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	emptyPow := 0.0
	for _, v := range empty.CSI[1] {
		emptyPow += real(v)*real(v) + imag(v)*imag(v)
	}
	stream.Recycle(empty)
	stream.SetBodies([]body.Body{body.Default(s.LinkMidpoint())})
	occ, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	occPow := 0.0
	for _, v := range occ.CSI[1] {
		occPow += real(v)*real(v) + imag(v)*imag(v)
	}
	if occPow >= emptyPow {
		t.Fatalf("LOS-blocking body did not attenuate: %v >= %v", occPow, emptyPow)
	}
}

func TestDriftPresetValidation(t *testing.T) {
	s := classroom(t)
	if _, err := s.NewDriftStream(DriftPreset{Kind: DriftKind(99)}, 1); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("unknown kind err = %v", err)
	}
	if _, err := s.NewDriftStream(DriftPreset{Kind: DriftFurnitureMove, StepAtPacket: -1}, 1); !errors.Is(err, ErrBadScenario) {
		t.Fatalf("negative step err = %v", err)
	}
	for _, k := range []DriftKind{DriftNone, DriftGainWalk, DriftCFOWalk, DriftFurnitureMove} {
		if k.String() == "" || len(k.String()) > 40 {
			t.Fatalf("bad name for kind %d", k)
		}
	}
}

func TestWithObstacleDoesNotMutateOriginal(t *testing.T) {
	s := classroom(t)
	wallsBefore := len(s.Env.Room.Walls)
	moved, err := s.WithObstacle(s.defaultFurniture(), propagation.Metal)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Env.Room.Walls) != wallsBefore {
		t.Fatalf("original room mutated: %d walls, had %d", len(s.Env.Room.Walls), wallsBefore)
	}
	if len(moved.Env.Room.Walls) != wallsBefore+1 {
		t.Fatalf("obstacle not added: %d walls", len(moved.Env.Room.Walls))
	}
}

// TestDriftStreamAmbient: the correlated site-wide preset applies the slow
// walk everywhere and adds the AGC re-lock step exactly at StepAtPacket, and
// the applied gain matches AppliedGainDB packet for packet.
func TestDriftStreamAmbient(t *testing.T) {
	s := classroom(t)
	const stepAt = 60
	stream, err := s.NewDriftStream(AmbientDrift(60, 6, stepAt), 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.NewExtractor(3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		wantGainDB := stream.AppliedGainDB()
		wantWalk := 60 * float64(i) / (60 * s.PacketRate)
		if i >= stepAt {
			wantWalk += 6
		}
		if math.Abs(wantGainDB-wantWalk) > 1e-12 {
			t.Fatalf("packet %d: AppliedGainDB %v, want %v", i, wantGainDB, wantWalk)
		}
		got, err := stream.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := x.Capture(nil)
		g := math.Pow(10, wantGainDB/20)
		for ant := range want.CSI {
			for k := range want.CSI[ant] {
				scaled := want.CSI[ant][k] * complex(g, 0)
				if d := got.CSI[ant][k] - scaled; math.Hypot(real(d), imag(d)) > 1e-9*math.Hypot(real(scaled), imag(scaled))+1e-15 {
					t.Fatalf("packet %d: ambient gain not applied exactly", i)
				}
			}
			if math.Abs(got.RSSI[ant]-(want.RSSI[ant]+wantGainDB)) > 1e-9 {
				t.Fatalf("packet %d: RSSI not shifted by %v dB", i, wantGainDB)
			}
		}
		stream.Recycle(got)
	}
	// Two streams with the same preset see the same gain trajectory — the
	// correlation the fleet layer keys on.
	a, err := s.NewDriftStream(AmbientDrift(60, 6, stepAt), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.NewDriftStream(AmbientDrift(60, 6, stepAt), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if a.AppliedGainDB() != b.AppliedGainDB() {
			t.Fatalf("packet %d: streams decorrelated: %v vs %v", i, a.AppliedGainDB(), b.AppliedGainDB())
		}
		fa, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		a.Recycle(fa)
		b.Recycle(fb)
	}
}
