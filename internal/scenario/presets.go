package scenario

import (
	"fmt"

	"mlink/internal/csi"
	"mlink/internal/geom"
	"mlink/internal/propagation"
)

// NumLinkCases is the number of evaluation links in Fig. 6.
const NumLinkCases = 5

// classroom builds the 6m×8m classroom of §III-A: drywall construction with
// one concrete long wall and a metal whiteboard creating rich multipath.
func classroomRoom() (*propagation.Room, error) {
	room, err := propagation.RectRoom(6, 8, propagation.Drywall)
	if err != nil {
		return nil, err
	}
	room.Walls[1].Mat = propagation.Concrete // x=6 long wall
	room.PathLossExponent = 2.8
	// Whiteboard on the x=0 wall.
	room.AddObstacle(geom.Segment{A: geom.Point{X: 0.02, Y: 3}, B: geom.Point{X: 0.02, Y: 5}}, propagation.Metal)
	return room, nil
}

// officeRoom builds the second, furnished office room of §V-A.
func officeRoom() (*propagation.Room, error) {
	room, err := propagation.RectRoom(7, 9, propagation.Brick)
	if err != nil {
		return nil, err
	}
	room.PathLossExponent = 3.0
	// Desk rows and a filing cabinet.
	room.AddObstacle(geom.Segment{A: geom.Point{X: 1, Y: 7.5}, B: geom.Point{X: 3.5, Y: 7.5}}, propagation.Furniture)
	room.AddObstacle(geom.Segment{A: geom.Point{X: 4.5, Y: 7.8}, B: geom.Point{X: 6.5, Y: 7.8}}, propagation.Furniture)
	room.AddObstacle(geom.Segment{A: geom.Point{X: 6.8, Y: 1}, B: geom.Point{X: 6.8, Y: 2.5}}, propagation.Metal)
	return room, nil
}

// vacantRoom builds a sparsely furnished area (Case 3's "relatively vacant
// area with a strong LOS path").
func vacantRoom() (*propagation.Room, error) {
	room, err := propagation.RectRoom(10, 12, propagation.Drywall)
	if err != nil {
		return nil, err
	}
	room.PathLossExponent = 2.4
	return room, nil
}

// Classroom returns the §III characterization setup: a 4 m link across the
// 6m×8m classroom.
func Classroom(seed int64) (*Scenario, error) {
	room, err := classroomRoom()
	if err != nil {
		return nil, fmt.Errorf("classroom: %w", err)
	}
	return Build(Spec{
		Name:       "classroom-4m",
		Room:       room,
		TX:         geom.Point{X: 1, Y: 4},
		RXCenter:   geom.Point{X: 5, Y: 4},
		NumAnts:    3,
		Params:     propagation.DefaultLinkParams(),
		MaxBounces: 2,
		Imp:        csi.DefaultImpairments(),
		Seed:       seed,
	})
}

// ShortLinkNearWall returns the 3 m link placed close to a concrete wall
// used for the AoA experiments (§IV-B2, Fig. 5).
func ShortLinkNearWall(seed int64) (*Scenario, error) {
	room, err := classroomRoom()
	if err != nil {
		return nil, fmt.Errorf("short link: %w", err)
	}
	return Build(Spec{
		Name:       "short-3m-near-wall",
		Room:       room,
		TX:         geom.Point{X: 1.5, Y: 6.8},
		RXCenter:   geom.Point{X: 4.5, Y: 6.8},
		NumAnts:    3,
		Params:     propagation.DefaultLinkParams(),
		MaxBounces: 2,
		Imp:        csi.DefaultImpairments(),
		Seed:       seed,
	})
}

// LinkCases builds all NumLinkCases evaluation links of Fig. 6 as one
// fleet, deriving a distinct seed per case — the multi-link deployment the
// monitoring engine manages.
func LinkCases(seed int64) ([]*Scenario, error) {
	out := make([]*Scenario, 0, NumLinkCases)
	for n := 1; n <= NumLinkCases; n++ {
		s, err := LinkCase(n, seed+int64(n))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// LinkCase returns evaluation link case n ∈ [1,5] (Fig. 6): five links with
// diverse TX–RX distances across two rooms (plus the vacant area of
// Case 3).
func LinkCase(n int, seed int64) (*Scenario, error) {
	spec := Spec{
		NumAnts:    3,
		Params:     propagation.DefaultLinkParams(),
		MaxBounces: 2,
		Imp:        csi.DefaultImpairments(),
		Seed:       seed,
	}
	var err error
	switch n {
	case 1:
		spec.Name = "case1-classroom-5.7m"
		spec.Room, err = classroomRoom()
		spec.TX = geom.Point{X: 1, Y: 2}
		spec.RXCenter = geom.Point{X: 5, Y: 6}
	case 2:
		spec.Name = "case2-classroom-4m"
		spec.Room, err = classroomRoom()
		spec.TX = geom.Point{X: 1, Y: 4}
		spec.RXCenter = geom.Point{X: 5, Y: 4}
	case 3:
		spec.Name = "case3-vacant-3m"
		spec.Room, err = vacantRoom()
		spec.TX = geom.Point{X: 3.5, Y: 6}
		spec.RXCenter = geom.Point{X: 6.5, Y: 6}
	case 4:
		spec.Name = "case4-office-4.2m"
		spec.Room, err = officeRoom()
		spec.TX = geom.Point{X: 1.2, Y: 2.8}
		spec.RXCenter = geom.Point{X: 5.2, Y: 4.1}
	case 5:
		spec.Name = "case5-office-5.5m"
		spec.Room, err = officeRoom()
		spec.TX = geom.Point{X: 0.8, Y: 1.0}
		spec.RXCenter = geom.Point{X: 5.3, Y: 4.0} // runs near the metal cabinet wall
	default:
		return nil, fmt.Errorf("link case %d (valid: 1..%d): %w", n, NumLinkCases, ErrBadScenario)
	}
	if err != nil {
		return nil, fmt.Errorf("case %d room: %w", n, err)
	}
	return Build(spec)
}
