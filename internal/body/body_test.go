package body

import (
	"math"
	"testing"

	"mlink/internal/geom"
)

const wavelength = 0.1217 // ~2.4 GHz

func losPath(length float64) geom.Polyline {
	return geom.Polyline{{X: 0, Y: 0}, {X: length, Y: 0}}
}

func TestShadowGainFarFromPath(t *testing.T) {
	b := Default(geom.Point{X: 2, Y: 3}) // 3 m off a 4 m link
	g := b.ShadowGain(losPath(4), wavelength)
	if g != 1 {
		t.Fatalf("far body gain = %v, want 1", g)
	}
}

func TestShadowGainBlockingMidpath(t *testing.T) {
	b := Default(geom.Point{X: 2, Y: 0}) // dead centre of a 4 m link
	g := b.ShadowGain(losPath(4), wavelength)
	if g >= 1 {
		t.Fatalf("blocking body gain = %v, want < 1", g)
	}
	// A centred adult should attenuate by several dB at 2.4 GHz.
	db := b.ShadowGainDB(losPath(4), wavelength)
	if db < 3 || db > 30 {
		t.Fatalf("blocking loss = %v dB, want within [3, 30]", db)
	}
}

func TestShadowGainMonotoneInClearance(t *testing.T) {
	// Moving the body away from the path must not increase attenuation.
	prev := -1.0
	for _, y := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.6, 1.0, 2.0} {
		b := Default(geom.Point{X: 2, Y: y})
		g := b.ShadowGain(losPath(4), wavelength)
		if g < prev {
			t.Fatalf("gain decreased with clearance at y=%v: %v < %v", y, g, prev)
		}
		if g < 0 || g > 1 {
			t.Fatalf("gain out of range at y=%v: %v", y, g)
		}
		prev = g
	}
}

func TestShadowGainSensitivityRegion(t *testing.T) {
	// The paper (§IV-B) cites a sensitivity region of 5–6 wavelengths
	// around the LOS path. Beyond ~8 wavelengths the gain must be ≈1.
	b := Default(geom.Point{X: 2, Y: 8 * wavelength})
	g := b.ShadowGain(losPath(4), wavelength)
	if g < 0.97 {
		t.Fatalf("gain at 8λ clearance = %v, want ≈1", g)
	}
	// Within one wavelength of the path edge there must be measurable loss.
	near := Default(geom.Point{X: 2, Y: 0.2 + 0.5*wavelength})
	if gn := near.ShadowGain(losPath(4), wavelength); gn > 0.95 {
		t.Fatalf("gain just off the body radius = %v, want < 0.95", gn)
	}
}

func TestShadowGainNearEndpointsIsOne(t *testing.T) {
	// Bodies at (or beyond) the antennas do not trigger the knife-edge
	// model (degenerate geometry handled explicitly).
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: -1, Y: 0}, {X: 5, Y: 0.1}} {
		b := Default(p)
		if g := b.ShadowGain(losPath(4), wavelength); g != 1 {
			t.Fatalf("endpoint body at %v gain = %v, want 1", p, g)
		}
	}
}

func TestShadowGainMultiSegment(t *testing.T) {
	// A bent (reflected) path is shadowed when the body blocks either leg.
	path := geom.Polyline{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 4, Y: 0}}
	onLeg := Default(geom.Point{X: 1, Y: 1})
	if g := onLeg.ShadowGain(path, wavelength); g >= 1 {
		t.Fatalf("body on first leg gain = %v, want < 1", g)
	}
	offPath := Default(geom.Point{X: 2, Y: 0})
	gOff := offPath.ShadowGain(path, wavelength)
	// The apex path passes ~1.4 m from (2,0): clear.
	if gOff < 0.99 {
		t.Fatalf("body far from bent path gain = %v, want ≈1", gOff)
	}
}

func TestShadowGainBothLegsWorseThanOne(t *testing.T) {
	// Body close to the bounce vertex shadows two legs: compound loss must
	// be at least the single-leg loss.
	path := geom.Polyline{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0.5}}
	b := Default(geom.Point{X: 2, Y: 0.05})
	g := b.ShadowGain(path, wavelength)
	single := b.segmentShadowGain(path.Segments()[0], wavelength)
	if g > single+1e-12 {
		t.Fatalf("compound gain %v exceeds single-leg gain %v", g, single)
	}
}

func TestKnifeEdgeLossContinuity(t *testing.T) {
	// J(v) must be continuous at the validity threshold v = -0.78 and
	// increasing in v.
	lo := knifeEdgeLossDB(-0.78)
	hi := knifeEdgeLossDB(-0.7799)
	if math.Abs(lo-0) > 1e-12 {
		t.Fatalf("J(-0.78) = %v, want 0", lo)
	}
	if hi < 0 || hi > 0.05 {
		t.Fatalf("J just above threshold = %v, want ≈0", hi)
	}
	prev := -1.0
	for v := -0.78; v <= 3; v += 0.05 {
		j := knifeEdgeLossDB(v)
		if j < prev {
			t.Fatalf("J not monotone at v=%v", v)
		}
		prev = j
	}
	// Reference value: J(0) ≈ 6 dB (half-plane grazing incidence).
	if j0 := knifeEdgeLossDB(0); math.Abs(j0-6.0) > 0.5 {
		t.Fatalf("J(0) = %v, want ≈6 dB", j0)
	}
}

func TestEchoAmplitudeScale(t *testing.T) {
	b := Body{RCS: 4 * math.Pi}
	if got := b.EchoAmplitudeScale(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("scale = %v, want 1", got)
	}
	if got := (Body{RCS: 0}).EchoAmplitudeScale(); got != 0 {
		t.Fatalf("zero RCS scale = %v", got)
	}
	if got := (Body{RCS: -1}).EchoAmplitudeScale(); got != 0 {
		t.Fatalf("negative RCS scale = %v", got)
	}
}

func TestShadowGainDBInfinityGuard(t *testing.T) {
	b := Default(geom.Point{X: 2, Y: 10})
	if db := b.ShadowGainDB(losPath(4), wavelength); db != 0 {
		t.Fatalf("clear path loss = %v dB, want 0", db)
	}
}

func TestDefaultBody(t *testing.T) {
	b := Default(geom.Point{X: 1, Y: 2})
	if b.Position != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("position = %v", b.Position)
	}
	if b.Radius <= 0 || b.RCS <= 0 {
		t.Fatalf("default body not physical: %+v", b)
	}
}

func TestShadowDeeperBlockMoreLoss(t *testing.T) {
	// A larger body blocking the same path must attenuate at least as much.
	small := Body{Position: geom.Point{X: 2, Y: 0}, Radius: 0.1, RCS: 0.5}
	large := Body{Position: geom.Point{X: 2, Y: 0}, Radius: 0.3, RCS: 0.5}
	gs := small.ShadowGain(losPath(4), wavelength)
	gl := large.ShadowGain(losPath(4), wavelength)
	if gl > gs {
		t.Fatalf("larger body shadows less: %v > %v", gl, gs)
	}
}
