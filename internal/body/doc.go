// Package body models the effect of a human body on radio rays, following
// the two mechanisms the paper identifies (§II-A, §III-B):
//
//   - Shadowing: when a person stands on or near a propagation path the
//     path's amplitude is attenuated. We model the body as a dielectric
//     cylinder (as in the paper's reference [19]) and compute the
//     attenuation with the ITU-R P.526 single knife-edge diffraction
//     approximation, which naturally yields the "5–6 wavelength sensitivity
//     region" around the LOS path quoted in §IV-B.
//   - Reflection: a person near (but off) a path creates a new single-bounce
//     path (Eq. 7). We expose a radar cross-section (RCS) so the
//     propagation package can synthesize that bistatic echo ray.
//
// The knife-edge model splits into a frequency-independent geometric half
// (SegmentGeometry) and a per-wavelength half (ShadowGeometry.GainAt), so
// the propagation package's phasor cache can classify obstructions once per
// packet and only re-evaluate the Fresnel term per subcarrier.
package body
