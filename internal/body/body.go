package body

import (
	"math"

	"mlink/internal/geom"
)

// Body is a human target (or background person) in the room plane.
type Body struct {
	// Position is the body-axis location in room coordinates (metres).
	Position geom.Point
	// Radius is the effective cylinder radius in metres (≈0.15–0.3 for a
	// standing adult, shoulder orientation dependent).
	Radius float64
	// RCS is the bistatic radar cross-section in m² governing how much power
	// the body scatters towards the receiver (≈0.3–1.0 at 2.4 GHz).
	RCS float64
}

// Default returns a typical adult standing at p.
func Default(p geom.Point) Body {
	return Body{Position: p, Radius: 0.2, RCS: 0.8}
}

// knifeEdgeLossDB returns the ITU-R P.526 approximation of single knife-edge
// diffraction loss in dB for Fresnel parameter v. Zero loss below the
// validity threshold v ≤ -0.78 (obstacle well clear of the first Fresnel
// zone).
func knifeEdgeLossDB(v float64) float64 {
	if v <= -0.78 {
		return 0
	}
	return 6.9 + 20*math.Log10(math.Sqrt((v-0.1)*(v-0.1)+1)+v-0.1)
}

// ShadowGeometry is the frequency-independent half of the knife-edge model
// for one (body, segment) pair. Callers that evaluate many wavelengths
// against fixed geometry (the propagation cache) compute it once and call
// GainAt per subcarrier.
type ShadowGeometry struct {
	// VCoeff is the wavelength-independent Fresnel coefficient
	// h·√(2(d1+d2)/(d1·d2)); the Fresnel parameter at wavelength λ is
	// v = VCoeff/√λ. Negative when the body sits clear of the ray.
	VCoeff float64
}

// SegmentGeometry classifies the body against one ray segment. It returns
// the obstruction geometry and whether the knife-edge gain can differ from 1
// at any wavelength ≤ maxLambda; when ok is false the pair contributes gain
// 1 at every such wavelength and may be skipped.
func (b Body) SegmentGeometry(seg geom.Segment, maxLambda float64) (g ShadowGeometry, ok bool) {
	closest, t := seg.ClosestPoint(b.Position)
	// The knife-edge model needs the obstacle strictly between the segment
	// endpoints; at the clamped ends the body sits beside a terminal, where
	// the blocking geometry degenerates. Treat near-endpoint positions as
	// non-obstructing (the endpoint is an antenna or a bounce point the body
	// would have to envelop to block, handled by the radius test below).
	d1 := seg.A.Dist(closest)
	d2 := closest.Dist(seg.B)
	if t <= 0 || t >= 1 || d1 < 1e-6 || d2 < 1e-6 {
		return ShadowGeometry{}, false
	}
	h := b.Radius - closest.Dist(b.Position)
	g = ShadowGeometry{VCoeff: h * math.Sqrt(2*(d1+d2)/(d1*d2))}
	if g.VCoeff < 0 {
		// |v| grows as λ shrinks, so a body that clears the Fresnel
		// threshold at the largest wavelength clears it at every shorter
		// one.
		if g.VCoeff/math.Sqrt(maxLambda) <= -0.78 {
			return ShadowGeometry{}, false
		}
	}
	return g, true
}

// GainAt evaluates the knife-edge amplitude gain (≤ 1) at one wavelength.
func (g ShadowGeometry) GainAt(wavelength float64) float64 {
	loss := knifeEdgeLossDB(g.VCoeff / math.Sqrt(wavelength))
	return math.Pow(10, -loss/20)
}

// segmentShadowGain returns the amplitude factor (≤ 1) a body imposes on one
// ray segment at the given wavelength.
func (b Body) segmentShadowGain(seg geom.Segment, wavelength float64) float64 {
	g, ok := b.SegmentGeometry(seg, wavelength)
	if !ok {
		return 1
	}
	return g.GainAt(wavelength)
}

// ShadowGain returns the total amplitude factor the body imposes on a
// multi-segment ray (product over segments). It equals 1 when the body is
// far from every segment and decreases smoothly as the body enters the first
// Fresnel zone of any leg.
func (b Body) ShadowGain(path geom.Polyline, wavelength float64) float64 {
	gain := 1.0
	for _, seg := range path.Segments() {
		gain *= b.segmentShadowGain(seg, wavelength)
	}
	return gain
}

// ShadowGainDB returns ShadowGain expressed as an amplitude loss in dB
// (≥ 0; 0 means no shadowing).
func (b Body) ShadowGainDB(path geom.Polyline, wavelength float64) float64 {
	g := b.ShadowGain(path, wavelength)
	if g <= 0 {
		return math.Inf(1)
	}
	return -20 * math.Log10(g)
}

// EchoAmplitudeScale returns the bistatic-radar amplitude scale factor
// √(σ/4π) used by the propagation package when it synthesizes the
// human-created reflection ray TX→body→RX.
func (b Body) EchoAmplitudeScale() float64 {
	if b.RCS <= 0 {
		return 0
	}
	return math.Sqrt(b.RCS / (4 * math.Pi))
}
