package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func almostEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1 + 2i, 3}
	w := Vector{2 - 1i, -3}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if !almostEq(sum[0], 3+1i, eps) || !almostEq(sum[1], 0, eps) {
		t.Fatalf("sum = %v", sum)
	}
	diff, err := v.Sub(w)
	if err != nil {
		t.Fatalf("sub: %v", err)
	}
	if !almostEq(diff[0], -1+3i, eps) || !almostEq(diff[1], 6, eps) {
		t.Fatalf("diff = %v", diff)
	}
}

func TestVectorDimensionMismatch(t *testing.T) {
	v := Vector{1}
	w := Vector{1, 2}
	if _, err := v.Add(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("add err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Sub(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("sub err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := v.Dot(w); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("dot err = %v, want ErrDimensionMismatch", err)
	}
}

func TestVectorDotHermitian(t *testing.T) {
	v := Vector{1 + 1i, 2}
	// conj(v)·v must be real and equal |v|².
	d, err := v.Dot(v)
	if err != nil {
		t.Fatalf("dot: %v", err)
	}
	if math.Abs(imag(d)) > eps {
		t.Fatalf("self dot not real: %v", d)
	}
	if math.Abs(real(d)-6) > eps {
		t.Fatalf("self dot = %v, want 6", real(d))
	}
}

func TestVectorNormNormalize(t *testing.T) {
	v := Vector{3, 4i}
	if got := v.Norm(); math.Abs(got-5) > eps {
		t.Fatalf("norm = %v, want 5", got)
	}
	u := v.Normalize()
	if math.Abs(u.Norm()-1) > eps {
		t.Fatalf("normalized norm = %v", u.Norm())
	}
	var zero Vector = Vector{0, 0}
	z := zero.Normalize()
	if z.Norm() != 0 {
		t.Fatalf("zero normalize changed vector: %v", z)
	}
}

func TestVectorAbsPowerPhase(t *testing.T) {
	v := Vector{1i, -2}
	abs := v.Abs()
	if math.Abs(abs[0]-1) > eps || math.Abs(abs[1]-2) > eps {
		t.Fatalf("abs = %v", abs)
	}
	pow := v.Power()
	if math.Abs(pow[0]-1) > eps || math.Abs(pow[1]-4) > eps {
		t.Fatalf("power = %v", pow)
	}
	ph := v.Phase()
	if math.Abs(ph[0]-math.Pi/2) > eps || math.Abs(ph[1]-math.Pi) > eps {
		t.Fatalf("phase = %v", ph)
	}
}

func TestOuterProduct(t *testing.T) {
	v := Vector{1, 1i}
	m := Outer(v, v)
	// vvᴴ must be Hermitian with trace = |v|².
	if !m.IsHermitian(eps) {
		t.Fatalf("outer product not Hermitian:\n%v", m)
	}
	tr, err := m.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !almostEq(tr, 2, eps) {
		t.Fatalf("trace = %v, want 2", tr)
	}
	if !almostEq(m.At(0, 1), cmplx.Conj(1i), eps) {
		t.Fatalf("m[0][1] = %v", m.At(0, 1))
	}
}

func TestMatrixMul(t *testing.T) {
	a, err := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("from rows: %v", err)
	}
	b, err := MatrixFromRows([][]complex128{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatalf("from rows: %v", err)
	}
	p, err := a.Mul(b)
	if err != nil {
		t.Fatalf("mul: %v", err)
	}
	want := [][]complex128{{2, 1}, {4, 3}}
	for i := range want {
		for j := range want[i] {
			if !almostEq(p.At(i, j), want[i][j], eps) {
				t.Fatalf("p[%d][%d] = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixMulVec(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 1i}, {0, 2}})
	got, err := a.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatalf("mulvec: %v", err)
	}
	if !almostEq(got[0], 1+1i, eps) || !almostEq(got[1], 2, eps) {
		t.Fatalf("got %v", got)
	}
	if _, err := a.MulVec(Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mulvec err = %v", err)
	}
}

func TestMatrixFromRowsErrors(t *testing.T) {
	if _, err := MatrixFromRows(nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("empty rows err = %v", err)
	}
	if _, err := MatrixFromRows([][]complex128{{1}, {1, 2}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ragged rows err = %v", err)
	}
}

func TestConjTranspose(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1 + 1i, 2}, {3i, 4}})
	h := a.ConjTranspose()
	if !almostEq(h.At(0, 0), 1-1i, eps) || !almostEq(h.At(1, 0), 2, eps) ||
		!almostEq(h.At(0, 1), -3i, eps) || !almostEq(h.At(1, 1), 4, eps) {
		t.Fatalf("conj transpose wrong:\n%v", h)
	}
}

func TestIdentityMul(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1 + 1i, 2}, {3i, 4}})
	id := Identity(2)
	p, err := id.Mul(a)
	if err != nil {
		t.Fatalf("mul: %v", err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(p.At(i, j), a.At(i, j), eps) {
				t.Fatalf("identity mul changed matrix")
			}
		}
	}
}

// randomHermitian builds an n×n Hermitian matrix with entries drawn from rng.
func randomHermitian(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

func TestEigHermitianDiagonal(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{3, 0}, {0, 1}})
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig: %v", err)
	}
	if math.Abs(e.Values[0]-3) > eps || math.Abs(e.Values[1]-1) > eps {
		t.Fatalf("values = %v", e.Values)
	}
}

func TestEigHermitianKnown2x2(t *testing.T) {
	// [[2, 1],[1, 2]] has eigenvalues 3 and 1.
	a, _ := MatrixFromRows([][]complex128{{2, 1}, {1, 2}})
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig: %v", err)
	}
	if math.Abs(e.Values[0]-3) > 1e-8 || math.Abs(e.Values[1]-1) > 1e-8 {
		t.Fatalf("values = %v, want [3 1]", e.Values)
	}
}

func TestEigHermitianComplexKnown(t *testing.T) {
	// [[1, i],[-i, 1]] has eigenvalues 2 and 0.
	a, _ := MatrixFromRows([][]complex128{{1, 1i}, {-1i, 1}})
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig: %v", err)
	}
	if math.Abs(e.Values[0]-2) > 1e-8 || math.Abs(e.Values[1]) > 1e-8 {
		t.Fatalf("values = %v, want [2 0]", e.Values)
	}
}

func TestEigHermitianRejectsNonHermitian(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	if _, err := EigHermitian(a); !errors.Is(err, ErrNotHermitian) {
		t.Fatalf("err = %v, want ErrNotHermitian", err)
	}
	b := NewMatrix(2, 3)
	if _, err := EigHermitian(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

// verifyEigen checks A·v = λ·v for every pair and orthonormality of vectors.
func verifyEigen(t *testing.T, a *Matrix, e *Eigen, tol float64) {
	t.Helper()
	n := a.Rows()
	for k := 0; k < n; k++ {
		v := e.Vectors.Col(k)
		av, err := a.MulVec(v)
		if err != nil {
			t.Fatalf("mulvec: %v", err)
		}
		lv := v.Scale(complex(e.Values[k], 0))
		diff, _ := av.Sub(lv)
		if diff.Norm() > tol {
			t.Fatalf("eigenpair %d residual %v > %v (λ=%v)", k, diff.Norm(), tol, e.Values[k])
		}
	}
	// Orthonormality.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d, _ := e.Vectors.Col(i).Dot(e.Vectors.Col(j))
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(d-want) > tol {
				t.Fatalf("vectors %d,%d not orthonormal: %v", i, j, d)
			}
		}
	}
	// Sorted descending.
	for i := 1; i < n; i++ {
		if e.Values[i] > e.Values[i-1]+tol {
			t.Fatalf("values not sorted: %v", e.Values)
		}
	}
}

func TestEigHermitianRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 3, 4, 5, 8} {
		for trial := 0; trial < 20; trial++ {
			a := randomHermitian(rng, n)
			e, err := EigHermitian(a)
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			verifyEigen(t, a, e, 1e-7*math.Max(1, a.FrobeniusNorm()))
		}
	}
}

func TestEigTracePreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomHermitian(rng, 6)
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig: %v", err)
	}
	tr, _ := a.Trace()
	var sum float64
	for _, v := range e.Values {
		sum += v
	}
	if math.Abs(real(tr)-sum) > 1e-8 {
		t.Fatalf("trace %v != eigenvalue sum %v", real(tr), sum)
	}
}

func TestNoiseSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomHermitian(rng, 4)
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig: %v", err)
	}
	en, err := e.NoiseSubspace(1)
	if err != nil {
		t.Fatalf("noise subspace: %v", err)
	}
	if en.Rows() != 4 || en.Cols() != 3 {
		t.Fatalf("noise subspace shape %dx%d", en.Rows(), en.Cols())
	}
	// Columns must be orthogonal to the signal eigenvector.
	sig := e.Vectors.Col(0)
	for j := 0; j < en.Cols(); j++ {
		d, _ := sig.Dot(en.Col(j))
		if cmplx.Abs(d) > 1e-8 {
			t.Fatalf("noise col %d not orthogonal to signal: %v", j, d)
		}
	}
	if _, err := e.NoiseSubspace(4); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("out-of-range signals err = %v", err)
	}
	if _, err := e.NoiseSubspace(-1); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("negative signals err = %v", err)
	}
}

func TestEigZeroMatrix(t *testing.T) {
	a := NewMatrix(3, 3)
	e, err := EigHermitian(a)
	if err != nil {
		t.Fatalf("eig zero: %v", err)
	}
	for _, v := range e.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalues = %v", e.Values)
		}
	}
}

// Property: for random vectors, ‖v‖² equals conj(v)·v.
func TestQuickNormMatchesDot(t *testing.T) {
	f := func(res, ims []float64) bool {
		n := len(res)
		if len(ims) < n {
			n = len(ims)
		}
		if n == 0 {
			return true
		}
		v := make(Vector, n)
		for i := 0; i < n; i++ {
			// Clamp to keep the squares finite.
			re := math.Mod(res[i], 1e6)
			im := math.Mod(ims[i], 1e6)
			if math.IsNaN(re) || math.IsNaN(im) {
				return true
			}
			v[i] = complex(re, im)
		}
		d, err := v.Dot(v)
		if err != nil {
			return false
		}
		n2 := v.Norm() * v.Norm()
		scale := math.Max(1, n2)
		return math.Abs(real(d)-n2) <= 1e-6*scale && math.Abs(imag(d)) <= 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: mirror-of-mirror across a segment is the identity, and Hermitian
// eigendecomposition reconstructs the matrix: A = V diag(λ) Vᴴ.
func TestQuickEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		a := randomHermitian(rng, n)
		e, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("eig: %v", err)
		}
		// Reconstruct V·diag(λ)·Vᴴ.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, complex(e.Values[i], 0))
		}
		vd, err := e.Vectors.Mul(d)
		if err != nil {
			t.Fatalf("mul: %v", err)
		}
		rec, err := vd.Mul(e.Vectors.ConjTranspose())
		if err != nil {
			t.Fatalf("mul: %v", err)
		}
		diff, err := rec.Sub(a)
		if err != nil {
			t.Fatalf("sub: %v", err)
		}
		if diff.FrobeniusNorm() > 1e-7*math.Max(1, a.FrobeniusNorm()) {
			t.Fatalf("reconstruction error %v", diff.FrobeniusNorm())
		}
	}
}

func TestMatrixScaleAddSub(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	b := a.Scale(2)
	if !almostEq(b.At(1, 1), 8, eps) {
		t.Fatalf("scale wrong: %v", b.At(1, 1))
	}
	s, err := a.Add(a)
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if !almostEq(s.At(0, 1), 4, eps) {
		t.Fatalf("add wrong")
	}
	d, err := s.Sub(a)
	if err != nil {
		t.Fatalf("sub: %v", err)
	}
	if !almostEq(d.At(0, 1), 2, eps) {
		t.Fatalf("sub wrong")
	}
	c := NewMatrix(3, 2)
	if _, err := a.Add(c); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("add shape err = %v", err)
	}
	if _, err := a.Sub(c); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("sub shape err = %v", err)
	}
	if _, err := a.Mul(c.ConjTranspose().ConjTranspose()); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("mul shape err = %v", err)
	}
	if _, err := c.Trace(); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("trace shape err = %v", err)
	}
}

func TestRowColClone(t *testing.T) {
	a, _ := MatrixFromRows([][]complex128{{1, 2}, {3, 4}})
	r := a.Row(1)
	if !almostEq(r[0], 3, eps) || !almostEq(r[1], 4, eps) {
		t.Fatalf("row = %v", r)
	}
	c := a.Col(0)
	if !almostEq(c[0], 1, eps) || !almostEq(c[1], 3, eps) {
		t.Fatalf("col = %v", c)
	}
	cl := a.Clone()
	cl.Set(0, 0, 99)
	if almostEq(a.At(0, 0), 99, eps) {
		t.Fatalf("clone aliases original")
	}
	// Row/Col must also be copies.
	r[0] = 99
	if almostEq(a.At(1, 0), 99, eps) {
		t.Fatalf("row aliases matrix")
	}
}

func TestIsHermitianNonSquare(t *testing.T) {
	if NewMatrix(2, 3).IsHermitian(eps) {
		t.Fatal("non-square reported Hermitian")
	}
}

func TestVectorCloneConj(t *testing.T) {
	v := Vector{1 + 1i}
	c := v.Clone()
	c[0] = 0
	if v[0] == 0 {
		t.Fatal("clone aliases")
	}
	cj := v.Conj()
	if !almostEq(cj[0], 1-1i, eps) {
		t.Fatalf("conj = %v", cj)
	}
}
