package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ErrNotHermitian is returned by EigHermitian when the input is not
// Hermitian within the solver's tolerance.
var ErrNotHermitian = errors.New("linalg: matrix is not Hermitian")

// ErrNoConvergence is returned when the Jacobi sweep limit is exhausted
// before the off-diagonal mass vanishes.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// Eigen holds the result of a Hermitian eigendecomposition. Values are real
// (Hermitian matrices have real spectra) and sorted in descending order;
// Vectors.Col(i) is the unit eigenvector for Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

const (
	hermitianTol = 1e-9
	maxSweeps    = 64
)

// EigHermitian computes the full eigendecomposition of a Hermitian matrix by
// the cyclic complex Jacobi method. It is O(n³) per sweep and intended for
// the small matrices (antenna covariance, a handful of elements) used in
// this repository.
func EigHermitian(a *Matrix) (*Eigen, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("eig of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	if !a.IsHermitian(hermitianTol * scale) {
		return nil, ErrNotHermitian
	}
	n := a.Rows()
	w := a.Clone() // working copy, driven to diagonal form
	v := Identity(n)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*scale {
			return collectEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagNorm(w) <= 1e-10*scale {
		return collectEigen(w, v), nil
	}
	return nil, ErrNoConvergence
}

// offDiagNorm returns the Frobenius norm of the strictly off-diagonal part.
func offDiagNorm(m *Matrix) float64 {
	var sum float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			x := m.At(i, j)
			re, im := real(x), imag(x)
			sum += re*re + im*im
		}
	}
	return math.Sqrt(sum)
}

// jacobiRotate zeroes w[p][q] (and by Hermitian symmetry w[q][p]) with a
// complex Givens rotation, accumulating the rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	apq := w.At(p, q)
	if cmplx.Abs(apq) == 0 {
		return
	}
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))

	// Diagonalize the 2x2 Hermitian block [[app, apq], [conj(apq), aqq]].
	// Write apq = |apq| e^{iα}. With phase factor e^{iα} absorbed, the block
	// becomes real symmetric and the classic Jacobi angle applies.
	absApq := cmplx.Abs(apq)
	phase := apq / complex(absApq, 0) // e^{iα}

	theta := 0.5 * math.Atan2(2*absApq, app-aqq)
	c := math.Cos(theta)
	s := math.Sin(theta)

	// Rotation: [p; q] <- [[c, s·e^{iα}], [-s·e^{-iα}, c]]ᴴ applied both sides.
	cs := complex(c, 0)
	sn := complex(s, 0) * phase

	n := w.Rows()
	// Update rows/cols p and q of w: w <- Jᴴ w J.
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, wkp*cs+wkq*cmplx.Conj(sn))
		w.Set(k, q, -wkp*sn+wkq*cs)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, cs*wpk+sn*wqk)
		w.Set(q, k, -cmplx.Conj(sn)*wpk+cs*wqk)
	}
	// Accumulate eigenvectors: v <- v J.
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, vkp*cs+vkq*cmplx.Conj(sn))
		v.Set(k, q, -vkp*sn+vkq*cs)
	}
	// Clean numerical dust on the eliminated element.
	w.Set(q, p, 0)
	w.Set(p, q, 0)
	// Force the diagonal real (it is mathematically real).
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))
}

// collectEigen extracts sorted (descending) eigenpairs from the diagonalized
// working matrix and accumulated rotations.
func collectEigen(w, v *Matrix) *Eigen {
	n := w.Rows()
	idx := make([]int, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = i
		vals[i] = real(w.At(i, i))
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	out := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for col, src := range idx {
		out.Values[col] = vals[src]
		vec := v.Col(src).Normalize()
		for row := 0; row < n; row++ {
			out.Vectors.Set(row, col, vec[row])
		}
	}
	return out
}

// NoiseSubspace returns the matrix whose columns are the eigenvectors
// associated with the n-signals smallest eigenvalues (the noise subspace
// used by MUSIC). signals must be in [0, n).
func (e *Eigen) NoiseSubspace(signals int) (*Matrix, error) {
	n := len(e.Values)
	if signals < 0 || signals >= n {
		return nil, fmt.Errorf("noise subspace with %d signals of %d dims: %w", signals, n, ErrDimensionMismatch)
	}
	out := NewMatrix(n, n-signals)
	for j := signals; j < n; j++ {
		for i := 0; i < n; i++ {
			out.Set(i, j-signals, e.Vectors.At(i, j))
		}
	}
	return out, nil
}
