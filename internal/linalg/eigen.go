package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrNotHermitian is returned by EigHermitian when the input is not
// Hermitian within the solver's tolerance.
var ErrNotHermitian = errors.New("linalg: matrix is not Hermitian")

// ErrNoConvergence is returned when the Jacobi sweep limit is exhausted
// before the off-diagonal mass vanishes.
var ErrNoConvergence = errors.New("linalg: eigensolver did not converge")

// Eigen holds the result of a Hermitian eigendecomposition. Values are real
// (Hermitian matrices have real spectra) and sorted in descending order;
// Vectors.Col(i) is the unit eigenvector for Values[i].
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

const (
	hermitianTol = 1e-9
	maxSweeps    = 64
)

// EigWorkspace owns the Jacobi eigensolver's working storage — the matrix
// copy driven to diagonal form, the accumulated rotations, the sort
// scratch and the result itself — so a long-lived caller (a scoring worker,
// a recalibration loop) decomposes covariance matrices without allocating
// once the buffers have grown to the problem size. The zero value is ready
// to use. A workspace must not be shared between goroutines, and the Eigen
// returned by its EigHermitian is overwritten by the next call.
type EigWorkspace struct {
	w, v Matrix // working copy and accumulated rotations
	vals []float64
	idx  []int
	out  Eigen
}

// EigHermitian computes the full eigendecomposition of a Hermitian matrix by
// the cyclic complex Jacobi method. It is O(n³) per sweep and intended for
// the small matrices (antenna covariance, a handful of elements) used in
// this repository. The returned Eigen is freshly allocated; hot paths that
// decompose repeatedly should hold an EigWorkspace and call its method
// instead.
func EigHermitian(a *Matrix) (*Eigen, error) {
	var ws EigWorkspace
	return ws.EigHermitian(a)
}

// EigHermitian is the allocation-free form of the package-level
// EigHermitian: the working matrices, sort scratch and result all live in
// (and are reused from) the workspace.
func (ws *EigWorkspace) EigHermitian(a *Matrix) (*Eigen, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("eig of %dx%d: %w", a.Rows(), a.Cols(), ErrDimensionMismatch)
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	if !a.IsHermitian(hermitianTol * scale) {
		return nil, ErrNotHermitian
	}
	n := a.Rows()
	w, v := &ws.w, &ws.v
	w.Reuse(n, n)
	if err := w.CopyFrom(a); err != nil {
		return nil, err
	}
	v.Reuse(n, n)
	v.SetIdentity()

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*scale {
			return ws.collect(), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagNorm(w) <= 1e-10*scale {
		return ws.collect(), nil
	}
	return nil, ErrNoConvergence
}

// offDiagNorm returns the Frobenius norm of the strictly off-diagonal part.
func offDiagNorm(m *Matrix) float64 {
	var sum float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			x := m.At(i, j)
			re, im := real(x), imag(x)
			sum += re*re + im*im
		}
	}
	return math.Sqrt(sum)
}

// jacobiRotate zeroes w[p][q] (and by Hermitian symmetry w[q][p]) with a
// complex Givens rotation, accumulating the rotation into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	apq := w.At(p, q)
	if cmplx.Abs(apq) == 0 {
		return
	}
	app := real(w.At(p, p))
	aqq := real(w.At(q, q))

	// Diagonalize the 2x2 Hermitian block [[app, apq], [conj(apq), aqq]].
	// Write apq = |apq| e^{iα}. With phase factor e^{iα} absorbed, the block
	// becomes real symmetric and the classic Jacobi angle applies.
	absApq := cmplx.Abs(apq)
	phase := apq / complex(absApq, 0) // e^{iα}

	theta := 0.5 * math.Atan2(2*absApq, app-aqq)
	c := math.Cos(theta)
	s := math.Sin(theta)

	// Rotation: [p; q] <- [[c, s·e^{iα}], [-s·e^{-iα}, c]]ᴴ applied both sides.
	cs := complex(c, 0)
	sn := complex(s, 0) * phase

	n := w.Rows()
	// Update rows/cols p and q of w: w <- Jᴴ w J.
	for k := 0; k < n; k++ {
		wkp := w.At(k, p)
		wkq := w.At(k, q)
		w.Set(k, p, wkp*cs+wkq*cmplx.Conj(sn))
		w.Set(k, q, -wkp*sn+wkq*cs)
	}
	for k := 0; k < n; k++ {
		wpk := w.At(p, k)
		wqk := w.At(q, k)
		w.Set(p, k, cs*wpk+sn*wqk)
		w.Set(q, k, -cmplx.Conj(sn)*wpk+cs*wqk)
	}
	// Accumulate eigenvectors: v <- v J.
	for k := 0; k < n; k++ {
		vkp := v.At(k, p)
		vkq := v.At(k, q)
		v.Set(k, p, vkp*cs+vkq*cmplx.Conj(sn))
		v.Set(k, q, -vkp*sn+vkq*cs)
	}
	// Clean numerical dust on the eliminated element.
	w.Set(q, p, 0)
	w.Set(p, q, 0)
	// Force the diagonal real (it is mathematically real).
	w.Set(p, p, complex(real(w.At(p, p)), 0))
	w.Set(q, q, complex(real(w.At(q, q)), 0))
}

// collect extracts sorted (descending) eigenpairs from the diagonalized
// working matrix and accumulated rotations into the workspace-owned Eigen.
func (ws *EigWorkspace) collect() *Eigen {
	n := ws.w.Rows()
	if cap(ws.idx) < n {
		ws.idx = make([]int, n)
	}
	ws.idx = ws.idx[:n]
	if cap(ws.vals) < n {
		ws.vals = make([]float64, n)
	}
	ws.vals = ws.vals[:n]
	for i := 0; i < n; i++ {
		ws.idx[i] = i
		ws.vals[i] = real(ws.w.At(i, i))
	}
	// Insertion sort, descending by eigenvalue: n is tiny and, unlike
	// sort.Slice, this allocates nothing.
	idx := ws.idx
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ws.vals[idx[j]] > ws.vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}

	out := &ws.out
	if cap(out.Values) < n {
		out.Values = make([]float64, n)
	}
	out.Values = out.Values[:n]
	if out.Vectors == nil {
		out.Vectors = NewMatrix(n, n)
	} else {
		out.Vectors.Reuse(n, n)
	}
	for col, src := range idx {
		out.Values[col] = ws.vals[src]
		var norm float64
		for row := 0; row < n; row++ {
			x := ws.v.At(row, src)
			re, im := real(x), imag(x)
			norm += re*re + im*im
		}
		s := complex(1, 0)
		if nrm := math.Sqrt(norm); nrm != 0 {
			s = complex(1/nrm, 0)
		}
		for row := 0; row < n; row++ {
			out.Vectors.Set(row, col, ws.v.At(row, src)*s)
		}
	}
	return out
}

// NoiseSubspace returns the matrix whose columns are the eigenvectors
// associated with the n-signals smallest eigenvalues (the noise subspace
// used by MUSIC). signals must be in [0, n).
func (e *Eigen) NoiseSubspace(signals int) (*Matrix, error) {
	n := len(e.Values)
	if signals < 0 || signals >= n {
		return nil, fmt.Errorf("noise subspace with %d signals of %d dims: %w", signals, n, ErrDimensionMismatch)
	}
	out := NewMatrix(n, n-signals)
	for j := signals; j < n; j++ {
		for i := 0; i < n; i++ {
			out.Set(i, j-signals, e.Vectors.At(i, j))
		}
	}
	return out, nil
}
