package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// Vector is a dense complex vector.
type Vector []complex128

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("add %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("sub %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns s * v.
func (v Vector) Scale(s complex128) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// Dot returns the Hermitian inner product conj(v)·w.
func (v Vector) Dot(w Vector) (complex128, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d and %d: %w", len(v), len(w), ErrDimensionMismatch)
	}
	var sum complex128
	for i := range v {
		sum += cmplx.Conj(v[i]) * w[i]
	}
	return sum, nil
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, x := range v {
		re, im := real(x), imag(x)
		sum += re*re + im*im
	}
	return math.Sqrt(sum)
}

// Normalize returns v scaled to unit norm. The zero vector is returned
// unchanged.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v.Clone()
	}
	return v.Scale(complex(1/n, 0))
}

// Abs returns the element-wise magnitudes of v.
func (v Vector) Abs() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Abs(x)
	}
	return out
}

// Power returns the element-wise squared magnitudes |v[i]|².
func (v Vector) Power() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		re, im := real(x), imag(x)
		out[i] = re*re + im*im
	}
	return out
}

// Phase returns the element-wise phases of v in radians.
func (v Vector) Phase() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = cmplx.Phase(x)
	}
	return out
}

// Conj returns the element-wise complex conjugate of v.
func (v Vector) Conj() Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = cmplx.Conj(x)
	}
	return out
}

// Outer returns the outer product v wᴴ as a len(v)×len(w) matrix.
func Outer(v, w Vector) *Matrix {
	m := NewMatrix(len(v), len(w))
	for i := range v {
		for j := range w {
			m.Set(i, j, v[i]*cmplx.Conj(w[j]))
		}
	}
	return m
}
