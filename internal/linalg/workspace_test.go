package linalg

import (
	"errors"
	"math/rand"
	"testing"
)

// TestEigWorkspaceMatchesOneShot reuses one workspace across many matrices
// of varying size and checks every decomposition against a fresh
// EigHermitian call — workspace state must never leak between solves.
func TestEigWorkspaceMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var ws EigWorkspace
	for iter := 0; iter < 30; iter++ {
		n := 2 + iter%5
		a := randomHermitian(rng, n)
		got, err := ws.EigHermitian(a)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("iter %d one-shot: %v", iter, err)
		}
		if len(got.Values) != len(want.Values) {
			t.Fatalf("iter %d: %d values, want %d", iter, len(got.Values), len(want.Values))
		}
		for i := range got.Values {
			if !almostEq(complex(got.Values[i], 0), complex(want.Values[i], 0), 1e-12) {
				t.Fatalf("iter %d: value[%d]=%v, want %v", iter, i, got.Values[i], want.Values[i])
			}
		}
		verifyEigen(t, a, got, 1e-9)
	}
}

// TestEigWorkspaceResultStability documents that the workspace returns its
// own output storage: the previous *Eigen is overwritten by the next solve,
// so callers needing both must copy.
func TestEigWorkspaceResultStability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ws EigWorkspace
	a := randomHermitian(rng, 3)
	first, err := ws.EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	firstTop := first.Values[0]
	b := randomHermitian(rng, 3)
	second, err := ws.EigHermitian(b)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("workspace should reuse its output Eigen across same-size solves")
	}
	want, err := EigHermitian(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(complex(second.Values[0], 0), complex(want.Values[0], 0), 1e-12) {
		t.Fatalf("reused output top value %v, want %v (was %v)", second.Values[0], want.Values[0], firstTop)
	}
}

// TestEigWorkspaceAllocFree pins the hot-path claim: after warming on a
// size, repeated solves of that size allocate nothing.
func TestEigWorkspaceAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomHermitian(rng, 3)
	var ws EigWorkspace
	if _, err := ws.EigHermitian(a); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ws.EigHermitian(a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm workspace solve allocates %v/op, want 0", allocs)
	}
}

func TestEigWorkspaceErrors(t *testing.T) {
	var ws EigWorkspace
	rect := NewMatrix(2, 3)
	if _, err := ws.EigHermitian(rect); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("non-square: err=%v, want ErrDimensionMismatch", err)
	}
	nh := NewMatrix(2, 2)
	nh.Set(0, 1, 1)
	nh.Set(1, 0, 2)
	if _, err := ws.EigHermitian(nh); !errors.Is(err, ErrNotHermitian) {
		t.Errorf("non-Hermitian: err=%v, want ErrNotHermitian", err)
	}
	// The workspace must still solve correctly after rejecting input.
	rng := rand.New(rand.NewSource(9))
	a := randomHermitian(rng, 4)
	e, err := ws.EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	verifyEigen(t, a, e, 1e-9)
}

func TestMatrixReuseCopySetIdentity(t *testing.T) {
	var m Matrix
	m.Reuse(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("Reuse gave %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	m.Reuse(3, 2) // same capacity, new shape: must come back zeroed
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("Reuse left stale value at (%d,%d): %v", i, j, m.At(i, j))
			}
		}
	}
	src := NewMatrix(3, 2)
	src.Set(0, 1, 2+3i)
	src.Set(2, 0, -1i)
	if err := m.CopyFrom(src); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2+3i || m.At(2, 0) != -1i {
		t.Fatal("CopyFrom did not copy entries")
	}
	var wrong Matrix
	wrong.Reuse(2, 2)
	if err := wrong.CopyFrom(src); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("shape-mismatched CopyFrom: err=%v, want ErrDimensionMismatch", err)
	}
	m.SetIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("SetIdentity at (%d,%d)=%v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestMulVecInto(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, complex(float64(i+1), float64(j)))
		}
	}
	v := Vector{1, 2i, -1}
	want, err := a.MulVec(v)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Vector, 2)
	if err := a.MulVecInto(dst, v); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEq(dst[i], want[i], 1e-15) {
			t.Fatalf("MulVecInto[%d]=%v, want %v", i, dst[i], want[i])
		}
	}
	if err := a.MulVecInto(make(Vector, 3), v); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("wrong dst length: err=%v, want ErrDimensionMismatch", err)
	}
	if err := a.MulVecInto(dst, Vector{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("wrong v length: err=%v, want ErrDimensionMismatch", err)
	}
}
