// Package linalg provides the small dense complex linear-algebra kernel the
// rest of the repository builds on: complex vectors, matrices, and a
// Hermitian eigendecomposition.
//
// The standard library has no linear algebra, and MUSIC (internal/music)
// needs eigenvectors of small Hermitian covariance matrices, so this package
// implements a cyclic Jacobi eigensolver from scratch. Sizes are small
// (antenna counts, subcarrier counts), so clarity is favoured over blocking
// or SIMD tricks.
package linalg
